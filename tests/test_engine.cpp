// The unified Engine layer: SearchContext cancellation semantics, parallel
// root-split search, the engine registry, and the racing portfolio.

#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <algorithm>

#include "core/ecf.hpp"
#include "core/lns.hpp"
#include "core/plan.hpp"
#include "core/portfolio.hpp"
#include "core/rwb.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using core::EmbedResult;
using core::Outcome;
using core::Problem;
using core::SearchContext;
using core::SearchOptions;
using core::StopReason;
using graph::Graph;

const expr::ConstraintSet kNone;

SearchOptions storeAll() {
  SearchOptions o;
  o.storeLimit = 100000;
  return o;
}

// --- registry ----------------------------------------------------------------

TEST(EngineRegistry, EveryAlgorithmResolvesToItself) {
  for (const Algorithm a :
       {Algorithm::ECF, Algorithm::RWB, Algorithm::LNS, Algorithm::Naive,
        Algorithm::Anneal, Algorithm::Genetic, Algorithm::Portfolio}) {
    EXPECT_EQ(core::engineFor(a).algorithm(), a);
    EXPECT_STREQ(core::engineFor(a).name(), core::algorithmName(a));
  }
}

TEST(EngineRegistry, CompletenessFlagsMatchTheory) {
  EXPECT_TRUE(core::engineFor(Algorithm::ECF).complete());
  EXPECT_TRUE(core::engineFor(Algorithm::RWB).complete());
  EXPECT_TRUE(core::engineFor(Algorithm::LNS).complete());
  EXPECT_TRUE(core::engineFor(Algorithm::Naive).complete());
  EXPECT_FALSE(core::engineFor(Algorithm::Anneal).complete());
  EXPECT_FALSE(core::engineFor(Algorithm::Genetic).complete());
}

TEST(EngineRegistry, RunSearchDispatchesEveryCompleteEngine) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const Problem problem(query, host, kNone);
  const EmbedResult reference = core::runSearch(Algorithm::ECF, problem, storeAll());
  ASSERT_EQ(reference.outcome, Outcome::Complete);
  for (const Algorithm a : {Algorithm::LNS, Algorithm::Naive}) {
    const EmbedResult r = core::runSearch(a, problem, storeAll());
    EXPECT_EQ(r.outcome, Outcome::Complete) << core::algorithmName(a);
    EXPECT_EQ(r.solutionCount, reference.solutionCount) << core::algorithmName(a);
  }
  // RWB normalizes maxSolutions=0 to a first-match query.
  const EmbedResult rwb = core::runSearch(Algorithm::RWB, problem, storeAll());
  EXPECT_EQ(rwb.solutionCount, 1u);
}

TEST(EngineRegistry, MetaheuristicsRunBehindTheSameInterface) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(8);
  const Problem problem(query, host, kNone);
  for (const Algorithm a : {Algorithm::Anneal, Algorithm::Genetic}) {
    SearchOptions o;
    o.seed = 7;
    const EmbedResult r = core::runSearch(a, problem, o);
    ASSERT_EQ(r.outcome, Outcome::Partial) << core::algorithmName(a);
    ASSERT_FALSE(r.mappings.empty());
    EXPECT_TRUE(core::verifyMapping(problem, r.mappings.front()).ok);
  }
}

// --- cancellation semantics --------------------------------------------------

TEST(Cancellation, PreCancelledContextYieldsInconclusiveNotComplete) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(6);
  const Problem problem(query, host, kNone);
  for (const Algorithm a :
       {Algorithm::ECF, Algorithm::RWB, Algorithm::LNS, Algorithm::Naive}) {
    const core::Engine& engine = core::engineFor(a);
    SearchContext context(engine.effectiveOptions(storeAll()));
    context.requestCancel();
    const EmbedResult r = engine.run(problem, context);
    EXPECT_EQ(r.outcome, Outcome::Inconclusive) << core::algorithmName(a);
    EXPECT_EQ(r.solutionCount, 0u) << core::algorithmName(a);
    EXPECT_FALSE(r.provenInfeasible()) << core::algorithmName(a);
    EXPECT_EQ(context.stopReason(), StopReason::Cancelled);
  }
}

TEST(Cancellation, MidRunCancelNeverReportsComplete) {
  // Enumerating K5 into K24 visits millions of nodes; a cancel shortly after
  // launch must stop the search without a Complete claim.
  const Graph query = topo::clique(5);
  const Graph host = topo::clique(24);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.storeLimit = 1;
  o.checkStride = 64;
  SearchContext context(o);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    context.requestCancel();
  });
  const EmbedResult r = core::ecfSearch(problem, context);
  canceller.join();
  EXPECT_NE(r.outcome, Outcome::Complete);
  // Solutions exist everywhere in K24, so the 20 ms head start finds some.
  EXPECT_EQ(r.outcome, r.solutionCount > 0 ? Outcome::Partial : Outcome::Inconclusive);
}

TEST(Cancellation, DeadlineStopIsRecordedAsDeadline) {
  const Graph query = topo::clique(5);
  const Graph host = topo::clique(24);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.storeLimit = 1;
  o.timeout = std::chrono::milliseconds(20);
  o.checkStride = 64;
  SearchContext context(o);
  const EmbedResult r = core::ecfSearch(problem, context);
  EXPECT_NE(r.outcome, Outcome::Complete);
  EXPECT_EQ(context.stopReason(), StopReason::Deadline);
}

TEST(Cancellation, VisitBudgetStopsSearchDeterministically) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(10);
  const Problem problem(query, host, kNone);
  const EmbedResult full = core::runSearch(Algorithm::ECF, problem, storeAll());
  ASSERT_EQ(full.outcome, Outcome::Complete);
  ASSERT_GT(full.stats.treeNodesVisited, 100u);

  SearchOptions capped = storeAll();
  capped.visitBudget = 40;
  const EmbedResult budgeted = core::runSearch(Algorithm::ECF, problem, capped);
  EXPECT_NE(budgeted.outcome, Outcome::Complete)
      << "a budget-stopped run must never claim exhaustion";
  EXPECT_LE(budgeted.stats.treeNodesVisited, 41u)
      << "the engine polls the budget at every visit";
  EXPECT_LT(budgeted.stats.treeNodesVisited, full.stats.treeNodesVisited);
}

TEST(Cancellation, SolutionBudgetStopIsPartial) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(10);
  SearchOptions o = storeAll();
  o.maxSolutions = 5;
  SearchContext context(o);
  const EmbedResult r = core::ecfSearch(Problem(query, host, kNone), context);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.solutionCount, 5u);
  EXPECT_EQ(context.stopReason(), StopReason::SolutionBudget);
}

TEST(Cancellation, ExternalStopTokenChainsIntoContext) {
  const Graph query = topo::clique(5);
  const Graph host = topo::clique(24);
  const Problem problem(query, host, kNone);
  std::stop_source parent;
  SearchOptions o;
  o.storeLimit = 1;
  o.checkStride = 64;
  SearchContext context(o, {}, parent.get_token());
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    parent.request_stop();
  });
  const EmbedResult r = core::ecfSearch(problem, context);
  canceller.join();
  EXPECT_NE(r.outcome, Outcome::Complete);
  EXPECT_EQ(context.stopReason(), StopReason::Cancelled);
}

// --- root-split parallel search ----------------------------------------------

TEST(RootSplit, EcfMatchesSerialSolutionCountExactly) {
  // Enumeration workload: the acceptance bar for the parallel refactor.
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(9);
  const Problem problem(query, host, kNone);
  const EmbedResult serial = core::ecfSearch(problem, storeAll());
  ASSERT_EQ(serial.outcome, Outcome::Complete);
  ASSERT_GT(serial.solutionCount, 0u);
  for (const std::size_t threads : {2u, 4u, 0u /* hardware */}) {
    SearchOptions o = storeAll();
    o.rootSplitThreads = threads;
    const EmbedResult split = core::ecfSearch(problem, o);
    EXPECT_EQ(split.outcome, Outcome::Complete) << threads;
    EXPECT_EQ(split.solutionCount, serial.solutionCount) << threads;
    EXPECT_EQ(split.mappings.size(), serial.mappings.size()) << threads;
  }
}

TEST(RootSplit, EcfProvesInfeasibilityInParallel) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(10);
  SearchOptions o = storeAll();
  o.rootSplitThreads = 4;
  const EmbedResult r = core::ecfSearch(Problem(query, host, kNone), o);
  EXPECT_TRUE(r.provenInfeasible());
}

TEST(RootSplit, SolutionBudgetIsExactAcrossWorkers) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(12);
  SearchOptions o = storeAll();
  o.maxSolutions = 9;
  o.rootSplitThreads = 4;
  const EmbedResult r = core::ecfSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.solutionCount, 9u);  // never over-counts despite racing workers
  EXPECT_EQ(r.mappings.size(), 9u);
}

TEST(RootSplit, RwbFindsAValidFirstMatch) {
  const Graph query = topo::line(4);
  const Graph host = topo::clique(10);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.rootSplitThreads = 4;
  o.seed = 11;
  const EmbedResult r = core::rwbSearch(problem, o);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  ASSERT_EQ(r.solutionCount, 1u);
  ASSERT_EQ(r.mappings.size(), 1u);
  EXPECT_TRUE(core::verifyMapping(problem, r.mappings.front()).ok);
}

TEST(Cancellation, CancelDuringFilterBuildReportsInconclusive) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(12);
  // A context cancelled before the engine starts must stop the stage-1
  // filter build at its first poll — no tree node is ever visited.
  SearchContext context(storeAll());
  context.requestCancel();
  const EmbedResult r = core::ecfSearch(Problem(query, host, kNone), context);
  EXPECT_EQ(r.outcome, Outcome::Inconclusive);
  EXPECT_EQ(r.solutionCount, 0u);
  EXPECT_EQ(r.stats.treeNodesVisited, 0u);
}

TEST(RootSplit, CancelledWorkersNeverReportComplete) {
  const Graph query = topo::clique(5);
  const Graph host = topo::clique(24);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.storeLimit = 1;
  o.checkStride = 64;
  o.rootSplitThreads = 4;
  SearchContext context(o);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    context.requestCancel();
  });
  const EmbedResult r = core::ecfSearch(problem, context);
  canceller.join();
  EXPECT_NE(r.outcome, Outcome::Complete);
}

// --- portfolio ---------------------------------------------------------------

TEST(Portfolio, FirstMatchRaceReturnsAVerifiedMapping) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(10);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.maxSolutions = 1;
  const core::PortfolioResult race = core::portfolioSearch(problem, o);
  EXPECT_TRUE(race.raceDecided);
  EXPECT_EQ(race.result.outcome, Outcome::Partial);
  ASSERT_EQ(race.result.solutionCount, 1u);
  ASSERT_EQ(race.result.mappings.size(), 1u);
  EXPECT_TRUE(core::verifyMapping(problem, race.result.mappings.front()).ok);
  EXPECT_EQ(race.contenders.size(), 3u);
  EXPECT_FALSE(race.summary().empty());
}

TEST(Portfolio, ProvesInfeasibilityWhenAContenderCompletes) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(8);
  SearchOptions o;
  o.maxSolutions = 1;
  const core::PortfolioResult race =
      core::portfolioSearch(Problem(query, host, kNone), o);
  EXPECT_TRUE(race.raceDecided);
  EXPECT_TRUE(race.result.provenInfeasible());
}

TEST(Portfolio, EnumerationRaceMatchesSerialCount) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const Problem problem(query, host, kNone);
  const EmbedResult serial = core::ecfSearch(problem, storeAll());
  const core::PortfolioResult race = core::portfolioSearch(problem, storeAll());
  EXPECT_TRUE(race.raceDecided);
  EXPECT_EQ(race.result.outcome, Outcome::Complete);
  EXPECT_EQ(race.result.solutionCount, serial.solutionCount);
}

TEST(Portfolio, SinkSeesOnlyWinnerSolutions) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(8);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.maxSolutions = 1;
  std::size_t sinkCalls = 0;
  const core::PortfolioResult race = core::portfolioSearch(
      problem, o, [&](const core::Mapping&) {
        ++sinkCalls;
        return true;
      });
  EXPECT_TRUE(race.raceDecided);
  EXPECT_EQ(sinkCalls, race.result.solutionCount);
  EXPECT_EQ(race.result.solutionCount, 1u);
}

TEST(Portfolio, ParentCancellationPropagatesToContenders) {
  const Graph query = topo::clique(5);
  const Graph host = topo::clique(24);
  const Problem problem(query, host, kNone);
  SearchOptions o = storeAll();
  o.checkStride = 64;
  SearchContext parent(o);
  parent.requestCancel();
  // Enumeration of K5-in-K24 would take forever; the pre-cancelled parent
  // must stop the whole race almost immediately.
  const core::PortfolioResult race =
      core::portfolioSearch(problem, parent, {Algorithm::ECF, Algorithm::LNS});
  EXPECT_NE(race.result.outcome, Outcome::Complete);
}

// --- shared stage-1 plans ----------------------------------------------------

std::vector<core::Mapping> sortedMappings(EmbedResult result) {
  std::sort(result.mappings.begin(), result.mappings.end());
  return result.mappings;
}

TEST(SharedPlan, EcfSolutionSetIdenticalWithPlanCacheOnAndOff) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(9);
  const Problem problem(query, host, kNone);

  const EmbedResult bare = core::ecfSearch(problem, storeAll());
  ASSERT_EQ(bare.outcome, Outcome::Complete);

  // Pre-resolved shared plan (a cache hit) must change nothing.
  auto builder = std::make_shared<core::SharedPlanBuilder>(
      core::FilterPlan::build(problem, storeAll()));
  SearchContext context(storeAll());
  context.setPlanBuilder(builder);
  const EmbedResult cached = core::ecfSearch(problem, context);
  EXPECT_EQ(cached.outcome, Outcome::Complete);
  EXPECT_EQ(cached.solutionCount, bare.solutionCount);
  EXPECT_EQ(sortedMappings(cached), sortedMappings(bare));
}

TEST(SharedPlan, RootSplitSolutionSetIdenticalToSerialWithSharedPlan) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(9);
  const Problem problem(query, host, kNone);
  const EmbedResult serial = core::ecfSearch(problem, storeAll());
  ASSERT_EQ(serial.outcome, Outcome::Complete);

  auto builder = std::make_shared<core::SharedPlanBuilder>();
  for (const std::size_t threads : {1u, 3u}) {
    SearchOptions o = storeAll();
    o.rootSplitThreads = threads;
    SearchContext context(o);
    context.setPlanBuilder(builder);  // lazily built once, reused by both runs
    const EmbedResult split = core::ecfSearch(problem, context);
    EXPECT_EQ(split.outcome, Outcome::Complete) << threads;
    EXPECT_EQ(sortedMappings(split), sortedMappings(serial)) << threads;
  }
}

TEST(SharedPlan, RwbFixedSeedReturnsIdenticalMappingWithPlanCacheOnAndOff) {
  const Graph query = topo::line(4);
  const Graph host = topo::clique(10);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.seed = 17;

  const EmbedResult bare = core::rwbSearch(problem, o);
  ASSERT_EQ(bare.solutionCount, 1u);

  auto builder = std::make_shared<core::SharedPlanBuilder>(
      core::FilterPlan::build(problem, o));
  SearchContext context(core::engineFor(Algorithm::RWB).effectiveOptions(o));
  context.setPlanBuilder(builder);
  const EmbedResult cached = core::rwbSearch(problem, context);
  ASSERT_EQ(cached.solutionCount, 1u);
  EXPECT_EQ(cached.mappings, bare.mappings);  // same seed, same plan, same walk
}

TEST(SharedPlan, PortfolioEnumerationIdenticalWithAndWithoutSharedPlan) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const Problem problem(query, host, kNone);
  const EmbedResult serial = core::ecfSearch(problem, storeAll());

  SearchContext bareParent(storeAll());
  const core::PortfolioResult bare = core::portfolioSearch(problem, bareParent);
  ASSERT_TRUE(bare.raceDecided);

  SearchContext cachedParent(storeAll());
  cachedParent.setPlanBuilder(std::make_shared<core::SharedPlanBuilder>(
      core::FilterPlan::build(problem, storeAll())));
  const core::PortfolioResult cached = core::portfolioSearch(problem, cachedParent);
  ASSERT_TRUE(cached.raceDecided);

  // An enumerate-all race is exhaustive regardless of who wins: both runs
  // must reproduce the serial enumeration exactly.
  EXPECT_EQ(sortedMappings(bare.result), sortedMappings(serial));
  EXPECT_EQ(sortedMappings(cached.result), sortedMappings(serial));
}

TEST(SharedPlan, PortfolioRacePerformsExactlyOneFilterBuild) {
  // ROADMAP's known inefficiency, fixed: the filtered contenders of one race
  // share a single stage-1 build (counter-verified).
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(10);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.maxSolutions = 1;
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  const core::PortfolioResult race =
      core::portfolioSearch(problem, o, {}, {Algorithm::ECF, Algorithm::RWB});
  EXPECT_TRUE(race.raceDecided);
  EXPECT_EQ(race.result.solutionCount, 1u);
  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 1u);
}

TEST(SharedPlan, SharedOverflowDropsBothFilteredContendersOnce) {
  // The shared build's overflow is sticky: ECF and RWB both drop out after
  // ONE failed build attempt, and LNS still wins the race.
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(12);
  const Problem problem(query, host, kNone);
  SearchOptions o;
  o.maxSolutions = 1;
  o.maxFilterEntries = 1;
  const core::PortfolioResult race = core::portfolioSearch(
      problem, o, {}, {Algorithm::ECF, Algorithm::RWB, Algorithm::LNS});
  EXPECT_TRUE(race.raceDecided);
  EXPECT_EQ(race.winner, Algorithm::LNS);
  EXPECT_EQ(race.result.solutionCount, 1u);
}

// --- bitset vs CSR differential ----------------------------------------------
//
// The dual candidate-domain representation is purely a performance choice:
// Off (sorted CSR + binary search), Force (word-parallel bitset rows) and
// Auto (density-mixed) must produce identical candidate sets in identical
// order, hence byte-identical solution streams, on every engine topology.

graph::Graph randomConnected(std::size_t n, std::size_t extraEdges, bool directed,
                             util::Rng& rng) {
  Graph g(directed);
  for (std::size_t i = 0; i < n; ++i) g.addNode();
  for (graph::NodeId i = 1; i < n; ++i) {
    const auto j = static_cast<graph::NodeId>(rng.index(i));
    if (directed && rng.bernoulli(0.5)) {
      g.addEdge(i, j);
    } else {
      g.addEdge(j, i);
    }
  }
  for (std::size_t k = 0; k < extraEdges; ++k) {
    const auto u = static_cast<graph::NodeId>(rng.index(n));
    const auto v = static_cast<graph::NodeId>(rng.index(n));
    if (u == v || g.findEdge(u, v)) continue;
    g.addEdge(u, v);
  }
  return g;
}

TEST(BitsetDifferential, SerialEcfStreamsByteIdenticalAcrossModes) {
  for (const bool directed : {false, true}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      util::Rng rng(util::deriveSeed(seed, directed));
      const Graph query = randomConnected(5, 4, directed, rng);
      const Graph host = randomConnected(11, 20, directed, rng);
      const Problem problem(query, host, kNone);
      SearchOptions off = storeAll();
      off.bitsetMode = core::BitsetMode::Off;
      const EmbedResult reference = core::ecfSearch(problem, off);
      for (const core::BitsetMode mode :
           {core::BitsetMode::Auto, core::BitsetMode::Force}) {
        SearchOptions o = storeAll();
        o.bitsetMode = mode;
        const EmbedResult r = core::ecfSearch(problem, o);
        EXPECT_EQ(r.outcome, reference.outcome);
        EXPECT_EQ(r.solutionCount, reference.solutionCount);
        // Ordered, not sorted: the serial enumeration order itself must match.
        EXPECT_EQ(r.mappings, reference.mappings)
            << "directed=" << directed << " seed=" << seed
            << " mode=" << static_cast<int>(mode);
      }
    }
  }
}

TEST(BitsetDifferential, RwbSeededWalkIdenticalAcrossModes) {
  // RWB shuffles the candidate buffer; identical pre-shuffle order + the same
  // seed means the walk — and so the first match — must be identical.
  util::Rng rng(21);
  const Graph query = randomConnected(5, 3, false, rng);
  const Graph host = randomConnected(12, 26, false, rng);
  const Problem problem(query, host, kNone);
  SearchOptions off;
  off.seed = 9;
  off.bitsetMode = core::BitsetMode::Off;
  const EmbedResult reference = core::rwbSearch(problem, off);
  ASSERT_EQ(reference.solutionCount, 1u);
  for (const core::BitsetMode mode :
       {core::BitsetMode::Auto, core::BitsetMode::Force}) {
    SearchOptions o = off;
    o.bitsetMode = mode;
    const EmbedResult r = core::rwbSearch(problem, o);
    ASSERT_EQ(r.solutionCount, 1u);
    EXPECT_EQ(r.mappings, reference.mappings) << static_cast<int>(mode);
  }
}

TEST(BitsetDifferential, RootSplitSolutionSetsIdenticalAcrossModes) {
  util::Rng rng(33);
  const Graph query = randomConnected(5, 4, false, rng);
  const Graph host = randomConnected(11, 22, false, rng);
  const Problem problem(query, host, kNone);
  SearchOptions off = storeAll();
  off.bitsetMode = core::BitsetMode::Off;
  const EmbedResult reference = core::ecfSearch(problem, off);
  ASSERT_EQ(reference.outcome, Outcome::Complete);
  for (const core::BitsetMode mode :
       {core::BitsetMode::Auto, core::BitsetMode::Force}) {
    SearchOptions o = storeAll();
    o.bitsetMode = mode;
    o.rootSplitThreads = 3;
    const EmbedResult r = core::ecfSearch(problem, o);
    EXPECT_EQ(r.outcome, Outcome::Complete);
    EXPECT_EQ(sortedMappings(r), sortedMappings(reference)) << static_cast<int>(mode);
  }
}

TEST(BitsetDifferential, PortfolioEnumerationIdenticalAcrossModes) {
  util::Rng rng(44);
  const Graph query = randomConnected(4, 3, false, rng);
  const Graph host = randomConnected(10, 18, false, rng);
  const Problem problem(query, host, kNone);
  SearchOptions off = storeAll();
  off.bitsetMode = core::BitsetMode::Off;
  const EmbedResult reference = core::ecfSearch(problem, off);
  for (const core::BitsetMode mode :
       {core::BitsetMode::Off, core::BitsetMode::Auto, core::BitsetMode::Force}) {
    SearchOptions o = storeAll();
    o.bitsetMode = mode;
    const core::PortfolioResult race = core::portfolioSearch(problem, o);
    ASSERT_TRUE(race.raceDecided);
    EXPECT_EQ(race.result.outcome, Outcome::Complete);
    EXPECT_EQ(sortedMappings(race.result), sortedMappings(reference))
        << static_cast<int>(mode);
  }
}

TEST(Portfolio, RunsBehindTheEngineInterfaceToo) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(6);
  SearchOptions o;
  o.maxSolutions = 1;
  const EmbedResult r =
      core::runSearch(Algorithm::Portfolio, Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.solutionCount, 1u);
}

}  // namespace
