// Runtime-dispatched SIMD kernels and everything built on them.
//
// Three layers of evidence, strongest last:
//   1. kernel matrix — every dispatched word kernel against an independently
//      computed reference, for every ISA reachable on this host, across word
//      counts that straddle each vector width and its scalar tail;
//   2. Bitset/BitMatrix tails — the bit-level wrappers for sizes 0..130 and
//      beyond the inline-dispatch threshold, against a std::vector<bool>
//      model (ghost bits past size() must never appear);
//   3. end-to-end differential — forcing each reachable ISA must leave every
//      engine's *ordered* solution stream byte-identical, and the dynamic
//      ordering must keep its domain-count invariant and enumerate exactly
//      the static order's solution set.

#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/dynamic_order.hpp"
#include "core/ecf.hpp"
#include "core/plan.hpp"
#include "core/rwb.hpp"
#include "core/verify.hpp"
#include "topo/brite.hpp"
#include "topo/sample.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using util::simd::Isa;

std::vector<Isa> reachableIsas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    if (util::simd::isaSupported(isa)) out.push_back(isa);
  }
  return out;
}

/// RAII ISA override so a failing assertion cannot leak a forced ISA into
/// later tests.
class IsaGuard {
 public:
  explicit IsaGuard(Isa isa) : previous_(util::simd::setActiveIsa(isa)) {}
  ~IsaGuard() { util::simd::setActiveIsa(previous_); }

 private:
  Isa previous_;
};

std::vector<std::uint64_t> randomWords(std::size_t n, util::Rng& rng) {
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t& w : out) w = rng.next();
  return out;
}

// --- 1. kernel matrix ---------------------------------------------------------

class SimdKernels : public testing::TestWithParam<std::size_t> {};

TEST_P(SimdKernels, EveryReachableIsaMatchesTheReference) {
  const std::size_t n = GetParam();
  util::Rng rng(7777 + n);
  const std::vector<std::uint64_t> a = randomWords(n, rng);
  const std::vector<std::uint64_t> b = randomWords(n, rng);
  const std::vector<std::uint64_t> c = randomWords(n, rng);

  // Independent references (plain loops, no shared code with the kernels).
  std::vector<std::uint64_t> refAnd(n), refAndNot(n), refCopyAndNot(n),
      refCopyAndAndNot(n);
  std::uint64_t refAliveAnd = 0, refAliveCaan = 0, refOr = 0;
  std::size_t refPop = 0, refAndPop = 0;
  for (std::size_t i = 0; i < n; ++i) {
    refAnd[i] = a[i] & b[i];
    refAliveAnd |= refAnd[i];
    refAndNot[i] = a[i] & ~b[i];
    refCopyAndNot[i] = a[i] & ~b[i];
    refCopyAndAndNot[i] = a[i] & b[i] & ~c[i];
    refAliveCaan |= refCopyAndAndNot[i];
    refOr |= a[i];
    refPop += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    refAndPop += static_cast<std::size_t>(__builtin_popcountll(refAnd[i]));
  }

  for (const Isa isa : reachableIsas()) {
    SCOPED_TRACE(util::simd::isaName(isa));
    IsaGuard guard(isa);
    ASSERT_EQ(util::simd::activeIsa(), isa);

    std::vector<std::uint64_t> dst = a;
    EXPECT_EQ(util::simd::andInto(dst.data(), b.data(), n) != 0, refAliveAnd != 0);
    EXPECT_EQ(dst, refAnd);

    dst = a;
    util::simd::andNotInto(dst.data(), b.data(), n);
    EXPECT_EQ(dst, refAndNot);

    std::vector<std::uint64_t> out(n, ~std::uint64_t{0});
    util::simd::copyAndNot(out.data(), a.data(), b.data(), n);
    EXPECT_EQ(out, refCopyAndNot);

    out.assign(n, ~std::uint64_t{0});
    EXPECT_EQ(
        util::simd::copyAndAndNot(out.data(), a.data(), b.data(), c.data(), n) != 0,
        refAliveCaan != 0);
    EXPECT_EQ(out, refCopyAndAndNot);

    dst = a;
    EXPECT_EQ(util::simd::andIntoPopcount(dst.data(), b.data(), n), refAndPop);
    EXPECT_EQ(dst, refAnd);

    EXPECT_EQ(util::simd::popcount(a.data(), n), refPop);
    EXPECT_EQ(util::simd::orReduce(a.data(), n), refOr);
  }
}

// 0..4 stay inside the inline scalar fast path; 5..9 exercise one partial
// vector iteration per ISA; 16/17 straddle the AVX-512 8-word stride; the
// larger counts cover multi-stride rows with every tail length.
INSTANTIATE_TEST_SUITE_P(WordCounts, SimdKernels,
                         testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12,
                                         13, 15, 16, 17, 23, 24, 31, 33, 64, 130));

// --- 2. Bitset tails under every ISA -----------------------------------------

class SimdBitsetTails : public testing::TestWithParam<std::size_t> {};

TEST_P(SimdBitsetTails, BitsetOpsMatchABoolVectorModel) {
  const std::size_t bits = GetParam();
  util::Rng rng(99 + bits);
  std::vector<bool> modelA(bits), modelB(bits), modelC(bits);
  util::Bitset a(bits), b(bits), c(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.bernoulli(0.4)) { modelA[i] = true; a.set(i); }
    if (rng.bernoulli(0.4)) { modelB[i] = true; b.set(i); }
    if (rng.bernoulli(0.2)) { modelC[i] = true; c.set(i); }
  }
  std::size_t refAndCount = 0;
  bool refAnyAnd = false;
  for (std::size_t i = 0; i < bits; ++i) {
    refAndCount += (modelA[i] && modelB[i]) ? 1u : 0u;
    refAnyAnd = refAnyAnd || (modelA[i] && modelB[i]);
  }

  for (const Isa isa : reachableIsas()) {
    SCOPED_TRACE(util::simd::isaName(isa));
    IsaGuard guard(isa);

    util::Bitset d = a;
    EXPECT_EQ(d.andWith(b), refAnyAnd);
    EXPECT_EQ(d.count(), refAndCount);
    for (std::size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(d.test(i), modelA[i] && modelB[i]) << "bit " << i;
    }

    d = a;
    EXPECT_EQ(d.andWithCount(b.words()), refAndCount);

    d = a;
    d.andNotWith(b);
    for (std::size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(d.test(i), modelA[i] && !modelB[i]) << "bit " << i;
    }

    d.assign(bits);
    d.assignAndNot(a.words(), b);
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(d.test(i), modelA[i] && !modelB[i]) << "bit " << i;
      survivors += d.test(i) ? 1u : 0u;
    }
    EXPECT_EQ(d.count(), survivors);

    d.assign(bits);
    const bool alive = d.assignAndAndNot(a.words(), b.words(), c);
    bool refAlive = false;
    for (std::size_t i = 0; i < bits; ++i) {
      const bool expect = modelA[i] && modelB[i] && !modelC[i];
      ASSERT_EQ(d.test(i), expect) << "bit " << i;
      refAlive = refAlive || expect;
    }
    EXPECT_EQ(alive, refAlive);
  }
}

// 0..130 covers every tail of the first three words (the ISSUE's contract);
// 320+ puts rows past the inline threshold so the vector units really run.
INSTANTIATE_TEST_SUITE_P(BitCounts, SimdBitsetTails,
                         testing::Values(0, 1, 2, 31, 32, 63, 64, 65, 66, 95,
                                         127, 128, 129, 130, 319, 320, 321, 512,
                                         515, 1024, 1030));

// --- 3. end-to-end differentials ----------------------------------------------

struct Instance {
  graph::Graph host{false};
  graph::Graph query{false};
  expr::ConstraintSet constraints;
};

/// A host large enough that filter rows span >4 words (vector paths engage),
/// with a sampled feasible query and delay windows.
Instance bigInstance(std::uint64_t seed) {
  topo::BriteOptions bo;
  bo.nodes = 330;
  bo.m = 2;
  bo.seed = util::deriveSeed(seed, 1);
  Instance inst;
  inst.host = topo::brite(bo);
  util::Rng rng(util::deriveSeed(seed, 2));
  auto sub = topo::sampleConnectedSubgraph(inst.host, 7, 9, rng);
  topo::widenDelayWindows(sub.graph, 1.0);
  inst.query = std::move(sub.graph);
  inst.constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  return inst;
}

core::SearchOptions enumerateAll(core::Ordering ordering,
                                 core::BitsetMode mode = core::BitsetMode::Auto) {
  core::SearchOptions o;
  o.ordering = ordering;
  o.bitsetMode = mode;
  o.storeLimit = 1u << 20;
  return o;
}

TEST(SimdDifferential, EcfStreamsAreByteIdenticalUnderEveryIsa) {
  const Instance inst = bigInstance(101);
  const core::Problem problem(inst.query, inst.host, inst.constraints);
  ASSERT_GT(core::FilterPlan::build(problem, enumerateAll(core::Ordering::Static))
                ->filters.hostWords(),
            util::simd::kInlineWordThreshold);

  for (const core::Ordering ordering :
       {core::Ordering::Static, core::Ordering::Dynamic}) {
    std::vector<core::Mapping> reference;
    std::uint64_t referenceCount = 0;
    for (const Isa isa : reachableIsas()) {
      SCOPED_TRACE(util::simd::isaName(isa));
      IsaGuard guard(isa);
      const core::EmbedResult r =
          core::ecfSearch(problem, enumerateAll(ordering));
      ASSERT_EQ(r.outcome, core::Outcome::Complete);
      if (isa == Isa::Scalar) {
        reference = r.mappings;
        referenceCount = r.solutionCount;
        EXPECT_GE(referenceCount, 1u);
        continue;
      }
      // Ordered streams, not sets: dispatch must be invisible bit for bit.
      EXPECT_EQ(r.solutionCount, referenceCount);
      EXPECT_EQ(r.mappings, reference);
    }
  }
}

TEST(SimdDifferential, RwbFirstMatchAgreesUnderEveryIsa) {
  const Instance inst = bigInstance(202);
  const core::Problem problem(inst.query, inst.host, inst.constraints);
  std::vector<core::Mapping> reference;
  for (const Isa isa : reachableIsas()) {
    SCOPED_TRACE(util::simd::isaName(isa));
    IsaGuard guard(isa);
    core::SearchOptions o = enumerateAll(core::Ordering::Static);
    o.seed = 9;
    const core::EmbedResult r = core::rwbSearch(problem, o);
    ASSERT_TRUE(r.feasible());
    if (reference.empty()) {
      reference = r.mappings;
      continue;
    }
    EXPECT_EQ(r.mappings, reference);
  }
}

// --- dynamic ordering ---------------------------------------------------------

Instance smallInstance(std::uint64_t seed) {
  topo::BriteOptions bo;
  bo.nodes = 26;
  bo.m = 2;
  bo.seed = util::deriveSeed(seed, 1);
  Instance inst;
  inst.host = topo::brite(bo);
  util::Rng rng(util::deriveSeed(seed, 2));
  auto sub = topo::sampleConnectedSubgraph(inst.host, 5, 7, rng);
  topo::widenDelayWindows(sub.graph, 0.5);
  inst.query = std::move(sub.graph);
  inst.constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  return inst;
}

class OrderingDifferential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingDifferential, DynamicEnumeratesTheStaticSolutionSet) {
  const Instance inst = smallInstance(GetParam());
  const core::Problem problem(inst.query, inst.host, inst.constraints);

  for (const core::BitsetMode mode :
       {core::BitsetMode::Off, core::BitsetMode::Auto, core::BitsetMode::Force}) {
    SCOPED_TRACE(static_cast<int>(mode));
    const core::EmbedResult stat =
        core::ecfSearch(problem, enumerateAll(core::Ordering::Static, mode));
    const core::EmbedResult dyn =
        core::ecfSearch(problem, enumerateAll(core::Ordering::Dynamic, mode));
    ASSERT_EQ(stat.outcome, core::Outcome::Complete);
    ASSERT_EQ(dyn.outcome, core::Outcome::Complete);
    EXPECT_EQ(dyn.solutionCount, stat.solutionCount);
    // Same *set*; the visit order may legitimately differ.
    const std::set<core::Mapping> statSet(stat.mappings.begin(),
                                          stat.mappings.end());
    const std::set<core::Mapping> dynSet(dyn.mappings.begin(), dyn.mappings.end());
    EXPECT_EQ(dynSet, statSet);
    for (const core::Mapping& m : dyn.mappings) {
      EXPECT_TRUE(core::verifyMapping(problem, m).ok);
    }

    // RWB under dynamic ordering agrees on feasibility and returns a member
    // of the same solution set.
    core::SearchOptions rwbOpts = enumerateAll(core::Ordering::Dynamic, mode);
    rwbOpts.seed = 17;
    const core::EmbedResult rwb = core::rwbSearch(problem, rwbOpts);
    EXPECT_EQ(rwb.feasible(), stat.solutionCount > 0);
    if (rwb.feasible()) {
      EXPECT_TRUE(statSet.count(rwb.mappings[0]) > 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingDifferential,
                         testing::Values(11, 22, 33, 44, 55, 66));

TEST(OrderingDifferential, RootSplitWorkersAgreeUnderDynamic) {
  // One DomainTracker per root-split worker, no sharing: the parallel
  // dynamic enumeration must produce exactly the serial static set. (This
  // is the dynamic-order case the TSan CI job runs.)
  const Instance inst = smallInstance(77);
  const core::Problem problem(inst.query, inst.host, inst.constraints);
  const core::EmbedResult serial =
      core::ecfSearch(problem, enumerateAll(core::Ordering::Static));
  ASSERT_EQ(serial.outcome, core::Outcome::Complete);

  core::SearchOptions split = enumerateAll(core::Ordering::Dynamic);
  split.rootSplitThreads = 3;
  const core::EmbedResult parallel = core::ecfSearch(problem, split);
  ASSERT_EQ(parallel.outcome, core::Outcome::Complete);
  EXPECT_EQ(parallel.solutionCount, serial.solutionCount);
  EXPECT_EQ(std::set<core::Mapping>(parallel.mappings.begin(),
                                    parallel.mappings.end()),
            std::set<core::Mapping>(serial.mappings.begin(),
                                    serial.mappings.end()));
}

// --- DomainTracker invariants -------------------------------------------------

TEST(DomainTracker, CountsStayConsistentThroughRandomWalks) {
  const Instance inst = smallInstance(314);
  const core::Problem problem(inst.query, inst.host, inst.constraints);
  const auto plan =
      core::FilterPlan::build(problem, enumerateAll(core::Ordering::Dynamic));
  core::DomainTracker tracker(*plan);
  ASSERT_TRUE(tracker.countsConsistent());

  util::Rng rng(2718);
  const std::size_t nq = inst.query.nodeCount();
  std::vector<std::size_t> initialCounts(nq);
  for (graph::NodeId v = 0; v < nq; ++v) initialCounts[v] = tracker.liveCount(v);

  for (int walk = 0; walk < 40; ++walk) {
    // Descend to a random depth, asserting the popcount invariant after
    // every assign, then unwind fully and demand exact restoration.
    std::size_t depth = 0;
    while (tracker.assignedCount() < nq && rng.bernoulli(0.8)) {
      const graph::NodeId v = tracker.selectNext();
      ASSERT_FALSE(tracker.isAssigned(v));
      if (tracker.liveCount(v) == 0) break;
      // Pick a random live candidate from the maintained domain.
      std::vector<graph::NodeId> live;
      util::forEachSetBit(tracker.domain(v),
                          [&](std::size_t r) {
                            live.push_back(static_cast<graph::NodeId>(r));
                          });
      ASSERT_EQ(live.size(), tracker.liveCount(v));
      const graph::NodeId r = live[rng.index(live.size())];
      tracker.assign(v, r);  // dead-end results still must undo cleanly
      ++depth;
      ASSERT_TRUE(tracker.countsConsistent()) << "after assign at depth " << depth;
    }
    while (depth > 0) {
      tracker.unassign();
      --depth;
      ASSERT_TRUE(tracker.countsConsistent()) << "after unassign to depth " << depth;
    }
    ASSERT_EQ(tracker.assignedCount(), 0u);
    for (graph::NodeId v = 0; v < nq; ++v) {
      ASSERT_EQ(tracker.liveCount(v), initialCounts[v]) << "node " << v;
    }
  }
}

TEST(DomainTracker, FirstNodeMatchesTheLemma1Front) {
  const Instance inst = smallInstance(555);
  const core::Problem problem(inst.query, inst.host, inst.constraints);
  const auto plan =
      core::FilterPlan::build(problem, enumerateAll(core::Ordering::Static));
  // With the plan Lemma-1 sorted, the depth-0 dynamic pick is exactly the
  // static front: same count key, same tie-break.
  EXPECT_EQ(core::DomainTracker::firstNode(*plan), plan->order.front());
}

}  // namespace
