// Orientation-sensitive constraints on undirected graphs: when a constraint
// references vSource/vTarget/rSource/rTarget, the engines must bind those
// objects to the orientation in which the mapping *uses* each edge — and the
// stage-1 filter's symmetric fast path must NOT kick in. These tests pin
// that behaviour across all three engines and the verifier.

#include <gtest/gtest.h>

#include "baseline/naive.hpp"
#include "core/ecf.hpp"
#include "core/lns.hpp"
#include "core/rwb.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::EmbedResult;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using graph::Graph;

SearchOptions storeAll() {
  SearchOptions o;
  o.storeLimit = 100000;
  return o;
}

/// Host: single undirected edge a--b with distinguishable endpoints.
struct TaggedEdgeFixture {
  Graph host{false};
  Graph query{false};

  TaggedEdgeFixture() {
    const auto a = host.addNode("a");
    const auto b = host.addNode("b");
    host.nodeAttrs(a).set("tag", "alpha");
    host.nodeAttrs(b).set("tag", "beta");
    host.addEdge(a, b);
    query.addNode("q0");
    query.addNode("q1");
    query.addEdge(0, 1);
  }
};

TEST(Orientation, AsymmetricConstraintSelectsOneDirection) {
  TaggedEdgeFixture f;
  // q0 (the edge's source) must land on the "alpha" endpoint.
  const auto constraints = expr::ConstraintSet::edgeOnly("rSource.tag == \"alpha\"");
  const Problem problem(f.query, f.host, constraints);

  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  ASSERT_EQ(ecf.outcome, Outcome::Complete);
  ASSERT_EQ(ecf.solutionCount, 1u);
  EXPECT_EQ(ecf.mappings[0][0], 0u);  // q0 -> a
  EXPECT_EQ(ecf.mappings[0][1], 1u);

  const EmbedResult lns = core::lnsSearch(problem, storeAll());
  ASSERT_EQ(lns.solutionCount, 1u);
  EXPECT_EQ(lns.mappings[0], ecf.mappings[0]);

  const EmbedResult naive = baseline::naiveSearch(problem, storeAll());
  EXPECT_EQ(naive.solutionCount, 1u);

  const EmbedResult rwb = core::rwbSearch(problem, storeAll());
  ASSERT_EQ(rwb.solutionCount, 1u);
  EXPECT_EQ(rwb.mappings[0], ecf.mappings[0]);
}

TEST(Orientation, SymmetricConstraintAllowsBothDirections) {
  TaggedEdgeFixture f;
  const auto constraints =
      expr::ConstraintSet::edgeOnly("rEdge.w == rEdge.w || true");  // tautology
  const Problem problem(f.query, f.host, constraints);
  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  EXPECT_EQ(ecf.solutionCount, 2u);  // both orientations
}

TEST(Orientation, VerifierAgreesWithEngines) {
  TaggedEdgeFixture f;
  const auto constraints = expr::ConstraintSet::edgeOnly("rSource.tag == \"alpha\"");
  const Problem problem(f.query, f.host, constraints);
  EXPECT_TRUE(core::verifyMapping(problem, {0, 1}).ok);
  EXPECT_FALSE(core::verifyMapping(problem, {1, 0}).ok);
}

TEST(Orientation, QuerySideEndpointAttrsBindPerUse) {
  // Query path q0-q1-q2 where the constraint ties query endpoint attrs to
  // host endpoint attrs: "the host endpoint under the query edge's source
  // must carry the same color".
  Graph host(false);
  const auto r0 = host.addNode();
  const auto r1 = host.addNode();
  const auto r2 = host.addNode();
  host.nodeAttrs(r0).set("color", "red");
  host.nodeAttrs(r1).set("color", "green");
  host.nodeAttrs(r2).set("color", "blue");
  host.addEdge(r0, r1);
  host.addEdge(r1, r2);

  Graph query(false);
  query.addNode();
  query.addNode();
  query.addNode();
  query.nodeAttrs(0).set("want", "red");
  query.nodeAttrs(1).set("want", "green");
  query.nodeAttrs(2).set("want", "blue");
  query.addEdge(0, 1);
  query.addEdge(1, 2);

  const auto constraints = expr::ConstraintSet::edgeOnly(
      "vSource.want == rSource.color && vTarget.want == rTarget.color");
  const Problem problem(query, host, constraints);

  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  ASSERT_EQ(ecf.solutionCount, 1u);
  EXPECT_EQ(ecf.mappings[0], (core::Mapping{0, 1, 2}));
  const EmbedResult lns = core::lnsSearch(problem, storeAll());
  EXPECT_EQ(lns.solutionCount, 1u);
}

TEST(Orientation, GeoConstraintOnHostEndpoints) {
  // Paper-style geographic constraint: host endpoints must be within 100km.
  Graph host(false);
  for (int i = 0; i < 3; ++i) {
    const auto n = host.addNode();
    host.nodeAttrs(n).set("x", i * 80.0);
    host.nodeAttrs(n).set("y", 0.0);
  }
  host.addEdge(0, 1);  // 80 km apart
  host.addEdge(0, 2);  // 160 km apart
  host.addEdge(1, 2);  // 80 km apart
  const Graph query = topo::line(2);
  const auto constraints = expr::ConstraintSet::edgeOnly(
      "sqrt((rSource.x-rTarget.x)*(rSource.x-rTarget.x)+"
      "(rSource.y-rTarget.y)*(rSource.y-rTarget.y)) < 100.0");
  const Problem problem(query, host, constraints);
  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  EXPECT_EQ(ecf.solutionCount, 4u);  // edges (0,1) and (1,2), both directions
  const EmbedResult lns = core::lnsSearch(problem, storeAll());
  EXPECT_EQ(lns.solutionCount, 4u);
}

TEST(Orientation, MixedSymmetricAndAsymmetricConjuncts) {
  TaggedEdgeFixture f;
  f.host.edgeAttrs(0).set("delay", 5.0);
  f.query.edgeAttrs(0).set("maxDelay", 10.0);
  const auto constraints = expr::ConstraintSet::edgeOnly(
      "rEdge.delay <= vEdge.maxDelay && rSource.tag == \"beta\"");
  const Problem problem(f.query, f.host, constraints);
  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  ASSERT_EQ(ecf.solutionCount, 1u);
  EXPECT_EQ(ecf.mappings[0][0], 1u);  // q0 -> b this time
}

}  // namespace
