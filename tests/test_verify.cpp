#include "core/verify.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::Mapping;
using core::Problem;
using core::verifyMapping;
using graph::Graph;
using graph::kInvalidNode;

const expr::ConstraintSet kNone;

TEST(Verify, AcceptsValidMapping) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const Mapping m{0, 1, 2};
  const auto v = verifyMapping(Problem(query, host, kNone), m);
  EXPECT_TRUE(v.ok);
  EXPECT_TRUE(v.reason.empty());
  EXPECT_TRUE(static_cast<bool>(v));
}

TEST(Verify, RejectsWrongSize) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const auto v = verifyMapping(Problem(query, host, kNone), Mapping{0, 1});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("size"), std::string::npos);
}

TEST(Verify, RejectsUnmappedNode) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const auto v = verifyMapping(Problem(query, host, kNone), Mapping{0, kInvalidNode, 2});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("unmapped"), std::string::npos);
}

TEST(Verify, RejectsNonInjective) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const auto v = verifyMapping(Problem(query, host, kNone), Mapping{0, 1, 0});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("injective"), std::string::npos);
}

TEST(Verify, RejectsOutOfRange) {
  const Graph query = topo::line(2);
  const Graph host = topo::ring(3);
  const auto v = verifyMapping(Problem(query, host, kNone), Mapping{0, 77});
  EXPECT_FALSE(v.ok);
}

TEST(Verify, RejectsMissingHostEdge) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  // 0 and 2 are not adjacent in C4.
  const auto v = verifyMapping(Problem(query, host, kNone), Mapping{0, 2, 1});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("no host edge"), std::string::npos);
}

TEST(Verify, RejectsEdgeConstraintViolation) {
  Graph host(false);
  host.addNode();
  host.addNode();
  host.edgeAttrs(host.addEdge(0, 1)).set("delay", 100.0);
  Graph query = topo::line(2);
  topo::setAllEdges(query, "maxDelay", 10.0);
  const auto constraints = expr::ConstraintSet::edgeOnly("rEdge.delay <= vEdge.maxDelay");
  const auto v = verifyMapping(Problem(query, host, constraints), Mapping{0, 1});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("edge constraint"), std::string::npos);
}

TEST(Verify, RejectsNodeConstraintViolation) {
  Graph host = topo::line(2);
  host.nodeAttrs(0).set("cpu", 100);
  host.nodeAttrs(1).set("cpu", 100);
  Graph query = topo::line(2);
  topo::setAllNodes(query, "minCpu", 500);
  const auto constraints = expr::ConstraintSet::parse("", "rNode.cpu >= vNode.minCpu");
  const auto v = verifyMapping(Problem(query, host, constraints), Mapping{0, 1});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("node constraint"), std::string::npos);
}

TEST(Verify, DirectedOrientationChecked) {
  Graph query(true);
  query.addNode();
  query.addNode();
  query.addEdge(0, 1);
  Graph host(true);
  host.addNode();
  host.addNode();
  host.addEdge(1, 0);  // only the reverse orientation exists
  const auto v = verifyMapping(Problem(query, host, kNone), Mapping{0, 1});
  EXPECT_FALSE(v.ok);
  const auto ok = verifyMapping(Problem(query, host, kNone), Mapping{1, 0});
  EXPECT_TRUE(ok.ok);
}

TEST(Verify, FormatMappingIsReadable) {
  const Graph query = topo::line(2);
  const Graph host = topo::ring(3);
  const std::string text = core::formatMapping({2, 0}, query, host);
  EXPECT_EQ(text, "n0->n2 n1->n0");
  const std::string partial =
      core::formatMapping({2, kInvalidNode}, query, host);
  EXPECT_NE(partial.find("?"), std::string::npos);
}

}  // namespace
