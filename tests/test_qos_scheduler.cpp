// util::QosScheduler: bounded admission, overload policies (Block / Reject /
// ShedLowestPriority), strict priority classes, per-tenant weighted fair
// dequeue, admission deadlines, cancellation and the two shutdown modes.
//
// Determinism technique: a single worker plus a "gate" job that blocks it
// lets each test stage an exact queue state before any dequeue decision is
// made; the stride-based fair dequeue is then a pure function of the staged
// queue.

#include "util/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using netembed::util::OverloadPolicy;
using netembed::util::QosDropReason;
using netembed::util::QosScheduler;

constexpr auto kWaitBudget = std::chrono::seconds(30);

/// Blocks the (single) worker until open() — the staging primitive.
struct Gate {
  std::promise<void> runningPromise;
  std::shared_future<void> running = runningPromise.get_future().share();
  std::promise<void> openPromise;
  std::shared_future<void> open = openPromise.get_future().share();

  QosScheduler::Job job(int priority = 1000) {
    QosScheduler::Job j;
    j.priority = priority;  // outranks everything: always dequeues first
    j.tenant = 999;
    j.run = [this] {
      runningPromise.set_value();
      open.wait();
    };
    return j;
  }

  void waitRunning() {
    ASSERT_EQ(running.wait_for(kWaitBudget), std::future_status::ready)
        << "gate job never started";
  }
  void release() { openPromise.set_value(); }
};

/// Thread-safe execution-order recorder.
struct OrderLog {
  std::mutex mutex;
  std::vector<int> order;

  QosScheduler::Job job(int label, int priority = 0, std::uint64_t tenant = 0) {
    QosScheduler::Job j;
    j.priority = priority;
    j.tenant = tenant;
    j.run = [this, label] {
      std::lock_guard lock(mutex);
      order.push_back(label);
    };
    return j;
  }

  std::vector<int> snapshot() {
    std::lock_guard lock(mutex);
    return order;
  }
};

QosScheduler::Options singleWorker(std::size_t capacity = 0,
                                   OverloadPolicy policy = OverloadPolicy::Block) {
  QosScheduler::Options o;
  o.workers = 1;
  o.queueCapacity = capacity;
  o.overload = policy;
  return o;
}

TEST(QosScheduler, RunsAcceptedJobsAndCountsThem) {
  OrderLog log;
  {
    QosScheduler sched(singleWorker());
    Gate gate;
    ASSERT_NE(sched.submit(gate.job()), 0u);
    gate.waitRunning();
    for (int i = 0; i < 4; ++i) ASSERT_NE(sched.submit(log.job(i)), 0u);
    EXPECT_EQ(sched.queuedCount(), 4u);
    EXPECT_EQ(sched.pending(), 5u);
    gate.release();
    sched.drain();
    EXPECT_EQ(sched.pending(), 0u);
    const QosScheduler::Stats stats = sched.stats();
    EXPECT_EQ(stats.accepted, 5u);
    EXPECT_EQ(stats.completed, 5u);
    EXPECT_EQ(stats.rejected + stats.shed + stats.expired + stats.cancelled, 0u);
  }
  // Same priority, same tenant: admission order is execution order.
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(QosScheduler, HigherPriorityClassesDequeueStrictlyFirst) {
  OrderLog log;
  QosScheduler sched(singleWorker());
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  ASSERT_NE(sched.submit(log.job(/*label=*/0, /*priority=*/0)), 0u);
  ASSERT_NE(sched.submit(log.job(/*label=*/2, /*priority=*/2)), 0u);
  ASSERT_NE(sched.submit(log.job(/*label=*/1, /*priority=*/1)), 0u);
  ASSERT_NE(sched.submit(log.job(/*label=*/3, /*priority=*/2)), 0u);
  gate.release();
  sched.drain();
  // Class 2 first (FIFO within it), then 1, then 0.
  EXPECT_EQ(log.snapshot(), (std::vector<int>{2, 3, 1, 0}));
}

TEST(QosScheduler, WeightedFairDequeueHonorsTenantWeights) {
  // Saturated two-tenant queue, weights 3:1 — dequeues must interleave at
  // the configured ratio, not starve either side.
  constexpr int kPerTenant = 9;
  OrderLog log;
  QosScheduler sched(singleWorker());
  sched.setTenantWeight(1, 3.0);
  sched.setTenantWeight(2, 1.0);
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  for (int i = 0; i < kPerTenant; ++i) {
    ASSERT_NE(sched.submit(log.job(/*label=*/1, /*priority=*/0, /*tenant=*/1)), 0u);
    ASSERT_NE(sched.submit(log.job(/*label=*/2, /*priority=*/0, /*tenant=*/2)), 0u);
  }
  gate.release();
  sched.drain();

  const std::vector<int> order = log.snapshot();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * kPerTenant));
  // Within the window where both tenants still have queued work (the first
  // 12 dequeues: 9 + 3), the weight-3 tenant gets 3x the service.
  int tenant1First12 = 0;
  for (int i = 0; i < 12; ++i) tenant1First12 += order[static_cast<std::size_t>(i)] == 1;
  EXPECT_GE(tenant1First12, 8) << "weight-3 tenant under-served";
  EXPECT_LE(tenant1First12, 10) << "weight-1 tenant starved";
  // Fairness also means the light tenant is served early, not appended.
  const auto firstTenant2 = std::find(order.begin(), order.end(), 2);
  EXPECT_LT(firstTenant2 - order.begin(), 4);
  // Everything accepted eventually runs.
  EXPECT_EQ(std::count(order.begin(), order.end(), 1), kPerTenant);
  EXPECT_EQ(std::count(order.begin(), order.end(), 2), kPerTenant);
}

TEST(QosScheduler, RejectPolicyDropsNewcomerAtCapacity) {
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/2, OverloadPolicy::Reject));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  ASSERT_NE(sched.submit(log.job(0)), 0u);
  ASSERT_NE(sched.submit(log.job(1)), 0u);

  std::atomic<int> drops{0};
  QosScheduler::Job overflow = log.job(2);
  overflow.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Rejected);
    drops.fetch_add(1);
  };
  // The drop is synchronous: id 0 and the callback has fired on return.
  EXPECT_EQ(sched.submit(std::move(overflow)), 0u);
  EXPECT_EQ(drops.load(), 1);

  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0, 1}));
  EXPECT_EQ(sched.stats().rejected, 1u);
}

TEST(QosScheduler, ShedLowestPriorityEvictsMostRecentLowJob) {
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/2, OverloadPolicy::ShedLowestPriority));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  std::atomic<int> shedDrops{0};
  QosScheduler::Job lowA = log.job(/*label=*/10, /*priority=*/0);
  QosScheduler::Job lowB = log.job(/*label=*/11, /*priority=*/0);
  lowB.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Shed);
    shedDrops.fetch_add(1);
  };
  ASSERT_NE(sched.submit(std::move(lowA)), 0u);
  ASSERT_NE(sched.submit(std::move(lowB)), 0u);

  // A higher-priority newcomer evicts the most recently admitted low job
  // (lowB — lowA has waited longer and keeps its place).
  ASSERT_NE(sched.submit(log.job(/*label=*/20, /*priority=*/1)), 0u);
  EXPECT_EQ(shedDrops.load(), 1);

  // A newcomer at the lowest queued priority is itself the shed victim.
  std::atomic<int> selfShed{0};
  QosScheduler::Job lowC = log.job(/*label=*/12, /*priority=*/0);
  lowC.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Shed);
    selfShed.fetch_add(1);
  };
  EXPECT_EQ(sched.submit(std::move(lowC)), 0u);
  EXPECT_EQ(selfShed.load(), 1);

  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{20, 10}));
  EXPECT_EQ(sched.stats().shed, 2u);
}

TEST(QosScheduler, BlockPolicyWaitsForSpace) {
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/1, OverloadPolicy::Block));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  ASSERT_NE(sched.submit(log.job(0)), 0u);  // fills the queue

  std::atomic<bool> admitted{false};
  std::thread submitter([&] {
    EXPECT_NE(sched.submit(log.job(1)), 0u);
    admitted.store(true);
  });
  // The submitter must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_FALSE(admitted.load());

  gate.release();  // worker drains job 0 -> space -> submitter unblocks
  submitter.join();
  EXPECT_TRUE(admitted.load());
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0, 1}));
}

TEST(QosScheduler, AdmissionDeadlineExpiresQueuedJob) {
  OrderLog log;
  QosScheduler sched(singleWorker());
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  std::promise<QosDropReason> droppedPromise;
  auto dropped = droppedPromise.get_future();
  QosScheduler::Job stale = log.job(0);
  stale.admitBy = QosScheduler::Clock::now() - std::chrono::milliseconds(1);
  stale.onDrop = [&](QosDropReason reason) { droppedPromise.set_value(reason); };
  ASSERT_NE(sched.submit(std::move(stale)), 0u);  // queued; expiry is lazy
  ASSERT_NE(sched.submit(log.job(1)), 0u);

  gate.release();
  sched.drain();
  ASSERT_EQ(dropped.wait_for(kWaitBudget), std::future_status::ready);
  EXPECT_EQ(dropped.get(), QosDropReason::Expired);
  EXPECT_EQ(log.snapshot(), (std::vector<int>{1}));
  EXPECT_EQ(sched.stats().expired, 1u);
}

TEST(QosScheduler, BlockedSubmitterRespectsItsOwnDeadline) {
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/1, OverloadPolicy::Block));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  ASSERT_NE(sched.submit(log.job(0)), 0u);  // fills the queue

  std::atomic<int> expired{0};
  QosScheduler::Job hurried = log.job(1);
  hurried.admitBy = QosScheduler::Clock::now() + std::chrono::milliseconds(30);
  hurried.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Expired);
    expired.fetch_add(1);
  };
  // The queue stays full past the deadline: the blocked submit gives up.
  EXPECT_EQ(sched.submit(std::move(hurried)), 0u);
  EXPECT_EQ(expired.load(), 1);

  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0}));
}

TEST(QosScheduler, CancelRemovesQueuedJobExactlyOnce) {
  OrderLog log;
  QosScheduler sched(singleWorker());
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  std::atomic<int> drops{0};
  QosScheduler::Job doomed = log.job(0);
  doomed.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Cancelled);
    drops.fetch_add(1);
  };
  const QosScheduler::JobId id = sched.submit(std::move(doomed));
  ASSERT_NE(id, 0u);
  ASSERT_NE(sched.submit(log.job(1)), 0u);

  EXPECT_TRUE(sched.cancel(id));
  EXPECT_EQ(drops.load(), 1);
  EXPECT_FALSE(sched.cancel(id)) << "second cancel must miss";
  EXPECT_FALSE(sched.cancel(987654u)) << "unknown id must miss";

  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{1}));
  EXPECT_EQ(sched.stats().cancelled, 1u);
}

TEST(QosScheduler, ShutdownCancelPendingDropsQueuedJobs) {
  OrderLog log;
  QosScheduler sched(singleWorker());
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  std::promise<void> bothDroppedPromise;
  auto bothDropped = bothDroppedPromise.get_future();
  std::atomic<int> drops{0};
  for (int i = 0; i < 2; ++i) {
    QosScheduler::Job job = log.job(i);
    job.onDrop = [&](QosDropReason reason) {
      EXPECT_EQ(reason, QosDropReason::Cancelled);
      if (drops.fetch_add(1) + 1 == 2) bothDroppedPromise.set_value();
    };
    ASSERT_NE(sched.submit(std::move(job)), 0u);
  }

  // Shutdown resolves the dropped queue before joining the (still gated)
  // worker, so the drops are observable while the gate is closed.
  std::thread shutdownThread([&] {
    sched.shutdown(QosScheduler::ShutdownMode::CancelPending);
  });
  ASSERT_EQ(bothDropped.wait_for(kWaitBudget), std::future_status::ready);
  gate.release();
  shutdownThread.join();

  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_EQ(sched.stats().cancelled, 2u);
  // Post-shutdown submissions are refused.
  std::atomic<int> lateDrops{0};
  QosScheduler::Job late = log.job(9);
  late.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Rejected);
    lateDrops.fetch_add(1);
  };
  EXPECT_EQ(sched.submit(std::move(late)), 0u);
  EXPECT_EQ(lateDrops.load(), 1);
}

TEST(QosScheduler, DestructorDrainsEverythingAccepted) {
  OrderLog log;
  {
    QosScheduler sched(singleWorker());
    for (int i = 0; i < 5; ++i) ASSERT_NE(sched.submit(log.job(i)), 0u);
  }  // ~QosScheduler == shutdown(Drain)
  EXPECT_EQ(log.snapshot().size(), 5u);
}

TEST(QosScheduler, ExpiredJobsDoNotChargeTenantStride) {
  // Fairness regression: an expired-on-arrival job must not cost its tenant
  // a stride quantum. Stage tenants 1 and 2 (equal weight) behind a gate:
  // tenant 1 queues three already-expired jobs plus one live job, tenant 2
  // queues three live jobs. With the bug (stride charged at pop, before the
  // expiry check), tenant 1's pass advances to 3 while its expired jobs are
  // discarded, and its live job runs *last*. Charged only on dispatch,
  // tenant 1 still owns pass 0 after the discards, so its live job runs
  // first.
  OrderLog log;
  QosScheduler sched(singleWorker());
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  std::atomic<int> expiredDrops{0};
  for (int i = 0; i < 3; ++i) {
    QosScheduler::Job stale = log.job(/*label=*/-1, /*priority=*/0, /*tenant=*/1);
    stale.admitBy = QosScheduler::Clock::now() - std::chrono::milliseconds(1);
    stale.onDrop = [&](QosDropReason reason) {
      EXPECT_EQ(reason, QosDropReason::Expired);
      expiredDrops.fetch_add(1);
    };
    ASSERT_NE(sched.submit(std::move(stale)), 0u);
  }
  ASSERT_NE(sched.submit(log.job(/*label=*/100, /*priority=*/0, /*tenant=*/1)), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(sched.submit(log.job(/*label=*/200 + i, /*priority=*/0, /*tenant=*/2)), 0u);
  }

  gate.release();
  sched.drain();
  EXPECT_EQ(expiredDrops.load(), 3);
  EXPECT_EQ(sched.stats().expired, 3u);
  const std::vector<int> order = log.snapshot();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 100)
      << "tenant 1 lost fair share to jobs that never ran";
  EXPECT_EQ(order, (std::vector<int>{100, 200, 201, 202}));
}

TEST(QosScheduler, EdfOrdersDeadlineJobsWithinBucket) {
  // Same class, same tenant: deadline-bearing jobs dequeue earliest-deadline
  // first, ahead of deadline-free ones; the deadline-free tail keeps FIFO.
  OrderLog log;
  QosScheduler sched(singleWorker());
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  const auto now = QosScheduler::Clock::now();
  QosScheduler::Job a = log.job(0);
  a.admitBy = now + std::chrono::seconds(60);
  QosScheduler::Job b = log.job(1);
  b.admitBy = now + std::chrono::seconds(30);
  QosScheduler::Job c = log.job(2);  // no deadline
  QosScheduler::Job d = log.job(3);
  d.admitBy = now + std::chrono::seconds(90);
  QosScheduler::Job e = log.job(4);  // no deadline, after c
  for (QosScheduler::Job* j : {&a, &b, &c, &d, &e}) {
    ASSERT_NE(sched.submit(std::move(*j)), 0u);
  }

  gate.release();
  sched.drain();
  // b (30 s) < a (60 s) < d (90 s) < c, e (unbounded, admission order).
  EXPECT_EQ(log.snapshot(), (std::vector<int>{1, 0, 3, 2, 4}));
}

TEST(QosScheduler, LowPriorityWatermarkShedsEarly) {
  // Watermark 0.5 over capacity 4: once 2 jobs are queued, a newcomer that
  // ranks strictly below the highest queued class is shed even though the
  // queue still has room — the headroom is reserved for the top class.
  QosScheduler::Options options =
      singleWorker(/*capacity=*/4, OverloadPolicy::ShedLowestPriority);
  options.control.lowPriorityShedWatermark = 0.5;
  QosScheduler sched(options);
  OrderLog log;
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  ASSERT_NE(sched.submit(log.job(/*label=*/0, /*priority=*/2)), 0u);
  ASSERT_NE(sched.submit(log.job(/*label=*/1, /*priority=*/2)), 0u);
  ASSERT_EQ(sched.queuedCount(), 2u);

  std::atomic<int> shedDrops{0};
  QosScheduler::Job low = log.job(/*label=*/9, /*priority=*/0);
  low.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Shed);
    shedDrops.fetch_add(1);
  };
  EXPECT_EQ(sched.submit(std::move(low)), 0u) << "below-watermark shed missed";
  EXPECT_EQ(shedDrops.load(), 1);

  // Top-class work still uses the remaining headroom.
  ASSERT_NE(sched.submit(log.job(/*label=*/2, /*priority=*/2)), 0u);
  EXPECT_EQ(sched.queuedCount(), 3u);

  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sched.stats().shed, 1u);
}

TEST(QosScheduler, AdaptiveCapacityDerivesFromServiceTimes) {
  // Two completed ~25 ms jobs warm the class-0 EWMA; a 50 ms target delay
  // over one worker then derives capacity ceil(50 / ewma) in [1, 2], clamped
  // up to minCapacity 2 — far below the static bound of 64.
  QosScheduler::Options options = singleWorker(/*capacity=*/64, OverloadPolicy::Reject);
  options.control.adaptiveCapacity = true;
  options.control.targetQueueDelay = std::chrono::milliseconds(50);
  options.control.minCapacity = 2;
  QosScheduler sched(options);

  // Before any completion the static capacity applies.
  EXPECT_EQ(sched.stats().effectiveCapacity, 64u);

  for (int i = 0; i < 2; ++i) {
    QosScheduler::Job slow;
    slow.run = [] { std::this_thread::sleep_for(std::chrono::milliseconds(25)); };
    ASSERT_NE(sched.submit(std::move(slow)), 0u);
  }
  sched.drain();
  EXPECT_EQ(sched.stats().effectiveCapacity, 2u);

  // Overload against the derived bound: behind a gated worker, only 2 of 6
  // quick jobs fit; the static capacity of 64 would have taken all of them.
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  OrderLog log;
  std::atomic<int> rejections{0};
  for (int i = 0; i < 6; ++i) {
    QosScheduler::Job j = log.job(i);
    j.onDrop = [&](QosDropReason reason) {
      EXPECT_EQ(reason, QosDropReason::Rejected);
      rejections.fetch_add(1);
    };
    (void)sched.submit(std::move(j));
  }
  EXPECT_EQ(rejections.load(), 4);
  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot().size(), 2u);

  // Per-class signals are surfaced: class 0 completed the two warm-up jobs
  // with a plausibly-sized EWMA (the gate and quick jobs shift it later, so
  // only the floor is asserted here).
  const QosScheduler::Stats stats = sched.stats();
  ASSERT_FALSE(stats.classes.empty());
  const auto class0 = std::find_if(
      stats.classes.begin(), stats.classes.end(),
      [](const QosScheduler::Stats::ClassStats& c) { return c.priority == 0; });
  ASSERT_NE(class0, stats.classes.end());
  EXPECT_GE(class0->completed, 4u);  // 2 warm-ups + 2 admitted quick jobs
  EXPECT_GT(class0->serviceEwmaMs, 0.0);
  EXPECT_GE(class0->waitSamples, 4u);
}

TEST(QosScheduler, ShutdownDrainWakesBlockedSubmitterAsRejected) {
  // A submitter parked on spaceCv must not outlive shutdown: Drain wakes it
  // and refuses the job with Rejected (the queue's contents still run).
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/1, OverloadPolicy::Block));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  ASSERT_NE(sched.submit(log.job(0)), 0u);  // fills the queue

  std::atomic<int> rejectedDrops{0};
  std::thread submitter([&] {
    QosScheduler::Job blocked = log.job(1);
    blocked.onDrop = [&](QosDropReason reason) {
      EXPECT_EQ(reason, QosDropReason::Rejected);
      rejectedDrops.fetch_add(1);
    };
    EXPECT_EQ(sched.submit(std::move(blocked)), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  std::thread shutdownThread([&] {
    sched.shutdown(QosScheduler::ShutdownMode::Drain);
  });
  submitter.join();  // woken by shutdown, not by space
  EXPECT_EQ(rejectedDrops.load(), 1);
  gate.release();
  shutdownThread.join();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0}));  // queued job still ran
}

TEST(QosScheduler, ShutdownCancelPendingWakesBlockedSubmitterAsRejected) {
  // CancelPending: the blocked submitter is still Rejected (its job was
  // never admitted), while the queued job resolves Cancelled unrun.
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/1, OverloadPolicy::Block));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();

  std::atomic<int> cancelledDrops{0};
  QosScheduler::Job queued = log.job(0);
  queued.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Cancelled);
    cancelledDrops.fetch_add(1);
  };
  ASSERT_NE(sched.submit(std::move(queued)), 0u);

  std::atomic<int> rejectedDrops{0};
  std::thread submitter([&] {
    QosScheduler::Job blocked = log.job(1);
    blocked.onDrop = [&](QosDropReason reason) {
      EXPECT_EQ(reason, QosDropReason::Rejected);
      rejectedDrops.fetch_add(1);
    };
    EXPECT_EQ(sched.submit(std::move(blocked)), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  std::thread shutdownThread([&] {
    sched.shutdown(QosScheduler::ShutdownMode::CancelPending);
  });
  submitter.join();
  EXPECT_EQ(rejectedDrops.load(), 1);
  gate.release();
  shutdownThread.join();
  EXPECT_EQ(cancelledDrops.load(), 1);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(QosScheduler, TrySubmitNeverBlocksUnderBlockPolicy) {
  OrderLog log;
  QosScheduler sched(singleWorker(/*capacity=*/1, OverloadPolicy::Block));
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  ASSERT_NE(sched.trySubmit(log.job(0)), 0u);  // space available: admitted

  std::atomic<int> rejectedDrops{0};
  QosScheduler::Job overflow = log.job(1);
  overflow.onDrop = [&](QosDropReason reason) {
    EXPECT_EQ(reason, QosDropReason::Rejected);
    rejectedDrops.fetch_add(1);
  };
  // Full queue: trySubmit returns immediately instead of parking on spaceCv.
  EXPECT_EQ(sched.trySubmit(std::move(overflow)), 0u);
  EXPECT_EQ(rejectedDrops.load(), 1);

  gate.release();
  sched.drain();
  EXPECT_EQ(log.snapshot(), (std::vector<int>{0}));
}

TEST(QosScheduler, AdmissionWaitPercentilesTrackQueueTime) {
  QosScheduler sched(singleWorker());
  EXPECT_EQ(sched.stats().admissionWaitSamples, 0u);
  EXPECT_EQ(sched.stats().admissionWaitP50Ms, 0.0);

  // Stage a backlog behind a gate: each queued job's wait spans at least the
  // gate's hold time, so the percentiles must come out strictly positive.
  Gate gate;
  ASSERT_NE(sched.submit(gate.job()), 0u);
  gate.waitRunning();
  OrderLog log;
  constexpr int kJobs = 16;
  for (int i = 0; i < kJobs; ++i) ASSERT_NE(sched.submit(log.job(i)), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  gate.release();
  sched.drain();

  const QosScheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.admissionWaitSamples, static_cast<std::uint64_t>(kJobs) + 1);
  EXPECT_GT(stats.admissionWaitP50Ms, 0.0);
  EXPECT_GE(stats.admissionWaitP99Ms, stats.admissionWaitP50Ms);
  // Every backlogged job waited through the 15 ms gate hold; even the p50
  // over all samples (gate included) clears a loose floor.
  EXPECT_GE(stats.admissionWaitP99Ms, 10.0);
}

}  // namespace
