// The asynchronous batched front end: futures and callbacks resolve, queued
// requests share stage-1 plans per model version, version bumps invalidate
// the cache, and concurrent submitters survive a mutating reservation thread.
// Plus the request-lifecycle API v2: SubmitTicket status/cancel, streaming
// onSolution, QoS admission (priorities, deadlines, budgets, overload
// policies) and the two shutdown modes.

#include "service/async.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/plan.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using service::AsyncNetEmbedService;
using service::AsyncServiceOptions;
using service::EmbedRequest;
using service::EmbedResponse;
using service::NetworkModel;
using service::RequestStatus;
using service::SubmitTicket;
using service::TicketCallbacks;
using graph::Graph;

constexpr auto kResolveBudget = std::chrono::seconds(60);

Graph asyncHost() {
  trace::PlanetLabOptions o;
  o.sites = 40;
  o.clusters = 5;
  o.deadSites = 0;
  o.pairLossRate = 0.3;
  o.seed = 11;
  Graph host = trace::synthesize(o);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("slots", 64.0);
  }
  return host;
}

EmbedRequest delayRequest(const Graph& host, std::uint64_t seed,
                          std::size_t maxSolutions = 1) {
  util::Rng rng(seed);
  auto sub = topo::sampleConnectedSubgraph(host, 5, 6, rng);
  topo::widenDelayWindows(sub.graph, 0.1);
  EmbedRequest request;
  request.query = std::move(sub.graph);
  request.edgeConstraint = topo::delayWindowConstraint();
  request.options.maxSolutions = maxSolutions;
  return request;
}

EmbedResponse resolve(std::future<EmbedResponse>& future) {
  if (future.wait_for(kResolveBudget) != std::future_status::ready) {
    ADD_FAILURE() << "future did not resolve within the budget";
    std::abort();  // a hung scheduler would otherwise stall the whole suite
  }
  return future.get();
}

EmbedResponse resolve(SubmitTicket& ticket) { return resolve(ticket.future()); }

/// Topology-only enumeration with a huge solution space: a 3-node path into
/// the PlanetLab mesh — ideal for observing streaming/cancellation mid-run.
EmbedRequest pathRequest(std::size_t maxSolutions, std::size_t storeLimit = 8) {
  EmbedRequest request;
  request.query = topo::line(3);
  request.algorithm = Algorithm::ECF;  // serial, deterministic, streams in order
  request.options.maxSolutions = maxSolutions;
  request.options.storeLimit = storeLimit;
  return request;
}

/// A streaming sink that parks the worker inside the FIRST onSolution call
/// until release() — the staging primitive for deterministic mid-search
/// cancellation: while parked, the request is provably mid-enumeration.
struct StreamGate {
  std::promise<void> firstPromise;
  std::shared_future<void> first = firstPromise.get_future().share();
  std::promise<void> releasePromise;
  std::shared_future<void> release = releasePromise.get_future().share();
  std::atomic<bool> armed{true};

  core::SolutionSink sink() {
    return [this](const core::Mapping&) {
      if (armed.exchange(false)) {
        firstPromise.set_value();
        release.wait();
      }
      return true;
    };
  }

  void waitFirst() {
    ASSERT_EQ(first.wait_for(kResolveBudget), std::future_status::ready)
        << "no solution streamed";
  }
  void open() { releasePromise.set_value(); }
};

TEST(AsyncService, FutureResolvesWithFeasibleMapping) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 1);
  auto future = svc.submitAsync(request);
  const EmbedResponse response = resolve(future);
  ASSERT_TRUE(response.result.feasible());
  EXPECT_EQ(response.modelVersion, svc.version());

  const auto constraints =
      expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  const core::Problem problem(request.query, *svc.hostSnapshot(), constraints);
  EXPECT_TRUE(core::verifyMapping(problem, response.result.mappings.front()).ok);
}

TEST(AsyncService, BatchOfIdenticalQueriesBuildsExactlyOnePlan) {
  AsyncServiceOptions options;
  options.workers = 2;
  AsyncNetEmbedService svc(asyncHost(), options);
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 2);
  request.algorithm = Algorithm::ECF;  // a plan-using engine, deterministically

  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  std::vector<std::future<EmbedResponse>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(svc.submitAsync(request));
  for (auto& future : futures) {
    const EmbedResponse response = resolve(future);
    EXPECT_TRUE(response.result.feasible());
    EXPECT_EQ(response.algorithmUsed, Algorithm::ECF);
  }
  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 1u)
      << "a same-signature batch must share one stage-1 build";

  const auto stats = svc.planCacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

TEST(AsyncService, VersionBumpRekeysCachedPlansInsteadOfInvalidating) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 3);
  request.algorithm = Algorithm::ECF;

  const std::uint64_t builds0 = core::filterPlanBuilds();
  const std::uint64_t patches0 = core::filterPlanPatches();
  auto f1 = svc.submitAsync(request);
  const EmbedResponse r1 = resolve(f1);
  ASSERT_TRUE(r1.result.feasible());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);

  // Same signature again at the same version: pure cache hit, no build.
  auto f2 = svc.submitAsync(request);
  (void)resolve(f2);
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);

  // A reservation bumps the model version, but it only touches "slots" —
  // which the delay constraint never reads. The delta proves the cached plan
  // untouched, so the post-bump query reuses it: no rebuild, no patch.
  EmbedRequest reserveReq = request;
  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"slots"};
  for (graph::NodeId n = 0; n < reserveReq.query.nodeCount(); ++n) {
    reserveReq.query.nodeAttrs(n).set("slots", 1.0);
  }
  const auto id = svc.reserve(reserveReq.query, r1.result.mappings.front(), spec);
  EXPECT_GT(svc.version(), r1.modelVersion);

  auto f3 = svc.submitAsync(request);
  const EmbedResponse r3 = resolve(f3);
  EXPECT_EQ(r3.modelVersion, svc.version());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u)
      << "an irrelevant delta must not force a rebuild";
  EXPECT_EQ(core::filterPlanPatches() - patches0, 0u);
  EXPECT_EQ(svc.planCacheStats().invalidations, 0u);
  EXPECT_GE(svc.planCacheStats().rekeys, 1u);

  // A constraint-relevant mutation (one link's delay floor) is patched —
  // still no from-scratch rebuild.
  const auto host = svc.hostSnapshot();
  const double floorDelay = host->edgeAttrs(0).getDouble("minDelay", 5.0);
  svc.setEdgeMetric(host->edgeSource(0), host->edgeTarget(0), "minDelay",
                    floorDelay * 1.01);
  auto f4 = svc.submitAsync(request);
  const EmbedResponse r4 = resolve(f4);
  EXPECT_EQ(r4.modelVersion, svc.version());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);
  EXPECT_EQ(core::filterPlanPatches() - patches0, 1u)
      << "a relevant single-edge delta must patch, not rebuild";
  svc.release(id);
}

TEST(AsyncService, CallbackOverloadDeliversResponse) {
  AsyncNetEmbedService svc(asyncHost());
  std::promise<EmbedResponse> delivered;
  svc.submitAsync(delayRequest(*svc.hostSnapshot(), 4),
                  [&](EmbedResponse response, std::exception_ptr error) {
                    EXPECT_FALSE(error);
                    delivered.set_value(std::move(response));
                  });
  auto future = delivered.get_future();
  const EmbedResponse response = resolve(future);
  EXPECT_TRUE(response.result.feasible());
  EXPECT_EQ(response.modelVersion, svc.version());
}

TEST(AsyncService, CallbackOverloadDeliversErrors) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest bad = delayRequest(*svc.hostSnapshot(), 5);
  bad.edgeConstraint = "vEdge..broken";
  std::promise<std::exception_ptr> delivered;
  svc.submitAsync(std::move(bad), [&](EmbedResponse, std::exception_ptr error) {
    delivered.set_value(error);
  });
  const std::exception_ptr error = delivered.get_future().get();
  ASSERT_TRUE(error);
  EXPECT_THROW(std::rethrow_exception(error), expr::SyntaxError);
}

TEST(AsyncService, SyntaxErrorPropagatesThroughFuture) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest bad = delayRequest(*svc.hostSnapshot(), 6);
  bad.edgeConstraint = "vEdge..broken";
  auto future = svc.submitAsync(std::move(bad));
  EXPECT_THROW((void)future.get(), expr::SyntaxError);
}

TEST(AsyncService, QueuedRequestsDoNotEscalateToPortfolio) {
  // The scheduler runs one engine per queued request; only an explicit
  // Algorithm::Portfolio request may race (regardless of core count).
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 7);
  ASSERT_FALSE(request.algorithm.has_value());
  ASSERT_EQ(request.options.maxSolutions, 1u);
  auto future = svc.submitAsync(request);
  const EmbedResponse response = resolve(future);
  EXPECT_TRUE(response.result.feasible());
  EXPECT_EQ(response.diagnostics.find("portfolio"), std::string::npos)
      << response.diagnostics;

  request.algorithm = Algorithm::Portfolio;
  auto raced = svc.submitAsync(request);
  const EmbedResponse racedResponse = resolve(raced);
  EXPECT_TRUE(racedResponse.result.feasible());
  EXPECT_NE(racedResponse.diagnostics.find("portfolio"), std::string::npos)
      << racedResponse.diagnostics;
}

TEST(AsyncService, DrainResolvesEverythingAccepted) {
  AsyncServiceOptions options;
  options.workers = 2;
  AsyncNetEmbedService svc(asyncHost(), options);
  std::vector<std::future<EmbedResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(svc.submitAsync(delayRequest(*svc.hostSnapshot(), 20 + i)));
  }
  svc.drain();
  EXPECT_EQ(svc.pendingRequests(), 0u);
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(future.get().result.feasible());
  }
}

TEST(AsyncService, DestructorDrainsInFlightRequests) {
  std::vector<std::future<EmbedResponse>> futures;
  {
    AsyncNetEmbedService svc(asyncHost());
    for (int i = 0; i < 6; ++i) {
      futures.push_back(svc.submitAsync(delayRequest(*svc.hostSnapshot(), 40 + i)));
    }
  }  // ~AsyncNetEmbedService drains the queue
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(future.get().result.feasible());
  }
}

// The archetype stress test: N submitter threads race mixed first-match and
// enumeration queries while a reservation thread bumps the model version.
// Every future must resolve, every response must carry a version that
// existed, and no feasible mapping may violate its constraints (reservations
// only touch "slots", which the delay constraint never reads, so mappings
// verify against any snapshot).
TEST(AsyncService, StressConcurrentSubmittersAndReservations) {
  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerThread = 8;
  constexpr int kReservationRounds = 4;

  AsyncServiceOptions options;
  options.workers = 3;
  options.planCacheCapacity = 8;
  AsyncNetEmbedService svc(asyncHost(), options);
  const std::uint64_t v0 = svc.version();

  std::atomic<std::uint64_t> reservationsMade{0};
  std::thread reserver([&] {
    NetworkModel::ReservationSpec spec;
    spec.nodeCapacityAttrs = {"slots"};
    for (int round = 0; round < kReservationRounds; ++round) {
      EmbedRequest request = delayRequest(*svc.hostSnapshot(), 100 + round);
      for (graph::NodeId n = 0; n < request.query.nodeCount(); ++n) {
        request.query.nodeAttrs(n).set("slots", 1.0);
      }
      auto future = svc.submitAsync(request);
      const EmbedResponse response = resolve(future);
      if (!response.result.feasible()) continue;
      try {
        const auto id =
            svc.reserve(request.query, response.result.mappings.front(), spec);
        reservationsMade.fetch_add(1, std::memory_order_relaxed);
        svc.release(id);  // another version bump
      } catch (const std::exception&) {
        // Capacity raced away — legal under concurrency, not a failure.
      }
    }
  });

  std::vector<std::thread> submitters;
  std::atomic<int> resolved{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::pair<EmbedRequest, std::future<EmbedResponse>>> inflight;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // Mix first-match and bounded enumeration signatures; reuse a few
        // seeds across threads so the plan cache sees concurrent sharers.
        EmbedRequest request = delayRequest(
            *svc.hostSnapshot(), 200 + (t * kQueriesPerThread + i) % 5,
            i % 2 == 0 ? 1 : 4);
        auto future = svc.submitAsync(request);
        inflight.emplace_back(std::move(request), std::move(future));
      }
      for (auto& [request, future] : inflight) {
        const EmbedResponse response = resolve(future);
        resolved.fetch_add(1, std::memory_order_relaxed);
        if (response.modelVersion < v0) failures.fetch_add(1);
        if (response.result.feasible()) {
          const auto constraints =
              expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
          const auto host = svc.hostSnapshot();
          const core::Problem problem(request.query, *host, constraints);
          for (const core::Mapping& m : response.result.mappings) {
            if (!core::verifyMapping(problem, m).ok) failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  reserver.join();

  EXPECT_EQ(resolved.load(), kSubmitters * kQueriesPerThread);
  EXPECT_EQ(failures.load(), 0);
  const std::uint64_t finalVersion = svc.version();
  EXPECT_GE(finalVersion, v0 + 2 * reservationsMade.load());
  // Post-drain sanity: a fresh query runs against the final version.
  auto future = svc.submitAsync(delayRequest(*svc.hostSnapshot(), 300));
  EXPECT_EQ(resolve(future).modelVersion, finalVersion);
}

// Delta-path stress: monitoring mutators rewrite constraint-relevant link
// metrics and irrelevant node attrs while submitters race same-signature
// queries, so cached plans are concurrently re-keyed, patched, reused and
// (for raced unready builders) dropped. Every future must resolve, versions
// must be monotonic, and after the feed quiesces the patched plan chain must
// agree byte-for-byte with a from-scratch service over the final host.
TEST(AsyncService, StressMutateWhileQueryKeepsPatchedPlansExact) {
  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerThread = 6;
  constexpr int kMutationsPerThread = 24;

  AsyncServiceOptions options;
  options.workers = 3;
  options.planCacheCapacity = 8;
  AsyncNetEmbedService svc(asyncHost(), options);
  const std::uint64_t v0 = svc.version();

  std::atomic<bool> stopMutating{false};
  std::vector<std::thread> mutators;
  for (int m = 0; m < 2; ++m) {
    mutators.emplace_back([&, m] {
      util::Rng rng(500 + m);
      const auto pristine = svc.hostSnapshot();
      for (int i = 0; i < kMutationsPerThread && !stopMutating.load(); ++i) {
        if (i % 3 == 2) {
          // Irrelevant to the delay constraint: exercises pure reuse.
          svc.setNodeAttr(static_cast<graph::NodeId>(rng.index(pristine->nodeCount())),
                          "load", rng.uniform(0.0, 1.0));
        } else {
          const auto e =
              static_cast<graph::EdgeId>(rng.index(pristine->edgeCount()));
          const double delay =
              pristine->edgeAttrs(e).getDouble("minDelay", 5.0);
          svc.setEdgeMetric(pristine->edgeSource(e), pristine->edgeTarget(e),
                            "minDelay",
                            delay * (rng.bernoulli(0.5) ? 1.02 : 0.98));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<std::thread> submitters;
  std::atomic<int> resolved{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // A few shared seeds: concurrent same-signature queries hit the same
        // (possibly patch-pending) builder.
        EmbedRequest request =
            delayRequest(*svc.hostSnapshot(), 400 + (t + i) % 3, 2);
        request.algorithm = Algorithm::ECF;
        auto future = svc.submitAsync(std::move(request));
        const EmbedResponse response = resolve(future);
        resolved.fetch_add(1, std::memory_order_relaxed);
        if (response.status != RequestStatus::Done) failures.fetch_add(1);
        if (response.modelVersion < v0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  stopMutating.store(true);
  for (std::thread& thread : mutators) thread.join();
  EXPECT_EQ(resolved.load(), kSubmitters * kQueriesPerThread);
  EXPECT_EQ(failures.load(), 0);

  // Quiesced ground truth: the (re-keyed, possibly patch-chained) cache must
  // answer exactly like a fresh service over the final host.
  EmbedRequest finalRequest = delayRequest(*svc.hostSnapshot(), 401, 0);
  finalRequest.algorithm = Algorithm::ECF;
  finalRequest.options.storeLimit = 10000;
  auto cachedFuture = svc.submitAsync(finalRequest);
  const EmbedResponse viaCache = resolve(cachedFuture);
  service::NetEmbedService fresh{
      service::NetworkModel(graph::Graph(*svc.hostSnapshot()))};
  const EmbedResponse viaFresh = fresh.submit(finalRequest);
  EXPECT_EQ(viaCache.result.solutionCount, viaFresh.result.solutionCount);
  EXPECT_EQ(viaCache.result.mappings, viaFresh.result.mappings);
}

// --- request lifecycle v2: tickets, streaming, QoS admission -----------------

// The acceptance scenario: solutions stream out while the enumeration is
// still running, the ticket cancel stops the engine mid-search, and the
// cancelled run provably expanded fewer tree nodes than the uncancelled one.
TEST(AsyncService, TicketStreamsThenCancelStopsEngineEarly) {
  constexpr std::size_t kMax = 2000;
  const Graph host = asyncHost();

  // Uncancelled reference over the same host/request.
  service::NetEmbedService reference{NetworkModel(Graph(host))};
  const EmbedResponse full = reference.submit(pathRequest(kMax));
  ASSERT_EQ(full.result.solutionCount, kMax)
      << "the instance must be rich enough to observe a mid-run cancel";
  const std::uint64_t fullVisits = full.result.stats.treeNodesVisited;

  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(Graph(host), options);
  StreamGate gate;
  SubmitTicket ticket = svc.submit(pathRequest(kMax), {gate.sink(), {}});
  gate.waitFirst();  // >= 1 onSolution fired, enumeration still in flight
  EXPECT_EQ(ticket.status(), RequestStatus::Running);
  EXPECT_TRUE(ticket.cancel());
  gate.open();

  const EmbedResponse cancelled = resolve(ticket);
  EXPECT_EQ(cancelled.status, RequestStatus::Cancelled);
  EXPECT_EQ(ticket.status(), RequestStatus::Cancelled);
  EXPECT_GE(ticket.solutionsStreamed(), 1u);
  EXPECT_GE(cancelled.result.solutionCount, 1u);
  EXPECT_LT(cancelled.result.solutionCount, kMax)
      << "cancel must truncate the enumeration";
  EXPECT_LT(cancelled.result.stats.treeNodesVisited, fullVisits)
      << "the engine must stop expanding nodes once cancelled";
  EXPECT_NE(cancelled.result.outcome, core::Outcome::Complete);
}

// Differential: the ticket API returns byte-identical results to the legacy
// submit path for the same seed/options — deterministic ECF enumeration and
// a seeded RWB walk.
TEST(AsyncService, TicketResultsMatchLegacySubmitByteForByte) {
  const Graph host = asyncHost();
  service::NetEmbedService sync{NetworkModel(Graph(host))};
  AsyncNetEmbedService svc{Graph(host)};

  EmbedRequest ecf = pathRequest(/*maxSolutions=*/32, /*storeLimit=*/32);
  const EmbedResponse viaLegacy = sync.submit(ecf);
  SubmitTicket ecfTicket = svc.submit(ecf);
  const EmbedResponse viaTicket = resolve(ecfTicket);
  EXPECT_EQ(viaTicket.status, RequestStatus::Done);
  EXPECT_EQ(viaTicket.algorithmUsed, viaLegacy.algorithmUsed);
  EXPECT_EQ(viaTicket.result.outcome, viaLegacy.result.outcome);
  EXPECT_EQ(viaTicket.result.solutionCount, viaLegacy.result.solutionCount);
  EXPECT_EQ(viaTicket.result.mappings, viaLegacy.result.mappings);
  EXPECT_EQ(ecfTicket.solutionsStreamed(), viaLegacy.result.solutionCount);

  EmbedRequest rwb = delayRequest(host, /*seed=*/12, /*maxSolutions=*/4);
  rwb.algorithm = Algorithm::RWB;
  rwb.options.storeLimit = 4;
  rwb.options.seed = 77;
  const EmbedResponse rwbLegacy = sync.submit(rwb);
  SubmitTicket rwbTicket = svc.submit(rwb);
  const EmbedResponse rwbViaTicket = resolve(rwbTicket);
  EXPECT_EQ(rwbViaTicket.result.solutionCount, rwbLegacy.result.solutionCount);
  EXPECT_EQ(rwbViaTicket.result.mappings, rwbLegacy.result.mappings);
}

// Regression (the leaked-promise fix): cancelling a queued-but-not-started
// request must resolve its future with a Cancelled status immediately.
TEST(AsyncService, CancelQueuedRequestResolvesFutureWithCancelledStatus) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;
  SubmitTicket runner = svc.submit(pathRequest(/*maxSolutions=*/5), {gate.sink(), {}});
  gate.waitFirst();  // the single worker is provably busy

  SubmitTicket queued = svc.submit(delayRequest(*svc.hostSnapshot(), 61));
  EXPECT_EQ(queued.status(), RequestStatus::Queued);
  EXPECT_TRUE(queued.cancel());
  ASSERT_EQ(queued.future().wait_for(kResolveBudget), std::future_status::ready)
      << "a cancelled queued request must not leak a never-satisfied promise";
  const EmbedResponse response = queued.future().get();
  EXPECT_EQ(response.status, RequestStatus::Cancelled);
  EXPECT_EQ(response.result.solutionCount, 0u);
  EXPECT_EQ(queued.status(), RequestStatus::Cancelled);
  EXPECT_FALSE(queued.cancel()) << "cancel on a resolved ticket reports false";

  gate.open();
  EXPECT_EQ(resolve(runner).status, RequestStatus::Done);
}

// Explicit shutdown mode (vs the always-drain destructor of old): queued
// requests resolve Cancelled without running; the running one is stopped
// cooperatively and resolves with its partial result.
TEST(AsyncService, ShutdownCancelPendingResolvesQueuedAndRunning) {
  AsyncServiceOptions options;
  options.workers = 1;
  options.shutdownMode = AsyncNetEmbedService::ShutdownMode::CancelPending;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;
  SubmitTicket runner = svc.submit(pathRequest(/*maxSolutions=*/2000), {gate.sink(), {}});
  gate.waitFirst();
  SubmitTicket queuedA = svc.submit(delayRequest(*svc.hostSnapshot(), 62));
  SubmitTicket queuedB = svc.submit(delayRequest(*svc.hostSnapshot(), 63));

  std::thread shutdownThread(
      [&] { svc.shutdown(AsyncNetEmbedService::ShutdownMode::CancelPending); });
  // Queued futures resolve during shutdown, before the worker join (the
  // runner is still parked in its sink at this point).
  EXPECT_EQ(resolve(queuedA).status, RequestStatus::Cancelled);
  EXPECT_EQ(resolve(queuedB).status, RequestStatus::Cancelled);
  gate.open();
  shutdownThread.join();

  const EmbedResponse partial = resolve(runner);
  EXPECT_EQ(partial.status, RequestStatus::Cancelled);
  EXPECT_GE(partial.result.solutionCount, 1u);

  // Post-shutdown submissions resolve Rejected instead of hanging.
  SubmitTicket late = svc.submit(delayRequest(*svc.hostSnapshot(), 64));
  EXPECT_EQ(resolve(late).status, RequestStatus::Rejected);
}

TEST(AsyncService, HighPriorityDequeuesBeforeLowUnderSaturation) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;
  SubmitTicket runner = svc.submit(pathRequest(/*maxSolutions=*/3), {gate.sink(), {}});
  gate.waitFirst();

  std::mutex orderMutex;
  std::vector<char> order;
  const auto record = [&](char label) {
    TicketCallbacks cb;
    cb.onComplete = [&, label](const EmbedResponse&, std::exception_ptr) {
      std::lock_guard lock(orderMutex);
      order.push_back(label);
    };
    return cb;
  };
  EmbedRequest low = delayRequest(*svc.hostSnapshot(), 65);
  low.qos.priority = service::Priority::Low;
  EmbedRequest high = delayRequest(*svc.hostSnapshot(), 66);
  high.qos.priority = service::Priority::High;
  SubmitTicket lowTicket = svc.submit(std::move(low), record('L'));
  SubmitTicket highTicket = svc.submit(std::move(high), record('H'));

  gate.open();
  svc.drain();
  EXPECT_EQ(resolve(lowTicket).status, RequestStatus::Done);
  EXPECT_EQ(resolve(highTicket).status, RequestStatus::Done);
  std::lock_guard lock(orderMutex);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'H') << "the High request must jump the Low one";
  EXPECT_EQ(order[1], 'L');
}

TEST(AsyncService, AdmissionDeadlineExpiresQueuedRequest) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;
  SubmitTicket runner = svc.submit(pathRequest(/*maxSolutions=*/3), {gate.sink(), {}});
  gate.waitFirst();

  EmbedRequest hurried = delayRequest(*svc.hostSnapshot(), 67);
  hurried.qos.admissionDeadline = std::chrono::milliseconds(5);
  SubmitTicket ticket = svc.submit(std::move(hurried));
  // Hold the worker well past the deadline, then let it dequeue.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.open();

  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Expired);
  EXPECT_EQ(ticket.solutionsStreamed(), 0u);
  EXPECT_EQ(svc.queueStats().expired, 1u);
  EXPECT_EQ(resolve(runner).status, RequestStatus::Done);
}

// The QoS compute budget (here its deterministic visit form) bounds how much
// work a request may burn, stopping the engine mid-search.
TEST(AsyncService, QosVisitBudgetBoundsSearchWork) {
  AsyncNetEmbedService svc(asyncHost());

  EmbedRequest unbounded = pathRequest(/*maxSolutions=*/100000, /*storeLimit=*/4);
  auto fullFuture = svc.submitAsync(unbounded);
  const EmbedResponse full = resolve(fullFuture);
  ASSERT_GT(full.result.stats.treeNodesVisited, 1000u);

  EmbedRequest capped = pathRequest(/*maxSolutions=*/100000, /*storeLimit=*/4);
  capped.qos.visitBudget = 100;
  SubmitTicket ticket = svc.submit(std::move(capped));
  const EmbedResponse budgeted = resolve(ticket);
  EXPECT_EQ(budgeted.status, RequestStatus::Done);
  EXPECT_NE(budgeted.result.outcome, core::Outcome::Complete);
  EXPECT_LE(budgeted.result.stats.treeNodesVisited, 101u)
      << "the visit budget must stop the engine at the next poll";
  EXPECT_LT(budgeted.result.solutionCount, full.result.solutionCount);
}

TEST(AsyncService, RejectPolicyResolvesOverflowTicketRejected) {
  AsyncServiceOptions options;
  options.workers = 1;
  options.queueCapacity = 1;
  options.overloadPolicy = util::OverloadPolicy::Reject;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;
  SubmitTicket runner = svc.submit(pathRequest(/*maxSolutions=*/3), {gate.sink(), {}});
  gate.waitFirst();
  SubmitTicket queued = svc.submit(delayRequest(*svc.hostSnapshot(), 68));
  SubmitTicket overflow = svc.submit(delayRequest(*svc.hostSnapshot(), 69));

  // The refusal is synchronous: the ticket comes back already resolved.
  EXPECT_EQ(overflow.status(), RequestStatus::Rejected);
  EXPECT_EQ(resolve(overflow).status, RequestStatus::Rejected);
  EXPECT_EQ(svc.queueStats().rejected, 1u);

  gate.open();
  EXPECT_EQ(resolve(queued).status, RequestStatus::Done);
  EXPECT_EQ(resolve(runner).status, RequestStatus::Done);
}

TEST(AsyncService, ShedLowestPriorityDisplacesQueuedLowForHigh) {
  AsyncServiceOptions options;
  options.workers = 1;
  options.queueCapacity = 1;
  options.overloadPolicy = util::OverloadPolicy::ShedLowestPriority;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;
  SubmitTicket runner = svc.submit(pathRequest(/*maxSolutions=*/3), {gate.sink(), {}});
  gate.waitFirst();

  EmbedRequest low = delayRequest(*svc.hostSnapshot(), 70);
  low.qos.priority = service::Priority::Low;
  SubmitTicket lowTicket = svc.submit(std::move(low));
  EXPECT_EQ(lowTicket.status(), RequestStatus::Queued);

  EmbedRequest high = delayRequest(*svc.hostSnapshot(), 71);
  high.qos.priority = service::Priority::High;
  SubmitTicket highTicket = svc.submit(std::move(high));

  // The queued Low request was shed to make room; its future resolves now.
  EXPECT_EQ(resolve(lowTicket).status, RequestStatus::Rejected);
  EXPECT_EQ(svc.queueStats().shed, 1u);

  gate.open();
  EXPECT_EQ(resolve(highTicket).status, RequestStatus::Done);
  EXPECT_EQ(resolve(runner).status, RequestStatus::Done);
}

// --- the synchronous service's ticket form -----------------------------------

TEST(TicketApi, SyncServiceTicketStreamsAndCancels) {
  service::NetEmbedService svc(asyncHost());
  StreamGate gate;
  SubmitTicket ticket = svc.submitTicketed(pathRequest(/*maxSolutions=*/2000),
                                           {gate.sink(), {}});
  gate.waitFirst();
  EXPECT_TRUE(ticket.cancel());
  gate.open();
  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Cancelled);
  EXPECT_GE(ticket.solutionsStreamed(), 1u);
  EXPECT_LT(response.result.solutionCount, 2000u);
}

TEST(TicketApi, SyncServiceTicketMatchesLegacySubmit) {
  service::NetEmbedService svc(asyncHost());
  const EmbedRequest request = pathRequest(/*maxSolutions=*/16, /*storeLimit=*/16);
  const EmbedResponse legacy = svc.submit(request);
  SubmitTicket ticket = svc.submitTicketed(request, {});
  const EmbedResponse viaTicket = resolve(ticket);
  EXPECT_EQ(viaTicket.status, RequestStatus::Done);
  EXPECT_EQ(viaTicket.result.solutionCount, legacy.result.solutionCount);
  EXPECT_EQ(viaTicket.result.mappings, legacy.result.mappings);
  EXPECT_EQ(viaTicket.result.outcome, legacy.result.outcome);
}

TEST(TicketApi, DroppingUnconsumedTicketCancelsAndJoins) {
  service::NetEmbedService svc(asyncHost());
  {
    SubmitTicket ticket =
        svc.submitTicketed(pathRequest(/*maxSolutions=*/0), {});
    (void)ticket;
  }  // ~SubmitTicket requests stop and joins the runner — must not hang
  SUCCEED();
}

// --- the self-tuning control plane -------------------------------------------

TEST(ControlPlane, NonPositiveAdmissionDeadlineExpiresImmediately) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  // A caller that computed its remaining slack and landed on zero (or past
  // it) asked for "no wait at all" — it must not degrade to "wait forever".
  EmbedRequest zero = pathRequest(/*maxSolutions=*/1);
  zero.qos.admissionDeadline = std::chrono::milliseconds(0);
  SubmitTicket zeroTicket = svc.submit(zero);
  EXPECT_EQ(resolve(zeroTicket).status, RequestStatus::Expired);

  EmbedRequest negative = pathRequest(/*maxSolutions=*/1);
  negative.qos.admissionDeadline = std::chrono::milliseconds(-50);
  SubmitTicket negativeTicket = svc.submit(negative);
  EXPECT_EQ(resolve(negativeTicket).status, RequestStatus::Expired);

  // The default-constructed QoS (nullopt) still means "no deadline".
  SubmitTicket unbounded = svc.submit(pathRequest(/*maxSolutions=*/1));
  const EmbedResponse response = resolve(unbounded);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(response.result.solutionCount, 1u);

  svc.drain();  // the completed counter lands after the future resolves
  const auto stats = svc.queueStats();
  EXPECT_EQ(stats.expired, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ControlPlane, SlackPropagationTightensComputeBudget) {
  // The same gated request twice: without slack propagation it enumerates to
  // completion after the gate opens; with it, the admission slack became the
  // compute budget at dispatch, so by the time the gate opens (well past the
  // deadline) the engine stops at its next poll with a partial result.
  const auto runOnce = [](bool propagateSlack) {
    AsyncServiceOptions options;
    options.workers = 1;
    options.control.propagateSlack = propagateSlack;
    AsyncNetEmbedService svc(asyncHost(), options);

    EmbedRequest request = pathRequest(/*maxSolutions=*/0, /*storeLimit=*/4);
    request.qos.admissionDeadline = std::chrono::milliseconds(250);
    StreamGate gate;
    SubmitTicket ticket = svc.submit(std::move(request), {gate.sink(), {}});
    gate.waitFirst();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    gate.open();
    return resolve(ticket);
  };

  const EmbedResponse unbounded = runOnce(/*propagateSlack=*/false);
  EXPECT_EQ(unbounded.status, RequestStatus::Done);
  EXPECT_EQ(unbounded.result.outcome, core::Outcome::Complete);

  const EmbedResponse budgeted = runOnce(/*propagateSlack=*/true);
  EXPECT_EQ(budgeted.status, RequestStatus::Done);
  EXPECT_NE(budgeted.result.outcome, core::Outcome::Complete)
      << "the slack-derived budget must stop the gated enumeration";
  EXPECT_GE(budgeted.result.solutionCount, 1u);
}

TEST(ControlPlane, HighPreemptsLongestRunningLow) {
  AsyncServiceOptions options;
  options.workers = 1;
  options.control.preemptLowForHigh = true;
  AsyncNetEmbedService svc(asyncHost(), options);

  EmbedRequest low = pathRequest(/*maxSolutions=*/0);
  low.qos.priority = service::Priority::Low;
  StreamGate gate;
  SubmitTicket lowTicket = svc.submit(std::move(low), {gate.sink(), {}});
  gate.waitFirst();  // the only worker is provably mid-enumeration

  EmbedRequest high = pathRequest(/*maxSolutions=*/1);
  high.qos.priority = service::Priority::High;
  SubmitTicket highTicket = svc.submit(std::move(high));
  // The preemption chain fires synchronously inside submit.
  EXPECT_EQ(svc.controlStats().preemptionsFired, 1u);

  gate.open();
  const EmbedResponse lowResponse = resolve(lowTicket);
  EXPECT_EQ(lowResponse.status, RequestStatus::Preempted);
  EXPECT_GE(lowResponse.result.solutionCount, 1u)
      << "a preempted request keeps its partial result";
  EXPECT_NE(lowResponse.result.outcome, core::Outcome::Complete);

  const EmbedResponse highResponse = resolve(highTicket);
  EXPECT_EQ(highResponse.status, RequestStatus::Done);
  EXPECT_EQ(highResponse.result.solutionCount, 1u);
}

TEST(ControlPlane, PreemptedRequestRequeuesAndCompletes) {
  AsyncServiceOptions options;
  options.workers = 1;
  options.control.preemptLowForHigh = true;
  options.control.requeuePreempted = true;
  AsyncNetEmbedService svc(asyncHost(), options);

  EmbedRequest low = pathRequest(/*maxSolutions=*/8);
  low.qos.priority = service::Priority::Low;
  StreamGate gate;  // arms once: the re-run streams straight through
  SubmitTicket lowTicket = svc.submit(std::move(low), {gate.sink(), {}});
  gate.waitFirst();

  EmbedRequest high = pathRequest(/*maxSolutions=*/1);
  high.qos.priority = service::Priority::High;
  SubmitTicket highTicket = svc.submit(std::move(high));
  EXPECT_EQ(svc.controlStats().preemptionsFired, 1u);

  gate.open();
  EXPECT_EQ(resolve(highTicket).status, RequestStatus::Done);
  // The preempted Low request went back through admission (behind the High
  // work) instead of resolving, and its fresh attempt ran to completion.
  const EmbedResponse lowResponse = resolve(lowTicket);
  EXPECT_EQ(lowResponse.status, RequestStatus::Done);
  EXPECT_EQ(lowResponse.result.solutionCount, 8u)
      << "the fresh attempt must reach its full max-solutions quota";
  EXPECT_EQ(svc.controlStats().preemptRequeues, 1u);
}

TEST(ControlPlane, StressMixedLoadResolvesEveryTicket) {
  // TSan target: every control-plane feature on at once under a mutating
  // model. The assertion is accountability — every ticket reaches a terminal
  // status, nothing throws, nothing hangs.
  AsyncServiceOptions options;
  options.workers = 2;
  options.queueCapacity = 8;
  options.overloadPolicy = util::OverloadPolicy::ShedLowestPriority;
  options.control.queue.adaptiveCapacity = true;
  options.control.queue.targetQueueDelay = std::chrono::milliseconds(100);
  options.control.queue.lowPriorityShedWatermark = 0.75;
  options.control.propagateSlack = true;
  options.control.preemptLowForHigh = true;
  options.control.requeuePreempted = true;
  AsyncNetEmbedService svc(asyncHost(), options);
  svc.setTenantWeight(1, 3.0);
  svc.setTenantWeight(2, 1.0);

  const auto host = svc.hostSnapshot();
  std::vector<SubmitTicket> tickets;
  for (int i = 0; i < 48; ++i) {
    EmbedRequest request = pathRequest(/*maxSolutions=*/4);
    request.qos.priority = static_cast<service::Priority>(i % 3);
    request.qos.tenant = static_cast<std::uint64_t>(i % 3);
    if (i % 4 == 0)
      request.qos.admissionDeadline = std::chrono::milliseconds(250);
    if (i % 5 == 0) request.qos.computeBudget = std::chrono::milliseconds(50);
    tickets.push_back(svc.submit(std::move(request)));
    if (i % 8 == 0)
      svc.setEdgeMetric(host->edgeSource(0), host->edgeTarget(0), "minDelay",
                        1.0 + static_cast<double>(i));
  }

  for (auto& ticket : tickets) {
    const EmbedResponse response = resolve(ticket);
    EXPECT_NE(response.status, RequestStatus::Queued);
    EXPECT_NE(response.status, RequestStatus::Running);
    EXPECT_NE(response.status, RequestStatus::Failed);
  }
  svc.drain();
  const auto stats = svc.queueStats();
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.effectiveCapacity, 0u);
}

// --- the bounded onSolution buffer -------------------------------------------

TEST(SolutionBuffer, BlockPolicyDeliversEveryMappingInOrder) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  std::vector<core::Mapping> delivered;
  TicketCallbacks callbacks;
  callbacks.solutionBufferCapacity = 2;  // far smaller than the stream
  callbacks.solutionBufferPolicy = service::SolutionBufferPolicy::Block;
  callbacks.onSolution = [&delivered](const core::Mapping& m) {
    delivered.push_back(m);  // single consumer thread: no lock needed
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return true;
  };
  SubmitTicket ticket =
      svc.submit(pathRequest(/*maxSolutions=*/32, /*storeLimit=*/32),
                 std::move(callbacks));
  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(response.result.solutionCount, 32u);
  // Lossless: every admitted mapping was delivered, in admission order
  // (onComplete ordering — the future resolves after the buffer drains).
  EXPECT_EQ(ticket.solutionsStreamed(), 32u);
  EXPECT_EQ(ticket.solutionsDropped(), 0u);
  ASSERT_EQ(delivered.size(), 32u);
  EXPECT_EQ(delivered, response.result.mappings);
}

TEST(SolutionBuffer, DropOldestKeepsTheSearchUnblocked) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  StreamGate gate;  // parks the *consumer thread* in its first delivery
  TicketCallbacks callbacks;
  callbacks.solutionBufferCapacity = 2;
  callbacks.solutionBufferPolicy = service::SolutionBufferPolicy::DropOldest;
  callbacks.onSolution = gate.sink();
  SubmitTicket ticket = svc.submit(
      pathRequest(/*maxSolutions=*/50, /*storeLimit=*/50), std::move(callbacks));
  gate.waitFirst();

  // With the consumer parked, the search must still run to completion: every
  // further admission evicts the oldest buffered mapping instead of stalling
  // the scheduler worker. 50 admitted, 1 being delivered, <= 2 buffered.
  const auto deadline = std::chrono::steady_clock::now() + kResolveBudget;
  while (ticket.solutionsDropped() < 47u &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ticket.solutionsDropped(), 47u)
      << "the search stalled behind the parked consumer";

  gate.open();
  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(response.result.solutionCount, 50u);
  // Conservation: every admitted mapping was either delivered or counted.
  EXPECT_EQ(ticket.solutionsStreamed() + ticket.solutionsDropped(), 50u);
  EXPECT_GE(ticket.solutionsStreamed(), 1u);
}

TEST(SolutionBuffer, ConsumerReturningFalseStopsTheSearch) {
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(asyncHost(), options);

  std::atomic<std::uint64_t> seen{0};
  TicketCallbacks callbacks;
  callbacks.solutionBufferCapacity = 2;
  callbacks.onSolution = [&seen](const core::Mapping&) {
    return seen.fetch_add(1) + 1 < 3;  // stop after the third delivery
  };
  SubmitTicket ticket =
      svc.submit(pathRequest(/*maxSolutions=*/0, /*storeLimit=*/4),
                 std::move(callbacks));
  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_NE(response.result.outcome, core::Outcome::Complete)
      << "the consumer's stop must reach the search";
  EXPECT_EQ(ticket.solutionsStreamed(), 3u);
  EXPECT_GE(response.result.solutionCount, 3u);
}

/// Host for the reservation-path pins: large enough that a 5-node
/// reservation's incident-edge share sits well under the patch-vs-rebuild
/// cutoff (classifyDelta rebuilds past 1/4 of the host's edges).
Graph reservationHost() {
  trace::PlanetLabOptions o;
  o.sites = 80;
  o.clusters = 8;
  o.deadSites = 0;
  o.pairLossRate = 0.3;
  o.seed = 13;
  Graph host = trace::synthesize(o);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("slots", 64.0);
  }
  return host;
}

/// A query whose node constraint reads the reservation capacity attr, so
/// every reserve/release delta is constraint-relevant.
EmbedRequest slotsRequest(const Graph& host, std::uint64_t seed, double demand,
                          std::size_t maxSolutions = 1) {
  EmbedRequest request = delayRequest(host, seed, maxSolutions);
  request.nodeConstraint = "rNode.slots >= vNode.slots";
  for (graph::NodeId n = 0; n < request.query.nodeCount(); ++n) {
    request.query.nodeAttrs(n).set("slots", demand);
  }
  return request;
}

// The dynamic-workload pin (PR 9): a reserve/release round trip records
// attribute-only deltas on the mapped nodes, and because the node constraint
// reads the capacity attr, same-signature queries across the two version
// bumps take the FilterPlan::patch path — never a from-scratch rebuild,
// never a cache invalidation. This is the seam the sim::Driver's live
// reservations lean on.
TEST(AsyncService, ReserveReleaseRoundTripPatchesPlans) {
  AsyncNetEmbedService svc(reservationHost());
  EmbedRequest request = slotsRequest(*svc.hostSnapshot(), 8, 1.0);
  request.algorithm = Algorithm::ECF;

  const std::uint64_t builds0 = core::filterPlanBuilds();
  const std::uint64_t patches0 = core::filterPlanPatches();
  auto f1 = svc.submitAsync(request);
  const EmbedResponse r1 = resolve(f1);
  ASSERT_TRUE(r1.result.feasible());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);

  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"slots"};
  const auto id = svc.reserve(request.query, r1.result.mappings.front(), spec);
  EXPECT_GT(svc.version(), r1.modelVersion);

  auto f2 = svc.submitAsync(request);
  const EmbedResponse r2 = resolve(f2);
  ASSERT_TRUE(r2.result.feasible());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u)
      << "an attribute-only reservation delta must not force a rebuild";
  EXPECT_EQ(core::filterPlanPatches() - patches0, 1u)
      << "a constraint-relevant reservation delta must take the patch path";
  EXPECT_EQ(svc.planCacheStats().invalidations, 0u);

  // The release is the inverse attribute-only delta: patched again.
  svc.release(id);
  auto f3 = svc.submitAsync(request);
  const EmbedResponse r3 = resolve(f3);
  ASSERT_TRUE(r3.result.feasible());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);
  EXPECT_EQ(core::filterPlanPatches() - patches0, 2u)
      << "the release delta must patch as well";
  EXPECT_EQ(svc.planCacheStats().invalidations, 0u);
}

// Concurrent reserve/release cycles racing in-flight *ticketed* queries —
// the churn pattern the sim driver's wall-clock mode produces. Every ticket
// must stream and resolve Done with a feasible mapping (the churner's
// reservations leave ample slots headroom), and the reservation ledger must
// balance so post-join capacity equals the pristine host's.
TEST(AsyncService, ConcurrentReserveReleaseRacesTicketedQueries) {
  constexpr int kTickets = 12;
  constexpr int kReserveRounds = 6;

  AsyncServiceOptions options;
  options.workers = 3;
  AsyncNetEmbedService svc(reservationHost());
  const std::uint64_t v0 = svc.version();

  std::atomic<std::uint64_t> roundTrips{0};
  std::thread churner([&] {
    NetworkModel::ReservationSpec spec;
    spec.nodeCapacityAttrs = {"slots"};
    for (int round = 0; round < kReserveRounds; ++round) {
      EmbedRequest request = slotsRequest(*svc.hostSnapshot(), 500 + round, 2.0);
      auto future = svc.submitAsync(request);
      const EmbedResponse response = resolve(future);
      if (!response.result.feasible()) continue;
      try {
        const auto id =
            svc.reserve(request.query, response.result.mappings.front(), spec);
        roundTrips.fetch_add(1, std::memory_order_relaxed);
        svc.release(id);
      } catch (const std::exception&) {
        // Capacity raced away under a concurrent reservation — legal.
      }
    }
  });

  std::vector<SubmitTicket> tickets;
  std::atomic<std::uint64_t> streamed{0};
  for (int i = 0; i < kTickets; ++i) {
    EmbedRequest request =
        slotsRequest(*svc.hostSnapshot(), 600 + i, 1.0, i % 2 == 0 ? 1 : 3);
    TicketCallbacks callbacks;
    callbacks.onSolution = [&streamed](const core::Mapping&) {
      streamed.fetch_add(1, std::memory_order_relaxed);
      return true;
    };
    tickets.push_back(svc.submit(std::move(request), std::move(callbacks)));
  }
  for (SubmitTicket& ticket : tickets) {
    const EmbedResponse response = resolve(ticket);
    EXPECT_EQ(response.status, RequestStatus::Done);
    EXPECT_TRUE(response.result.feasible());
    EXPECT_GE(response.modelVersion, v0);
  }
  churner.join();

  EXPECT_GE(streamed.load(), static_cast<std::uint64_t>(kTickets));
  EXPECT_GT(roundTrips.load(), 0u);
  // Each round trip is two version bumps; the ledger balanced, so the final
  // host snapshot carries pristine capacity everywhere.
  EXPECT_GE(svc.version(), v0 + 2 * roundTrips.load());
  const auto host = svc.hostSnapshot();
  for (graph::NodeId n = 0; n < host->nodeCount(); ++n) {
    ASSERT_DOUBLE_EQ(host->nodeAttrs(n).getDouble("slots", -1.0), 64.0);
  }
}

}  // namespace
