// The asynchronous batched front end: futures and callbacks resolve, queued
// requests share stage-1 plans per model version, version bumps invalidate
// the cache, and concurrent submitters survive a mutating reservation thread.

#include "service/async.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/plan.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using service::AsyncNetEmbedService;
using service::AsyncServiceOptions;
using service::EmbedRequest;
using service::EmbedResponse;
using service::NetworkModel;
using graph::Graph;

constexpr auto kResolveBudget = std::chrono::seconds(60);

Graph asyncHost() {
  trace::PlanetLabOptions o;
  o.sites = 40;
  o.clusters = 5;
  o.deadSites = 0;
  o.pairLossRate = 0.3;
  o.seed = 11;
  Graph host = trace::synthesize(o);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("slots", 64.0);
  }
  return host;
}

EmbedRequest delayRequest(const Graph& host, std::uint64_t seed,
                          std::size_t maxSolutions = 1) {
  util::Rng rng(seed);
  auto sub = topo::sampleConnectedSubgraph(host, 5, 6, rng);
  topo::widenDelayWindows(sub.graph, 0.1);
  EmbedRequest request;
  request.query = std::move(sub.graph);
  request.edgeConstraint = topo::delayWindowConstraint();
  request.options.maxSolutions = maxSolutions;
  return request;
}

EmbedResponse resolve(std::future<EmbedResponse>& future) {
  if (future.wait_for(kResolveBudget) != std::future_status::ready) {
    ADD_FAILURE() << "future did not resolve within the budget";
    std::abort();  // a hung scheduler would otherwise stall the whole suite
  }
  return future.get();
}

TEST(AsyncService, FutureResolvesWithFeasibleMapping) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 1);
  auto future = svc.submitAsync(request);
  const EmbedResponse response = resolve(future);
  ASSERT_TRUE(response.result.feasible());
  EXPECT_EQ(response.modelVersion, svc.version());

  const auto constraints =
      expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  const core::Problem problem(request.query, *svc.hostSnapshot(), constraints);
  EXPECT_TRUE(core::verifyMapping(problem, response.result.mappings.front()).ok);
}

TEST(AsyncService, BatchOfIdenticalQueriesBuildsExactlyOnePlan) {
  AsyncServiceOptions options;
  options.workers = 2;
  AsyncNetEmbedService svc(asyncHost(), options);
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 2);
  request.algorithm = Algorithm::ECF;  // a plan-using engine, deterministically

  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  std::vector<std::future<EmbedResponse>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(svc.submitAsync(request));
  for (auto& future : futures) {
    const EmbedResponse response = resolve(future);
    EXPECT_TRUE(response.result.feasible());
    EXPECT_EQ(response.algorithmUsed, Algorithm::ECF);
  }
  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 1u)
      << "a same-signature batch must share one stage-1 build";

  const auto stats = svc.planCacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

TEST(AsyncService, VersionBumpInvalidatesCachedPlans) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 3);
  request.algorithm = Algorithm::ECF;

  const std::uint64_t builds0 = core::filterPlanBuilds();
  auto f1 = svc.submitAsync(request);
  const EmbedResponse r1 = resolve(f1);
  ASSERT_TRUE(r1.result.feasible());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);

  // Same signature again at the same version: pure cache hit, no build.
  auto f2 = svc.submitAsync(request);
  (void)resolve(f2);
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);

  // A reservation bumps the model version; the cached plan must not serve
  // any query against the new version.
  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"slots"};
  for (graph::NodeId n = 0; n < request.query.nodeCount(); ++n) {
    request.query.nodeAttrs(n).set("slots", 1.0);
  }
  const auto id = svc.reserve(request.query, r1.result.mappings.front(), spec);
  EXPECT_GT(svc.version(), r1.modelVersion);

  auto f3 = svc.submitAsync(request);
  const EmbedResponse r3 = resolve(f3);
  EXPECT_EQ(r3.modelVersion, svc.version());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 2u)
      << "a post-bump query must rebuild, never reuse the stale plan";
  EXPECT_GT(svc.planCacheStats().invalidations, 0u);
  svc.release(id);
}

TEST(AsyncService, CallbackOverloadDeliversResponse) {
  AsyncNetEmbedService svc(asyncHost());
  std::promise<EmbedResponse> delivered;
  svc.submitAsync(delayRequest(*svc.hostSnapshot(), 4),
                  [&](EmbedResponse response, std::exception_ptr error) {
                    EXPECT_FALSE(error);
                    delivered.set_value(std::move(response));
                  });
  auto future = delivered.get_future();
  const EmbedResponse response = resolve(future);
  EXPECT_TRUE(response.result.feasible());
  EXPECT_EQ(response.modelVersion, svc.version());
}

TEST(AsyncService, CallbackOverloadDeliversErrors) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest bad = delayRequest(*svc.hostSnapshot(), 5);
  bad.edgeConstraint = "vEdge..broken";
  std::promise<std::exception_ptr> delivered;
  svc.submitAsync(std::move(bad), [&](EmbedResponse, std::exception_ptr error) {
    delivered.set_value(error);
  });
  const std::exception_ptr error = delivered.get_future().get();
  ASSERT_TRUE(error);
  EXPECT_THROW(std::rethrow_exception(error), expr::SyntaxError);
}

TEST(AsyncService, SyntaxErrorPropagatesThroughFuture) {
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest bad = delayRequest(*svc.hostSnapshot(), 6);
  bad.edgeConstraint = "vEdge..broken";
  auto future = svc.submitAsync(std::move(bad));
  EXPECT_THROW((void)future.get(), expr::SyntaxError);
}

TEST(AsyncService, QueuedRequestsDoNotEscalateToPortfolio) {
  // The scheduler runs one engine per queued request; only an explicit
  // Algorithm::Portfolio request may race (regardless of core count).
  AsyncNetEmbedService svc(asyncHost());
  EmbedRequest request = delayRequest(*svc.hostSnapshot(), 7);
  ASSERT_FALSE(request.algorithm.has_value());
  ASSERT_EQ(request.options.maxSolutions, 1u);
  auto future = svc.submitAsync(request);
  const EmbedResponse response = resolve(future);
  EXPECT_TRUE(response.result.feasible());
  EXPECT_EQ(response.diagnostics.find("portfolio"), std::string::npos)
      << response.diagnostics;

  request.algorithm = Algorithm::Portfolio;
  auto raced = svc.submitAsync(request);
  const EmbedResponse racedResponse = resolve(raced);
  EXPECT_TRUE(racedResponse.result.feasible());
  EXPECT_NE(racedResponse.diagnostics.find("portfolio"), std::string::npos)
      << racedResponse.diagnostics;
}

TEST(AsyncService, DrainResolvesEverythingAccepted) {
  AsyncServiceOptions options;
  options.workers = 2;
  AsyncNetEmbedService svc(asyncHost(), options);
  std::vector<std::future<EmbedResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(svc.submitAsync(delayRequest(*svc.hostSnapshot(), 20 + i)));
  }
  svc.drain();
  EXPECT_EQ(svc.pendingRequests(), 0u);
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(future.get().result.feasible());
  }
}

TEST(AsyncService, DestructorDrainsInFlightRequests) {
  std::vector<std::future<EmbedResponse>> futures;
  {
    AsyncNetEmbedService svc(asyncHost());
    for (int i = 0; i < 6; ++i) {
      futures.push_back(svc.submitAsync(delayRequest(*svc.hostSnapshot(), 40 + i)));
    }
  }  // ~AsyncNetEmbedService drains the queue
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(future.get().result.feasible());
  }
}

// The archetype stress test: N submitter threads race mixed first-match and
// enumeration queries while a reservation thread bumps the model version.
// Every future must resolve, every response must carry a version that
// existed, and no feasible mapping may violate its constraints (reservations
// only touch "slots", which the delay constraint never reads, so mappings
// verify against any snapshot).
TEST(AsyncService, StressConcurrentSubmittersAndReservations) {
  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerThread = 8;
  constexpr int kReservationRounds = 4;

  AsyncServiceOptions options;
  options.workers = 3;
  options.planCacheCapacity = 8;
  AsyncNetEmbedService svc(asyncHost(), options);
  const std::uint64_t v0 = svc.version();

  std::atomic<std::uint64_t> reservationsMade{0};
  std::thread reserver([&] {
    NetworkModel::ReservationSpec spec;
    spec.nodeCapacityAttrs = {"slots"};
    for (int round = 0; round < kReservationRounds; ++round) {
      EmbedRequest request = delayRequest(*svc.hostSnapshot(), 100 + round);
      for (graph::NodeId n = 0; n < request.query.nodeCount(); ++n) {
        request.query.nodeAttrs(n).set("slots", 1.0);
      }
      auto future = svc.submitAsync(request);
      const EmbedResponse response = resolve(future);
      if (!response.result.feasible()) continue;
      try {
        const auto id =
            svc.reserve(request.query, response.result.mappings.front(), spec);
        reservationsMade.fetch_add(1, std::memory_order_relaxed);
        svc.release(id);  // another version bump
      } catch (const std::exception&) {
        // Capacity raced away — legal under concurrency, not a failure.
      }
    }
  });

  std::vector<std::thread> submitters;
  std::atomic<int> resolved{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::pair<EmbedRequest, std::future<EmbedResponse>>> inflight;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // Mix first-match and bounded enumeration signatures; reuse a few
        // seeds across threads so the plan cache sees concurrent sharers.
        EmbedRequest request = delayRequest(
            *svc.hostSnapshot(), 200 + (t * kQueriesPerThread + i) % 5,
            i % 2 == 0 ? 1 : 4);
        auto future = svc.submitAsync(request);
        inflight.emplace_back(std::move(request), std::move(future));
      }
      for (auto& [request, future] : inflight) {
        const EmbedResponse response = resolve(future);
        resolved.fetch_add(1, std::memory_order_relaxed);
        if (response.modelVersion < v0) failures.fetch_add(1);
        if (response.result.feasible()) {
          const auto constraints =
              expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
          const auto host = svc.hostSnapshot();
          const core::Problem problem(request.query, *host, constraints);
          for (const core::Mapping& m : response.result.mappings) {
            if (!core::verifyMapping(problem, m).ok) failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  reserver.join();

  EXPECT_EQ(resolved.load(), kSubmitters * kQueriesPerThread);
  EXPECT_EQ(failures.load(), 0);
  const std::uint64_t finalVersion = svc.version();
  EXPECT_GE(finalVersion, v0 + 2 * reservationsMade.load());
  // Post-drain sanity: a fresh query runs against the final version.
  auto future = svc.submitAsync(delayRequest(*svc.hostSnapshot(), 300));
  EXPECT_EQ(resolve(future).modelVersion, finalVersion);
}

}  // namespace
