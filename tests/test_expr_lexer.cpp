#include "expr/lexer.hpp"

#include <gtest/gtest.h>

namespace {

using namespace netembed::expr;

std::vector<TokenKind> kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::End);
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto tokens = tokenize("vEdge avgDelay true false _x1");
  EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[0].text, "vEdge");
  EXPECT_EQ(tokens[2].kind, TokenKind::True);
  EXPECT_EQ(tokens[3].kind, TokenKind::False);
  EXPECT_EQ(tokens[4].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[4].text, "_x1");
}

TEST(Lexer, Numbers) {
  const auto tokens = tokenize("0 3.5 0.90 1e3 2.5E-2");
  EXPECT_DOUBLE_EQ(tokens[0].number, 0.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.90);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.025);
}

TEST(Lexer, NumberFollowedByDotIdent) {
  // "1.e" would be ambiguous; our grammar never needs it, but "vEdge.x"
  // must lex as ident dot ident.
  const auto k = kinds("vEdge.x");
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], TokenKind::Identifier);
  EXPECT_EQ(k[1], TokenKind::Dot);
  EXPECT_EQ(k[2], TokenKind::Identifier);
}

TEST(Lexer, StringsBothQuotes) {
  const auto tokens = tokenize(R"("linux-2.6" 'abc')");
  EXPECT_EQ(tokens[0].kind, TokenKind::String);
  EXPECT_EQ(tokens[0].text, "linux-2.6");
  EXPECT_EQ(tokens[1].kind, TokenKind::String);
  EXPECT_EQ(tokens[1].text, "abc");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW((void)tokenize("\"abc"), SyntaxError);
}

TEST(Lexer, AllOperators) {
  const auto k = kinds("&& || ! == != < <= > >= + - * / ( ) , .");
  const std::vector<TokenKind> expected{
      TokenKind::AndAnd, TokenKind::OrOr,  TokenKind::Not,   TokenKind::Eq,
      TokenKind::Ne,     TokenKind::Lt,    TokenKind::Le,    TokenKind::Gt,
      TokenKind::Ge,     TokenKind::Plus,  TokenKind::Minus, TokenKind::Star,
      TokenKind::Slash,  TokenKind::LParen, TokenKind::RParen, TokenKind::Comma,
      TokenKind::Dot,    TokenKind::End};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, SingleAmpersandRejected) {
  EXPECT_THROW((void)tokenize("a & b"), SyntaxError);
}

TEST(Lexer, SinglePipeRejected) {
  EXPECT_THROW((void)tokenize("a | b"), SyntaxError);
}

TEST(Lexer, SingleEqualsRejected) {
  EXPECT_THROW((void)tokenize("a = b"), SyntaxError);
}

TEST(Lexer, UnknownCharacterRejected) {
  EXPECT_THROW((void)tokenize("a # b"), SyntaxError);
}

TEST(Lexer, OffsetsPointIntoSource) {
  const std::string src = "ab  <=  cd";
  const auto tokens = tokenize(src);
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
  EXPECT_EQ(tokens[2].offset, 8u);
}

TEST(Lexer, ErrorCarriesOffset) {
  try {
    (void)tokenize("abc $");
    FAIL();
  } catch (const SyntaxError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(Lexer, PaperExampleTokenizes) {
  const auto tokens = tokenize(
      "vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay");
  EXPECT_EQ(tokens.back().kind, TokenKind::End);
  EXPECT_GT(tokens.size(), 10u);
}

}  // namespace
