#include "graphml/graphml.hpp"

#include <gtest/gtest.h>

#include "trace/planetlab.hpp"

namespace {

using netembed::graph::Graph;
namespace graphml = netembed::graphml;

Graph sampleGraph() {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  g.addNode("c");
  g.nodeAttrs(0).set("os", "linux-2.6");
  g.nodeAttrs(0).set("cpu", 2000);
  g.nodeAttrs(1).set("ok", true);
  const auto e0 = g.addEdge(0, 1);
  const auto e1 = g.addEdge(1, 2);
  g.edgeAttrs(e0).set("delay", 12.5);
  g.edgeAttrs(e1).set("delay", 7.25);
  g.attrs().set("title", "sample");
  return g;
}

TEST(GraphML, RoundTripPreservesEverything) {
  const Graph g = sampleGraph();
  const std::string text = graphml::write(g);
  const Graph back = graphml::read(text);

  ASSERT_EQ(back.nodeCount(), 3u);
  ASSERT_EQ(back.edgeCount(), 2u);
  EXPECT_FALSE(back.directed());
  EXPECT_EQ(back.nodeName(0), "a");
  EXPECT_EQ(back.nodeAttrs(0).at("os").asString(), "linux-2.6");
  EXPECT_EQ(back.nodeAttrs(0).at("cpu").asInt(), 2000);
  EXPECT_EQ(back.nodeAttrs(1).at("ok").asBool(), true);
  const auto e = back.findEdge(*back.findNode("a"), *back.findNode("b"));
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(back.edgeAttrs(*e).at("delay").asDouble(), 12.5);
  EXPECT_EQ(back.attrs().at("title").asString(), "sample");
}

TEST(GraphML, DirectedRoundTrip) {
  Graph g(true);
  g.addNode("x");
  g.addNode("y");
  g.addEdge(1, 0);
  const Graph back = graphml::read(graphml::write(g));
  EXPECT_TRUE(back.directed());
  EXPECT_TRUE(back.hasEdge(1, 0));
  EXPECT_FALSE(back.hasEdge(0, 1));
}

TEST(GraphML, DeclaredKeysWithDefaults) {
  const char* text = R"(<?xml version="1.0"?>
<graphml>
  <key id="d0" for="node" attr.name="color" attr.type="string">
    <default>green</default>
  </key>
  <graph id="G" edgedefault="undirected">
    <node id="n0"><data key="d0">red</data></node>
    <node id="n1"/>
  </graph>
</graphml>)";
  const Graph g = graphml::read(text);
  EXPECT_EQ(g.nodeAttrs(0).at("color").asString(), "red");
  EXPECT_EQ(g.nodeAttrs(1).at("color").asString(), "green");
}

TEST(GraphML, TypeParsingPerKey) {
  const char* text = R"(<graphml>
  <key id="k1" for="edge" attr.name="weight" attr.type="double"/>
  <key id="k2" for="edge" attr.name="count" attr.type="int"/>
  <graph edgedefault="undirected">
    <node id="a"/><node id="b"/>
    <edge source="a" target="b">
      <data key="k1">2.5</data>
      <data key="k2">3</data>
    </edge>
  </graph>
</graphml>)";
  const Graph g = graphml::read(text);
  EXPECT_DOUBLE_EQ(g.edgeAttrs(0).at("weight").asDouble(), 2.5);
  EXPECT_EQ(g.edgeAttrs(0).at("count").asInt(), 3);
}

TEST(GraphML, RejectsUndeclaredKey) {
  const char* text = R"(<graphml><graph edgedefault="undirected">
    <node id="a"><data key="nope">1</data></node>
  </graph></graphml>)";
  EXPECT_THROW((void)graphml::read(text), std::runtime_error);
}

TEST(GraphML, RejectsWrongScopeKey) {
  const char* text = R"(<graphml>
  <key id="k" for="edge" attr.name="w" attr.type="int"/>
  <graph edgedefault="undirected">
    <node id="a"><data key="k">1</data></node>
  </graph></graphml>)";
  EXPECT_THROW((void)graphml::read(text), std::runtime_error);
}

TEST(GraphML, RejectsEdgeToUnknownNode) {
  const char* text = R"(<graphml><graph edgedefault="undirected">
    <node id="a"/>
    <edge source="a" target="ghost"/>
  </graph></graphml>)";
  EXPECT_THROW((void)graphml::read(text), std::runtime_error);
}

TEST(GraphML, RejectsNonGraphmlRoot) {
  EXPECT_THROW((void)graphml::read("<gexf/>"), std::runtime_error);
}

TEST(GraphML, RejectsMissingGraph) {
  EXPECT_THROW((void)graphml::read("<graphml/>"), std::runtime_error);
}

TEST(GraphML, UnknownAttrTypeRejected) {
  const char* text = R"(<graphml>
  <key id="k" for="node" attr.name="w" attr.type="matrix"/>
  <graph edgedefault="undirected"><node id="a"/></graph></graphml>)";
  EXPECT_THROW((void)graphml::read(text), std::runtime_error);
}

TEST(GraphML, FileRoundTrip) {
  const Graph g = sampleGraph();
  const std::string path = testing::TempDir() + "/netembed_roundtrip.graphml";
  graphml::writeFile(g, path);
  const Graph back = graphml::readFile(path);
  EXPECT_EQ(back.nodeCount(), g.nodeCount());
  EXPECT_EQ(back.edgeCount(), g.edgeCount());
}

TEST(GraphML, MissingFileThrows) {
  EXPECT_THROW((void)graphml::readFile("/nonexistent/file.graphml"), std::runtime_error);
}

TEST(GraphML, SynthesizedPlanetLabRoundTrips) {
  netembed::trace::PlanetLabOptions opts;
  opts.sites = 40;
  opts.clusters = 5;
  opts.deadSites = 1;
  const Graph g = netembed::trace::synthesize(opts);
  const Graph back = graphml::read(graphml::write(g));
  EXPECT_EQ(back.nodeCount(), g.nodeCount());
  EXPECT_EQ(back.edgeCount(), g.edgeCount());
  // Spot-check one edge attribute survives with full precision.
  if (g.edgeCount() > 0) {
    EXPECT_DOUBLE_EQ(back.edgeAttrs(0).at("avgDelay").asDouble(),
                     g.edgeAttrs(0).at("avgDelay").asDouble());
  }
}

}  // namespace
