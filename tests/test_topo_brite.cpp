#include "topo/brite.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"

namespace {

using namespace netembed;
using graph::Graph;
using topo::BriteOptions;

TEST(Brite, BarabasiAlbertCounts) {
  BriteOptions o;
  o.nodes = 500;
  o.m = 2;
  o.seed = 7;
  const Graph g = topo::brite(o);
  EXPECT_EQ(g.nodeCount(), 500u);
  // Seed clique C(3,2)=3 edges + 2 per subsequent node.
  EXPECT_EQ(g.edgeCount(), 3u + (500u - 3u) * 2u);
  EXPECT_TRUE(graph::isConnected(g));
}

TEST(Brite, PaperScaleEdgeCounts) {
  // The paper's BRITE hosting networks have E ~= 2N.
  for (const std::size_t n : {1500u, 2000u}) {
    BriteOptions o;
    o.nodes = n;
    o.m = 2;
    o.seed = n;
    const Graph g = topo::brite(o);
    const double ratio = static_cast<double>(g.edgeCount()) / static_cast<double>(n);
    EXPECT_NEAR(ratio, 2.0, 0.05) << n;
  }
}

TEST(Brite, PreferentialAttachmentCreatesHubs) {
  BriteOptions o;
  o.nodes = 800;
  o.m = 2;
  o.seed = 11;
  const Graph g = topo::brite(o);
  std::size_t maxDegree = 0;
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    maxDegree = std::max(maxDegree, g.degree(n));
  }
  // Power-law-ish: the hub should far exceed the mean degree (~4).
  EXPECT_GT(maxDegree, 20u);
}

TEST(Brite, NodesCarryCoordinates) {
  BriteOptions o;
  o.nodes = 50;
  o.seed = 3;
  const Graph g = topo::brite(o);
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    const double x = g.nodeAttrs(n).at("x").asDouble();
    const double y = g.nodeAttrs(n).at("y").asDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, o.planeSize);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, o.planeSize);
  }
}

TEST(Brite, EdgesCarryConsistentDelays) {
  BriteOptions o;
  o.nodes = 100;
  o.seed = 5;
  const Graph g = topo::brite(o);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const auto& attrs = g.edgeAttrs(e);
    const double mn = attrs.at("minDelay").asDouble();
    const double avg = attrs.at("avgDelay").asDouble();
    const double mx = attrs.at("maxDelay").asDouble();
    const double delay = attrs.at("delay").asDouble();
    EXPECT_GT(delay, 0.0);
    EXPECT_LE(mn, avg);
    EXPECT_LE(avg, mx);
    EXPECT_GT(attrs.at("bw").asDouble(), 0.0);
  }
}

TEST(Brite, DeterministicPerSeed) {
  BriteOptions o;
  o.nodes = 120;
  o.seed = 42;
  const Graph a = topo::brite(o);
  const Graph b = topo::brite(o);
  ASSERT_EQ(a.edgeCount(), b.edgeCount());
  for (graph::EdgeId e = 0; e < a.edgeCount(); ++e) {
    EXPECT_EQ(a.edgeSource(e), b.edgeSource(e));
    EXPECT_EQ(a.edgeTarget(e), b.edgeTarget(e));
    EXPECT_DOUBLE_EQ(a.edgeAttrs(e).at("avgDelay").asDouble(),
                     b.edgeAttrs(e).at("avgDelay").asDouble());
  }
  o.seed = 43;
  const Graph c = topo::brite(o);
  bool identical = a.edgeCount() == c.edgeCount();
  if (identical) {
    for (graph::EdgeId e = 0; e < a.edgeCount() && identical; ++e) {
      identical = a.edgeSource(e) == c.edgeSource(e) &&
                  a.edgeTarget(e) == c.edgeTarget(e);
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Brite, WaxmanIsConnectedAndTagged) {
  BriteOptions o;
  o.nodes = 150;
  o.model = BriteOptions::Model::Waxman;
  o.seed = 9;
  const Graph g = topo::brite(o);
  EXPECT_EQ(g.nodeCount(), 150u);
  EXPECT_TRUE(graph::isConnected(g));
  EXPECT_EQ(g.attrs().at("generator").asString(), "brite-waxman");
}

TEST(Brite, BaTagged) {
  BriteOptions o;
  o.nodes = 10;
  o.seed = 2;
  const Graph g = topo::brite(o);
  EXPECT_EQ(g.attrs().at("generator").asString(), "brite-ba");
}

TEST(Brite, RejectsTooFewNodes) {
  BriteOptions o;
  o.nodes = 2;
  o.m = 2;
  EXPECT_THROW((void)topo::brite(o), std::invalid_argument);
}

TEST(Brite, HigherMMeansMoreEdges) {
  BriteOptions o2;
  o2.nodes = 300;
  o2.m = 2;
  o2.seed = 1;
  BriteOptions o3 = o2;
  o3.m = 3;
  EXPECT_GT(topo::brite(o3).edgeCount(), topo::brite(o2).edgeCount());
}

}  // namespace
