#include "service/service.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/plan.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using core::Outcome;
using service::EmbedRequest;
using service::NetEmbedService;
using graph::Graph;

Graph smallHost() {
  trace::PlanetLabOptions o;
  o.sites = 40;
  o.clusters = 5;
  o.deadSites = 0;
  o.pairLossRate = 0.3;
  o.seed = 4;
  return trace::synthesize(o);
}

EmbedRequest sampledRequest(const Graph& host, std::uint64_t seed) {
  util::Rng rng(seed);
  auto sub = topo::sampleConnectedSubgraph(host, 5, 6, rng);
  topo::widenDelayWindows(sub.graph, 0.1);
  EmbedRequest request;
  request.query = std::move(sub.graph);
  request.edgeConstraint = topo::delayWindowConstraint();
  request.options.maxSolutions = 1;
  return request;
}

TEST(Service, SubmitFindsFeasibleMapping) {
  NetEmbedService svc(smallHost());
  const auto response = svc.submit(sampledRequest(svc.model().host(), 1));
  ASSERT_TRUE(response.result.feasible());
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  // Rebuild the problem to verify against the service's host.
  const auto request = sampledRequest(svc.model().host(), 1);
  const core::Problem problem(request.query, svc.model().host(), constraints);
  EXPECT_TRUE(core::verifyMapping(problem, response.result.mappings.front()).ok);
  EXPECT_FALSE(response.diagnostics.empty());
}

TEST(Service, ExplicitAlgorithmIsUsed) {
  NetEmbedService svc(smallHost());
  for (const Algorithm algo : {Algorithm::ECF, Algorithm::RWB, Algorithm::LNS}) {
    auto request = sampledRequest(svc.model().host(), 2);
    request.algorithm = algo;
    const auto response = svc.submit(request);
    EXPECT_EQ(response.algorithmUsed, algo);
    EXPECT_TRUE(response.result.feasible()) << core::algorithmName(algo);
  }
}

TEST(Service, AutoSelectionFollowsPaperGuidance) {
  // Dense host (PlanetLab-like is near-clique at 40 sites / 0.3 loss).
  const Graph dense = topo::clique(30);
  EXPECT_EQ(NetEmbedService::chooseAlgorithm(topo::ring(4), dense, false),
            Algorithm::LNS);
  EXPECT_EQ(NetEmbedService::chooseAlgorithm(topo::ring(4), dense, true),
            Algorithm::ECF);
  // Sparse host, first match: RWB.
  const Graph sparse = topo::ring(30);
  EXPECT_EQ(NetEmbedService::chooseAlgorithm(topo::line(3), sparse, false),
            Algorithm::RWB);
  // Clique query prefers LNS for first match even on sparse hosts.
  EXPECT_EQ(NetEmbedService::chooseAlgorithm(topo::clique(5), sparse, false),
            Algorithm::LNS);
}

TEST(Service, PortfolioModeReturnsWinnerAndMatch) {
  NetEmbedService svc(smallHost());
  auto request = sampledRequest(svc.model().host(), 8);
  request.algorithm = Algorithm::Portfolio;
  const auto response = svc.submit(request);
  ASSERT_TRUE(response.result.feasible());
  // algorithmUsed reports the engine that won the race.
  EXPECT_TRUE(response.algorithmUsed == Algorithm::ECF ||
              response.algorithmUsed == Algorithm::RWB ||
              response.algorithmUsed == Algorithm::LNS)
      << core::algorithmName(response.algorithmUsed);
  EXPECT_NE(response.diagnostics.find("portfolio"), std::string::npos)
      << response.diagnostics;
}

TEST(Service, PortfolioModeProvesInfeasibility) {
  NetEmbedService svc(topo::ring(8));
  service::EmbedRequest request;
  request.query = topo::clique(4);  // no K4 in a cycle
  request.algorithm = Algorithm::Portfolio;
  request.options.maxSolutions = 1;
  const auto response = svc.submit(request);
  EXPECT_TRUE(response.result.provenInfeasible());
}

TEST(Service, AutoFirstMatchEscalatesToPortfolio) {
  NetEmbedService svc(smallHost());
  auto request = sampledRequest(svc.model().host(), 9);
  ASSERT_FALSE(request.algorithm.has_value());
  ASSERT_EQ(request.options.maxSolutions, 1u);
  const auto response = svc.submit(request);
  ASSERT_TRUE(response.result.feasible());
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_NE(response.diagnostics.find("portfolio"), std::string::npos)
        << response.diagnostics;
  }
}

TEST(Service, ExplicitBaselineAlgorithmsRun) {
  NetEmbedService svc(smallHost());
  auto request = sampledRequest(svc.model().host(), 10);
  for (const Algorithm algo : {Algorithm::Naive, Algorithm::Anneal, Algorithm::Genetic}) {
    request.algorithm = algo;
    request.options.timeout = std::chrono::milliseconds(2000);
    const auto response = svc.submit(request);
    EXPECT_EQ(response.algorithmUsed, algo);
    // The metaheuristics may legitimately fail; they must never claim proof.
    if (!response.result.feasible()) {
      EXPECT_FALSE(response.result.provenInfeasible()) << core::algorithmName(algo);
    }
  }
}

TEST(Service, BadConstraintThrows) {
  NetEmbedService svc(smallHost());
  auto request = sampledRequest(svc.model().host(), 3);
  request.edgeConstraint = "vEdge..broken";
  EXPECT_THROW((void)svc.submit(request), expr::SyntaxError);
}

TEST(Service, OversizedQueryRejected) {
  NetEmbedService svc(topo::ring(3));
  EmbedRequest request;
  request.query = topo::ring(5);
  EXPECT_THROW((void)svc.submit(request), std::invalid_argument);
}

TEST(Service, NegotiationRelaxesUntilFeasible) {
  NetEmbedService svc(smallHost());
  auto request = sampledRequest(svc.model().host(), 5);
  // Shrink the windows to make the original query infeasible-ish: narrow to
  // a point below every real edge's range.
  for (graph::EdgeId e = 0; e < request.query.edgeCount(); ++e) {
    auto& attrs = request.query.edgeAttrs(e);
    const double mid = attrs.at("minDelay").asDouble();
    attrs.set("minDelay", mid * 1.001);
    attrs.set("maxDelay", mid * 1.002);  // window excludes the real range
  }
  const auto direct = svc.submit(request);
  ASSERT_FALSE(direct.result.feasible());

  const auto negotiated = svc.negotiate(request, 0.25, 2.0);
  EXPECT_TRUE(negotiated.feasible);
  EXPECT_GT(negotiated.toleranceUsed, 0.0);
  EXPECT_GT(negotiated.rounds, 1);
}

TEST(Service, NegotiationGivesUpPastMaxTolerance) {
  NetEmbedService svc(topo::ring(6));
  EmbedRequest request;
  request.query = topo::clique(4);  // topologically impossible in a ring
  request.options.maxSolutions = 1;
  const auto negotiated = svc.negotiate(request, 0.5, 1.0);
  EXPECT_FALSE(negotiated.feasible);
  EXPECT_EQ(negotiated.rounds, 3);  // t = 0, 0.5, 1.0
}

TEST(Service, AllocateFirstFeasibleReserves) {
  Graph host = smallHost();
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("slots", 4.0);
  }
  NetEmbedService svc(std::move(host));
  auto request = sampledRequest(svc.model().host(), 6);
  for (graph::NodeId n = 0; n < request.query.nodeCount(); ++n) {
    request.query.nodeAttrs(n).set("slots", 1.0);
  }
  service::NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"slots"};

  const auto allocation = svc.allocateFirstFeasible(request, spec);
  ASSERT_TRUE(allocation.has_value());
  EXPECT_EQ(svc.model().activeReservations(), 1u);
  // Each mapped host node lost one slot.
  for (const graph::NodeId r : allocation->mapping) {
    EXPECT_DOUBLE_EQ(svc.model().host().nodeAttrs(r).at("slots").asDouble(), 3.0);
  }
  svc.model().release(allocation->reservation);
  EXPECT_EQ(svc.model().activeReservations(), 0u);
}

TEST(Service, AllocateReturnsNulloptWhenInfeasible) {
  NetEmbedService svc(topo::ring(6));
  EmbedRequest request;
  request.query = topo::clique(4);
  const auto allocation = svc.allocateFirstFeasible(request, {});
  EXPECT_FALSE(allocation.has_value());
}

TEST(Service, ModelReplacementInvalidatesCachedPlans) {
  // Assigning a new (here: smaller) model must not let a same-signature
  // query hit a plan built against the old host — stale host node ids would
  // index out of the new host's bounds.
  NetEmbedService svc(topo::clique(8));
  EmbedRequest request;
  request.query = topo::ring(4);
  request.algorithm = Algorithm::ECF;
  request.options.maxSolutions = 1;
  const std::uint64_t builds0 = core::filterPlanBuilds();
  const auto first = svc.submit(request);
  ASSERT_TRUE(first.result.feasible());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 1u);

  svc.model() = service::NetworkModel(topo::clique(6));
  EXPECT_GT(svc.model().version(), first.modelVersion);
  const auto second = svc.submit(request);
  EXPECT_TRUE(second.result.feasible());
  EXPECT_EQ(second.modelVersion, svc.model().version());
  EXPECT_EQ(core::filterPlanBuilds() - builds0, 2u)
      << "the replaced model must force a fresh stage-1 build";
}

TEST(Service, ModelVersionReportedInResponse) {
  NetEmbedService svc(smallHost());
  svc.model().setNodeAttr(0, "load", 1.0);
  const auto response = svc.submit(sampledRequest(svc.model().host(), 7));
  EXPECT_EQ(response.modelVersion, svc.model().version());
}

}  // namespace
