// The sharded host model: ShardMap partitioning, occupancy summaries, and
// the differential contract — SearchOptions::shards is a pure performance
// knob, so every shard count must produce byte-identical solution streams to
// the flat single-shard build, across engines, bitset modes, orderings, and
// the patch path. Suites are named Shard* so the TSan CI job can pick the
// whole family up with one gtest filter.

#include "core/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ecf.hpp"
#include "core/engine.hpp"
#include "core/filter.hpp"
#include "core/plan.hpp"
#include "core/portfolio.hpp"
#include "core/rwb.hpp"
#include "service/model.hpp"
#include "topo/hugehost.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "util/bitset.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using core::EmbedResult;
using core::FilterPlan;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using core::ShardMap;
using graph::Graph;

const expr::ConstraintSet kNone;

// --- ShardMap ----------------------------------------------------------------

TEST(ShardMapTest, ContiguousWordAlignedRangesCoverEveryNode) {
  for (const std::size_t hostNodes : {1ul, 64ul, 100ul, 320ul, 4096ul, 100352ul}) {
    for (const std::size_t shards : {1ul, 2ul, 5ul, 8ul, 64ul}) {
      const ShardMap sm(hostNodes, shards);
      ASSERT_GE(sm.shardCount(), 1u);
      ASSERT_LE(sm.shardCount(), ShardMap::kMaxShards);
      std::size_t covered = 0;
      for (std::size_t k = 0; k < sm.shardCount(); ++k) {
        EXPECT_EQ(sm.beginNode(k) % util::kBitsPerWord, 0u)
            << "shard start must be word-aligned";
        EXPECT_LT(sm.beginNode(k), sm.endNode(k)) << "every shard owns nodes";
        EXPECT_EQ(sm.beginNode(k), covered) << "ranges must be contiguous";
        for (std::size_t r = sm.beginNode(k); r < sm.endNode(k); ++r) {
          ASSERT_EQ(sm.shardOf(r), k) << "hostNodes=" << hostNodes << " r=" << r;
        }
        covered = sm.endNode(k);
      }
      EXPECT_EQ(covered, hostNodes);
      EXPECT_EQ(sm.endWord(sm.shardCount() - 1), sm.totalWords());
    }
  }
}

TEST(ShardMapTest, ClampsToWordCountAndMaxShards) {
  // 100 nodes = 2 words: at most 2 shards no matter the request.
  EXPECT_EQ(ShardMap(100, 8).shardCount(), 2u);
  EXPECT_EQ(ShardMap(100, 64).shardCount(), 2u);
  // 0 resolves to 1 at this layer (the hardware default is resolved above).
  EXPECT_EQ(ShardMap(100, 0).shardCount(), 1u);
  // Plenty of words: the kMaxShards cap (a live-shard set must fit a word).
  // 4096 nodes = 64 words splits exactly; 100352 nodes = 1568 words splits
  // into ceil(1568/64) = 25-word shards, resolving to 63 balanced shards.
  EXPECT_EQ(ShardMap(4096, 200).shardCount(), 64u);
  EXPECT_LE(ShardMap(100352, 200).shardCount(), ShardMap::kMaxShards);
  EXPECT_GE(ShardMap(100352, 200).shardCount(), 32u);
  // Degenerate empty host still yields one (empty) shard.
  EXPECT_EQ(ShardMap(0, 4).shardCount(), 1u);
}

TEST(ShardMapTest, OccupancyReportsExactlyTheNonZeroShards) {
  const ShardMap sm(256, 4);
  ASSERT_EQ(sm.shardCount(), 4u);
  util::Bitset row;
  row.assign(256);
  EXPECT_EQ(sm.occupancy(row.words()), 0u);
  row.set(0);     // shard 0
  row.set(200);   // shard 3
  EXPECT_EQ(sm.occupancy(row.words()), 0b1001u);
  row.set(64);    // shard 1 boundary node
  EXPECT_EQ(sm.occupancy(row.words()), 0b1011u);
  EXPECT_EQ(sm.fullMask(), 0b1111u);
}

// --- differential helpers ----------------------------------------------------

Graph randomConnected(std::size_t n, std::size_t extraEdges, util::Rng& rng) {
  Graph g(false);
  for (std::size_t i = 0; i < n; ++i) g.addNode();
  for (graph::NodeId i = 1; i < n; ++i) {
    g.addEdge(static_cast<graph::NodeId>(rng.index(i)), i);
  }
  for (std::size_t k = 0; k < extraEdges; ++k) {
    const auto u = static_cast<graph::NodeId>(rng.index(n));
    const auto v = static_cast<graph::NodeId>(rng.index(n));
    if (u == v || g.findEdge(u, v)) continue;
    g.addEdge(u, v);
  }
  return g;
}

void attributeHost(Graph& g, util::Rng& rng) {
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    g.nodeAttrs(n).set("cap", static_cast<double>(rng.uniformInt(1, 10)));
  }
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    g.edgeAttrs(e).set("bw", static_cast<double>(rng.uniformInt(1, 10)));
  }
}

void attributeQuery(Graph& g) {
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) g.nodeAttrs(n).set("cap", 3.0);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) g.edgeAttrs(e).set("bw", 4.0);
}

const expr::ConstraintSet& capConstraints() {
  static const expr::ConstraintSet set = expr::ConstraintSet::parse(
      "rEdge.bw >= vEdge.bw", "rNode.cap >= vNode.cap");
  return set;
}

/// A 320-node (5-word) attributed host: room for a genuinely multi-shard
/// partition while small enough (nr <= 512) that Auto mode still carries bit
/// rows, so both candidate representations run under every shard count.
Problem diffProblem(Graph& query, Graph& host, std::uint64_t seed) {
  util::Rng rng(util::deriveSeed(seed, 900));
  query = randomConnected(5, 4, rng);
  attributeQuery(query);
  host = randomConnected(320, 640, rng);
  attributeHost(host, rng);
  return Problem(query, host, capConstraints());
}

SearchOptions capped(std::size_t shards, core::BitsetMode mode) {
  SearchOptions o;
  o.shards = shards;
  o.bitsetMode = mode;
  o.maxSolutions = 400;  // a deterministic stream prefix keeps runtime bounded
  o.storeLimit = 400;
  return o;
}

std::vector<core::Mapping> sortedMappings(EmbedResult result) {
  std::sort(result.mappings.begin(), result.mappings.end());
  return result.mappings;
}

// --- differential: shards are invisible in the results -----------------------

TEST(ShardDifferential, SerialEcfStreamsByteIdenticalAcrossShardCounts) {
  Graph query, host;
  const Problem problem = diffProblem(query, host, 1);
  for (const core::BitsetMode mode :
       {core::BitsetMode::Off, core::BitsetMode::Auto, core::BitsetMode::Force}) {
    const EmbedResult reference = core::ecfSearch(problem, capped(1, mode));
    ASSERT_GT(reference.solutionCount, 0u);
    for (const std::size_t shards : {2ul, 3ul, 5ul}) {
      const EmbedResult r = core::ecfSearch(problem, capped(shards, mode));
      EXPECT_EQ(r.outcome, reference.outcome);
      EXPECT_EQ(r.solutionCount, reference.solutionCount);
      // Ordered, not sorted: the enumeration order itself must match.
      EXPECT_EQ(r.mappings, reference.mappings)
          << "shards=" << shards << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(ShardDifferential, DynamicOrderingStreamsIdenticalAcrossShardCounts) {
  // Exercises the DomainTracker's live-shard mask maintenance: the sharded
  // range-restricted narrowing must reproduce the flat visit order exactly.
  Graph query, host;
  const Problem problem = diffProblem(query, host, 2);
  for (const core::BitsetMode mode :
       {core::BitsetMode::Off, core::BitsetMode::Force}) {
    SearchOptions flat = capped(1, mode);
    flat.ordering = core::Ordering::Dynamic;
    const EmbedResult reference = core::ecfSearch(problem, flat);
    ASSERT_GT(reference.solutionCount, 0u);
    for (const std::size_t shards : {3ul, 5ul}) {
      SearchOptions o = capped(shards, mode);
      o.ordering = core::Ordering::Dynamic;
      const EmbedResult r = core::ecfSearch(problem, o);
      EXPECT_EQ(r.solutionCount, reference.solutionCount);
      EXPECT_EQ(r.mappings, reference.mappings)
          << "shards=" << shards << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(ShardDifferential, RwbSeededWalkIdenticalAcrossShardCounts) {
  // RWB shuffles the candidate buffer: identical pre-shuffle candidate order
  // plus the same seed means the walk must be identical. RWB is exhaustive,
  // so a 0-solution instance is genuinely infeasible — skip to the next seed
  // until the walk has something to find.
  Graph query, host;
  for (std::uint64_t instanceSeed = 3; instanceSeed < 23; ++instanceSeed) {
    const Problem problem = diffProblem(query, host, instanceSeed);
    SearchOptions flat = capped(1, core::BitsetMode::Auto);
    flat.maxSolutions = 1;
    flat.storeLimit = 1;
    flat.seed = 9;
    const EmbedResult reference = core::rwbSearch(problem, flat);
    if (reference.solutionCount == 0) continue;
    for (const std::size_t shards : {2ul, 5ul}) {
      SearchOptions o = flat;
      o.shards = shards;
      const EmbedResult r = core::rwbSearch(problem, o);
      ASSERT_EQ(r.solutionCount, 1u) << "shards=" << shards;
      EXPECT_EQ(r.mappings, reference.mappings) << "shards=" << shards;
    }
    return;
  }
  FAIL() << "no feasible differential instance within 20 seeds";
}

TEST(ShardDifferential, RootSplitParallelBuildMatchesSerialFlat) {
  // The TSan workload: parallel stage-0 shard tasks + per-worker search
  // threads over one shared sharded plan.
  Graph query, host;
  const Problem problem = diffProblem(query, host, 4);
  const EmbedResult reference =
      core::ecfSearch(problem, capped(1, core::BitsetMode::Auto));
  ASSERT_GT(reference.solutionCount, 0u);
  SearchOptions o = capped(5, core::BitsetMode::Auto);
  o.rootSplitThreads = 4;
  o.parallelFilterBuild = true;
  const EmbedResult r = core::ecfSearch(problem, o);
  EXPECT_EQ(r.solutionCount, reference.solutionCount);
  EXPECT_EQ(sortedMappings(r), sortedMappings(reference));
}

TEST(ShardDifferential, PortfolioCountMatchesFlatEcf) {
  Graph query, host;
  const Problem problem = diffProblem(query, host, 5);
  const EmbedResult reference =
      core::ecfSearch(problem, capped(1, core::BitsetMode::Auto));
  const core::PortfolioResult race =
      core::portfolioSearch(problem, capped(5, core::BitsetMode::Auto));
  EXPECT_EQ(race.result.solutionCount, reference.solutionCount);
}

// --- shard seams -------------------------------------------------------------

TEST(ShardSeam, BoundaryStraddlingCandidatesSurviveBucketedBuild) {
  // A 256-node path query'd by a 3-node path: solutions sit at every host
  // position, including the ones straddling the word boundaries 63|64,
  // 127|128 and 191|192 — exactly the pairs that land in off-diagonal
  // (boundary) buckets under a 4-shard build.
  const Graph host = topo::line(256);
  const Graph query = topo::line(3);
  const Problem problem(query, host, kNone);
  SearchOptions flat;
  flat.maxSolutions = 0;
  flat.storeLimit = 100000;
  const EmbedResult reference = core::ecfSearch(problem, flat);
  ASSERT_EQ(reference.outcome, Outcome::Complete);
  ASSERT_GT(reference.solutionCount, 0u);
  const auto straddles = [](const core::Mapping& m, graph::NodeId a) {
    const bool hasA = std::find(m.begin(), m.end(), a) != m.end();
    const bool hasB = std::find(m.begin(), m.end(), a + 1) != m.end();
    return hasA && hasB;
  };
  for (const graph::NodeId boundary : {63u, 127u, 191u}) {
    EXPECT_TRUE(std::any_of(
        reference.mappings.begin(), reference.mappings.end(),
        [&](const core::Mapping& m) { return straddles(m, boundary); }))
        << "test premise: solutions must straddle node " << boundary;
  }
  for (const std::size_t shards : {2ul, 4ul}) {
    SearchOptions o = flat;
    o.shards = shards;
    const EmbedResult r = core::ecfSearch(problem, o);
    EXPECT_EQ(r.solutionCount, reference.solutionCount);
    EXPECT_EQ(r.mappings, reference.mappings) << "shards=" << shards;
  }
}

TEST(ShardSeam, ZeroViableShardIsMaskedOutAndHarmless) {
  // Zone the host: only nodes < 64 (shard 0 of 4) match the query's zone, so
  // shards 1..3 have zero viable occupancy for every query node.
  Graph host = topo::line(256);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("zone", static_cast<std::int64_t>(n < 64 ? 0 : 1));
  }
  Graph query = topo::line(3);
  for (graph::NodeId n = 0; n < query.nodeCount(); ++n) {
    query.nodeAttrs(n).set("zone", std::int64_t{0});
  }
  const expr::ConstraintSet constraints =
      expr::ConstraintSet::parse("", "rNode.zone == vNode.zone");
  const Problem problem(query, host, constraints);

  SearchOptions o;
  o.shards = 4;
  core::SearchStats stats;
  const auto fm = core::FilterMatrix::build(problem, o, stats);
  ASSERT_TRUE(fm.sharded());
  ASSERT_EQ(fm.shardMap().shardCount(), 4u);
  for (graph::NodeId v = 0; v < query.nodeCount(); ++v) {
    EXPECT_EQ(fm.viableShardMask(v), 0b0001u) << "v=" << v;
  }

  SearchOptions flat;
  flat.maxSolutions = 0;
  flat.storeLimit = 100000;
  const EmbedResult reference = core::ecfSearch(problem, flat);
  ASSERT_GT(reference.solutionCount, 0u);
  SearchOptions shardedRun = flat;
  shardedRun.shards = 4;
  const EmbedResult r = core::ecfSearch(problem, shardedRun);
  EXPECT_EQ(r.solutionCount, reference.solutionCount);
  EXPECT_EQ(r.mappings, reference.mappings);
}

// --- patch path --------------------------------------------------------------

/// Structural equality through the public FilterMatrix surface, shard
/// summaries included.
void expectShardPlansIdentical(const FilterPlan& a, const FilterPlan& b,
                               const Graph& query, const Graph& host) {
  ASSERT_EQ(a.order, b.order);
  EXPECT_EQ(a.filters.totalEntries(), b.filters.totalEntries());
  ASSERT_EQ(a.filters.shardMap(), b.filters.shardMap());
  for (graph::NodeId v = 0; v < query.nodeCount(); ++v) {
    const auto va = a.filters.viable(v);
    const auto vb = b.filters.viable(v);
    ASSERT_TRUE(std::equal(va.begin(), va.end(), vb.begin(), vb.end())) << "v=" << v;
    EXPECT_EQ(a.filters.viableShardMask(v), b.filters.viableShardMask(v));
    ASSERT_EQ(a.filters.slots(v).size(), b.filters.slots(v).size());
    for (std::uint32_t s = 0; s < a.filters.slots(v).size(); ++s) {
      ASSERT_EQ(a.filters.hasCandidateBits(v, s), b.filters.hasCandidateBits(v, s));
      for (graph::NodeId r = 0; r < host.nodeCount(); ++r) {
        const auto ca = a.filters.candidates(v, s, r);
        const auto cb = b.filters.candidates(v, s, r);
        ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()))
            << "v=" << v << " s=" << s << " r=" << r;
        EXPECT_EQ(a.filters.candidateShardMask(v, s, r),
                  b.filters.candidateShardMask(v, s, r))
            << "v=" << v << " s=" << s << " r=" << r;
      }
    }
  }
}

TEST(ShardPatch, MutationStraddlingShardBoundaryMatchesFreshBuild) {
  util::Rng rng(77);
  Graph query = randomConnected(5, 4, rng);
  attributeQuery(query);
  Graph host = randomConnected(192, 380, rng);  // 3 words -> 3 shards
  attributeHost(host, rng);
  if (!host.findEdge(63, 64)) host.addEdge(63, 64);
  host.edgeAttrs(*host.findEdge(63, 64)).set("bw", 9.0);

  SearchOptions options;
  options.shards = 3;
  options.maxSolutions = 0;
  options.storeLimit = 100000;

  service::NetworkModel model{graph::Graph(host)};
  const Graph base = model.host();
  const auto basePlan =
      FilterPlan::build(Problem(query, base, capConstraints()), options);
  ASSERT_TRUE(basePlan->filters.sharded());

  // The mutation touches the boundary edge 63-64 (charged to both shards by
  // the sharded classifier) and node 64 — the first node of shard 1.
  model.setEdgeMetric(63, 64, "bw", 1.0);
  core::ModelDelta delta = model.lastDelta();
  model.setNodeAttr(64, "cap", 1.0);
  delta.merge(model.lastDelta());

  const Graph mutated = model.host();
  const Problem problem(query, mutated, capConstraints());
  const auto patched = FilterPlan::patch(*basePlan, problem, options, delta);
  const auto fresh = FilterPlan::build(problem, options);
  expectShardPlansIdentical(*patched, *fresh, query, mutated);
}

TEST(ShardPatch, ShardScopedClassifierStillRebuildsOnSaturatedShard) {
  // The sharded rule applies the E/4 cutoff per touched shard (with the
  // kPatchShardEdgeFloor escape hatch): a delta saturating one shard must
  // classify Rebuild even when the flat whole-host rule would still patch.
  util::Rng rng(78);
  Graph query = randomConnected(4, 3, rng);
  attributeQuery(query);
  Graph host = randomConnected(192, 4000, rng);
  // Densify shard 0 ([0, 64)) well past the absolute patch floor.
  std::size_t added = 0;
  for (graph::NodeId i = 0; i < 64 && added < 400; ++i) {
    for (graph::NodeId j = i + 1; j < 64 && added < 400; ++j) {
      if (!host.findEdge(i, j)) {
        host.addEdge(i, j);
        ++added;
      }
    }
  }
  attributeHost(host, rng);
  const Problem problem(query, host, capConstraints());
  const graph::AttrId bw = graph::attrId("bw");

  core::ModelDelta big;
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    // Every edge living wholly inside shard 0.
    if (host.edgeSource(e) < 64 && host.edgeTarget(e) < 64) big.touchEdge(e, bw);
  }
  big.normalize();
  ASSERT_GT(big.edges.size(), core::kPatchShardEdgeFloor);
  ASSERT_LT(big.edges.size() * core::kPatchEdgeShareDivisor, host.edgeCount())
      << "test premise: the flat whole-host rule must accept this delta";
  EXPECT_EQ(core::classifyDelta(problem, big), core::DeltaImpact::Patchable);
  const ShardMap sm(host.nodeCount(), 3);
  EXPECT_EQ(core::classifyDelta(problem, big, sm), core::DeltaImpact::Rebuild);

  // A handful of edges in that same shard stays patchable under the floor.
  core::ModelDelta small;
  for (graph::EdgeId e = 0; e < host.edgeCount() && small.edges.size() < 8; ++e) {
    if (host.edgeSource(e) < 64 && host.edgeTarget(e) < 64) small.touchEdge(e, bw);
  }
  small.normalize();
  EXPECT_EQ(core::classifyDelta(problem, small, sm), core::DeltaImpact::Patchable);
}

// --- hugeHost ----------------------------------------------------------------

TEST(ShardHugeHost, DeterministicPerSeedAndPodAligned) {
  topo::HugeHostOptions o;
  o.pods = 4;
  o.podSize = 64;
  o.extraIntraFactor = 4.0;
  o.trunkChords = 3;
  o.seed = 7;
  const Graph a = topo::hugeHost(o);
  const Graph b = topo::hugeHost(o);
  ASSERT_EQ(a.nodeCount(), 256u);
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  ASSERT_EQ(a.edgeCount(), b.edgeCount());
  const graph::AttrId podId = graph::attrId("pod");
  const graph::AttrId delayId = graph::attrId("delay");
  for (graph::NodeId n = 0; n < a.nodeCount(); ++n) {
    EXPECT_EQ(a.nodeAttrs(n).get(podId)->asInt(),
              static_cast<std::int64_t>(n / o.podSize));
  }
  for (graph::EdgeId e = 0; e < a.edgeCount(); ++e) {
    ASSERT_EQ(a.edgeSource(e), b.edgeSource(e));
    ASSERT_EQ(a.edgeTarget(e), b.edgeTarget(e));
    ASSERT_EQ(a.edgeAttrs(e).get(delayId)->asDouble(),
              b.edgeAttrs(e).get(delayId)->asDouble());
  }
  o.seed = 8;
  const Graph c = topo::hugeHost(o);
  bool differs = c.edgeCount() != a.edgeCount();
  for (graph::EdgeId e = 0; !differs && e < std::min(a.edgeCount(), c.edgeCount());
       ++e) {
    differs = a.edgeSource(e) != c.edgeSource(e) ||
              a.edgeTarget(e) != c.edgeTarget(e) ||
              a.edgeAttrs(e).get(delayId)->asDouble() !=
                  c.edgeAttrs(e).get(delayId)->asDouble();
  }
  EXPECT_TRUE(differs) << "a different seed must change the topology";
}

TEST(ShardHugeHost, PodAffinitySearchIdenticalShardedAndFlat) {
  topo::HugeHostOptions o;
  o.pods = 4;
  o.podSize = 64;
  o.extraIntraFactor = 4.0;
  o.seed = 11;
  const Graph host = topo::hugeHost(o);
  const graph::AttrId podId = graph::attrId("pod");
  Graph query;
  for (std::uint64_t attempt = 0;; ++attempt) {
    util::Rng rng(util::deriveSeed(11, 100 + attempt));
    auto sub = topo::sampleConnectedSubgraph(host, 6, 9, rng);
    const std::int64_t pod0 = sub.graph.nodeAttrs(0).get(podId)->asInt();
    bool onePod = true;
    for (graph::NodeId n = 1; n < sub.graph.nodeCount(); ++n) {
      if (sub.graph.nodeAttrs(n).get(podId)->asInt() != pod0) {
        onePod = false;
        break;
      }
    }
    if (!onePod) continue;
    topo::widenDelayWindows(sub.graph, 2.0);
    query = std::move(sub.graph);
    break;
  }
  const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
      topo::delayWindowConstraint(), "vNode.pod == rNode.pod");
  const Problem problem(query, host, constraints);
  SearchOptions flat;
  flat.maxSolutions = 400;
  flat.storeLimit = 400;
  const EmbedResult reference = core::ecfSearch(problem, flat);
  ASSERT_GT(reference.solutionCount, 0u);
  SearchOptions shardedRun = flat;
  shardedRun.shards = 4;
  const EmbedResult r = core::ecfSearch(problem, shardedRun);
  EXPECT_EQ(r.solutionCount, reference.solutionCount);
  EXPECT_EQ(r.mappings, reference.mappings);
}

// --- fault injection ---------------------------------------------------------

struct FaultGuard {
  explicit FaultGuard(std::uint64_t seed) {
    util::FaultInjector::instance().enable(seed);
  }
  ~FaultGuard() { util::FaultInjector::instance().disable(); }
};

TEST(ShardFault, ShardBuildFaultSurfacesFromShardedBuildsOnly) {
  Graph query, host;
  const Problem problem = diffProblem(query, host, 6);
  {
    FaultGuard guard(5);
    util::FaultInjector::instance().arm(util::faultsite::kShardBuild, {});
    SearchOptions o;
    o.shards = 5;
    core::SearchStats stats;
    EXPECT_THROW((void)core::FilterMatrix::build(problem, o, stats),
                 util::InjectedFault);
    // A flat build never reaches the per-shard probe site.
    SearchOptions flat;
    core::SearchStats flatStats;
    EXPECT_NO_THROW((void)core::FilterMatrix::build(problem, flat, flatStats));
    EXPECT_EQ(util::FaultInjector::instance().fires(util::faultsite::kShardBuild),
              1u);
  }
  // Injection off: the sharded build runs clean again.
  SearchOptions o;
  o.shards = 5;
  core::SearchStats stats;
  EXPECT_NO_THROW((void)core::FilterMatrix::build(problem, o, stats));
}

}  // namespace
