// Delta-first model mutations: ModelDelta production, delta classification,
// FilterPlan::patch differential equivalence against from-scratch builds
// (every engine topology, every bitset mode), the conservative rebuild
// fall-backs, and FilterPlanCache re-keying across version bumps.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/ecf.hpp"
#include "core/engine.hpp"
#include "core/plan.hpp"
#include "core/portfolio.hpp"
#include "core/rwb.hpp"
#include "service/async.hpp"
#include "service/model.hpp"
#include "service/plan_cache.hpp"
#include "topo/regular.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using core::DeltaImpact;
using core::EmbedResult;
using core::FilterMatrix;
using core::FilterPlan;
using core::ModelDelta;
using core::Outcome;
using core::Problem;
using core::SearchContext;
using core::SearchOptions;
using core::SharedPlanBuilder;
using graph::Graph;
using service::FilterPlanCache;
using service::NetworkModel;

// --- ModelDelta ---------------------------------------------------------------

TEST(ModelDelta, TouchAndMergeKeepSortedUniqueSets) {
  ModelDelta a;
  a.touchNode(5, graph::attrId("cpu"));
  a.touchNode(2, graph::attrId("cpu"));
  a.touchNode(5, graph::attrId("mem"));
  a.touchEdge(7, graph::attrId("delay"));
  a.normalize();
  EXPECT_EQ(a.nodes, (std::vector<graph::NodeId>{2, 5}));
  EXPECT_EQ(a.edges, (std::vector<graph::EdgeId>{7}));
  EXPECT_TRUE(std::is_sorted(a.attrs.begin(), a.attrs.end()));
  EXPECT_EQ(a.attrs.size(), 3u);

  ModelDelta b;
  b.touchNode(3, graph::attrId("cpu"));
  b.touchEdge(7, graph::attrId("bw"));
  a.merge(b);
  EXPECT_EQ(a.nodes, (std::vector<graph::NodeId>{2, 3, 5}));
  EXPECT_EQ(a.edges, (std::vector<graph::EdgeId>{7}));
  EXPECT_FALSE(a.structural);

  ModelDelta structural;
  structural.structural = true;
  a.merge(structural);
  EXPECT_TRUE(a.structural);
  EXPECT_FALSE(a.empty());
}

TEST(ModelDelta, TouchesAnyAttrIntersectsSortedSets) {
  ModelDelta d;
  d.touchNode(0, graph::attrId("alpha"));
  d.touchNode(0, graph::attrId("gamma"));
  d.normalize();
  std::vector<graph::AttrId> referenced{graph::attrId("beta"), graph::attrId("gamma")};
  std::sort(referenced.begin(), referenced.end());
  EXPECT_TRUE(d.touchesAnyAttr(referenced));
  EXPECT_FALSE(d.touchesAnyAttr({graph::attrId("beta")}));
  EXPECT_FALSE(d.touchesAnyAttr({}));
}

TEST(ModelDelta, NetworkModelRecordsEveryMutationFootprint) {
  Graph host = topo::ring(6);
  NetworkModel model(std::move(host));

  model.setNodeAttr(3, "load", 0.5);
  EXPECT_EQ(model.lastDelta().nodes, (std::vector<graph::NodeId>{3}));
  EXPECT_TRUE(model.lastDelta().edges.empty());
  EXPECT_EQ(model.lastDelta().attrs, (std::vector<graph::AttrId>{graph::attrId("load")}));
  EXPECT_FALSE(model.lastDelta().structural);

  model.setEdgeMetric(0, 1, "delay", 4.0);
  const auto e01 = model.host().findEdge(0, 1);
  ASSERT_TRUE(e01.has_value());
  EXPECT_TRUE(model.lastDelta().nodes.empty());  // each mutation resets it
  EXPECT_EQ(model.lastDelta().edges, (std::vector<graph::EdgeId>{*e01}));

  const NetworkModel::Measurement batch[] = {
      {"n2", "", "load", graph::AttrValue(0.9)},
      {"n4", "n5", "delay", graph::AttrValue(7.0)},
      {"nope", "", "load", graph::AttrValue(1.0)},  // unknown: skipped
  };
  EXPECT_EQ(model.applyMeasurements(batch), 2u);
  EXPECT_EQ(model.lastDelta().nodes, (std::vector<graph::NodeId>{2}));
  EXPECT_EQ(model.lastDelta().edges.size(), 1u);

  // Reservation deltas carry the capacity attribute on the mapped elements.
  Graph query = topo::line(2);
  query.nodeAttrs(0).set("slots", 2.0);
  query.nodeAttrs(1).set("slots", 1.0);
  NetworkModel capModel{[] {
    Graph h = topo::ring(4);
    for (graph::NodeId n = 0; n < h.nodeCount(); ++n) h.nodeAttrs(n).set("slots", 8.0);
    return h;
  }()};
  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"slots"};
  const auto id = capModel.reserve(query, {1, 2}, spec);
  EXPECT_EQ(capModel.lastDelta().nodes, (std::vector<graph::NodeId>{1, 2}));
  EXPECT_EQ(capModel.lastDelta().attrs,
            (std::vector<graph::AttrId>{graph::attrId("slots")}));
  capModel.release(id);
  EXPECT_EQ(capModel.lastDelta().nodes, (std::vector<graph::NodeId>{1, 2}));

  // Wholesale replacement is structural.
  model = NetworkModel(topo::clique(5));
  EXPECT_TRUE(model.lastDelta().structural);
}

// --- instance family for the differential suites ------------------------------

Graph randomConnected(std::size_t n, std::size_t extraEdges, bool directed,
                      util::Rng& rng) {
  Graph g(directed);
  for (std::size_t i = 0; i < n; ++i) g.addNode();
  for (graph::NodeId i = 1; i < n; ++i) {
    const auto j = static_cast<graph::NodeId>(rng.index(i));
    if (directed && rng.bernoulli(0.5)) {
      g.addEdge(i, j);
    } else {
      g.addEdge(j, i);
    }
  }
  for (std::size_t k = 0; k < extraEdges; ++k) {
    const auto u = static_cast<graph::NodeId>(rng.index(n));
    const auto v = static_cast<graph::NodeId>(rng.index(n));
    if (u == v || g.findEdge(u, v)) continue;
    g.addEdge(u, v);
  }
  return g;
}

/// Attribute both levels so node AND edge constraints have teeth: host
/// capacities "cap"/"bw" vary per element, the query demands fixed floors.
void attributeHost(Graph& g, util::Rng& rng) {
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    g.nodeAttrs(n).set("cap", static_cast<double>(rng.uniformInt(1, 10)));
  }
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    g.edgeAttrs(e).set("bw", static_cast<double>(rng.uniformInt(1, 10)));
  }
}

void attributeQuery(Graph& g) {
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) g.nodeAttrs(n).set("cap", 3.0);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) g.edgeAttrs(e).set("bw", 4.0);
}

const expr::ConstraintSet& capConstraints() {
  static const expr::ConstraintSet set = expr::ConstraintSet::parse(
      "rEdge.bw >= vEdge.bw", "rNode.cap >= vNode.cap");
  return set;
}

/// A lowest-degree host node (its incident-edge footprint is guaranteed
/// under the classifier's E/4 patch cutoff on any connected host with more
/// than a handful of edges).
graph::NodeId minDegreeNode(const Graph& g, std::size_t skip = 0) {
  std::vector<graph::NodeId> ids(g.nodeCount());
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) ids[n] = n;
  std::stable_sort(ids.begin(), ids.end(), [&](graph::NodeId a, graph::NodeId b) {
    return g.degree(a) < g.degree(b);
  });
  return ids.at(skip);
}

/// Structural equality of two plans through the public FilterMatrix surface:
/// Lemma-1 order, earlier-constrainer index, per-cell candidate lists and
/// bit rows, viability lists and bits, entry totals.
void expectPlansIdentical(const FilterPlan& a, const FilterPlan& b,
                          const Graph& query, const Graph& host) {
  ASSERT_EQ(a.order, b.order);
  ASSERT_EQ(a.earlier.size(), b.earlier.size());
  for (std::size_t v = 0; v < a.earlier.size(); ++v) {
    ASSERT_EQ(a.earlier[v].size(), b.earlier[v].size()) << "v=" << v;
    for (std::size_t i = 0; i < a.earlier[v].size(); ++i) {
      EXPECT_EQ(a.earlier[v][i].owner, b.earlier[v][i].owner);
      EXPECT_EQ(a.earlier[v][i].slot, b.earlier[v][i].slot);
    }
  }
  EXPECT_EQ(a.filters.totalEntries(), b.filters.totalEntries());
  for (graph::NodeId v = 0; v < query.nodeCount(); ++v) {
    const auto va = a.filters.viable(v);
    const auto vb = b.filters.viable(v);
    ASSERT_TRUE(std::equal(va.begin(), va.end(), vb.begin(), vb.end())) << "v=" << v;
    for (graph::NodeId r = 0; r < host.nodeCount(); ++r) {
      ASSERT_EQ(a.filters.isViable(v, r), b.filters.isViable(v, r))
          << "v=" << v << " r=" << r;
    }
    ASSERT_EQ(a.filters.slots(v).size(), b.filters.slots(v).size());
    for (std::uint32_t s = 0; s < a.filters.slots(v).size(); ++s) {
      ASSERT_EQ(a.filters.hasCandidateBits(v, s), b.filters.hasCandidateBits(v, s));
      for (graph::NodeId r = 0; r < host.nodeCount(); ++r) {
        const auto ca = a.filters.candidates(v, s, r);
        const auto cb = b.filters.candidates(v, s, r);
        ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()))
            << "v=" << v << " s=" << s << " r=" << r;
        if (a.filters.hasCandidateBits(v, s)) {
          const auto ba = a.filters.candidateBits(v, s, r);
          const auto bb = b.filters.candidateBits(v, s, r);
          ASSERT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin(), bb.end()))
              << "bits v=" << v << " s=" << s << " r=" << r;
        }
      }
    }
  }
}

SearchOptions storeAll(core::BitsetMode mode) {
  SearchOptions o;
  o.maxSolutions = 0;
  o.storeLimit = 100000;
  o.bitsetMode = mode;
  return o;
}

std::vector<core::Mapping> sortedMappings(EmbedResult result) {
  std::sort(result.mappings.begin(), result.mappings.end());
  return result.mappings;
}

EmbedResult runWithPlan(Algorithm algorithm, const Problem& problem,
                        const SearchOptions& options,
                        std::shared_ptr<const FilterPlan> plan) {
  const core::Engine& engine = core::engineFor(algorithm);
  SearchContext context(engine.effectiveOptions(options));
  context.setPlanBuilder(std::make_shared<SharedPlanBuilder>(std::move(plan)));
  return engine.run(problem, context);
}

// --- PlanPatch: differential equivalence --------------------------------------

TEST(PlanPatch, StructurallyIdenticalToFreshBuildAcrossModesAndMutations) {
  for (const bool directed : {false, true}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      util::Rng rng(util::deriveSeed(seed, directed ? 101 : 100));
      Graph query = randomConnected(5, 4, directed, rng);
      attributeQuery(query);
      Graph host = randomConnected(12, 24, directed, rng);
      attributeHost(host, rng);

      NetworkModel model{graph::Graph(host)};
      for (const core::BitsetMode mode :
           {core::BitsetMode::Off, core::BitsetMode::Auto, core::BitsetMode::Force}) {
        const SearchOptions options = storeAll(mode);
        const Graph base = model.host();
        const auto basePlan =
            FilterPlan::build(Problem(query, base, capConstraints()), options);

        // Three mutation shapes: node-constraint flip, edge-constraint flip,
        // and a mixed batch — each patched forward from the same base.
        struct Case {
          const char* name;
          ModelDelta delta;
          Graph mutated;
        };
        std::vector<Case> cases;
        {
          NetworkModel m{graph::Graph(base)};
          m.setNodeAttr(4, "cap", 1.0);  // below the query demand: shrinks sets
          cases.push_back({"node", m.lastDelta(), m.host()});
        }
        {
          NetworkModel m{graph::Graph(base)};
          m.setEdgeMetric(base.edgeSource(0), base.edgeTarget(0), "bw", 10.0);
          cases.push_back({"edge", m.lastDelta(), m.host()});
        }
        {
          NetworkModel m{graph::Graph(base)};
          m.setNodeAttr(2, "cap", 10.0);
          ModelDelta merged = m.lastDelta();
          m.setEdgeMetric(base.edgeSource(1), base.edgeTarget(1), "bw", 1.0);
          merged.merge(m.lastDelta());
          cases.push_back({"batch", std::move(merged), m.host()});
        }

        for (const Case& c : cases) {
          const Problem mutated(query, c.mutated, capConstraints());
          // These attrs are constraint-referenced, so never Unaffected; the
          // patch itself is exercised directly regardless of the size cutoff.
          ASSERT_NE(core::classifyDelta(mutated, c.delta), DeltaImpact::Unaffected)
              << c.name;
          const auto patched =
              FilterPlan::patch(*basePlan, mutated, options, c.delta);
          const auto fresh = FilterPlan::build(mutated, options);
          expectPlansIdentical(*patched, *fresh, query, c.mutated);

          // Serial ECF streams must be byte-identical (ordered, not sorted).
          const EmbedResult viaPatch =
              runWithPlan(Algorithm::ECF, mutated, options, patched);
          const EmbedResult viaFresh =
              runWithPlan(Algorithm::ECF, mutated, options, fresh);
          EXPECT_EQ(viaPatch.outcome, viaFresh.outcome) << c.name;
          EXPECT_EQ(viaPatch.solutionCount, viaFresh.solutionCount) << c.name;
          EXPECT_EQ(viaPatch.mappings, viaFresh.mappings)
              << c.name << " directed=" << directed << " seed=" << seed
              << " mode=" << static_cast<int>(mode);
        }
      }
    }
  }
}

TEST(PlanPatch, RwbRootSplitAndPortfolioStreamsMatchFreshBuilds) {
  util::Rng rng(77);
  Graph query = randomConnected(5, 3, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(12, 26, false, rng);
  attributeHost(host, rng);

  NetworkModel model{graph::Graph(host)};
  const Graph base = model.host();
  for (const core::BitsetMode mode :
       {core::BitsetMode::Off, core::BitsetMode::Auto, core::BitsetMode::Force}) {
    const SearchOptions options = storeAll(mode);
    const auto basePlan =
        FilterPlan::build(Problem(query, base, capConstraints()), options);

    NetworkModel m{graph::Graph(base)};
    m.setNodeAttr(3, "cap", 1.0);
    const ModelDelta delta = m.lastDelta();
    const Graph mutatedHost = m.host();
    const Problem mutated(query, mutatedHost, capConstraints());
    const auto patched = FilterPlan::patch(*basePlan, mutated, options, delta);
    const auto fresh = FilterPlan::build(mutated, options);

    {
      // Seeded RWB: identical plan + seed => identical walk and first match.
      SearchOptions o = options;
      o.seed = 9;
      o.maxSolutions = 1;
      const EmbedResult a = runWithPlan(Algorithm::RWB, mutated, o, patched);
      const EmbedResult b = runWithPlan(Algorithm::RWB, mutated, o, fresh);
      EXPECT_EQ(a.solutionCount, b.solutionCount);
      EXPECT_EQ(a.mappings, b.mappings);
    }
    {
      SearchOptions o = options;
      o.rootSplitThreads = 3;
      const EmbedResult split = runWithPlan(Algorithm::ECF, mutated, o, patched);
      const EmbedResult serial = runWithPlan(Algorithm::ECF, mutated, options, fresh);
      EXPECT_EQ(split.outcome, serial.outcome);
      EXPECT_EQ(sortedMappings(split), sortedMappings(serial));
    }
    {
      SearchContext parent(options);
      parent.setPlanBuilder(std::make_shared<SharedPlanBuilder>(patched));
      const core::PortfolioResult race = core::portfolioSearch(
          mutated, parent, core::defaultContenders(options, Algorithm::ECF));
      ASSERT_TRUE(race.raceDecided);
      const EmbedResult serial = runWithPlan(Algorithm::ECF, mutated, options, fresh);
      EXPECT_EQ(sortedMappings(race.result), sortedMappings(serial))
          << static_cast<int>(mode);
    }
  }
}

TEST(PlanPatch, ChainedPatchesTrackARollingModel) {
  // Monitoring feed: patch-on-patch over several bumps stays identical to a
  // from-scratch build of the final state (the plan cache's steady state).
  util::Rng rng(5);
  Graph query = randomConnected(4, 3, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(11, 20, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);

  NetworkModel model{graph::Graph(host)};
  Graph snap = model.host();
  auto plan = FilterPlan::build(Problem(query, snap, capConstraints()), options);
  for (int step = 0; step < 6; ++step) {
    if (step % 2 == 0) {
      model.setNodeAttr(static_cast<graph::NodeId>(rng.index(host.nodeCount())),
                        "cap", static_cast<double>(rng.uniformInt(1, 10)));
    } else {
      const auto e = static_cast<graph::EdgeId>(rng.index(host.edgeCount()));
      model.setEdgeMetric(host.edgeSource(e), host.edgeTarget(e), "bw",
                          static_cast<double>(rng.uniformInt(1, 10)));
    }
    snap = model.host();
    const Problem problem(query, snap, capConstraints());
    plan = FilterPlan::patch(*plan, problem, options, model.lastDelta());
    const auto fresh = FilterPlan::build(problem, options);
    expectPlansIdentical(*plan, *fresh, query, snap);
  }
}

TEST(PlanPatch, OverflowSurfacesWhenEditsExceedTheEntryBudget) {
  // Low-degree query into a clique with uniform passing attributes: raising
  // the one failing edge's bandwidth deterministically adds entries. Build
  // at an exact budget, then the patch must push past it.
  Graph query = topo::line(3);
  attributeQuery(query);
  Graph host = topo::clique(8);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("cap", 10.0);
  }
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set("bw", 10.0);
  }
  host.edgeAttrs(0).set("bw", 1.0);
  NetworkModel model{std::move(host)};
  const Graph base = model.host();
  SearchOptions options = storeAll(core::BitsetMode::Auto);
  core::SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(
      Problem(query, base, capConstraints()), options, stats);
  options.maxFilterEntries = fm.totalEntries();
  const auto plan =
      FilterPlan::build(Problem(query, base, capConstraints()), options);

  model.setEdgeMetric(base.edgeSource(0), base.edgeTarget(0), "bw", 10.0);
  const Graph mutatedHost = model.host();
  const Problem mutated(query, mutatedHost, capConstraints());
  EXPECT_THROW(
      (void)FilterPlan::patch(*plan, mutated, options, model.lastDelta()),
      core::FilterOverflow);
}

// --- DeltaImpact classification -----------------------------------------------

TEST(DeltaImpact, UnreferencedAttrsAreProvablyIrrelevant) {
  util::Rng rng(3);
  Graph query = randomConnected(4, 2, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(10, 14, false, rng);
  attributeHost(host, rng);
  const Problem problem(query, host, capConstraints());

  ModelDelta load;
  load.touchNode(2, graph::attrId("load"));  // no constraint reads "load"
  EXPECT_EQ(core::classifyDelta(problem, load), DeltaImpact::Unaffected);

  ModelDelta cap;
  cap.touchNode(2, graph::attrId("cap"));
  EXPECT_EQ(core::classifyDelta(problem, cap), DeltaImpact::Patchable);

  ModelDelta empty;
  EXPECT_EQ(core::classifyDelta(problem, empty), DeltaImpact::Unaffected);

  ModelDelta structural;
  structural.structural = true;
  EXPECT_EQ(core::classifyDelta(problem, structural), DeltaImpact::Rebuild);

  // Topology-only problems reference no attributes at all.
  const expr::ConstraintSet none;
  const Problem bare(query, host, none);
  EXPECT_EQ(core::classifyDelta(bare, cap), DeltaImpact::Unaffected);
}

TEST(DeltaImpact, OversizedDeltasFallBackToRebuild) {
  Graph query = topo::line(3);
  attributeQuery(query);
  Graph host = topo::clique(12);
  util::Rng rng(4);
  attributeHost(host, rng);
  const Problem problem(query, host, capConstraints());

  // Touching every node reaches every edge: far past the 1/4 cutoff.
  ModelDelta wide;
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    wide.touchNode(n, graph::attrId("cap"));
  }
  wide.normalize();
  EXPECT_EQ(core::classifyDelta(problem, wide), DeltaImpact::Rebuild);

  // One node of a 12-clique touches 11 of 66 edges: still under the cutoff.
  ModelDelta narrow;
  narrow.touchNode(0, graph::attrId("cap"));
  EXPECT_EQ(core::classifyDelta(problem, narrow), DeltaImpact::Patchable);
}

// --- SharedPlanBuilder patch sources ------------------------------------------

TEST(PlanPatch, BuilderResolvesPatchSourceByImpact) {
  util::Rng rng(12);
  Graph query = randomConnected(4, 2, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(10, 16, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);
  NetworkModel model{graph::Graph(host)};
  const Graph base = model.host();
  const auto basePlan =
      FilterPlan::build(Problem(query, base, capConstraints()), options);

  {
    // Unaffected: the inherited plan is returned outright — no build, no
    // patch, builtHere false.
    model.setNodeAttr(1, "load", 0.7);
    const Graph mutatedHost = model.host();
    SharedPlanBuilder builder(
        SharedPlanBuilder::PatchSource{basePlan, model.lastDelta()});
    const auto buildsBefore = core::filterPlanBuilds();
    const auto patchesBefore = core::filterPlanPatches();
    const auto acquired =
        builder.get(Problem(query, mutatedHost, capConstraints()), options);
    EXPECT_EQ(acquired.plan, basePlan);
    EXPECT_FALSE(acquired.builtHere);
    EXPECT_EQ(core::filterPlanBuilds(), buildsBefore);
    EXPECT_EQ(core::filterPlanPatches(), patchesBefore);
  }
  {
    // Patchable: resolved by patching, counted as a patch and not a build.
    // (A low-degree node keeps the footprint under the E/4 rebuild cutoff.)
    model.setNodeAttr(minDegreeNode(base), "cap", 1.0);
    const Graph mutatedHost = model.host();
    SharedPlanBuilder builder(
        SharedPlanBuilder::PatchSource{basePlan, model.lastDelta()});
    const auto buildsBefore = core::filterPlanBuilds();
    const auto patchesBefore = core::filterPlanPatches();
    const auto acquired =
        builder.get(Problem(query, mutatedHost, capConstraints()), options);
    EXPECT_TRUE(acquired.builtHere);
    EXPECT_NE(acquired.plan, basePlan);
    EXPECT_EQ(core::filterPlanBuilds(), buildsBefore);
    EXPECT_EQ(core::filterPlanPatches(), patchesBefore + 1);
    const auto fresh =
        FilterPlan::build(Problem(query, mutatedHost, capConstraints()), options);
    expectPlansIdentical(*acquired.plan, *fresh, query, mutatedHost);
  }
  {
    // Structural: falls back to a full build.
    ModelDelta structural;
    structural.structural = true;
    SharedPlanBuilder builder(
        SharedPlanBuilder::PatchSource{basePlan, structural});
    const Graph mutatedHost = model.host();
    const auto buildsBefore = core::filterPlanBuilds();
    const auto acquired =
        builder.get(Problem(query, mutatedHost, capConstraints()), options);
    EXPECT_TRUE(acquired.builtHere);
    EXPECT_EQ(core::filterPlanBuilds(), buildsBefore + 1);
  }
}

TEST(PlanPatch, MergeDeltaOnlyBeforeResolution) {
  util::Rng rng(13);
  Graph query = randomConnected(4, 2, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(9, 12, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);
  const auto basePlan =
      FilterPlan::build(Problem(query, host, capConstraints()), options);

  ModelDelta first;
  first.touchNode(0, graph::attrId("cap"));
  SharedPlanBuilder builder(SharedPlanBuilder::PatchSource{basePlan, first});
  ModelDelta second;
  second.touchNode(1, graph::attrId("cap"));
  EXPECT_TRUE(builder.mergeDelta(second));

  NetworkModel model{graph::Graph(host)};
  model.setNodeAttr(0, "cap", 1.0);
  model.setNodeAttr(1, "cap", 1.0);
  const Graph mutatedHost = model.host();
  const auto acquired =
      builder.get(Problem(query, mutatedHost, capConstraints()), options);
  const auto fresh =
      FilterPlan::build(Problem(query, mutatedHost, capConstraints()), options);
  expectPlansIdentical(*acquired.plan, *fresh, query, mutatedHost);

  // Resolved: no more merging (the cache must re-key instead).
  EXPECT_FALSE(builder.mergeDelta(second));
  // And a builder with no patch source never merges.
  SharedPlanBuilder plain;
  EXPECT_FALSE(plain.mergeDelta(second));
}

// --- FilterPlanCache re-keying ------------------------------------------------

TEST(FilterPlanCache, ApplyDeltaCarriesReadyEntriesAcrossTheBump) {
  util::Rng rng(21);
  Graph query = randomConnected(4, 2, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(10, 16, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);

  FilterPlanCache cache(4);
  const auto builder = cache.acquire(1, "sig");
  const auto acquired = builder->get(Problem(query, host, capConstraints()), options);
  ASSERT_TRUE(acquired.builtHere);

  NetworkModel model{graph::Graph(host)};
  model.setNodeAttr(minDegreeNode(host), "cap", 1.0);
  cache.applyDelta(2, model.lastDelta());
  EXPECT_EQ(cache.stats().rekeys, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().size, 1u);

  // The new-version acquire hits the carried entry, whose first get patches.
  const auto carried = cache.acquire(2, "sig");
  EXPECT_NE(carried, builder);
  EXPECT_EQ(cache.stats().hits, 1u);
  const Graph mutatedHost = model.host();
  const auto buildsBefore = core::filterPlanBuilds();
  const auto patchesBefore = core::filterPlanPatches();
  const auto resolved =
      carried->get(Problem(query, mutatedHost, capConstraints()), options);
  EXPECT_EQ(core::filterPlanBuilds(), buildsBefore);
  EXPECT_EQ(core::filterPlanPatches(), patchesBefore + 1);
  const auto fresh =
      FilterPlan::build(Problem(query, mutatedHost, capConstraints()), options);
  expectPlansIdentical(*resolved.plan, *fresh, query, mutatedHost);
}

TEST(FilterPlanCache, BackToBackDeltasAccumulateIntoOnePatchSource) {
  util::Rng rng(22);
  Graph query = randomConnected(4, 2, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(10, 14, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);

  FilterPlanCache cache(4);
  {
    const auto builder = cache.acquire(1, "sig");
    (void)builder->get(Problem(query, host, capConstraints()), options);
  }  // drop our reference: the cache owns the builder exclusively

  NetworkModel model{graph::Graph(host)};
  model.setNodeAttr(minDegreeNode(host, 0), "cap", 1.0);
  cache.applyDelta(2, model.lastDelta());
  model.setNodeAttr(minDegreeNode(host, 1), "cap", 1.0);
  cache.applyDelta(3, model.lastDelta());  // merges into the pending source
  EXPECT_EQ(cache.stats().rekeys, 2u);
  EXPECT_EQ(cache.stats().size, 1u);

  const auto carried = cache.acquire(3, "sig");
  const Graph mutatedHost = model.host();
  const auto patchesBefore = core::filterPlanPatches();
  const auto resolved =
      carried->get(Problem(query, mutatedHost, capConstraints()), options);
  EXPECT_EQ(core::filterPlanPatches(), patchesBefore + 1);  // one merged patch
  const auto fresh =
      FilterPlan::build(Problem(query, mutatedHost, capConstraints()), options);
  expectPlansIdentical(*resolved.plan, *fresh, query, mutatedHost);
}

TEST(FilterPlanCache, StructuralDeltaStillInvalidatesEverything) {
  FilterPlanCache cache(4);
  (void)cache.acquire(1, "a");
  (void)cache.acquire(1, "b");
  ModelDelta structural;
  structural.structural = true;
  cache.applyDelta(2, structural);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().rekeys, 0u);
}

TEST(FilterPlanCache, UnresolvedSharedBuildersAreDroppedNotMutated) {
  FilterPlanCache cache(4);
  // Keep the acquired builder alive: it may be inside an in-flight get()
  // against the old version, so applyDelta must drop, not mutate, it.
  const auto live = cache.acquire(1, "sig");
  ModelDelta delta;
  delta.touchNode(0, graph::attrId("cap"));
  cache.applyDelta(2, delta);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().size, 0u);
}

// --- end to end through the async service -------------------------------------

TEST(AsyncServiceDelta, MutationRekeysPlansAndPatchesInsteadOfRebuilding) {
  util::Rng rng(31);
  Graph host = randomConnected(14, 30, false, rng);
  attributeHost(host, rng);
  Graph queryGraph = randomConnected(4, 3, false, rng);
  attributeQuery(queryGraph);

  service::EmbedRequest request;
  request.query = queryGraph;
  request.edgeConstraint = "rEdge.bw >= vEdge.bw";
  request.nodeConstraint = "rNode.cap >= vNode.cap";
  request.algorithm = Algorithm::ECF;
  request.options.maxSolutions = 0;
  request.options.storeLimit = 100000;

  service::AsyncNetEmbedService svc{graph::Graph(host), {.workers = 2}};
  const auto buildsBefore = core::filterPlanBuilds();
  const auto patchesBefore = core::filterPlanPatches();

  auto first = svc.submit(service::EmbedRequest(request)).get();
  ASSERT_EQ(first.status, service::RequestStatus::Done);

  svc.setNodeAttr(minDegreeNode(host), "cap", 1.0);  // relevant: expect a patch
  auto second = svc.submit(service::EmbedRequest(request)).get();
  ASSERT_EQ(second.status, service::RequestStatus::Done);
  EXPECT_GT(second.modelVersion, first.modelVersion);

  svc.setNodeAttr(3, "load", 0.4);  // irrelevant: expect pure reuse
  auto third = svc.submit(service::EmbedRequest(request)).get();
  ASSERT_EQ(third.status, service::RequestStatus::Done);

  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 1u);
  EXPECT_EQ(core::filterPlanPatches() - patchesBefore, 1u);
  const auto cacheStats = svc.planCacheStats();
  EXPECT_EQ(cacheStats.rekeys, 2u);
  EXPECT_EQ(cacheStats.invalidations, 0u);

  // Ground truth: a fresh service over the mutated host agrees exactly.
  Graph mutatedHost = *svc.hostSnapshot();
  service::NetEmbedService reference{service::NetworkModel(std::move(mutatedHost))};
  const auto expected = reference.submit(request);
  EXPECT_EQ(sortedMappings(third.result), sortedMappings(expected.result));
  EXPECT_EQ(third.result.solutionCount, expected.result.solutionCount);
}

// --- patchOwned: in-place exclusivity ----------------------------------------

TEST(PlanPatch, PatchOwnedSplicesInPlaceOnlyWhenExclusive) {
  util::Rng rng(31);
  Graph query = randomConnected(4, 3, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(14, 30, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);
  NetworkModel model{graph::Graph(host)};
  const Graph base = model.host();
  const Problem baseProblem(query, base, capConstraints());

  model.setNodeAttr(minDegreeNode(base), "cap", 9.0);
  const ModelDelta delta = model.lastDelta();
  const Graph mutated = model.host();
  const Problem mutatedProblem(query, mutated, capConstraints());
  const auto fresh = FilterPlan::build(mutatedProblem, options);

  {
    // A second holder forces the copy path: the shared base must come
    // through untouched, and the in-place counter must not move.
    auto plan = FilterPlan::build(baseProblem, options);
    const auto held = plan;
    const auto inPlaceBefore = core::filterPlanInPlacePatches();
    const auto patchesBefore = core::filterPlanPatches();
    const auto patched =
        FilterPlan::patchOwned(std::move(plan), mutatedProblem, options, delta);
    EXPECT_NE(patched.get(), held.get());
    EXPECT_EQ(core::filterPlanPatches(), patchesBefore + 1);
    EXPECT_EQ(core::filterPlanInPlacePatches(), inPlaceBefore);
    expectPlansIdentical(*patched, *fresh, query, mutated);
    const auto pristine = FilterPlan::build(baseProblem, options);
    expectPlansIdentical(*held, *pristine, query, base);
  }
  {
    // Sole owner: the same shared_ptr comes back, spliced in place.
    auto plan = FilterPlan::build(baseProblem, options);
    const FilterPlan* raw = plan.get();
    const auto inPlaceBefore = core::filterPlanInPlacePatches();
    const auto patched =
        FilterPlan::patchOwned(std::move(plan), mutatedProblem, options, delta);
    EXPECT_EQ(patched.get(), raw);
    EXPECT_EQ(core::filterPlanInPlacePatches(), inPlaceBefore + 1);
    expectPlansIdentical(*patched, *fresh, query, mutated);
  }
}

TEST(FilterPlanCache, RekeyedExclusivePlansPatchInPlace) {
  // A cached ready plan nobody is searching with is exclusively owned once
  // applyDelta hands it to the patch source — resolving the re-keyed builder
  // must take the in-place path.
  util::Rng rng(37);
  Graph query = randomConnected(4, 3, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(14, 30, false, rng);
  attributeHost(host, rng);
  const SearchOptions options = storeAll(core::BitsetMode::Auto);
  NetworkModel model{graph::Graph(host)};

  FilterPlanCache cache(4);
  const std::string signature = "q-sig";
  {
    const Graph snap = model.host();
    auto builder = cache.acquire(model.version(), signature);
    (void)builder->get(Problem(query, snap, capConstraints()), options);
  }  // no outside reference to the cached plan survives this scope

  model.setNodeAttr(minDegreeNode(host), "cap", 8.0);
  cache.applyDelta(model.version(), model.lastDelta());

  const Graph mutated = model.host();
  const Problem mutatedProblem(query, mutated, capConstraints());
  const auto inPlaceBefore = core::filterPlanInPlacePatches();
  auto builder = cache.acquire(model.version(), signature);
  const auto acquired = builder->get(mutatedProblem, options);
  EXPECT_EQ(core::filterPlanInPlacePatches(), inPlaceBefore + 1);
  const auto fresh = FilterPlan::build(mutatedProblem, options);
  expectPlansIdentical(*acquired.plan, *fresh, query, mutated);
}

// --- parallel patch fan-out ---------------------------------------------------

TEST(PlanPatch, ParallelPatchMatchesAFreshBuild) {
  // A delta wide enough to cross the parallel-fan-out threshold (affected
  // host edges x query edges >= 2048) with parallelFilterBuild on: the three
  // parallel stages must produce exactly the serial (= fresh build) result.
  util::Rng rng(41);
  Graph query = randomConnected(6, 6, false, rng);
  attributeQuery(query);
  Graph host = randomConnected(48, 420, false, rng);
  attributeHost(host, rng);

  SearchOptions parallelOptions = storeAll(core::BitsetMode::Auto);
  parallelOptions.parallelFilterBuild = true;
  SearchOptions serialOptions = storeAll(core::BitsetMode::Auto);
  serialOptions.parallelFilterBuild = false;

  NetworkModel model{graph::Graph(host)};
  const Graph base = model.host();
  const auto planParallel =
      FilterPlan::build(Problem(query, base, capConstraints()), parallelOptions);
  const auto planSerial =
      FilterPlan::build(Problem(query, base, capConstraints()), serialOptions);

  // Touch a third of the host's nodes in one merged delta.
  ModelDelta delta;
  for (graph::NodeId n = 0; n < host.nodeCount(); n += 3) {
    model.setNodeAttr(n, "cap", 10.0);
    delta.merge(model.lastDelta());
  }
  const Graph mutated = model.host();
  const Problem mutatedProblem(query, mutated, capConstraints());

  const auto patchedParallel = FilterPlan::patch(*planParallel, mutatedProblem,
                                                 parallelOptions, delta);
  const auto patchedSerial =
      FilterPlan::patch(*planSerial, mutatedProblem, serialOptions, delta);
  const auto fresh = FilterPlan::build(mutatedProblem, serialOptions);
  expectPlansIdentical(*patchedParallel, *fresh, query, mutated);
  expectPlansIdentical(*patchedSerial, *fresh, query, mutated);

  // And the patched plan searches identically to the fresh one.
  const EmbedResult viaPatch = runWithPlan(Algorithm::ECF, mutatedProblem,
                                           serialOptions, patchedParallel);
  const EmbedResult viaFresh =
      runWithPlan(Algorithm::ECF, mutatedProblem, serialOptions, fresh);
  EXPECT_EQ(viaPatch.solutionCount, viaFresh.solutionCount);
  EXPECT_EQ(viaPatch.mappings, viaFresh.mappings);
}

}  // namespace
