#include <gtest/gtest.h>

#include "baseline/anneal.hpp"
#include "baseline/genetic.hpp"
#include "baseline/naive.hpp"
#include "core/ecf.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using graph::Graph;

const expr::ConstraintSet kNone;

SearchOptions storeAll() {
  SearchOptions o;
  o.storeLimit = 100000;
  return o;
}

TEST(Naive, CountsMatchEcf) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const auto naive = baseline::naiveSearch(Problem(query, host, kNone), storeAll());
  const auto ecf = core::ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(naive.outcome, Outcome::Complete);
  EXPECT_EQ(naive.solutionCount, ecf.solutionCount);
}

TEST(Naive, VisitsMoreTreeNodesThanEcf) {
  const Graph query = topo::ring(4);
  const Graph host = topo::ring(8);
  const auto naive = baseline::naiveSearch(Problem(query, host, kNone), storeAll());
  const auto ecf = core::ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(naive.solutionCount, ecf.solutionCount);
  // The whole point of stage-1 filtering: ECF explores far less.
  EXPECT_GT(naive.stats.treeNodesVisited, ecf.stats.treeNodesVisited);
}

TEST(Naive, ProvesInfeasibility) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(6);
  const auto r = baseline::naiveSearch(Problem(query, host, kNone), storeAll());
  EXPECT_TRUE(r.provenInfeasible());
}

TEST(Naive, RespectsTimeout) {
  const Graph query = topo::clique(6);
  const Graph host = topo::clique(30);
  SearchOptions o;
  o.timeout = std::chrono::milliseconds(20);
  o.checkStride = 64;
  const auto r = baseline::naiveSearch(Problem(query, host, kNone), o);
  EXPECT_NE(r.outcome, Outcome::Complete);
}

TEST(Anneal, SolvesEasyInstance) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(8);
  baseline::AnnealOptions o;
  o.seed = 3;
  const auto r = baseline::annealSearch(Problem(query, host, kNone), o);
  ASSERT_EQ(r.outcome, Outcome::Partial);
  ASSERT_EQ(r.mappings.size(), 1u);
  EXPECT_TRUE(core::verifyMapping(Problem(query, host, kNone), r.mappings[0]).ok);
}

TEST(Anneal, NeverClaimsCompleteness) {
  // Infeasible instance: annealing must come back Inconclusive, not Complete.
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(6);
  baseline::AnnealOptions o;
  o.iterations = 5000;
  o.restarts = 2;
  const auto r = baseline::annealSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Inconclusive);
  EXPECT_FALSE(r.provenInfeasible());
}

TEST(Anneal, EnergyOfPerfectMappingIsZero) {
  const Graph query = topo::line(3);
  const Graph host = topo::line(3);
  std::uint64_t evals = 0;
  EXPECT_EQ(baseline::assignmentEnergy(Problem(query, host, kNone), {0, 1, 2}, evals), 0u);
  // Reversed is also an embedding of a path.
  EXPECT_EQ(baseline::assignmentEnergy(Problem(query, host, kNone), {2, 1, 0}, evals), 0u);
  // A broken mapping has positive energy.
  EXPECT_GT(baseline::assignmentEnergy(Problem(query, host, kNone), {0, 2, 1}, evals), 0u);
}

TEST(Anneal, RespectsTimeout) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(12);
  baseline::AnnealOptions o;
  o.iterations = 100'000'000;  // would run forever
  o.restarts = 1;
  SearchOptions limits;
  limits.timeout = std::chrono::milliseconds(30);
  const auto r = baseline::annealSearch(Problem(query, host, kNone), o, limits);
  EXPECT_EQ(r.outcome, Outcome::Inconclusive);
}

TEST(Genetic, SolvesEasyInstance) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(8);
  baseline::GeneticOptions o;
  o.seed = 5;
  const auto r = baseline::geneticSearch(Problem(query, host, kNone), o);
  ASSERT_EQ(r.outcome, Outcome::Partial);
  EXPECT_TRUE(core::verifyMapping(Problem(query, host, kNone), r.mappings[0]).ok);
}

TEST(Genetic, InconclusiveOnInfeasible) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(6);
  baseline::GeneticOptions o;
  o.generations = 30;
  const auto r = baseline::geneticSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Inconclusive);
}

TEST(Genetic, ConstraintAwareFitness) {
  Graph host = topo::clique(6);
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set("delay", e % 3 == 0 ? 5.0 : 50.0);
  }
  Graph query = topo::line(2);
  topo::setAllEdges(query, "maxDelay", 10.0);
  const auto constraints = expr::ConstraintSet::edgeOnly("rEdge.delay <= vEdge.maxDelay");
  const Problem problem(query, host, constraints);
  baseline::GeneticOptions o;
  o.seed = 11;
  const auto r = baseline::geneticSearch(problem, o);
  ASSERT_TRUE(r.feasible());
  EXPECT_TRUE(core::verifyMapping(problem, r.mappings[0]).ok);
}

TEST(Genetic, DeterministicPerSeed) {
  const Graph query = topo::line(4);
  const Graph host = topo::clique(10);
  baseline::GeneticOptions o;
  o.seed = 21;
  const auto a = baseline::geneticSearch(Problem(query, host, kNone), o);
  const auto b = baseline::geneticSearch(Problem(query, host, kNone), o);
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_EQ(a.mappings, b.mappings);
}

}  // namespace
