#include "service/pathmap.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed;
using graph::Graph;
using service::PathMapOptions;

/// Host line 0-1-2-3-4, 10 ms per hop.
Graph lineHost() {
  Graph g = topo::line(5);
  topo::setAllEdges(g, "avgDelay", 10.0);
  return g;
}

TEST(PathMap, DirectEdgeWhenBudgetTight) {
  const Graph host = lineHost();
  Graph query = topo::line(2);
  topo::setAllEdges(query, "pathDelayBudget", 10.0);
  const auto result = service::embedWithPaths(query, host);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.edgePaths.size(), 1u);
  EXPECT_EQ(result.edgePaths[0].size(), 2u);  // single hop
  EXPECT_LE(result.pathDelays[0], 10.0);
}

TEST(PathMap, MultiHopPathWhenBudgetAllows) {
  const Graph host = lineHost();
  // Query: triangle — impossible with direct edges in a line host, but fine
  // with paths if budgets are generous.
  Graph query = topo::ring(3);
  topo::setAllEdges(query, "pathDelayBudget", 40.0);
  const auto result = service::embedWithPaths(query, host);
  ASSERT_TRUE(result.feasible);
  for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
    ASSERT_GE(result.edgePaths[e].size(), 2u);
    EXPECT_LE(result.pathDelays[e], 40.0);
    // Path endpoints must be the images of the query edge endpoints.
    EXPECT_EQ(result.edgePaths[e].front(), result.nodes[query.edgeSource(e)]);
    EXPECT_EQ(result.edgePaths[e].back(), result.nodes[query.edgeTarget(e)]);
    // Consecutive path nodes must be host-adjacent.
    for (std::size_t i = 0; i + 1 < result.edgePaths[e].size(); ++i) {
      EXPECT_TRUE(host.hasEdge(result.edgePaths[e][i], result.edgePaths[e][i + 1]));
    }
  }
}

TEST(PathMap, InfeasibleWhenBudgetTooSmall) {
  const Graph host = lineHost();
  Graph query = topo::ring(3);
  topo::setAllEdges(query, "pathDelayBudget", 15.0);  // triangle needs >= 2+1+1 hops
  const auto result = service::embedWithPaths(query, host);
  EXPECT_FALSE(result.feasible);
}

TEST(PathMap, MissingBudgetMeansUnlimited) {
  const Graph host = lineHost();
  const Graph query = topo::ring(3);  // no budget attr at all
  const auto result = service::embedWithPaths(query, host);
  EXPECT_TRUE(result.feasible);
}

TEST(PathMap, HopLimitRejectsLongPaths) {
  const Graph host = lineHost();
  Graph query = topo::line(2);
  topo::setAllEdges(query, "pathDelayBudget", 1000.0);
  PathMapOptions options;
  options.maxPathHops = 1;  // direct edges only
  const auto direct = service::embedWithPaths(query, host, options);
  ASSERT_TRUE(direct.feasible);
  EXPECT_EQ(direct.edgePaths[0].size(), 2u);

  Graph triangle = topo::ring(3);
  topo::setAllEdges(triangle, "pathDelayBudget", 1000.0);
  const auto limited = service::embedWithPaths(triangle, host, options);
  EXPECT_FALSE(limited.feasible);  // a line has no triangle of direct edges
}

TEST(PathMap, NodeConstraintRespected) {
  Graph host = lineHost();
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("cpu", n >= 3 ? 4000 : 1000);
  }
  Graph query = topo::line(2);
  topo::setAllEdges(query, "pathDelayBudget", 100.0);
  topo::setAllNodes(query, "minCpu", 2000);
  PathMapOptions options;
  options.nodeConstraint = "rNode.cpu >= vNode.minCpu";
  const auto result = service::embedWithPaths(query, host, options);
  ASSERT_TRUE(result.feasible);
  for (const graph::NodeId r : result.nodes) EXPECT_GE(r, 3u);
}

TEST(PathMap, RejectsDirectedGraphs) {
  Graph directed(true);
  directed.addNode();
  directed.addNode();
  directed.addEdge(0, 1);
  const Graph host = lineHost();
  EXPECT_THROW((void)service::embedWithPaths(directed, host), std::invalid_argument);
}

TEST(PathMap, StatsPopulated) {
  const Graph host = lineHost();
  Graph query = topo::line(3);
  topo::setAllEdges(query, "pathDelayBudget", 50.0);
  const auto result = service::embedWithPaths(query, host);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.stats.treeNodesVisited, 0u);
  EXPECT_GE(result.stats.firstMatchMs, 0.0);
}

}  // namespace
