#include "expr/constraint.hpp"

#include <gtest/gtest.h>

namespace {

using namespace netembed::expr;
using netembed::graph::Graph;

TEST(Constraint, ParseKeepsSource) {
  const auto c = Constraint::parse("vEdge.d > 1");
  EXPECT_EQ(c.source(), "vEdge.d > 1");
  EXPECT_TRUE(c.usesEdgeObjects());
  EXPECT_FALSE(c.usesNodeObjects());
}

TEST(Constraint, NodeObjectDetection) {
  const auto c = Constraint::parse("vNode.cpu <= rNode.cpu");
  EXPECT_FALSE(c.usesEdgeObjects());
  EXPECT_TRUE(c.usesNodeObjects());
}

TEST(Constraint, EvalEdgePairBindsOrientation) {
  Graph q;
  q.addNode();
  q.addNode();
  const auto qe = q.addEdge(0, 1);
  q.nodeAttrs(0).set("tag", "qsrc");
  q.nodeAttrs(1).set("tag", "qdst");
  q.edgeAttrs(qe).set("d", 5.0);

  Graph h;
  h.addNode();
  h.addNode();
  const auto he = h.addEdge(0, 1);
  h.nodeAttrs(0).set("tag", "ra");
  h.nodeAttrs(1).set("tag", "rb");
  h.edgeAttrs(he).set("d", 5.0);

  const auto match = Constraint::parse("vEdge.d == rEdge.d");
  EXPECT_TRUE(match.evalEdgePair(q, qe, 0, 1, h, he, 0, 1));

  // Orientation-sensitive expression: rSource must be the host node playing
  // the same end as vSource.
  const auto oriented = Constraint::parse("rSource.tag == \"ra\"");
  EXPECT_TRUE(oriented.evalEdgePair(q, qe, 0, 1, h, he, 0, 1));
  EXPECT_FALSE(oriented.evalEdgePair(q, qe, 0, 1, h, he, 1, 0));  // reversed use
}

TEST(Constraint, EvalNodePair) {
  Graph q;
  q.addNode();
  q.nodeAttrs(0).set("cpu", 1000);
  Graph h;
  h.addNode();
  h.nodeAttrs(0).set("cpu", 2000);
  const auto c = Constraint::parse("vNode.cpu <= rNode.cpu");
  EXPECT_TRUE(c.evalNodePair(q, 0, h, 0));
  const auto tooBig = Constraint::parse("vNode.cpu >= rNode.cpu");
  EXPECT_FALSE(tooBig.evalNodePair(q, 0, h, 0));
}

TEST(Constraint, InterpreterModeMatchesVm) {
  Graph q;
  q.addNode();
  q.addNode();
  const auto qe = q.addEdge(0, 1);
  q.edgeAttrs(qe).set("d", 10.0);
  Graph h;
  h.addNode();
  h.addNode();
  const auto he = h.addEdge(0, 1);
  h.edgeAttrs(he).set("d", 10.5);

  auto c = Constraint::parse("abs(vEdge.d - rEdge.d) < 1.0");
  const bool vm = c.evalEdgePair(q, qe, 0, 1, h, he, 0, 1);
  c.setUseInterpreter(true);
  EXPECT_TRUE(c.usingInterpreter());
  EXPECT_EQ(c.evalEdgePair(q, qe, 0, 1, h, he, 0, 1), vm);
}

TEST(ConstraintSet, EdgeOnly) {
  const auto set = ConstraintSet::edgeOnly("vEdge.d > 1");
  EXPECT_TRUE(set.edge.has_value());
  EXPECT_FALSE(set.node.has_value());
}

TEST(ConstraintSet, EmptySourcesMeanUnconstrained) {
  const auto set = ConstraintSet::parse("", "");
  EXPECT_FALSE(set.edge.has_value());
  EXPECT_FALSE(set.node.has_value());
  const auto none = ConstraintSet::none();
  EXPECT_FALSE(none.edge.has_value());
}

TEST(ConstraintSet, RejectsNodeObjectsInEdgeConstraint) {
  EXPECT_THROW((void)ConstraintSet::parse("vNode.x > 1", ""), std::invalid_argument);
}

TEST(ConstraintSet, RejectsEdgeObjectsInNodeConstraint) {
  EXPECT_THROW((void)ConstraintSet::parse("", "vEdge.d > 1"), std::invalid_argument);
}

TEST(ConstraintSet, AcceptsBothLevels) {
  const auto set =
      ConstraintSet::parse("rEdge.delay <= vEdge.maxDelay", "vNode.cpu <= rNode.cpu");
  EXPECT_TRUE(set.edge.has_value());
  EXPECT_TRUE(set.node.has_value());
}

TEST(ConstraintSet, SyntaxErrorsPropagate) {
  EXPECT_THROW((void)ConstraintSet::edgeOnly("vEdge..d"), SyntaxError);
  EXPECT_THROW((void)ConstraintSet::edgeOnly("1 +"), SyntaxError);
}

TEST(Constraint, DisassembleShowsProgram) {
  const auto c = Constraint::parse("vEdge.d > 1 && rEdge.d < 2");
  const std::string listing = c.program().disassemble();
  EXPECT_NE(listing.find("PUSH_ATTR"), std::string::npos);
  EXPECT_NE(listing.find("GT"), std::string::npos);
  EXPECT_NE(listing.find("JF"), std::string::npos);
}

}  // namespace
