// The dynamic-workload simulator: seeded trace generators round-trip through
// CSV and replay deterministically; the scorecard's accounting identity is
// enforced (a violation throws, never reports); live reservations deplete
// and departures verifiably re-open capacity; chaos composition stays
// byte-deterministic; and the wall-clock mode resolves every ticket.

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;

// ---------------------------------------------------------------------------
// Trace generation + CSV
// ---------------------------------------------------------------------------

TEST(SimTrace, GeneratorDeterministicSortedAndPaired) {
  sim::TraceGenOptions g;
  g.seed = 404;
  g.arrivals = 32;
  g.mutationsPerArrival = 0.5;

  const sim::Trace a = sim::poissonTrace(g);
  const sim::Trace b = sim::poissonTrace(g);
  EXPECT_EQ(a, b) << "same seed must generate the identical trace";

  g.seed = 405;
  EXPECT_FALSE(a == sim::poissonTrace(g));

  EXPECT_EQ(a.arrivalCount(), 32u);
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LE(a.events[i - 1].timeUs, a.events[i].timeUs);
  }
  // Every arrival has exactly one departure, holdUs later.
  std::size_t departures = 0;
  for (const sim::TraceEvent& e : a.events) {
    if (e.kind != sim::TraceEventKind::Arrival) {
      departures += e.kind == sim::TraceEventKind::Departure;
      continue;
    }
    ASSERT_GT(e.holdUs, 0u);
    bool found = false;
    for (const sim::TraceEvent& d : a.events) {
      if (d.kind == sim::TraceEventKind::Departure && d.id == e.id) {
        EXPECT_EQ(d.timeUs, e.timeUs + e.holdUs);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "arrival " << e.id << " has no departure";
  }
  EXPECT_EQ(departures, a.arrivalCount());
}

TEST(SimTrace, BurstAndDiurnalShapesDiffer) {
  sim::TraceGenOptions g;
  g.seed = 7;
  g.arrivals = 24;
  const sim::Trace p = sim::poissonTrace(g);
  const sim::Trace burst = sim::burstTrace(g);
  const sim::Trace diurnal = sim::diurnalTrace(g);
  EXPECT_FALSE(p == burst);
  EXPECT_FALSE(p == diurnal);
  EXPECT_EQ(burst.arrivalCount(), 24u);
  EXPECT_EQ(diurnal.arrivalCount(), 24u);
}

TEST(SimTrace, CsvRoundTripIsExact) {
  sim::TraceGenOptions g;
  g.seed = 99;
  g.arrivals = 20;
  g.mutationsPerArrival = 0.7;  // exercise the mutation rows too
  const sim::Trace trace = sim::diurnalTrace(g);

  std::ostringstream out;
  trace.writeCsv(out);
  std::istringstream in(out.str());
  const sim::Trace parsed = sim::Trace::readCsv(in);
  EXPECT_EQ(trace, parsed)
      << "CSV round trip must be exact (doubles written with %.17g)";
}

TEST(SimTrace, CsvRejectsMalformedInput) {
  {
    std::istringstream in("not,a,trace,header\n");
    EXPECT_THROW((void)sim::Trace::readCsv(in), std::runtime_error);
  }
  {
    // Valid header, truncated row.
    sim::Trace t;
    std::ostringstream out;
    t.writeCsv(out);
    std::istringstream in(out.str() + "100,arrival,0\n");
    EXPECT_THROW((void)sim::Trace::readCsv(in), std::runtime_error);
  }
  {
    sim::Trace t;
    std::ostringstream out;
    t.writeCsv(out);
    std::istringstream in(out.str() +
                          "100,teleport,0,3,3,1,normal,0,0,0,50,1,1,0\n");
    EXPECT_THROW((void)sim::Trace::readCsv(in), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Scorecard accounting
// ---------------------------------------------------------------------------

TEST(SimMetrics, AccountingIdentityEnforced) {
  sim::Metrics::Options o;
  o.horizonUs = 1000;
  sim::Metrics m(o);
  m.onArrival(0, service::Priority::Normal);
  m.onArrival(10, service::Priority::Normal);
  m.onTerminalStatus(service::RequestStatus::Done);
  // One arrival never settled: the identity must throw, not report.
  EXPECT_THROW((void)m.finalize("s", "c", 1), std::logic_error);
  m.onTerminalStatus(service::RequestStatus::Rejected);
  EXPECT_NO_THROW((void)m.finalize("s", "c", 1));
}

TEST(SimMetrics, NonTerminalStatusIsAHarnessBug) {
  sim::Metrics m(sim::Metrics::Options{});
  EXPECT_THROW(m.onTerminalStatus(service::RequestStatus::Queued),
               std::logic_error);
  EXPECT_THROW(m.onTerminalStatus(service::RequestStatus::Running),
               std::logic_error);
  EXPECT_THROW(m.onTerminalStatus(service::RequestStatus::Retrying),
               std::logic_error);
}

TEST(SimMetrics, BucketedUtilizationIntegratesReservations) {
  sim::Metrics::Options o;
  o.horizonUs = 1000;
  o.buckets = 2;  // span 500us each
  o.cpuCapacity = 10.0;
  o.bwCapacity = 4.0;
  o.computeCostPerVisit = 1e-3;
  sim::Metrics m(o);

  m.onArrival(0, service::Priority::Normal);
  m.onTerminalStatus(service::RequestStatus::Done);
  m.onAccepted(0, service::Priority::Normal, 7.0, 7.0);
  m.onCompute(1000);
  m.setReserved(5.0, 2.0);
  m.advanceTo(600);  // crosses the bucket boundary at 500
  m.onDeparture(600);
  m.setReserved(0.0, 0.0);
  m.onWaitSample(service::Priority::Normal, 1.0);
  m.onWaitSample(service::Priority::Normal, 2.0);
  m.onWaitSample(service::Priority::Normal, 3.0);

  const sim::Scorecard s = m.finalize("unit", "unit", 1);
  ASSERT_EQ(s.buckets.size(), 2u);
  EXPECT_EQ(s.buckets[0].arrivals, 1u);
  EXPECT_EQ(s.buckets[0].accepted, 1u);
  EXPECT_EQ(s.buckets[1].departures, 1u);
  // [0,500): 5 cpu reserved of 10 => 50%; [500,600): 5 cpu over a 500us
  // bucket => 10%; the tail to the horizon integrates zero.
  EXPECT_DOUBLE_EQ(s.buckets[0].cpuUtilization, 0.5);
  EXPECT_DOUBLE_EQ(s.buckets[1].cpuUtilization, 0.1);
  EXPECT_DOUBLE_EQ(s.buckets[0].bwUtilization, 0.5);
  EXPECT_DOUBLE_EQ(s.buckets[1].bwUtilization, 0.1);
  EXPECT_DOUBLE_EQ(s.avgCpuUtilization, 0.3);
  EXPECT_DOUBLE_EQ(s.peakCpuUtilization, 0.5);
  EXPECT_DOUBLE_EQ(s.acceptanceRatio, 1.0);
  EXPECT_DOUBLE_EQ(s.revenue, 7.0);
  EXPECT_DOUBLE_EQ(s.cost, 8.0);  // 7 resource + 1000 visits * 1e-3
  EXPECT_DOUBLE_EQ(s.byClass[1].waitP50Ms, 2.0);
}

// ---------------------------------------------------------------------------
// Driver scenarios (virtual clock unless stated)
// ---------------------------------------------------------------------------

sim::Trace smallPoisson(std::uint64_t seed, std::size_t arrivals,
                        double mutationsPerArrival = 0.0) {
  sim::TraceGenOptions g;
  g.seed = seed;
  g.arrivals = arrivals;
  g.arrivalsPerSec = 150.0;
  g.meanHoldMs = 120.0;
  g.mutationsPerArrival = mutationsPerArrival;
  return sim::poissonTrace(g);
}

TEST(SimDriver, DeterministicScorecardPerSeed) {
  const graph::Graph host = sim::capacitatedHost(40, 3, 16.0, 24.0);
  const sim::Trace trace = smallPoisson(3, 24, 0.4);
  sim::DriverOptions opt;
  opt.service.workers = 2;

  sim::Driver a(host, opt);
  sim::Driver b(host, opt);
  const std::string ja = a.run(trace, "unit", "static", 3).toJson();
  const std::string jb = b.run(trace, "unit", "static", 3).toJson();
  EXPECT_EQ(ja, jb) << "virtual clock must be byte-deterministic per seed";

  const sim::Trace other = smallPoisson(4, 24, 0.4);
  sim::Driver c(host, opt);
  EXPECT_NE(ja, c.run(other, "unit", "static", 3).toJson());
}

TEST(SimDriver, DepartureReleasesCapacity) {
  // The bench's burst_overload shape, scaled down: a tight host, on/off
  // bursts, long holds. Reservations must pile up to saturation (capacity
  // rejects) and departures must verifiably re-open admission.
  const graph::Graph host = sim::capacitatedHost(40, 21, 5.0, 8.0);
  sim::TraceGenOptions g;
  g.seed = 22;
  g.arrivals = 48;
  g.arrivalsPerSec = 120.0;
  g.meanHoldMs = 400.0;
  g.burstFactor = 8.0;
  g.burstLenMs = 60.0;
  g.gapLenMs = 140.0;
  g.cpuDemandMin = 2.0;
  g.cpuDemandMax = 3.0;
  g.bwDemandMin = 2.0;
  g.bwDemandMax = 4.0;
  g.deadlineShare = 0.0;
  const sim::Trace trace = sim::burstTrace(g);

  sim::DriverOptions opt;
  opt.service.workers = 2;
  sim::Driver driver(host, opt);
  const sim::Scorecard card = driver.run(trace, "burst", "static", 22);

  EXPECT_GT(card.rejectedCapacity, 0u) << "the burst must saturate the host";
  EXPECT_GT(card.accepted, 0u);
  EXPECT_TRUE(card.reacceptedAfterSaturation)
      << "an arrival after a departure must be re-accepted";
  EXPECT_EQ(card.accepted + card.rejectedNoSolution + card.rejectedCapacity +
                card.expiredVirtual,
            card.terminals.submitted)
      << "every virtual-clock arrival settles into exactly one outcome";
}

TEST(SimDriver, MutationEventsFlowThroughTheLiveModel) {
  const graph::Graph host = sim::capacitatedHost(40, 5, 16.0, 24.0);
  sim::TraceGenOptions g;
  g.seed = 55;
  g.arrivals = 24;
  g.mutationsPerArrival = 0.6;
  const sim::Trace trace = sim::diurnalTrace(g);
  std::size_t mutationEvents = 0;
  for (const sim::TraceEvent& e : trace.events) {
    mutationEvents += e.kind == sim::TraceEventKind::Mutation;
  }
  ASSERT_GT(mutationEvents, 0u);

  sim::DriverOptions opt;
  opt.service.workers = 2;
  sim::Driver driver(host, opt);
  const sim::Scorecard card = driver.run(trace, "diurnal", "static", 55);
  EXPECT_EQ(card.churn.mutationsApplied, mutationEvents);
  EXPECT_GT(card.churn.planBuilds, 0u);
}

TEST(SimDriver, VirtualDeadlineExpiryAdjudicatedDriverSide) {
  // One slow virtual worker, every arrival deadline-bound: queued arrivals
  // whose virtual wait exceeds the deadline are counted Expired by the
  // driver without ever reaching the service.
  const graph::Graph host = sim::capacitatedHost(40, 9, 16.0, 24.0);
  sim::TraceGenOptions g;
  g.seed = 66;
  g.arrivals = 16;
  g.arrivalsPerSec = 400.0;
  g.deadlineShare = 1.0;
  g.deadlineMs = 1.0;
  const sim::Trace trace = sim::poissonTrace(g);

  sim::DriverOptions opt;
  opt.service.workers = 2;
  opt.virtualWorkers = 1;
  opt.virtualBaseServiceUs = 20'000.0;  // 20ms per job >> 1ms deadline
  sim::Driver driver(host, opt);
  const sim::Scorecard card = driver.run(trace, "expiry", "static", 66);

  EXPECT_GT(card.expiredVirtual, 0u);
  EXPECT_EQ(card.terminals.expired, card.expiredVirtual);
  EXPECT_EQ(card.accepted + card.rejectedNoSolution + card.rejectedCapacity +
                card.expiredVirtual,
            card.terminals.submitted);
}

TEST(SimDriver, ChaosCompositionDeterministicAndDisarmed) {
  const graph::Graph host = sim::capacitatedHost(40, 13, 16.0, 24.0);
  const sim::Trace trace = smallPoisson(13, 24);

  sim::DriverOptions opt;
  opt.service.workers = 2;
  opt.chaosEnabled = true;
  opt.chaosSeed = util::deriveSeed(13, 99);
  opt.chaosPlanBuildProb = 0.25;
  opt.chaosEngineStepProb = 0.0008;
  opt.chaosMaxFiresPerSite = 12;
  opt.retryAttempts = 3;

  sim::Driver a(host, opt);
  const sim::Scorecard cardA = a.run(trace, "chaos", "retry", 13);
  EXPECT_FALSE(util::FaultInjector::enabled())
      << "the driver must disarm the process-wide injector";
  EXPECT_GT(cardA.churn.faultsInjected, 0u);

  sim::Driver b(host, opt);
  EXPECT_EQ(cardA.toJson(), b.run(trace, "chaos", "retry", 13).toJson())
      << "the same chaos seed must replay the same fault schedule";
}

TEST(SimDriver, WallClockModeResolvesAllTickets) {
  const graph::Graph host = sim::capacitatedHost(40, 17, 16.0, 24.0);
  const sim::Trace trace = smallPoisson(17, 16);

  sim::DriverOptions opt;
  opt.clock = sim::ClockMode::Wall;
  opt.wallSpeedup = 200.0;
  opt.service.workers = 2;
  sim::Driver driver(host, opt);
  // finalize() enforces the accounting identity, so a clean return proves
  // every ticket resolved to a terminal status.
  const sim::Scorecard card = driver.run(trace, "wall", "static", 17);
  EXPECT_EQ(card.terminals.submitted, trace.arrivalCount());
  EXPECT_GT(card.accepted, 0u);
}

}  // namespace
