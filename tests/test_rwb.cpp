#include "core/rwb.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/verify.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::EmbedResult;
using core::Outcome;
using core::Problem;
using core::rwbSearch;
using core::SearchOptions;
using graph::Graph;

const expr::ConstraintSet kNone;

TEST(Rwb, StopsAtFirstSolutionByDefault) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(6);
  const EmbedResult r = rwbSearch(Problem(query, host, kNone));
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.solutionCount, 1u);
  ASSERT_EQ(r.mappings.size(), 1u);
  EXPECT_TRUE(core::verifyMapping(Problem(query, host, kNone), r.mappings[0]).ok);
}

TEST(Rwb, ProvesInfeasibilityByBacktracking) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(8);
  const EmbedResult r = rwbSearch(Problem(query, host, kNone));
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_TRUE(r.provenInfeasible());
}

TEST(Rwb, SeedsProduceDifferentWalks) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(12);
  std::set<core::Mapping> found;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SearchOptions o;
    o.seed = seed;
    const EmbedResult r = rwbSearch(Problem(query, host, kNone), o);
    ASSERT_EQ(r.mappings.size(), 1u);
    found.insert(r.mappings[0]);
  }
  // With 1320 possible mappings, 8 random walks almost surely differ.
  EXPECT_GT(found.size(), 1u);
}

TEST(Rwb, SameSeedIsDeterministic) {
  const Graph query = topo::line(4);
  const Graph host = topo::clique(10);
  SearchOptions o;
  o.seed = 99;
  const EmbedResult a = rwbSearch(Problem(query, host, kNone), o);
  const EmbedResult b = rwbSearch(Problem(query, host, kNone), o);
  ASSERT_EQ(a.mappings.size(), 1u);
  EXPECT_EQ(a.mappings, b.mappings);
}

TEST(Rwb, ExplicitMaxSolutionsHonored) {
  const Graph query = topo::line(3);
  const Graph host = topo::clique(6);
  SearchOptions o;
  o.maxSolutions = 7;
  o.storeLimit = 100;
  const EmbedResult r = rwbSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.solutionCount, 7u);
  EXPECT_EQ(r.mappings.size(), 7u);
}

TEST(Rwb, SolutionsSatisfyConstraints) {
  Graph host(false);
  for (int i = 0; i < 5; ++i) host.addNode();
  int w = 0;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      host.edgeAttrs(host.addEdge(i, j)).set("w", (w++ % 2) ? 1.0 : 2.0);
    }
  }
  Graph query(false);
  query.addNode();
  query.addNode();
  query.addNode();
  query.edgeAttrs(query.addEdge(0, 1)).set("w", 1.0);
  query.edgeAttrs(query.addEdge(1, 2)).set("w", 1.0);
  const auto constraints = expr::ConstraintSet::edgeOnly("rEdge.w == vEdge.w");
  const Problem problem(query, host, constraints);
  const EmbedResult r = rwbSearch(problem);
  ASSERT_TRUE(r.feasible());
  EXPECT_TRUE(core::verifyMapping(problem, r.mappings[0]).ok);
}

TEST(Rwb, TimeoutYieldsInconclusiveOnHardInfeasible) {
  // A large near-miss instance: K7 into a dense-but-not-complete host.
  Graph host = topo::clique(16);
  const Graph query = topo::clique(12);
  // Remove nothing: actually feasible, but give it zero time budget.
  SearchOptions o;
  o.timeout = std::chrono::milliseconds(1);
  o.checkStride = 1;
  const EmbedResult r = rwbSearch(Problem(query, host, kNone), o);
  // With a 1 ms budget either it found one fast (Partial) or none
  // (Inconclusive); both are legal, Complete is not expected for this size.
  EXPECT_NE(r.outcome == Outcome::Partial, r.outcome == Outcome::Inconclusive);
}

}  // namespace
