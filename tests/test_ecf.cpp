#include "core/ecf.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/verify.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::ecfSearch;
using core::EmbedResult;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using graph::Graph;

const expr::ConstraintSet kNone;

SearchOptions storeAll() {
  SearchOptions o;
  o.storeLimit = 100000;
  return o;
}

TEST(Ecf, TriangleInK4Has24Mappings) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(4);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.solutionCount, 24u);  // P(4,3)
  EXPECT_EQ(r.mappings.size(), 24u);
}

TEST(Ecf, AllMappingsAreDistinctAndValid) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(4);
  const Problem problem(query, host, kNone);
  const EmbedResult r = ecfSearch(problem, storeAll());
  std::set<core::Mapping> unique(r.mappings.begin(), r.mappings.end());
  EXPECT_EQ(unique.size(), r.mappings.size());
  for (const core::Mapping& m : r.mappings) {
    EXPECT_TRUE(core::verifyMapping(problem, m).ok);
  }
}

TEST(Ecf, PathInTriangleHas6Mappings) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(3);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 6u);
}

TEST(Ecf, RingAutomorphismsOfC5) {
  const Graph query = topo::ring(5);
  const Graph host = topo::ring(5);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 10u);  // dihedral group D5
}

TEST(Ecf, StarIntoStarFixesHub) {
  const Graph query = topo::star(3);
  const Graph host = topo::star(3);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 6u);  // hub->hub, leaves permute
  for (const core::Mapping& m : r.mappings) EXPECT_EQ(m[0], 0u);
}

TEST(Ecf, P3InC4Has8Mappings) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 8u);
}

TEST(Ecf, InfeasibleIsProvenComplete) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(6);  // no K4 in a cycle
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.solutionCount, 0u);
  EXPECT_TRUE(r.provenInfeasible());
  EXPECT_FALSE(r.feasible());
  EXPECT_LT(r.stats.firstMatchMs, 0.0);
}

TEST(Ecf, DirectedEdgeOrientationMatters) {
  Graph query(true);
  query.addNode();
  query.addNode();
  query.addEdge(0, 1);
  Graph host(true);
  for (int i = 0; i < 3; ++i) host.addNode();
  host.addEdge(0, 1);
  host.addEdge(1, 2);
  host.addEdge(2, 0);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 3u);  // each directed host edge once
}

TEST(Ecf, DirectedReciprocalPairInfeasibleWithoutOne) {
  Graph query(true);
  query.addNode();
  query.addNode();
  query.addEdge(0, 1);
  query.addEdge(1, 0);
  Graph host(true);
  for (int i = 0; i < 3; ++i) host.addNode();
  host.addEdge(0, 1);
  host.addEdge(1, 2);
  host.addEdge(2, 0);  // a 3-cycle has no 2-cycle
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_TRUE(r.provenInfeasible());
}

TEST(Ecf, ConstraintsFilterSolutions) {
  // Host triangle with one "fast" edge; query wants a single fast edge.
  Graph host(false);
  for (int i = 0; i < 3; ++i) host.addNode();
  host.edgeAttrs(host.addEdge(0, 1)).set("delay", 5.0);
  host.edgeAttrs(host.addEdge(1, 2)).set("delay", 50.0);
  host.edgeAttrs(host.addEdge(2, 0)).set("delay", 50.0);
  Graph query(false);
  query.addNode();
  query.addNode();
  query.edgeAttrs(query.addEdge(0, 1)).set("maxDelay", 10.0);
  const auto constraints = expr::ConstraintSet::edgeOnly("rEdge.delay <= vEdge.maxDelay");
  const EmbedResult r = ecfSearch(Problem(query, host, constraints), storeAll());
  EXPECT_EQ(r.solutionCount, 2u);  // the fast edge, both orientations
  for (const core::Mapping& m : r.mappings) {
    EXPECT_TRUE((m[0] == 0 && m[1] == 1) || (m[0] == 1 && m[1] == 0));
  }
}

TEST(Ecf, MaxSolutionsStopsEarlyAsPartial) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(10);
  SearchOptions o = storeAll();
  o.maxSolutions = 5;
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_EQ(r.solutionCount, 5u);
  EXPECT_EQ(r.mappings.size(), 5u);
}

TEST(Ecf, StoreLimitBoundsMappingsNotCount) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(5);
  SearchOptions o;
  o.storeLimit = 2;
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.solutionCount, 60u);  // P(5,3)
  EXPECT_EQ(r.mappings.size(), 2u);
}

TEST(Ecf, SinkCanStopSearch) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(8);
  int seen = 0;
  const EmbedResult r =
      ecfSearch(Problem(query, host, kNone), storeAll(), [&](const core::Mapping&) {
        ++seen;
        return seen < 3;  // stop after the third solution
      });
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(r.solutionCount, 3u);
  EXPECT_EQ(r.outcome, Outcome::Partial);
}

TEST(Ecf, TimeoutProducesPartialWhenSolutionsExist) {
  // Sized for the word-parallel candidate path: K5-in-K24 (~5.1M embeddings)
  // can now be exhausted inside the budget, so give the enumeration ~165M
  // embeddings to guarantee the deadline wins.
  const Graph query = topo::clique(6);
  const Graph host = topo::clique(26);
  SearchOptions o;
  o.storeLimit = 1;
  // Generous budget: a loaded single-core CI box may deschedule us past a
  // tight deadline before the first solution; the ~165M-embedding
  // enumeration still cannot finish, so the outcome stays Partial.
  o.timeout = std::chrono::milliseconds(250);
  o.checkStride = 256;
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_GT(r.solutionCount, 0u);
  EXPECT_GE(r.stats.firstMatchMs, 0.0);
}

TEST(Ecf, DisconnectedQueryIsHandled) {
  Graph query(false);
  for (int i = 0; i < 4; ++i) query.addNode();
  query.addEdge(0, 1);
  query.addEdge(2, 3);  // two disjoint edges
  const Graph host = topo::ring(4);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.outcome, Outcome::Complete);
  // C4 has 4 edges; choose 2 disjoint host edges (2 disjoint pairs) and
  // orient each: the two "opposite edge" pairs x 2 x 2 orientations x
  // 2 assignment orders = 16.
  EXPECT_EQ(r.solutionCount, 16u);
}

TEST(Ecf, StaticOrderingOffStillCorrect) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  SearchOptions o = storeAll();
  o.staticOrdering = false;
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.solutionCount, 8u);
}

TEST(Ecf, SingleNodeQuery) {
  Graph query(false);
  query.addNode();
  const Graph host = topo::ring(3);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 3u);
}

TEST(Ecf, QueryEqualsHostIdentity) {
  const Graph g = topo::line(4);
  const EmbedResult r = ecfSearch(Problem(g, g, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 2u);  // identity + reversal
}

TEST(Ecf, StatsArePopulated) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(5);
  const EmbedResult r = ecfSearch(Problem(query, host, kNone), storeAll());
  EXPECT_GT(r.stats.treeNodesVisited, 0u);
  EXPECT_GT(r.stats.filterEntries, 0u);
  EXPECT_GE(r.stats.searchMs, 0.0);
  EXPECT_GE(r.stats.firstMatchMs, 0.0);
  EXPECT_LE(r.stats.firstMatchMs, r.stats.searchMs + 1.0);
}

}  // namespace
