#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace {

using netembed::graph::Graph;
using netembed::graph::NodeId;

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.nodeCount(), 0u);
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_FALSE(g.directed());
}

TEST(Graph, AddNodesAssignsSequentialIdsAndDefaultNames) {
  Graph g;
  EXPECT_EQ(g.addNode(), 0u);
  EXPECT_EQ(g.addNode("custom"), 1u);
  EXPECT_EQ(g.addNode(), 2u);
  EXPECT_EQ(g.nodeName(0), "n0");
  EXPECT_EQ(g.nodeName(1), "custom");
  EXPECT_EQ(g.nodeName(2), "n2");
}

TEST(Graph, DuplicateNameRejected) {
  Graph g;
  g.addNode("x");
  EXPECT_THROW((void)g.addNode("x"), std::invalid_argument);
}

TEST(Graph, FindNodeByName) {
  Graph g;
  g.addNode("alpha");
  g.addNode("beta");
  EXPECT_EQ(g.findNode("beta"), std::optional<NodeId>(1));
  EXPECT_FALSE(g.findNode("gamma").has_value());
}

TEST(Graph, UndirectedEdgeSymmetry) {
  Graph g;
  g.addNode();
  g.addNode();
  const auto e = g.addEdge(0, 1);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_EQ(g.findEdge(1, 0), std::optional(e));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].node, 1u);
  EXPECT_EQ(g.neighbors(0)[0].edge, e);
}

TEST(Graph, DirectedEdgeOrientation) {
  Graph g(true);
  g.addNode();
  g.addNode();
  g.addEdge(0, 1);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
  EXPECT_EQ(g.outDegree(0), 1u);
  EXPECT_EQ(g.inDegree(0), 0u);
  EXPECT_EQ(g.outDegree(1), 0u);
  EXPECT_EQ(g.inDegree(1), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  ASSERT_EQ(g.inNeighbors(1).size(), 1u);
  EXPECT_EQ(g.inNeighbors(1)[0].node, 0u);
}

TEST(Graph, DirectedAllowsBothOrientations) {
  Graph g(true);
  g.addNode();
  g.addNode();
  g.addEdge(0, 1);
  g.addEdge(1, 0);  // distinct edge
  EXPECT_EQ(g.edgeCount(), 2u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g;
  g.addNode();
  EXPECT_THROW((void)g.addEdge(0, 0), std::invalid_argument);
}

TEST(Graph, DuplicateEdgeRejected) {
  Graph g;
  g.addNode();
  g.addNode();
  g.addEdge(0, 1);
  EXPECT_THROW((void)g.addEdge(0, 1), std::invalid_argument);
  EXPECT_THROW((void)g.addEdge(1, 0), std::invalid_argument);  // undirected
}

TEST(Graph, OutOfRangeEndpointsRejected) {
  Graph g;
  g.addNode();
  EXPECT_THROW((void)g.addEdge(0, 5), std::out_of_range);
}

TEST(Graph, EdgeEndpointsAndOther) {
  Graph g;
  g.addNode();
  g.addNode();
  g.addNode();
  const auto e = g.addEdge(1, 2);
  EXPECT_EQ(g.edgeSource(e), 1u);
  EXPECT_EQ(g.edgeTarget(e), 2u);
  EXPECT_EQ(g.edgeOther(e, 1), 2u);
  EXPECT_EQ(g.edgeOther(e, 2), 1u);
  EXPECT_THROW((void)g.edgeOther(e, 0), std::invalid_argument);
}

TEST(Graph, AttributesPersist) {
  Graph g;
  g.addNode();
  g.addNode();
  const auto e = g.addEdge(0, 1);
  g.nodeAttrs(0).set("os", "linux");
  g.edgeAttrs(e).set("delay", 12.5);
  g.attrs().set("title", "test");
  EXPECT_EQ(g.nodeAttrs(0).at("os").asString(), "linux");
  EXPECT_DOUBLE_EQ(g.edgeAttrs(e).at("delay").asDouble(), 12.5);
  EXPECT_EQ(g.attrs().at("title").asString(), "test");
}

TEST(Graph, DensityUndirected) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.addNode();
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  // 3 edges out of C(4,2)=6 pairs.
  EXPECT_DOUBLE_EQ(g.density(), 0.5);
}

TEST(Graph, DensityDirected) {
  Graph g(true);
  for (int i = 0; i < 3; ++i) g.addNode();
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  g.addEdge(1, 2);
  // 3 of 6 ordered pairs.
  EXPECT_DOUBLE_EQ(g.density(), 0.5);
}

TEST(Graph, DensityTinyGraphs) {
  Graph g;
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
  g.addNode();
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
}

TEST(Graph, CopySemantics) {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  g.addEdge(0, 1);
  g.nodeAttrs(0).set("k", 1);
  Graph copy = g;
  copy.nodeAttrs(0).set("k", 2);
  EXPECT_EQ(g.nodeAttrs(0).at("k").asInt(), 1);
  EXPECT_EQ(copy.nodeAttrs(0).at("k").asInt(), 2);
  EXPECT_TRUE(copy.hasEdge(0, 1));
}

// --- structural sharing ---------------------------------------------------------

TEST(GraphSharing, CopySharesTopologyUntilStructuralMutation) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.addNode();
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  EXPECT_FALSE(g.sharesTopology());

  Graph copy = g;
  EXPECT_TRUE(g.sharesTopology());
  EXPECT_TRUE(copy.sharesTopology());

  // A structural mutation on the copy detaches it; the original is unmoved.
  copy.addEdge(2, 3);
  EXPECT_FALSE(copy.sharesTopology());
  EXPECT_FALSE(g.sharesTopology());
  EXPECT_TRUE(copy.hasEdge(2, 3));
  EXPECT_FALSE(g.hasEdge(2, 3));
  EXPECT_EQ(g.edgeCount(), 2u);

  const NodeId added = copy.addNode("extra");
  EXPECT_EQ(copy.nodeCount(), 6u);
  EXPECT_EQ(g.nodeCount(), 5u);
  EXPECT_FALSE(g.findNode("extra").has_value());
  EXPECT_EQ(copy.findNode("extra"), added);
}

TEST(GraphSharing, AttributeWritesNeverLeakIntoACopy) {
  Graph g;
  for (int i = 0; i < 130; ++i) g.addNode();  // spans three attribute chunks
  for (int i = 0; i + 1 < 130; ++i) g.addEdge(i, i + 1);
  g.nodeAttrs(0).set("x", 1.0);
  g.nodeAttrs(128).set("x", 1.0);
  g.edgeAttrs(0).set("w", 1.0);

  const Graph snapshot = g;
  g.nodeAttrs(0).set("x", 2.0);     // chunk 0 cloned
  g.nodeAttrs(128).set("x", 3.0);   // chunk 2 cloned
  g.edgeAttrs(0).set("w", 4.0);
  EXPECT_EQ(snapshot.nodeAttrs(0).at("x").asDouble(), 1.0);
  EXPECT_EQ(snapshot.nodeAttrs(128).at("x").asDouble(), 1.0);
  EXPECT_EQ(snapshot.edgeAttrs(0).at("w").asDouble(), 1.0);
  EXPECT_EQ(g.nodeAttrs(0).at("x").asDouble(), 2.0);
  EXPECT_EQ(g.nodeAttrs(128).at("x").asDouble(), 3.0);
  // Untouched chunks are still physically shared (the snapshot-cost win).
  EXPECT_TRUE(snapshot.sharesTopology());
}

TEST(GraphSharing, DetachedCopySharesNothing) {
  Graph g;
  for (int i = 0; i < 70; ++i) g.addNode();
  g.addEdge(0, 1);
  g.nodeAttrs(5).set("x", 1.0);

  const Graph detached = g.detachedCopy();
  EXPECT_FALSE(g.sharesTopology());
  EXPECT_FALSE(detached.sharesTopology());
  g.nodeAttrs(5).set("x", 9.0);
  EXPECT_EQ(detached.nodeAttrs(5).at("x").asDouble(), 1.0);
  EXPECT_EQ(detached.nodeCount(), 70u);
  EXPECT_TRUE(detached.hasEdge(0, 1));
}

TEST(GraphSharing, MovedFromGraphIsAValidEmptyGraph) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.addNode();
  g.addEdge(0, 1);
  g.nodeAttrs(0).set("x", 1.0);

  Graph taken = std::move(g);
  EXPECT_EQ(taken.nodeCount(), 3u);
  EXPECT_TRUE(taken.hasEdge(0, 1));
  // The moved-from object must stay usable (it was before structural
  // sharing): empty reads, and mutations that never leak into the shared
  // empty topology block.
  EXPECT_EQ(g.nodeCount(), 0u);
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_FALSE(g.findNode("n0").has_value());
  const NodeId n = g.addNode("fresh");
  EXPECT_EQ(g.nodeCount(), 1u);
  EXPECT_EQ(g.findNode("fresh"), n);

  Graph h;
  h.addNode();
  h = std::move(taken);
  EXPECT_EQ(h.nodeCount(), 3u);
  EXPECT_EQ(taken.nodeCount(), 0u);
  EXPECT_EQ(taken.edgeCount(), 0u);
  // Two moved-from graphs share the empty block; neither's mutation may
  // reach the other.
  Graph taken2 = std::move(h);
  EXPECT_EQ(taken2.nodeCount(), 3u);
  taken.addNode("a");
  EXPECT_EQ(h.nodeCount(), 0u);
  EXPECT_FALSE(h.findNode("a").has_value());
}

TEST(GraphSharing, CowChunksClonesExactlyTheMutatedChunk) {
  netembed::util::CowChunks<int> a;
  for (int i = 0; i < 100; ++i) a.push_back(i);
  netembed::util::CowChunks<int> b = a;
  EXPECT_TRUE(a.sharesChunk(0));
  EXPECT_TRUE(a.sharesChunk(99));

  b.mutate(70) = -1;
  EXPECT_TRUE(a.sharesChunk(0));     // chunk 0 still shared
  EXPECT_FALSE(a.sharesChunk(70));   // chunk 1 diverged
  EXPECT_EQ(a[70], 70);
  EXPECT_EQ(b[70], -1);
  EXPECT_EQ(b[69], 69);  // neighbours in the cloned chunk kept their values

  // Appending to a copy whose tail chunk is shared clones that chunk first.
  netembed::util::CowChunks<int> c = a;
  c.push_back(100);
  EXPECT_EQ(c.size(), 101u);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a[99], 99);
  EXPECT_THROW((void)a.at(100), std::out_of_range);
}

TEST(Graph, LargeGraphEdgeLookupIsConsistent) {
  Graph g;
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) g.addNode();
  for (int i = 0; i + 1 < kN; ++i) g.addEdge(i, i + 1);
  for (int i = 0; i + 1 < kN; ++i) {
    EXPECT_TRUE(g.hasEdge(i, i + 1));
    EXPECT_TRUE(g.hasEdge(i + 1, i));
  }
  EXPECT_FALSE(g.hasEdge(0, kN - 1));
}

}  // namespace
