#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed::graph;

Graph attributedSquare() {
  // 0-1-2-3-0 ring plus diagonal 0-2, with per-element attrs.
  Graph g;
  for (int i = 0; i < 4; ++i) {
    const NodeId n = g.addNode();
    g.nodeAttrs(n).set("idx", i);
  }
  const auto mark = [&](EdgeId e, int w) { g.edgeAttrs(e).set("w", w); };
  mark(g.addEdge(0, 1), 1);
  mark(g.addEdge(1, 2), 2);
  mark(g.addEdge(2, 3), 3);
  mark(g.addEdge(3, 0), 4);
  mark(g.addEdge(0, 2), 5);
  return g;
}

TEST(InducedSubgraph, KeepsAllInternalEdges) {
  const Graph g = attributedSquare();
  const Subgraph sub = inducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.nodeCount(), 3u);
  EXPECT_EQ(sub.graph.edgeCount(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_TRUE(sub.graph.hasEdge(0, 1));
  EXPECT_TRUE(sub.graph.hasEdge(1, 2));
  EXPECT_TRUE(sub.graph.hasEdge(0, 2));
}

TEST(InducedSubgraph, CopiesAttributesAndProvenance) {
  const Graph g = attributedSquare();
  const Subgraph sub = inducedSubgraph(g, {2, 0});
  ASSERT_EQ(sub.originalNode.size(), 2u);
  EXPECT_EQ(sub.originalNode[0], 2u);
  EXPECT_EQ(sub.originalNode[1], 0u);
  EXPECT_EQ(sub.graph.nodeAttrs(0).at("idx").asInt(), 2);
  EXPECT_EQ(sub.graph.nodeAttrs(1).at("idx").asInt(), 0);
  ASSERT_EQ(sub.graph.edgeCount(), 1u);
  EXPECT_EQ(sub.graph.edgeAttrs(0).at("w").asInt(), 5);
  EXPECT_EQ(sub.originalEdge[0], 4u);  // the diagonal was edge id 4
}

TEST(InducedSubgraph, PreservesNames) {
  Graph g;
  g.addNode("alpha");
  g.addNode("beta");
  g.addEdge(0, 1);
  const Subgraph sub = inducedSubgraph(g, {1});
  EXPECT_EQ(sub.graph.nodeName(0), "beta");
}

TEST(InducedSubgraph, RejectsDuplicatesAndOutOfRange) {
  const Graph g = attributedSquare();
  EXPECT_THROW((void)inducedSubgraph(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)inducedSubgraph(g, {9}), std::out_of_range);
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g = attributedSquare();
  const Subgraph sub = inducedSubgraph(g, {});
  EXPECT_EQ(sub.graph.nodeCount(), 0u);
  EXPECT_EQ(sub.graph.edgeCount(), 0u);
}

TEST(EdgeSubgraph, KeepsOnlyRequestedEdges) {
  const Graph g = attributedSquare();
  const Subgraph sub = edgeSubgraph(g, {0, 1, 2}, {0, 1});  // edges 0-1, 1-2
  EXPECT_EQ(sub.graph.edgeCount(), 2u);
  EXPECT_TRUE(sub.graph.hasEdge(0, 1));
  EXPECT_TRUE(sub.graph.hasEdge(1, 2));
  EXPECT_FALSE(sub.graph.hasEdge(0, 2));
}

TEST(EdgeSubgraph, RejectsForeignEdges) {
  const Graph g = attributedSquare();
  // Edge 2 is (2,3); node 3 is not selected.
  EXPECT_THROW((void)edgeSubgraph(g, {0, 1, 2}, {2}), std::invalid_argument);
  EXPECT_THROW((void)edgeSubgraph(g, {0, 1}, {99}), std::out_of_range);
}

TEST(EdgeSubgraph, DirectedOrientationPreserved) {
  Graph g(true);
  g.addNode();
  g.addNode();
  g.addEdge(1, 0);
  const Subgraph sub = edgeSubgraph(g, {0, 1}, {0});
  EXPECT_TRUE(sub.graph.hasEdge(1, 0));
  EXPECT_FALSE(sub.graph.hasEdge(0, 1));
}

TEST(InducedSubgraph, WholeCliqueRoundTrip) {
  const Graph g = netembed::topo::clique(5);
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  const Subgraph sub = inducedSubgraph(g, all);
  EXPECT_EQ(sub.graph.nodeCount(), 5u);
  EXPECT_EQ(sub.graph.edgeCount(), 10u);
}

}  // namespace
