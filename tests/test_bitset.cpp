// util::Bitset / util::BitMatrix — the word-parallel candidate-domain
// primitives. The invariant under test throughout: bits past size() stay
// zero, so counts, emptiness and set-bit walks never see ghost bits.

#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace {

using netembed::util::BitMatrix;
using netembed::util::Bitset;

std::vector<std::size_t> setBits(const Bitset& b) {
  std::vector<std::size_t> out;
  b.forEachSet([&](std::size_t i) { out.push_back(i); });
  return out;
}

TEST(Bitset, SetTestResetRoundTrip) {
  Bitset b(130);  // straddles three words
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.wordCount(), 3u);
  EXPECT_FALSE(b.any());
  for (const std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    b.set(i);
    EXPECT_TRUE(b.test(i));
  }
  EXPECT_EQ(b.count(), 6u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 5u);
}

TEST(Bitset, SetAllMasksTheTailWord) {
  Bitset b(70);
  b.setAll();
  EXPECT_EQ(b.count(), 70u);  // no ghost bits in the last word
  EXPECT_EQ(setBits(b).size(), 70u);
  EXPECT_EQ(setBits(b).back(), 69u);
  b.clearAll();
  EXPECT_FALSE(b.any());
}

TEST(Bitset, ForEachSetVisitsAscending) {
  Bitset b(200);
  const std::vector<std::size_t> expected{3, 64, 65, 130, 199};
  for (const std::size_t i : expected) b.set(i);
  EXPECT_EQ(setBits(b), expected);
}

TEST(Bitset, AndWithReportsSurvivors) {
  Bitset a(100), mask(100);
  a.set(10);
  a.set(70);
  mask.set(70);
  mask.set(71);
  EXPECT_TRUE(a.andWith(mask));
  EXPECT_EQ(setBits(a), (std::vector<std::size_t>{70}));
  Bitset empty(100);
  EXPECT_FALSE(a.andWith(empty));  // intersection died: cheap early-exit signal
  EXPECT_FALSE(a.any());
}

TEST(Bitset, AndNotWithClearsMembers) {
  Bitset a(100), used(100);
  a.setAll();
  used.set(0);
  used.set(99);
  a.andNotWith(used);
  EXPECT_EQ(a.count(), 98u);
  EXPECT_FALSE(a.test(0));
  EXPECT_FALSE(a.test(99));
  EXPECT_TRUE(a.test(50));
}

TEST(Bitset, CopyFromRowSpan) {
  BitMatrix m(3, 100);
  m.set(1, 42);
  m.set(1, 90);
  Bitset b(100);
  b.set(7);  // stale content must be overwritten
  b.copyFrom(m.row(1));
  EXPECT_EQ(setBits(b), (std::vector<std::size_t>{42, 90}));
}

TEST(Bitset, MatchesReferenceUnderRandomOps) {
  // Randomized differential check against std::vector<bool> semantics.
  netembed::util::Rng rng(99);
  const std::size_t n = 193;
  Bitset a(n), mask(n);
  std::vector<bool> refA(n, false), refMask(n, false);
  for (int i = 0; i < 400; ++i) {
    const std::size_t pos = rng.index(n);
    if (rng.bernoulli(0.5)) {
      a.set(pos);
      refA[pos] = true;
    } else {
      mask.set(pos);
      refMask[pos] = true;
    }
  }
  a.andWith(mask);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.test(i), refA[i] && refMask[i]) << i;
  }
}

TEST(BitMatrix, RowsAreIndependentSpans) {
  BitMatrix m(4, 65);
  EXPECT_EQ(m.wordsPerRow(), 2u);
  m.set(2, 64);
  EXPECT_TRUE(m.test(2, 64));
  EXPECT_FALSE(m.test(1, 64));
  EXPECT_FALSE(m.test(3, 64));
  EXPECT_TRUE(netembed::util::testBit(m.row(2), 64));
  EXPECT_FALSE(netembed::util::testBit(m.row(2), 63));
}

TEST(BitMatrix, AssignResetsShape) {
  BitMatrix m;
  EXPECT_TRUE(m.empty());
  m.assign(2, 10);
  m.set(0, 5);
  m.assign(2, 10);  // reassign clears
  EXPECT_FALSE(m.test(0, 5));
}

TEST(BitMatrix, RowDataWritesMatchTestReads) {
  BitMatrix m(2, 130);
  std::uint64_t* row = m.rowData(1);
  row[129 / 64] |= std::uint64_t{1} << (129 % 64);
  EXPECT_TRUE(m.test(1, 129));
}

}  // namespace
