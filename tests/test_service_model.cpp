#include "service/model.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed;
using service::NetworkModel;
using graph::Graph;

Graph capacityHost() {
  Graph g = topo::clique(4);
  for (graph::NodeId n = 0; n < 4; ++n) g.nodeAttrs(n).set("cpu", 100.0);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) g.edgeAttrs(e).set("bw", 10.0);
  return g;
}

TEST(Model, VersionBumpsOnMutation) {
  NetworkModel model(topo::ring(4));
  const auto v0 = model.version();
  model.setNodeAttr(0, "load", 0.5);
  EXPECT_GT(model.version(), v0);
  model.setEdgeMetric(0, 1, "delay", 12.0);
  EXPECT_GT(model.version(), v0 + 1);
}

TEST(Model, AssignmentKeepsTheVersionStrictlyRising) {
  // Wholesale replacement is a mutation: version-keyed consumers (the plan
  // cache) must never see a version collide across different host graphs.
  NetworkModel model(topo::ring(4));
  model.setNodeAttr(0, "load", 0.5);
  const auto before = model.version();
  NetworkModel fresh(topo::ring(3));  // fresh.version() == 0 < before
  model = fresh;
  EXPECT_GT(model.version(), before);
  EXPECT_EQ(model.host().nodeCount(), 3u);
  const auto replaced = model.version();
  model = NetworkModel(topo::line(5));
  EXPECT_GT(model.version(), replaced);
  EXPECT_EQ(model.host().nodeCount(), 5u);
}

TEST(Model, SetEdgeMetricRejectsMissingEdge) {
  NetworkModel model(topo::ring(4));
  EXPECT_THROW(model.setEdgeMetric(0, 2, "delay", 1.0), std::invalid_argument);
}

TEST(Model, MeasurementsApplyByName) {
  NetworkModel model(topo::ring(3));
  const std::vector<NetworkModel::Measurement> batch{
      {"n0", "n1", "delay", graph::AttrValue(9.0)},
      {"n2", "", "load", graph::AttrValue(0.7)},
      {"ghost", "n1", "delay", graph::AttrValue(1.0)},   // unknown node
      {"n0", "n2", "delay", graph::AttrValue(1.0)},      // edge exists in ring(3)
      {"n0", "ghost", "delay", graph::AttrValue(1.0)}};  // unknown target
  const std::size_t applied = model.applyMeasurements(batch);
  EXPECT_EQ(applied, 3u);
  EXPECT_DOUBLE_EQ(model.host().edgeAttrs(*model.host().findEdge(0, 1)).at("delay").asDouble(),
                   9.0);
  EXPECT_DOUBLE_EQ(model.host().nodeAttrs(2).at("load").asDouble(), 0.7);
}

TEST(Model, ReserveSubtractsAndReleaseRestores) {
  NetworkModel model(capacityHost());
  Graph query = topo::line(2);
  query.nodeAttrs(0).set("cpu", 30.0);
  query.nodeAttrs(1).set("cpu", 40.0);
  query.edgeAttrs(0).set("bw", 4.0);

  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"cpu"};
  spec.edgeCapacityAttrs = {"bw"};

  const auto id = model.reserve(query, {0, 1}, spec);
  EXPECT_EQ(model.activeReservations(), 1u);
  EXPECT_DOUBLE_EQ(model.host().nodeAttrs(0).at("cpu").asDouble(), 70.0);
  EXPECT_DOUBLE_EQ(model.host().nodeAttrs(1).at("cpu").asDouble(), 60.0);
  const auto he = *model.host().findEdge(0, 1);
  EXPECT_DOUBLE_EQ(model.host().edgeAttrs(he).at("bw").asDouble(), 6.0);

  model.release(id);
  EXPECT_EQ(model.activeReservations(), 0u);
  EXPECT_DOUBLE_EQ(model.host().nodeAttrs(0).at("cpu").asDouble(), 100.0);
  EXPECT_DOUBLE_EQ(model.host().edgeAttrs(he).at("bw").asDouble(), 10.0);
}

TEST(Model, InsufficientCapacityRollsBack) {
  NetworkModel model(capacityHost());
  Graph query = topo::line(2);
  query.nodeAttrs(0).set("cpu", 30.0);
  query.nodeAttrs(1).set("cpu", 500.0);  // over capacity
  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"cpu"};
  EXPECT_THROW((void)model.reserve(query, {0, 1}, spec), std::runtime_error);
  // Nothing changed.
  EXPECT_DOUBLE_EQ(model.host().nodeAttrs(0).at("cpu").asDouble(), 100.0);
  EXPECT_EQ(model.activeReservations(), 0u);
}

TEST(Model, StackedReservationsDrainCapacity) {
  NetworkModel model(capacityHost());
  Graph query(false);
  query.addNode();
  query.nodeAttrs(0).set("cpu", 60.0);
  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"cpu"};
  (void)model.reserve(query, {0}, spec);
  // Second reservation of 60 on the same node must fail (only 40 left).
  EXPECT_THROW((void)model.reserve(query, {0}, spec), std::runtime_error);
  // A different node still works.
  (void)model.reserve(query, {1}, spec);
  EXPECT_EQ(model.activeReservations(), 2u);
}

TEST(Model, ReserveValidatesMapping) {
  NetworkModel model(capacityHost());
  Graph query = topo::line(2);
  NetworkModel::ReservationSpec spec;
  EXPECT_THROW((void)model.reserve(query, {0}, spec), std::invalid_argument);  // size
  EXPECT_THROW((void)model.reserve(query, {0, graph::kInvalidNode}, spec),
               std::invalid_argument);
}

TEST(Model, ReserveRequiresTopologyPreservation) {
  NetworkModel model(topo::ring(4));  // 0-1-2-3-0
  Graph query = topo::line(2);
  query.edgeAttrs(0).set("bw", 1.0);
  NetworkModel::ReservationSpec spec;
  spec.edgeCapacityAttrs = {"bw"};
  // 0 and 2 are not adjacent in the ring.
  EXPECT_THROW((void)model.reserve(query, {0, 2}, spec), std::invalid_argument);
}

TEST(Model, ReleaseUnknownIdThrows) {
  NetworkModel model(topo::ring(3));
  EXPECT_THROW(model.release(12345), std::invalid_argument);
}

TEST(Model, DemandlessElementsConsumeNothing) {
  NetworkModel model(capacityHost());
  Graph query = topo::line(2);  // no cpu demands set
  NetworkModel::ReservationSpec spec;
  spec.nodeCapacityAttrs = {"cpu"};
  (void)model.reserve(query, {0, 1}, spec);
  EXPECT_DOUBLE_EQ(model.host().nodeAttrs(0).at("cpu").asDouble(), 100.0);
}

}  // namespace
