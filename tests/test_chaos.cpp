// Chaos suite: seeded fault schedules across the thread pool, the plan
// builder, the engines and both service front ends. The invariants under
// test are the robustness contract of util/fault.hpp + QoS::retry:
//   * every ticket resolves under every injected fault (no hung futures),
//   * the accounting identity done+rejected+expired+preempted+failed
//     (+cancelled) == submitted extends to injected failures,
//   * retried requests that succeed produce the same solutions a fault-free
//     run produces, delivered exactly once,
//   * degradations (cache bypass, worker loss, inline fallback) keep serving
//     and are counted.
// Every suite name starts with "Chaos" — the CI chaos job and the TSan
// filter select on that prefix, and NETEMBED_CHAOS_SEED widens the seed set.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "service/async.hpp"
#include "service/ticket.hpp"
#include "topo/regular.hpp"
#include "topo/sample.hpp"
#include "trace/planetlab.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using service::AsyncNetEmbedService;
using service::AsyncServiceOptions;
using service::EmbedRequest;
using service::EmbedResponse;
using service::NetEmbedService;
using service::RequestStatus;
using service::SubmitTicket;
using service::TicketCallbacks;
using graph::Graph;
using util::FaultInjector;
using util::FaultSpec;
using util::InjectedFault;
namespace faultsite = util::faultsite;

constexpr auto kResolveBudget = std::chrono::seconds(60);

/// Every test runs with the injector scoped to its body: disable() on exit
/// clears all armed sites, so no schedule leaks into the next test.
struct FaultGuard {
  explicit FaultGuard(std::uint64_t seed) {
    FaultInjector::instance().enable(seed);
  }
  ~FaultGuard() { FaultInjector::instance().disable(); }
};

Graph chaosHost() {
  trace::PlanetLabOptions o;
  o.sites = 40;
  o.clusters = 5;
  o.deadSites = 0;
  o.pairLossRate = 0.3;
  o.seed = 11;
  Graph host = trace::synthesize(o);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("slots", 64.0);
  }
  return host;
}

EmbedRequest delayRequest(const Graph& host, std::uint64_t seed,
                          std::size_t maxSolutions = 1) {
  util::Rng rng(seed);
  auto sub = topo::sampleConnectedSubgraph(host, 5, 6, rng);
  topo::widenDelayWindows(sub.graph, 0.1);
  EmbedRequest request;
  request.query = std::move(sub.graph);
  request.edgeConstraint = topo::delayWindowConstraint();
  request.options.maxSolutions = maxSolutions;
  return request;
}

/// Topology-only enumeration with a deterministic serial engine.
EmbedRequest pathRequest(std::size_t maxSolutions, std::size_t storeLimit = 8) {
  EmbedRequest request;
  request.query = topo::line(3);
  request.algorithm = Algorithm::ECF;
  request.options.maxSolutions = maxSolutions;
  request.options.storeLimit = storeLimit;
  return request;
}

EmbedResponse resolve(std::future<EmbedResponse>& future) {
  if (future.wait_for(kResolveBudget) != std::future_status::ready) {
    ADD_FAILURE() << "future did not resolve within the budget";
    std::abort();  // a hung scheduler would otherwise stall the whole suite
  }
  return future.get();
}

EmbedResponse resolve(SubmitTicket& ticket) { return resolve(ticket.future()); }

/// Like resolve(), but for futures expected to carry an exception.
void awaitResolved(std::future<EmbedResponse>& future) {
  if (future.wait_for(kResolveBudget) != std::future_status::ready) {
    ADD_FAILURE() << "future did not resolve within the budget";
    std::abort();
  }
}

// --- the injector itself -----------------------------------------------------

TEST(ChaosFaultInjector, DeterministicSeededDecisions) {
  constexpr const char* kSite = "test.site";
  const auto run = [&](std::uint64_t seed) {
    FaultInjector& fi = FaultInjector::instance();
    fi.enable(seed);
    fi.arm(kSite, FaultSpec{.probability = 0.5});
    std::vector<bool> decisions;
    decisions.reserve(200);
    for (int i = 0; i < 200; ++i) decisions.push_back(fi.shouldFire(kSite));
    return decisions;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  FaultInjector::instance().disable();
  EXPECT_EQ(a, b) << "same seed must replay the same schedule";
  const std::size_t fires =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 50u);
  EXPECT_LT(fires, 150u);
}

TEST(ChaosFaultInjector, DisabledProbesNeverFireAndUnarmedSitesAreFree) {
  FaultInjector& fi = FaultInjector::instance();
  ASSERT_FALSE(FaultInjector::enabled());
  EXPECT_FALSE(fi.shouldFire("anything"));
  {
    FaultGuard guard(7);
    EXPECT_FALSE(fi.shouldFire("never.armed"));
    fi.arm("armed.site");  // defaults: fire every arrival
    EXPECT_TRUE(fi.shouldFire("armed.site"));
    EXPECT_EQ(fi.fires("armed.site"), 1u);
  }
  EXPECT_FALSE(FaultInjector::enabled());
}

TEST(ChaosFaultInjector, SkipFirstAndMaxFiresShapeTheSchedule) {
  FaultGuard guard(9);
  FaultInjector& fi = FaultInjector::instance();
  fi.arm("shaped", FaultSpec{.skipFirst = 3, .maxFires = 2});
  std::vector<bool> decisions;
  for (int i = 0; i < 8; ++i) decisions.push_back(fi.shouldFire("shaped"));
  const std::vector<bool> expected = {false, false, false, true,
                                      true,  false, false, false};
  EXPECT_EQ(decisions, expected);
  EXPECT_EQ(fi.arrivals("shaped"), 8u);
  EXPECT_EQ(fi.fires("shaped"), 2u);
}

// --- thread pool -------------------------------------------------------------

TEST(ChaosThreadPool, WorkerDeathDrainsQueueAndDegradesToInline) {
  // A PRIVATE pool: killing sharedPool() workers would degrade every later
  // test in this process.
  FaultGuard guard(3);
  FaultInjector::instance().arm(faultsite::kPoolWorkerDeath,
                                FaultSpec{.maxFires = 2});
  util::ThreadPool pool(2);
  ASSERT_EQ(pool.liveWorkerCount(), 2u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 16) << "no queued task may be stranded by worker loss";
  EXPECT_EQ(pool.workerDeaths(), 2u);
  EXPECT_EQ(pool.liveWorkerCount(), 0u);
  // Degraded mode: later submits run inline on the caller and still finish.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 17);
  EXPECT_GE(pool.serialFallbacks(), 1u);
  // parallelFor takes the serial path outright on a dead pool.
  std::atomic<int> visited{0};
  util::parallelFor(pool, 64, [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), 64);
}

TEST(ChaosThreadPool, SubmitFailureSurvivesParallelFor) {
  util::ThreadPool pool(2);
  {
    FaultGuard guard(5);
    FaultInjector::instance().arm(faultsite::kPoolSubmit,
                                  FaultSpec{.maxFires = 1});
    std::atomic<int> visited{0};
    EXPECT_THROW(util::parallelFor(
                     pool, 256,
                     [&](std::size_t) {
                       visited.fetch_add(1, std::memory_order_relaxed);
                     },
                     /*grain=*/8),
                 InjectedFault);
  }
  // The pool survives the refused submission: full runs work afterwards.
  std::atomic<int> visited{0};
  util::parallelFor(pool, 256, [&](std::size_t) {
    visited.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), 256);
}

// --- engines -----------------------------------------------------------------

TEST(ChaosEngines, MidSearchCrashFailsCleanlyAcrossAllEngines) {
  const Graph host = topo::ring(12);
  // A 6-node path: long enough that the stochastic engines (Anneal, Genetic)
  // cannot solve it in their seeded initial state before the first
  // shouldStop poll — the probe site every engine shares.
  const Graph query = topo::line(6);
  const expr::ConstraintSet none;
  const core::Problem problem(query, host, none);
  for (const Algorithm algorithm :
       {Algorithm::ECF, Algorithm::RWB, Algorithm::LNS, Algorithm::Naive,
        Algorithm::Anneal, Algorithm::Genetic, Algorithm::Portfolio}) {
    FaultGuard guard(11);
    // Unlimited fires: every shouldStop poll throws, so even the portfolio's
    // independent contenders all die and the race surfaces the error.
    FaultInjector::instance().arm(faultsite::kEngineStep, FaultSpec{});
    core::SearchOptions options;
    options.maxSolutions = 1;
    core::SearchContext context(options);
    EXPECT_THROW((void)core::engineFor(algorithm).run(problem, context),
                 InjectedFault)
        << core::algorithmName(algorithm);
  }
}

TEST(ChaosEngines, ThrowMidSearchResolvesFailedOnBothFrontEnds) {
  const Graph host = chaosHost();
  // Async front end: the future carries the exception, status reads Failed,
  // and onComplete receives the exception_ptr — never a hang.
  {
    AsyncNetEmbedService svc(host);
    FaultGuard guard(13);
    FaultInjector::instance().arm(faultsite::kEngineStep, FaultSpec{});
    std::promise<std::exception_ptr> seen;
    auto seenFuture = seen.get_future();
    TicketCallbacks callbacks;
    callbacks.onComplete = [&seen](const EmbedResponse& response,
                                   std::exception_ptr error) {
      EXPECT_EQ(response.status, RequestStatus::Failed);
      seen.set_value(error);
    };
    SubmitTicket ticket =
        svc.submit(delayRequest(host, 21), std::move(callbacks));
    awaitResolved(ticket.future());
    EXPECT_EQ(ticket.status(), RequestStatus::Failed);
    EXPECT_THROW((void)ticket.future().get(), InjectedFault);
    ASSERT_EQ(seenFuture.wait_for(kResolveBudget), std::future_status::ready);
    const std::exception_ptr error = seenFuture.get();
    ASSERT_TRUE(error) << "onComplete must receive the exception_ptr";
    EXPECT_THROW(std::rethrow_exception(error), InjectedFault);
    EXPECT_NE(ticket.errorMessage().find("injected fault"), std::string::npos);
  }
  // Sync ticketed front end: same contract.
  {
    NetEmbedService svc(host);
    FaultGuard guard(13);
    FaultInjector::instance().arm(faultsite::kEngineStep, FaultSpec{});
    std::promise<std::exception_ptr> seen;
    auto seenFuture = seen.get_future();
    TicketCallbacks callbacks;
    callbacks.onComplete = [&seen](const EmbedResponse&,
                                   std::exception_ptr error) {
      seen.set_value(error);
    };
    SubmitTicket ticket =
        svc.submitTicketed(delayRequest(host, 21), std::move(callbacks));
    awaitResolved(ticket.future());
    EXPECT_EQ(ticket.status(), RequestStatus::Failed);
    EXPECT_THROW((void)ticket.future().get(), InjectedFault);
    ASSERT_EQ(seenFuture.wait_for(kResolveBudget), std::future_status::ready);
    const std::exception_ptr error = seenFuture.get();
    ASSERT_TRUE(error);
    EXPECT_THROW(std::rethrow_exception(error), InjectedFault);
  }
}

// --- graceful degradation ----------------------------------------------------

TEST(ChaosService, PlanBuildFaultDegradesToCacheBypass) {
  const Graph host = chaosHost();
  NetEmbedService svc(host);
  EmbedRequest request = delayRequest(host, 31, /*maxSolutions=*/2);
  request.algorithm = Algorithm::ECF;  // plan-using engine, cache engaged
  const std::uint64_t before = service::detail::cacheBypassFallbacks();
  FaultGuard guard(17);
  FaultInjector::instance().arm(faultsite::kPlanBuild,
                                FaultSpec{.maxFires = 1});
  const EmbedResponse response = svc.submit(request);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(service::detail::cacheBypassFallbacks(), before + 1);
  EXPECT_NE(response.diagnostics.find("plan cache bypassed"),
            std::string::npos);
}

TEST(ChaosPlan, SpuriousCancelRetriesViaBypassWithIdenticalMappings) {
  const Graph host = chaosHost();
  EmbedRequest request = delayRequest(host, 33, /*maxSolutions=*/2);
  request.algorithm = Algorithm::ECF;
  NetEmbedService svc(host);
  const EmbedResponse clean = svc.submit(request);
  ASSERT_EQ(clean.status, RequestStatus::Done);

  NetEmbedService faulted(host);
  const std::uint64_t before = service::detail::cacheBypassFallbacks();
  FaultGuard guard(19);
  // The cancellation predicate lies exactly once: the build aborts with
  // FilterBuildCancelled although nothing requested a stop. The engine
  // detects the lie, rethrows, and the service serves the request through
  // the cache-bypass rung — with the same answer.
  FaultInjector::instance().arm(faultsite::kPlanCancel,
                                FaultSpec{.maxFires = 1});
  const EmbedResponse response = faulted.submit(request);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(service::detail::cacheBypassFallbacks(), before + 1);
  EXPECT_EQ(response.result.solutionCount, clean.result.solutionCount);
  EXPECT_EQ(response.result.mappings, clean.result.mappings);
}

TEST(ChaosScheduler, DequeueLatencySpikeDelaysDispatchOnly) {
  const Graph host = chaosHost();
  AsyncServiceOptions options;
  options.workers = 1;
  AsyncNetEmbedService svc(host, options);
  FaultGuard guard(23);
  FaultInjector::instance().arm(
      faultsite::kQosDequeue,
      FaultSpec{.maxFires = 1, .delay = std::chrono::milliseconds(30),
                .throws = false});
  const auto started = std::chrono::steady_clock::now();
  auto future = svc.submitAsync(delayRequest(host, 41));
  const EmbedResponse response = resolve(future);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
}

// --- retrying tickets --------------------------------------------------------

TEST(ChaosTicket, SyncTicketRetriesTransientFaultWithBackoff) {
  const Graph host = chaosHost();
  NetEmbedService svc(host);
  EmbedRequest request = delayRequest(host, 51);
  request.qos.retry.maxAttempts = 3;
  request.qos.retry.baseBackoff = std::chrono::milliseconds(1);
  FaultGuard guard(29);
  // Exactly one mid-search crash: attempt 1 dies, attempt 2 completes.
  FaultInjector::instance().arm(faultsite::kEngineStep,
                                FaultSpec{.skipFirst = 20, .maxFires = 1});
  SubmitTicket ticket = svc.submitTicketed(request, {});
  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_EQ(ticket.attempts(), 2u);
}

TEST(ChaosAsyncService, RetriedResultsMatchFaultFree) {
  const Graph host = chaosHost();
  EmbedRequest request = delayRequest(host, 53, /*maxSolutions=*/3);
  request.algorithm = Algorithm::ECF;  // deterministic enumeration order
  request.options.storeLimit = 8;

  EmbedResponse clean;
  std::vector<core::Mapping> cleanStream;
  {
    AsyncNetEmbedService svc(host);
    TicketCallbacks callbacks;
    callbacks.onSolution = [&cleanStream](const core::Mapping& m) {
      cleanStream.push_back(m);
      return true;
    };
    SubmitTicket ticket = svc.submit(request, std::move(callbacks));
    clean = resolve(ticket);
    ASSERT_EQ(clean.status, RequestStatus::Done);
    ASSERT_EQ(clean.attempts, 1u);
  }

  AsyncNetEmbedService svc(host);
  std::vector<core::Mapping> faultedStream;
  std::mutex streamMutex;
  EmbedRequest retried = request;
  retried.qos.retry.maxAttempts = 3;
  retried.qos.retry.baseBackoff = std::chrono::milliseconds(1);
  FaultGuard guard(31);
  FaultInjector::instance().arm(faultsite::kEngineStep,
                                FaultSpec{.skipFirst = 40, .maxFires = 1});
  TicketCallbacks callbacks;
  callbacks.onSolution = [&](const core::Mapping& m) {
    std::lock_guard lock(streamMutex);
    faultedStream.push_back(m);
    return true;
  };
  SubmitTicket ticket = svc.submit(retried, std::move(callbacks));
  const EmbedResponse response = resolve(ticket);
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_GE(response.attempts, 2u) << "the schedule must have forced a retry";
  // The acceptance bar: a retried success is indistinguishable from a
  // fault-free one — same solutions, each streamed exactly once.
  EXPECT_EQ(response.result.solutionCount, clean.result.solutionCount);
  EXPECT_EQ(response.result.mappings, clean.result.mappings);
  EXPECT_EQ(faultedStream, cleanStream);
  EXPECT_EQ(svc.controlStats().transientRetries, 1u);
}

TEST(ChaosAsyncService, RetryExhaustionFailsWithStoredError) {
  const Graph host = chaosHost();
  AsyncNetEmbedService svc(host);
  EmbedRequest request = delayRequest(host, 55);
  request.qos.retry.maxAttempts = 2;
  request.qos.retry.baseBackoff = std::chrono::milliseconds(1);
  FaultGuard guard(37);
  FaultInjector::instance().arm(faultsite::kEngineStep, FaultSpec{});
  std::promise<EmbedResponse> placeholderPromise;
  auto placeholderFuture = placeholderPromise.get_future();
  TicketCallbacks callbacks;
  callbacks.onComplete = [&placeholderPromise](const EmbedResponse& response,
                                               std::exception_ptr) {
    placeholderPromise.set_value(response);
  };
  SubmitTicket ticket = svc.submit(request, std::move(callbacks));
  awaitResolved(ticket.future());
  EXPECT_EQ(ticket.status(), RequestStatus::Failed);
  EXPECT_EQ(ticket.attempts(), 2u);
  EXPECT_NE(ticket.errorMessage().find("injected fault"), std::string::npos);
  EXPECT_THROW((void)ticket.future().get(), InjectedFault);
  // The onComplete placeholder attributes the failure: model version and
  // attempt count instead of a zeroed response.
  ASSERT_EQ(placeholderFuture.wait_for(kResolveBudget),
            std::future_status::ready);
  const EmbedResponse placeholder = placeholderFuture.get();
  EXPECT_EQ(placeholder.status, RequestStatus::Failed);
  EXPECT_EQ(placeholder.modelVersion, svc.version());
  EXPECT_EQ(placeholder.attempts, 2u);
}

TEST(ChaosAsyncService, RetryBudgetBoundsAlwaysFailingLowClass) {
  const Graph host = chaosHost();
  AsyncServiceOptions options;
  options.workers = 1;
  options.control.retryBudgetPerClass = 1;
  AsyncNetEmbedService svc(host, options);
  FaultGuard guard(41);
  FaultInjector::instance().arm(faultsite::kEngineStep, FaultSpec{});
  const auto lowRetrying = [&](std::uint64_t seed) {
    EmbedRequest request = delayRequest(host, seed);
    request.qos.priority = service::Priority::Low;
    request.qos.retry.maxAttempts = 3;
    request.qos.retry.baseBackoff = std::chrono::milliseconds(1);
    return request;
  };
  SubmitTicket first = svc.submit(lowRetrying(61), {});
  SubmitTicket second = svc.submit(lowRetrying(62), {});
  awaitResolved(first.future());
  awaitResolved(second.future());
  EXPECT_EQ(first.status(), RequestStatus::Failed);
  EXPECT_EQ(second.status(), RequestStatus::Failed);
  // One of the two held the single retry slot and exhausted its attempts;
  // the other was abandoned at its first retry — but still resolved with
  // the real error, not a hang or a bland rejection.
  const std::uint32_t a = first.attempts();
  const std::uint32_t b = second.attempts();
  EXPECT_EQ(std::max(a, b), 3u);
  EXPECT_EQ(std::min(a, b), 1u);
  EXPECT_EQ(svc.controlStats().retriesAbandoned, 1u);
  EXPECT_THROW((void)first.future().get(), InjectedFault);
  EXPECT_THROW((void)second.future().get(), InjectedFault);
}

TEST(ChaosAsyncService, ShutdownSettlesRetryBacklog) {
  const Graph host = chaosHost();
  auto svc = std::make_unique<AsyncNetEmbedService>(host);
  FaultGuard guard(43);
  FaultInjector::instance().arm(faultsite::kEngineStep, FaultSpec{});
  EmbedRequest request = delayRequest(host, 63);
  request.qos.retry.maxAttempts = 5;
  // A long backoff parks the request on the retry timer where the scheduler
  // cannot see it; shutdown must settle it, not strand its future.
  request.qos.retry.baseBackoff = std::chrono::seconds(5);
  request.qos.retry.maxBackoff = std::chrono::seconds(5);
  SubmitTicket ticket = svc->submit(request, {});
  const auto deadline = std::chrono::steady_clock::now() + kResolveBudget;
  while (ticket.status() != RequestStatus::Retrying &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(ticket.status(), RequestStatus::Retrying);
  svc->shutdown(AsyncNetEmbedService::ShutdownMode::CancelPending);
  awaitResolved(ticket.future());
  EXPECT_EQ(ticket.status(), RequestStatus::Cancelled);
  svc.reset();
}

TEST(ChaosTicket, BufferedConsumerFaultCountsSinkErrorAndResolves) {
  const Graph host = chaosHost();
  NetEmbedService svc(host);
  EmbedRequest request = pathRequest(/*maxSolutions=*/6);
  FaultGuard guard(47);
  FaultInjector::instance().arm(faultsite::kTicketConsumer,
                                FaultSpec{.maxFires = 1});
  std::atomic<std::uint64_t> delivered{0};
  TicketCallbacks callbacks;
  callbacks.solutionBufferCapacity = 4;
  callbacks.onSolution = [&delivered](const core::Mapping&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  SubmitTicket ticket = svc.submitTicketed(request, std::move(callbacks));
  const EmbedResponse response = resolve(ticket);
  // The throwing consumer ends streaming for the attempt — like a sink that
  // returned false — but the ticket still resolves Done, with the throw
  // counted instead of swallowed invisibly.
  EXPECT_EQ(response.status, RequestStatus::Done);
  EXPECT_EQ(ticket.sinkErrors(), 1u);
  EXPECT_EQ(delivered.load(), 0u)
      << "the injected throw fires before the first delivery";
}

// --- the accounting identity under mixed schedules ---------------------------

TEST(ChaosAsyncService, AccountingIdentityHoldsUnderMixedFaultSchedules) {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("NETEMBED_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  const Graph host = chaosHost();
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    AsyncServiceOptions options;
    options.workers = 2;
    options.queueCapacity = 4;
    options.overloadPolicy = util::OverloadPolicy::Reject;
    options.control.retryBudgetPerClass = 2;
    AsyncNetEmbedService svc(host, options);
    FaultGuard guard(seed);
    FaultInjector& fi = FaultInjector::instance();
    // A mixed probabilistic schedule over every seam a request crosses.
    // kPoolWorkerDeath stays unarmed: killing sharedPool() workers would
    // outlive this test.
    fi.arm(faultsite::kEngineStep, FaultSpec{.probability = 0.002});
    fi.arm(faultsite::kPlanBuild, FaultSpec{.probability = 0.3});
    fi.arm(faultsite::kPlanCancel, FaultSpec{.probability = 0.001});
    fi.arm(faultsite::kQosDequeue,
           FaultSpec{.probability = 0.2,
                     .delay = std::chrono::milliseconds(2)});
    fi.arm(faultsite::kTicketConsumer, FaultSpec{.probability = 0.1});

    constexpr std::size_t kSubmitted = 24;
    std::vector<SubmitTicket> tickets;
    tickets.reserve(kSubmitted);
    for (std::size_t i = 0; i < kSubmitted; ++i) {
      EmbedRequest request = delayRequest(host, 100 + i);
      request.qos.priority = static_cast<service::Priority>(i % 3);
      request.qos.tenant = i % 4;
      request.qos.retry.maxAttempts = 2;
      request.qos.retry.baseBackoff = std::chrono::milliseconds(1);
      request.qos.computeBudget = std::chrono::milliseconds(500);
      if (i % 5 == 0) {
        request.qos.admissionDeadline = std::chrono::milliseconds(250);
      }
      tickets.push_back(svc.submit(std::move(request), {}));
    }
    std::size_t done = 0, rejected = 0, expired = 0, preempted = 0,
                failed = 0, cancelled = 0;
    for (SubmitTicket& ticket : tickets) {
      awaitResolved(ticket.future());  // no hung futures, ever
      switch (ticket.status()) {
        case RequestStatus::Done: ++done; break;
        case RequestStatus::Rejected: ++rejected; break;
        case RequestStatus::Expired: ++expired; break;
        case RequestStatus::Preempted: ++preempted; break;
        case RequestStatus::Failed: ++failed; break;
        case RequestStatus::Cancelled: ++cancelled; break;
        default:
          ADD_FAILURE() << "non-terminal status "
                        << service::requestStatusName(ticket.status());
      }
    }
    EXPECT_EQ(done + rejected + expired + preempted + failed + cancelled,
              kSubmitted)
        << "the accounting identity must extend to injected failures";
    svc.drain();
  }
}

}  // namespace
