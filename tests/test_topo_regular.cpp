#include "topo/regular.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace {

using namespace netembed;
using graph::Graph;

class RegularSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(RegularSizes, RingProperties) {
  const std::size_t n = GetParam();
  if (n < 3) return;
  const Graph g = topo::ring(n);
  EXPECT_EQ(g.nodeCount(), n);
  EXPECT_EQ(g.edgeCount(), n);
  EXPECT_TRUE(graph::isConnected(g));
  for (graph::NodeId i = 0; i < n; ++i) EXPECT_EQ(g.degree(i), 2u);
}

TEST_P(RegularSizes, CliqueProperties) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const Graph g = topo::clique(n);
  EXPECT_EQ(g.nodeCount(), n);
  EXPECT_EQ(g.edgeCount(), n * (n - 1) / 2);
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
  for (graph::NodeId i = 0; i < n; ++i) EXPECT_EQ(g.degree(i), n - 1);
}

TEST_P(RegularSizes, StarProperties) {
  const std::size_t leaves = GetParam();
  if (leaves < 1) return;
  const Graph g = topo::star(leaves);
  EXPECT_EQ(g.nodeCount(), leaves + 1);
  EXPECT_EQ(g.edgeCount(), leaves);
  EXPECT_EQ(g.degree(0), leaves);
  for (graph::NodeId i = 1; i <= leaves; ++i) EXPECT_EQ(g.degree(i), 1u);
}

TEST_P(RegularSizes, LineProperties) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const Graph g = topo::line(n);
  EXPECT_EQ(g.nodeCount(), n);
  EXPECT_EQ(g.edgeCount(), n - 1);
  EXPECT_EQ(graph::diameter(g), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegularSizes, testing::Values(2, 3, 4, 5, 8, 16));

TEST(Regular, TreeShape) {
  const Graph g = topo::completeTree(7, 2);  // perfect binary tree
  EXPECT_EQ(g.nodeCount(), 7u);
  EXPECT_EQ(g.edgeCount(), 6u);
  EXPECT_EQ(g.degree(0), 2u);   // root
  EXPECT_EQ(g.degree(1), 3u);   // internal
  EXPECT_EQ(g.degree(3), 1u);   // leaf
  EXPECT_TRUE(graph::isConnected(g));
}

TEST(Regular, TreeWithArityThree) {
  const Graph g = topo::completeTree(13, 3);
  EXPECT_EQ(g.edgeCount(), 12u);
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(Regular, GridShape) {
  const Graph g = topo::grid(3, 4);
  EXPECT_EQ(g.nodeCount(), 12u);
  EXPECT_EQ(g.edgeCount(), 3u * 3 + 2u * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.degree(0), 2u);                 // corner
  EXPECT_EQ(g.degree(5), 4u);                 // interior
  EXPECT_TRUE(graph::isConnected(g));
}

TEST(Regular, HypercubeShape) {
  const Graph g = topo::hypercube(4);
  EXPECT_EQ(g.nodeCount(), 16u);
  EXPECT_EQ(g.edgeCount(), 32u);  // n * dim / 2
  for (graph::NodeId i = 0; i < 16; ++i) EXPECT_EQ(g.degree(i), 4u);
  EXPECT_EQ(graph::diameter(g), 4u);
}

TEST(Regular, InvalidSizesRejected) {
  EXPECT_THROW((void)topo::ring(2), std::invalid_argument);
  EXPECT_THROW((void)topo::clique(1), std::invalid_argument);
  EXPECT_THROW((void)topo::star(0), std::invalid_argument);
  EXPECT_THROW((void)topo::line(1), std::invalid_argument);
  EXPECT_THROW((void)topo::completeTree(0, 2), std::invalid_argument);
  EXPECT_THROW((void)topo::completeTree(3, 0), std::invalid_argument);
  EXPECT_THROW((void)topo::grid(0, 3), std::invalid_argument);
  EXPECT_THROW((void)topo::hypercube(0), std::invalid_argument);
  EXPECT_THROW((void)topo::hypercube(21), std::invalid_argument);
}

TEST(Regular, SetAllEdgesAndNodes) {
  Graph g = topo::ring(4);
  topo::setAllEdges(g, "minDelay", 10.0);
  topo::setAllNodes(g, "os", "linux");
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    EXPECT_DOUBLE_EQ(g.edgeAttrs(e).at("minDelay").asDouble(), 10.0);
  }
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    EXPECT_EQ(g.nodeAttrs(n).at("os").asString(), "linux");
  }
}

}  // namespace
