#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using netembed::util::mean;
using netembed::util::median;
using netembed::util::percentile;
using netembed::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95HalfWidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double meanBefore = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), meanBefore);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), meanBefore);
}

TEST(RunningStats, Ci95SmallSampleUsesStudentT) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  // df=1 => t = 12.706, sd = sqrt(2), ci = 12.706 * sqrt(2)/sqrt(2) = 12.706.
  EXPECT_NEAR(s.ci95HalfWidth(), 12.706, 1e-9);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 5; ++i) small.add(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 500; ++i) large.add(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(small.ci95HalfWidth(), large.ci95HalfWidth());
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(MeanMedian, Helpers) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(QuantileNearestRank, KnownDistributions) {
  using netembed::util::quantileNearestRank;
  // 1..1024: the floored rank used to read index 1012 (~p98.8); nearest-rank
  // rounds up to index 1013, value 1014.
  std::vector<double> big;
  for (int i = 1; i <= 1024; ++i) big.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(quantileNearestRank(big, 0.99), 1014.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank(big, 0.5), 513.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank(big, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank(big, 1.0), 1024.0);
  // 1..100.
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) hundred.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(quantileNearestRank(hundred, 0.99), 100.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank(hundred, 0.5), 51.0);
}

TEST(QuantileNearestRank, TwoSampleMedianIsNotTheMinimum) {
  using netembed::util::quantileNearestRank;
  // The floored rank returned the smaller of two samples as the "median";
  // nearest-rank reads the upper one.
  EXPECT_DOUBLE_EQ(quantileNearestRank({10.0, 20.0}, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank({20.0, 10.0}, 0.99), 20.0);
}

TEST(QuantileNearestRank, DegenerateInputs) {
  using netembed::util::quantileNearestRank;
  EXPECT_DOUBLE_EQ(quantileNearestRank({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank({7.0}, 0.99), 7.0);
  // Out-of-range q clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(quantileNearestRank({1.0, 2.0}, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(quantileNearestRank({1.0, 2.0}, -0.5), 1.0);
}

}  // namespace
