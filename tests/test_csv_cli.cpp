#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using netembed::util::ArgParser;
using netembed::util::CsvWriter;
using netembed::util::formatFixed;
using netembed::util::TablePrinter;

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, NumericFields) {
  EXPECT_EQ(CsvWriter::field(1.5), "1.5");
  EXPECT_EQ(CsvWriter::field(static_cast<long long>(-42)), "-42");
  EXPECT_EQ(CsvWriter::field(static_cast<unsigned long long>(7)), "7");
}

TEST(Table, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.addRow({"x", "1"});
  table.addRow({"longer", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.addRow({"only"});
  std::ostringstream out;
  table.print(out);  // must not crash
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
}

ArgParser makeParser(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ArgParser(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Cli, EqualsForm) {
  const auto args = makeParser({"prog", "--nodes=42", "--name=abc"});
  EXPECT_EQ(args.getInt("nodes", 0), 42);
  EXPECT_EQ(args.getString("name", ""), "abc");
}

TEST(Cli, SpaceForm) {
  const auto args = makeParser({"prog", "--nodes", "42"});
  EXPECT_EQ(args.getInt("nodes", 0), 42);
}

TEST(Cli, BareBooleanFlag) {
  const auto args = makeParser({"prog", "--paper", "--fast=false"});
  EXPECT_TRUE(args.getBool("paper"));
  EXPECT_FALSE(args.getBool("fast"));
  EXPECT_FALSE(args.getBool("absent"));
  EXPECT_TRUE(args.getBool("absent", true));
}

TEST(Cli, Fallbacks) {
  const auto args = makeParser({"prog"});
  EXPECT_EQ(args.getInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
  EXPECT_EQ(args.getString("s", "dflt"), "dflt");
  EXPECT_EQ(args.getSeed("seed", 99), 99u);
  EXPECT_FALSE(args.has("n"));
}

TEST(Cli, Positional) {
  const auto args = makeParser({"prog", "file1", "--k=1", "file2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(Cli, BadIntegerThrows) {
  const auto args = makeParser({"prog", "--n=abc"});
  EXPECT_THROW((void)args.getInt("n", 0), std::invalid_argument);
}

TEST(Cli, ConsecutiveFlagsAreBooleans) {
  const auto args = makeParser({"prog", "--a", "--b", "7"});
  EXPECT_TRUE(args.getBool("a"));
  EXPECT_EQ(args.getInt("b", 0), 7);
}

}  // namespace
