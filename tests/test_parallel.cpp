#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using netembed::util::parallelFor;
using netembed::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  parallelFor(pool, kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallelFor(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int calls = 0;
  parallelFor(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ComputesCorrectSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100'000;
  std::atomic<long long> sum{0};
  parallelFor(pool, kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallelFor(pool, 1000,
                  [&](std::size_t i) {
                    if (i == 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> counter{0};
  parallelFor(pool, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, RespectsExplicitGrain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(64);
  parallelFor(pool, 64, [&](std::size_t i) { visits[i].fetch_add(1); }, 7);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SharedPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallelFor(256, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 256);
}

}  // namespace
