#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

namespace {

using netembed::util::parallelFor;
using netembed::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  parallelFor(pool, kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallelFor(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int calls = 0;
  parallelFor(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ComputesCorrectSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100'000;
  std::atomic<long long> sum{0};
  parallelFor(pool, kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, ExposesCooperativeStopToken) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopRequested());
  const std::stop_token token = pool.stopToken();
  EXPECT_FALSE(token.stop_requested());
  pool.requestStop();
  EXPECT_TRUE(pool.stopRequested());
  EXPECT_TRUE(token.stop_requested());
  pool.resetStop();
  EXPECT_FALSE(pool.stopRequested());
  // The old token observes the old (stopped) state; a fresh one is live.
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(pool.stopToken().stop_requested());
}

TEST(ThreadPool, StopTokenIsObservableFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> sawStop{0};
  std::atomic<int> entered{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      entered.fetch_add(1);
      while (!pool.stopRequested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      sawStop.fetch_add(1);
    });
  }
  while (entered.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.requestStop();
  pool.wait();
  EXPECT_EQ(sawStop.load(), 8);
  pool.resetStop();
}

TEST(ParallelFor, IgnoresPoolStopButFnMayPollIt) {
  ThreadPool pool(4);
  pool.requestStop();
  // parallelFor itself must still visit every index (the stage-1 filter
  // build relies on all-or-throw semantics)...
  std::atomic<int> visited{0};
  parallelFor(pool, 1'000, [&](std::size_t) { visited.fetch_add(1); }, 8);
  EXPECT_EQ(visited.load(), 1'000);
  // ...while a cancellable fn can observe the token and skip its own work.
  std::atomic<int> skipped{0};
  parallelFor(pool, 1'000, [&](std::size_t) {
    if (pool.stopRequested()) skipped.fetch_add(1);
  }, 8);
  EXPECT_EQ(skipped.load(), 1'000);
  pool.resetStop();
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallelFor(pool, 1000,
                  [&](std::size_t i) {
                    if (i == 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> counter{0};
  parallelFor(pool, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, FirstExceptionPropagatesWithoutDeadlockingWait) {
  ThreadPool pool(4);
  // Several chunks throw; exactly one exception must surface, and a
  // subsequent wait() must return instead of hanging on leaked in-flight
  // bookkeeping.
  try {
    parallelFor(pool, 10'000,
                [&](std::size_t i) {
                  if (i % 97 == 0) throw std::runtime_error("chunk " + std::to_string(i));
                },
                16);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
  }
  pool.wait();  // must not deadlock
  std::atomic<int> counter{0};
  parallelFor(pool, 64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, RespectsExplicitGrain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(64);
  parallelFor(pool, 64, [&](std::size_t i) { visits[i].fetch_add(1); }, 7);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SharedPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallelFor(256, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 256);
}

}  // namespace
