#include "expr/parser.hpp"

#include <gtest/gtest.h>

namespace {

using namespace netembed::expr;

std::string normalized(std::string_view src) { return toString(*parse(src).root); }

TEST(Parser, PrecedenceMulOverAdd) {
  EXPECT_EQ(normalized("1 + 2 * 3"), "(1 + (2 * 3))");
}

TEST(Parser, PrecedenceAddOverRelational) {
  EXPECT_EQ(normalized("1 + 2 < 3 + 4"), "((1 + 2) < (3 + 4))");
}

TEST(Parser, PrecedenceRelationalOverEquality) {
  EXPECT_EQ(normalized("1 < 2 == 3 < 4"), "((1 < 2) == (3 < 4))");
}

TEST(Parser, PrecedenceEqualityOverAnd) {
  EXPECT_EQ(normalized("true == false && true"), "((true == false) && true)");
}

TEST(Parser, PrecedenceAndOverOr) {
  EXPECT_EQ(normalized("true || false && true"), "(true || (false && true))");
}

TEST(Parser, ParenthesesOverride) {
  EXPECT_EQ(normalized("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(Parser, LeftAssociativity) {
  EXPECT_EQ(normalized("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(normalized("8 / 4 / 2"), "((8 / 4) / 2)");
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(normalized("!true"), "!(true)");
  EXPECT_EQ(normalized("-5 + 3"), "(-(5) + 3)");
  EXPECT_EQ(normalized("!!true"), "!(!(true))");
}

TEST(Parser, AttrRefsForAllObjects) {
  for (const char* object : {"vEdge", "rEdge", "vSource", "vTarget", "rSource",
                             "rTarget", "vNode", "rNode"}) {
    const std::string src = std::string(object) + ".attr";
    EXPECT_EQ(normalized(src), src) << src;
  }
}

TEST(Parser, UnknownObjectRejected) {
  EXPECT_THROW((void)parse("qEdge.delay > 1"), SyntaxError);
}

TEST(Parser, BareIdentifierRejected) {
  EXPECT_THROW((void)parse("delay > 1"), SyntaxError);
}

TEST(Parser, FunctionCalls) {
  EXPECT_EQ(normalized("abs(-1)"), "abs(-(1))");
  EXPECT_EQ(normalized("sqrt(4)"), "sqrt(4)");
  EXPECT_EQ(normalized("min(1, 2)"), "min(1, 2)");
  EXPECT_EQ(normalized("max(1, 2)"), "max(1, 2)");
  EXPECT_EQ(normalized("floor(1.5)"), "floor(1.5)");
  EXPECT_EQ(normalized("ceil(1.5)"), "ceil(1.5)");
  EXPECT_EQ(normalized("isBoundTo(vSource.os, rSource.os)"),
            "isBoundTo(vSource.os, rSource.os)");
}

TEST(Parser, UnknownFunctionRejected) {
  EXPECT_THROW((void)parse("log(1)"), SyntaxError);
}

TEST(Parser, ArityMismatchRejected) {
  EXPECT_THROW((void)parse("abs(1, 2)"), SyntaxError);
  EXPECT_THROW((void)parse("min(1)"), SyntaxError);
  EXPECT_THROW((void)parse("isBoundTo(vSource.os)"), SyntaxError);
}

TEST(Parser, StringLiterals) {
  EXPECT_EQ(normalized("vSource.os == \"linux-2.6\""),
            "(vSource.os == \"linux-2.6\")");
}

TEST(Parser, TrailingGarbageRejected) {
  EXPECT_THROW((void)parse("1 + 2 extra"), SyntaxError);
  EXPECT_THROW((void)parse("1 + 2)"), SyntaxError);
}

TEST(Parser, UnbalancedParensRejected) {
  EXPECT_THROW((void)parse("(1 + 2"), SyntaxError);
}

TEST(Parser, EmptyInputRejected) {
  EXPECT_THROW((void)parse(""), SyntaxError);
}

TEST(Parser, ObjectsUsedMask) {
  const Ast ast = parse("vEdge.d > 1 && rSource.x < 2");
  const auto mask = ast.objectsUsed();
  EXPECT_TRUE(mask & (1u << static_cast<unsigned>(ObjectId::VEdge)));
  EXPECT_TRUE(mask & (1u << static_cast<unsigned>(ObjectId::RSource)));
  EXPECT_FALSE(mask & (1u << static_cast<unsigned>(ObjectId::RNode)));
}

TEST(Parser, PaperGeoDistanceExample) {
  const char* src =
      "sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + "
      "(vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0";
  EXPECT_NO_THROW((void)parse(src));
}

TEST(Parser, PaperDelayRangeExample) {
  EXPECT_NO_THROW((void)parse(
      "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay"));
}

}  // namespace
