// Evaluation semantics, exercised through both the AST interpreter and the
// bytecode VM. Every expression in the differential suite must produce the
// same result on both evaluators across several attribute contexts — this is
// the oracle that keeps the VM honest.

#include <gtest/gtest.h>

#include "expr/constraint.hpp"
#include "expr/parser.hpp"
#include "expr/vm.hpp"
#include "graph/attr_map.hpp"

namespace {

using namespace netembed::expr;
using netembed::graph::AttrMap;

struct Fixture {
  AttrMap vEdge, rEdge, vSource, vTarget, rSource, rTarget;

  EvalContext ctx() const {
    EvalContext c;
    c.bind(ObjectId::VEdge, vEdge);
    c.bind(ObjectId::REdge, rEdge);
    c.bind(ObjectId::VSource, vSource);
    c.bind(ObjectId::VTarget, vTarget);
    c.bind(ObjectId::RSource, rSource);
    c.bind(ObjectId::RTarget, rTarget);
    return c;
  }
};

Fixture richFixture() {
  Fixture f;
  f.vEdge.set("avgDelay", 100.0);
  f.vEdge.set("minDelay", 90.0);
  f.vEdge.set("maxDelay", 120.0);
  f.rEdge.set("avgDelay", 95.0);
  f.rEdge.set("minDelay", 92.0);
  f.rEdge.set("maxDelay", 110.0);
  f.vSource.set("os", "linux-2.6");
  f.vSource.set("x", 3.0);
  f.vSource.set("y", 0.0);
  f.vTarget.set("x", 0.0);
  f.vTarget.set("y", 4.0);
  f.rSource.set("os", "linux-2.6");
  f.rSource.set("name", "planetlab1");
  f.rTarget.set("os", "fedora");
  return f;
}

bool evalBoth(const std::string& src, const Fixture& f) {
  const Ast ast = parse(src);
  const Program program = compile(ast);
  const bool vm = run(program, f.ctx());
  const bool interp = evalAst(*ast.root, f.ctx()).truthy();
  EXPECT_EQ(vm, interp) << "VM and interpreter disagree on: " << src;
  return vm;
}

TEST(Eval, NumericComparisons) {
  const Fixture f = richFixture();
  EXPECT_TRUE(evalBoth("rEdge.avgDelay < vEdge.avgDelay", f));
  EXPECT_FALSE(evalBoth("rEdge.avgDelay > vEdge.avgDelay", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay == 100.0", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay != 99", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay >= 100", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay <= 100", f));
}

TEST(Eval, Arithmetic) {
  const Fixture f = richFixture();
  EXPECT_TRUE(evalBoth("vEdge.avgDelay + 10 == 110", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay - rEdge.avgDelay == 5", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay * 2 == 200", f));
  EXPECT_TRUE(evalBoth("vEdge.avgDelay / 4 == 25", f));
  EXPECT_TRUE(evalBoth("-vEdge.avgDelay == 0 - 100", f));
}

TEST(Eval, DivisionByZeroIsUndefinedNotCrash) {
  const Fixture f = richFixture();
  EXPECT_FALSE(evalBoth("vEdge.avgDelay / 0 == 1", f));
  EXPECT_FALSE(evalBoth("vEdge.avgDelay / 0 != 1", f));  // undefined, not true
}

TEST(Eval, BooleanLogic) {
  const Fixture f = richFixture();
  EXPECT_TRUE(evalBoth("true && true", f));
  EXPECT_FALSE(evalBoth("true && false", f));
  EXPECT_TRUE(evalBoth("false || true", f));
  EXPECT_FALSE(evalBoth("false || false", f));
  EXPECT_TRUE(evalBoth("!false", f));
  EXPECT_FALSE(evalBoth("!true", f));
}

TEST(Eval, ShortCircuitSkipsUndefined) {
  const Fixture f = richFixture();
  // Right side references a missing attribute; short-circuit must win.
  EXPECT_TRUE(evalBoth("true || vEdge.noSuchAttr > 1", f));
  EXPECT_FALSE(evalBoth("false && vEdge.noSuchAttr > 1", f));
}

TEST(Eval, MissingAttributeComparisonsAreFalse) {
  const Fixture f = richFixture();
  EXPECT_FALSE(evalBoth("vEdge.ghost > 1", f));
  EXPECT_FALSE(evalBoth("vEdge.ghost < 1", f));
  EXPECT_FALSE(evalBoth("vEdge.ghost == 1", f));
  EXPECT_FALSE(evalBoth("vEdge.ghost != 1", f));
  EXPECT_FALSE(evalBoth("vEdge.ghost + 1 > 0", f));
}

TEST(Eval, StringEqualityAndOrdering) {
  const Fixture f = richFixture();
  EXPECT_TRUE(evalBoth("vSource.os == \"linux-2.6\"", f));
  EXPECT_TRUE(evalBoth("vSource.os == rSource.os", f));
  EXPECT_FALSE(evalBoth("vSource.os == rTarget.os", f));
  EXPECT_TRUE(evalBoth("vSource.os != rTarget.os", f));
  EXPECT_TRUE(evalBoth("\"abc\" < \"abd\"", f));
}

TEST(Eval, MixedTypeEqualityIsFalseNotError) {
  const Fixture f = richFixture();
  EXPECT_FALSE(evalBoth("vSource.os == 5", f));
  EXPECT_TRUE(evalBoth("vSource.os != 5", f));
  EXPECT_FALSE(evalBoth("vSource.os < 5", f));  // unordered across types
}

TEST(Eval, Functions) {
  const Fixture f = richFixture();
  EXPECT_TRUE(evalBoth("abs(0 - 5) == 5", f));
  EXPECT_TRUE(evalBoth("sqrt(16) == 4", f));
  EXPECT_TRUE(evalBoth("min(3, 7) == 3", f));
  EXPECT_TRUE(evalBoth("max(3, 7) == 7", f));
  EXPECT_TRUE(evalBoth("floor(1.9) == 1", f));
  EXPECT_TRUE(evalBoth("ceil(1.1) == 2", f));
}

TEST(Eval, SqrtOfNegativeIsUndefined) {
  const Fixture f = richFixture();
  EXPECT_FALSE(evalBoth("sqrt(0 - 1) == 0", f));
  EXPECT_FALSE(evalBoth("sqrt(0 - 1) != 0", f));
}

TEST(Eval, IsBoundToSemantics) {
  const Fixture f = richFixture();
  // Both present and equal.
  EXPECT_TRUE(evalBoth("isBoundTo(vSource.os, rSource.os)", f));
  // Both present and different.
  EXPECT_FALSE(evalBoth("isBoundTo(vSource.os, rTarget.os)", f));
  // First absent => unconstrained => true.
  EXPECT_TRUE(evalBoth("isBoundTo(vSource.bindTo, rSource.name)", f));
  // First present, second absent => false.
  EXPECT_FALSE(evalBoth("isBoundTo(vSource.os, rSource.ghost)", f));
}

TEST(Eval, PaperDelayToleranceExample) {
  const Fixture f = richFixture();
  // 95 is within [90, 110] of the query's 100 +/- 10%.
  EXPECT_TRUE(evalBoth(
      "rEdge.avgDelay>=0.90*vEdge.avgDelay && rEdge.avgDelay<=1.10*vEdge.avgDelay", f));
}

TEST(Eval, PaperMinMaxRangeExample) {
  const Fixture f = richFixture();
  EXPECT_TRUE(evalBoth(
      "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay", f));
}

TEST(Eval, PaperGeoDistanceExample) {
  const Fixture f = richFixture();  // (3,0) vs (0,4): distance 5
  EXPECT_TRUE(evalBoth(
      "sqrt((vSource.x-vTarget.x)*(vSource.x-vTarget.x)+"
      "(vSource.y-vTarget.y)*(vSource.y-vTarget.y)) < 100.0", f));
  EXPECT_FALSE(evalBoth(
      "sqrt((vSource.x-vTarget.x)*(vSource.x-vTarget.x)+"
      "(vSource.y-vTarget.y)*(vSource.y-vTarget.y)) < 5.0", f));
}

TEST(Eval, UnboundObjectYieldsUndefined) {
  const Fixture f = richFixture();
  EvalContext partial;
  partial.bind(ObjectId::VEdge, f.vEdge);  // everything else unbound
  const Program p = compile(parse("rEdge.avgDelay > 0"));
  EXPECT_FALSE(run(p, partial));
  const Program p2 = compile(parse("vEdge.avgDelay > 0"));
  EXPECT_TRUE(run(p2, partial));
}

TEST(Eval, NonBooleanFinalValueIsFalsy) {
  const Fixture f = richFixture();
  // A bare number is not a boolean; the result coerces to false.
  EXPECT_FALSE(evalBoth("1 + 1", f));
  EXPECT_FALSE(evalBoth("vSource.os", f));
}

// ---- differential sweep: VM vs interpreter over many expressions ---------

class Differential : public testing::TestWithParam<const char*> {};

TEST_P(Differential, VmMatchesInterpreter) {
  const Fixture f = richFixture();
  const Ast ast = parse(GetParam());
  const Program program = compile(ast);
  EXPECT_EQ(run(program, f.ctx()), evalAst(*ast.root, f.ctx()).truthy());

  // Also under an empty context (all attrs undefined).
  Fixture empty;
  EXPECT_EQ(run(program, empty.ctx()), evalAst(*ast.root, empty.ctx()).truthy());
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, Differential,
    testing::Values(
        "true", "false", "!true || !false",
        "1 < 2 && 2 < 3 && 3 < 4",
        "1 > 2 || 2 > 3 || 4 > 3",
        "vEdge.avgDelay > 50 && vEdge.avgDelay < 150",
        "vEdge.minDelay <= rEdge.minDelay == rEdge.maxDelay <= vEdge.maxDelay",
        "abs(vEdge.avgDelay - rEdge.avgDelay) <= 10",
        "min(vEdge.minDelay, rEdge.minDelay) == rEdge.minDelay - 2",
        "max(vEdge.maxDelay, rEdge.maxDelay) >= 120",
        "isBoundTo(vSource.os, rSource.os) && isBoundTo(vSource.nope, rSource.os)",
        "vSource.os == \"linux-2.6\" || vSource.os == 'fedora'",
        "(vEdge.avgDelay + rEdge.avgDelay) / 2 > 97",
        "sqrt(vEdge.avgDelay * vEdge.avgDelay) == vEdge.avgDelay",
        "!(vEdge.ghost > 0) && !(vEdge.ghost <= 0)",
        "1/0 == 1/0",
        "floor(vEdge.avgDelay / 3) * 3 <= vEdge.avgDelay",
        "-(-(5)) == 5",
        "vEdge.avgDelay - rEdge.avgDelay == 5 && true || false"));

}  // namespace
