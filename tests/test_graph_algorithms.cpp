#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed::graph;
namespace topo = netembed::topo;

Graph pathGraph(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.addNode();
  for (int i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

TEST(Bfs, VisitsAllReachableInOrder) {
  const Graph g = pathGraph(5);
  const auto order = bfsOrder(g, 0);
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], static_cast<NodeId>(i));
}

TEST(Bfs, StopsAtComponentBoundary) {
  Graph g = pathGraph(3);
  g.addNode();  // isolated
  EXPECT_EQ(bfsOrder(g, 0).size(), 3u);
  EXPECT_EQ(bfsOrder(g, 3).size(), 1u);
}

TEST(Bfs, BadStartThrows) {
  const Graph g = pathGraph(2);
  EXPECT_THROW((void)bfsOrder(g, 9), std::out_of_range);
}

TEST(Bfs, DirectedEdgesAreTraversedBothWays) {
  Graph g(true);
  g.addNode();
  g.addNode();
  g.addEdge(1, 0);  // only inbound edge for node 0
  EXPECT_EQ(bfsOrder(g, 0).size(), 2u);  // weak connectivity
}

TEST(Components, CountsAndLabels) {
  Graph g = pathGraph(3);
  g.addNode();
  g.addNode();
  g.addEdge(3, 4);
  const Components c = connectedComponents(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(Components, ConnectedGraph) {
  EXPECT_TRUE(isConnected(pathGraph(10)));
  EXPECT_TRUE(isConnected(Graph{}));  // vacuous
  Graph single;
  single.addNode();
  EXPECT_TRUE(isConnected(single));
}

TEST(Components, DisconnectedGraph) {
  Graph g = pathGraph(2);
  g.addNode();
  EXPECT_FALSE(isConnected(g));
}

TEST(DegreeHistogram, Ring) {
  const auto hist = degreeHistogram(topo::ring(6));
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[2], 6u);
}

TEST(DegreeHistogram, Star) {
  const auto hist = degreeHistogram(topo::star(5));
  EXPECT_EQ(hist[1], 5u);
  EXPECT_EQ(hist[5], 1u);
}

TEST(AverageDegree, RingIsTwo) {
  EXPECT_DOUBLE_EQ(averageDegree(topo::ring(8)), 2.0);
  EXPECT_DOUBLE_EQ(averageDegree(Graph{}), 0.0);
}

TEST(Dijkstra, UnitWeightsMatchHops) {
  const Graph g = pathGraph(5);
  const auto sp = dijkstra(g, 0, [](EdgeId) { return 1.0; });
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(sp.distance[i], i);
  const auto path = extractPath(sp, 4);
  ASSERT_EQ(path.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(path[i], static_cast<NodeId>(i));
  EXPECT_EQ(extractPathEdges(sp, 4).size(), 4u);
}

TEST(Dijkstra, PrefersCheaperDetour) {
  // 0-1 weight 10; 0-2-1 weights 1+1.
  Graph g;
  for (int i = 0; i < 3; ++i) g.addNode();
  const auto direct = g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(2, 1);
  const auto sp = dijkstra(g, 0, [&](EdgeId e) { return e == direct ? 10.0 : 1.0; });
  EXPECT_DOUBLE_EQ(sp.distance[1], 2.0);
  const auto path = extractPath(sp, 1);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 2u);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  Graph g = pathGraph(2);
  g.addNode();
  const auto sp = dijkstra(g, 0, [](EdgeId) { return 1.0; });
  EXPECT_EQ(sp.distance[2], kUnreachable);
  EXPECT_TRUE(extractPath(sp, 2).empty());
}

TEST(Dijkstra, NegativeWeightThrows) {
  const Graph g = pathGraph(2);
  EXPECT_THROW((void)dijkstra(g, 0, [](EdgeId) { return -1.0; }), std::invalid_argument);
}

TEST(Dijkstra, DirectedRespectsOrientation) {
  Graph g(true);
  g.addNode();
  g.addNode();
  g.addEdge(1, 0);
  const auto sp = dijkstra(g, 0, [](EdgeId) { return 1.0; });
  EXPECT_EQ(sp.distance[1], kUnreachable);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(pathGraph(5)), 4u);
  EXPECT_EQ(diameter(topo::ring(6)), 3u);
  EXPECT_EQ(diameter(topo::clique(5)), 1u);
  EXPECT_EQ(diameter(topo::star(4)), 2u);
}

}  // namespace
