#include "service/optimize.hpp"

#include <gtest/gtest.h>

#include "core/ecf.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::Algorithm;
using core::Outcome;
using core::Problem;
using graph::Graph;

const expr::ConstraintSet kNone;

/// Host triangle with one cheap edge (0-1: 1ms), others 10ms.
Graph triangleHost() {
  Graph g(false);
  for (int i = 0; i < 3; ++i) g.addNode();
  g.edgeAttrs(g.addEdge(0, 1)).set("delay", 1.0);
  g.edgeAttrs(g.addEdge(1, 2)).set("delay", 10.0);
  g.edgeAttrs(g.addEdge(2, 0)).set("delay", 10.0);
  return g;
}

TEST(Optimize, PicksTheCheapestMapping) {
  const Graph host = triangleHost();
  const Graph query = topo::line(2);
  const Problem problem(query, host, kNone);
  const auto cost = service::totalEdgeAttrCost(query, host, "delay");
  const auto result =
      service::enumerateAndOptimize(problem, Algorithm::ECF, {}, cost);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.search.outcome, Outcome::Complete);
  EXPECT_DOUBLE_EQ(result.bestCost, 1.0);  // must land on the cheap edge
  const core::Mapping& m = *result.best;
  EXPECT_TRUE((m[0] == 0 && m[1] == 1) || (m[0] == 1 && m[1] == 0));
}

TEST(Optimize, CompleteSearchMakesGlobalOptimum) {
  // Larger instance: path query on a weighted clique; brute-force check.
  Graph host = topo::clique(6);
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set("delay", static_cast<double>((e * 7) % 13) + 1.0);
  }
  const Graph query = topo::line(3);
  const Problem problem(query, host, kNone);
  const auto cost = service::totalEdgeAttrCost(query, host, "delay");

  core::SearchOptions all;
  all.storeLimit = 100000;
  const auto ecfAll = core::ecfSearch(problem, all);
  double expected = 1e18;
  for (const core::Mapping& m : ecfAll.mappings) expected = std::min(expected, cost(m));

  const auto result = service::enumerateAndOptimize(problem, Algorithm::ECF, {}, cost);
  EXPECT_DOUBLE_EQ(result.bestCost, expected);
}

TEST(Optimize, LnsAgreesWithEcfOnOptimum) {
  Graph host = topo::clique(5);
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set("delay", static_cast<double>((e * 3) % 7) + 1.0);
  }
  const Graph query = topo::ring(3);
  const Problem problem(query, host, kNone);
  const auto cost = service::totalEdgeAttrCost(query, host, "delay");
  const auto a = service::enumerateAndOptimize(problem, Algorithm::ECF, {}, cost);
  const auto b = service::enumerateAndOptimize(problem, Algorithm::LNS, {}, cost);
  EXPECT_DOUBLE_EQ(a.bestCost, b.bestCost);
}

TEST(Optimize, NodeAttrCost) {
  Graph host = topo::clique(4);
  for (graph::NodeId n = 0; n < 4; ++n) {
    host.nodeAttrs(n).set("load", static_cast<double>(n));
  }
  const Graph query = topo::line(2);
  const Problem problem(query, host, kNone);
  const auto cost = service::totalNodeAttrCost(query, host, "load");
  const auto result = service::enumerateAndOptimize(problem, Algorithm::ECF, {}, cost);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_DOUBLE_EQ(result.bestCost, 1.0);  // nodes 0 and 1
}

TEST(Optimize, InfeasibleYieldsNoBest) {
  const Graph host = topo::ring(6);
  const Graph query = topo::clique(4);
  const Problem problem(query, host, kNone);
  const auto cost = service::totalEdgeAttrCost(query, host, "delay");
  const auto result = service::enumerateAndOptimize(problem, Algorithm::ECF, {}, cost);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_TRUE(result.search.provenInfeasible());
}

TEST(Optimize, MissingAttrGetsPenalty) {
  const Graph host = topo::clique(3);  // no delay attrs at all
  const Graph query = topo::line(2);
  const Problem problem(query, host, kNone);
  const auto cost = service::totalEdgeAttrCost(query, host, "delay", 500.0);
  const auto result = service::enumerateAndOptimize(problem, Algorithm::ECF, {}, cost);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_DOUBLE_EQ(result.bestCost, 500.0);
}

}  // namespace
