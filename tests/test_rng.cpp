#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace {

using netembed::util::deriveSeed;
using netembed::util::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniformInt(42, 42), 42u);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniformInt(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sumSq = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumSq / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved something.
  bool moved = false;
  for (int i = 0; i < 100; ++i) moved = moved || v[i] != i;
  EXPECT_TRUE(moved);
}

TEST(Rng, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));
  EXPECT_NE(deriveSeed(1, 0), deriveSeed(1, 1));
  EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
}

TEST(Rng, WorksWithStdUniformRandomBitGenerator) {
  // Rng satisfies UniformRandomBitGenerator.
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(31);
  EXPECT_LE(Rng::min(), rng());
}

}  // namespace
