// FilterPlanCache keying/invalidation rules and the SharedPlanBuilder
// build-once / hand-over semantics.

#include "service/plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/plan.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::FilterPlan;
using core::SearchOptions;
using core::SharedPlanBuilder;
using service::FilterPlanCache;
using service::planSignature;
using graph::Graph;

// --- signatures ----------------------------------------------------------------

TEST(PlanSignature, IdenticalQueriesShareASignature) {
  const Graph a = topo::ring(5);
  const Graph b = topo::ring(5);
  EXPECT_EQ(planSignature(a, "x", "y", {}), planSignature(b, "x", "y", {}));
}

TEST(PlanSignature, StructureConstraintsAttrsAndPlanOptionsAllSplit) {
  const Graph base = topo::ring(5);
  const std::string ref = planSignature(base, "c", "", {});

  EXPECT_NE(planSignature(topo::ring(6), "c", "", {}), ref);   // structure
  EXPECT_NE(planSignature(topo::line(5), "c", "", {}), ref);   // edges
  EXPECT_NE(planSignature(base, "c2", "", {}), ref);           // edge constraint
  EXPECT_NE(planSignature(base, "c", "n", {}), ref);           // node constraint

  Graph attred = topo::ring(5);
  attred.nodeAttrs(0).set("cpu", 2.0);
  EXPECT_NE(planSignature(attred, "c", "", {}), ref);          // node attrs

  Graph edged = topo::ring(5);
  edged.edgeAttrs(0).set("delay", 3.5);
  EXPECT_NE(planSignature(edged, "c", "", {}), ref);           // edge attrs

  SearchOptions noOrdering;
  noOrdering.staticOrdering = false;
  EXPECT_NE(planSignature(base, "c", "", noOrdering), ref);    // Lemma-1 order

  SearchOptions tinyBudget;
  tinyBudget.maxFilterEntries = 7;
  EXPECT_NE(planSignature(base, "c", "", tinyBudget), ref);    // overflow budget
}

TEST(PlanSignature, SearchOnlyOptionsDoNotSplitTheCache) {
  const Graph q = topo::ring(4);
  SearchOptions a;
  SearchOptions b;
  b.seed = 99;
  b.maxSolutions = 7;
  b.timeout = std::chrono::milliseconds(123);
  b.rootSplitThreads = 4;
  b.storeLimit = 1;
  b.parallelFilterBuild = false;  // affects build speed, not plan content
  EXPECT_EQ(planSignature(q, "c", "", a), planSignature(q, "c", "", b));
}

TEST(PlanSignature, AttrValuesDistinguishExactDoubles) {
  Graph a = topo::ring(4);
  Graph b = topo::ring(4);
  a.edgeAttrs(0).set("delay", 0.1);
  b.edgeAttrs(0).set("delay", 0.1 + 1e-18);  // rounds back to the same double
  EXPECT_EQ(planSignature(a, "", "", {}), planSignature(b, "", "", {}));
  b.edgeAttrs(0).set("delay", 0.1 + 1e-16);
  EXPECT_NE(planSignature(a, "", "", {}), planSignature(b, "", "", {}));
}

// --- cache keying and invalidation ----------------------------------------------

TEST(FilterPlanCache, SameVersionSameSignatureSharesABuilder) {
  FilterPlanCache cache(4);
  const auto a = cache.acquire(1, "sig");
  const auto b = cache.acquire(1, "sig");
  EXPECT_EQ(a, b);
  const auto c = cache.acquire(1, "other");
  EXPECT_NE(a, c);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(FilterPlanCache, VersionBumpDropsEveryEntry) {
  FilterPlanCache cache(4);
  const auto old1 = cache.acquire(1, "sig");
  (void)cache.acquire(1, "sig2");
  const auto fresh = cache.acquire(2, "sig");
  EXPECT_NE(old1, fresh);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.size, 1u);
  // And the new version keeps sharing normally.
  EXPECT_EQ(cache.acquire(2, "sig"), fresh);
}

TEST(FilterPlanCache, StaleVersionGetsPrivateUncachedBuilder) {
  FilterPlanCache cache(4);
  const auto current = cache.acquire(5, "sig");
  const auto stale = cache.acquire(4, "sig");
  EXPECT_NE(current, stale);
  EXPECT_EQ(cache.stats().bypasses, 1u);
  // The stale acquire neither evicted nor replaced the current entry.
  EXPECT_EQ(cache.acquire(5, "sig"), current);
}

TEST(FilterPlanCache, LruEvictionKeepsHotEntries) {
  FilterPlanCache cache(2);
  const auto a = cache.acquire(1, "a");
  (void)cache.acquire(1, "b");
  (void)cache.acquire(1, "a");  // touch a: b becomes the LRU victim
  (void)cache.acquire(1, "c");  // evicts b
  EXPECT_EQ(cache.acquire(1, "a"), a);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto b2 = cache.acquire(1, "b");  // rebuilt as a miss
  EXPECT_NE(b2, nullptr);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(FilterPlanCache, ZeroCapacityDisablesSharing) {
  FilterPlanCache cache(0);
  EXPECT_NE(cache.acquire(1, "sig"), cache.acquire(1, "sig"));
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().bypasses, 2u);
}

// --- SharedPlanBuilder ----------------------------------------------------------

TEST(SharedPlanBuilder, ConcurrentGettersReceiveOnePlan) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const core::Problem problem(query, host);
  SharedPlanBuilder builder;

  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  std::atomic<int> builtHereCount{0};
  std::vector<std::shared_ptr<const FilterPlan>> plans(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const auto acquired = builder.get(problem, {});
      plans[t] = acquired.plan;
      if (acquired.builtHere) builtHereCount.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 1u);
  EXPECT_EQ(builtHereCount.load(), 1);
  for (int t = 1; t < 4; ++t) EXPECT_EQ(plans[t], plans[0]);
  EXPECT_EQ(builder.ready(), plans[0]);
}

TEST(SharedPlanBuilder, OverflowIsStickyForEverySharer) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(12);
  const core::Problem problem(query, host);
  SearchOptions options;
  options.maxFilterEntries = 1;
  SharedPlanBuilder builder;
  EXPECT_THROW((void)builder.get(problem, options), core::FilterOverflow);
  // The failure is recorded: later sharers fail instantly, nobody rebuilds.
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  EXPECT_THROW((void)builder.get(problem, options), core::FilterOverflow);
  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 0u);
  EXPECT_EQ(builder.ready(), nullptr);
}

TEST(SharedPlanBuilder, CancelledBuilderHandsOverToALiveConsumer) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const core::Problem problem(query, host);
  SharedPlanBuilder builder;
  // A consumer cancelled mid-build fails alone...
  EXPECT_THROW((void)builder.get(problem, {}, [] { return true; }),
               core::FilterBuildCancelled);
  EXPECT_EQ(builder.ready(), nullptr);
  // ...and the next live consumer performs the build itself.
  const auto acquired = builder.get(problem, {});
  EXPECT_TRUE(acquired.builtHere);
  ASSERT_NE(acquired.plan, nullptr);
  EXPECT_GT(acquired.plan->filters.totalEntries(), 0u);
}

TEST(SharedPlanBuilder, PreResolvedBuilderNeverBuilds) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const core::Problem problem(query, host);
  const auto plan = FilterPlan::build(problem, {});
  SharedPlanBuilder builder(plan);
  const std::uint64_t buildsBefore = core::filterPlanBuilds();
  const auto acquired = builder.get(problem, {});
  EXPECT_EQ(acquired.plan, plan);
  EXPECT_FALSE(acquired.builtHere);
  EXPECT_EQ(core::filterPlanBuilds() - buildsBefore, 0u);
}

}  // namespace
