// Property-based cross-validation of the four complete engines.
//
// For randomized instances (BRITE-like hosts, sampled connected-subgraph
// queries, delay-window constraints), every complete algorithm must agree on
// the exact number of feasible embeddings, every returned mapping must pass
// the independent verifier, and RWB must find a solution iff one exists.
// This is the strongest correctness evidence in the suite: four independent
// implementations (ECF with filters, randomized ECF, filterless LNS, and the
// naive baseline) disagreeing on any instance fails loudly.

#include <gtest/gtest.h>

#include <set>

#include "baseline/naive.hpp"
#include "core/ecf.hpp"
#include "core/lns.hpp"
#include "core/rwb.hpp"
#include "core/verify.hpp"
#include "topo/brite.hpp"
#include "topo/sample.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::EmbedResult;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using graph::Graph;

struct Instance {
  Graph host;
  Graph query;
  expr::ConstraintSet constraints;
  bool constrained;
};

Instance makeInstance(std::uint64_t seed, bool constrained, bool infeasible) {
  util::Rng rng(seed);
  topo::BriteOptions bo;
  bo.nodes = 24;
  bo.m = 2;
  bo.seed = util::deriveSeed(seed, 1);
  Instance inst{topo::brite(bo), Graph(false), {}, constrained};

  const std::size_t queryNodes = 4 + rng.index(4);  // 4..7
  const std::size_t targetEdges = queryNodes + rng.index(queryNodes);
  auto sub = topo::sampleConnectedSubgraph(inst.host, queryNodes, targetEdges, rng);
  inst.query = std::move(sub.graph);

  if (constrained) {
    topo::widenDelayWindows(inst.query, 0.10);
    if (infeasible) topo::makeInfeasible(inst.query, 0.5, rng);
    inst.constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  }
  return inst;
}

SearchOptions storeAll() {
  SearchOptions o;
  o.storeLimit = 1u << 20;
  return o;
}

class CrossValidation : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, ConstrainedFeasibleInstancesAgree) {
  const Instance inst = makeInstance(GetParam(), /*constrained=*/true,
                                     /*infeasible=*/false);
  const Problem problem(inst.query, inst.host, inst.constraints);

  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  const EmbedResult lns = core::lnsSearch(problem, storeAll());
  const EmbedResult naive = baseline::naiveSearch(problem, storeAll());

  ASSERT_EQ(ecf.outcome, Outcome::Complete);
  ASSERT_EQ(lns.outcome, Outcome::Complete);
  ASSERT_EQ(naive.outcome, Outcome::Complete);

  // The query was cut from the host, so at least one embedding must exist.
  EXPECT_GE(ecf.solutionCount, 1u);
  EXPECT_EQ(ecf.solutionCount, lns.solutionCount);
  EXPECT_EQ(ecf.solutionCount, naive.solutionCount);

  // Identical solution *sets*, not just counts.
  const std::set<core::Mapping> ecfSet(ecf.mappings.begin(), ecf.mappings.end());
  const std::set<core::Mapping> lnsSet(lns.mappings.begin(), lns.mappings.end());
  const std::set<core::Mapping> naiveSet(naive.mappings.begin(), naive.mappings.end());
  EXPECT_EQ(ecfSet, lnsSet);
  EXPECT_EQ(ecfSet, naiveSet);

  for (const core::Mapping& m : ecf.mappings) {
    const auto v = core::verifyMapping(problem, m);
    EXPECT_TRUE(v.ok) << v.reason;
  }

  // RWB must find a solution since one exists.
  const EmbedResult rwb = core::rwbSearch(problem, storeAll());
  ASSERT_TRUE(rwb.feasible());
  EXPECT_TRUE(core::verifyMapping(problem, rwb.mappings[0]).ok);
  EXPECT_TRUE(ecfSet.count(rwb.mappings[0]) > 0);
}

TEST_P(CrossValidation, InfeasibleInstancesAreProvenEverywhere) {
  const Instance inst = makeInstance(GetParam(), /*constrained=*/true,
                                     /*infeasible=*/true);
  const Problem problem(inst.query, inst.host, inst.constraints);

  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  const EmbedResult lns = core::lnsSearch(problem, storeAll());
  const EmbedResult rwb = core::rwbSearch(problem, storeAll());

  EXPECT_TRUE(ecf.provenInfeasible());
  EXPECT_TRUE(lns.provenInfeasible());
  EXPECT_TRUE(rwb.provenInfeasible());
}

TEST_P(CrossValidation, TopologyOnlyCountsAgree) {
  // Small unconstrained instances: pure subgraph isomorphism counting.
  util::Rng rng(GetParam() * 977 + 3);
  topo::BriteOptions bo;
  bo.nodes = 12;
  bo.m = 2;
  bo.seed = util::deriveSeed(GetParam(), 7);
  const Graph host = topo::brite(bo);
  auto sub = topo::sampleConnectedSubgraph(host, 4, 4, rng);
  const Graph& query = sub.graph;
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);

  const EmbedResult ecf = core::ecfSearch(problem, storeAll());
  const EmbedResult lns = core::lnsSearch(problem, storeAll());
  const EmbedResult naive = baseline::naiveSearch(problem, storeAll());
  ASSERT_EQ(ecf.outcome, Outcome::Complete);
  EXPECT_GE(ecf.solutionCount, 1u);
  EXPECT_EQ(ecf.solutionCount, lns.solutionCount);
  EXPECT_EQ(ecf.solutionCount, naive.solutionCount);
}

TEST_P(CrossValidation, OrderingAblationPreservesCounts) {
  const Instance inst = makeInstance(GetParam() + 5000, true, false);
  const Problem problem(inst.query, inst.host, inst.constraints);
  SearchOptions noOrdering = storeAll();
  noOrdering.staticOrdering = false;
  const EmbedResult with = core::ecfSearch(problem, storeAll());
  const EmbedResult without = core::ecfSearch(problem, noOrdering);
  EXPECT_EQ(with.solutionCount, without.solutionCount);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
