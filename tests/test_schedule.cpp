#include "service/schedule.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed;
using graph::Graph;
using service::EmbeddingScheduler;

Graph hostWithCapacity(double capacity) {
  Graph g = topo::clique(4);
  topo::setAllNodes(g, "capacity", capacity);
  return g;
}

Graph demandQuery(std::size_t nodes, double demand) {
  Graph q = nodes >= 3 ? topo::ring(nodes) : topo::line(nodes);
  topo::setAllNodes(q, "demand", demand);
  return q;
}

TEST(Schedule, PlacesImmediatelyWhenCapacityFree) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  const auto placement = scheduler.schedule(demandQuery(3, 1.0), "", 5, 10);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->start, 0u);
  EXPECT_EQ(placement->duration, 5u);
  EXPECT_EQ(scheduler.activePlacements(), 1u);
}

TEST(Schedule, SecondJobWaitsForCapacity) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  // First job occupies 3 of 4 nodes for slots [0, 5).
  const auto first = scheduler.schedule(demandQuery(3, 1.0), "", 5, 10);
  ASSERT_TRUE(first.has_value());
  // Second 3-node job cannot fit concurrently (only 1 node free), so it must
  // start at slot 5.
  const auto second = scheduler.schedule(demandQuery(3, 1.0), "", 5, 20);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->start, 5u);
}

TEST(Schedule, ConcurrentJobsFitWhenCapacityAllows) {
  EmbeddingScheduler scheduler(hostWithCapacity(2.0));  // two units per node
  const auto first = scheduler.schedule(demandQuery(3, 1.0), "", 5, 10);
  const auto second = scheduler.schedule(demandQuery(3, 1.0), "", 5, 10);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(second->start, 0u);
}

TEST(Schedule, HorizonExhaustedReturnsNullopt) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  (void)scheduler.schedule(demandQuery(3, 1.0), "", 100, 10);
  // Horizon 3 < first free slot 100.
  const auto failed = scheduler.schedule(demandQuery(3, 1.0), "", 5, 3);
  EXPECT_FALSE(failed.has_value());
}

TEST(Schedule, CancelFreesCapacity) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  const auto first = scheduler.schedule(demandQuery(3, 1.0), "", 50, 10);
  ASSERT_TRUE(first.has_value());
  scheduler.cancel(first->id);
  EXPECT_EQ(scheduler.activePlacements(), 0u);
  const auto second = scheduler.schedule(demandQuery(3, 1.0), "", 5, 10);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->start, 0u);
}

TEST(Schedule, CancelUnknownThrows) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  EXPECT_THROW(scheduler.cancel(42), std::invalid_argument);
}

TEST(Schedule, ResidualCapacityAccounting) {
  EmbeddingScheduler scheduler(hostWithCapacity(3.0));
  const auto p = scheduler.schedule(demandQuery(2, 2.0), "", 4, 10);
  ASSERT_TRUE(p.has_value());
  const graph::NodeId used = p->mapping[0];
  EXPECT_DOUBLE_EQ(scheduler.residualCapacity(used, 0, 4), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.residualCapacity(used, 4, 4), 3.0);  // after it ends
  EXPECT_DOUBLE_EQ(scheduler.residualCapacity(used, 2, 4), 1.0);  // overlap
}

TEST(Schedule, EdgeConstraintStillApplies) {
  Graph host = topo::clique(4);
  topo::setAllNodes(host, "capacity", 1.0);
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set("delay", e % 2 == 0 ? 5.0 : 50.0);
  }
  EmbeddingScheduler scheduler(std::move(host));
  Graph query = topo::line(2);
  topo::setAllNodes(query, "demand", 1.0);
  topo::setAllEdges(query, "maxDelay", 10.0);
  const auto p =
      scheduler.schedule(query, "rEdge.delay <= vEdge.maxDelay", 5, 10);
  ASSERT_TRUE(p.has_value());
  const auto he =
      scheduler.host().findEdge(p->mapping[0], p->mapping[1]);
  ASSERT_TRUE(he.has_value());
  EXPECT_LE(scheduler.host().edgeAttrs(*he).at("delay").asDouble(), 10.0);
}

TEST(Schedule, ZeroDurationRejected) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  EXPECT_THROW((void)scheduler.schedule(demandQuery(2, 1.0), "", 0, 10),
               std::invalid_argument);
}

TEST(Schedule, EarliestParameterSkipsSlots) {
  EmbeddingScheduler scheduler(hostWithCapacity(1.0));
  const auto p = scheduler.schedule(demandQuery(3, 1.0), "", 5, 20, 7);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE(p->start, 7u);
}

}  // namespace
