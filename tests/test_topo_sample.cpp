#include "topo/sample.hpp"

#include <gtest/gtest.h>

#include "core/ecf.hpp"
#include "core/problem.hpp"
#include "graph/algorithms.hpp"
#include "topo/brite.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using graph::Graph;

Graph testHost() {
  topo::BriteOptions o;
  o.nodes = 60;
  o.m = 2;
  o.seed = 17;
  return topo::brite(o);
}

TEST(Sample, ExactNodeCountAndConnected) {
  const Graph host = testHost();
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto sub = topo::sampleConnectedSubgraph(host, 8, 10, rng);
    EXPECT_EQ(sub.graph.nodeCount(), 8u);
    EXPECT_TRUE(graph::isConnected(sub.graph));
  }
}

TEST(Sample, EdgeTargetRespectedWhenPossible) {
  const Graph host = testHost();
  util::Rng rng(2);
  const auto sub = topo::sampleConnectedSubgraph(host, 10, 11, rng);
  // Induced count may be below target; otherwise exactly the target.
  EXPECT_GE(sub.graph.edgeCount(), 9u);  // spanning tree minimum
  EXPECT_LE(sub.graph.edgeCount(), 11u);
}

TEST(Sample, TreeMinimumEnforced) {
  const Graph host = testHost();
  util::Rng rng(3);
  const auto sub = topo::sampleConnectedSubgraph(host, 6, 0, rng);  // under-ask
  EXPECT_EQ(sub.graph.edgeCount(), 5u);  // clamped to spanning tree
  EXPECT_TRUE(graph::isConnected(sub.graph));
}

TEST(Sample, AttributesAreCopied) {
  const Graph host = testHost();
  util::Rng rng(4);
  const auto sub = topo::sampleConnectedSubgraph(host, 5, 8, rng);
  for (graph::EdgeId e = 0; e < sub.graph.edgeCount(); ++e) {
    const graph::EdgeId orig = sub.originalEdge[e];
    EXPECT_EQ(sub.graph.edgeAttrs(e), host.edgeAttrs(orig));
  }
  for (graph::NodeId n = 0; n < sub.graph.nodeCount(); ++n) {
    EXPECT_EQ(sub.graph.nodeAttrs(n), host.nodeAttrs(sub.originalNode[n]));
  }
}

TEST(Sample, TooLargeThrows) {
  const Graph host = topo::ring(5);
  util::Rng rng(5);
  EXPECT_THROW((void)topo::sampleConnectedSubgraph(host, 10, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)topo::sampleConnectedSubgraph(host, 0, 0, rng),
               std::invalid_argument);
}

TEST(Sample, SmallComponentEventuallyFails) {
  Graph host(false);  // two isolated edges: no connected 3-subgraph
  for (int i = 0; i < 4; ++i) host.addNode();
  host.addEdge(0, 1);
  host.addEdge(2, 3);
  util::Rng rng(6);
  EXPECT_THROW((void)topo::sampleConnectedSubgraph(host, 3, 3, rng),
               std::runtime_error);
}

TEST(Sample, WidenDelayWindowsMath) {
  Graph q(false);
  q.addNode();
  q.addNode();
  const auto e = q.addEdge(0, 1);
  q.edgeAttrs(e).set("minDelay", 100.0);
  q.edgeAttrs(e).set("maxDelay", 200.0);
  topo::widenDelayWindows(q, 0.10);
  EXPECT_DOUBLE_EQ(q.edgeAttrs(e).at("minDelay").asDouble(), 90.0);
  EXPECT_DOUBLE_EQ(q.edgeAttrs(e).at("maxDelay").asDouble(), 220.0);
}

TEST(Sample, WidenFallsBackToDelayAttr) {
  Graph q(false);
  q.addNode();
  q.addNode();
  const auto e = q.addEdge(0, 1);
  q.edgeAttrs(e).set("delay", 50.0);
  topo::widenDelayWindows(q, 0.2);
  EXPECT_DOUBLE_EQ(q.edgeAttrs(e).at("minDelay").asDouble(), 40.0);
  EXPECT_DOUBLE_EQ(q.edgeAttrs(e).at("maxDelay").asDouble(), 60.0);
}

TEST(Sample, WidenSkipsEdgesWithoutDelayInfo) {
  Graph q(false);
  q.addNode();
  q.addNode();
  q.addEdge(0, 1);
  topo::widenDelayWindows(q, 0.2);  // must not throw
  EXPECT_FALSE(q.edgeAttrs(0).has("minDelay"));
}

TEST(Sample, WidenRejectsNegativeTolerance) {
  Graph q = topo::ring(3);
  EXPECT_THROW(topo::widenDelayWindows(q, -0.1), std::invalid_argument);
}

TEST(Sample, MakeInfeasibleTouchesRequestedFraction) {
  Graph q = topo::ring(8);
  topo::setAllEdges(q, "minDelay", 50.0);
  topo::setAllEdges(q, "maxDelay", 100.0);
  util::Rng rng(7);
  topo::makeInfeasible(q, 0.5, rng);
  int impossible = 0;
  for (graph::EdgeId e = 0; e < q.edgeCount(); ++e) {
    if (q.edgeAttrs(e).at("maxDelay").asDouble() < 0.001) ++impossible;
  }
  EXPECT_EQ(impossible, 4);
}

TEST(Sample, MakeInfeasibleValidatesFraction) {
  Graph q = topo::ring(4);
  util::Rng rng(8);
  EXPECT_THROW(topo::makeInfeasible(q, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(topo::makeInfeasible(q, 1.5, rng), std::invalid_argument);
}

TEST(Sample, SampledQueryIsFeasibleByConstruction) {
  const Graph host = testHost();
  util::Rng rng(9);
  auto sub = topo::sampleConnectedSubgraph(host, 6, 7, rng);
  topo::widenDelayWindows(sub.graph, 0.10);
  const auto constraints = expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint());
  const auto result = core::ecfSearch(core::Problem(sub.graph, host, constraints));
  EXPECT_GE(result.solutionCount, 1u);
}

TEST(Sample, CliqueQueryShape) {
  const Graph q = topo::cliqueQuery(5, 10.0, 100.0);
  EXPECT_EQ(q.nodeCount(), 5u);
  EXPECT_EQ(q.edgeCount(), 10u);
  for (graph::EdgeId e = 0; e < q.edgeCount(); ++e) {
    EXPECT_DOUBLE_EQ(q.edgeAttrs(e).at("minDelay").asDouble(), 10.0);
    EXPECT_DOUBLE_EQ(q.edgeAttrs(e).at("maxDelay").asDouble(), 100.0);
  }
}

TEST(Sample, ConstraintStringsParse) {
  EXPECT_NO_THROW((void)expr::ConstraintSet::edgeOnly(topo::delayWindowConstraint()));
  EXPECT_NO_THROW((void)expr::ConstraintSet::edgeOnly(topo::avgDelayWindowConstraint()));
}

}  // namespace
