#include <gtest/gtest.h>

#include "graph/attr_map.hpp"
#include "graph/attr_value.hpp"

namespace {

using netembed::graph::attrId;
using netembed::graph::AttrMap;
using netembed::graph::attrName;
using netembed::graph::AttrType;
using netembed::graph::AttrValue;
using netembed::graph::findAttrId;

TEST(AttrValue, DefaultIsUndefined) {
  AttrValue v;
  EXPECT_EQ(v.type(), AttrType::Undefined);
  EXPECT_FALSE(v.isDefined());
  EXPECT_FALSE(v.isNumeric());
}

TEST(AttrValue, TypedConstruction) {
  EXPECT_EQ(AttrValue(true).type(), AttrType::Bool);
  EXPECT_EQ(AttrValue(std::int64_t{7}).type(), AttrType::Int);
  EXPECT_EQ(AttrValue(7).type(), AttrType::Int);
  EXPECT_EQ(AttrValue(2.5).type(), AttrType::Double);
  EXPECT_EQ(AttrValue("abc").type(), AttrType::String);
  EXPECT_EQ(AttrValue(std::string("abc")).type(), AttrType::String);
}

TEST(AttrValue, NumericWidening) {
  EXPECT_DOUBLE_EQ(AttrValue(7).asDouble(), 7.0);
  EXPECT_EQ(AttrValue(2.9).asInt(), 2);
  EXPECT_DOUBLE_EQ(AttrValue(true).asDouble(), 1.0);
}

TEST(AttrValue, WrongTypeAccessThrows) {
  EXPECT_THROW((void)AttrValue("x").asDouble(), std::runtime_error);
  EXPECT_THROW((void)AttrValue(1.0).asString(), std::runtime_error);
  EXPECT_THROW((void)AttrValue(1.0).asBool(), std::runtime_error);
  EXPECT_THROW((void)AttrValue().asDouble(), std::runtime_error);
}

TEST(AttrValue, ToStringRendering) {
  EXPECT_EQ(AttrValue(true).toString(), "true");
  EXPECT_EQ(AttrValue(false).toString(), "false");
  EXPECT_EQ(AttrValue(42).toString(), "42");
  EXPECT_EQ(AttrValue("hi").toString(), "hi");
  EXPECT_EQ(AttrValue().toString(), "");
  EXPECT_EQ(AttrValue(1.5).toString(), "1.5");
}

TEST(AttrValue, ParseAsRoundTrips) {
  EXPECT_EQ(AttrValue::parseAs(AttrType::Bool, "true"), AttrValue(true));
  EXPECT_EQ(AttrValue::parseAs(AttrType::Bool, "0"), AttrValue(false));
  EXPECT_EQ(AttrValue::parseAs(AttrType::Int, "-17"), AttrValue(-17));
  EXPECT_EQ(AttrValue::parseAs(AttrType::Double, "2.5e1"), AttrValue(25.0));
  EXPECT_EQ(AttrValue::parseAs(AttrType::String, "s"), AttrValue("s"));
}

TEST(AttrValue, ParseAsRejectsGarbage) {
  EXPECT_THROW((void)AttrValue::parseAs(AttrType::Bool, "maybe"), std::runtime_error);
  EXPECT_THROW((void)AttrValue::parseAs(AttrType::Int, "1.5"), std::runtime_error);
  EXPECT_THROW((void)AttrValue::parseAs(AttrType::Int, "x"), std::runtime_error);
  EXPECT_THROW((void)AttrValue::parseAs(AttrType::Double, "1.5x"), std::runtime_error);
  EXPECT_THROW((void)AttrValue::parseAs(AttrType::Double, ""), std::runtime_error);
}

TEST(AttrValue, EqualityAcrossNumericTypes) {
  EXPECT_EQ(AttrValue(2), AttrValue(2.0));
  EXPECT_NE(AttrValue(2), AttrValue(3));
  EXPECT_NE(AttrValue("2"), AttrValue(2));
  EXPECT_EQ(AttrValue(), AttrValue());
}

TEST(AttrNames, InterningIsStable) {
  const auto id1 = attrId("test_intern_alpha");
  const auto id2 = attrId("test_intern_alpha");
  const auto id3 = attrId("test_intern_beta");
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, id3);
  EXPECT_EQ(attrName(id1), "test_intern_alpha");
}

TEST(AttrNames, FindWithoutInterning) {
  EXPECT_FALSE(findAttrId("never_interned_xyz_123").has_value());
  (void)attrId("now_interned_xyz");
  EXPECT_TRUE(findAttrId("now_interned_xyz").has_value());
}

TEST(AttrMap, SetGetOverwrite) {
  AttrMap m;
  EXPECT_TRUE(m.empty());
  m.set("delay", 10.0);
  m.set("os", "linux");
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.get("delay"), nullptr);
  EXPECT_DOUBLE_EQ(m.get("delay")->asDouble(), 10.0);
  m.set("delay", 20.0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.get("delay")->asDouble(), 20.0);
}

TEST(AttrMap, MissingReturnsNull) {
  AttrMap m;
  EXPECT_EQ(m.get("nothing_here"), nullptr);
  EXPECT_FALSE(m.has("nothing_here"));
  EXPECT_THROW((void)m.at("nothing_here"), std::out_of_range);
}

TEST(AttrMap, GetDoubleFallback) {
  AttrMap m;
  m.set("num", 3.5);
  m.set("str", "x");
  EXPECT_DOUBLE_EQ(m.getDouble("num", -1.0), 3.5);
  EXPECT_DOUBLE_EQ(m.getDouble("str", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(m.getDouble("absent", -1.0), -1.0);
}

TEST(AttrMap, EraseRemoves) {
  AttrMap m;
  m.set("a", 1);
  m.set("b", 2);
  EXPECT_TRUE(m.erase(attrId("a")));
  EXPECT_FALSE(m.erase(attrId("a")));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.has("a"));
  EXPECT_TRUE(m.has("b"));
}

TEST(AttrMap, IterationIsSortedById) {
  AttrMap m;
  m.set("zzz_last", 1);
  m.set("aaa_first", 2);
  netembed::graph::AttrId prev = 0;
  bool first = true;
  for (const auto& [id, value] : m) {
    if (!first) EXPECT_GT(id, prev);
    prev = id;
    first = false;
  }
}

TEST(AttrMap, EqualityComparesContents) {
  AttrMap a, b;
  a.set("k", 1.0);
  b.set("k", 1.0);
  EXPECT_EQ(a, b);
  b.set("k", 2.0);
  EXPECT_FALSE(a == b);
}

}  // namespace
