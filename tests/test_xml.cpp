#include "xml/xml.hpp"

#include <gtest/gtest.h>

namespace {

namespace xml = netembed::xml;

TEST(Xml, MinimalElement) {
  const auto root = xml::parse("<a/>");
  EXPECT_EQ(root.name, "a");
  EXPECT_TRUE(root.children.empty());
  EXPECT_TRUE(root.attributes.empty());
}

TEST(Xml, AttributesBothQuoteStyles) {
  const auto root = xml::parse(R"(<a x="1" y='two'/>)");
  ASSERT_EQ(root.attributes.size(), 2u);
  EXPECT_EQ(*root.attr("x"), "1");
  EXPECT_EQ(*root.attr("y"), "two");
  EXPECT_EQ(root.attr("z"), nullptr);
}

TEST(Xml, RequiredAttrThrowsWhenAbsent) {
  const auto root = xml::parse("<a x='1'/>");
  EXPECT_EQ(root.requiredAttr("x"), "1");
  EXPECT_THROW((void)root.requiredAttr("missing"), std::runtime_error);
}

TEST(Xml, NestedChildrenAndText) {
  const auto root = xml::parse("<a><b>hello</b><c/><b>world</b></a>");
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0].text, "hello");
  ASSERT_NE(root.child("c"), nullptr);
  const auto bs = root.childrenNamed("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[1]->text, "world");
}

TEST(Xml, EntityDecoding) {
  const auto root = xml::parse("<a t='&lt;&gt;&amp;&quot;&apos;'>&#65;&#x42;</a>");
  EXPECT_EQ(*root.attr("t"), "<>&\"'");
  EXPECT_EQ(root.text, "AB");
}

TEST(Xml, CommentsAndPIsAreSkipped) {
  const auto root = xml::parse(
      "<?xml version='1.0'?><!-- hi --><a><!-- inner --><b/><?pi data?></a>");
  EXPECT_EQ(root.name, "a");
  EXPECT_EQ(root.children.size(), 1u);
}

TEST(Xml, CdataIsVerbatim) {
  const auto root = xml::parse("<a><![CDATA[<not&parsed>]]></a>");
  EXPECT_EQ(root.text, "<not&parsed>");
}

TEST(Xml, DoctypeSkipped) {
  const auto root = xml::parse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>");
  EXPECT_EQ(root.name, "a");
}

TEST(Xml, MismatchedTagsRejected) {
  EXPECT_THROW((void)xml::parse("<a></b>"), xml::ParseError);
}

TEST(Xml, UnterminatedConstructsRejected) {
  EXPECT_THROW((void)xml::parse("<a>"), xml::ParseError);
  EXPECT_THROW((void)xml::parse("<a attr='x/>"), xml::ParseError);
  EXPECT_THROW((void)xml::parse("<!-- never closed"), xml::ParseError);
  EXPECT_THROW((void)xml::parse("<a><![CDATA[oops</a>"), xml::ParseError);
}

TEST(Xml, TrailingContentRejected) {
  EXPECT_THROW((void)xml::parse("<a/><b/>"), xml::ParseError);
}

TEST(Xml, UnknownEntityRejected) {
  EXPECT_THROW((void)xml::parse("<a>&nope;</a>"), xml::ParseError);
}

TEST(Xml, ErrorCarriesPosition) {
  try {
    (void)xml::parse("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const xml::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 1u);
    EXPECT_NE(std::string(e.what()).find("mismatched"), std::string::npos);
  }
}

TEST(Xml, EscapeCoversSpecials) {
  EXPECT_EQ(xml::escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(xml::escape("plain"), "plain");
}

TEST(Xml, SerializeParseRoundTrip) {
  xml::Element root;
  root.name = "graph";
  root.attributes.emplace_back("id", "G<1>");
  xml::Element child;
  child.name = "node";
  child.text = "text & more";
  root.children.push_back(child);

  const std::string text = xml::serialize(root);
  const auto reparsed = xml::parse(text);
  EXPECT_EQ(reparsed.name, "graph");
  EXPECT_EQ(*reparsed.attr("id"), "G<1>");
  ASSERT_EQ(reparsed.children.size(), 1u);
  EXPECT_EQ(reparsed.children[0].text, "text & more");
}

TEST(Xml, WhitespaceAroundTokensTolerated) {
  const auto root = xml::parse("  \n <a  x = '1' ><b />\n</a>  \n");
  EXPECT_EQ(root.name, "a");
  EXPECT_EQ(*root.attr("x"), "1");
  EXPECT_EQ(root.children.size(), 1u);
}

}  // namespace
