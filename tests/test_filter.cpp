#include "core/filter.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using core::BitsetMode;
using core::FilterMatrix;
using core::Problem;
using core::SearchOptions;
using core::SearchStats;
using graph::Graph;
using graph::NodeId;

/// Host: path r0 -w=1- r1 -w=2- r2; query: single edge q0 -w- q1.
struct PathFixture {
  Graph host{false};
  Graph query{false};
  expr::ConstraintSet constraints;

  explicit PathFixture(double queryW) {
    for (int i = 0; i < 3; ++i) host.addNode();
    host.edgeAttrs(host.addEdge(0, 1)).set("w", 1.0);
    host.edgeAttrs(host.addEdge(1, 2)).set("w", 2.0);
    query.addNode();
    query.addNode();
    query.edgeAttrs(query.addEdge(0, 1)).set("w", queryW);
    constraints = expr::ConstraintSet::edgeOnly("rEdge.w == vEdge.w");
  }
};

std::vector<NodeId> toVec(std::span<const NodeId> s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

TEST(Filter, CandidatesMatchConstraint) {
  PathFixture f(1.0);
  const Problem problem(f.query, f.host, f.constraints);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);

  // q0 has one slot (towards q1). With q0 -> r0, the only matching host edge
  // of weight 1 leads to r1.
  ASSERT_EQ(fm.slots(0).size(), 1u);
  EXPECT_EQ(toVec(fm.candidates(0, 0, 0)), (std::vector<NodeId>{1}));
  // With q0 -> r1, the weight-1 edge leads back to r0.
  EXPECT_EQ(toVec(fm.candidates(0, 0, 1)), (std::vector<NodeId>{0}));
  // With q0 -> r2, only the weight-2 edge exists: no candidates.
  EXPECT_TRUE(fm.candidates(0, 0, 2).empty());

  // Viability (strengthened eq. 1): r2 has no supporting edge for either
  // query node.
  EXPECT_EQ(toVec(fm.viable(0)), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(toVec(fm.viable(1)), (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(fm.isViable(0, 0));
  EXPECT_FALSE(fm.isViable(0, 2));
}

TEST(Filter, NoMatchesYieldsEmptyViability) {
  PathFixture f(99.0);  // no host edge has weight 99
  const Problem problem(f.query, f.host, f.constraints);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  EXPECT_TRUE(fm.viable(0).empty());
  EXPECT_TRUE(fm.viable(1).empty());
  EXPECT_EQ(fm.totalEntries(), 0u);
}

TEST(Filter, EntriesCountBothDirections) {
  PathFixture f(2.0);
  const Problem problem(f.query, f.host, f.constraints);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  // One matching undirected host edge, stored from both endpoints in each of
  // the two slots (q0's and q1's): 2 slots * 2 orientations = 4 entries.
  EXPECT_EQ(fm.totalEntries(), 4u);
  EXPECT_EQ(stats.filterEntries, 4u);
  EXPECT_GT(stats.constraintEvals, 0u);
}

TEST(Filter, DegreePruningRemovesSmallHosts) {
  // Query star needs a degree-3 hub; host path has max degree 2.
  const Graph query = topo::star(3);
  Graph host(false);
  for (int i = 0; i < 5; ++i) host.addNode();
  for (int i = 0; i < 4; ++i) host.addEdge(i, i + 1);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  EXPECT_TRUE(fm.viable(0).empty());  // hub has no viable host
}

TEST(Filter, TopologyOnlyCliqueHostIsUnpruned) {
  const Graph query = topo::ring(3);
  const Graph host = topo::clique(5);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(fm.viable(v).size(), 5u);
  // Each slot cell holds the 4 other host nodes.
  EXPECT_EQ(fm.candidates(0, 0, 2).size(), 4u);
}

TEST(Filter, DirectedOrientationRespected) {
  Graph host(true);
  for (int i = 0; i < 3; ++i) host.addNode();
  host.addEdge(0, 1);
  host.addEdge(1, 2);
  Graph query(true);
  query.addNode();
  query.addNode();
  query.addEdge(0, 1);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  // q0 (out-slot): from r0 can go to r1; from r2 nowhere.
  EXPECT_EQ(toVec(fm.candidates(0, 0, 0)), (std::vector<NodeId>{1}));
  EXPECT_TRUE(fm.candidates(0, 0, 2).empty());
  // q1 (in-slot): from r1, predecessor r0; a directed host edge never runs
  // backwards.
  ASSERT_EQ(fm.slots(1).size(), 1u);
  EXPECT_FALSE(fm.slots(1)[0].outgoing);
  EXPECT_EQ(toVec(fm.candidates(1, 0, 1)), (std::vector<NodeId>{0}));
}

TEST(Filter, ConstrainersAreReverseOfSlots) {
  const Graph query = topo::star(2);  // hub 0, leaves 1, 2
  const Graph host = topo::clique(4);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  // Leaf 1 is constrained by exactly one slot, owned by the hub.
  ASSERT_EQ(fm.constrainersOf(1).size(), 1u);
  EXPECT_EQ(fm.constrainersOf(1)[0].owner, 0u);
  // The hub is constrained by both leaves.
  EXPECT_EQ(fm.constrainersOf(0).size(), 2u);
}

TEST(Filter, OverflowGuardThrows) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(12);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchOptions options;
  options.maxFilterEntries = 10;  // absurdly small budget
  SearchStats stats;
  EXPECT_THROW((void)FilterMatrix::build(problem, options, stats), core::FilterOverflow);
}

TEST(Filter, SerialAndParallelBuildsAgree) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchOptions serial;
  serial.parallelFilterBuild = false;
  SearchOptions parallel;
  parallel.parallelFilterBuild = true;
  SearchStats s1, s2;
  const FilterMatrix a = FilterMatrix::build(problem, serial, s1);
  const FilterMatrix b = FilterMatrix::build(problem, parallel, s2);
  EXPECT_EQ(a.totalEntries(), b.totalEntries());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(toVec(a.viable(v)), toVec(b.viable(v)));
    for (std::uint32_t s = 0; s < a.slots(v).size(); ++s) {
      for (NodeId r = 0; r < 8; ++r) {
        EXPECT_EQ(toVec(a.candidates(v, s, r)), toVec(b.candidates(v, s, r)));
      }
    }
  }
}

// --- dual CSR/bitset representation -----------------------------------------

Graph randomConnected(std::size_t n, std::size_t extraEdges, bool directed,
                      util::Rng& rng) {
  Graph g(directed);
  for (std::size_t i = 0; i < n; ++i) g.addNode();
  for (NodeId i = 1; i < n; ++i) {
    const auto j = static_cast<NodeId>(rng.index(i));
    if (directed && rng.bernoulli(0.5)) {
      g.addEdge(i, j);
    } else {
      g.addEdge(j, i);
    }
  }
  for (std::size_t k = 0; k < extraEdges; ++k) {
    const auto u = static_cast<NodeId>(rng.index(n));
    const auto v = static_cast<NodeId>(rng.index(n));
    if (u == v || g.findEdge(u, v)) continue;
    g.addEdge(u, v);
  }
  return g;
}

const expr::ConstraintSet kTopologyOnly;

SearchOptions withMode(BitsetMode mode) {
  SearchOptions o;
  o.bitsetMode = mode;
  return o;
}

TEST(FilterBitset, RowsMirrorCsrCellsExactly) {
  // Force mode on randomized instances: every (owner, slot, r) bit row must
  // contain exactly the sorted CSR list, and viableBits must mirror viable().
  for (const bool directed : {false, true}) {
    util::Rng rng(directed ? 5 : 6);
    const Graph query = randomConnected(5, 4, directed, rng);
    const Graph host = randomConnected(14, 30, directed, rng);
    const Problem problem(query, host, kTopologyOnly);
    SearchStats stats;
    const FilterMatrix fm =
        FilterMatrix::build(problem, withMode(BitsetMode::Force), stats);
    for (NodeId v = 0; v < query.nodeCount(); ++v) {
      std::vector<NodeId> viaBits;
      util::forEachSetBit(fm.viableBits(v), [&](std::size_t r) {
        viaBits.push_back(static_cast<NodeId>(r));
      });
      EXPECT_EQ(viaBits, toVec(fm.viable(v))) << "v=" << v;
      for (std::uint32_t s = 0; s < fm.slots(v).size(); ++s) {
        ASSERT_TRUE(fm.hasCandidateBits(v, s));
        for (NodeId r = 0; r < host.nodeCount(); ++r) {
          std::vector<NodeId> bits;
          util::forEachSetBit(fm.candidateBits(v, s, r), [&](std::size_t c) {
            bits.push_back(static_cast<NodeId>(c));
          });
          EXPECT_EQ(bits, toVec(fm.candidates(v, s, r)))
              << "v=" << v << " s=" << s << " r=" << r << " directed=" << directed;
        }
      }
    }
  }
}

TEST(FilterBitset, ModesProduceIdenticalCsrContent) {
  util::Rng rng(17);
  const Graph query = randomConnected(5, 4, false, rng);
  const Graph host = randomConnected(12, 24, false, rng);
  const Problem problem(query, host, kTopologyOnly);
  SearchStats s1, s2, s3;
  const FilterMatrix off = FilterMatrix::build(problem, withMode(BitsetMode::Off), s1);
  const FilterMatrix autoFm =
      FilterMatrix::build(problem, withMode(BitsetMode::Auto), s2);
  const FilterMatrix force =
      FilterMatrix::build(problem, withMode(BitsetMode::Force), s3);
  EXPECT_EQ(off.totalEntries(), force.totalEntries());
  for (NodeId v = 0; v < query.nodeCount(); ++v) {
    EXPECT_EQ(toVec(off.viable(v)), toVec(force.viable(v)));
    EXPECT_EQ(toVec(off.viable(v)), toVec(autoFm.viable(v)));
    for (std::uint32_t s = 0; s < off.slots(v).size(); ++s) {
      EXPECT_FALSE(off.hasCandidateBits(v, s));
      for (NodeId r = 0; r < host.nodeCount(); ++r) {
        EXPECT_EQ(toVec(off.candidates(v, s, r)), toVec(force.candidates(v, s, r)));
        EXPECT_EQ(toVec(off.candidates(v, s, r)), toVec(autoFm.candidates(v, s, r)));
      }
    }
  }
}

TEST(FilterBitset, AutoGivesSmallHostsRowsUnconditionally) {
  // 5-node host: rows are one word; the density heuristic always takes them.
  const Graph query = topo::ring(3);
  const Graph host = topo::clique(5);
  const Problem problem(query, host, kTopologyOnly);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, withMode(BitsetMode::Auto), stats);
  for (NodeId v = 0; v < 3; ++v) {
    for (std::uint32_t s = 0; s < fm.slots(v).size(); ++s) {
      EXPECT_TRUE(fm.hasCandidateBits(v, s));
    }
  }
  EXPECT_EQ(fm.hostWords(), 1u);
}

TEST(FilterBitset, OffNeverAllocatesRows) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(10);
  const Problem problem(query, host, kTopologyOnly);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, withMode(BitsetMode::Off), stats);
  for (NodeId v = 0; v < 4; ++v) {
    for (std::uint32_t s = 0; s < fm.slots(v).size(); ++s) {
      EXPECT_FALSE(fm.hasCandidateBits(v, s));
    }
  }
  // The viability bit rows are representation-independent and always built.
  EXPECT_TRUE(fm.isViable(0, 0));
}

TEST(Filter, NodeViabilityStageIsCancellable) {
  // A query with no edges never enters the stage-1 sweep: only the O(NQ*NR)
  // node-constraint stage can observe the cancel. It must.
  Graph query(false);
  for (int i = 0; i < 4; ++i) query.nodeAttrs(query.addNode()).set("cap", 1.0);
  Graph host = topo::clique(8);
  topo::setAllNodes(host, "cap", 2.0);
  const expr::ConstraintSet constraints =
      expr::ConstraintSet::parse("", "rNode.cap >= vNode.cap");
  const Problem problem(query, host, constraints);
  SearchStats stats;
  EXPECT_THROW(
      (void)FilterMatrix::build(problem, {}, stats, [] { return true; }),
      core::FilterBuildCancelled);
}

TEST(Filter, InvalidProblemRejected) {
  const Graph query = topo::ring(5);
  const Graph host = topo::clique(3);  // smaller than the query
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  EXPECT_THROW((void)FilterMatrix::build(problem, {}, stats), std::invalid_argument);
}

}  // namespace
