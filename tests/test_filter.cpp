#include "core/filter.hpp"

#include <gtest/gtest.h>

#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::FilterMatrix;
using core::Problem;
using core::SearchOptions;
using core::SearchStats;
using graph::Graph;
using graph::NodeId;

/// Host: path r0 -w=1- r1 -w=2- r2; query: single edge q0 -w- q1.
struct PathFixture {
  Graph host{false};
  Graph query{false};
  expr::ConstraintSet constraints;

  explicit PathFixture(double queryW) {
    for (int i = 0; i < 3; ++i) host.addNode();
    host.edgeAttrs(host.addEdge(0, 1)).set("w", 1.0);
    host.edgeAttrs(host.addEdge(1, 2)).set("w", 2.0);
    query.addNode();
    query.addNode();
    query.edgeAttrs(query.addEdge(0, 1)).set("w", queryW);
    constraints = expr::ConstraintSet::edgeOnly("rEdge.w == vEdge.w");
  }
};

std::vector<NodeId> toVec(std::span<const NodeId> s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

TEST(Filter, CandidatesMatchConstraint) {
  PathFixture f(1.0);
  const Problem problem(f.query, f.host, f.constraints);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);

  // q0 has one slot (towards q1). With q0 -> r0, the only matching host edge
  // of weight 1 leads to r1.
  ASSERT_EQ(fm.slots(0).size(), 1u);
  EXPECT_EQ(toVec(fm.candidates(0, 0, 0)), (std::vector<NodeId>{1}));
  // With q0 -> r1, the weight-1 edge leads back to r0.
  EXPECT_EQ(toVec(fm.candidates(0, 0, 1)), (std::vector<NodeId>{0}));
  // With q0 -> r2, only the weight-2 edge exists: no candidates.
  EXPECT_TRUE(fm.candidates(0, 0, 2).empty());

  // Viability (strengthened eq. 1): r2 has no supporting edge for either
  // query node.
  EXPECT_EQ(toVec(fm.viable(0)), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(toVec(fm.viable(1)), (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(fm.isViable(0, 0));
  EXPECT_FALSE(fm.isViable(0, 2));
}

TEST(Filter, NoMatchesYieldsEmptyViability) {
  PathFixture f(99.0);  // no host edge has weight 99
  const Problem problem(f.query, f.host, f.constraints);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  EXPECT_TRUE(fm.viable(0).empty());
  EXPECT_TRUE(fm.viable(1).empty());
  EXPECT_EQ(fm.totalEntries(), 0u);
}

TEST(Filter, EntriesCountBothDirections) {
  PathFixture f(2.0);
  const Problem problem(f.query, f.host, f.constraints);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  // One matching undirected host edge, stored from both endpoints in each of
  // the two slots (q0's and q1's): 2 slots * 2 orientations = 4 entries.
  EXPECT_EQ(fm.totalEntries(), 4u);
  EXPECT_EQ(stats.filterEntries, 4u);
  EXPECT_GT(stats.constraintEvals, 0u);
}

TEST(Filter, DegreePruningRemovesSmallHosts) {
  // Query star needs a degree-3 hub; host path has max degree 2.
  const Graph query = topo::star(3);
  Graph host(false);
  for (int i = 0; i < 5; ++i) host.addNode();
  for (int i = 0; i < 4; ++i) host.addEdge(i, i + 1);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  EXPECT_TRUE(fm.viable(0).empty());  // hub has no viable host
}

TEST(Filter, TopologyOnlyCliqueHostIsUnpruned) {
  const Graph query = topo::ring(3);
  const Graph host = topo::clique(5);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(fm.viable(v).size(), 5u);
  // Each slot cell holds the 4 other host nodes.
  EXPECT_EQ(fm.candidates(0, 0, 2).size(), 4u);
}

TEST(Filter, DirectedOrientationRespected) {
  Graph host(true);
  for (int i = 0; i < 3; ++i) host.addNode();
  host.addEdge(0, 1);
  host.addEdge(1, 2);
  Graph query(true);
  query.addNode();
  query.addNode();
  query.addEdge(0, 1);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  // q0 (out-slot): from r0 can go to r1; from r2 nowhere.
  EXPECT_EQ(toVec(fm.candidates(0, 0, 0)), (std::vector<NodeId>{1}));
  EXPECT_TRUE(fm.candidates(0, 0, 2).empty());
  // q1 (in-slot): from r1, predecessor r0; a directed host edge never runs
  // backwards.
  ASSERT_EQ(fm.slots(1).size(), 1u);
  EXPECT_FALSE(fm.slots(1)[0].outgoing);
  EXPECT_EQ(toVec(fm.candidates(1, 0, 1)), (std::vector<NodeId>{0}));
}

TEST(Filter, ConstrainersAreReverseOfSlots) {
  const Graph query = topo::star(2);  // hub 0, leaves 1, 2
  const Graph host = topo::clique(4);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  const FilterMatrix fm = FilterMatrix::build(problem, {}, stats);
  // Leaf 1 is constrained by exactly one slot, owned by the hub.
  ASSERT_EQ(fm.constrainersOf(1).size(), 1u);
  EXPECT_EQ(fm.constrainersOf(1)[0].owner, 0u);
  // The hub is constrained by both leaves.
  EXPECT_EQ(fm.constrainersOf(0).size(), 2u);
}

TEST(Filter, OverflowGuardThrows) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(12);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchOptions options;
  options.maxFilterEntries = 10;  // absurdly small budget
  SearchStats stats;
  EXPECT_THROW((void)FilterMatrix::build(problem, options, stats), core::FilterOverflow);
}

TEST(Filter, SerialAndParallelBuildsAgree) {
  const Graph query = topo::ring(4);
  const Graph host = topo::clique(8);
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchOptions serial;
  serial.parallelFilterBuild = false;
  SearchOptions parallel;
  parallel.parallelFilterBuild = true;
  SearchStats s1, s2;
  const FilterMatrix a = FilterMatrix::build(problem, serial, s1);
  const FilterMatrix b = FilterMatrix::build(problem, parallel, s2);
  EXPECT_EQ(a.totalEntries(), b.totalEntries());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(toVec(a.viable(v)), toVec(b.viable(v)));
    for (std::uint32_t s = 0; s < a.slots(v).size(); ++s) {
      for (NodeId r = 0; r < 8; ++r) {
        EXPECT_EQ(toVec(a.candidates(v, s, r)), toVec(b.candidates(v, s, r)));
      }
    }
  }
}

TEST(Filter, InvalidProblemRejected) {
  const Graph query = topo::ring(5);
  const Graph host = topo::clique(3);  // smaller than the query
  const expr::ConstraintSet none;
  const Problem problem(query, host, none);
  SearchStats stats;
  EXPECT_THROW((void)FilterMatrix::build(problem, {}, stats), std::invalid_argument);
}

}  // namespace
