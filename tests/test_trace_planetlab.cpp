#include "trace/planetlab.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"

namespace {

using namespace netembed;
using graph::Graph;
using trace::PlanetLabOptions;

const Graph& defaultTrace() {
  static const Graph g = trace::synthesize();
  return g;
}

TEST(PlanetLab, DefaultShapeMatchesPaper) {
  const Graph& g = defaultTrace();
  EXPECT_EQ(g.nodeCount(), 296u);
  // Paper: 28,996 edges; the synthesizer must land in the same regime.
  EXPECT_GT(g.edgeCount(), 24000u);
  EXPECT_LT(g.edgeCount(), 34000u);
}

TEST(PlanetLab, DelayOrderingInvariant) {
  const Graph& g = defaultTrace();
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const auto& attrs = g.edgeAttrs(e);
    const double mn = attrs.at("minDelay").asDouble();
    const double avg = attrs.at("avgDelay").asDouble();
    const double mx = attrs.at("maxDelay").asDouble();
    EXPECT_GT(mn, 0.0);
    EXPECT_LE(mn, avg);
    EXPECT_LE(avg, mx);
  }
}

TEST(PlanetLab, DelayBandsMatchPaperFractions) {
  // §VII-D relies on two facts about the trace's avgDelay distribution:
  //   ~6,700 of ~29,000 edges (23%) fall in the 10..100 ms window, and
  //   ~70% fall in the 25..175 ms window.
  const Graph& g = defaultTrace();
  std::size_t band10to100 = 0, band25to175 = 0;
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const double avg = g.edgeAttrs(e).at("avgDelay").asDouble();
    if (avg >= 10.0 && avg <= 100.0) ++band10to100;
    if (avg >= 25.0 && avg <= 175.0) ++band25to175;
  }
  const double f1 = static_cast<double>(band10to100) / g.edgeCount();
  const double f2 = static_cast<double>(band25to175) / g.edgeCount();
  EXPECT_GT(f1, 0.13) << "10-100ms fraction " << f1;
  EXPECT_LT(f1, 0.35) << "10-100ms fraction " << f1;
  EXPECT_GT(f2, 0.55) << "25-175ms fraction " << f2;
  EXPECT_LT(f2, 0.85) << "25-175ms fraction " << f2;
}

TEST(PlanetLab, DeadSitesHaveNoEdges) {
  PlanetLabOptions o;
  o.sites = 50;
  o.clusters = 6;
  o.deadSites = 3;
  o.seed = 5;
  const Graph g = trace::synthesize(o);
  std::size_t isolated = 0;
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    const bool alive = g.nodeAttrs(n).at("alive").asBool();
    if (!alive) {
      EXPECT_EQ(g.degree(n), 0u);
      ++isolated;
    }
  }
  EXPECT_GE(isolated, 1u);
  EXPECT_LE(isolated, 3u);  // random picks may collide
}

TEST(PlanetLab, NodeAttributesPresent) {
  const Graph& g = defaultTrace();
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    const auto& attrs = g.nodeAttrs(n);
    EXPECT_TRUE(attrs.has("x"));
    EXPECT_TRUE(attrs.has("y"));
    EXPECT_TRUE(attrs.has("region"));
    EXPECT_TRUE(attrs.has("osType"));
    EXPECT_GT(attrs.at("cpuMhz").asInt(), 0);
    EXPECT_GT(attrs.at("memMB").asInt(), 0);
  }
}

TEST(PlanetLab, IntraRegionFasterThanInterRegion) {
  const Graph& g = defaultTrace();
  double intraSum = 0, interSum = 0;
  std::size_t intraCount = 0, interCount = 0;
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const auto& a = g.nodeAttrs(g.edgeSource(e)).at("region").asString();
    const auto& b = g.nodeAttrs(g.edgeTarget(e)).at("region").asString();
    const double avg = g.edgeAttrs(e).at("avgDelay").asDouble();
    if (a == b) {
      intraSum += avg;
      ++intraCount;
    } else {
      interSum += avg;
      ++interCount;
    }
  }
  ASSERT_GT(intraCount, 0u);
  ASSERT_GT(interCount, 0u);
  EXPECT_LT(intraSum / intraCount, interSum / interCount);
}

TEST(PlanetLab, DeterministicPerSeed) {
  PlanetLabOptions o;
  o.sites = 40;
  o.clusters = 5;
  o.seed = 77;
  const Graph a = trace::synthesize(o);
  const Graph b = trace::synthesize(o);
  ASSERT_EQ(a.edgeCount(), b.edgeCount());
  for (graph::EdgeId e = 0; e < a.edgeCount(); ++e) {
    EXPECT_DOUBLE_EQ(a.edgeAttrs(e).at("avgDelay").asDouble(),
                     b.edgeAttrs(e).at("avgDelay").asDouble());
  }
  o.seed = 78;
  const Graph c = trace::synthesize(o);
  EXPECT_NE(a.edgeCount(), c.edgeCount());
}

TEST(PlanetLab, TextFormatRoundTrip) {
  PlanetLabOptions o;
  o.sites = 30;
  o.clusters = 4;
  o.deadSites = 0;
  o.seed = 12;
  const Graph g = trace::synthesize(o);
  std::stringstream buffer;
  trace::writeAllPairsPing(g, buffer);
  const Graph back = trace::readAllPairsPing(buffer);
  EXPECT_EQ(back.edgeCount(), g.edgeCount());
  // Node count may differ (isolated nodes don't appear in the pair list),
  // but every edge's delays must survive at the format's 3-decimal precision.
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const auto src = back.findNode(g.nodeName(g.edgeSource(e)));
    const auto dst = back.findNode(g.nodeName(g.edgeTarget(e)));
    ASSERT_TRUE(src && dst);
    const auto he = back.findEdge(*src, *dst);
    ASSERT_TRUE(he.has_value());
    EXPECT_NEAR(back.edgeAttrs(*he).at("avgDelay").asDouble(),
                g.edgeAttrs(e).at("avgDelay").asDouble(), 0.0005);
  }
}

TEST(PlanetLab, ParserSkipsCommentsAndRejectsGarbage) {
  std::stringstream good("# header\nsiteA siteB 1.0 2.0 3.0\n\n");
  const Graph g = trace::readAllPairsPing(good);
  EXPECT_EQ(g.nodeCount(), 2u);
  EXPECT_EQ(g.edgeCount(), 1u);

  std::stringstream bad("siteA siteB not_a_number 2.0 3.0\n");
  EXPECT_THROW((void)trace::readAllPairsPing(bad), std::runtime_error);
}

TEST(PlanetLab, InvalidOptionsRejected) {
  PlanetLabOptions o;
  o.sites = 1;
  EXPECT_THROW((void)trace::synthesize(o), std::invalid_argument);
  o.sites = 10;
  o.clusters = 0;
  EXPECT_THROW((void)trace::synthesize(o), std::invalid_argument);
}

TEST(PlanetLab, MostlyConnectedAmongAliveSites) {
  const Graph& g = defaultTrace();
  const auto components = graph::connectedComponents(g);
  // One giant component plus isolated dead sites.
  std::vector<std::size_t> sizes(components.count, 0);
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) ++sizes[components.label[n]];
  const std::size_t largest = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_GE(largest, g.nodeCount() - 8);
}

}  // namespace
