#include "core/lns.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/ecf.hpp"
#include "core/verify.hpp"
#include "topo/regular.hpp"

namespace {

using namespace netembed;
using core::ecfSearch;
using core::EmbedResult;
using core::lnsSearch;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using graph::Graph;

const expr::ConstraintSet kNone;

SearchOptions storeAll() {
  SearchOptions o;
  o.storeLimit = 100000;
  return o;
}

TEST(Lns, TriangleInK4MatchesEcfCount) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(4);
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.solutionCount, 24u);
}

TEST(Lns, EnumeratesExactlyTheEcfSolutionSet) {
  const Graph query = topo::line(3);
  const Graph host = topo::ring(4);
  const EmbedResult lns = lnsSearch(Problem(query, host, kNone), storeAll());
  const EmbedResult ecf = ecfSearch(Problem(query, host, kNone), storeAll());
  const std::set<core::Mapping> a(lns.mappings.begin(), lns.mappings.end());
  const std::set<core::Mapping> b(ecf.mappings.begin(), ecf.mappings.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(lns.solutionCount, ecf.solutionCount);
}

TEST(Lns, ProvesInfeasibility) {
  const Graph query = topo::clique(4);
  const Graph host = topo::ring(7);
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_TRUE(r.provenInfeasible());
}

TEST(Lns, NoFilterMemoryIsUsed) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(6);
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.stats.filterEntries, 0u);
  EXPECT_EQ(r.stats.filterBuildMs, 0.0);
  EXPECT_GT(r.stats.peakCovered, 0u);
}

TEST(Lns, HeuristicsOffRemainsCorrect) {
  const Graph query = topo::line(4);
  const Graph host = topo::ring(6);
  SearchOptions noHeuristics = storeAll();
  noHeuristics.lnsMaxDegreeStart = false;
  noHeuristics.lnsMostConnectedNeighbor = false;
  const EmbedResult a = lnsSearch(Problem(query, host, kNone), noHeuristics);
  const EmbedResult b = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(a.solutionCount, b.solutionCount);
}

TEST(Lns, MaxSolutionsAndSink) {
  const Graph query = topo::clique(3);
  const Graph host = topo::clique(10);
  SearchOptions o = storeAll();
  o.maxSolutions = 4;
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.solutionCount, 4u);
  EXPECT_EQ(r.outcome, Outcome::Partial);

  int seen = 0;
  const EmbedResult s =
      lnsSearch(Problem(query, host, kNone), storeAll(), [&](const core::Mapping&) {
        return ++seen < 2;
      });
  EXPECT_EQ(s.solutionCount, 2u);
}

TEST(Lns, ConstraintsRespected) {
  Graph host(false);
  for (int i = 0; i < 4; ++i) host.addNode();
  host.edgeAttrs(host.addEdge(0, 1)).set("delay", 10.0);
  host.edgeAttrs(host.addEdge(1, 2)).set("delay", 10.0);
  host.edgeAttrs(host.addEdge(2, 3)).set("delay", 100.0);
  host.edgeAttrs(host.addEdge(3, 0)).set("delay", 100.0);
  Graph query = topo::line(3);
  topo::setAllEdges(query, "maxDelay", 20.0);
  const auto constraints = expr::ConstraintSet::edgeOnly("rEdge.delay <= vEdge.maxDelay");
  const Problem problem(query, host, constraints);
  const EmbedResult r = lnsSearch(problem, storeAll());
  // Only the path 0-1-2 qualifies, two orientations.
  EXPECT_EQ(r.solutionCount, 2u);
  for (const core::Mapping& m : r.mappings) {
    EXPECT_TRUE(core::verifyMapping(problem, m).ok);
  }
}

TEST(Lns, NodeConstraintsRespected) {
  Graph host = topo::clique(4);
  for (graph::NodeId n = 0; n < 4; ++n) {
    host.nodeAttrs(n).set("cpu", n < 2 ? 1000 : 3000);
  }
  Graph query = topo::line(2);
  topo::setAllNodes(query, "minCpu", 2000);
  const auto constraints = expr::ConstraintSet::parse("", "rNode.cpu >= vNode.minCpu");
  const EmbedResult r = lnsSearch(Problem(query, host, constraints), storeAll());
  EXPECT_EQ(r.solutionCount, 2u);  // nodes 2,3 in both orders
  for (const core::Mapping& m : r.mappings) {
    for (const graph::NodeId r2 : m) EXPECT_GE(r2, 2u);
  }
}

TEST(Lns, DisconnectedQueryCrossesComponents) {
  Graph query(false);
  for (int i = 0; i < 4; ++i) query.addNode();
  query.addEdge(0, 1);
  query.addEdge(2, 3);
  const Graph host = topo::ring(4);
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 16u);  // must match ECF (see test_ecf)
}

TEST(Lns, DirectedQueries) {
  Graph query(true);
  query.addNode();
  query.addNode();
  query.addNode();
  query.addEdge(0, 1);
  query.addEdge(1, 2);
  Graph host(true);
  for (int i = 0; i < 4; ++i) host.addNode();
  host.addEdge(0, 1);
  host.addEdge(1, 2);
  host.addEdge(2, 3);
  host.addEdge(3, 0);
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 4u);  // 4 directed 2-paths in a directed 4-cycle
}

TEST(Lns, TimeoutOnHugeEnumerationIsPartial) {
  const Graph query = topo::clique(5);
  const Graph host = topo::clique(24);
  SearchOptions o;
  o.storeLimit = 1;
  // Generous budget: a loaded single-core CI box may deschedule us past a
  // tight deadline before the first solution; the ~5M-embedding enumeration
  // still cannot finish, so the outcome stays Partial.
  o.timeout = std::chrono::milliseconds(250);
  o.checkStride = 256;
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), o);
  EXPECT_EQ(r.outcome, Outcome::Partial);
  EXPECT_GT(r.solutionCount, 0u);
}

TEST(Lns, SingleNodeQuery) {
  Graph query(false);
  query.addNode();
  const Graph host = topo::ring(5);
  const EmbedResult r = lnsSearch(Problem(query, host, kNone), storeAll());
  EXPECT_EQ(r.solutionCount, 5u);
}

}  // namespace
