#include "topo/composite.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace {

using namespace netembed;
using graph::Graph;
using topo::CompositeSpec;
using topo::Shape;

TEST(Composite, RingOfStarsCounts) {
  CompositeSpec spec;
  spec.rootShape = Shape::Ring;
  spec.groups = 4;
  spec.leafShape = Shape::Star;
  spec.groupSize = 5;  // gateway hub + 4 leaves
  const Graph g = topo::composite(spec);
  EXPECT_EQ(g.nodeCount(), 20u);
  // Each star: 4 edges; root ring over 4 gateways: 4 edges.
  EXPECT_EQ(g.edgeCount(), 4u * 4 + 4);
  EXPECT_TRUE(graph::isConnected(g));
}

TEST(Composite, EdgesAreLevelTagged) {
  CompositeSpec spec;
  spec.rootShape = Shape::Clique;
  spec.groups = 3;
  spec.leafShape = Shape::Ring;
  spec.groupSize = 3;
  const Graph g = topo::composite(spec);
  std::size_t rootEdges = 0, leafEdges = 0;
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const std::string level = g.edgeAttrs(e).at("level").asString();
    if (level == "root") {
      ++rootEdges;
    } else if (level == "leaf") {
      ++leafEdges;
    } else {
      FAIL() << "unexpected level " << level;
    }
  }
  EXPECT_EQ(rootEdges, 3u);       // K3 over gateways
  EXPECT_EQ(leafEdges, 3u * 3u);  // three 3-rings
}

TEST(Composite, NodesCarryGroupIndex) {
  CompositeSpec spec;
  spec.groups = 2;
  spec.groupSize = 3;
  const Graph g = topo::composite(spec);
  EXPECT_EQ(g.nodeAttrs(0).at("group").asInt(), 0);
  EXPECT_EQ(g.nodeAttrs(3).at("group").asInt(), 1);
  EXPECT_EQ(g.nodeName(3), "g1_n0");
}

TEST(Composite, TwoGroupRingCollapsesToSingleEdge) {
  CompositeSpec spec;
  spec.rootShape = Shape::Ring;
  spec.groups = 2;
  spec.leafShape = Shape::Line;
  spec.groupSize = 2;
  const Graph g = topo::composite(spec);
  // ring(2) degenerates to one edge, no duplicate.
  EXPECT_EQ(g.edgeCount(), 2u + 1u);
}

TEST(Composite, SingletonGroupsAreJustTheRootShape) {
  CompositeSpec spec;
  spec.rootShape = Shape::Clique;
  spec.groups = 4;
  spec.leafShape = Shape::Star;
  spec.groupSize = 1;
  const Graph g = topo::composite(spec);
  EXPECT_EQ(g.nodeCount(), 4u);
  EXPECT_EQ(g.edgeCount(), 6u);
}

TEST(Composite, AllShapesBuild) {
  for (const Shape root : {Shape::Ring, Shape::Star, Shape::Clique, Shape::Line,
                           Shape::Tree}) {
    for (const Shape leaf : {Shape::Ring, Shape::Star, Shape::Clique, Shape::Line,
                             Shape::Tree}) {
      CompositeSpec spec;
      spec.rootShape = root;
      spec.leafShape = leaf;
      spec.groups = 3;
      spec.groupSize = 4;
      const Graph g = topo::composite(spec);
      EXPECT_EQ(g.nodeCount(), 12u);
      EXPECT_TRUE(graph::isConnected(g));
    }
  }
}

TEST(Composite, InvalidSpecsRejected) {
  CompositeSpec spec;
  spec.groups = 1;
  EXPECT_THROW((void)topo::composite(spec), std::invalid_argument);
  spec.groups = 2;
  spec.groupSize = 0;
  EXPECT_THROW((void)topo::composite(spec), std::invalid_argument);
}

TEST(Composite, RegularDelayWindows) {
  CompositeSpec spec;
  spec.groups = 3;
  spec.groupSize = 3;
  Graph g = topo::composite(spec);
  topo::assignLevelDelayWindows(g, 75.0, 350.0, 1.0, 75.0);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const auto& attrs = g.edgeAttrs(e);
    const bool isRoot = attrs.at("level").asString() == "root";
    EXPECT_DOUBLE_EQ(attrs.at("minDelay").asDouble(), isRoot ? 75.0 : 1.0);
    EXPECT_DOUBLE_EQ(attrs.at("maxDelay").asDouble(), isRoot ? 350.0 : 75.0);
  }
}

TEST(Composite, RandomDelayWindowsStayInBand) {
  CompositeSpec spec;
  spec.groups = 4;
  spec.groupSize = 4;
  Graph g = topo::composite(spec);
  util::Rng rng(5);
  topo::assignRandomDelayWindows(g, 25.0, 175.0, 40.0, rng);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const double lo = g.edgeAttrs(e).at("minDelay").asDouble();
    const double hi = g.edgeAttrs(e).at("maxDelay").asDouble();
    EXPECT_GE(lo, 25.0);
    EXPECT_LE(hi, 175.0);
    EXPECT_DOUBLE_EQ(hi - lo, 40.0);
  }
}

TEST(Composite, RandomWindowsRejectImpossibleWidth) {
  CompositeSpec spec;
  Graph g = topo::composite(spec);
  util::Rng rng(5);
  EXPECT_THROW(topo::assignRandomDelayWindows(g, 10.0, 20.0, 50.0, rng),
               std::invalid_argument);
}

}  // namespace
