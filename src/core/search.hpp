#pragma once
// Shared search-facing types: options, statistics, outcomes, results.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace netembed::core {

/// A (possibly partial) node mapping: query node id -> host node id.
/// Complete mappings have no kInvalidNode entries.
using Mapping = std::vector<graph::NodeId>;

/// Search engines. ECF/RWB/LNS are the paper's algorithms, Naive/Anneal/
/// Genetic the baselines, and Portfolio races ECF, RWB and LNS concurrently,
/// cancelling the losers as soon as one finds a match or proves
/// infeasibility (§VIII: no single algorithm dominates).
enum class Algorithm : std::uint8_t { ECF, RWB, LNS, Naive, Anneal, Genetic, Portfolio };
[[nodiscard]] const char* algorithmName(Algorithm a) noexcept;

/// How a search ended (paper §VII-E):
///  * Complete      — the search space was exhausted before any limit hit;
///                    with solutionCount == 0 this *proves* infeasibility.
///  * Partial       — stopped early (timeout or max-solutions) having found
///                    at least one feasible embedding.
///  * Inconclusive  — stopped early with none found; existence is unknown.
enum class Outcome : std::uint8_t { Complete, Partial, Inconclusive };
[[nodiscard]] const char* outcomeName(Outcome o) noexcept;

/// Variable-ordering policy for the filtered engines (ECF/RWB).
///  * Static  — the plan's Lemma-1 order (ascending stage-1 candidate count),
///    fixed before the search starts. Deterministic streams, byte-identical
///    to the historical behavior.
///  * Dynamic — classic smallest-live-domain: per-node candidate domains are
///    maintained incrementally as assignments constrain them (the same
///    constrainer-row ANDs the search performs anyway, with popcounts folded
///    into the pass), and each depth descends into the unassigned node with
///    the fewest live candidates, breaking ties by the static order. A node
///    whose domain wipes out prunes the subtree immediately. Enumerates the
///    exact same solution *set* as Static — only the visit order (and so the
///    first match under a cap) differs; still fully deterministic.
///  * Auto    — resolve to Static or Dynamic at search start from the plan's
///    domain-size spread: Dynamic only pays when stage-1 candidate counts are
///    too uniform for the static Lemma-1 order to discriminate (it wins 17x
///    on planted cliques but regresses 0.73x on brite_dense). Deterministic
///    per plan; resolved once, before any worker starts.
enum class Ordering : std::uint8_t { Static, Dynamic, Auto };
[[nodiscard]] const char* orderingName(Ordering o) noexcept;

/// Candidate-domain representation for stage-1 filter cells (§V-A). Every
/// cell always keeps its sorted CSR list (ordered enumeration, memory floor);
/// this chooses when a packed bitset row is built alongside it so eq.-2
/// intersections run word-parallel. Purely a performance knob: every mode
/// yields identical candidate sets in identical order.
enum class BitsetMode : std::uint8_t {
  /// Per-cell density heuristic: bitset rows only where the AND beats the
  /// sorted-list probe and the memory is proportionate (the default).
  Auto,
  /// CSR only — the iterate-smallest + binary-search path everywhere.
  Off,
  /// Bitset rows for every cell regardless of density (differential tests).
  Force,
};

struct SearchOptions {
  /// Wall-clock budget; zero means unlimited.
  std::chrono::milliseconds timeout{0};
  /// Stop after this many solutions; zero means enumerate all.
  std::size_t maxSolutions = 0;
  /// Retain at most this many mappings in the result (all are still counted).
  std::size_t storeLimit = 16;
  /// RNG seed (RWB and the randomized baselines).
  std::uint64_t seed = 1;

  // --- heuristics (all on by default; benches ablate them) ---
  /// Lemma-1 static ordering of query nodes by ascending candidate count.
  bool staticOrdering = true;
  /// LNS: start from the maximum-degree query node.
  bool lnsMaxDegreeStart = true;
  /// LNS: always expand the neighbour with the most links into Covered.
  bool lnsMostConnectedNeighbor = true;
  /// Build stage-1 filters in parallel over query edges.
  bool parallelFilterBuild = true;

  /// Dual CSR/bitset candidate domains (see BitsetMode).
  BitsetMode bitsetMode = BitsetMode::Auto;

  /// ECF/RWB variable order (see Ordering). Static keeps the historical
  /// byte-identical streams; Dynamic pays a small per-assignment bookkeeping
  /// cost to fail earlier on backtrack-heavy instances.
  Ordering ordering = Ordering::Static;

  /// Abort filter construction beyond this many stored candidate entries
  /// (the O(n^5) blow-up guard the paper motivates LNS with). 0 = unlimited.
  std::size_t maxFilterEntries = 200'000'000;

  /// Compute budget in visited tree nodes; zero means unlimited. Enforced
  /// per worker at the cooperative poll, so a root-split or portfolio run
  /// may expand up to (workers x budget) nodes in total — the knob bounds
  /// work deterministically for serial runs and approximately for parallel
  /// ones. The service maps QoS compute budgets onto it. Binds the engines
  /// that count tree-node visits (ECF/RWB/LNS/Naive/Anneal); the
  /// generation-based Genetic baseline polls coarsely and is bounded by the
  /// wall-clock budget only.
  std::uint64_t visitBudget = 0;

  /// Deadline poll stride, in visited tree nodes.
  std::uint64_t checkStride = 1024;

  /// ECF/RWB root-split parallelism: the first-depth candidate set (in
  /// Lemma-1 order) is partitioned across this many workers, each exploring
  /// its subtrees against the shared immutable FilterMatrix. 1 = serial
  /// (default); 0 = every shared-pool thread plus the participating caller
  /// (hardware threads + 1).
  std::size_t rootSplitThreads = 1;

  /// Host-model shards: the FilterMatrix partitions host nodes into this
  /// many contiguous word-aligned ranges (see core::ShardMap), builds each
  /// shard-local, and the filtered engines restrict per-depth intersections
  /// to the shards a partial mapping can still reach. 1 = unsharded flat
  /// model (default, historical behavior); 0 = one shard per hardware
  /// thread. Clamped to at most 64 and to the host's word count. Purely a
  /// locality/scaling knob: solution streams are byte-identical across
  /// shard counts.
  std::size_t shards = 1;
};

struct SearchStats {
  std::uint64_t treeNodesVisited = 0;   // candidate assignments attempted
  std::uint64_t constraintEvals = 0;    // expression evaluations
  std::uint64_t backtracks = 0;
  std::size_t filterEntries = 0;        // stage-1 candidate entries stored
  double filterBuildMs = 0.0;
  double searchMs = 0.0;                // total wall time incl. filter build
  double firstMatchMs = -1.0;           // -1 when no match was found
  std::size_t peakCovered = 0;          // LNS: deepest covered-set size

  void merge(const SearchStats& other) noexcept;
};

struct EmbedResult {
  Outcome outcome = Outcome::Inconclusive;
  std::uint64_t solutionCount = 0;
  std::vector<Mapping> mappings;  // first min(solutionCount, storeLimit)
  SearchStats stats;

  [[nodiscard]] bool feasible() const noexcept { return solutionCount > 0; }
  [[nodiscard]] bool provenInfeasible() const noexcept {
    return outcome == Outcome::Complete && solutionCount == 0;
  }
};

/// Invoked for every feasible mapping as it is found; return false to stop
/// the search (the result is then Partial). With rootSplitThreads > 1 the
/// sink may be invoked concurrently from several workers — guard any state it
/// mutates. Returning false requests a stop but does not fence other
/// workers: until the request propagates, further mappings may be admitted
/// and the sink invoked for them, so captured state must stay valid after a
/// false return.
using SolutionSink = std::function<bool(const Mapping&)>;

/// Render "q0->r3 q1->r7 ..." using node names.
[[nodiscard]] std::string formatMapping(const Mapping& m, const graph::Graph& query,
                                        const graph::Graph& host);

}  // namespace netembed::core
