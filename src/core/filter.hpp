#pragma once
// Stage-1 candidate filters for ECF and RWB (paper §V-A).
//
// For every *directed use* of a query edge (v's slot pointing at neighbour
// w) and every host node r, the filter stores the set of host nodes s such
// that mapping v->r, w->s satisfies topology, node-level checks (node
// constraint + degree bound) and the edge constraint expression:
//
//     F[v][slot(w)][r] = { s : ok(v->r, w->s) }
//
// Cells have a dual representation:
//   * CSR (always): sorted lists per (v, slot) — ordered enumeration and the
//     memory floor on sparse instances;
//   * packed 64-bit bitset rows (per BitsetMode / density heuristic): the
//     same sets as word masks over host nodes, so eq.-2 intersection is one
//     AND per 64 host nodes instead of a binary search per probe. Node
//     viability is always also available as a bit row (viableBits).
// The paper's negative filter F-bar is represented implicitly: candidate
// sets are always computed by intersecting positive cells, which is
// equivalent and strictly cheaper (the explicit F-bar's O(n^5) space is what
// motivates LNS in §V-C).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/delta.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"
#include "core/shard.hpp"
#include "util/bitset.hpp"

namespace netembed::core {

/// Thrown when filter construction exceeds SearchOptions::maxFilterEntries.
class FilterOverflow : public std::runtime_error {
 public:
  explicit FilterOverflow(std::size_t entries)
      : std::runtime_error("filter matrix exceeds entry budget (" +
                           std::to_string(entries) + " entries)") {}
};

/// Thrown when the build's `cancelled` poll fires (deadline or external
/// cancel). Not an error: the engine was told to stop before it could start
/// searching, and reports Inconclusive.
class FilterBuildCancelled : public std::runtime_error {
 public:
  FilterBuildCancelled() : std::runtime_error("filter build cancelled") {}
};

class FilterMatrix {
 public:
  /// One directed use of a query edge, owned by node v: v -> neighbor
  /// (outgoing true) or neighbor -> v (outgoing false). Undirected edges
  /// produce one outgoing slot at each endpoint.
  struct Slot {
    graph::NodeId neighbor;
    graph::EdgeId edge;
    bool outgoing;
  };

  /// Reverse index entry: slot `slot` of node `owner` constrains this node.
  struct Constrainer {
    graph::NodeId owner;
    std::uint32_t slot;
  };

  /// Build the filters; fills stats.filterEntries / filterBuildMs /
  /// constraintEvals. Throws FilterOverflow past the entry budget. The
  /// `cancelled` predicate (may be empty) is polled periodically during
  /// every O(NQ*NR)+ stage (node viability, the stage-1 constraint sweep,
  /// the CSR/bitset scatter) — a portfolio loser or an expired deadline must
  /// not keep burning CPU on a build nobody will search; when it returns
  /// true the build throws FilterBuildCancelled. The predicate may be
  /// invoked concurrently when parallelFilterBuild is on.
  [[nodiscard]] static FilterMatrix build(
      const Problem& problem, const SearchOptions& options, SearchStats& stats,
      const std::function<bool()>& cancelled = {});

  /// Incrementally re-evaluate this matrix against an attribute-only host
  /// delta: `problem.host` is the post-mutation graph (same topology as the
  /// one this matrix was built from), `delta` names the touched nodes/edges.
  /// Only the (query edge, host edge) pairs whose outcome can have changed —
  /// edges in the delta plus every edge incident to a touched node, since
  /// edge constraints may read endpoint attributes — are re-evaluated; CSR
  /// lists, bitset rows, the viability bit-matrix and the viable lists are
  /// spliced in place. The result is candidate-set-identical to a fresh
  /// build (cell bitset coverage keeps the original build's density
  /// decision; candidate *sets* never differ). Past a work threshold the
  /// re-evaluation, the per-cell splice and the viability re-gate fan out
  /// over util::parallelFor (query edges / cells / query nodes are disjoint
  /// write domains), honoring parallelFilterBuild like build(). Callers must
  /// have rejected
  /// structural deltas (see classifyDelta in core/plan.hpp). Throws
  /// FilterOverflow when edits push the entry count past the budget and
  /// FilterBuildCancelled when `cancelled` fires. On either throw the matrix
  /// is left in an unspecified state — discard it.
  void patch(const Problem& problem, const SearchOptions& options,
             const ModelDelta& delta, SearchStats& stats,
             const std::function<bool()>& cancelled = {});

  [[nodiscard]] std::span<const Slot> slots(graph::NodeId v) const {
    return slots_[v];
  }

  [[nodiscard]] std::span<const Constrainer> constrainersOf(graph::NodeId v) const {
    return constrainers_[v];
  }

  /// Candidate continuations: host nodes for slots_[owner][slot].neighbor
  /// when owner is mapped at r. Sorted ascending.
  [[nodiscard]] std::span<const graph::NodeId> candidates(graph::NodeId owner,
                                                          std::uint32_t slot,
                                                          graph::NodeId r) const {
    const Csr& csr = cells_[slotBase_[owner] + slot];
    return std::span<const graph::NodeId>(csr.data.data() + csr.offsets[r],
                                          csr.offsets[r + 1] - csr.offsets[r]);
  }

  /// True when cell (owner, slot) carries bitset rows (dense enough under
  /// the build's BitsetMode). Uniform per cell: either every row of the cell
  /// has a mask or none does.
  [[nodiscard]] bool hasCandidateBits(graph::NodeId owner, std::uint32_t slot) const {
    return !cellBits_[slotBase_[owner] + slot].empty();
  }

  /// The bitset row matching candidates(owner, slot, r): bit s is set iff s
  /// is in the CSR list. Only valid when hasCandidateBits(owner, slot).
  [[nodiscard]] std::span<const std::uint64_t> candidateBits(graph::NodeId owner,
                                                             std::uint32_t slot,
                                                             graph::NodeId r) const {
    return cellBits_[slotBase_[owner] + slot].row(r);
  }

  /// Host nodes viable for v considering node-level checks and non-emptiness
  /// of every slot cell (strengthened eq. 1). Sorted ascending.
  [[nodiscard]] std::span<const graph::NodeId> viable(graph::NodeId v) const {
    return viable_[v];
  }

  /// viable(v) as a bit row (always built; hostWords() words wide).
  [[nodiscard]] std::span<const std::uint64_t> viableBits(graph::NodeId v) const {
    return viableBits_.row(v);
  }

  [[nodiscard]] bool isViable(graph::NodeId v, graph::NodeId r) const {
    return viableBits_.test(v, r);
  }

  /// Words per host-node bit row — the width of every candidateBits /
  /// viableBits span and of any scratch Bitset intersected against them.
  [[nodiscard]] std::size_t hostWords() const noexcept {
    return viableBits_.wordsPerRow();
  }

  /// Host-node count the rows are sized for (columns of every bit row).
  [[nodiscard]] std::size_t hostNodes() const noexcept { return viableBits_.cols(); }

  [[nodiscard]] std::size_t totalEntries() const noexcept { return totalEntries_; }

  /// A cell's theoretical entry capacity: the host's directed adjacency-pair
  /// count (2E undirected, E directed). totalEntries() / (cellCount x this)
  /// is the stage-1 density the ordering predictor steers on.
  [[nodiscard]] std::size_t hostAdjacencySlots() const noexcept {
    return hostAdjacencySlots_;
  }

  // --- sharded host model ---------------------------------------------------
  // With SearchOptions::shards > 1 the host-node id space is partitioned into
  // word-aligned contiguous ranges (core::ShardMap): stage 0 and the stage-1
  // edge sweep run shard-local (cross-shard host edges land in boundary
  // buckets evaluated under the same per-pair rules, so candidate content is
  // byte-identical to a flat build), and per-row occupancy summaries let the
  // search restrict intersections to shards that can still hold candidates.

  /// The partition this matrix was built with (single-shard by default).
  [[nodiscard]] const ShardMap& shardMap() const noexcept { return shards_; }

  /// True when the build partitioned the host into more than one shard.
  [[nodiscard]] bool sharded() const noexcept { return shards_.shardCount() > 1; }

  /// Shards holding at least one viable host node for v. Falls back to
  /// all-shards-live when no occupancy summary is maintained (unsharded).
  [[nodiscard]] std::uint64_t viableShardMask(graph::NodeId v) const noexcept {
    return viableOcc_.empty() ? shards_.fullMask() : viableOcc_[v];
  }

  /// Shards holding at least one candidate in candidateBits(owner, slot, r).
  /// Exact when the cell carries bit rows under a sharded build; the
  /// all-shards-live superset otherwise (always safe to intersect with).
  [[nodiscard]] std::uint64_t candidateShardMask(graph::NodeId owner,
                                                 std::uint32_t slot,
                                                 graph::NodeId r) const noexcept {
    const auto& occ = cellOcc_[slotBase_[owner] + slot];
    return occ.empty() ? shards_.fullMask() : occ[r];
  }

  /// Per-structure memory accounting for the bench memory trajectory.
  struct MemoryBreakdown {
    std::size_t csrBytes = 0;        // offsets + data of every cell
    std::size_t bitRowBytes = 0;     // per-cell candidate bit matrices
    std::size_t viabilityBytes = 0;  // viableBits_ + nodeOkBits_ + viable lists
    std::size_t occupancyBytes = 0;  // shard-occupancy summaries
    [[nodiscard]] std::size_t total() const noexcept {
      return csrBytes + bitRowBytes + viabilityBytes + occupancyBytes;
    }
  };
  [[nodiscard]] MemoryBreakdown memoryBreakdown() const noexcept;

 private:
  struct Csr {
    std::vector<std::uint32_t> offsets;  // host-node-indexed, size NR+1
    std::vector<graph::NodeId> data;
  };

  std::vector<std::vector<Slot>> slots_;            // per query node
  std::vector<std::uint32_t> slotBase_;             // prefix sum into cells_
  std::vector<Csr> cells_;                          // per (node, slot)
  std::vector<util::BitMatrix> cellBits_;           // parallel to cells_; may be empty
  std::vector<std::vector<Constrainer>> constrainers_;
  std::vector<std::vector<graph::NodeId>> viable_;  // per query node, sorted
  util::BitMatrix viableBits_;                      // nq x nr
  /// Node-level viability (degree bound + node constraint) kept separate
  /// from viableBits_ — patch() needs it to re-gate pair evaluations without
  /// re-running the node constraint over untouched host nodes.
  util::BitMatrix nodeOkBits_;                      // nq x nr
  std::size_t totalEntries_ = 0;
  std::size_t hostAdjacencySlots_ = 0;

  ShardMap shards_;
  /// Parallel to cellBits_: per host node r, the shard-occupancy mask of the
  /// cell's bit row. Empty per cell unless sharded and the cell has bit rows.
  std::vector<std::vector<std::uint64_t>> cellOcc_;
  /// Per query node: shard-occupancy of viableBits(v). Empty when unsharded.
  std::vector<std::uint64_t> viableOcc_;
};

}  // namespace netembed::core
