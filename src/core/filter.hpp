#pragma once
// Stage-1 candidate filters for ECF and RWB (paper §V-A).
//
// For every *directed use* of a query edge (v's slot pointing at neighbour
// w) and every host node r, the filter stores the sorted list of host nodes
// s such that mapping v->r, w->s satisfies topology, node-level checks
// (node constraint + degree bound) and the edge constraint expression:
//
//     F[v][slot(w)][r] = { s : ok(v->r, w->s) }
//
// Cells are stored sparsely in CSR form per (v, slot). The paper's negative
// filter F-bar is represented implicitly: candidate sets are always computed
// by intersecting positive cells, which is equivalent and strictly cheaper
// (the explicit F-bar's O(n^5) space is what motivates LNS in §V-C).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

/// Thrown when filter construction exceeds SearchOptions::maxFilterEntries.
class FilterOverflow : public std::runtime_error {
 public:
  explicit FilterOverflow(std::size_t entries)
      : std::runtime_error("filter matrix exceeds entry budget (" +
                           std::to_string(entries) + " entries)") {}
};

/// Thrown when the build's `cancelled` poll fires (deadline or external
/// cancel). Not an error: the engine was told to stop before it could start
/// searching, and reports Inconclusive.
class FilterBuildCancelled : public std::runtime_error {
 public:
  FilterBuildCancelled() : std::runtime_error("filter build cancelled") {}
};

class FilterMatrix {
 public:
  /// One directed use of a query edge, owned by node v: v -> neighbor
  /// (outgoing true) or neighbor -> v (outgoing false). Undirected edges
  /// produce one outgoing slot at each endpoint.
  struct Slot {
    graph::NodeId neighbor;
    graph::EdgeId edge;
    bool outgoing;
  };

  /// Reverse index entry: slot `slot` of node `owner` constrains this node.
  struct Constrainer {
    graph::NodeId owner;
    std::uint32_t slot;
  };

  /// Build the filters; fills stats.filterEntries / filterBuildMs /
  /// constraintEvals. Throws FilterOverflow past the entry budget. The
  /// `cancelled` predicate (may be empty) is polled periodically during the
  /// dominant stage-1 loop — a portfolio loser or an expired deadline must
  /// not keep burning CPU on a build nobody will search; when it returns
  /// true the build throws FilterBuildCancelled. The predicate may be
  /// invoked concurrently when parallelFilterBuild is on.
  [[nodiscard]] static FilterMatrix build(
      const Problem& problem, const SearchOptions& options, SearchStats& stats,
      const std::function<bool()>& cancelled = {});

  [[nodiscard]] std::span<const Slot> slots(graph::NodeId v) const {
    return slots_[v];
  }

  [[nodiscard]] std::span<const Constrainer> constrainersOf(graph::NodeId v) const {
    return constrainers_[v];
  }

  /// Candidate continuations: host nodes for slots_[owner][slot].neighbor
  /// when owner is mapped at r. Sorted ascending.
  [[nodiscard]] std::span<const graph::NodeId> candidates(graph::NodeId owner,
                                                          std::uint32_t slot,
                                                          graph::NodeId r) const {
    const Csr& csr = cells_[slotBase_[owner] + slot];
    return std::span<const graph::NodeId>(csr.data.data() + csr.offsets[r],
                                          csr.offsets[r + 1] - csr.offsets[r]);
  }

  /// Host nodes viable for v considering node-level checks and non-emptiness
  /// of every slot cell (strengthened eq. 1). Sorted ascending.
  [[nodiscard]] std::span<const graph::NodeId> viable(graph::NodeId v) const {
    return viable_[v];
  }

  [[nodiscard]] bool isViable(graph::NodeId v, graph::NodeId r) const;

  [[nodiscard]] std::size_t totalEntries() const noexcept { return totalEntries_; }

 private:
  struct Csr {
    std::vector<std::uint32_t> offsets;  // host-node-indexed, size NR+1
    std::vector<graph::NodeId> data;
  };

  std::vector<std::vector<Slot>> slots_;            // per query node
  std::vector<std::uint32_t> slotBase_;             // prefix sum into cells_
  std::vector<Csr> cells_;                          // per (node, slot)
  std::vector<std::vector<Constrainer>> constrainers_;
  std::vector<std::vector<graph::NodeId>> viable_;  // per query node, sorted
  std::size_t totalEntries_ = 0;
};

}  // namespace netembed::core
