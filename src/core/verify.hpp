#pragma once
// Independent mapping verifier: re-checks every property a feasible
// embedding must have. Used as the test oracle for all engines and exposed
// publicly so service users can audit returned mappings.

#include <string>

#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

struct VerifyResult {
  bool ok = false;
  std::string reason;  // empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Check that `mapping` is a complete, injective, topology-preserving,
/// constraint-satisfying embedding of problem.query into problem.host.
[[nodiscard]] VerifyResult verifyMapping(const Problem& problem, const Mapping& mapping);

}  // namespace netembed::core
