#include "core/ecf.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <memory>
#include <mutex>

#include "core/dynamic_order.hpp"
#include "core/filter.hpp"
#include "core/plan.hpp"
#include "util/bitset.hpp"
#include "util/fault.hpp"
#include "util/latch.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netembed::core {

namespace {

/// One depth-first explorer over the shared plan. Serial search runs a
/// single worker over the whole root candidate list; root-split search runs
/// one per thread, pulling root candidates from a shared cursor. Stopping,
/// solution admission and maxSolutions accounting all go through the shared
/// SearchContext, so workers halt together and the solution count stays
/// exact.
class FilteredWorker {
 public:
  /// `ordering` is the *resolved* policy (Auto already collapsed to Static
  /// or Dynamic via chooseOrdering) so every worker of a team agrees.
  FilteredWorker(const Problem& problem, const FilterPlan& plan,
                 SearchContext& context, bool randomize, Ordering ordering,
                 std::uint64_t seed)
      : plan_(plan),
        context_(context),
        randomize_(randomize),
        dynamic_(ordering == Ordering::Dynamic),
        rng_(seed) {
    const std::size_t nq = problem.query->nodeCount();
    mapping_.assign(nq, graph::kInvalidNode);
    used_.assign(problem.host->nodeCount());
    scratch_.assign(problem.host->nodeCount());
    candidateBuffers_.resize(nq);
    if (dynamic_) tracker_ = std::make_unique<DomainTracker>(plan);
  }

  /// Explore the subtree of each root candidate claimed from `cursor`.
  void run(std::span<const graph::NodeId> roots, std::atomic<std::size_t>& cursor) {
    const graph::NodeId v0 =
        dynamic_ ? DomainTracker::firstNode(plan_) : plan_.order.front();
    for (;;) {
      if (limitsHit()) return;
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= roots.size()) return;
      const graph::NodeId r = roots[i];
      ++stats_.treeNodesVisited;
      mapping_[v0] = r;
      if (dynamic_) {
        // Domains absorb the used-set (r is dropped from every live domain),
        // so the dynamic path never consults `used_`.
        if (tracker_->assign(v0, r)) descendDynamic(1);
        tracker_->unassign();
      } else {
        used_.set(r);
        descend(1);
        used_.reset(r);
      }
      mapping_[v0] = graph::kInvalidNode;
      if (stopped_) return;
    }
  }

  [[nodiscard]] const SearchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool stoppedEarly() const noexcept { return stopped_; }

 private:
  bool limitsHit() {
    if (stopped_) return true;
    if (context_.shouldStop(stats_.treeNodesVisited)) stopped_ = true;
    return stopped_;
  }

  void collectCandidates(graph::NodeId v, std::vector<graph::NodeId>& out) {
    out.clear();
    const FilterMatrix& fm = plan_.filters;
    const auto& earlier = plan_.earlier[v];
    const auto emit = [&](std::size_t r) {
      out.push_back(static_cast<graph::NodeId>(r));
    };
    if (earlier.empty()) {
      if (fm.sharded()) {
        // Root / next component under sharding: only the shards with a
        // viable node for v can contribute; dead shards are never touched
        // (their scratch words go stale, but stale words are never read —
        // every consumer below walks only the ranges it just wrote).
        const ShardMap& smap = fm.shardMap();
        liveShards_ = fm.viableShardMask(v);
        for (std::uint64_t m = liveShards_; m != 0; m &= m - 1) {
          const auto k = static_cast<std::size_t>(std::countr_zero(m));
          const std::size_t b = smap.beginWord(k);
          const std::size_t e = smap.endWord(k);
          scratch_.assignAndNotRange(fm.viableBits(v), used_, b, e);
          scratch_.forEachSetInRange(b, e, emit);
        }
        return;
      }
      // Root / next component: viable minus used, fused into one pass.
      scratch_.assignAndNot(fm.viableBits(v), used_);
      scratch_.forEachSet(emit);
      return;
    }
    // Word-parallel path (eq. 2): when every constrainer cell carries bitset
    // rows, AND them into the reusable scratch with viability and `used_`
    // folded into the first constrainer's pass (a & b & ~c in one sweep),
    // then walk the surviving bits. One scratch per worker suffices: the
    // result is drained into the per-depth buffer before the search descends.
    bool allBits = true;
    for (const FilterMatrix::Constrainer& c : earlier) {
      if (!fm.hasCandidateBits(c.owner, c.slot)) {
        allBits = false;
        break;
      }
    }
    if (allBits) {
      const FilterMatrix::Constrainer& first = earlier.front();
      if (fm.sharded()) {
        // Live-shard mask: intersect the per-row occupancy summaries first
        // (one word per row instead of hostWords()), then run the word ANDs
        // only over the surviving shards. Occupancy is exact for viability
        // and for bits-backed cells — which is all of them on this path —
        // so a skipped shard provably holds no candidate. Ascending shard
        // order keeps the emit order ascending, matching the flat sweep.
        std::uint64_t live = fm.viableShardMask(v);
        for (const FilterMatrix::Constrainer& c : earlier) {
          live &= fm.candidateShardMask(c.owner, c.slot, mapping_[c.owner]);
          if (live == 0) return;
        }
        liveShards_ = live;
        const ShardMap& smap = fm.shardMap();
        for (std::uint64_t m = live; m != 0; m &= m - 1) {
          const auto k = static_cast<std::size_t>(std::countr_zero(m));
          const std::size_t b = smap.beginWord(k);
          const std::size_t e = smap.endWord(k);
          if (!scratch_.assignAndAndNotRange(
                  fm.candidateBits(first.owner, first.slot, mapping_[first.owner]),
                  fm.viableBits(v), used_, b, e)) {
            continue;
          }
          bool aliveHere = true;
          for (std::size_t i = 1; i < earlier.size(); ++i) {
            const FilterMatrix::Constrainer& c = earlier[i];
            if (!scratch_.andWithRange(
                    fm.candidateBits(c.owner, c.slot, mapping_[c.owner]), b, e)) {
              aliveHere = false;
              break;
            }
          }
          if (aliveHere) scratch_.forEachSetInRange(b, e, emit);
        }
        return;
      }
      if (!scratch_.assignAndAndNot(
              fm.candidateBits(first.owner, first.slot, mapping_[first.owner]),
              fm.viableBits(v), used_)) {
        return;
      }
      for (std::size_t i = 1; i < earlier.size(); ++i) {
        const FilterMatrix::Constrainer& c = earlier[i];
        if (!scratch_.andWith(fm.candidateBits(c.owner, c.slot, mapping_[c.owner]))) {
          return;
        }
      }
      scratch_.forEachSet(emit);
      return;
    }
    // Hybrid/CSR path: iterate the smallest sorted cell and probe the rest —
    // an O(1) bit test where a cell has rows, binary search where it is
    // sparse. Identical sets in identical (ascending) order as above.
    std::span<const graph::NodeId> base;
    const FilterMatrix::Constrainer* baseC = nullptr;
    std::size_t baseSize = static_cast<std::size_t>(-1);
    for (const FilterMatrix::Constrainer& c : earlier) {
      const auto cell = fm.candidates(c.owner, c.slot, mapping_[c.owner]);
      if (cell.size() < baseSize) {
        baseSize = cell.size();
        base = cell;
        baseC = &c;
      }
      if (baseSize == 0) return;
    }
    for (const graph::NodeId r : base) {
      if (used_.test(r)) continue;
      if (!fm.isViable(v, r)) continue;  // forward arc-consistency prune
      bool inAll = true;
      for (const FilterMatrix::Constrainer& c : earlier) {
        if (&c == baseC) continue;  // r was drawn from this cell
        if (fm.hasCandidateBits(c.owner, c.slot)) {
          if (!util::testBit(fm.candidateBits(c.owner, c.slot, mapping_[c.owner]), r)) {
            inAll = false;
            break;
          }
          continue;
        }
        const auto cell = fm.candidates(c.owner, c.slot, mapping_[c.owner]);
        if (!std::binary_search(cell.begin(), cell.end(), r)) {
          inAll = false;
          break;
        }
      }
      if (inAll) out.push_back(r);
    }
  }

  void descend(std::size_t depth) {
    if (limitsHit()) return;
    stats_.peakCovered = std::max(stats_.peakCovered, depth);
    if (depth == plan_.order.size()) {
      if (!context_.offerSolution(mapping_)) stopped_ = true;
      return;
    }
    const graph::NodeId v = plan_.order[depth];
    std::vector<graph::NodeId>& candidates = candidateBuffers_[depth];
    collectCandidates(v, candidates);
    if (randomize_) rng_.shuffle(candidates);

    for (const graph::NodeId r : candidates) {
      if (limitsHit()) return;
      ++stats_.treeNodesVisited;
      mapping_[v] = r;
      used_.set(r);
      descend(depth + 1);
      used_.reset(r);
      mapping_[v] = graph::kInvalidNode;
      if (stopped_) return;
    }
    ++stats_.backtracks;
  }

  /// Smallest-live-domain descent: pick the unassigned node with the fewest
  /// live candidates (tracker-maintained, exact in every bitset mode), walk
  /// its domain row, and let the tracker's wipeout signal prune assignments
  /// whose forward-checked neighbors lost their last candidate. Same
  /// solution set as descend(); only the visit order differs.
  void descendDynamic(std::size_t depth) {
    if (limitsHit()) return;
    stats_.peakCovered = std::max(stats_.peakCovered, depth);
    if (depth == plan_.order.size()) {
      if (!context_.offerSolution(mapping_)) stopped_ = true;
      return;
    }
    const graph::NodeId v = tracker_->selectNext();
    std::vector<graph::NodeId>& candidates = candidateBuffers_[depth];
    candidates.clear();
    util::forEachSetBit(tracker_->domain(v), [&](std::size_t r) {
      candidates.push_back(static_cast<graph::NodeId>(r));
    });
    if (randomize_) rng_.shuffle(candidates);

    for (const graph::NodeId r : candidates) {
      if (limitsHit()) return;
      ++stats_.treeNodesVisited;
      mapping_[v] = r;
      if (tracker_->assign(v, r)) descendDynamic(depth + 1);
      tracker_->unassign();
      mapping_[v] = graph::kInvalidNode;
      if (stopped_) return;
    }
    ++stats_.backtracks;
  }

  const FilterPlan& plan_;
  SearchContext& context_;
  bool randomize_;
  bool dynamic_;
  util::Rng rng_;

  Mapping mapping_;
  util::Bitset used_;     // host nodes taken by the current partial mapping
  util::Bitset scratch_;  // eq.-2 intersection accumulator
  /// Shards the most recent intersection could still reach (1-word bitset
  /// for <= 64 shards; all-ones outside sharded plans). Diagnostic mirror of
  /// the masks driving the range-restricted ANDs above.
  std::uint64_t liveShards_ = ~std::uint64_t{0};
  std::vector<std::vector<graph::NodeId>> candidateBuffers_;
  std::unique_ptr<DomainTracker> tracker_;  // dynamic ordering only
  SearchStats stats_;
  bool stopped_ = false;
};

}  // namespace

namespace detail {

EmbedResult filteredSearch(const Problem& problem, SearchContext& context,
                           bool randomize) {
  util::Stopwatch total;
  problem.validate();
  const SearchOptions& options = context.options();

  // Acquire the stage-1 plan: through the context's shared builder when one
  // is installed (service plan cache, portfolio race) — the first consumer
  // builds and everyone else reuses — otherwise via a private build.
  // FilterOverflow (the space blow-up that motivates LNS) propagates to the
  // caller; the portfolio converts it into a contender drop-out.
  std::shared_ptr<const FilterPlan> plan;
  // Collects the stats of a build THIS thread performs, even one that throws
  // mid-way — the cost of a doomed build (overflow, lost race, deadline)
  // must still reach the caller's stats. Stays zero for plan reusers and for
  // waiters whose shared build failed on another thread: they did no work.
  SearchStats setupStats;
  try {
    const auto cancelled = [&context] {
      // Spurious-cancellation probe: reports "cancelled" to the plan build
      // without any real stop. The catch below detects the lie (the context
      // was never actually stopped) and rethrows, making it a transient
      // failure instead of a silent empty-partial result.
      if (util::FaultInjector::enabled() &&
          util::faultFires(util::faultsite::kPlanCancel)) {
        return true;
      }
      return context.shouldStop();
    };
    if (const auto& builder = context.planBuilder()) {
      const SharedPlanBuilder::Acquired acquired =
          builder->get(problem, options, cancelled, &setupStats);
      plan = acquired.plan;
      SearchStats setup = plan->buildStats;
      if (!acquired.builtHere) {
        // The build was billed to the consumer that performed it; a reuser
        // inherits the entry count (a plan property) but no build cost.
        setup.filterBuildMs = 0.0;
        setup.constraintEvals = 0;
      }
      context.mergeStats(setup);
    } else {
      plan = FilterPlan::build(problem, options, cancelled, &setupStats);
      context.mergeStats(plan->buildStats);
    }
  } catch (const FilterOverflow&) {
    // Space blow-up (the documented failure mode that motivates LNS): merge
    // what the setup measured, then surface the overflow to the caller — the
    // portfolio converts it into a contender drop-out.
    context.mergeStats(setupStats);
    throw;
  } catch (const FilterBuildCancelled&) {
    // A genuine cancel always leaves the context stopped (the predicate
    // above routes through shouldStop, which records the reason). A
    // cancellation with NO stop on record is spurious — injected or a buggy
    // caller — and resolving it as an empty partial would silently lose the
    // request; rethrow so the retry/degradation layers treat it as a
    // transient failure instead.
    if (!context.stopRequested()) {
      context.mergeStats(setupStats);
      throw;
    }
    // Cancel or deadline fired mid-build (a lost race, an expired timeout):
    // the engine was told to stop before it could start searching.
    context.mergeStats(setupStats);
    EmbedResult result = context.finish(/*exhausted=*/false);
    result.stats.searchMs = total.elapsedMs();
    return result;
  }
  context.beginSearchPhase();

  // Empty query: the empty mapping is the one embedding.
  if (plan->order.empty()) {
    context.offerSolution({});
    EmbedResult result = context.finish(/*exhausted=*/true);
    result.stats.searchMs = total.elapsedMs();
    return result;
  }

  // Resolve Ordering::Auto against the built plan (a pure function of the
  // plan's viable-set sizes, so every worker and every portfolio contender
  // sharing this plan lands on the same choice).
  const Ordering ordering = chooseOrdering(*plan, options.ordering);

  // Dynamic ordering picks its own first node (smallest stage-1 viable set,
  // static position as tie-break) — identical to order.front() whenever the
  // plan was Lemma-1 sorted, but correct under the staticOrdering ablation.
  const graph::NodeId rootNode = ordering == Ordering::Dynamic
                                     ? DomainTracker::firstNode(*plan)
                                     : plan->order.front();
  const auto viableRoots = plan->filters.viable(rootNode);
  std::vector<graph::NodeId> roots(viableRoots.begin(), viableRoots.end());
  // The root shuffle gets its own stream: worker 0 seeds its candidate
  // shuffles with the raw seed, and reusing it here would hand same-length
  // lists the exact same permutation, correlating the root order with the
  // walk's candidate orders.
  constexpr std::uint64_t kRootShuffleStream = ~std::uint64_t{0};
  if (randomize) {
    util::Rng(util::deriveSeed(options.seed, kRootShuffleStream)).shuffle(roots);
  }

  std::size_t workers = options.rootSplitThreads == 0
                            ? util::sharedPool().threadCount() + 1
                            : options.rootSplitThreads;
  workers = std::max<std::size_t>(1, std::min(workers, std::max<std::size_t>(
                                                           roots.size(), 1)));
  // Never root-split from inside a shared-pool task (e.g. bench repetitions
  // run on the pool): the blocking wait below would pin a worker thread while
  // its subtasks sit queued behind it, and enough concurrent callers would
  // starve the queue into deadlock. The workers > 1 guard keeps the serial
  // path from lazily instantiating the pool just to ask.
  if (workers > 1 && util::sharedPool().isWorkerThread()) workers = 1;

  std::atomic<std::size_t> cursor{0};
  bool exhausted = true;
  if (workers == 1) {
    FilteredWorker worker(problem, *plan, context, randomize, ordering,
                          options.seed);
    worker.run(roots, cursor);
    context.mergeStats(worker.stats());
    exhausted = !worker.stoppedEarly();
  } else {
    // Root-split: workers-1 pool tasks plus this thread all pull root
    // candidates from the shared cursor. The caller participating keeps
    // forward progress guaranteed even when the pool is saturated or tiny.
    std::vector<std::unique_ptr<FilteredWorker>> team;
    team.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      team.push_back(std::make_unique<FilteredWorker>(
          problem, *plan, context, randomize, ordering,
          w == 0 ? options.seed : util::deriveSeed(options.seed, w)));
    }
    util::CompletionLatch latch;
    std::exception_ptr firstError;
    std::mutex errorMutex;
    // A throwing worker (user sink, bad_alloc) must not escape into the
    // pool's worker loop nor leave `pending` undecremented: capture the
    // first exception, cancel the siblings, and rethrow on this thread.
    const auto runGuarded = [&](std::size_t w) {
      try {
        team[w]->run(roots, cursor);
      } catch (...) {
        {
          std::lock_guard lock(errorMutex);
          if (!firstError) firstError = std::current_exception();
        }
        context.requestCancel();
      }
    };
    for (std::size_t w = 1; w < workers; ++w) {
      util::submitCounted(
          util::sharedPool(), latch,
          [&, w] {
            runGuarded(w);
            latch.done();
          },
          [&] { context.requestCancel(); });
    }
    runGuarded(0);
    latch.wait();
    if (firstError) std::rethrow_exception(firstError);
    for (const auto& worker : team) {
      context.mergeStats(worker->stats());
      exhausted = exhausted && !worker->stoppedEarly();
    }
  }

  EmbedResult result = context.finish(exhausted);
  result.stats.searchMs = total.elapsedMs();
  return result;
}

}  // namespace detail

EmbedResult ecfSearch(const Problem& problem, const SearchOptions& options,
                      const SolutionSink& sink) {
  SearchContext context(options, sink);
  return detail::filteredSearch(problem, context, /*randomize=*/false);
}

EmbedResult ecfSearch(const Problem& problem, SearchContext& context) {
  return detail::filteredSearch(problem, context, /*randomize=*/false);
}

}  // namespace netembed::core
