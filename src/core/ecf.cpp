#include "core/ecf.hpp"

#include <algorithm>
#include <numeric>

#include "core/filter.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netembed::core {

namespace {

class FilteredEngine {
 public:
  FilteredEngine(const Problem& problem, const SearchOptions& options,
                 const SolutionSink& sink, bool randomize)
      : problem_(problem),
        options_(options),
        sink_(sink),
        randomize_(randomize),
        rng_(options.seed),
        deadline_(options.timeout) {}

  EmbedResult run() {
    util::Stopwatch total;
    EmbedResult result;

    try {
      filters_ = FilterMatrix::build(problem_, options_, result.stats);
    } catch (const FilterOverflow&) {
      // Space blow-up: report inconclusive rather than dying (the documented
      // failure mode that motivates LNS).
      result.outcome = Outcome::Inconclusive;
      result.stats.searchMs = total.elapsedMs();
      throw;
    }

    const std::size_t nq = problem_.query->nodeCount();
    order_.resize(nq);
    std::iota(order_.begin(), order_.end(), 0);
    if (options_.staticOrdering) {
      // Lemma 1: ascending candidate count minimizes the permutation tree.
      std::stable_sort(order_.begin(), order_.end(),
                       [&](graph::NodeId a, graph::NodeId b) {
                         return filters_.viable(a).size() < filters_.viable(b).size();
                       });
    }
    position_.assign(nq, 0);
    for (std::size_t d = 0; d < nq; ++d) position_[order_[d]] = d;

    // Constrainers whose owner is assigned before v in the static order.
    earlier_.resize(nq);
    for (graph::NodeId v = 0; v < nq; ++v) {
      for (const FilterMatrix::Constrainer& c : filters_.constrainersOf(v)) {
        if (position_[c.owner] < position_[v]) earlier_[v].push_back(c);
      }
    }

    mapping_.assign(nq, graph::kInvalidNode);
    used_.assign(problem_.host->nodeCount(), false);
    candidateBuffers_.resize(nq);
    stats_ = &result.stats;
    solutionCount_ = 0;
    stopped_ = false;
    result.stats.firstMatchMs = -1.0;
    firstMatchTimer_.restart();

    descend(0, result);

    result.solutionCount = solutionCount_;
    result.stats.searchMs = total.elapsedMs();
    if (!stopped_) {
      result.outcome = Outcome::Complete;
    } else {
      result.outcome = solutionCount_ > 0 ? Outcome::Partial : Outcome::Inconclusive;
    }
    return result;
  }

 private:
  bool limitsHit() {
    if (stopped_) return true;
    if (deadline_.isBounded() &&
        stats_->treeNodesVisited % options_.checkStride == 0 && deadline_.expired()) {
      stopped_ = true;
    }
    return stopped_;
  }

  void collectCandidates(graph::NodeId v, std::vector<graph::NodeId>& out) {
    out.clear();
    const auto& earlier = earlier_[v];
    if (earlier.empty()) {
      for (const graph::NodeId r : filters_.viable(v)) {
        if (!used_[r]) out.push_back(r);
      }
      return;
    }
    // Intersect candidate cells of all previously-assigned neighbours,
    // iterating the smallest cell and probing the rest (eq. 2).
    std::span<const graph::NodeId> base;
    std::size_t baseSize = static_cast<std::size_t>(-1);
    for (const FilterMatrix::Constrainer& c : earlier) {
      const auto cell = filters_.candidates(c.owner, c.slot, mapping_[c.owner]);
      if (cell.size() < baseSize) {
        baseSize = cell.size();
        base = cell;
      }
      if (baseSize == 0) return;
    }
    for (const graph::NodeId r : base) {
      if (used_[r]) continue;
      if (!filters_.isViable(v, r)) continue;  // forward arc-consistency prune
      bool inAll = true;
      for (const FilterMatrix::Constrainer& c : earlier) {
        const auto cell = filters_.candidates(c.owner, c.slot, mapping_[c.owner]);
        if (cell.data() == base.data()) continue;
        if (!std::binary_search(cell.begin(), cell.end(), r)) {
          inAll = false;
          break;
        }
      }
      if (inAll) out.push_back(r);
    }
  }

  void descend(std::size_t depth, EmbedResult& result) {
    if (limitsHit()) return;
    stats_->peakCovered = std::max(stats_->peakCovered, depth);
    if (depth == order_.size()) {
      onSolution(result);
      return;
    }
    const graph::NodeId v = order_[depth];
    std::vector<graph::NodeId>& candidates = candidateBuffers_[depth];
    collectCandidates(v, candidates);
    if (randomize_) rng_.shuffle(candidates);

    for (const graph::NodeId r : candidates) {
      if (limitsHit()) return;
      ++stats_->treeNodesVisited;
      mapping_[v] = r;
      used_[r] = true;
      descend(depth + 1, result);
      used_[r] = false;
      mapping_[v] = graph::kInvalidNode;
      if (stopped_) return;
    }
    ++stats_->backtracks;
  }

  void onSolution(EmbedResult& result) {
    ++solutionCount_;
    if (stats_->firstMatchMs < 0) stats_->firstMatchMs = firstMatchTimer_.elapsedMs();
    if (result.mappings.size() < options_.storeLimit) result.mappings.push_back(mapping_);
    if (sink_ && !sink_(mapping_)) {
      stopped_ = true;
      return;
    }
    if (options_.maxSolutions != 0 && solutionCount_ >= options_.maxSolutions) {
      stopped_ = true;
    }
  }

  const Problem& problem_;
  const SearchOptions& options_;
  const SolutionSink& sink_;
  bool randomize_;
  util::Rng rng_;
  util::Deadline deadline_;
  util::Stopwatch firstMatchTimer_;

  FilterMatrix filters_;
  std::vector<graph::NodeId> order_;
  std::vector<std::size_t> position_;
  std::vector<std::vector<FilterMatrix::Constrainer>> earlier_;
  Mapping mapping_;
  std::vector<bool> used_;
  std::vector<std::vector<graph::NodeId>> candidateBuffers_;
  SearchStats* stats_ = nullptr;
  std::uint64_t solutionCount_ = 0;
  bool stopped_ = false;
};

}  // namespace

namespace detail {
EmbedResult filteredSearch(const Problem& problem, const SearchOptions& options,
                           const SolutionSink& sink, bool randomize) {
  return FilteredEngine(problem, options, sink, randomize).run();
}
}  // namespace detail

EmbedResult ecfSearch(const Problem& problem, const SearchOptions& options,
                      const SolutionSink& sink) {
  return detail::filteredSearch(problem, options, sink, /*randomize=*/false);
}

}  // namespace netembed::core
