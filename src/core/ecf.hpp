#pragma once
// ECF — Exhaustive search with Constraint Filtering (paper §V-A, Fig. 4).
//
// Depth-first traversal of the permutation tree in Lemma-1 static order
// (query nodes sorted by ascending candidate count), with candidates at each
// depth computed by intersecting stage-1 filter cells of already-assigned
// neighbours (eq. 2). Complete and correct: enumerates every feasible
// mapping when given enough time.

#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

/// Run ECF. With default options enumerates all feasible embeddings; use
/// options.maxSolutions / options.timeout to bound the search, or a sink to
/// stream mappings (return false from the sink to stop).
[[nodiscard]] EmbedResult ecfSearch(const Problem& problem,
                                    const SearchOptions& options = {},
                                    const SolutionSink& sink = {});

namespace detail {
/// Shared engine behind ECF and RWB; `randomize` shuffles candidate order at
/// every depth (RWB's random walk — backtracking keeps it complete).
[[nodiscard]] EmbedResult filteredSearch(const Problem& problem,
                                         const SearchOptions& options,
                                         const SolutionSink& sink, bool randomize);
}  // namespace detail

}  // namespace netembed::core
