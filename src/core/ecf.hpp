#pragma once
// ECF — Exhaustive search with Constraint Filtering (paper §V-A, Fig. 4).
//
// Depth-first traversal of the permutation tree in Lemma-1 static order
// (query nodes sorted by ascending candidate count), with candidates at each
// depth computed by intersecting stage-1 filter cells of already-assigned
// neighbours (eq. 2). Complete and correct: enumerates every feasible
// mapping when given enough time.
//
// Root-split parallelism (SearchOptions::rootSplitThreads): the first-depth
// candidate set is partitioned dynamically across workers, each exploring
// its subtrees against the shared immutable FilterMatrix. Subtrees of
// distinct root candidates are disjoint, so the workers' solution sets
// partition the serial enumeration exactly; maxSolutions/storeLimit and
// cancellation are honored through the shared SearchContext.

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

/// Run ECF. With default options enumerates all feasible embeddings; use
/// options.maxSolutions / options.timeout to bound the search, or a sink to
/// stream mappings (return false from the sink to stop).
[[nodiscard]] EmbedResult ecfSearch(const Problem& problem,
                                    const SearchOptions& options = {},
                                    const SolutionSink& sink = {});

/// Run ECF against an externally-owned context (portfolio contenders, tests
/// exercising cancellation). The context supplies the options.
[[nodiscard]] EmbedResult ecfSearch(const Problem& problem, SearchContext& context);

namespace detail {
/// Shared engine behind ECF and RWB; `randomize` shuffles candidate order at
/// every depth (RWB's random walk — backtracking keeps it complete).
[[nodiscard]] EmbedResult filteredSearch(const Problem& problem,
                                         SearchContext& context, bool randomize);
}  // namespace detail

}  // namespace netembed::core
