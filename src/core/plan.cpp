#include "core/plan.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace netembed::core {

namespace {
std::atomic<std::uint64_t> gPlanBuilds{0};
}  // namespace

std::uint64_t filterPlanBuilds() noexcept {
  return gPlanBuilds.load(std::memory_order_relaxed);
}

std::shared_ptr<const FilterPlan> FilterPlan::build(
    const Problem& problem, const SearchOptions& options,
    const std::function<bool()>& cancelled, SearchStats* partial) {
  // Build into the caller's partial-stats slot when given: if the matrix
  // build throws (overflow, cancel), the work done so far stays observable
  // instead of dying with the discarded plan.
  SearchStats local;
  SearchStats& stats = partial ? *partial : local;
  auto plan = std::make_shared<FilterPlan>();
  plan->filters = FilterMatrix::build(problem, options, stats, cancelled);

  const std::size_t nq = problem.query->nodeCount();
  plan->order.resize(nq);
  std::iota(plan->order.begin(), plan->order.end(), 0);
  if (options.staticOrdering) {
    // Lemma 1: ascending candidate count minimizes the permutation tree.
    std::stable_sort(plan->order.begin(), plan->order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return plan->filters.viable(a).size() <
                              plan->filters.viable(b).size();
                     });
  }
  std::vector<std::size_t> position(nq, 0);
  for (std::size_t d = 0; d < nq; ++d) position[plan->order[d]] = d;

  plan->earlier.resize(nq);
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (const FilterMatrix::Constrainer& c : plan->filters.constrainersOf(v)) {
      if (position[c.owner] < position[v]) plan->earlier[v].push_back(c);
    }
  }
  plan->buildStats = stats;
  gPlanBuilds.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

SharedPlanBuilder::Acquired SharedPlanBuilder::get(
    const Problem& problem, const SearchOptions& options,
    const std::function<bool()>& cancelled, SearchStats* partial) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (plan_) return {plan_, /*builtHere=*/false};
    if (error_) std::rethrow_exception(error_);
    if (!building_) {
      building_ = true;
      lock.unlock();
      std::shared_ptr<const FilterPlan> built;
      try {
        built = FilterPlan::build(problem, options, cancelled, partial);
      } catch (const FilterBuildCancelled&) {
        // This consumer was told to stop; the build itself is still wanted.
        // Release the builder role so a live waiter can take over.
        lock.lock();
        building_ = false;
        cv_.notify_all();
        throw;
      } catch (const FilterOverflow&) {
        // Deterministic: the plan can never materialize under these options
        // — record the failure for every sharer (a negative cache).
        lock.lock();
        building_ = false;
        error_ = std::current_exception();
        cv_.notify_all();
        throw;
      } catch (...) {
        // Transient failure (bad_alloc under pressure, a throwing user
        // constraint): fail this consumer but release the builder role — a
        // later consumer may well succeed, and a sticky record would poison
        // the cached builder for its whole (version, signature) lifetime.
        lock.lock();
        building_ = false;
        cv_.notify_all();
        throw;
      }
      lock.lock();
      building_ = false;
      plan_ = std::move(built);
      cv_.notify_all();
      return {plan_, /*builtHere=*/true};
    }
    // Someone else is building: wait, but keep honoring our own cancellation
    // (a portfolio loser waiting on the winner-to-be's build must still die).
    cv_.wait_for(lock, std::chrono::milliseconds(2),
                 [&] { return plan_ != nullptr || error_ != nullptr || !building_; });
    if (!plan_ && !error_ && cancelled && cancelled()) throw FilterBuildCancelled();
  }
}

std::shared_ptr<const FilterPlan> SharedPlanBuilder::ready() const {
  std::lock_guard lock(mutex_);
  return plan_;
}

}  // namespace netembed::core
