#include "core/plan.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "util/fault.hpp"

namespace netembed::core {

namespace {

std::atomic<std::uint64_t> gPlanBuilds{0};
std::atomic<std::uint64_t> gPlanPatches{0};
std::atomic<std::uint64_t> gPlanInPlacePatches{0};

/// Lemma-1 static order + per-node earlier-constrainer index over a filled
/// matrix. Shared verbatim by build() and patch(): a patched plan must sort
/// from the same iota start so its order is byte-identical to a fresh
/// build's.
void finalizeOrder(FilterPlan& plan, const SearchOptions& options, std::size_t nq) {
  plan.order.assign(nq, 0);
  std::iota(plan.order.begin(), plan.order.end(), 0);
  if (options.staticOrdering) {
    // Lemma 1: ascending candidate count minimizes the permutation tree.
    std::stable_sort(plan.order.begin(), plan.order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return plan.filters.viable(a).size() <
                              plan.filters.viable(b).size();
                     });
  }
  std::vector<std::size_t> position(nq, 0);
  for (std::size_t d = 0; d < nq; ++d) position[plan.order[d]] = d;

  plan.earlier.assign(nq, std::vector<FilterMatrix::Constrainer>{});
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (const FilterMatrix::Constrainer& c : plan.filters.constrainersOf(v)) {
      if (position[c.owner] < position[v]) plan.earlier[v].push_back(c);
    }
  }
}

/// The delta checks shared by both classifyDelta flavours: structural /
/// empty / the provable attribute-irrelevance proof. nullopt means "fall
/// through to the patch-vs-rebuild cost decision".
std::optional<DeltaImpact> classifyCommon(const Problem& problem,
                                          const ModelDelta& delta) {
  if (delta.structural) return DeltaImpact::Rebuild;
  if (delta.empty()) return DeltaImpact::Unaffected;

  // Attribute references are static in the constraint language, so the set
  // of attribute ids a plan can depend on is exact: a delta touching none of
  // them is provably irrelevant. Anything else (including a problem whose
  // constraints we cannot introspect) falls through to the patch/rebuild
  // decision.
  std::vector<graph::AttrId> referenced;
  const auto collect = [&referenced](const expr::Constraint* c) {
    if (!c) return;
    const std::vector<std::uint32_t>& used = c->program().attrsUsed();
    referenced.insert(referenced.end(), used.begin(), used.end());
  };
  collect(problem.edgeConstraint());
  collect(problem.nodeConstraint());
  std::sort(referenced.begin(), referenced.end());
  if (!delta.touchesAnyAttr(referenced)) return DeltaImpact::Unaffected;
  return std::nullopt;
}

}  // namespace

std::uint64_t filterPlanBuilds() noexcept {
  return gPlanBuilds.load(std::memory_order_relaxed);
}

std::uint64_t filterPlanPatches() noexcept {
  return gPlanPatches.load(std::memory_order_relaxed);
}

std::uint64_t filterPlanInPlacePatches() noexcept {
  return gPlanInPlacePatches.load(std::memory_order_relaxed);
}

DeltaImpact classifyDelta(const Problem& problem, const ModelDelta& delta) {
  if (const auto early = classifyCommon(problem, delta)) return *early;

  // Patch cost scales with the affected host edges (touched + incident to
  // touched nodes; affectedEdgeMask is the shared rule the patch itself
  // uses); past a fraction of the host the parallel full rebuild wins, and
  // a conservative cutoff also bounds the patch's worst case.
  const graph::Graph& h = *problem.host;
  std::vector<char> affected;
  if (!affectedEdgeMask(h, delta, affected)) {
    return DeltaImpact::Rebuild;  // foreign delta
  }
  std::size_t affectedCount = 0;
  for (const char a : affected) affectedCount += a != 0;
  if (affectedCount * kPatchEdgeShareDivisor > h.edgeCount()) {
    return DeltaImpact::Rebuild;
  }
  return DeltaImpact::Patchable;
}

DeltaImpact classifyDelta(const Problem& problem, const ModelDelta& delta,
                          const ShardMap& shards) {
  if (shards.shardCount() <= 1) return classifyDelta(problem, delta);
  if (const auto early = classifyCommon(problem, delta)) return *early;

  const graph::Graph& h = *problem.host;
  std::vector<char> affected;
  if (!affectedEdgeMask(h, delta, affected)) {
    return DeltaImpact::Rebuild;  // foreign delta
  }
  // The E/4 cutoff at shard granularity. An edge belongs to its endpoints'
  // shards; a boundary edge charges both (the patch re-evaluates it for
  // both shards' cells). A delta is Patchable when every touched shard is
  // individually cheap — its affected share under the cutoff, or its
  // absolute count under the floor (a localized delta on a sharded host
  // should never trigger a full O(E_query x E_host) rebuild just because it
  // saturates one tiny shard).
  const std::size_t s = shards.shardCount();
  std::vector<std::size_t> shardEdges(s, 0);
  std::vector<std::size_t> shardAffected(s, 0);
  for (graph::EdgeId he = 0; he < h.edgeCount(); ++he) {
    const std::size_t sA = shards.shardOf(h.edgeSource(he));
    const std::size_t sB = shards.shardOf(h.edgeTarget(he));
    ++shardEdges[sA];
    if (sB != sA) ++shardEdges[sB];
    if (affected[he]) {
      ++shardAffected[sA];
      if (sB != sA) ++shardAffected[sB];
    }
  }
  for (std::size_t k = 0; k < s; ++k) {
    if (shardAffected[k] <= kPatchShardEdgeFloor) continue;
    if (shardAffected[k] * kPatchEdgeShareDivisor > shardEdges[k]) {
      return DeltaImpact::Rebuild;
    }
  }
  return DeltaImpact::Patchable;
}

Ordering chooseOrdering(const FilterPlan& plan, Ordering requested) noexcept {
  if (requested != Ordering::Auto) return requested;
  // Dynamic pays for its per-assignment bookkeeping only when both ordering
  // signals point its way:
  //
  //  * viable-size spread: a wide spread means the Lemma-1 sort already
  //    front-loads the tight nodes (the sparse-instance shape, measured
  //    spread ~0.8 on the PlanetLab bench instance) and static ordering wins
  //    for free. Near-uniform sizes give the static sort nothing to order by.
  //
  //  * stage-1 density: totalEntries over the cells' theoretical capacity.
  //    Near-full cells (dense Waxman with widened windows: 0.90; pure
  //    topology cliques: 1.0) make every constrainer AND a no-op — the live
  //    domains barely diverge from the viable rows, smallest-domain
  //    selection learns nothing, and Dynamic measures 0.6-0.7x. Selective
  //    cells (the planted-bottleneck clique: 0.27) are where joint pruning
  //    collapses domains mid-descent and Dynamic measures 16x+.
  //
  // Thresholds sit in the wide empirical gaps between those poles, not at
  // fitted edges.
  constexpr double kSpreadThreshold = 0.15;
  constexpr double kDensityThreshold = 0.5;
  const std::size_t nq = plan.order.size();
  if (nq == 0) return Ordering::Static;
  std::size_t minSize = static_cast<std::size_t>(-1);
  std::size_t maxSize = 0;
  std::size_t cells = 0;
  for (std::size_t v = 0; v < nq; ++v) {
    const std::size_t n = plan.filters.viable(static_cast<graph::NodeId>(v)).size();
    minSize = std::min(minSize, n);
    maxSize = std::max(maxSize, n);
    cells += plan.filters.slots(static_cast<graph::NodeId>(v)).size();
  }
  if (maxSize == 0) return Ordering::Static;  // infeasible; order is moot
  const double spread =
      static_cast<double>(maxSize - minSize) / static_cast<double>(maxSize);
  if (spread > kSpreadThreshold) return Ordering::Static;
  const std::size_t capacity = cells * plan.filters.hostAdjacencySlots();
  if (capacity == 0) return Ordering::Static;  // edgeless query or host
  const double density =
      static_cast<double>(plan.filters.totalEntries()) /
      static_cast<double>(capacity);
  return density <= kDensityThreshold ? Ordering::Dynamic : Ordering::Static;
}

std::shared_ptr<const FilterPlan> FilterPlan::build(
    const Problem& problem, const SearchOptions& options,
    const std::function<bool()>& cancelled, SearchStats* partial) {
  // Injected allocation failure, thrown before any work: SharedPlanBuilder
  // treats it as a transient build failure (role released, next caller
  // retries), and the service's cache-bypass ladder catches repeats.
  if (util::FaultInjector::enabled()) {
    util::faultPoint(util::faultsite::kPlanBuild);
  }
  // Build into the caller's partial-stats slot when given: if the matrix
  // build throws (overflow, cancel), the work done so far stays observable
  // instead of dying with the discarded plan.
  SearchStats local;
  SearchStats& stats = partial ? *partial : local;
  auto plan = std::make_shared<FilterPlan>();
  plan->filters = FilterMatrix::build(problem, options, stats, cancelled);
  finalizeOrder(*plan, options, problem.query->nodeCount());
  plan->buildStats = stats;
  gPlanBuilds.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

std::shared_ptr<const FilterPlan> FilterPlan::patch(
    const FilterPlan& base, const Problem& problem, const SearchOptions& options,
    const ModelDelta& delta, const std::function<bool()>& cancelled,
    SearchStats* partial) {
  if (util::FaultInjector::enabled()) {
    util::faultPoint(util::faultsite::kPlanPatch);
  }
  SearchStats local;
  SearchStats& stats = partial ? *partial : local;
  auto plan = std::make_shared<FilterPlan>();
  // Structural copy first (no constraint evaluations — the dominant rebuild
  // cost), then splice the delta-affected cells in place. `base` stays
  // untouched: in-flight searches against the old version keep their plan.
  plan->filters = base.filters;
  plan->filters.patch(problem, options, delta, stats, cancelled);
  finalizeOrder(*plan, options, problem.query->nodeCount());
  plan->buildStats = stats;
  gPlanPatches.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

std::shared_ptr<const FilterPlan> FilterPlan::patchOwned(
    std::shared_ptr<const FilterPlan> base, const Problem& problem,
    const SearchOptions& options, const ModelDelta& delta,
    const std::function<bool()>& cancelled, SearchStats* partial) {
  // The count can only fall once we hold the last visible copy: no other
  // thread can clone a reference it does not have. So a reading of 1 here is
  // stable exclusivity, not a race window.
  if (base.use_count() != 1) {
    return patch(*base, problem, options, delta, cancelled, partial);
  }
  // Probe before the in-place mutation begins, so an injected failure leaves
  // the base plan intact (the copying patch() path has its own probe).
  if (util::FaultInjector::enabled()) {
    util::faultPoint(util::faultsite::kPlanPatch);
  }
  SearchStats local;
  SearchStats& stats = partial ? *partial : local;
  // Sole owner: splice the delta straight into the existing matrix. The
  // const_cast is sound — every FilterPlan is created mutable through
  // make_shared and only exposed through const pointers.
  auto* plan = const_cast<FilterPlan*>(base.get());
  plan->filters.patch(problem, options, delta, stats, cancelled);
  finalizeOrder(*plan, options, problem.query->nodeCount());
  plan->buildStats = stats;
  gPlanPatches.fetch_add(1, std::memory_order_relaxed);
  gPlanInPlacePatches.fetch_add(1, std::memory_order_relaxed);
  return base;
}

bool SharedPlanBuilder::mergeDelta(const ModelDelta& later) {
  std::lock_guard lock(mutex_);
  if (plan_ || error_ || building_ || !patchSource_) return false;
  patchSource_->delta.merge(later);
  return true;
}

SharedPlanBuilder::Acquired SharedPlanBuilder::get(
    const Problem& problem, const SearchOptions& options,
    const std::function<bool()>& cancelled, SearchStats* partial) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (plan_) return {plan_, /*builtHere=*/false};
    if (error_) std::rethrow_exception(error_);
    if (!building_) {
      building_ = true;
      // MOVED out (not copied) so the builder's own reference to the base
      // plan is gone during resolution — a copy here would keep use_count at
      // 2 and defeat patchOwned's exclusivity test. mergeDelta refuses to
      // touch the source while building_ is set, and a failed build restores
      // it below unless the in-place patch already consumed the base.
      std::optional<PatchSource> source = std::move(patchSource_);
      patchSource_.reset();
      // True once the base plan may have been mutated in place: from then on
      // a throw must NOT hand the (possibly corrupted) source to the next
      // taker — it full-builds instead.
      bool sourceConsumed = false;
      lock.unlock();
      std::shared_ptr<const FilterPlan> built;
      bool builtHere = true;
      try {
        if (source) {
          switch (classifyDelta(problem, source->delta,
                                source->base->filters.shardMap())) {
            case DeltaImpact::Unaffected:
              // Provably identical candidate sets: the inherited plan IS the
              // plan for this version. No build, no patch, no cost.
              built = source->base;
              builtHere = false;
              break;
            case DeltaImpact::Patchable:
              // With the builder's reference moved into `source`, a base no
              // in-flight search still holds is exclusively ours and patches
              // in place (no structural copy).
              sourceConsumed = true;
              built = FilterPlan::patchOwned(std::move(source->base), problem,
                                             options, source->delta, cancelled,
                                             partial);
              break;
            case DeltaImpact::Rebuild:
              built = FilterPlan::build(problem, options, cancelled, partial);
              break;
          }
        } else {
          built = FilterPlan::build(problem, options, cancelled, partial);
        }
      } catch (const FilterBuildCancelled&) {
        // This consumer was told to stop; the build itself is still wanted.
        // Release the builder role so a live waiter can take over, with the
        // patch source restored when it is still intact.
        lock.lock();
        building_ = false;
        if (source && !sourceConsumed) patchSource_ = std::move(source);
        cv_.notify_all();
        throw;
      } catch (const FilterOverflow&) {
        // Deterministic: the plan can never materialize under these options
        // — record the failure for every sharer (a negative cache).
        lock.lock();
        building_ = false;
        error_ = std::current_exception();
        cv_.notify_all();
        throw;
      } catch (...) {
        // Transient failure (bad_alloc under pressure, a throwing user
        // constraint): fail this consumer but release the builder role — a
        // later consumer may well succeed, and a sticky record would poison
        // the cached builder for its whole (version, signature) lifetime.
        lock.lock();
        building_ = false;
        if (source && !sourceConsumed) patchSource_ = std::move(source);
        cv_.notify_all();
        throw;
      }
      lock.lock();
      building_ = false;
      plan_ = std::move(built);
      cv_.notify_all();
      return {plan_, builtHere};
    }
    // Someone else is building: wait, but keep honoring our own cancellation
    // (a portfolio loser waiting on the winner-to-be's build must still die).
    cv_.wait_for(lock, std::chrono::milliseconds(2),
                 [&] { return plan_ != nullptr || error_ != nullptr || !building_; });
    if (!plan_ && !error_ && cancelled && cancelled()) throw FilterBuildCancelled();
  }
}

std::shared_ptr<const FilterPlan> SharedPlanBuilder::ready() const {
  std::lock_guard lock(mutex_);
  return plan_;
}

}  // namespace netembed::core
