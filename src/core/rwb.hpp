#pragma once
// RWB — Random Walk search with Backtracking (paper §V-B, Fig. 5).
//
// Identical pruning machinery to ECF, but candidate mappings are visited in
// uniformly random order and the search stops at the first feasible
// embedding (maxSolutions == 0 is treated as 1). Backtracking makes the walk
// exhaustive, so a no-solution return still proves infeasibility.

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

[[nodiscard]] EmbedResult rwbSearch(const Problem& problem,
                                    const SearchOptions& options = {},
                                    const SolutionSink& sink = {});

/// Run against an externally-owned context (the context must already carry
/// RWB's effective options — maxSolutions >= 1).
[[nodiscard]] EmbedResult rwbSearch(const Problem& problem, SearchContext& context);

}  // namespace netembed::core
