#include "core/lns.hpp"

#include <algorithm>

#include "util/bitset.hpp"
#include "util/timer.hpp"

namespace netembed::core {

namespace {

class LnsEngine {
 public:
  LnsEngine(const Problem& problem, SearchContext& context)
      : problem_(problem), options_(context.options()), context_(context) {}

  EmbedResult run() {
    util::Stopwatch total;
    problem_.validate();
    context_.beginSearchPhase();

    const std::size_t nq = problem_.query->nodeCount();
    const std::size_t nr = problem_.host->nodeCount();
    mapping_.assign(nq, graph::kInvalidNode);
    covered_.assign(nq);
    linksToCovered_.assign(nq, 0);
    used_.assign(nr);
    nodeOkKnown_.assign(nq * nr, 0);
    coveredCount_ = 0;
    stopped_ = false;

    descend();

    context_.mergeStats(stats_);
    EmbedResult result = context_.finish(/*exhausted=*/!stopped_);
    result.stats.searchMs = total.elapsedMs();
    return result;
  }

 private:
  const graph::Graph& query() const { return *problem_.query; }
  const graph::Graph& host() const { return *problem_.host; }

  bool limitsHit() {
    if (stopped_) return true;
    if (context_.shouldStop(stats_.treeNodesVisited)) stopped_ = true;
    return stopped_;
  }

  /// Memoized node-level viability (node constraint + degree bound).
  bool nodeViable(graph::NodeId v, graph::NodeId r) {
    std::uint8_t& known = nodeOkKnown_[v * used_.size() + r];
    if (known == 0) {
      known = (problem_.degreeOk(v, r) && problem_.nodeOk(v, r)) ? 2 : 1;
    }
    return known == 2;
  }

  /// Pick the next query node to cover: a Neighbor-set node (most links to
  /// Covered when the heuristic is on), or — when the Neighbor set is empty,
  /// i.e. at the start or across disconnected query components — an
  /// uncovered node (max degree when that heuristic is on).
  graph::NodeId chooseNext() const {
    graph::NodeId best = graph::kInvalidNode;
    // Neighbor set first.
    for (graph::NodeId v = 0; v < covered_.size(); ++v) {
      if (covered_.test(v) || linksToCovered_[v] == 0) continue;
      if (best == graph::kInvalidNode) {
        best = v;
        if (!options_.lnsMostConnectedNeighbor) return best;
        continue;
      }
      if (linksToCovered_[v] > linksToCovered_[best] ||
          (linksToCovered_[v] == linksToCovered_[best] &&
           query().degree(v) > query().degree(best))) {
        best = v;
      }
    }
    if (best != graph::kInvalidNode) return best;
    // Start / next component.
    for (graph::NodeId v = 0; v < covered_.size(); ++v) {
      if (covered_.test(v)) continue;
      if (best == graph::kInvalidNode) {
        best = v;
        if (!options_.lnsMaxDegreeStart) return best;
        continue;
      }
      if (query().degree(v) > query().degree(best)) best = v;
    }
    return best;
  }

  /// All query edges connecting v to covered nodes, with the orientation in
  /// which they are used (qa -> qb is the stored edge direction).
  struct ConnectingEdge {
    graph::EdgeId qedge;
    graph::NodeId coveredNode;
    bool vIsSource;  // edge stored as (v -> coveredNode)
  };

  void collectConnectingEdges(graph::NodeId v, std::vector<ConnectingEdge>& out) const {
    out.clear();
    // vIsSource reflects the *stored* query edge orientation (constraints
    // bind vSource/vTarget to the stored endpoints, even on undirected
    // graphs where adjacency lists run both ways).
    for (const graph::Neighbor& nb : query().neighbors(v)) {
      if (covered_.test(nb.node)) {
        out.push_back({nb.edge, nb.node, query().edgeSource(nb.edge) == v});
      }
    }
    if (query().directed()) {
      for (const graph::Neighbor& nb : query().inNeighbors(v)) {
        if (covered_.test(nb.node)) out.push_back({nb.edge, nb.node, false});
      }
    }
  }

  /// Does host node s work for query node v given the current partial map?
  /// Checks adjacency + constraint for every connecting edge.
  bool candidateOk(graph::NodeId v, graph::NodeId s,
                   const std::vector<ConnectingEdge>& connecting) {
    if (used_.test(s) || !nodeViable(v, s)) return false;
    for (const ConnectingEdge& ce : connecting) {
      const graph::NodeId rw = mapping_[ce.coveredNode];
      // Required host edge orientation mirrors the query edge orientation.
      const graph::NodeId from = ce.vIsSource ? s : rw;
      const graph::NodeId to = ce.vIsSource ? rw : s;
      const auto he = host().findEdge(from, to);
      if (!he) return false;
      const graph::NodeId qa = ce.vIsSource ? v : ce.coveredNode;
      const graph::NodeId qb = ce.vIsSource ? ce.coveredNode : v;
      if (!problem_.edgeOk(ce.qedge, qa, qb, *he, from, to, stats_.constraintEvals)) {
        return false;
      }
    }
    return true;
  }

  void descend() {
    if (limitsHit()) return;
    if (coveredCount_ == query().nodeCount()) {
      if (!context_.offerSolution(mapping_)) stopped_ = true;
      return;
    }
    const graph::NodeId v = chooseNext();

    std::vector<ConnectingEdge> connecting;
    collectConnectingEdges(v, connecting);

    if (connecting.empty()) {
      // Start node or disconnected component: every viable unused host node.
      for (graph::NodeId s = 0; s < used_.size(); ++s) {
        if (limitsHit()) return;
        if (used_.test(s) || !nodeViable(v, s)) continue;
        ++stats_.treeNodesVisited;
        push(v, s);
        descend();
        pop(v, s);
        if (stopped_) return;
      }
      ++stats_.backtracks;
      return;
    }

    // Iterate host neighbours of the covered-neighbour image with the
    // smallest candidate fan-out, in the correct orientation.
    const ConnectingEdge* base = &connecting.front();
    std::size_t baseSize = static_cast<std::size_t>(-1);
    for (const ConnectingEdge& ce : connecting) {
      const graph::NodeId rw = mapping_[ce.coveredNode];
      // v plays source => host edge s->rw => iterate in-neighbours of rw.
      const std::size_t fanout =
          host().directed()
              ? (ce.vIsSource ? host().inNeighbors(rw).size()
                              : host().neighbors(rw).size())
              : host().neighbors(rw).size();
      if (fanout < baseSize) {
        baseSize = fanout;
        base = &ce;
      }
    }
    const graph::NodeId baseImage = mapping_[base->coveredNode];
    const std::span<const graph::Neighbor> fan =
        host().directed() && base->vIsSource ? host().inNeighbors(baseImage)
                                             : host().neighbors(baseImage);

    for (const graph::Neighbor& nb : fan) {
      if (limitsHit()) return;
      const graph::NodeId s = nb.node;
      if (!candidateOk(v, s, connecting)) continue;
      ++stats_.treeNodesVisited;
      push(v, s);
      descend();
      pop(v, s);
      if (stopped_) return;
    }
    ++stats_.backtracks;
  }

  void push(graph::NodeId v, graph::NodeId s) {
    mapping_[v] = s;
    covered_.set(v);
    used_.set(s);
    ++coveredCount_;
    stats_.peakCovered = std::max(stats_.peakCovered, coveredCount_);
    forEachQueryNeighbor(v, [&](graph::NodeId u) {
      if (!covered_.test(u)) ++linksToCovered_[u];
    });
  }

  void pop(graph::NodeId v, graph::NodeId s) {
    forEachQueryNeighbor(v, [&](graph::NodeId u) {
      if (!covered_.test(u)) --linksToCovered_[u];
    });
    --coveredCount_;
    used_.reset(s);
    covered_.reset(v);
    mapping_[v] = graph::kInvalidNode;
  }

  template <typename Fn>
  void forEachQueryNeighbor(graph::NodeId v, Fn&& fn) const {
    for (const graph::Neighbor& nb : query().neighbors(v)) fn(nb.node);
    if (query().directed()) {
      for (const graph::Neighbor& nb : query().inNeighbors(v)) fn(nb.node);
    }
  }

  const Problem& problem_;
  const SearchOptions& options_;
  SearchContext& context_;

  Mapping mapping_;
  util::Bitset covered_;  // query nodes already mapped
  std::vector<std::uint32_t> linksToCovered_;
  util::Bitset used_;     // host nodes taken by the current partial mapping
  std::vector<std::uint8_t> nodeOkKnown_;  // nq x nr flat: 0 unknown, 1 no, 2 yes
  std::size_t coveredCount_ = 0;
  SearchStats stats_;
  bool stopped_ = false;
};

}  // namespace

EmbedResult lnsSearch(const Problem& problem, const SearchOptions& options,
                      const SolutionSink& sink) {
  SearchContext context(options, sink);
  return LnsEngine(problem, context).run();
}

EmbedResult lnsSearch(const Problem& problem, SearchContext& context) {
  return LnsEngine(problem, context).run();
}

}  // namespace netembed::core
