#pragma once
// The delta vocabulary for live host-model mutations.
//
// NETEMBED is a service over a monitored network: host attributes change
// continuously while queries run. A ModelDelta is the record of one (or a
// merged run of) mutation(s) — which host nodes and edges were touched, and
// which attribute ids changed — precise enough for the stage-1 plan layer to
// re-evaluate only the filter cells those elements can influence
// (FilterPlan::patch) instead of rebuilding from scratch, and for the
// service plan cache to carry plans across version bumps.
//
// `structural` marks mutations no patch can follow (nodes/edges added or
// removed, a wholesale model replacement): consumers must rebuild.

#include <algorithm>
#include <vector>

#include "graph/attr_map.hpp"
#include "graph/graph.hpp"

namespace netembed::core {

struct ModelDelta {
  /// Touched host nodes / edges; sorted ascending and deduplicated once
  /// normalize() has run (producers append cheaply, then normalize once per
  /// mutation — a measurement batch must not pay a sorted insert per entry).
  std::vector<graph::NodeId> nodes;
  std::vector<graph::EdgeId> edges;
  /// Union of changed attribute ids (same normalized form).
  std::vector<graph::AttrId> attrs;
  /// Topology changed (or the whole model was replaced): not patchable.
  bool structural = false;

  [[nodiscard]] bool empty() const noexcept {
    return !structural && nodes.empty() && edges.empty();
  }

  void clear() {
    nodes.clear();
    edges.clear();
    attrs.clear();
    structural = false;
  }

  /// Record one node / edge touch. Amortized O(1): duplicates are collapsed
  /// by normalize(), not here.
  void touchNode(graph::NodeId n, graph::AttrId attr) {
    nodes.push_back(n);
    attrs.push_back(attr);
  }
  void touchEdge(graph::EdgeId e, graph::AttrId attr) {
    edges.push_back(e);
    attrs.push_back(attr);
  }

  /// Sort + deduplicate the three sets. Producers call this once per
  /// mutation before handing the delta to consumers; every method below
  /// assumes normalized form.
  void normalize() {
    sortUnique(nodes);
    sortUnique(edges);
    sortUnique(attrs);
  }

  /// Fold a later (normalized) delta into this one: the merged delta
  /// describes both mutations applied in sequence (set union; structural is
  /// sticky).
  void merge(const ModelDelta& later) {
    structural = structural || later.structural;
    nodes.insert(nodes.end(), later.nodes.begin(), later.nodes.end());
    edges.insert(edges.end(), later.edges.begin(), later.edges.end());
    attrs.insert(attrs.end(), later.attrs.begin(), later.attrs.end());
    normalize();
  }

  /// True when any changed attribute id is in `referenced` (both sorted).
  [[nodiscard]] bool touchesAnyAttr(const std::vector<graph::AttrId>& referenced) const {
    auto a = attrs.begin();
    auto b = referenced.begin();
    while (a != attrs.end() && b != referenced.end()) {
      if (*a == *b) return true;
      *a < *b ? ++a : ++b;
    }
    return false;
  }

 private:
  template <class V>
  static void sortUnique(V& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
};

/// Mark the host edges whose stage-1 filter outcome `delta` can change: the
/// touched edges plus every edge incident to a touched node (edge
/// constraints may read endpoint attributes). This is THE rule both the
/// patch-vs-rebuild cost model (classifyDelta) and the patch itself
/// (FilterMatrix::patch) must agree on, so it lives in exactly one place.
/// Returns false when the delta references ids outside `host` (a foreign
/// delta) — callers must treat that as not patchable.
[[nodiscard]] inline bool affectedEdgeMask(const graph::Graph& host,
                                           const ModelDelta& delta,
                                           std::vector<char>& mask) {
  mask.assign(host.edgeCount(), 0);
  for (const graph::EdgeId e : delta.edges) {
    if (e >= host.edgeCount()) return false;
    mask[e] = 1;
  }
  for (const graph::NodeId n : delta.nodes) {
    if (n >= host.nodeCount()) return false;
    for (const graph::Neighbor& nb : host.neighbors(n)) mask[nb.edge] = 1;
    for (const graph::Neighbor& nb : host.inNeighbors(n)) mask[nb.edge] = 1;
  }
  return true;
}

}  // namespace netembed::core
