#pragma once
// The shareable stage-1 search plan.
//
// ECF and RWB spend their setup phase building the same three immutable
// structures: the FilterMatrix, the Lemma-1 static order, and the per-node
// index of constrainers assigned earlier in that order. The plan depends only
// on the problem instance and the plan-relevant options (staticOrdering,
// maxFilterEntries, bitsetMode — the latter changes only the cell
// representation, never the candidate sets) — not on seeds, budgets or
// thread counts — so one build
// can back any number of concurrent searches: every root-split worker, both
// filtered contenders of a portfolio race, and every queued service request
// with the same (model version, query signature).
//
// SharedPlanBuilder is the sharing primitive: consumers call get() with their
// own Problem and cancellation predicate; the first caller builds, the rest
// block on the same build and receive the shared immutable plan. A cancelled
// builder hands the build over to the next live waiter, so one consumer's
// deadline never poisons the plan for the others.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/delta.hpp"
#include "core/filter.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

/// How a host-model delta relates to a stage-1 plan for `problem`.
enum class DeltaImpact : std::uint8_t {
  /// No constraint reads any changed attribute (attribute references are
  /// static in the expression language, so this is provable): the candidate
  /// sets cannot have moved and the old plan serves the new version as-is.
  Unaffected,
  /// Bounded incremental re-evaluation pays: patch the plan.
  Patchable,
  /// Structural change, or the delta reaches too much of the host for a
  /// patch to beat a (parallel) rebuild: fall back to a full build.
  Rebuild,
};

/// Conservative patch-vs-rebuild threshold: a delta whose affected host
/// edges (touched edges + edges incident to touched nodes) exceed 1/this of
/// the host's edge count is classified Rebuild.
inline constexpr std::size_t kPatchEdgeShareDivisor = 4;

[[nodiscard]] DeltaImpact classifyDelta(const Problem& problem,
                                        const ModelDelta& delta);

/// Shard-scoped patch floor: a touched shard whose affected-edge count stays
/// at or below this many edges is always patchable regardless of the shard's
/// edge-share ratio — on a sharded host a delta confined to a couple of
/// small shards should never force a full rebuild.
inline constexpr std::size_t kPatchShardEdgeFloor = 256;

/// classifyDelta against the shard partition a base plan was built with.
/// Unsharded maps reduce exactly to the flat rule above. Sharded, the E/4
/// cutoff applies per *touched* shard (cross-shard edges charge both sides):
/// the patch is accepted when every touched shard is individually cheap —
/// either under its own edge-share cutoff or under kPatchShardEdgeFloor —
/// because patch work is shard-local under the sharded build.
[[nodiscard]] DeltaImpact classifyDelta(const Problem& problem,
                                        const ModelDelta& delta,
                                        const ShardMap& shards);

/// Immutable per-instance setup shared by every filtered search: stage-1
/// filters, Lemma-1 static order, and for each query node the constrainers
/// whose owner precedes it in that order. Built once, read concurrently
/// without synchronization.
struct FilterPlan {
  FilterMatrix filters;
  std::vector<graph::NodeId> order;
  std::vector<std::vector<FilterMatrix::Constrainer>> earlier;
  /// What the build cost (filterEntries / filterBuildMs / constraintEvals).
  /// Consumers that reuse the plan merge the entries but not the build time.
  SearchStats buildStats;

  /// Build the plan. Throws FilterOverflow past options.maxFilterEntries and
  /// FilterBuildCancelled when `cancelled` fires mid-build. On a throw,
  /// `partial` (when given) holds the stats of the work performed before the
  /// failure, so the caller can still account a doomed build's cost.
  [[nodiscard]] static std::shared_ptr<const FilterPlan> build(
      const Problem& problem, const SearchOptions& options,
      const std::function<bool()>& cancelled = {}, SearchStats* partial = nullptr);

  /// Derive the plan for a mutated host from `base` (built against the
  /// pre-mutation host) by re-evaluating only the delta-affected filter
  /// cells, then recomputing the Lemma-1 order and constrainer index exactly
  /// as build() would — the result is candidate-set- and order-identical to
  /// a from-scratch build against `problem.host`. The caller must have
  /// classified the delta Patchable (or Unaffected, where reusing `base`
  /// directly is cheaper still). Throws like build(); `base` is never
  /// modified.
  [[nodiscard]] static std::shared_ptr<const FilterPlan> patch(
      const FilterPlan& base, const Problem& problem, const SearchOptions& options,
      const ModelDelta& delta, const std::function<bool()>& cancelled = {},
      SearchStats* partial = nullptr);

  /// patch() that takes ownership of `base`. When the caller's reference is
  /// the last one (use_count() == 1 — no in-flight search, no other cache
  /// entry), the cells are spliced directly into the existing matrix,
  /// skipping the structural copy entirely; otherwise this falls back to
  /// patch()'s copy-then-splice. The in-place mutation is invisible by
  /// construction: a sole owner has, by definition, no concurrent reader.
  /// On a throw from the in-place path the (consumed) base is corrupted —
  /// callers must treat the pointer they passed as gone either way.
  [[nodiscard]] static std::shared_ptr<const FilterPlan> patchOwned(
      std::shared_ptr<const FilterPlan> base, const Problem& problem,
      const SearchOptions& options, const ModelDelta& delta,
      const std::function<bool()>& cancelled = {}, SearchStats* partial = nullptr);
};

/// Resolve Ordering::Auto against a built plan; Static/Dynamic pass through.
/// The predictor is the relative spread of the plan's stage-1 viable-set
/// sizes (one popcount per query node, already materialized as list sizes):
/// when the sizes are near-uniform the Lemma-1 static order has nothing to
/// discriminate on and smallest-live-domain dynamic ordering pays for its
/// bookkeeping many times over (17x on planted cliques); when they spread,
/// the static sort already captures most of the ordering win and Dynamic's
/// per-assignment cost is pure regression (0.73x on brite_dense).
/// Deterministic per plan — every root-split worker and portfolio contender
/// resolves to the same choice.
[[nodiscard]] Ordering chooseOrdering(const FilterPlan& plan,
                                      Ordering requested) noexcept;

/// Process-wide count of *completed* FilterPlan builds. Test and bench hook:
/// a portfolio race or a same-signature batch asserts sharing by taking the
/// counter delta around the run.
[[nodiscard]] std::uint64_t filterPlanBuilds() noexcept;

/// Process-wide count of completed FilterPlan::patch calls — the
/// incremental-update twin of filterPlanBuilds(): a monitoring-style version
/// bump that re-keys cached plans shows up here instead of in the build
/// counter.
[[nodiscard]] std::uint64_t filterPlanPatches() noexcept;

/// Of filterPlanPatches(), how many ran in place on an exclusively-owned
/// plan (no structural copy). Tests assert the cache's delta re-keying takes
/// the in-place path when nothing else holds the old plan.
[[nodiscard]] std::uint64_t filterPlanInPlacePatches() noexcept;

/// One lazily-built FilterPlan shared by several consumers.
///
/// Thread-safe. The first get() builds (polling its caller's `cancelled`
/// predicate); concurrent get()s block until the build resolves. Outcomes:
///  * success        — every caller receives the same shared plan;
///  * FilterOverflow — sticky: recorded and rethrown to every caller (the
///    plan can never materialize under these options);
///  * FilterBuildCancelled — NOT sticky: the cancelled caller rethrows, and
///    the next live waiter takes over the build, so a shared builder survives
///    any individual consumer's deadline or lost race;
///  * anything else (bad_alloc, a throwing constraint) — NOT sticky either:
///    the failing caller rethrows and the builder role is released, so a
///    transient failure never poisons the builder for later consumers.
class SharedPlanBuilder {
 public:
  SharedPlanBuilder() = default;
  /// Pre-resolved builder: every get() returns `plan` without building.
  explicit SharedPlanBuilder(std::shared_ptr<const FilterPlan> plan)
      : plan_(std::move(plan)) {}

  /// A plan inherited across a model-version bump: `base` was built against
  /// the pre-delta host. The first get() resolves it against its caller's
  /// (post-delta) problem — reusing `base` outright when classifyDelta says
  /// Unaffected, patching when Patchable, falling back to a full build when
  /// Rebuild. The service plan cache re-keys entries with this instead of
  /// invalidating them.
  struct PatchSource {
    std::shared_ptr<const FilterPlan> base;
    ModelDelta delta;
  };
  explicit SharedPlanBuilder(PatchSource source)
      : patchSource_(std::move(source)) {}

  /// Fold a later delta into an unresolved patch source, so one builder can
  /// absorb several version bumps before anyone asks for the plan. Returns
  /// false — the caller must drop or replace the builder — once resolution
  /// started (plan built / building / failed) or there is no patch source.
  /// The cache calls this only on builders it exclusively owns: merging
  /// under the feet of an in-flight get() would hand that caller a plan for
  /// a different version than its snapshot.
  [[nodiscard]] bool mergeDelta(const ModelDelta& later);

  struct Acquired {
    std::shared_ptr<const FilterPlan> plan;
    /// True when this call performed the build — the caller that accounts
    /// the build cost in its stats.
    bool builtHere = false;
  };

  /// Get the shared plan, building it on first call. `problem` must describe
  /// the same instance for every caller (that is the sharer's contract — the
  /// portfolio passes one problem, the service cache keys by signature);
  /// each caller passes its own reference because the earliest acquirer's
  /// problem may die before a later caller triggers the build. When this
  /// call performs a build that throws, `partial` (if given) receives the
  /// stats of the work done before the failure.
  [[nodiscard]] Acquired get(const Problem& problem, const SearchOptions& options,
                             const std::function<bool()>& cancelled = {},
                             SearchStats* partial = nullptr);

  /// The plan if already built, nullptr otherwise. Never blocks.
  [[nodiscard]] std::shared_ptr<const FilterPlan> ready() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<const FilterPlan> plan_;  // set at most once
  std::exception_ptr error_;                // sticky failure (FilterOverflow)
  bool building_ = false;
  std::optional<PatchSource> patchSource_;  // cleared once plan_ resolves
};

}  // namespace netembed::core
