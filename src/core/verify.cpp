#include "core/verify.hpp"

#include <vector>

namespace netembed::core {

namespace {
VerifyResult fail(std::string reason) { return {false, std::move(reason)}; }
}  // namespace

VerifyResult verifyMapping(const Problem& problem, const Mapping& mapping) {
  problem.validate();
  const graph::Graph& q = *problem.query;
  const graph::Graph& h = *problem.host;

  if (mapping.size() != q.nodeCount()) {
    return fail("mapping size " + std::to_string(mapping.size()) + " != query size " +
                std::to_string(q.nodeCount()));
  }

  std::vector<bool> used(h.nodeCount(), false);
  for (graph::NodeId v = 0; v < mapping.size(); ++v) {
    const graph::NodeId r = mapping[v];
    if (r == graph::kInvalidNode) {
      return fail("query node " + q.nodeName(v) + " is unmapped");
    }
    if (r >= h.nodeCount()) {
      return fail("query node " + q.nodeName(v) + " maps outside the host");
    }
    if (used[r]) {
      return fail("host node " + h.nodeName(r) + " used twice (not injective)");
    }
    used[r] = true;
    if (!problem.nodeOk(v, r)) {
      return fail("node constraint fails for " + q.nodeName(v) + "->" + h.nodeName(r));
    }
  }

  std::uint64_t evals = 0;
  for (graph::EdgeId e = 0; e < q.edgeCount(); ++e) {
    const graph::NodeId qa = q.edgeSource(e);
    const graph::NodeId qb = q.edgeTarget(e);
    const graph::NodeId ra = mapping[qa];
    const graph::NodeId rb = mapping[qb];
    const auto he = h.findEdge(ra, rb);
    if (!he) {
      return fail("query edge (" + q.nodeName(qa) + "," + q.nodeName(qb) +
                  ") has no host edge between " + h.nodeName(ra) + " and " +
                  h.nodeName(rb));
    }
    // For undirected hosts the stored orientation of the found edge may be
    // rb->ra; the constraint is evaluated in the mapping's orientation.
    if (!problem.edgeOk(e, qa, qb, *he, ra, rb, evals)) {
      return fail("edge constraint fails for query edge (" + q.nodeName(qa) + "," +
                  q.nodeName(qb) + ") on host edge (" + h.nodeName(ra) + "," +
                  h.nodeName(rb) + ")");
    }
  }
  return {true, {}};
}

}  // namespace netembed::core
