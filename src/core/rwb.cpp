#include "core/rwb.hpp"

#include "core/ecf.hpp"

namespace netembed::core {

EmbedResult rwbSearch(const Problem& problem, const SearchOptions& options,
                      const SolutionSink& sink) {
  SearchOptions effective = options;
  if (effective.maxSolutions == 0) effective.maxSolutions = 1;
  SearchContext context(effective, sink);
  return detail::filteredSearch(problem, context, /*randomize=*/true);
}

EmbedResult rwbSearch(const Problem& problem, SearchContext& context) {
  return detail::filteredSearch(problem, context, /*randomize=*/true);
}

}  // namespace netembed::core
