#include "core/rwb.hpp"

#include "core/ecf.hpp"

namespace netembed::core {

EmbedResult rwbSearch(const Problem& problem, const SearchOptions& options,
                      const SolutionSink& sink) {
  SearchOptions effective = options;
  if (effective.maxSolutions == 0) effective.maxSolutions = 1;
  return detail::filteredSearch(problem, effective, sink, /*randomize=*/true);
}

}  // namespace netembed::core
