#include "core/filter.hpp"

#include <algorithm>
#include <atomic>

#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace netembed::core {

namespace {

/// Dense bitmap of node-level viability (node constraint + degree bound),
/// computed once up front; O(NQ * NR) evaluations of the node constraint.
std::vector<std::vector<bool>> nodeViability(const Problem& p) {
  const std::size_t nq = p.query->nodeCount();
  const std::size_t nr = p.host->nodeCount();
  std::vector<std::vector<bool>> ok(nq, std::vector<bool>(nr, false));
  for (graph::NodeId q = 0; q < nq; ++q) {
    for (graph::NodeId r = 0; r < nr; ++r) {
      ok[q][r] = p.degreeOk(q, r) && p.nodeOk(q, r);
    }
  }
  return ok;
}

}  // namespace

FilterMatrix FilterMatrix::build(const Problem& problem, const SearchOptions& options,
                                 SearchStats& stats,
                                 const std::function<bool()>& cancelled) {
  util::Stopwatch timer;
  problem.validate();
  const graph::Graph& q = *problem.query;
  const graph::Graph& h = *problem.host;
  const std::size_t nq = q.nodeCount();
  const std::size_t nr = h.nodeCount();

  FilterMatrix fm;
  fm.slots_.resize(nq);
  fm.constrainers_.resize(nq);
  fm.viable_.resize(nq);
  fm.slotBase_.resize(nq + 1, 0);

  // --- enumerate slots -----------------------------------------------------
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (const graph::Neighbor& nb : q.neighbors(v)) {
      fm.slots_[v].push_back({nb.node, nb.edge, true});
    }
    if (q.directed()) {
      for (const graph::Neighbor& nb : q.inNeighbors(v)) {
        fm.slots_[v].push_back({nb.node, nb.edge, false});
      }
    }
  }
  for (graph::NodeId v = 0; v < nq; ++v) {
    fm.slotBase_[v + 1] = fm.slotBase_[v] + static_cast<std::uint32_t>(fm.slots_[v].size());
    for (std::uint32_t s = 0; s < fm.slots_[v].size(); ++s) {
      fm.constrainers_[fm.slots_[v][s].neighbor].push_back({v, s});
    }
  }
  fm.cells_.resize(fm.slotBase_[nq]);

  const std::vector<std::vector<bool>> nodeOk = nodeViability(problem);

  // --- stage 1: evaluate the constraint per (query edge, host edge) -------
  //
  // matchPairs[e] holds (ra, rb) pairs meaning: query edge e, used in its
  // stored orientation src->dst, can map src->ra, dst->rb. A constraint that
  // references none of the endpoint objects (vSource/vTarget/rSource/
  // rTarget) is orientation-blind, so each undirected (qe, he) pair is
  // evaluated once and mirrored — a 2x saving on the dominant loop.
  const expr::Constraint* edgeConstraint = problem.edgeConstraint();
  bool symmetric = true;
  if (edgeConstraint) {
    constexpr std::uint32_t endpointMask =
        (1u << static_cast<std::uint32_t>(expr::ObjectId::VSource)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::VTarget)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::RSource)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::RTarget));
    symmetric = (edgeConstraint->program().objectsUsed() & endpointMask) == 0;
  }

  std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>> matchPairs(
      q.edgeCount());
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::size_t> entries{0};
  const std::size_t entryBudget =
      options.maxFilterEntries == 0 ? static_cast<std::size_t>(-1) : options.maxFilterEntries;

  // Poll sparsely: the predicate may check the wall clock, and the loop body
  // is a handful of lookups per host edge.
  constexpr graph::EdgeId kCancelPollStride = 4096;

  const auto evaluateQueryEdge = [&](std::size_t qeIndex) {
    const auto qe = static_cast<graph::EdgeId>(qeIndex);
    const graph::NodeId qa = q.edgeSource(qe);
    const graph::NodeId qb = q.edgeTarget(qe);
    auto& pairs = matchPairs[qeIndex];
    std::uint64_t localEvals = 0;

    for (graph::EdgeId he = 0; he < h.edgeCount(); ++he) {
      if (he % kCancelPollStride == 0 && cancelled && cancelled()) {
        throw FilterBuildCancelled();
      }
      const graph::NodeId ra = h.edgeSource(he);
      const graph::NodeId rb = h.edgeTarget(he);
      if (h.directed()) {
        if (nodeOk[qa][ra] && nodeOk[qb][rb] &&
            problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals)) {
          pairs.emplace_back(ra, rb);
        }
        continue;
      }
      if (symmetric) {
        const bool forward = nodeOk[qa][ra] && nodeOk[qb][rb];
        const bool backward = nodeOk[qa][rb] && nodeOk[qb][ra];
        if (!forward && !backward) continue;
        if (!problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals)) continue;
        if (forward) pairs.emplace_back(ra, rb);
        if (backward) pairs.emplace_back(rb, ra);
      } else {
        if (nodeOk[qa][ra] && nodeOk[qb][rb] &&
            problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals)) {
          pairs.emplace_back(ra, rb);
        }
        if (nodeOk[qa][rb] && nodeOk[qb][ra] &&
            problem.edgeOk(qe, qa, qb, he, rb, ra, localEvals)) {
          pairs.emplace_back(rb, ra);
        }
      }
    }

    evals.fetch_add(localEvals, std::memory_order_relaxed);
    // Every oriented pair lands in exactly two cells (one per endpoint).
    const std::size_t stored =
        entries.fetch_add(2 * pairs.size(), std::memory_order_relaxed) + 2 * pairs.size();
    if (stored > entryBudget) throw FilterOverflow(stored);
  };

  if (options.parallelFilterBuild && q.edgeCount() > 1) {
    util::parallelFor(q.edgeCount(), evaluateQueryEdge, 1);
  } else {
    for (std::size_t i = 0; i < q.edgeCount(); ++i) evaluateQueryEdge(i);
  }

  // --- stage 2: scatter match pairs into per-slot CSR cells ---------------
  // Slot (v, s) with edge e: if v == src(e) the cell keys on ra and stores
  // rb; otherwise it keys on rb and stores ra.
  const auto fillSlot = [&](graph::NodeId v, std::uint32_t s) {
    const Slot slot = fm.slots_[v][s];
    Csr& csr = fm.cells_[fm.slotBase_[v] + s];
    const bool vIsSource = q.edgeSource(slot.edge) == v;
    auto& pairs = matchPairs[slot.edge];

    std::vector<std::pair<graph::NodeId, graph::NodeId>> keyed;
    keyed.reserve(pairs.size());
    for (const auto& [ra, rb] : pairs) {
      keyed.emplace_back(vIsSource ? ra : rb, vIsSource ? rb : ra);
    }
    std::sort(keyed.begin(), keyed.end());
    csr.offsets.assign(nr + 1, 0);
    csr.data.resize(keyed.size());
    for (std::size_t i = 0; i < keyed.size(); ++i) {
      ++csr.offsets[keyed[i].first + 1];
      csr.data[i] = keyed[i].second;
    }
    for (std::size_t r = 0; r < nr; ++r) csr.offsets[r + 1] += csr.offsets[r];
  };
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (std::uint32_t s = 0; s < fm.slots_[v].size(); ++s) fillSlot(v, s);
  }

  // --- viable lists (strengthened eq. 1) ------------------------------------
  for (graph::NodeId v = 0; v < nq; ++v) {
    std::vector<graph::NodeId>& out = fm.viable_[v];
    for (graph::NodeId r = 0; r < nr; ++r) {
      if (!nodeOk[v][r]) continue;
      bool allSlotsSupported = true;
      for (std::uint32_t s = 0; s < fm.slots_[v].size(); ++s) {
        if (fm.candidates(v, s, r).empty()) {
          allSlotsSupported = false;
          break;
        }
      }
      if (allSlotsSupported) out.push_back(r);
    }
  }

  fm.totalEntries_ = entries.load();
  stats.filterEntries = fm.totalEntries_;
  stats.constraintEvals += evals.load();
  stats.filterBuildMs = timer.elapsedMs();
  return fm;
}

bool FilterMatrix::isViable(graph::NodeId v, graph::NodeId r) const {
  const std::vector<graph::NodeId>& list = viable_[v];
  return std::binary_search(list.begin(), list.end(), r);
}

}  // namespace netembed::core
