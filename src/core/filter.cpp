#include "core/filter.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace netembed::core {

namespace {

/// Dense bitmap of node-level viability (node constraint + degree bound),
/// computed once up front; O(NQ * NR) evaluations of the node constraint.
/// Cancellable mid-row: on large hosts with an expensive node constraint
/// this stage alone can outlive a portfolio race or a deadline. Unsharded,
/// tasks are whole rows (disjoint word ranges); sharded, one task per
/// (query node, shard) fills that shard's word subrange of the row —
/// better locality on wide rows, and each shard task is independently
/// cancellable and fault-injectable at the plan.shard_build site.
util::BitMatrix nodeViability(const Problem& p, const SearchOptions& options,
                              const ShardMap& shards,
                              const std::function<bool()>& cancelled) {
  const std::size_t nq = p.query->nodeCount();
  const std::size_t nr = p.host->nodeCount();
  util::BitMatrix ok(nq, nr);
  constexpr std::size_t kCancelPollStride = 4096;
  const auto evalRange = [&](std::size_t q, graph::NodeId begin, graph::NodeId end) {
    std::uint64_t* row = ok.rowData(q);
    for (graph::NodeId r = begin; r < end; ++r) {
      if ((r - begin) % kCancelPollStride == 0 && cancelled && cancelled()) {
        throw FilterBuildCancelled();
      }
      if (p.degreeOk(static_cast<graph::NodeId>(q), r) &&
          p.nodeOk(static_cast<graph::NodeId>(q), r)) {
        row[r / util::kBitsPerWord] |= std::uint64_t{1} << (r % util::kBitsPerWord);
      }
    }
  };
  const std::size_t s = shards.shardCount();
  if (s > 1) {
    const auto evalShardTask = [&](std::size_t t) {
      if (util::FaultInjector::enabled()) {
        util::faultPoint(util::faultsite::kShardBuild);
      }
      const std::size_t k = t % s;
      evalRange(t / s, static_cast<graph::NodeId>(shards.beginNode(k)),
                static_cast<graph::NodeId>(shards.endNode(k)));
    };
    if (options.parallelFilterBuild) {
      util::parallelFor(nq * s, evalShardTask, 1);
    } else {
      for (std::size_t t = 0; t < nq * s; ++t) evalShardTask(t);
    }
    return ok;
  }
  const auto evalRow = [&](std::size_t q) {
    evalRange(q, 0, static_cast<graph::NodeId>(nr));
  };
  if (options.parallelFilterBuild && nq > 1) {
    util::parallelFor(nq, evalRow, 1);
  } else {
    for (std::size_t q = 0; q < nq; ++q) evalRow(q);
  }
  return ok;
}

/// SearchOptions::shards -> shard count: 0 means one shard per hardware
/// thread; ShardMap then clamps to [1, min(64, host word count)].
[[nodiscard]] std::size_t resolveShardCount(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Density heuristic: does a cell with `entries` stored candidates over an
/// `nr`-node host earn bitset rows? A row AND costs one word per 64 host
/// nodes no matter how sparse the cell, but the per-word constant (one
/// vectorized AND) is tiny next to the per-candidate constant of the hybrid
/// probe path it replaces (a gather + merge per surviving candidate):
/// measured on the sparse overlay instances the ANDs win until cells carry
/// fewer than ~one set bit per 16 words. Demand density >= 1/1024 — the
/// nr*nr/8-byte bitmap there costs ~32x the CSR list it shadows, an
/// acceptable ceiling since absolute size stays small for the hosts where
/// such sparse cells appear; hosts up to a few hundred nodes get rows
/// unconditionally because a handful of words beats any binary search.
[[nodiscard]] bool wantCellBits(BitsetMode mode, std::size_t entries,
                                std::size_t nr) noexcept {
  constexpr std::size_t kSmallHostBits = 512;
  constexpr std::size_t kMinBitsPerWord16 = util::kBitsPerWord * 16;
  switch (mode) {
    case BitsetMode::Off:
      return false;
    case BitsetMode::Force:
      return true;
    case BitsetMode::Auto:
      break;
  }
  return nr <= kSmallHostBits || entries * kMinBitsPerWord16 >= nr * nr;
}

}  // namespace

FilterMatrix FilterMatrix::build(const Problem& problem, const SearchOptions& options,
                                 SearchStats& stats,
                                 const std::function<bool()>& cancelled) {
  util::Stopwatch timer;
  problem.validate();
  const graph::Graph& q = *problem.query;
  const graph::Graph& h = *problem.host;
  const std::size_t nq = q.nodeCount();
  const std::size_t nr = h.nodeCount();

  FilterMatrix fm;
  fm.slots_.resize(nq);
  fm.constrainers_.resize(nq);
  fm.viable_.resize(nq);
  fm.slotBase_.resize(nq + 1, 0);

  // --- enumerate slots -----------------------------------------------------
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (const graph::Neighbor& nb : q.neighbors(v)) {
      fm.slots_[v].push_back({nb.node, nb.edge, true});
    }
    if (q.directed()) {
      for (const graph::Neighbor& nb : q.inNeighbors(v)) {
        fm.slots_[v].push_back({nb.node, nb.edge, false});
      }
    }
  }
  for (graph::NodeId v = 0; v < nq; ++v) {
    fm.slotBase_[v + 1] = fm.slotBase_[v] + static_cast<std::uint32_t>(fm.slots_[v].size());
    for (std::uint32_t s = 0; s < fm.slots_[v].size(); ++s) {
      fm.constrainers_[fm.slots_[v][s].neighbor].push_back({v, s});
    }
  }
  const std::size_t cellCount = fm.slotBase_[nq];
  fm.cells_.resize(cellCount);
  fm.cellBits_.resize(cellCount);
  fm.cellOcc_.resize(cellCount);
  fm.hostAdjacencySlots_ = h.edgeCount() * (h.directed() ? 1 : 2);

  // --- shard partition ------------------------------------------------------
  fm.shards_ = ShardMap(nr, resolveShardCount(options.shards));
  const ShardMap& sm = fm.shards_;
  const std::size_t shardCount = sm.shardCount();
  const bool sharded = shardCount > 1;

  // --- stage 0: node-level viability bitmap --------------------------------
  // Moved into the matrix at the end: patch() re-gates pair evaluations with
  // it so node constraints only re-run over the touched host nodes.
  util::BitMatrix nodeOk = nodeViability(problem, options, sm, cancelled);

  // Sharded: bucket the host edges by (source shard, target shard) once per
  // build, and summarize stage-0 viability per (query node, shard). Stage 1
  // then walks buckets instead of the flat edge list and skips every bucket
  // whose shard pair cannot pass the per-pair node gate in any orientation —
  // the same gate build() applies per pair, hoisted to shard granularity.
  // Off-diagonal buckets are the boundary-cell overlay: cross-shard host
  // edges evaluated under exactly the flat per-pair rules, so a query whose
  // candidates span shards sees byte-identical candidate sets.
  std::vector<std::uint64_t> nodeOkOcc;
  std::vector<std::vector<graph::EdgeId>> edgeBuckets;
  if (sharded) {
    nodeOkOcc.resize(nq);
    for (std::size_t v = 0; v < nq; ++v) nodeOkOcc[v] = sm.occupancy(nodeOk.row(v));
    edgeBuckets.assign(shardCount * shardCount, {});
    for (graph::EdgeId he = 0; he < h.edgeCount(); ++he) {
      edgeBuckets[sm.shardOf(h.edgeSource(he)) * shardCount +
                  sm.shardOf(h.edgeTarget(he))]
          .push_back(he);
    }
  }

  // --- stage 1: evaluate the constraint per (query edge, host edge) -------
  //
  // matchPairs[e] holds (ra, rb) pairs meaning: query edge e, used in its
  // stored orientation src->dst, can map src->ra, dst->rb. A constraint that
  // references none of the endpoint objects (vSource/vTarget/rSource/
  // rTarget) is orientation-blind, so each undirected (qe, he) pair is
  // evaluated once and mirrored — a 2x saving on the dominant loop.
  const expr::Constraint* edgeConstraint = problem.edgeConstraint();
  bool symmetric = true;
  if (edgeConstraint) {
    constexpr std::uint32_t endpointMask =
        (1u << static_cast<std::uint32_t>(expr::ObjectId::VSource)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::VTarget)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::RSource)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::RTarget));
    symmetric = (edgeConstraint->program().objectsUsed() & endpointMask) == 0;
  }

  std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>> matchPairs(
      q.edgeCount());
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::size_t> entries{0};
  const std::size_t entryBudget =
      options.maxFilterEntries == 0 ? static_cast<std::size_t>(-1) : options.maxFilterEntries;

  // Poll sparsely: the predicate may check the wall clock, and the loop body
  // is a handful of lookups per host edge.
  constexpr graph::EdgeId kCancelPollStride = 4096;

  const auto evaluateQueryEdge = [&](std::size_t qeIndex) {
    const auto qe = static_cast<graph::EdgeId>(qeIndex);
    const graph::NodeId qa = q.edgeSource(qe);
    const graph::NodeId qb = q.edgeTarget(qe);
    auto& pairs = matchPairs[qeIndex];
    std::uint64_t localEvals = 0;

    // Per-pair evaluation, identical on the flat and the bucketed path.
    const auto evalHostEdge = [&](graph::EdgeId he) {
      const graph::NodeId ra = h.edgeSource(he);
      const graph::NodeId rb = h.edgeTarget(he);
      if (h.directed()) {
        if (nodeOk.test(qa, ra) && nodeOk.test(qb, rb) &&
            problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals)) {
          pairs.emplace_back(ra, rb);
        }
        return;
      }
      if (symmetric) {
        const bool forward = nodeOk.test(qa, ra) && nodeOk.test(qb, rb);
        const bool backward = nodeOk.test(qa, rb) && nodeOk.test(qb, ra);
        if (!forward && !backward) return;
        if (!problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals)) return;
        if (forward) pairs.emplace_back(ra, rb);
        if (backward) pairs.emplace_back(rb, ra);
      } else {
        if (nodeOk.test(qa, ra) && nodeOk.test(qb, rb) &&
            problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals)) {
          pairs.emplace_back(ra, rb);
        }
        if (nodeOk.test(qa, rb) && nodeOk.test(qb, ra) &&
            problem.edgeOk(qe, qa, qb, he, rb, ra, localEvals)) {
          pairs.emplace_back(rb, ra);
        }
      }
    };

    if (sharded) {
      // Bucketed sweep. A bucket (sA, sB) can only yield pairs when some
      // orientation passes the per-shard stage-0 summary; every per-pair
      // node gate inside a skipped bucket would have failed before reaching
      // edgeOk, so skipping changes neither candidates nor eval counts.
      // Pair discovery order differs from the flat sweep, but stage 2's
      // counting sort keys cells on (host node, candidate), making the CSR
      // layout — and everything downstream — order-independent.
      const auto anyOk = [&](graph::NodeId v, std::size_t k) {
        return ((nodeOkOcc[v] >> k) & 1u) != 0;
      };
      std::size_t polls = 0;
      for (std::size_t sA = 0; sA < shardCount; ++sA) {
        for (std::size_t sB = 0; sB < shardCount; ++sB) {
          const auto& bucket = edgeBuckets[sA * shardCount + sB];
          if (bucket.empty()) continue;
          bool reachable = anyOk(qa, sA) && anyOk(qb, sB);
          if (!h.directed() && !reachable) {
            reachable = anyOk(qa, sB) && anyOk(qb, sA);
          }
          if (!reachable) continue;
          if (util::FaultInjector::enabled()) {
            util::faultPoint(util::faultsite::kShardBuild);
          }
          for (const graph::EdgeId he : bucket) {
            if (polls++ % kCancelPollStride == 0 && cancelled && cancelled()) {
              throw FilterBuildCancelled();
            }
            evalHostEdge(he);
          }
        }
      }
    } else {
      for (graph::EdgeId he = 0; he < h.edgeCount(); ++he) {
        if (he % kCancelPollStride == 0 && cancelled && cancelled()) {
          throw FilterBuildCancelled();
        }
        evalHostEdge(he);
      }
    }

    evals.fetch_add(localEvals, std::memory_order_relaxed);
    // Every oriented pair lands in exactly two cells (one per endpoint).
    const std::size_t stored =
        entries.fetch_add(2 * pairs.size(), std::memory_order_relaxed) + 2 * pairs.size();
    if (stored > entryBudget) throw FilterOverflow(stored);
  };

  if (options.parallelFilterBuild && q.edgeCount() > 1) {
    util::parallelFor(q.edgeCount(), evaluateQueryEdge, 1);
  } else {
    for (std::size_t i = 0; i < q.edgeCount(); ++i) evaluateQueryEdge(i);
  }

  // --- stage 2: scatter match pairs into per-slot CSR (+ bitset) cells ----
  // Slot (v, s) with edge e: if v == src(e) the cell keys on ra and stores
  // rb; otherwise it keys on rb and stores ra. Cells are disjoint, so the
  // scatter parallelizes over them directly.
  std::vector<std::pair<graph::NodeId, std::uint32_t>> cellOwner(cellCount);
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (std::uint32_t s = 0; s < fm.slots_[v].size(); ++s) {
      cellOwner[fm.slotBase_[v] + s] = {v, s};
    }
  }

  const auto fillSlot = [&](std::size_t cellIndex) {
    if (cancelled && cancelled()) throw FilterBuildCancelled();
    const auto [v, s] = cellOwner[cellIndex];
    const Slot slot = fm.slots_[v][s];
    Csr& csr = fm.cells_[cellIndex];
    const bool vIsSource = q.edgeSource(slot.edge) == v;
    const auto& pairs = matchPairs[slot.edge];
    const std::size_t m = pairs.size();

    // Two stable counting passes (LSD radix over the host-node id): order by
    // stored value first, then scatter by key — O(E + NR) total, replacing
    // the former O(E log E) comparison sort, while producing the same
    // key-grouped, value-ascending layout.
    std::vector<graph::NodeId> keys(m), vals(m);
    for (std::size_t i = 0; i < m; ++i) {
      keys[i] = vIsSource ? pairs[i].first : pairs[i].second;
      vals[i] = vIsSource ? pairs[i].second : pairs[i].first;
    }
    std::vector<std::uint32_t> start(nr + 1, 0);
    for (std::size_t i = 0; i < m; ++i) ++start[vals[i] + 1];
    for (std::size_t r = 0; r < nr; ++r) start[r + 1] += start[r];
    std::vector<graph::NodeId> keysByVal(m), valsByVal(m);
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t pos = start[vals[i]]++;
      keysByVal[pos] = keys[i];
      valsByVal[pos] = vals[i];
    }

    csr.offsets.assign(nr + 1, 0);
    for (std::size_t i = 0; i < m; ++i) ++csr.offsets[keysByVal[i] + 1];
    for (std::size_t r = 0; r < nr; ++r) csr.offsets[r + 1] += csr.offsets[r];
    csr.data.resize(m);
    std::vector<std::uint32_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
      csr.data[cursor[keysByVal[i]]++] = valsByVal[i];
    }

    if (wantCellBits(options.bitsetMode, m, nr)) {
      util::BitMatrix& bits = fm.cellBits_[cellIndex];
      bits.assign(nr, nr);
      for (graph::NodeId r = 0; r < nr; ++r) {
        std::uint64_t* row = bits.rowData(r);
        for (std::uint32_t i = csr.offsets[r]; i < csr.offsets[r + 1]; ++i) {
          const graph::NodeId c = csr.data[i];
          row[c / util::kBitsPerWord] |= std::uint64_t{1}
                                         << (c % util::kBitsPerWord);
        }
      }
      if (sharded) {
        auto& occ = fm.cellOcc_[cellIndex];
        occ.resize(nr);
        for (graph::NodeId r = 0; r < nr; ++r) occ[r] = sm.occupancy(bits.row(r));
      }
    }
  };
  if (options.parallelFilterBuild && cellCount > 1) {
    util::parallelFor(cellCount, fillSlot, 1);
  } else {
    for (std::size_t i = 0; i < cellCount; ++i) fillSlot(i);
  }

  // --- viable lists + bit rows (strengthened eq. 1) -------------------------
  fm.viableBits_.assign(nq, nr);
  if (sharded) fm.viableOcc_.assign(nq, 0);
  const auto fillViable = [&](std::size_t vIndex) {
    if (cancelled && cancelled()) throw FilterBuildCancelled();
    const auto v = static_cast<graph::NodeId>(vIndex);
    std::vector<graph::NodeId>& out = fm.viable_[v];
    std::uint64_t* row = fm.viableBits_.rowData(v);
    for (graph::NodeId r = 0; r < nr; ++r) {
      if (!nodeOk.test(v, r)) continue;
      bool allSlotsSupported = true;
      for (std::uint32_t s = 0; s < fm.slots_[v].size(); ++s) {
        const Csr& csr = fm.cells_[fm.slotBase_[v] + s];
        if (csr.offsets[r + 1] == csr.offsets[r]) {
          allSlotsSupported = false;
          break;
        }
      }
      if (allSlotsSupported) {
        out.push_back(r);
        row[r / util::kBitsPerWord] |= std::uint64_t{1} << (r % util::kBitsPerWord);
      }
    }
    if (sharded) fm.viableOcc_[v] = sm.occupancy(fm.viableBits_.row(v));
  };
  if (options.parallelFilterBuild && nq > 1) {
    util::parallelFor(nq, fillViable, 1);
  } else {
    for (std::size_t v = 0; v < nq; ++v) fillViable(v);
  }

  fm.nodeOkBits_ = std::move(nodeOk);
  fm.totalEntries_ = entries.load();
  stats.filterEntries = fm.totalEntries_;
  stats.constraintEvals += evals.load();
  stats.filterBuildMs = timer.elapsedMs();
  return fm;
}

void FilterMatrix::patch(const Problem& problem, const SearchOptions& options,
                         const ModelDelta& delta, SearchStats& stats,
                         const std::function<bool()>& cancelled) {
  util::Stopwatch timer;
  problem.validate();
  const graph::Graph& q = *problem.query;
  const graph::Graph& h = *problem.host;
  const std::size_t nq = q.nodeCount();
  const std::size_t nr = h.nodeCount();

  // --- affected sets --------------------------------------------------------
  // A touched edge changes its own constraint outcomes; a touched node
  // changes its node-level viability AND the outcome of every incident edge
  // (edge constraints may read rSource/rTarget attributes). Everything else
  // is untouched by construction — that is the whole point of the patch.
  // affectedEdgeMask is the same rule classifyDelta costed the patch with.
  std::vector<char> edgeAffected;
  if (!affectedEdgeMask(h, delta, edgeAffected)) {
    throw std::invalid_argument("FilterMatrix::patch: delta references ids outside the host");
  }
  std::vector<graph::EdgeId> affectedEdges;
  for (graph::EdgeId he = 0; he < h.edgeCount(); ++he) {
    if (edgeAffected[he]) affectedEdges.push_back(he);
  }
  std::vector<char> nodeAffected(nr, 0);
  for (const graph::NodeId n : delta.nodes) nodeAffected[n] = 1;
  for (const graph::EdgeId he : affectedEdges) {
    nodeAffected[h.edgeSource(he)] = 1;
    nodeAffected[h.edgeTarget(he)] = 1;
  }

  // --- refresh node-level viability for the touched nodes -------------------
  for (const graph::NodeId r : delta.nodes) {
    for (graph::NodeId v = 0; v < nq; ++v) {
      nodeOkBits_.setTo(v, r, problem.degreeOk(v, r) && problem.nodeOk(v, r));
    }
  }

  // --- re-evaluate the affected (query edge, host edge) pairs ---------------
  // Mirrors stage 1 of build() exactly (same gating, same symmetric-once
  // evaluation) so a patched matrix is candidate-set-identical to a fresh
  // build; only the loop domain shrinks from every host edge to the
  // affected ones.
  const expr::Constraint* edgeConstraint = problem.edgeConstraint();
  bool symmetric = true;
  if (edgeConstraint) {
    constexpr std::uint32_t endpointMask =
        (1u << static_cast<std::uint32_t>(expr::ObjectId::VSource)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::VTarget)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::RSource)) |
        (1u << static_cast<std::uint32_t>(expr::ObjectId::RTarget));
    symmetric = (edgeConstraint->program().objectsUsed() & endpointMask) == 0;
  }

  // Which cells key on the mapped source endpoint of each query edge.
  std::vector<std::vector<std::pair<std::uint32_t, bool>>> cellsOfEdge(q.edgeCount());
  for (graph::NodeId v = 0; v < nq; ++v) {
    for (std::uint32_t s = 0; s < slots_[v].size(); ++s) {
      const Slot& slot = slots_[v][s];
      cellsOfEdge[slot.edge].push_back(
          {slotBase_[v] + s, q.edgeSource(slot.edge) == v});
    }
  }

  // One membership decision per (cell, key, val) — unique within a patch
  // because (key, val) determines the host edge and cells belong to one
  // query edge.
  struct Edit {
    graph::NodeId key;
    graph::NodeId val;
    bool present;
  };
  std::vector<std::vector<Edit>> cellEdits(cells_.size());
  std::atomic<std::uint64_t> evals{0};
  constexpr std::size_t kCancelPollStride = 1024;
  // Patch work scales with |affected host edges| x |query edges|; below this
  // many pair re-evaluations the parallelFor dispatch overhead dominates the
  // loop body, and a monitoring-style one-node bump stays serial.
  constexpr std::size_t kParallelPatchPairs = 2048;
  const bool parallel = options.parallelFilterBuild &&
                        affectedEdges.size() * q.edgeCount() >= kParallelPatchPairs;

  // Safe to fan out over query edges: every cell belongs to exactly one
  // query edge, so the cellEdits buckets written by distinct tasks are
  // disjoint, and the per-(qe, he) evaluation order within a bucket is the
  // serial order — patched cells stay byte-identical either way.
  const auto evaluateEdge = [&](std::size_t qeIndex) {
    const auto qe = static_cast<graph::EdgeId>(qeIndex);
    const graph::NodeId qa = q.edgeSource(qe);
    const graph::NodeId qb = q.edgeTarget(qe);
    std::uint64_t localEvals = 0;
    std::size_t polls = 0;
    for (const graph::EdgeId he : affectedEdges) {
      if (++polls % kCancelPollStride == 0 && cancelled && cancelled()) {
        throw FilterBuildCancelled();
      }
      const graph::NodeId ra = h.edgeSource(he);
      const graph::NodeId rb = h.edgeTarget(he);
      bool forward = false;
      bool backward = false;
      if (h.directed()) {
        forward = nodeOkBits_.test(qa, ra) && nodeOkBits_.test(qb, rb) &&
                  problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals);
      } else if (symmetric) {
        const bool fGate = nodeOkBits_.test(qa, ra) && nodeOkBits_.test(qb, rb);
        const bool bGate = nodeOkBits_.test(qa, rb) && nodeOkBits_.test(qb, ra);
        const bool pass =
            (fGate || bGate) && problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals);
        forward = fGate && pass;
        backward = bGate && pass;
      } else {
        forward = nodeOkBits_.test(qa, ra) && nodeOkBits_.test(qb, rb) &&
                  problem.edgeOk(qe, qa, qb, he, ra, rb, localEvals);
        backward = nodeOkBits_.test(qa, rb) && nodeOkBits_.test(qb, ra) &&
                   problem.edgeOk(qe, qa, qb, he, rb, ra, localEvals);
      }
      for (const auto& [cell, keyIsSource] : cellsOfEdge[qe]) {
        cellEdits[cell].push_back({keyIsSource ? ra : rb, keyIsSource ? rb : ra,
                                   forward});
        if (!h.directed()) {
          cellEdits[cell].push_back({keyIsSource ? rb : ra, keyIsSource ? ra : rb,
                                     backward});
        }
      }
    }
    evals.fetch_add(localEvals, std::memory_order_relaxed);
  };
  if (parallel && q.edgeCount() > 1) {
    util::parallelFor(q.edgeCount(), evaluateEdge, 1);
  } else {
    for (std::size_t i = 0; i < q.edgeCount(); ++i) evaluateEdge(i);
  }

  // --- splice the edits into the CSR cells (and their bit rows) -------------
  // Cells are disjoint (own CSR, own bit rows), so the splice fans out over
  // them directly; only the entry-count delta needs an atomic.
  std::atomic<std::ptrdiff_t> entryDelta{0};
  const auto spliceCell = [&](std::size_t c) {
    std::vector<Edit>& edits = cellEdits[c];
    if (edits.empty()) return;
    if (cancelled && cancelled()) throw FilterBuildCancelled();
    std::sort(edits.begin(), edits.end(), [](const Edit& a, const Edit& b) {
      return a.key != b.key ? a.key < b.key : a.val < b.val;
    });
    Csr& csr = cells_[c];
    std::vector<graph::NodeId> newData;
    newData.reserve(csr.data.size() + edits.size());
    std::vector<std::uint32_t> newOffsets(nr + 1, 0);
    std::size_t ei = 0;
    for (graph::NodeId r = 0; r < nr; ++r) {
      newOffsets[r] = static_cast<std::uint32_t>(newData.size());
      const std::uint32_t begin = csr.offsets[r];
      const std::uint32_t end = csr.offsets[r + 1];
      if (ei >= edits.size() || edits[ei].key != r) {
        newData.insert(newData.end(), csr.data.begin() + begin,
                       csr.data.begin() + end);
        continue;
      }
      // Merge the old sorted row with this key's sorted membership edits.
      std::uint32_t i = begin;
      while (ei < edits.size() && edits[ei].key == r) {
        const Edit& e = edits[ei];
        while (i < end && csr.data[i] < e.val) newData.push_back(csr.data[i++]);
        const bool wasPresent = i < end && csr.data[i] == e.val;
        if (e.present) newData.push_back(e.val);
        if (wasPresent) ++i;  // the old copy is replaced or removed
        ++ei;
      }
      while (i < end) newData.push_back(csr.data[i++]);
    }
    newOffsets[nr] = static_cast<std::uint32_t>(newData.size());
    entryDelta.fetch_add(static_cast<std::ptrdiff_t>(newData.size()) -
                             static_cast<std::ptrdiff_t>(csr.data.size()),
                         std::memory_order_relaxed);
    csr.data = std::move(newData);
    csr.offsets = std::move(newOffsets);

    if (!cellBits_[c].empty()) {
      util::BitMatrix& bits = cellBits_[c];
      graph::NodeId lastKey = graph::kInvalidNode;
      for (const Edit& e : edits) {
        if (e.key == lastKey) continue;
        lastKey = e.key;
        std::uint64_t* row = bits.rowData(e.key);
        std::fill(row, row + bits.wordsPerRow(), 0);
        for (std::uint32_t i = csr.offsets[e.key]; i < csr.offsets[e.key + 1]; ++i) {
          const graph::NodeId s = csr.data[i];
          row[s / util::kBitsPerWord] |= std::uint64_t{1} << (s % util::kBitsPerWord);
        }
        if (!cellOcc_[c].empty()) {
          cellOcc_[c][e.key] = shards_.occupancy(bits.row(e.key));
        }
      }
    }
  };
  if (parallel && cells_.size() > 1) {
    util::parallelFor(cells_.size(), spliceCell, 1);
  } else {
    for (std::size_t c = 0; c < cells_.size(); ++c) spliceCell(c);
  }
  totalEntries_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(totalEntries_) +
                                           entryDelta.load(std::memory_order_relaxed));

  const std::size_t entryBudget = options.maxFilterEntries == 0
                                      ? static_cast<std::size_t>(-1)
                                      : options.maxFilterEntries;
  if (totalEntries_ > entryBudget) throw FilterOverflow(totalEntries_);

  // --- viability (strengthened eq. 1) over the affected host nodes ----------
  std::vector<graph::NodeId> affectedNodes;
  for (graph::NodeId r = 0; r < nr; ++r) {
    if (nodeAffected[r]) affectedNodes.push_back(r);
  }
  // Each task owns one query node's bit row and viable list — disjoint.
  const auto regateNode = [&](std::size_t vIndex) {
    const auto v = static_cast<graph::NodeId>(vIndex);
    bool dirty = false;
    for (const graph::NodeId r : affectedNodes) {
      bool ok = nodeOkBits_.test(v, r);
      if (ok) {
        for (std::uint32_t s = 0; s < slots_[v].size(); ++s) {
          const Csr& csr = cells_[slotBase_[v] + s];
          if (csr.offsets[r + 1] == csr.offsets[r]) {
            ok = false;
            break;
          }
        }
      }
      if (ok != viableBits_.test(v, r)) {
        viableBits_.setTo(v, r, ok);
        dirty = true;
      }
    }
    if (dirty) {
      std::vector<graph::NodeId>& out = viable_[v];
      out.clear();
      for (graph::NodeId r = 0; r < nr; ++r) {
        if (viableBits_.test(v, r)) out.push_back(r);
      }
      if (!viableOcc_.empty()) {
        viableOcc_[v] = shards_.occupancy(viableBits_.row(v));
      }
    }
  };
  if (parallel && nq > 1) {
    util::parallelFor(nq, regateNode, 1);
  } else {
    for (std::size_t v = 0; v < nq; ++v) regateNode(v);
  }

  stats.filterEntries = totalEntries_;
  stats.constraintEvals += evals.load(std::memory_order_relaxed);
  stats.filterBuildMs = timer.elapsedMs();
}

FilterMatrix::MemoryBreakdown FilterMatrix::memoryBreakdown() const noexcept {
  MemoryBreakdown mb;
  for (const Csr& csr : cells_) {
    mb.csrBytes += csr.offsets.size() * sizeof(std::uint32_t) +
                   csr.data.size() * sizeof(graph::NodeId);
  }
  for (const util::BitMatrix& bits : cellBits_) {
    mb.bitRowBytes += bits.rows() * bits.wordsPerRow() * sizeof(std::uint64_t);
  }
  mb.viabilityBytes +=
      2 * viableBits_.rows() * viableBits_.wordsPerRow() * sizeof(std::uint64_t);
  for (const auto& list : viable_) mb.viabilityBytes += list.size() * sizeof(graph::NodeId);
  for (const auto& occ : cellOcc_) mb.occupancyBytes += occ.size() * sizeof(std::uint64_t);
  mb.occupancyBytes += viableOcc_.size() * sizeof(std::uint64_t);
  return mb;
}

}  // namespace netembed::core
