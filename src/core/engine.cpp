#include "core/engine.hpp"

#include <stdexcept>

// The registry deliberately spans layers: the library links as one unit and
// the service dispatches every Algorithm value — including the baselines —
// through engineFor(). Only this translation unit reaches down into
// baseline/; the headers keep the core -> baseline direction out of the API.
#include "baseline/anneal.hpp"
#include "baseline/genetic.hpp"
#include "baseline/naive.hpp"
#include "core/ecf.hpp"
#include "core/lns.hpp"
#include "core/portfolio.hpp"
#include "core/rwb.hpp"
#include "util/fault.hpp"

namespace netembed::core {

const char* stopReasonName(StopReason r) noexcept {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Deadline: return "deadline";
    case StopReason::SolutionBudget: return "solution-budget";
    case StopReason::VisitBudget: return "visit-budget";
    case StopReason::SinkStop: return "sink-stop";
    case StopReason::Cancelled: return "cancelled";
  }
  return "?";
}

void SearchContext::requestCancel(StopReason reason) noexcept {
  std::uint8_t expected = static_cast<std::uint8_t>(StopReason::None);
  reason_.compare_exchange_strong(expected, static_cast<std::uint8_t>(reason),
                                  std::memory_order_acq_rel);
  stop_.request_stop();
}

bool SearchContext::shouldStop(std::uint64_t visits) {
  // Mid-search crash probe: every engine polls here per visited node, so one
  // armed site covers ECF, RWB, LNS, the baselines and every portfolio
  // contender without per-engine instrumentation.
  if (util::FaultInjector::enabled()) {
    util::faultPoint(util::faultsite::kEngineStep);
  }
  if (stop_.stop_requested()) return true;
  if (external_.stop_possible() && external_.stop_requested()) {
    requestCancel(StopReason::Cancelled);
    return true;
  }
  if (options_.visitBudget != 0 && visits >= options_.visitBudget) {
    requestCancel(StopReason::VisitBudget);
    return true;
  }
  const std::uint64_t stride = options_.checkStride;
  if (deadline_.isBounded() && (stride <= 1 || visits % stride == 0) &&
      deadline_.expired()) {
    requestCancel(StopReason::Deadline);
    return true;
  }
  return false;
}

bool SearchContext::offerSolution(const Mapping& mapping) {
  std::uint64_t count;
  {
    std::lock_guard lock(mutex_);
    // Exact budget accounting across workers: an over-budget offer is
    // rejected un-counted, and a sink-stop freezes admission of later offers.
    if (stopReason() == StopReason::SinkStop) return false;
    const std::uint64_t before = solutions_.load(std::memory_order_relaxed);
    if (options_.maxSolutions != 0 && before >= options_.maxSolutions) {
      return false;
    }
    count = before + 1;
    solutions_.store(count, std::memory_order_release);
    if (firstMatchMs_ < 0) firstMatchMs_ = firstMatchClock_.elapsedMs();
    if (mappings_.size() < options_.storeLimit) mappings_.push_back(mapping);
  }
  // The sink runs outside the lock: a slow sink must not serialize root-split
  // workers, and a sink that calls back into this context must not deadlock
  // on the non-recursive mutex. Consequence: offers admitted concurrently may
  // reach their sinks concurrently (see the SolutionSink contract).
  if (sink_ && !sink_(mapping)) {
    requestCancel(StopReason::SinkStop);
    return false;
  }
  if (options_.maxSolutions != 0 && count >= options_.maxSolutions) {
    requestCancel(StopReason::SolutionBudget);
    return false;
  }
  return true;
}

void SearchContext::mergeStats(const SearchStats& stats) {
  std::lock_guard lock(mutex_);
  stats_.merge(stats);
}

EmbedResult SearchContext::finish(bool exhausted) {
  std::lock_guard lock(mutex_);
  EmbedResult result;
  result.solutionCount = solutions_.load(std::memory_order_acquire);
  result.mappings = std::move(mappings_);
  mappings_.clear();
  stats_.firstMatchMs = firstMatchMs_;
  result.stats = stats_;
  const bool cleanFinish = exhausted && !stop_.stop_requested();
  result.outcome = cleanFinish ? Outcome::Complete
                   : result.solutionCount > 0 ? Outcome::Partial
                                              : Outcome::Inconclusive;
  return result;
}

namespace {

class EcfEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::ECF; }
  bool complete() const noexcept override { return true; }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    return detail::filteredSearch(problem, context, /*randomize=*/false);
  }
};

class RwbEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::RWB; }
  bool complete() const noexcept override { return true; }
  SearchOptions effectiveOptions(SearchOptions options) const override {
    if (options.maxSolutions == 0) options.maxSolutions = 1;
    return options;
  }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    return detail::filteredSearch(problem, context, /*randomize=*/true);
  }
};

class LnsEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::LNS; }
  bool complete() const noexcept override { return true; }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    return lnsSearch(problem, context);
  }
};

class NaiveEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::Naive; }
  bool complete() const noexcept override { return true; }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    return baseline::naiveSearch(problem, context);
  }
};

class AnnealEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::Anneal; }
  bool complete() const noexcept override { return false; }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    baseline::AnnealOptions options;
    options.seed = context.options().seed;
    return baseline::annealSearch(problem, options, context);
  }
};

class GeneticEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::Genetic; }
  bool complete() const noexcept override { return false; }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    baseline::GeneticOptions options;
    options.seed = context.options().seed;
    return baseline::geneticSearch(problem, options, context);
  }
};

class PortfolioEngine final : public Engine {
 public:
  Algorithm algorithm() const noexcept override { return Algorithm::Portfolio; }
  // The race includes complete engines, so an undisturbed Complete outcome
  // is a genuine proof.
  bool complete() const noexcept override { return true; }
  EmbedResult run(const Problem& problem, SearchContext& context) const override {
    return portfolioSearch(problem, context).result;
  }
};

}  // namespace

const Engine& engineFor(Algorithm algorithm) {
  static const EcfEngine ecf;
  static const RwbEngine rwb;
  static const LnsEngine lns;
  static const NaiveEngine naive;
  static const AnnealEngine anneal;
  static const GeneticEngine genetic;
  static const PortfolioEngine portfolio;
  switch (algorithm) {
    case Algorithm::ECF: return ecf;
    case Algorithm::RWB: return rwb;
    case Algorithm::LNS: return lns;
    case Algorithm::Naive: return naive;
    case Algorithm::Anneal: return anneal;
    case Algorithm::Genetic: return genetic;
    case Algorithm::Portfolio: return portfolio;
  }
  throw std::invalid_argument("engineFor: unknown algorithm");
}

EmbedResult runSearch(Algorithm algorithm, const Problem& problem,
                      const SearchOptions& options, const SolutionSink& sink) {
  const Engine& engine = engineFor(algorithm);
  SearchContext context(engine.effectiveOptions(options), sink);
  return engine.run(problem, context);
}

}  // namespace netembed::core
