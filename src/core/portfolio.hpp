#pragma once
// Racing portfolio search (paper §VIII: no single algorithm dominates).
//
// ECF/RWB win on tightly-constrained queries over sparse hosts; LNS wins for
// first-match on dense hosts and regular/under-constrained queries — and the
// static chooser can only guess. The portfolio stops guessing: it races the
// contenders concurrently on their own threads and cancels the losers the
// moment one either finds a first feasible mapping or exhausts the search
// space (proving infeasibility). The caller pays the latency of the *best*
// engine for the instance, plus a cancellation round-trip.
//
// The race is decided exactly once (an atomic claim); only the winner's
// solutions ever reach the caller's SolutionSink, and after winning the
// winner keeps honoring the caller's options (so an enumerate-all portfolio
// query returns the winner's full enumeration).

#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

/// The default contender set for a race under `options`: ECF, RWB, LNS for
/// bounded queries; RWB sits out unbounded enumeration (maxSolutions == 0),
/// which races the two exhaustive engines. `spawnFirst` (e.g. the §VIII
/// heuristic's pick) is moved to the front — on busy or low-core machines
/// the earliest-spawned contender tends to get CPU first.
[[nodiscard]] std::vector<Algorithm> defaultContenders(
    const SearchOptions& options, std::optional<Algorithm> spawnFirst = {});

struct PortfolioResult {
  EmbedResult result;
  /// The engine whose result this is. When the race went undecided (nobody
  /// found a match or completed before the deadline), this is the contender
  /// that explored the most of the search space.
  Algorithm winner = Algorithm::ECF;
  /// True when some contender found a match or proved infeasibility.
  bool raceDecided = false;

  struct ContenderReport {
    Algorithm algorithm = Algorithm::ECF;
    Outcome outcome = Outcome::Inconclusive;
    StopReason stopReason = StopReason::None;
    std::uint64_t treeNodesVisited = 0;
    double searchMs = 0.0;
    bool won = false;
  };
  std::vector<ContenderReport> contenders;

  /// "portfolio: winner=ECF decided [ECF complete 12.1ms | ...]" diagnostics.
  [[nodiscard]] std::string summary() const;
};

/// Race `contenders` (default ECF, RWB, LNS) on the problem. Solutions,
/// budget and deadline accounting flow through a context built from
/// `options`; the sink sees the winner's solutions only.
[[nodiscard]] PortfolioResult portfolioSearch(
    const Problem& problem, const SearchOptions& options = {},
    const SolutionSink& sink = {}, std::vector<Algorithm> contenders = {});

/// Race against an externally-owned parent context. Contenders chain onto
/// the parent's stop token, so cancelling the parent cancels the race.
[[nodiscard]] PortfolioResult portfolioSearch(const Problem& problem,
                                              SearchContext& parent,
                                              std::vector<Algorithm> contenders = {});

}  // namespace netembed::core
