#include "core/problem.hpp"

#include <stdexcept>

namespace netembed::core {

void Problem::validate() const {
  if (!query || !host) throw std::invalid_argument("Problem: null graph");
  if (query->directed() != host->directed()) {
    throw std::invalid_argument(
        "Problem: query and host must both be directed or both undirected");
  }
  if (query->nodeCount() > host->nodeCount()) {
    throw std::invalid_argument(
        "Problem: query has more nodes than host; no injective mapping exists");
  }
  if (query->nodeCount() == 0) {
    throw std::invalid_argument("Problem: empty query network");
  }
}

}  // namespace netembed::core
