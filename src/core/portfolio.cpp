#include "core/portfolio.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <sstream>
#include <thread>

#include "core/filter.hpp"
#include "core/plan.hpp"
#include "util/timer.hpp"

namespace netembed::core {

std::string PortfolioResult::summary() const {
  std::ostringstream out;
  out << "portfolio: winner=" << algorithmName(winner)
      << (raceDecided ? " decided" : " undecided") << " [";
  bool first = true;
  for (const ContenderReport& c : contenders) {
    if (!first) out << " | ";
    first = false;
    out << algorithmName(c.algorithm) << ' ' << outcomeName(c.outcome);
    if (c.stopReason != StopReason::None) out << '/' << stopReasonName(c.stopReason);
    out << ' ' << c.searchMs << "ms";
    if (c.won) out << '*';
  }
  out << ']';
  return out.str();
}

std::vector<Algorithm> defaultContenders(const SearchOptions& options,
                                         std::optional<Algorithm> spawnFirst) {
  // RWB honors a bounded budget, but unbounded enumeration would let it stop
  // at its normalized budget of one and truncate the race — that race
  // belongs to the two exhaustive engines. The exclusion binds spawnFirst
  // too: an RWB hint must not smuggle it back in.
  const auto excluded = [&](Algorithm a) {
    return options.maxSolutions == 0 && a == Algorithm::RWB;
  };
  std::vector<Algorithm> contenders;
  if (spawnFirst && !excluded(*spawnFirst)) contenders.push_back(*spawnFirst);
  for (const Algorithm a : {Algorithm::ECF, Algorithm::RWB, Algorithm::LNS}) {
    if (!contenders.empty() && a == contenders.front()) continue;
    if (excluded(a)) continue;
    contenders.push_back(a);
  }
  return contenders;
}

PortfolioResult portfolioSearch(const Problem& problem, SearchContext& parent,
                                std::vector<Algorithm> contenders) {
  if (contenders.empty()) {
    contenders = defaultContenders(parent.options());
  }
  problem.validate();
  util::Stopwatch total;
  parent.beginSearchPhase();

  struct Entry {
    const Engine* engine = nullptr;
    std::unique_ptr<SearchContext> context;
    EmbedResult result;
    std::exception_ptr error;  // written only by this entry's own thread
  };
  const std::size_t n = contenders.size();
  std::vector<Entry> entries(n);
  std::atomic<int> winner{-1};

  // ECF and RWB need the identical stage-1 plan (it depends on neither seed
  // nor budget): one shared builder means the race performs exactly one
  // build — the first filtered contender builds, the other reuses. When the
  // parent already carries a builder (the service's plan cache), the race
  // shares — and warms — that one instead.
  std::shared_ptr<SharedPlanBuilder> sharedPlan = parent.planBuilder();
  if (!sharedPlan) sharedPlan = std::make_shared<SharedPlanBuilder>();

  // Decide the race exactly once; the claimer cancels everyone else. Returns
  // true when `i` is (or just became) the winner.
  const auto claim = [&](std::size_t i) {
    int expected = -1;
    if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) entries[j].context->requestCancel(StopReason::Cancelled);
      }
      return true;
    }
    return expected == static_cast<int>(i);
  };

  for (std::size_t i = 0; i < n; ++i) {
    entries[i].engine = &engineFor(contenders[i]);
    SearchOptions options = entries[i].engine->effectiveOptions(parent.options());
    // The race already fans out across cores; contenders run serial.
    options.rootSplitThreads = 1;
    // Only the winner's solutions flow into the parent (and on to the
    // caller's sink): a loser's in-flight find loses the claim and stops.
    SolutionSink forward = [&parent, claim, i](const Mapping& m) {
      if (!claim(i)) return false;
      return parent.offerSolution(m);
    };
    // Contenders keep no mappings of their own — the parent stores them.
    options.storeLimit = 0;
    entries[i].context = std::make_unique<SearchContext>(
        options, std::move(forward), parent.stopToken());
    entries[i].context->setPlanBuilder(sharedPlan);
  }

  std::vector<std::thread> threads;
  threads.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        Entry& entry = entries[i];
        try {
          entry.result = entry.engine->run(problem, *entry.context);
        } catch (const FilterOverflow&) {
          // Documented drop-out: stage-1 space blow-up disqualifies this
          // contender, but the race goes on.
          entry.result = EmbedResult{};
        } catch (...) {
          // Anything else (throwing user sink, bad_alloc) is a real error:
          // record it and stop the other losers. An already-decided winner
          // keeps running — its (possibly enumerate-all) result must not be
          // truncated by a loser's failure. Whether the error surfaces is
          // decided after the join, once the race outcome is known.
          entry.error = std::current_exception();
          const int decided = winner.load();
          for (std::size_t j = 0; j < n; ++j) {
            if (static_cast<int>(j) == decided) continue;
            entries[j].context->requestCancel(StopReason::Cancelled);
          }
          entry.result = EmbedResult{};
        }
        if (entry.result.outcome == Outcome::Complete && entry.engine->complete()) {
          // Exhausted the space: proof (infeasibility when nothing was found).
          claim(i);
        }
      });
    }
  } catch (...) {
    // std::thread construction can fail (resource exhaustion); joinable
    // threads must not reach ~vector or std::terminate is called. Cancel the
    // contenders already racing, join them, then surface the error.
    for (std::size_t i = 0; i < n; ++i) {
      entries[i].context->requestCancel(StopReason::Cancelled);
    }
    for (std::thread& thread : threads) thread.join();
    throw;
  }
  for (std::thread& thread : threads) thread.join();

  PortfolioResult out;
  int w = winner.load();
  // The winner's error (e.g. the caller's sink throwing mid-forward) always
  // surfaces, as does any error when the race stayed undecided. A loser's
  // error after the race is decided is dropped — the delivered result must
  // not be destroyed by a cancelled contender's bad_alloc — unless the
  // failure's cancel fan-out reached the winner before the claim landed
  // (StopReason::Cancelled): then the winner's result may be truncated and
  // returning it silently would hide the failure.
  if (w >= 0) {
    const Entry& winning = entries[static_cast<std::size_t>(w)];
    if (winning.error) std::rethrow_exception(winning.error);
    if (winning.context->stopReason() == StopReason::Cancelled) {
      for (const Entry& entry : entries) {
        if (entry.error) std::rethrow_exception(entry.error);
      }
    }
  } else {
    for (const Entry& entry : entries) {
      if (entry.error) std::rethrow_exception(entry.error);
    }
  }
  out.raceDecided = w >= 0;
  if (w < 0) {
    // Undecided (every contender timed out / was cancelled with nothing
    // found): report the contender that explored the most.
    w = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (entries[i].result.stats.treeNodesVisited >
          entries[w].result.stats.treeNodesVisited) {
        w = static_cast<int>(i);
      }
    }
  }
  out.winner = contenders[static_cast<std::size_t>(w)];
  out.contenders.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.contenders.push_back({contenders[i], entries[i].result.outcome,
                              entries[i].context->stopReason(),
                              entries[i].result.stats.treeNodesVisited,
                              entries[i].result.stats.searchMs,
                              out.raceDecided && static_cast<int>(i) == w});
  }

  const Entry& winning = entries[static_cast<std::size_t>(w)];
  parent.mergeStats(winning.result.stats);
  const bool exhausted =
      out.raceDecided && winning.result.outcome == Outcome::Complete;
  out.result = parent.finish(exhausted);
  out.result.stats.searchMs = total.elapsedMs();
  return out;
}

PortfolioResult portfolioSearch(const Problem& problem, const SearchOptions& options,
                                const SolutionSink& sink,
                                std::vector<Algorithm> contenders) {
  SearchContext parent(options, sink);
  return portfolioSearch(problem, parent, std::move(contenders));
}

}  // namespace netembed::core
