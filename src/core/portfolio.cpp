#include "core/portfolio.hpp"

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

#include "util/timer.hpp"

namespace netembed::core {

std::string PortfolioResult::summary() const {
  std::ostringstream out;
  out << "portfolio: winner=" << algorithmName(winner)
      << (raceDecided ? " decided" : " undecided") << " [";
  bool first = true;
  for (const ContenderReport& c : contenders) {
    if (!first) out << " | ";
    first = false;
    out << algorithmName(c.algorithm) << ' ' << outcomeName(c.outcome);
    if (c.stopReason != StopReason::None) out << '/' << stopReasonName(c.stopReason);
    out << ' ' << c.searchMs << "ms";
    if (c.won) out << '*';
  }
  out << ']';
  return out.str();
}

PortfolioResult portfolioSearch(const Problem& problem, SearchContext& parent,
                                std::vector<Algorithm> contenders) {
  if (contenders.empty()) {
    // RWB stops at its first match by design, so it only races first-match
    // queries; enumeration races the two exhaustive engines.
    contenders = parent.options().maxSolutions == 0
                     ? std::vector<Algorithm>{Algorithm::ECF, Algorithm::LNS}
                     : std::vector<Algorithm>{Algorithm::ECF, Algorithm::RWB,
                                              Algorithm::LNS};
  }
  problem.validate();
  util::Stopwatch total;
  parent.beginSearchPhase();

  struct Entry {
    const Engine* engine = nullptr;
    std::unique_ptr<SearchContext> context;
    EmbedResult result;
  };
  const std::size_t n = contenders.size();
  std::vector<Entry> entries(n);
  std::atomic<int> winner{-1};

  // Decide the race exactly once; the claimer cancels everyone else. Returns
  // true when `i` is (or just became) the winner.
  const auto claim = [&](std::size_t i) {
    int expected = -1;
    if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) entries[j].context->requestCancel(StopReason::Cancelled);
      }
      return true;
    }
    return expected == static_cast<int>(i);
  };

  for (std::size_t i = 0; i < n; ++i) {
    entries[i].engine = &engineFor(contenders[i]);
    SearchOptions options = entries[i].engine->effectiveOptions(parent.options());
    // The race already fans out across cores; contenders run serial.
    options.rootSplitThreads = 1;
    // Only the winner's solutions flow into the parent (and on to the
    // caller's sink): a loser's in-flight find loses the claim and stops.
    SolutionSink forward = [&entries, &parent, claim, i](const Mapping& m) {
      if (!claim(i)) return false;
      return parent.offerSolution(m);
    };
    // Contenders keep no mappings of their own — the parent stores them.
    options.storeLimit = 0;
    entries[i].context = std::make_unique<SearchContext>(
        options, std::move(forward), parent.stopToken());
  }

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      Entry& entry = entries[i];
      try {
        entry.result = entry.engine->run(problem, *entry.context);
      } catch (...) {
        // e.g. FilterOverflow: this contender drops out of the race.
        entry.result = EmbedResult{};
      }
      if (entry.result.outcome == Outcome::Complete && entry.engine->complete()) {
        // Exhausted the space: proof (infeasibility when nothing was found).
        claim(i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  PortfolioResult out;
  int w = winner.load();
  out.raceDecided = w >= 0;
  if (w < 0) {
    // Undecided (every contender timed out / was cancelled with nothing
    // found): report the contender that explored the most.
    w = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (entries[i].result.stats.treeNodesVisited >
          entries[w].result.stats.treeNodesVisited) {
        w = static_cast<int>(i);
      }
    }
  }
  out.winner = contenders[static_cast<std::size_t>(w)];
  out.contenders.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.contenders.push_back({contenders[i], entries[i].result.outcome,
                              entries[i].context->stopReason(),
                              entries[i].result.stats.treeNodesVisited,
                              entries[i].result.stats.searchMs,
                              out.raceDecided && static_cast<int>(i) == w});
  }

  const Entry& winning = entries[static_cast<std::size_t>(w)];
  parent.mergeStats(winning.result.stats);
  const bool exhausted =
      out.raceDecided && winning.result.outcome == Outcome::Complete;
  out.result = parent.finish(exhausted);
  out.result.stats.searchMs = total.elapsedMs();
  return out;
}

PortfolioResult portfolioSearch(const Problem& problem, const SearchOptions& options,
                                const SolutionSink& sink,
                                std::vector<Algorithm> contenders) {
  SearchContext parent(options, sink);
  return portfolioSearch(problem, parent, std::move(contenders));
}

}  // namespace netembed::core
