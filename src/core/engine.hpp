#pragma once
// The unified Engine layer.
//
// Every search algorithm — ECF, RWB, LNS, the naive/anneal/genetic baselines
// and the racing portfolio — runs behind the same Engine interface, driven by
// a SearchContext that owns the wall-clock deadline, a cooperative
// cancellation token, thread-safe solution admission (maxSolutions,
// storeLimit, SolutionSink, first-match timing) and a thread-safe stats sink.
//
// The context is what makes concurrency composable: root-split workers share
// one context and agree on when to stop and what was found; portfolio
// contenders each get their own context chained onto the parent's stop token
// so cancelling the parent (or the loser of a race) propagates without any
// engine knowing who else is running.

#include <atomic>
#include <memory>
#include <mutex>
#include <stop_token>

#include "core/problem.hpp"
#include "core/search.hpp"
#include "util/timer.hpp"

namespace netembed::core {

class SharedPlanBuilder;  // core/plan.hpp

/// Why a search stopped before exhausting its space.
enum class StopReason : std::uint8_t {
  None,            // still running, or ran to completion
  Deadline,        // SearchOptions::timeout expired
  SolutionBudget,  // maxSolutions reached
  VisitBudget,     // SearchOptions::visitBudget exhausted (QoS compute budget)
  SinkStop,        // a SolutionSink returned false
  Cancelled,       // external requestCancel (portfolio loser, shutdown, ...)
};
[[nodiscard]] const char* stopReasonName(StopReason r) noexcept;

/// Shared state for one search run. One-shot: create it from the effective
/// SearchOptions, hand it (by reference) to an engine or to several workers,
/// then collect the EmbedResult with finish().
///
/// Thread-safety: requestCancel/shouldStop/offerSolution/mergeStats may be
/// called concurrently from any number of workers.
class SearchContext {
 public:
  SearchContext() = default;
  explicit SearchContext(const SearchOptions& options, SolutionSink sink = {},
                         std::stop_token externalStop = {})
      : options_(options),
        deadline_(options.timeout),
        external_(std::move(externalStop)),
        sink_(std::move(sink)) {}

  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  [[nodiscard]] const SearchOptions& options() const noexcept { return options_; }
  [[nodiscard]] const util::Deadline& deadline() const noexcept { return deadline_; }

  // --- cancellation --------------------------------------------------------

  /// Ask every engine/worker driving this context to stop at its next poll.
  /// The first reason recorded wins; later calls only raise the flag.
  void requestCancel(StopReason reason = StopReason::Cancelled) noexcept;

  [[nodiscard]] bool stopRequested() const noexcept {
    return stop_.stop_requested();
  }
  [[nodiscard]] StopReason stopReason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }
  /// Token observing this context's stop; chain it into child contexts so a
  /// parent cancel fans out (see the portfolio).
  [[nodiscard]] std::stop_token stopToken() const noexcept {
    return stop_.get_token();
  }

  /// Cooperative poll, called by engines once per visited tree node. Checks
  /// the cancel flags every call (relaxed atomic loads) and the wall clock
  /// once per SearchOptions::checkStride visits. Not noexcept: this is the
  /// one hook every engine runs per visited node, so it doubles as the
  /// mid-search crash probe (util::faultsite::kEngineStep) and may throw
  /// util::InjectedFault under an armed chaos schedule.
  [[nodiscard]] bool shouldStop(std::uint64_t visits);

  /// Poll for coarse-grained loops (one call per restart/generation): the
  /// wall clock is checked on every call.
  [[nodiscard]] bool shouldStop() { return shouldStop(0); }

  // --- solutions -----------------------------------------------------------

  /// Thread-safe solution admission: counts the mapping, stores it while
  /// under storeLimit, stamps the first-match time, invokes the sink, and
  /// raises SolutionBudget / SinkStop cancellation. Returns false when the
  /// caller must stop its own search (budget exhausted or sink said stop);
  /// a false return for an over-budget offer means the mapping was NOT
  /// counted, keeping solutionCount exact even across racing workers.
  /// Admission is serialized, but the sink itself runs outside the context
  /// lock and may execute concurrently with other admitted offers' sinks.
  bool offerSolution(const Mapping& mapping);

  [[nodiscard]] std::uint64_t solutionCount() const noexcept {
    return solutions_.load(std::memory_order_acquire);
  }

  // --- shared stage-1 plan -------------------------------------------------

  /// Install the (possibly shared) stage-1 plan source before running an
  /// engine. Filtered engines (ECF/RWB) consult it instead of building their
  /// own plan: the service's FilterPlanCache amortizes builds across queries
  /// against one model version, and the portfolio hands the same builder to
  /// every contender so a race performs exactly one build. Not thread-safe
  /// against concurrent run() — set it before handing the context out.
  void setPlanBuilder(std::shared_ptr<SharedPlanBuilder> builder) noexcept {
    planBuilder_ = std::move(builder);
  }
  [[nodiscard]] const std::shared_ptr<SharedPlanBuilder>& planBuilder() const noexcept {
    return planBuilder_;
  }

  // --- stats and result ----------------------------------------------------

  /// Restart the first-match clock. Drivers call this once setup (e.g. the
  /// stage-1 filter build) is done, so firstMatchMs measures search time.
  void beginSearchPhase() noexcept { firstMatchClock_.restart(); }

  void mergeStats(const SearchStats& stats);

  /// Assemble the final result from everything offered so far. `exhausted`
  /// means the caller walked its entire search space; the outcome is then
  /// Complete unless a stop was requested (a cancelled run never reports
  /// Complete), otherwise Partial/Inconclusive by whether anything was found.
  /// Callers stamp result.stats.searchMs with their own wall clock.
  [[nodiscard]] EmbedResult finish(bool exhausted);

 private:
  SearchOptions options_{};
  util::Deadline deadline_{};
  std::stop_token external_{};
  std::stop_source stop_;
  std::atomic<std::uint8_t> reason_{static_cast<std::uint8_t>(StopReason::None)};
  std::atomic<std::uint64_t> solutions_{0};
  util::Stopwatch firstMatchClock_;
  std::shared_ptr<SharedPlanBuilder> planBuilder_;  // set before run, read-only after

  std::mutex mutex_;  // guards mappings_, stats_, firstMatchMs_
  std::vector<Mapping> mappings_;
  SolutionSink sink_;  // immutable after construction; invoked outside mutex_
  SearchStats stats_{};
  double firstMatchMs_ = -1.0;
};

/// A search algorithm behind the uniform entry point. Implementations are
/// stateless singletons (see engineFor); all per-run state lives in the
/// SearchContext and on the stack.
class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual Algorithm algorithm() const noexcept = 0;
  [[nodiscard]] const char* name() const noexcept {
    return algorithmName(algorithm());
  }

  /// Complete search: a Complete outcome with zero solutions proves
  /// infeasibility. False for the metaheuristic baselines.
  [[nodiscard]] virtual bool complete() const noexcept = 0;

  /// Normalize caller options to this engine's semantics (e.g. RWB treats
  /// maxSolutions == 0 as 1). Build the SearchContext from the result.
  [[nodiscard]] virtual SearchOptions effectiveOptions(SearchOptions options) const {
    return options;
  }

  /// Run against a context prepared from effectiveOptions().
  [[nodiscard]] virtual EmbedResult run(const Problem& problem,
                                        SearchContext& context) const = 0;
};

/// The engine registry: one stateless instance per Algorithm value.
[[nodiscard]] const Engine& engineFor(Algorithm algorithm);

/// One-call dispatch: build a context from effectiveOptions() and run.
/// This is what the service, the optimizer and the benches call.
[[nodiscard]] EmbedResult runSearch(Algorithm algorithm, const Problem& problem,
                                    const SearchOptions& options = {},
                                    const SolutionSink& sink = {});

}  // namespace netembed::core
