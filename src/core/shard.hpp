#pragma once
// Shard partitioning of the host-node id space.
//
// The sharded host model (the in-process half of the decomposition-based
// distributed VNE split) partitions host nodes into contiguous ranges
// aligned to 64-bit word boundaries, so every packed util::Bitset row over
// host nodes — stage-0 viability, per-cell candidate rows, per-worker
// domains — splits into per-shard sub-rows with zero re-packing: a shard's
// slice of any row is just a word subrange. That alignment is what lets the
// filter build run shard-local, the eq.-2 intersections restrict themselves
// to the shards a partial mapping can still reach, and a ModelDelta classify
// to the shards it touches, all against the *same* flat bit rows every
// engine already reads.
//
// The shard count is capped at 64 so a set of live shards fits one word (the
// per-worker live-shard mask), and clamped to the row's word count so every
// shard owns at least one word. The default partitioner is contiguous
// equal-word ranges; the map is a value type, so a min-cut (METIS-style)
// partitioner can later swap in by emitting a different range table without
// touching any consumer.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>

#include "util/bitset.hpp"

namespace netembed::core {

class ShardMap {
 public:
  /// A live-shard set must fit one 64-bit word.
  static constexpr std::size_t kMaxShards = 64;

  /// The trivial single-shard map over zero nodes (a default-constructed
  /// FilterMatrix before build()).
  ShardMap() = default;

  /// Partition `hostNodes` ids into at most `shards` contiguous word-aligned
  /// ranges. `shards` is clamped to [1, min(kMaxShards, word count)], so
  /// tiny hosts silently get fewer shards than requested — every shard is
  /// guaranteed at least one 64-bit word of the row.
  ShardMap(std::size_t hostNodes, std::size_t shards)
      : hostNodes_(hostNodes), totalWords_(util::wordsForBits(hostNodes)) {
    const std::size_t cap =
        std::min(kMaxShards, totalWords_ == 0 ? std::size_t{1} : totalWords_);
    const std::size_t requested = shards == 0 ? 1 : std::min(shards, cap);
    wordsPerShard_ =
        (std::max<std::size_t>(totalWords_, 1) + requested - 1) / requested;
    count_ = totalWords_ == 0
                 ? 1
                 : (totalWords_ + wordsPerShard_ - 1) / wordsPerShard_;
  }

  [[nodiscard]] std::size_t shardCount() const noexcept { return count_; }
  [[nodiscard]] std::size_t hostNodes() const noexcept { return hostNodes_; }
  [[nodiscard]] std::size_t totalWords() const noexcept { return totalWords_; }

  /// First word of shard `k` within any host-node bit row.
  [[nodiscard]] std::size_t beginWord(std::size_t k) const noexcept {
    assert(k < count_);
    return k * wordsPerShard_;
  }
  /// One past the last word of shard `k` (the final shard may be short).
  [[nodiscard]] std::size_t endWord(std::size_t k) const noexcept {
    assert(k < count_);
    return std::min((k + 1) * wordsPerShard_, totalWords_);
  }

  /// First host-node id owned by shard `k`.
  [[nodiscard]] std::size_t beginNode(std::size_t k) const noexcept {
    return beginWord(k) * util::kBitsPerWord;
  }
  /// One past the last host-node id owned by shard `k`.
  [[nodiscard]] std::size_t endNode(std::size_t k) const noexcept {
    return std::min(endWord(k) * util::kBitsPerWord, hostNodes_);
  }

  /// The shard owning host node `r`.
  [[nodiscard]] std::size_t shardOf(std::size_t r) const noexcept {
    assert(r < hostNodes_);
    return (r / util::kBitsPerWord) / wordsPerShard_;
  }

  /// Occupancy summary of a host-node bit row: bit k is set iff shard k
  /// holds at least one set bit. `row` must span totalWords() words.
  [[nodiscard]] std::uint64_t occupancy(
      std::span<const std::uint64_t> row) const noexcept {
    assert(row.size() == totalWords_);
    std::uint64_t mask = 0;
    for (std::size_t k = 0; k < count_; ++k) {
      std::uint64_t any = 0;
      for (std::size_t w = beginWord(k); w < endWord(k); ++w) any |= row[w];
      if (any != 0) mask |= std::uint64_t{1} << k;
    }
    return mask;
  }

  /// All shards live: the mask consumers fall back to when no occupancy
  /// summary is maintained (single-shard builds).
  [[nodiscard]] std::uint64_t fullMask() const noexcept {
    return count_ >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << count_) - 1;
  }

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  std::size_t hostNodes_ = 0;
  std::size_t totalWords_ = 0;
  std::size_t wordsPerShard_ = 1;
  std::size_t count_ = 1;
};

}  // namespace netembed::core
