#pragma once
// Dynamic smallest-domain variable ordering for the filtered engines.
//
// The paper fixes the variable order up front (Lemma 1: ascending stage-1
// candidate count). That ignores how domains shrink *during* search: after a
// few assignments the most constrained unassigned node is rarely the one the
// static order schedules next. DomainTracker maintains, per query node, the
// exact live candidate domain
//
//     D(w) = viable(w)  \  used  ∩  { candidates(v, s, m(v)) :
//                                     assigned v, slot s of v pointing at w }
//
// as a packed bit row with an incrementally-maintained popcount, updated by
// the same constrainer-row ANDs the search performs anyway (fused with the
// popcount in one pass — util::simd::andIntoPopcount). Selection picks the
// unassigned node with the smallest live count, breaking ties by the static
// Lemma-1 position, so Dynamic degenerates to exactly the static order when
// domains never diverge. A wipeout (any live domain hitting zero) is
// detected at assignment time and prunes the subtree immediately.
//
// Exactness matters for the differential contract: CSR-only cells contribute
// through a materialized scratch row, so the maintained domains — and hence
// the visit order — are identical across BitsetMode Off/Auto/Force, keeping
// "bitset mode is purely a performance knob" true under Dynamic too.
//
// Sharded plans add a per-node live-shard mask (occ_): a superset of the
// shards whose word range of the domain row is non-zero, seeded from the
// filter's occupancy summaries. Updates then AND only the shards surviving
// the intersection and explicitly zero the shards leaving the mask (their
// true AND result — the constrainer is empty there), so rows stay exact and
// the unsharded visit order is reproduced bit for bit.
//
// Assignments form a stack (assign/unassign), mirroring the DFS; undo
// restores the saved rows and counts of exactly the nodes the assignment
// touched. One tracker per search worker; no sharing, no synchronization.

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/filter.hpp"
#include "core/plan.hpp"
#include "util/bitset.hpp"
#include "util/simd.hpp"

namespace netembed::core {

class DomainTracker {
 public:
  explicit DomainTracker(const FilterPlan& plan)
      : fm_(plan.filters),
        nq_(plan.order.size()),
        nr_(plan.filters.hostNodes()),
        words_(plan.filters.hostWords()) {
    staticPos_.assign(nq_, 0);
    for (std::size_t d = 0; d < nq_; ++d) staticPos_[plan.order[d]] = d;
    domains_.assign(nq_, nr_);
    counts_.assign(nq_, 0);
    assigned_.assign(nq_, 0);
    touchedEpoch_.assign(nq_, 0);
    scratch_.assign(nr_);
    frames_.resize(nq_ + 1);
    if (fm_.sharded()) occ_.assign(nq_, 0);
    reset();
  }

  /// Back to the no-assignments state: every domain is its viable row.
  void reset() {
    for (graph::NodeId v = 0; v < nq_; ++v) {
      const auto row = fm_.viableBits(v);
      std::uint64_t* dst = domains_.rowData(v);
      for (std::size_t w = 0; w < words_; ++w) dst[w] = row[w];
      counts_[v] = static_cast<std::uint32_t>(fm_.viable(v).size());
      assigned_[v] = 0;
      touchedEpoch_[v] = 0;
      if (!occ_.empty()) occ_[v] = fm_.viableShardMask(v);
    }
    depth_ = 0;
    epoch_ = 0;
  }

  /// The unassigned node with the smallest live domain; ties break toward
  /// the earliest static (Lemma-1) position. Precondition: at least one
  /// node is unassigned.
  [[nodiscard]] graph::NodeId selectNext() const noexcept {
    graph::NodeId best = graph::kInvalidNode;
    std::uint64_t bestKey = std::numeric_limits<std::uint64_t>::max();
    for (graph::NodeId v = 0; v < nq_; ++v) {
      if (assigned_[v]) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(counts_[v]) << 32) | staticPos_[v];
      if (key < bestKey) {
        bestKey = key;
        best = v;
      }
    }
    assert(best != graph::kInvalidNode);
    return best;
  }

  /// Record v -> r: narrow every unassigned neighbor's domain by the
  /// matching constrainer row, remove r from every unassigned domain, and
  /// push an undo frame. Returns false when any live domain wiped out —
  /// the caller should skip descending (and must still unassign()).
  bool assign(graph::NodeId v, graph::NodeId r) {
    assert(!assigned_[v]);
    Frame& f = frames_[depth_++];
    f.v = v;
    f.r = r;
    f.saved.clear();
    f.arena.clear();
    f.cleared.clear();
    assigned_[v] = 1;
    ++epoch_;

    bool alive = true;
    // Neighbor domains: D(w) &= candidates(v, slot, r), popcount fused in.
    for (std::uint32_t s = 0; s < fm_.slots(v).size(); ++s) {
      const graph::NodeId w = fm_.slots(v)[s].neighbor;
      if (assigned_[w]) continue;
      std::uint64_t* row = domains_.rowData(w);
      if (touchedEpoch_[w] != epoch_) {
        touchedEpoch_[w] = epoch_;
        f.saved.push_back({w, counts_[w], occ_.empty() ? 0 : occ_[w]});
        f.arena.insert(f.arena.end(), row, row + words_);
      }
      std::span<const std::uint64_t> constr;
      std::uint64_t constrOcc = ~std::uint64_t{0};
      if (fm_.hasCandidateBits(v, s)) {
        constr = fm_.candidateBits(v, s, r);
        if (!occ_.empty()) constrOcc = fm_.candidateShardMask(v, s, r);
      } else {
        // CSR-only cell: materialize the sorted list as a row so the
        // maintained domain stays exact in every bitset mode; accumulate the
        // shard occupancy while scattering — exact for free.
        scratch_.clearAll();
        if (occ_.empty()) {
          for (const graph::NodeId c : fm_.candidates(v, s, r)) scratch_.set(c);
        } else {
          constrOcc = 0;
          const ShardMap& smap = fm_.shardMap();
          for (const graph::NodeId c : fm_.candidates(v, s, r)) {
            scratch_.set(c);
            constrOcc |= std::uint64_t{1} << smap.shardOf(c);
          }
        }
        constr = scratch_.words();
      }
      if (occ_.empty()) {
        counts_[w] = static_cast<std::uint32_t>(
            util::simd::andIntoPopcount(row, constr.data(), words_));
      } else {
        // Shard-restricted narrowing: AND only the shards both sides can
        // occupy; zero the shards leaving the mask (their exact AND result,
        // since the constrainer holds no bit there). Shards already outside
        // occ_[w] are all-zero by invariant and stay untouched.
        const ShardMap& smap = fm_.shardMap();
        const std::uint64_t newOcc = occ_[w] & constrOcc;
        std::size_t count = 0;
        for (std::uint64_t m = newOcc; m != 0; m &= m - 1) {
          const auto k = static_cast<std::size_t>(std::countr_zero(m));
          count += util::simd::andIntoPopcountRange(row, constr.data(),
                                                    smap.beginWord(k),
                                                    smap.endWord(k));
        }
        for (std::uint64_t m = occ_[w] & ~newOcc; m != 0; m &= m - 1) {
          const auto k = static_cast<std::size_t>(std::countr_zero(m));
          for (std::size_t wd = smap.beginWord(k); wd < smap.endWord(k); ++wd) {
            row[wd] = 0;
          }
        }
        occ_[w] = newOcc;
        counts_[w] = static_cast<std::uint32_t>(count);
      }
      if (counts_[w] == 0) alive = false;
    }
    // r is taken: drop it from every other live domain (a one-bit edit —
    // full-row saves above already cover the ANDed neighbors).
    for (graph::NodeId w = 0; w < nq_; ++w) {
      if (assigned_[w] || !domains_.test(w, r)) continue;
      domains_.reset(w, r);
      --counts_[w];
      if (touchedEpoch_[w] != epoch_) f.cleared.push_back(w);
      if (counts_[w] == 0) alive = false;
    }
    return alive;
  }

  /// Undo the most recent assign() (LIFO).
  void unassign() {
    assert(depth_ > 0);
    Frame& f = frames_[--depth_];
    const std::uint64_t* src = f.arena.data();
    for (const SavedDomain& s : f.saved) {
      std::uint64_t* row = domains_.rowData(s.node);
      for (std::size_t w = 0; w < words_; ++w) row[w] = src[w];
      counts_[s.node] = s.count;
      if (!occ_.empty()) occ_[s.node] = s.occ;
      src += words_;
    }
    for (const graph::NodeId w : f.cleared) {
      domains_.set(w, f.r);
      ++counts_[w];
    }
    assigned_[f.v] = 0;
  }

  /// The live domain of `v` as a bit row (exact; ascending walk matches the
  /// static path's candidate enumeration order).
  [[nodiscard]] std::span<const std::uint64_t> domain(graph::NodeId v) const {
    return domains_.row(v);
  }
  [[nodiscard]] std::size_t liveCount(graph::NodeId v) const noexcept {
    return counts_[v];
  }
  [[nodiscard]] bool isAssigned(graph::NodeId v) const noexcept {
    return assigned_[v] != 0;
  }
  [[nodiscard]] std::size_t assignedCount() const noexcept { return depth_; }

  /// Test hook: every unassigned node's maintained count equals the
  /// popcount of its maintained row (the invariant incremental updates must
  /// preserve through any assign/unassign interleaving).
  [[nodiscard]] bool countsConsistent() const {
    for (graph::NodeId v = 0; v < nq_; ++v) {
      if (assigned_[v]) continue;
      const auto row = domains_.row(v);
      if (util::simd::popcount(row.data(), row.size()) != counts_[v]) return false;
    }
    return true;
  }

  /// The depth-0 pick under the dynamic rule, computable before any tracker
  /// exists: smallest stage-1 viable count, ties toward the static position.
  /// Equals plan.order.front() whenever the plan was Lemma-1 sorted.
  [[nodiscard]] static graph::NodeId firstNode(const FilterPlan& plan) {
    const std::size_t nq = plan.order.size();
    std::vector<std::size_t> pos(nq, 0);
    for (std::size_t d = 0; d < nq; ++d) pos[plan.order[d]] = d;
    graph::NodeId best = plan.order.front();
    for (graph::NodeId v = 0; v < nq; ++v) {
      const auto a = std::make_pair(plan.filters.viable(v).size(), pos[v]);
      const auto b = std::make_pair(plan.filters.viable(best).size(), pos[best]);
      if (a < b) best = v;
    }
    return best;
  }

 private:
  struct SavedDomain {
    graph::NodeId node;
    std::uint32_t count;
    std::uint64_t occ;  // live-shard mask at save time (sharded plans only)
  };
  /// Undo record for one assignment: full copies of the rows that were
  /// ANDed, plus the nodes that only lost the single bit `r`.
  struct Frame {
    graph::NodeId v = graph::kInvalidNode;
    graph::NodeId r = graph::kInvalidNode;
    std::vector<SavedDomain> saved;
    std::vector<std::uint64_t> arena;  // saved rows, words_ each, in order
    std::vector<graph::NodeId> cleared;
  };

  const FilterMatrix& fm_;
  std::size_t nq_;
  std::size_t nr_;
  std::size_t words_;
  std::vector<std::size_t> staticPos_;
  util::BitMatrix domains_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint8_t> assigned_;
  std::vector<std::uint32_t> touchedEpoch_;  // dedups full-row saves per frame
  std::uint32_t epoch_ = 0;
  util::Bitset scratch_;  // CSR-cell row materialization
  /// Per node: superset of the shards whose slice of the domain row holds
  /// any bit (invariant: slices outside the mask are all-zero). Empty on
  /// unsharded plans — every occ branch above then compiles to the
  /// historical flat update.
  std::vector<std::uint64_t> occ_;
  std::vector<Frame> frames_;
  std::size_t depth_ = 0;
};

}  // namespace netembed::core
