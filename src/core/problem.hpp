#pragma once
// An embedding problem instance: query network, hosting network, constraints.

#include "expr/constraint.hpp"
#include "graph/graph.hpp"

namespace netembed::core {

/// Non-owning view of one embedding problem. The graphs and constraints must
/// outlive every engine run against the problem. Immutable during search, so
/// multiple engines may run concurrently on the same Problem.
struct Problem {
  const graph::Graph* query = nullptr;
  const graph::Graph* host = nullptr;
  const expr::ConstraintSet* constraints = nullptr;  // nullptr => topology only

  Problem() = default;
  Problem(const graph::Graph& q, const graph::Graph& h,
          const expr::ConstraintSet& c)
      : query(&q), host(&h), constraints(&c) {}
  Problem(const graph::Graph& q, const graph::Graph& h) : query(&q), host(&h) {}

  /// Throws std::invalid_argument when the instance is malformed
  /// (null graphs, mismatched directedness, query larger than host).
  void validate() const;

  [[nodiscard]] const expr::Constraint* edgeConstraint() const noexcept {
    return constraints && constraints->edge ? &*constraints->edge : nullptr;
  }
  [[nodiscard]] const expr::Constraint* nodeConstraint() const noexcept {
    return constraints && constraints->node ? &*constraints->node : nullptr;
  }

  /// Evaluate the node constraint for q->r (true when unconstrained).
  [[nodiscard]] bool nodeOk(graph::NodeId q, graph::NodeId r) const {
    const expr::Constraint* c = nodeConstraint();
    return !c || c->evalNodePair(*query, q, *host, r);
  }

  /// Degree-based necessary condition for q->r under an injective mapping.
  [[nodiscard]] bool degreeOk(graph::NodeId q, graph::NodeId r) const {
    if (query->directed()) {
      return query->outDegree(q) <= host->outDegree(r) &&
             query->inDegree(q) <= host->inDegree(r);
    }
    return query->degree(q) <= host->degree(r);
  }

  /// Evaluate the edge constraint for the oriented pair (true when
  /// unconstrained). `evals` is incremented when an expression runs.
  [[nodiscard]] bool edgeOk(graph::EdgeId qe, graph::NodeId qa, graph::NodeId qb,
                            graph::EdgeId re, graph::NodeId ra, graph::NodeId rb,
                            std::uint64_t& evals) const {
    const expr::Constraint* c = edgeConstraint();
    if (!c) return true;
    ++evals;
    return c->evalEdgePair(*query, qe, qa, qb, *host, re, ra, rb);
  }
};

}  // namespace netembed::core
