#pragma once
// LNS — Lazy Neighborhood Search (paper §V-C, Figs. 6-7).
//
// Grows a Covered set of mapped query nodes, always expanding a node from
// the Neighbor set (nodes adjacent to Covered). Host candidates are computed
// lazily by intersecting the host adjacencies of the images of covered
// neighbours and checking the connecting-edge constraints on the fly — no
// precomputed filter matrices, O(n) state (the fix for ECF/RWB's worst-case
// O(n^5) space).
//
// Heuristics (paper's two, both ablatable via SearchOptions):
//   1. start from the maximum-degree query node,
//   2. expand the neighbour with the most links into Covered.
// Complete and correct per the paper's appendix (Lemma 2 / Theorem 1).

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::core {

[[nodiscard]] EmbedResult lnsSearch(const Problem& problem,
                                    const SearchOptions& options = {},
                                    const SolutionSink& sink = {});

/// Run against an externally-owned context (portfolio contenders, tests
/// exercising cancellation). The context supplies the options.
[[nodiscard]] EmbedResult lnsSearch(const Problem& problem, SearchContext& context);

}  // namespace netembed::core
