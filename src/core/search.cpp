#include "core/search.hpp"

namespace netembed::core {

const char* algorithmName(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::ECF: return "ECF";
    case Algorithm::RWB: return "RWB";
    case Algorithm::LNS: return "LNS";
    case Algorithm::Naive: return "Naive";
    case Algorithm::Anneal: return "Anneal";
    case Algorithm::Genetic: return "Genetic";
    case Algorithm::Portfolio: return "Portfolio";
  }
  return "?";
}

const char* orderingName(Ordering o) noexcept {
  switch (o) {
    case Ordering::Static: return "static";
    case Ordering::Dynamic: return "dynamic";
    case Ordering::Auto: return "auto";
  }
  return "?";
}

const char* outcomeName(Outcome o) noexcept {
  switch (o) {
    case Outcome::Complete: return "complete";
    case Outcome::Partial: return "partial";
    case Outcome::Inconclusive: return "inconclusive";
  }
  return "?";
}

void SearchStats::merge(const SearchStats& other) noexcept {
  treeNodesVisited += other.treeNodesVisited;
  constraintEvals += other.constraintEvals;
  backtracks += other.backtracks;
  filterEntries += other.filterEntries;
  filterBuildMs += other.filterBuildMs;
  searchMs += other.searchMs;
  if (firstMatchMs < 0) firstMatchMs = other.firstMatchMs;
  peakCovered = std::max(peakCovered, other.peakCovered);
}

std::string formatMapping(const Mapping& m, const graph::Graph& query,
                          const graph::Graph& host) {
  std::string out;
  for (std::size_t q = 0; q < m.size(); ++q) {
    if (!out.empty()) out += ' ';
    out += query.nodeName(static_cast<graph::NodeId>(q));
    out += "->";
    out += m[q] == graph::kInvalidNode ? std::string("?") : host.nodeName(m[q]);
  }
  return out;
}

}  // namespace netembed::core
