#pragma once
// The "model of the real network" component of the NETEMBED service
// (paper §III, Fig. 1): holds the hosting graph, accepts monitoring-style
// metric updates, and implements the optional resource-reservation system
// (allocations subtract from capacity attributes; releases restore them).

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/search.hpp"
#include "graph/graph.hpp"

namespace netembed::service {

class NetworkModel {
 public:
  explicit NetworkModel(graph::Graph host);

  NetworkModel(const NetworkModel&) = default;
  NetworkModel(NetworkModel&&) = default;
  /// Replacing a live model wholesale is a mutation like any other: the
  /// version strictly rises past both operands, so consumers keyed by
  /// version (the service's FilterPlanCache) can never mistake the new host
  /// for the old one.
  NetworkModel& operator=(NetworkModel other) noexcept;

  [[nodiscard]] const graph::Graph& host() const noexcept { return host_; }

  /// Monotonically increasing; bumped by every mutation. Lets distributed
  /// replicas detect staleness (paper §III: "an up-to-date copy of the model
  /// on each server").
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// The delta the most recent version bump applied: which host nodes/edges
  /// were touched and which attribute ids changed (structural for a
  /// wholesale model replacement). Consumers that carry derived state across
  /// versions — the service's FilterPlanCache patching stage-1 plans instead
  /// of rebuilding them — read this right after mutating, under the same
  /// synchronization as the mutation itself. Empty before any mutation.
  [[nodiscard]] const core::ModelDelta& lastDelta() const noexcept {
    return lastDelta_;
  }

  // --- monitoring updates ---------------------------------------------------

  /// Update a link metric; throws when the edge does not exist.
  void setEdgeMetric(graph::NodeId u, graph::NodeId v, std::string_view attr,
                     graph::AttrValue value);

  void setNodeAttr(graph::NodeId n, std::string_view attr, graph::AttrValue value);

  /// One observation from a monitoring service, addressed by node names.
  struct Measurement {
    std::string src;
    std::string dst;   // empty => node-level measurement on src
    std::string attr;
    graph::AttrValue value;
  };

  /// Apply a batch; unknown nodes/edges are skipped. Returns applied count.
  std::size_t applyMeasurements(std::span<const Measurement> batch);

  // --- reservations -----------------------------------------------------------

  using ReservationId = std::uint64_t;

  /// Which attributes act as consumable capacities. For each listed
  /// attribute, the query element's value (its demand) is subtracted from
  /// the mapped host element's value (its remaining capacity).
  struct ReservationSpec {
    std::vector<std::string> nodeCapacityAttrs;
    std::vector<std::string> edgeCapacityAttrs;
  };

  /// Atomically reserve resources for a complete mapping. Throws
  /// std::runtime_error (and changes nothing) when any capacity would go
  /// negative. Query elements without a demand attribute consume nothing.
  ReservationId reserve(const graph::Graph& query, const core::Mapping& mapping,
                        const ReservationSpec& spec);

  /// Return a reservation's resources; throws on unknown id.
  void release(ReservationId id);

  [[nodiscard]] std::size_t activeReservations() const noexcept {
    return reservations_.size();
  }

 private:
  struct Delta {
    bool onNode;
    std::uint32_t element;  // node or edge id
    graph::AttrId attr;
    double amount;
  };

  graph::Graph host_;
  std::uint64_t version_ = 0;
  core::ModelDelta lastDelta_;
  ReservationId nextId_ = 1;
  std::map<ReservationId, std::vector<Delta>> reservations_;
};

}  // namespace netembed::service
