#pragma once
// The NETEMBED mapping service (paper §III, Fig. 1): applications submit a
// query network plus constraint expressions and receive feasible mappings.
// Includes algorithm auto-selection (per the §VIII guidance on when each
// algorithm wins) and the interactive constraint-relaxation loop §VI-B
// motivates ("begin with more stringent constraints and relax them if there
// is no compliant mapping").

#include <optional>
#include <stop_token>
#include <string>

#include "core/problem.hpp"
#include "core/search.hpp"
#include "service/model.hpp"
#include "service/plan_cache.hpp"
#include "service/qos.hpp"

namespace netembed::service {

class SubmitTicket;      // service/ticket.hpp
struct TicketCallbacks;  // service/ticket.hpp

struct EmbedRequest {
  graph::Graph query;
  std::string edgeConstraint;  // empty => topology-only
  std::string nodeConstraint;  // empty => unconstrained nodes
  /// nullopt => the service chooses (see chooseAlgorithm).
  std::optional<core::Algorithm> algorithm;
  core::SearchOptions options;
  /// Priority class, admission deadline, compute budget, tenant. The default
  /// block is inert: pre-QoS requests behave exactly as before.
  QoS qos;
};

struct EmbedResponse {
  core::EmbedResult result;
  core::Algorithm algorithmUsed = core::Algorithm::ECF;
  std::uint64_t modelVersion = 0;
  /// Attempts consumed to produce this response (1 = first try; >1 means
  /// transient failures were retried under QoS::retry).
  std::uint32_t attempts = 1;
  /// Terminal lifecycle state. Done for every successful plain submit();
  /// ticket submissions may resolve Cancelled/Rejected/Expired instead (the
  /// result is then whatever partial state the search reached — typically
  /// empty for pre-dispatch drops).
  RequestStatus status = RequestStatus::Done;
  std::string diagnostics;
};

class NetEmbedService {
 public:
  /// `planCacheCapacity` bounds the stage-1 plan cache (signatures retained
  /// per model version); 0 disables plan sharing across submits.
  explicit NetEmbedService(NetworkModel model, std::size_t planCacheCapacity = 32)
      : model_(std::move(model)), planCache_(planCacheCapacity) {}
  explicit NetEmbedService(graph::Graph host, std::size_t planCacheCapacity = 32)
      : model_(std::move(host)), planCache_(planCacheCapacity) {}

  [[nodiscard]] NetworkModel& model() noexcept { return model_; }
  [[nodiscard]] const NetworkModel& model() const noexcept { return model_; }

  /// Hit/miss/invalidation counters of the shared stage-1 plan cache.
  [[nodiscard]] FilterPlanCache::Stats planCacheStats() const {
    return planCache_.stats();
  }

  /// Run one query. Throws expr::SyntaxError on bad constraint source and
  /// std::invalid_argument on malformed problems.
  [[nodiscard]] EmbedResponse submit(const EmbedRequest& request) const;

  /// Lifecycle form of submit(): runs the request on a dedicated thread
  /// against a snapshot of the host taken at submission (mutating the model
  /// while the ticket is outstanding is safe — the runner never reads the
  /// live model), and returns a SubmitTicket supporting cancel(), status(),
  /// a streaming onSolution callback fed from SearchContext admission, and
  /// a future for the terminal EmbedResponse. The QoS compute budgets
  /// apply; the admission deadline does not (there is no queue here — see
  /// AsyncNetEmbedService for queued admission). The service must outlive
  /// the ticket; destroying an unconsumed ticket cancels the run and joins.
  [[nodiscard]] SubmitTicket submitTicketed(EmbedRequest request,
                                            TicketCallbacks callbacks) const;

  /// §VIII: ECF/RWB win on tightly-constrained queries over sparse hosts;
  /// LNS wins for first-match on dense hosts and regular/under-constrained
  /// queries. `wantAll` = enumerating (not stopping at the first match).
  [[nodiscard]] static core::Algorithm chooseAlgorithm(const graph::Graph& query,
                                                       const graph::Graph& host,
                                                       bool wantAll);

  struct NegotiationResult {
    bool feasible = false;
    double toleranceUsed = 0.0;  // delay-window widening that succeeded
    int rounds = 0;
    EmbedResponse response;
  };

  /// Interactive-negotiation helper: resubmit with progressively wider query
  /// delay windows (multiplying min by 1-t and max by 1+t) until feasible or
  /// maxTolerance is exceeded.
  [[nodiscard]] NegotiationResult negotiate(const EmbedRequest& request, double step,
                                            double maxTolerance) const;

  /// Submit, then reserve resources for the first feasible mapping (paper
  /// §III component 3). Returns the reservation id and mapping, or nullopt
  /// when no feasible embedding was found.
  struct Allocation {
    NetworkModel::ReservationId reservation;
    core::Mapping mapping;
  };
  [[nodiscard]] std::optional<Allocation> allocateFirstFeasible(
      const EmbedRequest& request, const NetworkModel::ReservationSpec& spec);

 private:
  NetworkModel model_;
  mutable FilterPlanCache planCache_;  // internally synchronized
};

namespace detail {
/// Shared implementation behind the synchronous and asynchronous front ends:
/// parse constraints, build the problem against `host`, choose (and possibly
/// escalate) the algorithm, acquire a shared stage-1 plan from `cache`
/// (nullable), run, and stamp `version` into the response.
///
/// `allowPortfolioEscalation` gates the multi-core first-match auto-race.
/// The batched scheduler passes false: queued requests already saturate the
/// cores side by side, so racing three engines per query would oversubscribe
/// the machine for no latency win — explicit Algorithm::Portfolio requests
/// still race.
///
/// `sink` streams every admitted solution as the search finds it (the
/// SolutionSink contract from core/search.hpp applies: may fire concurrently
/// under root-split, return false to stop). `stopToken` chains external
/// cancellation — a ticket cancel or service shutdown — into the
/// SearchContext so the run stops mid-search and mid-filter-build.
///
/// Degradation rung 1: if the run fails transiently while holding a shared
/// plan builder (injected plan-build fault, allocation failure, spurious
/// cancellation), executeEmbed retries ONCE with the cache bypassed — a
/// direct private build — before surfacing the error. FilterOverflow is
/// deterministic and never retried. Counted in cacheBypassFallbacks().
[[nodiscard]] EmbedResponse executeEmbed(const EmbedRequest& request,
                                         const graph::Graph& host,
                                         std::uint64_t version,
                                         bool allowPortfolioEscalation,
                                         FilterPlanCache* cache,
                                         const core::SolutionSink& sink = {},
                                         std::stop_token stopToken = {});

/// Process-wide count of cache-bypass degradations served by executeEmbed.
[[nodiscard]] std::uint64_t cacheBypassFallbacks() noexcept;
}  // namespace detail

}  // namespace netembed::service
