#pragma once
// The NETEMBED mapping service (paper §III, Fig. 1): applications submit a
// query network plus constraint expressions and receive feasible mappings.
// Includes algorithm auto-selection (per the §VIII guidance on when each
// algorithm wins) and the interactive constraint-relaxation loop §VI-B
// motivates ("begin with more stringent constraints and relax them if there
// is no compliant mapping").

#include <optional>
#include <string>

#include "core/problem.hpp"
#include "core/search.hpp"
#include "service/model.hpp"

namespace netembed::service {

struct EmbedRequest {
  graph::Graph query;
  std::string edgeConstraint;  // empty => topology-only
  std::string nodeConstraint;  // empty => unconstrained nodes
  /// nullopt => the service chooses (see chooseAlgorithm).
  std::optional<core::Algorithm> algorithm;
  core::SearchOptions options;
};

struct EmbedResponse {
  core::EmbedResult result;
  core::Algorithm algorithmUsed = core::Algorithm::ECF;
  std::uint64_t modelVersion = 0;
  std::string diagnostics;
};

class NetEmbedService {
 public:
  explicit NetEmbedService(NetworkModel model) : model_(std::move(model)) {}
  explicit NetEmbedService(graph::Graph host) : model_(std::move(host)) {}

  [[nodiscard]] NetworkModel& model() noexcept { return model_; }
  [[nodiscard]] const NetworkModel& model() const noexcept { return model_; }

  /// Run one query. Throws expr::SyntaxError on bad constraint source and
  /// std::invalid_argument on malformed problems.
  [[nodiscard]] EmbedResponse submit(const EmbedRequest& request) const;

  /// §VIII: ECF/RWB win on tightly-constrained queries over sparse hosts;
  /// LNS wins for first-match on dense hosts and regular/under-constrained
  /// queries. `wantAll` = enumerating (not stopping at the first match).
  [[nodiscard]] static core::Algorithm chooseAlgorithm(const graph::Graph& query,
                                                       const graph::Graph& host,
                                                       bool wantAll);

  struct NegotiationResult {
    bool feasible = false;
    double toleranceUsed = 0.0;  // delay-window widening that succeeded
    int rounds = 0;
    EmbedResponse response;
  };

  /// Interactive-negotiation helper: resubmit with progressively wider query
  /// delay windows (multiplying min by 1-t and max by 1+t) until feasible or
  /// maxTolerance is exceeded.
  [[nodiscard]] NegotiationResult negotiate(const EmbedRequest& request, double step,
                                            double maxTolerance) const;

  /// Submit, then reserve resources for the first feasible mapping (paper
  /// §III component 3). Returns the reservation id and mapping, or nullopt
  /// when no feasible embedding was found.
  struct Allocation {
    NetworkModel::ReservationId reservation;
    core::Mapping mapping;
  };
  [[nodiscard]] std::optional<Allocation> allocateFirstFeasible(
      const EmbedRequest& request, const NetworkModel::ReservationSpec& spec);

 private:
  NetworkModel model_;
};

}  // namespace netembed::service
