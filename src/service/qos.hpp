#pragma once
// Request-lifecycle vocabulary for the service layer (paper §III: NETEMBED
// is a shared service answering many concurrent applications, so a request
// is an admission-negotiated, cancellable, deadline-carrying object — not a
// bare blocking call).

#include <chrono>
#include <cstdint>
#include <optional>

namespace netembed::service {

/// Admission priority class. Higher classes dequeue strictly first; within a
/// class, tenants share the workers by weighted fair queueing (see
/// util::QosScheduler).
enum class Priority : std::uint8_t { Low = 0, Normal = 1, High = 2 };
[[nodiscard]] const char* priorityName(Priority p) noexcept;

/// Per-request retry behavior for transient failures (injected faults,
/// engine exceptions, plan-build failures — anything except an invalid
/// query or an explicit cancel). The default maxAttempts = 1 reproduces the
/// pre-retry behavior exactly: fail on the first error.
struct RetryPolicy {
  /// Total attempts, first run included. 1 = never retry.
  std::uint32_t maxAttempts = 1;
  /// Backoff before the first retry; subsequent retries use decorrelated
  /// jitter (next = base + uniform[0, prev*3 - base], capped) so a burst of
  /// co-failing requests de-synchronizes instead of thundering back in.
  std::chrono::milliseconds baseBackoff{5};
  /// Upper bound on any single backoff sleep.
  std::chrono::milliseconds maxBackoff{250};
};

/// Quality-of-service block attached to every EmbedRequest. The zero values
/// reproduce the pre-QoS behavior exactly: Normal priority, wait forever for
/// admission, unbounded compute, the anonymous tenant.
struct QoS {
  Priority priority = Priority::Normal;
  /// Maximum time the request may wait in the admission queue before it is
  /// dropped with RequestStatus::Expired. nullopt (the default) = no
  /// admission deadline. An *explicitly set* non-positive value means
  /// expire-immediately: a caller that computed its remaining slack and
  /// landed on zero or negative asked for "no wait at all", which must not
  /// silently degrade to "wait forever" (it used to — the sentinel was 0).
  std::optional<std::chrono::milliseconds> admissionDeadline;
  /// Wall-clock compute budget once running; tightens (never widens)
  /// SearchOptions::timeout. Zero = no extra bound.
  std::chrono::milliseconds computeBudget{0};
  /// Compute budget in visited search-tree nodes; tightens
  /// SearchOptions::visitBudget. Zero = no extra bound.
  std::uint64_t visitBudget = 0;
  /// Fair-queueing identity. Weights are configured on the service
  /// (setTenantWeight); the default tenant 0 has weight 1.
  std::uint64_t tenant = 0;
  /// Transient-failure retry behavior (default: no retries).
  RetryPolicy retry;
};

/// Where a request is in its lifecycle. Queued/Running are live states
/// reported by SubmitTicket::status(); the rest are terminal and also
/// stamped into EmbedResponse::status.
enum class RequestStatus : std::uint8_t {
  Queued,     // accepted, waiting for a worker
  Running,    // dispatched to a worker
  Done,       // search finished (any Outcome) without a ticket cancel
  Cancelled,  // ticket cancel (or cancelPending shutdown) — possibly with a
              // partial result if the cancel landed mid-search
  Rejected,   // refused at admission (queue full under Reject/Shed policy)
  Expired,    // admission deadline passed while still queued
  Failed,     // the search threw; the future carries the exception
  Preempted,  // a Low-class run was stopped to free its worker for queued
              // High-class work; the response carries the partial result.
              // With ControlPolicy::requeuePreempted the request re-enters
              // the queue instead and this status is only seen when the
              // re-queue was refused.
  Retrying,   // live state: the last attempt failed transiently and the
              // request is waiting out its backoff before re-admission
              // (QoS::retry). Never terminal — the ticket later resolves
              // with one of the statuses above.
};
[[nodiscard]] const char* requestStatusName(RequestStatus s) noexcept;

}  // namespace netembed::service
