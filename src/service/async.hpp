#pragma once
// The asynchronous, QoS-scheduled NETEMBED front end.
//
// The paper frames NETEMBED as a *service* (§III, Fig. 1): many applications
// query one shared model of the real network concurrently. This class is the
// queued counterpart of NetEmbedService::submit, rebuilt around an explicit
// request lifecycle: submissions pass a bounded util::QosScheduler admission
// queue (priority classes, per-tenant weighted fair dequeue, admission
// deadlines, pluggable overload policy) and hand back a SubmitTicket that
// can cancel the request at any point of its life, report its status, and
// stream solutions incrementally through TicketCallbacks::onSolution.
//
// Concurrency model:
//  * Queries never touch the live NetworkModel. Every mutation (reservation,
//    release, measurement batch) happens under a mutex and publishes an
//    immutable snapshot {host graph, version} with *structural sharing*: the
//    graph copy shares its topology block and all untouched attribute chunks
//    with the live model (see graph::Graph), so a monitoring update costs
//    O(delta), not O(|host|). A worker picks the newest snapshot when its
//    request starts executing and runs against it unsynchronized.
//    EmbedResponse::modelVersion records exactly which snapshot answered the
//    query.
//  * Stage-1 plans are shared through a FilterPlanCache keyed by
//    (snapshot version, query signature): concurrent same-signature requests
//    — a batch of identical queries — perform exactly one FilterMatrix
//    build. Mutations are announced to the cache as ModelDeltas
//    (NetworkModel::lastDelta): cached plans are re-keyed to the new version
//    and lazily reused as-is (delta provably irrelevant to the constraints),
//    patched (only the delta-affected filter cells re-evaluated), or rebuilt
//    (structural / oversized delta) on their next use — so a version bump no
//    longer costs every query a from-scratch stage-1 build.
//  * Queued requests do NOT auto-escalate to the racing portfolio: the
//    scheduler already keeps every core busy with distinct requests, so each
//    runs the single §VIII-predicted engine. An explicit
//    Algorithm::Portfolio request still races.
//  * Cancellation is cooperative end to end: SubmitTicket::cancel pulls a
//    queued request out of the admission queue (its future resolves with
//    RequestStatus::Cancelled immediately) or, once running, stops the
//    engine mid-search and mid-filter-build through the std::stop_token
//    chained into its SearchContext.
//
// Shutdown: AsyncServiceOptions::shutdownMode picks between Drain (the
// default and the historical behavior — every accepted request resolves
// before the service dies) and CancelPending (queued requests resolve
// Cancelled without running; running ones are stopped cooperatively and
// resolve with their partial result). Futures stay valid either way.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/service.hpp"
#include "service/ticket.hpp"
#include "util/scheduler.hpp"

namespace netembed::service {

struct AsyncServiceOptions {
  /// Scheduler worker count; 0 selects the hardware concurrency.
  std::size_t workers = 0;
  /// Plan-cache capacity (signatures per model version); 0 disables
  /// plan sharing.
  std::size_t planCacheCapacity = 64;
  /// Admission-queue bound (queued requests; running ones do not count);
  /// 0 = unbounded (the historical behavior).
  std::size_t queueCapacity = 0;
  /// What submit does when the queue is at capacity.
  util::OverloadPolicy overloadPolicy = util::OverloadPolicy::Block;
  /// What the destructor does with requests still pending.
  util::QosScheduler::ShutdownMode shutdownMode =
      util::QosScheduler::ShutdownMode::Drain;

  /// The closed-loop overload controller. All defaults off: the service then
  /// behaves exactly like the static PR-4 front end.
  struct ControlPolicy {
    /// Queue-side control: adaptive capacity from per-class service-time
    /// EWMAs and the early low-priority shed watermark (see
    /// util::QosScheduler::ControlPolicy).
    util::QosScheduler::ControlPolicy queue{};
    /// Convert a request's remaining admission slack into its wall-clock
    /// compute budget at dispatch: a request admitted close to its deadline
    /// runs with a correspondingly small budget instead of burning a full
    /// search budget on an answer nobody is waiting for any more. Only ever
    /// *tightens* an explicit QoS::computeBudget; requests without an
    /// admission deadline are untouched.
    bool propagateSlack = false;
    /// Floor for the slack-derived budget (a request admitted exactly at its
    /// deadline still gets this much compute rather than zero).
    std::chrono::milliseconds minSlackBudget{1};
    /// When High-class work queues behind a full worker set, stop the
    /// longest-running strictly-lower-class search (its per-attempt stop
    /// token fires; the ticket resolves RequestStatus::Preempted with its
    /// partial result). Best-effort and cooperative: the victim stops at its
    /// next deadline poll.
    bool preemptLowForHigh = false;
    /// Instead of resolving a preempted request, re-admit it (non-blocking;
    /// a refused re-queue resolves Preempted after all). Its admission
    /// deadline, if any, keeps running across attempts.
    bool requeuePreempted = false;
    /// Ceiling on requests of one priority class concurrently holding a
    /// retry slot (QoS::retry): a request is charged once at its first
    /// transient-failure retry and released at terminal resolution, so a
    /// flood of failing Low work cannot monopolize the queue with retries
    /// while High requests wait. Over budget, the retry is abandoned and
    /// the ticket resolves Failed with the attempt's error. 0 = unbounded.
    std::size_t retryBudgetPerClass = 0;
  };
  ControlPolicy control{};
};

class AsyncNetEmbedService {
 public:
  using Options = AsyncServiceOptions;
  using ShutdownMode = util::QosScheduler::ShutdownMode;

  explicit AsyncNetEmbedService(NetworkModel model, Options options = {});
  explicit AsyncNetEmbedService(graph::Graph host, Options options = {})
      : AsyncNetEmbedService(NetworkModel(std::move(host)), options) {}

  AsyncNetEmbedService(const AsyncNetEmbedService&) = delete;
  AsyncNetEmbedService& operator=(const AsyncNetEmbedService&) = delete;

  /// Applies Options::shutdownMode (Drain by default: every accepted request
  /// resolves its future / fires its callbacks first).
  ~AsyncNetEmbedService();

  // --- submission ----------------------------------------------------------

  /// Queue one query through QoS admission (request.qos: priority class,
  /// admission deadline, compute budget, tenant). The ticket reports status,
  /// cancels, and counts streamed solutions; callbacks.onSolution receives
  /// every feasible mapping as the search admits it. A request refused at
  /// admission (full queue under Reject/ShedLowestPriority, expired
  /// admission deadline, post-shutdown submit) still returns a valid ticket
  /// whose future is already resolved with the terminal status.
  [[nodiscard]] SubmitTicket submit(EmbedRequest request,
                                    TicketCallbacks callbacks = {});

  /// Legacy fire-and-collect form (a thin wrapper over submit): the future
  /// carries the response, or the exception the search raised
  /// (expr::SyntaxError, std::invalid_argument, ...).
  [[nodiscard]] std::future<EmbedResponse> submitAsync(EmbedRequest request);

  /// Legacy callback form (a thin wrapper over submit): exactly one of
  /// (response, error) is meaningful — error is null on success. The
  /// callback runs on the thread that resolved the request and must not
  /// throw (a thrown exception is swallowed).
  using Callback = std::function<void(EmbedResponse, std::exception_ptr)>;
  void submitAsync(EmbedRequest request, Callback callback);

  /// Fair-share weight for a tenant's requests (default 1.0). Applies from
  /// the next dequeue.
  void setTenantWeight(std::uint64_t tenant, double weight) {
    qos_->setTenantWeight(tenant, weight);
  }

  /// Requests accepted but not yet resolved (queued + running).
  [[nodiscard]] std::size_t pendingRequests() const { return qos_->pending(); }

  /// Block until every request accepted so far has resolved.
  void drain() { qos_->drain(); }

  /// Idempotent early shutdown; the destructor otherwise runs it with
  /// Options::shutdownMode. After shutdown, submissions resolve Rejected.
  void shutdown(ShutdownMode mode);

  /// Admission-queue counters (accepted/rejected/shed/expired/cancelled).
  [[nodiscard]] util::QosScheduler::Stats queueStats() const {
    return qos_->stats();
  }

  /// Control-plane counters. The pool/cache degradation entries are deltas
  /// since this service was constructed (the underlying counters are
  /// process-wide).
  struct ControlStats {
    /// Preemption stop-tokens fired at running lower-class attempts.
    std::uint64_t preemptionsFired = 0;
    /// Preempted requests successfully re-admitted to the queue.
    std::uint64_t preemptRequeues = 0;
    /// Transient-failure retries dispatched back into the queue (QoS::retry).
    std::uint64_t transientRetries = 0;
    /// Retries given up on (budget exhausted, re-admission refused,
    /// shutdown); the ticket resolved Failed with the attempt's error.
    std::uint64_t retriesAbandoned = 0;
    /// Degradation rung 1: plan-cache builds that failed transiently and
    /// were served by a cache-bypass direct build instead.
    std::uint64_t cacheBypassFallbacks = 0;
    /// Degradation rung 2: shared-pool workers lost to injected deaths, and
    /// tasks the degraded pool ran inline on their submitter.
    std::uint64_t poolWorkersLost = 0;
    std::uint64_t poolSerialFallbacks = 0;
  };
  [[nodiscard]] ControlStats controlStats() const;

  // --- synchronized model access -------------------------------------------

  [[nodiscard]] std::uint64_t version() const;

  /// The host graph the next query would run against (an immutable
  /// snapshot; safe to read while mutations continue).
  [[nodiscard]] std::shared_ptr<const graph::Graph> hostSnapshot() const;

  /// Reserve resources for a mapping (paper §III component 3). Bumps the
  /// model version and publishes a fresh snapshot; queries already running
  /// keep their old snapshot, queries dequeued afterwards see the new one.
  NetworkModel::ReservationId reserve(const graph::Graph& query,
                                      const core::Mapping& mapping,
                                      const NetworkModel::ReservationSpec& spec);
  void release(NetworkModel::ReservationId id);
  [[nodiscard]] std::size_t activeReservations() const;

  /// Monitoring-style updates; each publishes a fresh snapshot.
  std::size_t applyMeasurements(std::span<const NetworkModel::Measurement> batch);
  void setNodeAttr(graph::NodeId n, std::string_view attr, graph::AttrValue value);
  void setEdgeMetric(graph::NodeId u, graph::NodeId v, std::string_view attr,
                     graph::AttrValue value);

  [[nodiscard]] FilterPlanCache::Stats planCacheStats() const {
    return planCache_.stats();
  }

  [[nodiscard]] std::size_t workerCount() const noexcept {
    return qos_->workerCount();
  }

 private:
  struct Snapshot {
    std::shared_ptr<const graph::Graph> host;
    std::uint64_t version = 0;
  };

  [[nodiscard]] std::shared_ptr<const Snapshot> currentSnapshot() const;
  void publishSnapshotLocked();
  void registerInflight(const std::shared_ptr<detail::TicketState>& state);
  void unregisterInflight(const detail::TicketState* key);

  /// What kind of (re-)admission enqueueRequest performs. Anything but None
  /// uses the non-blocking trySubmit — re-queues run on scheduler workers or
  /// the retry timer, which must never Block-wait on queue space.
  enum class Requeue : std::uint8_t { None, Preempt, Retry };

  /// One transiently failed request waiting out its backoff before
  /// re-admission.
  struct PendingRetry {
    util::QosScheduler::Clock::time_point due;
    std::shared_ptr<detail::TicketState> state;
    EmbedRequest request;
    std::optional<util::QosScheduler::Clock::time_point> admitBy;
  };

  /// Build and submit the scheduler job for one (possibly re-queued)
  /// request; arms the ticket's queue-removal hook on success.
  void enqueueRequest(std::shared_ptr<detail::TicketState> state,
                      EmbedRequest request,
                      std::optional<util::QosScheduler::Clock::time_point> admitBy,
                      Requeue requeue);
  /// Charge the per-class retry budget (first retry only) and park the
  /// request on the backoff timer; abandons the retry instead when over
  /// budget or already shutting down.
  void scheduleRetry(std::shared_ptr<detail::TicketState> state,
                     EmbedRequest request,
                     std::optional<util::QosScheduler::Clock::time_point> admitBy);
  /// The backoff timer thread: re-admits pending retries as they come due.
  void retryLoop();
  /// Give back the ticket's retry-budget slot, if it holds one. Idempotent.
  void releaseRetryBudget(detail::TicketState& state, Priority cls);
  /// Stop retrying: resolve the ticket Failed with the last attempt's error
  /// (or a synthesized one naming `why`).
  void abandonRetry(const std::shared_ptr<detail::TicketState>& state,
                    Priority cls, const char* why);
  /// One execution attempt on a scheduler worker: slack propagation, preempt
  /// slot registration, and the re-queue round trip.
  void runAttempt(const std::shared_ptr<detail::TicketState>& state,
                  const EmbedRequest& request,
                  std::optional<util::QosScheduler::Clock::time_point> admitBy);
  /// Fire the preemption chain for newly queued work of class `priority`
  /// when every worker is busy and one of them runs strictly lower work.
  void maybePreemptFor(int priority);

  mutable std::mutex modelMutex_;  // guards model_ and snapshot_ publication
  NetworkModel model_;
  std::shared_ptr<const Snapshot> snapshot_;
  mutable FilterPlanCache planCache_;
  Options options_;

  // Unresolved ticket states, for CancelPending shutdown's cooperative stop
  // fan-out. Entries are erased as requests resolve.
  std::mutex inflightMutex_;
  std::unordered_map<const detail::TicketState*, std::weak_ptr<detail::TicketState>>
      inflight_;

  // Attempts currently executing with preemption enabled, keyed by ticket:
  // maybePreemptFor picks its victim here. Registered/unregistered by
  // runAttempt around the engine run.
  std::mutex slotsMutex_;
  std::unordered_map<const detail::TicketState*,
                     std::shared_ptr<detail::PreemptSlot>>
      runningSlots_;
  std::atomic<std::uint64_t> preemptionsFired_{0};
  std::atomic<std::uint64_t> preemptRequeues_{0};

  // Retry plane: requests waiting out a transient-failure backoff, the timer
  // thread that re-admits them, and the per-class outstanding-retry counts
  // backing ControlPolicy::retryBudgetPerClass.
  std::mutex retryMutex_;
  std::condition_variable retryCv_;
  std::vector<PendingRetry> retryQueue_;
  bool retryStopping_ = false;
  std::array<std::atomic<std::size_t>, 3> retryOutstanding_{};
  std::atomic<std::uint64_t> transientRetries_{0};
  std::atomic<std::uint64_t> retriesAbandoned_{0};
  std::thread retryTimer_;

  // Construction-time baselines of the process-wide degradation counters,
  // so ControlStats reports this service's share.
  std::uint64_t baseCacheBypass_ = 0;
  std::uint64_t basePoolDeaths_ = 0;
  std::uint64_t basePoolSerial_ = 0;

  // Shared so a ticket's queue-removal hook (SubmitTicket::cancel) keeps the
  // scheduler object alive even if a stale copy of the hook races service
  // destruction — it then lands on a joined, empty queue (a harmless miss)
  // instead of freed memory. The destructor body settles every in-flight
  // request (shutdown) before any member dies, so jobs never touch a dead
  // model, snapshot or cache.
  std::shared_ptr<util::QosScheduler> qos_;
};

}  // namespace netembed::service
