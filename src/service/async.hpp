#pragma once
// The asynchronous, batched NETEMBED front end.
//
// The paper frames NETEMBED as a *service* (§III, Fig. 1): many applications
// query one shared model of the real network concurrently. This class is the
// queued counterpart of NetEmbedService::submit — requests are accepted
// immediately, enqueued on a util::Scheduler (ThreadPool-backed, FIFO), and
// resolved through std::future or a completion callback.
//
// Concurrency model:
//  * Queries never touch the live NetworkModel. Every mutation (reservation,
//    release, measurement batch) happens under a mutex and publishes an
//    immutable copy-on-write snapshot {host graph, version}; a worker picks
//    the newest snapshot when its request starts executing and runs against
//    it unsynchronized. EmbedResponse::modelVersion records exactly which
//    snapshot answered the query.
//  * Stage-1 plans are shared through a FilterPlanCache keyed by
//    (snapshot version, query signature): concurrent same-signature requests
//    — a batch of identical queries — perform exactly one FilterMatrix
//    build. Version bumps invalidate the cache, so a plan never crosses a
//    mutation.
//  * Queued requests do NOT auto-escalate to the racing portfolio: the
//    scheduler already keeps every core busy with distinct requests, so each
//    runs the single §VIII-predicted engine. An explicit
//    Algorithm::Portfolio request still races.
//
// Shutdown: the destructor drains the queue — every accepted request
// resolves before the service dies. Futures obtained from submitAsync stay
// valid; callbacks run on the worker that executed the request.

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>

#include "service/service.hpp"
#include "util/scheduler.hpp"

namespace netembed::service {

struct AsyncServiceOptions {
  /// Scheduler worker count; 0 selects the hardware concurrency.
  std::size_t workers = 0;
  /// Plan-cache capacity (signatures per model version); 0 disables
  /// plan sharing.
  std::size_t planCacheCapacity = 64;
};

class AsyncNetEmbedService {
 public:
  using Options = AsyncServiceOptions;

  explicit AsyncNetEmbedService(NetworkModel model, Options options = {});
  explicit AsyncNetEmbedService(graph::Graph host, Options options = {})
      : AsyncNetEmbedService(NetworkModel(std::move(host)), options) {}

  AsyncNetEmbedService(const AsyncNetEmbedService&) = delete;
  AsyncNetEmbedService& operator=(const AsyncNetEmbedService&) = delete;

  /// Drains the queue and joins the workers (every accepted request
  /// resolves its future / fires its callback first).
  ~AsyncNetEmbedService() = default;

  // --- submission ----------------------------------------------------------

  /// Queue one query. The future carries the response, or the exception the
  /// search raised (expr::SyntaxError, std::invalid_argument, ...).
  [[nodiscard]] std::future<EmbedResponse> submitAsync(EmbedRequest request);

  /// Callback form: exactly one of (response, error) is meaningful — error
  /// is null on success. The callback runs on the scheduler worker that
  /// executed the request and must not throw (a thrown exception is
  /// swallowed into a discarded future).
  using Callback = std::function<void(EmbedResponse, std::exception_ptr)>;
  void submitAsync(EmbedRequest request, Callback callback);

  /// Requests accepted but not yet resolved (queued + running).
  [[nodiscard]] std::size_t pendingRequests() const noexcept {
    return scheduler_.pending();
  }

  /// Block until every request accepted so far has resolved.
  void drain() { scheduler_.drain(); }

  // --- synchronized model access -------------------------------------------

  [[nodiscard]] std::uint64_t version() const;

  /// The host graph the next query would run against (an immutable
  /// snapshot; safe to read while mutations continue).
  [[nodiscard]] std::shared_ptr<const graph::Graph> hostSnapshot() const;

  /// Reserve resources for a mapping (paper §III component 3). Bumps the
  /// model version and publishes a fresh snapshot; queries already running
  /// keep their old snapshot, queries dequeued afterwards see the new one.
  NetworkModel::ReservationId reserve(const graph::Graph& query,
                                      const core::Mapping& mapping,
                                      const NetworkModel::ReservationSpec& spec);
  void release(NetworkModel::ReservationId id);
  [[nodiscard]] std::size_t activeReservations() const;

  /// Monitoring-style updates; each publishes a fresh snapshot.
  std::size_t applyMeasurements(std::span<const NetworkModel::Measurement> batch);
  void setNodeAttr(graph::NodeId n, std::string_view attr, graph::AttrValue value);
  void setEdgeMetric(graph::NodeId u, graph::NodeId v, std::string_view attr,
                     graph::AttrValue value);

  [[nodiscard]] FilterPlanCache::Stats planCacheStats() const {
    return planCache_.stats();
  }

  [[nodiscard]] std::size_t workerCount() const noexcept {
    return scheduler_.threadCount();
  }

 private:
  struct Snapshot {
    std::shared_ptr<const graph::Graph> host;
    std::uint64_t version = 0;
  };

  [[nodiscard]] std::shared_ptr<const Snapshot> currentSnapshot() const;
  void publishSnapshotLocked();
  [[nodiscard]] EmbedResponse execute(const EmbedRequest& request) const;

  mutable std::mutex modelMutex_;  // guards model_ and snapshot_ publication
  NetworkModel model_;
  std::shared_ptr<const Snapshot> snapshot_;
  mutable FilterPlanCache planCache_;
  // Declared last => destroyed first: the destructor drains in-flight
  // requests while the model, snapshot and cache are still alive.
  util::Scheduler scheduler_;
};

}  // namespace netembed::service
