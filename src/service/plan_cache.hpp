#pragma once
// Shared stage-1 plan cache for the service layer.
//
// The FilterPlan depends only on (host graph, query graph, constraints,
// plan-relevant options) — so every query with the same signature against the
// same NetworkModel version can share one build. The cache hands out
// core::SharedPlanBuilder instances: concurrent same-signature queries that
// miss together still share, because they receive the same builder *before*
// the build completes and the builder serializes it.
//
// Invalidation vs. re-keying: the cache only ever holds entries for the
// newest model version it has seen. A mutation announced through
// applyDelta() *carries* entries across the bump instead of dropping them —
// each completed plan is re-wrapped in a SharedPlanBuilder::PatchSource so
// its next consumer reuses it outright (delta provably irrelevant), patches
// it (bounded re-evaluation of the delta-affected cells), or rebuilds
// (structural / oversized delta), per core::classifyDelta. An acquire() with
// a newer version than any announced delta falls back to the historical
// behavior and drops every older entry (a mutation happened behind the
// cache's back, so no delta chain exists). An acquire() with an *older*
// version — a racing reader that sampled the version just before a bump —
// gets a private, uncached builder: correct for its snapshot, invisible to
// everyone else.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/plan.hpp"
#include "core/search.hpp"
#include "graph/graph.hpp"

namespace netembed::service {

/// Deterministic plan signature: serializes the query structure, node/edge
/// attributes, constraint sources, and the plan-relevant options
/// (staticOrdering, maxFilterEntries). Two requests share a stage-1 plan iff
/// their signatures match; using the full serialization (not a hash) as the
/// cache key makes collisions impossible.
[[nodiscard]] std::string planSignature(const graph::Graph& query,
                                        const std::string& edgeConstraint,
                                        const std::string& nodeConstraint,
                                        const core::SearchOptions& options);

/// Thread-safe LRU cache of SharedPlanBuilders keyed by query signature,
/// scoped to one model version at a time.
class FilterPlanCache {
 public:
  /// `capacity` = max retained signatures; 0 disables caching entirely
  /// (every acquire returns a fresh private builder).
  explicit FilterPlanCache(std::size_t capacity = 32) : capacity_(capacity) {}

  struct Stats {
    std::uint64_t hits = 0;          // acquire found an existing builder
    std::uint64_t misses = 0;        // acquire inserted a new builder
    std::uint64_t invalidations = 0; // entries dropped by version bumps
    std::uint64_t evictions = 0;     // entries dropped by capacity
    std::uint64_t bypasses = 0;      // stale-version acquires served uncached
    std::uint64_t rekeys = 0;        // entries carried across a version bump
                                     // by applyDelta (reuse/patch on demand)
    std::size_t size = 0;            // current entry count
  };

  /// False when capacity is 0: callers can skip computing a signature —
  /// acquire() would discard it and hand back a private builder anyway.
  [[nodiscard]] bool enabled() const noexcept { return capacity_ != 0; }

  /// The builder shared by every in-flight and future query with this
  /// signature against `modelVersion`. Never returns nullptr.
  [[nodiscard]] std::shared_ptr<core::SharedPlanBuilder> acquire(
      std::uint64_t modelVersion, std::string signature);

  /// Announce a model mutation: `newVersion` is the post-mutation version,
  /// `delta` its footprint (NetworkModel::lastDelta). Cached plans are
  /// re-keyed to the new version as lazy patch sources instead of being
  /// invalidated; entries whose plan never completed — and is possibly still
  /// being built by an in-flight query against the old version — are
  /// dropped, unless this cache exclusively owns the builder, in which case
  /// the delta is folded into its pending patch source (so back-to-back
  /// mutations with no query in between accumulate into one patch). A
  /// structural delta drops everything. Call under the same synchronization
  /// that ordered the mutation *before* publishing the new version to
  /// queries, so no acquire(newVersion) can race ahead and trigger the
  /// no-delta invalidation path.
  void applyDelta(std::uint64_t newVersion, const core::ModelDelta& delta);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Entry {
    std::shared_ptr<core::SharedPlanBuilder> builder;
    std::list<std::string>::iterator lruPos;  // into lru_, most-recent front
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t version_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
  Stats stats_;
};

}  // namespace netembed::service
