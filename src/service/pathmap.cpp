#include "service/pathmap.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace netembed::service {

using graph::NodeId;

namespace {

class PathEngine {
 public:
  PathEngine(const graph::Graph& query, const graph::Graph& host,
             const PathMapOptions& options)
      : query_(query), host_(host), options_(options), deadline_(options.search.timeout) {
    if (query.directed() || host.directed()) {
      throw std::invalid_argument("embedWithPaths: undirected graphs only");
    }
    delayId_ = graph::attrId(options.delayAttr);
    budgetId_ = graph::attrId(options.budgetAttr);
    if (!options.nodeConstraint.empty()) {
      nodeConstraint_ = expr::Constraint::parse(options.nodeConstraint);
    }
  }

  PathEmbedding run() {
    util::Stopwatch total;
    PathEmbedding out;
    out.stats.firstMatchMs = -1.0;
    stats_ = &out.stats;

    const std::size_t nq = query_.nodeCount();
    mapping_.assign(nq, graph::kInvalidNode);
    covered_.assign(nq, false);
    links_.assign(nq, 0);
    used_.assign(host_.nodeCount(), false);
    coveredCount_ = 0;

    found_ = false;
    descend(out);

    if (found_) {
      out.feasible = true;
      out.nodes = mapping_;
      out.edgePaths.resize(query_.edgeCount());
      out.pathDelays.resize(query_.edgeCount());
      for (graph::EdgeId e = 0; e < query_.edgeCount(); ++e) {
        const NodeId ra = mapping_[query_.edgeSource(e)];
        const NodeId rb = mapping_[query_.edgeTarget(e)];
        const graph::ShortestPaths& sp = paths(ra);
        out.edgePaths[e] = graph::extractPath(sp, rb);
        out.pathDelays[e] = sp.distance[rb];
      }
      out.stats.firstMatchMs = total.elapsedMs();
    }
    out.stats.searchMs = total.elapsedMs();
    return out;
  }

 private:
  const graph::ShortestPaths& paths(NodeId source) {
    const auto it = dijkstraCache_.find(source);
    if (it != dijkstraCache_.end()) return it->second;
    auto sp = graph::dijkstra(host_, source, [&](graph::EdgeId e) {
      return host_.edgeAttrs(e).getDouble(options_.delayAttr, 0.0);
    });
    return dijkstraCache_.emplace(source, std::move(sp)).first->second;
  }

  bool nodeOk(NodeId q, NodeId r) {
    if (!nodeConstraint_) return true;
    ++stats_->constraintEvals;
    return nodeConstraint_->evalNodePair(query_, q, host_, r);
  }

  /// Path feasibility for query edge e if its endpoints map to ra / rb.
  bool pathOk(graph::EdgeId e, NodeId ra, NodeId rb) {
    const graph::ShortestPaths& sp = paths(ra);
    const double budget =
        query_.edgeAttrs(e).getDouble(options_.budgetAttr, graph::kUnreachable);
    if (sp.distance[rb] > budget) return false;
    if (options_.maxPathHops > 0) {
      const auto path = graph::extractPath(sp, rb);
      if (path.size() > options_.maxPathHops + 1) return false;
    }
    return true;
  }

  NodeId chooseNext() const {
    NodeId best = graph::kInvalidNode;
    for (NodeId v = 0; v < covered_.size(); ++v) {
      if (covered_[v] || links_[v] == 0) continue;
      if (best == graph::kInvalidNode || links_[v] > links_[best]) best = v;
    }
    if (best != graph::kInvalidNode) return best;
    for (NodeId v = 0; v < covered_.size(); ++v) {
      if (covered_[v]) continue;
      if (best == graph::kInvalidNode || query_.degree(v) > query_.degree(best)) best = v;
    }
    return best;
  }

  void descend(PathEmbedding& out) {
    if (found_ || (deadline_.isBounded() && deadline_.expired())) return;
    if (coveredCount_ == query_.nodeCount()) {
      found_ = true;
      return;
    }
    const NodeId v = chooseNext();

    for (NodeId s = 0; s < used_.size(); ++s) {
      if (found_) return;
      if (used_[s] || !nodeOk(v, s)) continue;
      bool connectable = true;
      for (const graph::Neighbor& nb : query_.neighbors(v)) {
        if (!covered_[nb.node]) continue;
        if (!pathOk(nb.edge, mapping_[nb.node], s)) {
          connectable = false;
          break;
        }
      }
      if (!connectable) continue;
      ++stats_->treeNodesVisited;
      push(v, s);
      descend(out);
      if (!found_) pop(v, s);
    }
    if (!found_) ++stats_->backtracks;
  }

  void push(NodeId v, NodeId s) {
    mapping_[v] = s;
    covered_[v] = true;
    used_[s] = true;
    ++coveredCount_;
    for (const graph::Neighbor& nb : query_.neighbors(v)) {
      if (!covered_[nb.node]) ++links_[nb.node];
    }
  }

  void pop(NodeId v, NodeId s) {
    for (const graph::Neighbor& nb : query_.neighbors(v)) {
      if (!covered_[nb.node]) --links_[nb.node];
    }
    --coveredCount_;
    used_[s] = false;
    covered_[v] = false;
    mapping_[v] = graph::kInvalidNode;
  }

  const graph::Graph& query_;
  const graph::Graph& host_;
  const PathMapOptions& options_;
  util::Deadline deadline_;
  graph::AttrId delayId_{};
  graph::AttrId budgetId_{};
  std::optional<expr::Constraint> nodeConstraint_;
  std::unordered_map<NodeId, graph::ShortestPaths> dijkstraCache_;

  core::Mapping mapping_;
  std::vector<bool> covered_;
  std::vector<std::uint32_t> links_;
  std::vector<bool> used_;
  std::size_t coveredCount_ = 0;
  core::SearchStats* stats_ = nullptr;
  bool found_ = false;
};

}  // namespace

PathEmbedding embedWithPaths(const graph::Graph& query, const graph::Graph& host,
                             const PathMapOptions& options) {
  return PathEngine(query, host, options).run();
}

}  // namespace netembed::service
