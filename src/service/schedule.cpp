#include "service/schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/lns.hpp"
#include "core/problem.hpp"

namespace netembed::service {

EmbeddingScheduler::EmbeddingScheduler(graph::Graph host, std::string capacityAttr,
                                       std::string demandAttr)
    : host_(std::move(host)),
      capacityAttr_(std::move(capacityAttr)),
      demandAttr_(std::move(demandAttr)) {}

double EmbeddingScheduler::residualCapacity(graph::NodeId node, std::size_t start,
                                            std::size_t duration) const {
  double capacity = host_.nodeAttrs(node).getDouble(capacityAttr_, 0.0);
  for (const Booking& b : bookings_) {
    if (b.node != node) continue;
    const bool overlaps = b.start < start + duration && start < b.start + b.duration;
    if (overlaps) capacity -= b.amount;
  }
  return capacity;
}

std::optional<EmbeddingScheduler::Placement> EmbeddingScheduler::schedule(
    const graph::Graph& query, const std::string& edgeConstraint,
    std::size_t duration, std::size_t horizon, std::size_t earliest,
    const core::SearchOptions& options) {
  if (duration == 0) throw std::invalid_argument("schedule: zero duration");

  // The residual-capacity check rides on the node-constraint hook:
  // "vNode.demand <= rNode.<residualAttr>" against a working copy of the
  // host whose residual attribute is refreshed per candidate start time.
  const std::string residualAttr = "__residual_" + capacityAttr_;

  graph::Graph working = host_;
  const expr::ConstraintSet constraints = expr::ConstraintSet::parse(
      edgeConstraint, "vNode." + demandAttr_ + " <= rNode." + residualAttr);

  // Ensure every query node carries a demand (absent => 0).
  graph::Graph queryCopy = query;
  const graph::AttrId demandId = graph::attrId(demandAttr_);
  for (graph::NodeId v = 0; v < queryCopy.nodeCount(); ++v) {
    if (!queryCopy.nodeAttrs(v).has(demandId)) queryCopy.nodeAttrs(v).set(demandId, 0.0);
  }

  const graph::AttrId residualId = graph::attrId(residualAttr);
  core::SearchOptions firstOnly = options;
  firstOnly.maxSolutions = 1;

  for (std::size_t start = earliest; start <= horizon; ++start) {
    for (graph::NodeId n = 0; n < working.nodeCount(); ++n) {
      working.nodeAttrs(n).set(residualId, residualCapacity(n, start, duration));
    }
    const core::Problem problem(queryCopy, working, constraints);
    const core::EmbedResult result = core::lnsSearch(problem, firstOnly);
    if (result.feasible() && !result.mappings.empty()) {
      const core::Mapping& mapping = result.mappings.front();
      Placement placement{nextId_++, start, duration, mapping};
      for (graph::NodeId v = 0; v < queryCopy.nodeCount(); ++v) {
        const double demand = queryCopy.nodeAttrs(v).getDouble(demandAttr_, 0.0);
        if (demand > 0.0) {
          bookings_.push_back({placement.id, start, duration, mapping[v], demand});
        }
      }
      placements_.push_back(placement);
      return placement;
    }
  }
  return std::nullopt;
}

void EmbeddingScheduler::cancel(std::uint64_t id) {
  const auto placementIt =
      std::find_if(placements_.begin(), placements_.end(),
                   [&](const Placement& p) { return p.id == id; });
  if (placementIt == placements_.end()) {
    throw std::invalid_argument("EmbeddingScheduler::cancel: unknown placement");
  }
  placements_.erase(placementIt);
  std::erase_if(bookings_, [&](const Booking& b) { return b.id == id; });
}

}  // namespace netembed::service
