#pragma once
// Optimization over the feasible set (paper §VIII and footnote 1: "the
// solution to a constraint satisfaction problem may yield multiple feasible
// embeddings, in which case the embedding of choice would be the one that
// minimizes a specific cost metric").
//
// Costs stream through the engines' solution sink, so the best mapping is
// tracked without materializing the full (possibly huge) feasible set.

#include <functional>
#include <optional>
#include <string>

#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::service {

/// Smaller is better.
using CostFn = std::function<double(const core::Mapping&)>;

/// Sum over query edges of the mapped host edge's numeric attribute
/// (missing attribute or host edge counts as `missingPenalty`).
[[nodiscard]] CostFn totalEdgeAttrCost(const graph::Graph& query,
                                       const graph::Graph& host, std::string attr,
                                       double missingPenalty = 1e9);

/// Sum over query nodes of the mapped host node's numeric attribute
/// (e.g. "load"): prefers placements onto lightly-loaded hosts.
[[nodiscard]] CostFn totalNodeAttrCost(const graph::Graph& query,
                                       const graph::Graph& host, std::string attr,
                                       double missingValue = 0.0);

struct OptimizeResult {
  core::EmbedResult search;      // outcome / counts / stats of the enumeration
  std::optional<core::Mapping> best;
  double bestCost = 0.0;
};

/// Enumerate feasible embeddings with the given algorithm and keep the
/// cheapest. The search result's outcome tells whether the enumeration was
/// exhaustive (Complete => `best` is the global optimum over all feasible
/// embeddings).
[[nodiscard]] OptimizeResult enumerateAndOptimize(const core::Problem& problem,
                                                  core::Algorithm algorithm,
                                                  const core::SearchOptions& options,
                                                  const CostFn& cost);

}  // namespace netembed::service
