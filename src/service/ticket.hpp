#pragma once
// The request-lifecycle handle.
//
// Both NETEMBED front ends hand back a SubmitTicket for lifecycle-aware
// submissions: it reports where the request is (queued / running / a
// terminal RequestStatus), cancels it — pulling a queued request out of the
// admission queue, or stopping a running one cooperatively mid-search and
// mid-filter-build through the std::stop_token chained into its
// SearchContext — and exposes the terminal EmbedResponse as a future.
// Solutions stream incrementally through TicketCallbacks::onSolution, fed
// straight from SearchContext admission instead of only appearing in the
// terminal response.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stop_token>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/service.hpp"

namespace netembed::service {

/// What a *buffered* onSolution does when its bounded buffer is full (see
/// TicketCallbacks::solutionBufferCapacity).
enum class SolutionBufferPolicy : std::uint8_t {
  /// The search worker waits for the consumer to free a slot (lossless; a
  /// slow consumer throttles only its own search, never a scheduler worker
  /// running someone else's).
  Block,
  /// Evict the oldest undelivered mapping to admit the new one (lossy;
  /// counted in SubmitTicket::solutionsDropped). The search never stalls.
  DropOldest,
};

struct TicketCallbacks {
  /// Invoked for every feasible mapping the moment SearchContext admits it
  /// (before the search finishes). The core SolutionSink contract applies:
  /// with root-split or portfolio parallelism it may fire concurrently;
  /// return false to stop the search (terminal result is then Partial).
  /// Throwing is off-contract but accounted (SubmitTicket::sinkErrors):
  /// inline (capacity 0) a throw propagates into the search and fails — or,
  /// under QoS::retry, retries — the attempt; buffered, a throw stops
  /// further deliveries for the attempt (like returning false) while the
  /// search continues and the ticket resolves normally.
  core::SolutionSink onSolution;
  /// Fired exactly once at terminal resolution, after the future is
  /// satisfied, on whichever thread resolved the request. Exactly one of
  /// (response, error) is meaningful — error is null unless the search
  /// threw (the response is then a placeholder with status Failed). Must
  /// not throw.
  std::function<void(const EmbedResponse&, std::exception_ptr)> onComplete;
  /// 0 (the default) delivers onSolution inline from the search thread — the
  /// historical behavior, where a slow consumer stalls the worker running
  /// the search. > 0 decouples them: mappings land in a bounded buffer of
  /// this capacity and a dedicated per-ticket consumer thread delivers them
  /// in admission order (onSolution then never fires concurrently and always
  /// before onComplete). solutionsStreamed() counts *deliveries*, so it lags
  /// the search while the buffer drains.
  std::size_t solutionBufferCapacity = 0;
  /// Full-buffer behavior; meaningless when solutionBufferCapacity is 0.
  SolutionBufferPolicy solutionBufferPolicy = SolutionBufferPolicy::Block;
};

namespace detail {

/// Shared lifecycle state behind one SubmitTicket. The submitting service,
/// the executing worker and the ticket holder all reference it; whichever
/// side resolves first wins (single-resolution is guarded).
struct TicketState {
  explicit TicketState(TicketCallbacks cb)
      : callbacks(std::move(cb)), future(promise.get_future()) {}

  TicketCallbacks callbacks;
  std::promise<EmbedResponse> promise;
  std::future<EmbedResponse> future;
  /// Cancellation chain: ticket cancel / shutdown request stop here; the
  /// token is handed to the SearchContext as its external stop.
  std::stop_source stop;
  std::atomic<RequestStatus> status{RequestStatus::Queued};
  std::atomic<std::uint64_t> streamed{0};
  /// Mappings a DropOldest solution buffer evicted undelivered (plus any
  /// undelivered leftovers after the consumer asked the search to stop).
  std::atomic<std::uint64_t> droppedSolutions{0};
  /// Attempts started (incremented at each dispatch; see QoS::retry).
  std::atomic<std::uint32_t> attempts{0};
  /// Times the user's onSolution sink threw (see SubmitTicket::sinkErrors).
  std::atomic<std::uint64_t> sinkErrors{0};
  /// Whether this ticket currently holds a slot of the async service's
  /// per-class retry budget (charged once at the first retry, released at
  /// terminal resolution).
  std::atomic<bool> retryCharged{false};

  std::mutex mutex;            // guards resolved + tryDequeue + retry carry
  bool resolved = false;       // the promise has been satisfied
  std::function<bool()> tryDequeue;  // async service: pull out of the queue
  /// what() of the error behind a Failed resolution (errorMessage()).
  std::string errorText;
  /// The exception of the most recent failed attempt; a retry that is later
  /// abandoned (budget, shutdown, queue refusal) resolves with this instead
  /// of a generic "retry abandoned" error.
  std::exception_ptr lastError;
  /// Retry carry — the previous attempts' partial result. Engines replay
  /// deterministically, so admission i of a retry is the mapping already
  /// admitted as i in an earlier attempt: carriedAdmissions gives retries a
  /// solution-count floor (enough carried admissions synthesize a Done
  /// without re-searching) and the dedup line for exactly-once onSolution
  /// delivery; carriedMappings stores the first maxSolutions of them.
  std::vector<core::Mapping> carriedMappings;
  std::uint64_t carriedAdmissions = 0;
  core::SearchStats carriedStats{};
  /// Previous backoff actually slept, the anchor of decorrelated jitter.
  std::chrono::milliseconds lastBackoff{0};
};

/// One *attempt* at running a preemptable request. The attempt's stop source
/// is distinct from the ticket's: the service fires it to reclaim the worker
/// for higher-priority queued work, without marking the ticket cancelled
/// (the ticket stop is chained in, so a real cancel still stops the attempt).
struct PreemptSlot {
  std::stop_source attempt;
  std::atomic<bool> preempted{false};
  int priority = 0;
  std::chrono::steady_clock::time_point started{};
};

/// How runTicketedAttempt left the ticket.
enum class RunOutcome : std::uint8_t {
  /// The promise is satisfied (Done / Cancelled / Preempted / Failed / ...).
  Resolved,
  /// The attempt was preempted and the caller asked for re-queue semantics:
  /// the ticket is back in Queued state, unresolved — the caller must
  /// re-enqueue it (and resolve it Preempted itself if the re-queue is
  /// refused).
  RequeuePreempted,
  /// The attempt failed transiently, the retry policy has attempts left and
  /// the ticket is unresolved in Retrying state — the caller must wait out
  /// the backoff and dispatch another attempt (or abandon via resolveError
  /// with the stored lastError).
  RetryTransient,
};

/// Resolve with a response (status read from response.status). No-ops if
/// already resolved.
void resolveResponse(TicketState& state, EmbedResponse response);
/// Resolve with the search's exception (status Failed). The onComplete
/// placeholder response is attributable: it carries `version` (the model
/// version the attempts ran against), the attempt count, and the partial
/// SearchStats / admission count accumulated across failed attempts.
void resolveError(TicketState& state, std::exception_ptr error,
                  std::uint64_t version = 0);

/// what() of `error` (or a fallback for non-std exceptions).
[[nodiscard]] std::string describeError(std::exception_ptr error);
/// Failure classification for retries: true for errors no retry can fix
/// (invalid constraint source, malformed problem). Everything else —
/// injected faults, allocation failures, engine exceptions, plan overflow —
/// is transient.
[[nodiscard]] bool isPermanentError(std::exception_ptr error) noexcept;
/// Next backoff under `policy` with decorrelated jitter, deterministic from
/// (seed, attempt number); records itself as state.lastBackoff.
[[nodiscard]] std::chrono::milliseconds nextRetryBackoff(
    const RetryPolicy& policy, std::uint64_t seed, TicketState& state);
/// Resolve a request that never ran (Cancelled / Rejected / Expired).
void resolveDropped(TicketState& state, RequestStatus status,
                    std::string diagnostics);
/// SubmitTicket::cancel implementation (shared by both services).
bool cancelTicket(TicketState& state);

/// Execute one ticketed request end to end: honor a pre-dispatch cancel,
/// mark Running, wire the streaming sink and the ticket's stop token into
/// executeEmbed, and resolve the promise with the outcome.
void runTicketed(const std::shared_ptr<TicketState>& state,
                 const EmbedRequest& request, const graph::Graph& host,
                 std::uint64_t version, bool allowPortfolioEscalation,
                 FilterPlanCache* cache);

/// runTicketed generalized to one preemptable attempt. With a non-null
/// `slot`, the engine runs under the attempt's stop token (ticket stop
/// chained in); a fired preemption resolves the response Preempted with its
/// partial result — unless the search had already completed naturally
/// (Done), the ticket was genuinely cancelled (Cancelled), or
/// `requeueOnPreempt` asked to hand the unresolved ticket back for
/// re-admission instead. Also implements the buffered-onSolution path (see
/// TicketCallbacks::solutionBufferCapacity) for both entry points.
///
/// `allowRetry` turns on QoS::retry semantics: a transient failure with
/// attempts remaining returns RunOutcome::RetryTransient instead of
/// resolving Failed, retries skip re-delivering solutions already streamed
/// by earlier attempts (exactly-once onSolution), and a retry whose carried
/// admissions already cover maxSolutions resolves Done from the carry
/// without re-searching.
[[nodiscard]] RunOutcome runTicketedAttempt(
    const std::shared_ptr<TicketState>& state, const EmbedRequest& request,
    const graph::Graph& host, std::uint64_t version,
    bool allowPortfolioEscalation, FilterPlanCache* cache, PreemptSlot* slot,
    bool requeueOnPreempt, bool allowRetry = false);

}  // namespace detail

/// Move-only handle for one submitted request. Default-constructed tickets
/// are invalid (valid() == false); every accessor on an invalid ticket
/// returns the inert value noted below.
class SubmitTicket {
 public:
  SubmitTicket() = default;
  SubmitTicket(SubmitTicket&&) = default;
  SubmitTicket& operator=(SubmitTicket&&) = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Current lifecycle state (Failed for an invalid ticket).
  [[nodiscard]] RequestStatus status() const noexcept;

  /// Cancel the request: a still-queued one resolves immediately with
  /// RequestStatus::Cancelled; a running one stops cooperatively (mid-search
  /// and mid-filter-build) and resolves Cancelled with whatever partial
  /// result it reached. Returns true when the cancel took hold of a live
  /// request — the terminal status is then Cancelled, with one carve-out: a
  /// search that *throws* (bad constraint source, bad_alloc) still resolves
  /// Failed with the exception in the future, even against a racing cancel,
  /// because the error is the more informative outcome. False when the
  /// request had already resolved (or the ticket is invalid). Idempotent.
  bool cancel();

  /// The one-shot future carrying the terminal EmbedResponse (or the
  /// exception the search raised). Throws std::future_error: if consumed
  /// twice (broken_promise semantics of std::future), or no_state when the
  /// ticket is invalid.
  [[nodiscard]] std::future<EmbedResponse>& future() { return futureRef(); }

  /// Move the future out (the fire-and-forget wrappers use this; afterwards
  /// future()/get() on the ticket are spent).
  [[nodiscard]] std::future<EmbedResponse> takeFuture() {
    return std::move(futureRef());
  }

  /// Block for the terminal response (rethrows the search's exception).
  EmbedResponse get() { return futureRef().get(); }

  /// Solutions streamed through onSolution so far (0 for invalid tickets).
  /// With a buffered onSolution this counts deliveries, not admissions.
  [[nodiscard]] std::uint64_t solutionsStreamed() const noexcept;

  /// Mappings evicted undelivered by a DropOldest solution buffer (0 for
  /// invalid tickets and for inline / Block configurations).
  [[nodiscard]] std::uint64_t solutionsDropped() const noexcept;

  /// Attempts dispatched so far (0 before the first dispatch; > 1 once
  /// transient failures were retried under QoS::retry — status() reads
  /// Retrying while a backoff is pending).
  [[nodiscard]] std::uint32_t attempts() const noexcept;

  /// Times the onSolution sink threw (0 for invalid tickets). An *inline*
  /// sink throw propagates into the search and fails (or retries) the
  /// attempt; a *buffered* sink throw stops further streaming for the
  /// attempt — the search continues and the ticket still resolves normally
  /// (see TicketCallbacks::solutionBufferCapacity).
  [[nodiscard]] std::uint64_t sinkErrors() const noexcept;

  /// what() of the error behind a Failed resolution, captured at resolve
  /// time — the failure cause without future().get()'s rethrow. Empty while
  /// unresolved, for non-Failed terminals and for invalid tickets. Not
  /// noexcept (takes the state mutex).
  [[nodiscard]] std::string errorMessage() const;

 private:
  friend class NetEmbedService;
  friend class AsyncNetEmbedService;
  explicit SubmitTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::future<EmbedResponse>& futureRef();

  std::shared_ptr<detail::TicketState> state_;
  /// Sync-service tickets own the thread running their request; destroying
  /// (or overwriting) the ticket requests stop and joins it — the
  /// stop_callback inside the thread chains that into state_->stop.
  std::jthread runner_;
};

}  // namespace netembed::service
