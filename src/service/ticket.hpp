#pragma once
// The request-lifecycle handle.
//
// Both NETEMBED front ends hand back a SubmitTicket for lifecycle-aware
// submissions: it reports where the request is (queued / running / a
// terminal RequestStatus), cancels it — pulling a queued request out of the
// admission queue, or stopping a running one cooperatively mid-search and
// mid-filter-build through the std::stop_token chained into its
// SearchContext — and exposes the terminal EmbedResponse as a future.
// Solutions stream incrementally through TicketCallbacks::onSolution, fed
// straight from SearchContext admission instead of only appearing in the
// terminal response.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stop_token>
#include <thread>
#include <utility>

#include "service/service.hpp"

namespace netembed::service {

/// What a *buffered* onSolution does when its bounded buffer is full (see
/// TicketCallbacks::solutionBufferCapacity).
enum class SolutionBufferPolicy : std::uint8_t {
  /// The search worker waits for the consumer to free a slot (lossless; a
  /// slow consumer throttles only its own search, never a scheduler worker
  /// running someone else's).
  Block,
  /// Evict the oldest undelivered mapping to admit the new one (lossy;
  /// counted in SubmitTicket::solutionsDropped). The search never stalls.
  DropOldest,
};

struct TicketCallbacks {
  /// Invoked for every feasible mapping the moment SearchContext admits it
  /// (before the search finishes). The core SolutionSink contract applies:
  /// with root-split or portfolio parallelism it may fire concurrently;
  /// return false to stop the search (terminal result is then Partial).
  core::SolutionSink onSolution;
  /// Fired exactly once at terminal resolution, after the future is
  /// satisfied, on whichever thread resolved the request. Exactly one of
  /// (response, error) is meaningful — error is null unless the search
  /// threw (the response is then a placeholder with status Failed). Must
  /// not throw.
  std::function<void(const EmbedResponse&, std::exception_ptr)> onComplete;
  /// 0 (the default) delivers onSolution inline from the search thread — the
  /// historical behavior, where a slow consumer stalls the worker running
  /// the search. > 0 decouples them: mappings land in a bounded buffer of
  /// this capacity and a dedicated per-ticket consumer thread delivers them
  /// in admission order (onSolution then never fires concurrently and always
  /// before onComplete). solutionsStreamed() counts *deliveries*, so it lags
  /// the search while the buffer drains.
  std::size_t solutionBufferCapacity = 0;
  /// Full-buffer behavior; meaningless when solutionBufferCapacity is 0.
  SolutionBufferPolicy solutionBufferPolicy = SolutionBufferPolicy::Block;
};

namespace detail {

/// Shared lifecycle state behind one SubmitTicket. The submitting service,
/// the executing worker and the ticket holder all reference it; whichever
/// side resolves first wins (single-resolution is guarded).
struct TicketState {
  explicit TicketState(TicketCallbacks cb)
      : callbacks(std::move(cb)), future(promise.get_future()) {}

  TicketCallbacks callbacks;
  std::promise<EmbedResponse> promise;
  std::future<EmbedResponse> future;
  /// Cancellation chain: ticket cancel / shutdown request stop here; the
  /// token is handed to the SearchContext as its external stop.
  std::stop_source stop;
  std::atomic<RequestStatus> status{RequestStatus::Queued};
  std::atomic<std::uint64_t> streamed{0};
  /// Mappings a DropOldest solution buffer evicted undelivered (plus any
  /// undelivered leftovers after the consumer asked the search to stop).
  std::atomic<std::uint64_t> droppedSolutions{0};

  std::mutex mutex;            // guards resolved + tryDequeue
  bool resolved = false;       // the promise has been satisfied
  std::function<bool()> tryDequeue;  // async service: pull out of the queue
};

/// One *attempt* at running a preemptable request. The attempt's stop source
/// is distinct from the ticket's: the service fires it to reclaim the worker
/// for higher-priority queued work, without marking the ticket cancelled
/// (the ticket stop is chained in, so a real cancel still stops the attempt).
struct PreemptSlot {
  std::stop_source attempt;
  std::atomic<bool> preempted{false};
  int priority = 0;
  std::chrono::steady_clock::time_point started{};
};

/// How runTicketedAttempt left the ticket.
enum class RunOutcome : std::uint8_t {
  /// The promise is satisfied (Done / Cancelled / Preempted / Failed / ...).
  Resolved,
  /// The attempt was preempted and the caller asked for re-queue semantics:
  /// the ticket is back in Queued state, unresolved — the caller must
  /// re-enqueue it (and resolve it Preempted itself if the re-queue is
  /// refused).
  RequeuePreempted,
};

/// Resolve with a response (status read from response.status). No-ops if
/// already resolved.
void resolveResponse(TicketState& state, EmbedResponse response);
/// Resolve with the search's exception (status Failed).
void resolveError(TicketState& state, std::exception_ptr error);
/// Resolve a request that never ran (Cancelled / Rejected / Expired).
void resolveDropped(TicketState& state, RequestStatus status,
                    std::string diagnostics);
/// SubmitTicket::cancel implementation (shared by both services).
bool cancelTicket(TicketState& state);

/// Execute one ticketed request end to end: honor a pre-dispatch cancel,
/// mark Running, wire the streaming sink and the ticket's stop token into
/// executeEmbed, and resolve the promise with the outcome.
void runTicketed(const std::shared_ptr<TicketState>& state,
                 const EmbedRequest& request, const graph::Graph& host,
                 std::uint64_t version, bool allowPortfolioEscalation,
                 FilterPlanCache* cache);

/// runTicketed generalized to one preemptable attempt. With a non-null
/// `slot`, the engine runs under the attempt's stop token (ticket stop
/// chained in); a fired preemption resolves the response Preempted with its
/// partial result — unless the search had already completed naturally
/// (Done), the ticket was genuinely cancelled (Cancelled), or
/// `requeueOnPreempt` asked to hand the unresolved ticket back for
/// re-admission instead. Also implements the buffered-onSolution path (see
/// TicketCallbacks::solutionBufferCapacity) for both entry points.
[[nodiscard]] RunOutcome runTicketedAttempt(
    const std::shared_ptr<TicketState>& state, const EmbedRequest& request,
    const graph::Graph& host, std::uint64_t version,
    bool allowPortfolioEscalation, FilterPlanCache* cache, PreemptSlot* slot,
    bool requeueOnPreempt);

}  // namespace detail

/// Move-only handle for one submitted request. Default-constructed tickets
/// are invalid (valid() == false); every accessor on an invalid ticket
/// returns the inert value noted below.
class SubmitTicket {
 public:
  SubmitTicket() = default;
  SubmitTicket(SubmitTicket&&) = default;
  SubmitTicket& operator=(SubmitTicket&&) = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Current lifecycle state (Failed for an invalid ticket).
  [[nodiscard]] RequestStatus status() const noexcept;

  /// Cancel the request: a still-queued one resolves immediately with
  /// RequestStatus::Cancelled; a running one stops cooperatively (mid-search
  /// and mid-filter-build) and resolves Cancelled with whatever partial
  /// result it reached. Returns true when the cancel took hold of a live
  /// request — the terminal status is then Cancelled, with one carve-out: a
  /// search that *throws* (bad constraint source, bad_alloc) still resolves
  /// Failed with the exception in the future, even against a racing cancel,
  /// because the error is the more informative outcome. False when the
  /// request had already resolved (or the ticket is invalid). Idempotent.
  bool cancel();

  /// The one-shot future carrying the terminal EmbedResponse (or the
  /// exception the search raised). Throws std::future_error: if consumed
  /// twice (broken_promise semantics of std::future), or no_state when the
  /// ticket is invalid.
  [[nodiscard]] std::future<EmbedResponse>& future() { return futureRef(); }

  /// Move the future out (the fire-and-forget wrappers use this; afterwards
  /// future()/get() on the ticket are spent).
  [[nodiscard]] std::future<EmbedResponse> takeFuture() {
    return std::move(futureRef());
  }

  /// Block for the terminal response (rethrows the search's exception).
  EmbedResponse get() { return futureRef().get(); }

  /// Solutions streamed through onSolution so far (0 for invalid tickets).
  /// With a buffered onSolution this counts deliveries, not admissions.
  [[nodiscard]] std::uint64_t solutionsStreamed() const noexcept;

  /// Mappings evicted undelivered by a DropOldest solution buffer (0 for
  /// invalid tickets and for inline / Block configurations).
  [[nodiscard]] std::uint64_t solutionsDropped() const noexcept;

 private:
  friend class NetEmbedService;
  friend class AsyncNetEmbedService;
  explicit SubmitTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::future<EmbedResponse>& futureRef();

  std::shared_ptr<detail::TicketState> state_;
  /// Sync-service tickets own the thread running their request; destroying
  /// (or overwriting) the ticket requests stop and joins it — the
  /// stop_callback inside the thread chains that into state_->stop.
  std::jthread runner_;
};

}  // namespace netembed::service
