#pragma once
// Time-windowed embedding (paper §VIII: "the embedding problem must be
// tightly integrated with the scheduling problem — to find a window of time
// ... in which some feasible embedding is available", the SNBENCH use case).
//
// Host nodes expose a numeric capacity attribute; query nodes carry a demand
// attribute. Placements occupy capacity for [start, start+duration) in
// discrete time slots. schedule() finds the earliest start at which a
// feasible embedding exists against the *residual* capacities, then books it.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/search.hpp"
#include "graph/graph.hpp"

namespace netembed::service {

class EmbeddingScheduler {
 public:
  EmbeddingScheduler(graph::Graph host, std::string capacityAttr = "capacity",
                     std::string demandAttr = "demand");

  struct Placement {
    std::uint64_t id;
    std::size_t start;
    std::size_t duration;
    core::Mapping mapping;
  };

  /// Find the earliest start in [earliest, horizon] where the query embeds
  /// feasibly given residual capacities, book it, and return the placement.
  /// `edgeConstraint` uses the normal expression language (may be empty).
  [[nodiscard]] std::optional<Placement> schedule(
      const graph::Graph& query, const std::string& edgeConstraint,
      std::size_t duration, std::size_t horizon, std::size_t earliest = 0,
      const core::SearchOptions& options = {});

  /// Cancel a booking; throws on unknown id.
  void cancel(std::uint64_t id);

  [[nodiscard]] std::size_t activePlacements() const noexcept {
    return placements_.size();
  }

  [[nodiscard]] const graph::Graph& host() const noexcept { return host_; }

  /// Residual capacity of `node` during [start, start+duration).
  [[nodiscard]] double residualCapacity(graph::NodeId node, std::size_t start,
                                        std::size_t duration) const;

 private:
  struct Booking {
    std::uint64_t id;
    std::size_t start;
    std::size_t duration;
    graph::NodeId node;
    double amount;
  };

  graph::Graph host_;
  std::string capacityAttr_;
  std::string demandAttr_;
  std::vector<Booking> bookings_;
  std::vector<Placement> placements_;
  std::uint64_t nextId_ = 1;
};

}  // namespace netembed::service
