#include "service/plan_cache.hpp"

#include <cstdio>

#include "graph/attr_map.hpp"

namespace netembed::service {

namespace {

void appendValue(std::string& out, const graph::AttrValue& value) {
  switch (value.type()) {
    case graph::AttrType::Undefined: out += 'u'; break;
    case graph::AttrType::Bool: out += value.asBool() ? 'T' : 'F'; break;
    case graph::AttrType::Int:
      out += 'i';
      out += std::to_string(value.asInt());
      break;
    case graph::AttrType::Double: {
      // Hexfloat round-trips exactly; decimal rendering could alias two
      // different attribute values into one signature.
      char buf[40];
      std::snprintf(buf, sizeof buf, "%a", value.asDouble());
      out += 'd';
      out += buf;
      break;
    }
    case graph::AttrType::String: {
      const std::string& s = value.asString();
      out += 's';
      out += std::to_string(s.size());
      out += ':';
      out += s;
      break;
    }
  }
  out += ';';
}

void appendString(std::string& out, const std::string& s) {
  out += std::to_string(s.size());
  out += ':';
  out += s;
}

void appendAttrs(std::string& out, const graph::AttrMap& attrs) {
  // AttrMap iterates sorted by interned id; ids are stable process-wide, so
  // equal maps serialize equally within one process (the cache's lifetime).
  for (const auto& [id, value] : attrs) {
    appendString(out, graph::attrName(id));
    out += '=';
    appendValue(out, value);
  }
  out += '|';
}

}  // namespace

std::string planSignature(const graph::Graph& query,
                          const std::string& edgeConstraint,
                          const std::string& nodeConstraint,
                          const core::SearchOptions& options) {
  std::string sig;
  sig.reserve(64 + query.nodeCount() * 24 + query.edgeCount() * 24);
  sig += query.directed() ? 'D' : 'U';
  sig += std::to_string(query.nodeCount());
  sig += '/';
  sig += std::to_string(query.edgeCount());
  sig += '#';
  for (graph::NodeId n = 0; n < query.nodeCount(); ++n) {
    appendString(sig, query.nodeName(n));
    appendAttrs(sig, query.nodeAttrs(n));
  }
  for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
    sig += std::to_string(query.edgeSource(e));
    sig += '>';
    sig += std::to_string(query.edgeTarget(e));
    sig += ':';
    appendAttrs(sig, query.edgeAttrs(e));
  }
  appendAttrs(sig, query.attrs());
  appendString(sig, edgeConstraint);
  appendString(sig, nodeConstraint);
  // Plan-relevant options only: staticOrdering shapes the Lemma-1 order,
  // maxFilterEntries decides whether the build overflows, bitsetMode decides
  // which cells carry bit rows (identical candidate sets, but a requester
  // must get the representation it asked for). Seeds, budgets and thread
  // counts do not touch plan content and must not split the cache.
  sig += options.staticOrdering ? 'S' : 's';
  sig += std::to_string(options.maxFilterEntries);
  sig += 'b';
  sig += std::to_string(static_cast<unsigned>(options.bitsetMode));
  // Shards partition the matrix (occupancy summaries, per-shard patch
  // classification), so requesters with different shard counts must not
  // share a plan. Omitted for the default single-shard model to keep
  // historical signatures stable.
  if (options.shards != 1) {
    sig += 'h';
    sig += std::to_string(options.shards);
  }
  return sig;
}

std::shared_ptr<core::SharedPlanBuilder> FilterPlanCache::acquire(
    std::uint64_t modelVersion, std::string signature) {
  std::lock_guard lock(mutex_);
  if (capacity_ == 0) {
    ++stats_.bypasses;
    return std::make_shared<core::SharedPlanBuilder>();
  }
  if (modelVersion > version_) {
    // Version bump: every cached plan describes the old host attributes.
    stats_.invalidations += entries_.size();
    entries_.clear();
    lru_.clear();
    version_ = modelVersion;
  } else if (modelVersion < version_) {
    // A reader that sampled the version just before a bump: give it a
    // private builder for its snapshot; never cache or serve stale plans.
    ++stats_.bypasses;
    return std::make_shared<core::SharedPlanBuilder>();
  }
  const auto it = entries_.find(signature);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    return it->second.builder;
  }
  ++stats_.misses;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(std::move(signature));
  auto builder = std::make_shared<core::SharedPlanBuilder>();
  entries_.emplace(lru_.front(), Entry{builder, lru_.begin()});
  return builder;
}

void FilterPlanCache::applyDelta(std::uint64_t newVersion,
                                 const core::ModelDelta& delta) {
  std::lock_guard lock(mutex_);
  if (capacity_ == 0) return;
  if (newVersion <= version_) return;  // duplicate / out-of-order announcement
  version_ = newVersion;
  if (delta.structural) {
    stats_.invalidations += entries_.size();
    entries_.clear();
    lru_.clear();
    return;
  }
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    if (auto plan = entry.builder->ready()) {
      // Completed plan: re-wrap as a lazy patch source. The old builder (and
      // the old plan, through any in-flight search) lives on unharmed.
      entry.builder = std::make_shared<core::SharedPlanBuilder>(
          core::SharedPlanBuilder::PatchSource{std::move(plan), delta});
      ++stats_.rekeys;
      ++it;
    } else if (entry.builder.use_count() == 1 && entry.builder->mergeDelta(delta)) {
      // A patch source from an earlier bump that nobody has asked for yet:
      // exclusively ours, so the deltas accumulate into one future patch.
      ++stats_.rekeys;
      ++it;
    } else {
      // No completed plan and the builder may be in an in-flight get()
      // against the old version — mutating it would hand that caller a plan
      // for the wrong version. Dropping is the only safe carry.
      lru_.erase(entry.lruPos);
      ++stats_.invalidations;
      it = entries_.erase(it);
    }
  }
}

FilterPlanCache::Stats FilterPlanCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats out = stats_;
  out.size = entries_.size();
  return out;
}

void FilterPlanCache::clear() {
  std::lock_guard lock(mutex_);
  stats_.invalidations += entries_.size();
  entries_.clear();
  lru_.clear();
}

}  // namespace netembed::service
