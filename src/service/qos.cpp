#include "service/qos.hpp"

namespace netembed::service {

const char* priorityName(Priority p) noexcept {
  switch (p) {
    case Priority::Low: return "low";
    case Priority::Normal: return "normal";
    case Priority::High: return "high";
  }
  return "?";
}

const char* requestStatusName(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::Queued: return "queued";
    case RequestStatus::Running: return "running";
    case RequestStatus::Done: return "done";
    case RequestStatus::Cancelled: return "cancelled";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Expired: return "expired";
    case RequestStatus::Failed: return "failed";
    case RequestStatus::Preempted: return "preempted";
    case RequestStatus::Retrying: return "retrying";
  }
  return "?";
}

}  // namespace netembed::service
