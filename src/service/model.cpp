#include "service/model.hpp"

#include <algorithm>
#include <stdexcept>

namespace netembed::service {

NetworkModel::NetworkModel(graph::Graph host) : host_(std::move(host)) {}

NetworkModel& NetworkModel::operator=(NetworkModel other) noexcept {
  const std::uint64_t floor = std::max(version_, other.version_) + 1;
  host_ = std::move(other.host_);
  nextId_ = other.nextId_;
  reservations_ = std::move(other.reservations_);
  version_ = floor;
  // A wholesale replacement has no bounded footprint: structural.
  lastDelta_.clear();
  lastDelta_.structural = true;
  return *this;
}

void NetworkModel::setEdgeMetric(graph::NodeId u, graph::NodeId v,
                                 std::string_view attr, graph::AttrValue value) {
  const auto e = host_.findEdge(u, v);
  if (!e) throw std::invalid_argument("NetworkModel: no such edge");
  const graph::AttrId id = graph::attrId(attr);
  host_.edgeAttrs(*e).set(id, std::move(value));
  lastDelta_.clear();
  lastDelta_.touchEdge(*e, id);
  lastDelta_.normalize();
  ++version_;
}

void NetworkModel::setNodeAttr(graph::NodeId n, std::string_view attr,
                               graph::AttrValue value) {
  const graph::AttrId id = graph::attrId(attr);
  host_.nodeAttrs(n).set(id, std::move(value));
  lastDelta_.clear();
  lastDelta_.touchNode(n, id);
  lastDelta_.normalize();
  ++version_;
}

std::size_t NetworkModel::applyMeasurements(std::span<const Measurement> batch) {
  std::size_t applied = 0;
  core::ModelDelta delta;
  for (const Measurement& m : batch) {
    const auto src = host_.findNode(m.src);
    if (!src) continue;
    const graph::AttrId id = graph::attrId(m.attr);
    if (m.dst.empty()) {
      host_.nodeAttrs(*src).set(id, m.value);
      delta.touchNode(*src, id);
      ++applied;
      continue;
    }
    const auto dst = host_.findNode(m.dst);
    if (!dst) continue;
    const auto e = host_.findEdge(*src, *dst);
    if (!e) continue;
    host_.edgeAttrs(*e).set(id, m.value);
    delta.touchEdge(*e, id);
    ++applied;
  }
  if (applied > 0) {
    delta.normalize();
    lastDelta_ = std::move(delta);
    ++version_;
  }
  return applied;
}

NetworkModel::ReservationId NetworkModel::reserve(const graph::Graph& query,
                                                  const core::Mapping& mapping,
                                                  const ReservationSpec& spec) {
  if (mapping.size() != query.nodeCount()) {
    throw std::invalid_argument("NetworkModel::reserve: incomplete mapping");
  }
  std::vector<Delta> deltas;

  const auto planNode = [&](graph::NodeId q, graph::NodeId r, const std::string& attr) {
    const graph::AttrId id = graph::attrId(attr);
    const graph::AttrValue* demand = query.nodeAttrs(q).get(id);
    if (!demand || !demand->isNumeric() || demand->asDouble() == 0.0) return;
    deltas.push_back({true, r, id, demand->asDouble()});
  };
  const auto planEdge = [&](graph::EdgeId qe, graph::EdgeId re, const std::string& attr) {
    const graph::AttrId id = graph::attrId(attr);
    const graph::AttrValue* demand = query.edgeAttrs(qe).get(id);
    if (!demand || !demand->isNumeric() || demand->asDouble() == 0.0) return;
    deltas.push_back({false, re, id, demand->asDouble()});
  };

  for (graph::NodeId q = 0; q < query.nodeCount(); ++q) {
    if (mapping[q] == graph::kInvalidNode || mapping[q] >= host_.nodeCount()) {
      throw std::invalid_argument("NetworkModel::reserve: bad mapping entry");
    }
    for (const std::string& attr : spec.nodeCapacityAttrs) planNode(q, mapping[q], attr);
  }
  for (graph::EdgeId qe = 0; qe < query.edgeCount(); ++qe) {
    const auto re = host_.findEdge(mapping[query.edgeSource(qe)],
                                   mapping[query.edgeTarget(qe)]);
    if (!re) {
      throw std::invalid_argument(
          "NetworkModel::reserve: mapping does not preserve topology");
    }
    for (const std::string& attr : spec.edgeCapacityAttrs) planEdge(qe, *re, attr);
  }

  // Validate all capacities first so failure changes nothing.
  for (const Delta& d : deltas) {
    const graph::AttrMap& attrs =
        d.onNode ? host_.nodeAttrs(d.element) : host_.edgeAttrs(d.element);
    const graph::AttrValue* capacity = attrs.get(d.attr);
    const double available =
        capacity && capacity->isNumeric() ? capacity->asDouble() : 0.0;
    if (available < d.amount) {
      throw std::runtime_error("NetworkModel::reserve: insufficient '" +
                               graph::attrName(d.attr) + "' capacity");
    }
  }
  lastDelta_.clear();
  for (const Delta& d : deltas) {
    graph::AttrMap& attrs =
        d.onNode ? host_.nodeAttrs(d.element) : host_.edgeAttrs(d.element);
    attrs.set(d.attr, attrs.get(d.attr)->asDouble() - d.amount);
    if (d.onNode) {
      lastDelta_.touchNode(d.element, d.attr);
    } else {
      lastDelta_.touchEdge(d.element, d.attr);
    }
  }

  lastDelta_.normalize();

  const ReservationId id = nextId_++;
  reservations_.emplace(id, std::move(deltas));
  ++version_;
  return id;
}

void NetworkModel::release(ReservationId id) {
  const auto it = reservations_.find(id);
  if (it == reservations_.end()) {
    throw std::invalid_argument("NetworkModel::release: unknown reservation");
  }
  lastDelta_.clear();
  for (const Delta& d : it->second) {
    graph::AttrMap& attrs =
        d.onNode ? host_.nodeAttrs(d.element) : host_.edgeAttrs(d.element);
    const graph::AttrValue* current = attrs.get(d.attr);
    const double base = current && current->isNumeric() ? current->asDouble() : 0.0;
    attrs.set(d.attr, base + d.amount);
    if (d.onNode) {
      lastDelta_.touchNode(d.element, d.attr);
    } else {
      lastDelta_.touchEdge(d.element, d.attr);
    }
  }
  lastDelta_.normalize();
  reservations_.erase(it);
  ++version_;
}

}  // namespace netembed::service
