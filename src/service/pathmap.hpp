#pragma once
// Many-to-one link->path mapping (paper §VIII "Current and Future Work":
// "mapping a link in the query network to a path in the real network").
//
// A query edge no longer needs a direct host edge; it needs a host *path*
// whose accumulated delay stays within the edge's budget. Node placement is
// searched LNS-style (grow a covered set, most-connected neighbour first)
// with the edge-feasibility predicate replaced by a shortest-path-distance
// test; per-source Dijkstra results are memoized across the search.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/search.hpp"
#include "expr/constraint.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace netembed::service {

struct PathMapOptions {
  /// Additive host edge metric (missing metric => edge weight 0).
  std::string delayAttr = "avgDelay";
  /// Query edge attribute holding the end-to-end delay budget.
  std::string budgetAttr = "pathDelayBudget";
  /// Optional node constraint (vNode/rNode objects); empty => none.
  std::string nodeConstraint;
  /// Reject paths longer than this many hops (0 = unlimited).
  std::size_t maxPathHops = 8;
  core::SearchOptions search;
};

struct PathEmbedding {
  bool feasible = false;
  core::Mapping nodes;
  /// Per query edge (indexed by EdgeId): host node path from the image of
  /// the edge source to the image of the edge target (>= 2 nodes).
  std::vector<std::vector<graph::NodeId>> edgePaths;
  /// Total host delay per query edge.
  std::vector<double> pathDelays;
  core::SearchStats stats;
};

/// Find one path-relaxed embedding (first match). Undirected graphs only.
[[nodiscard]] PathEmbedding embedWithPaths(const graph::Graph& query,
                                           const graph::Graph& host,
                                           const PathMapOptions& options = {});

}  // namespace netembed::service
