#include "service/optimize.hpp"

#include <limits>

#include "core/ecf.hpp"
#include "core/lns.hpp"
#include "core/rwb.hpp"

namespace netembed::service {

CostFn totalEdgeAttrCost(const graph::Graph& query, const graph::Graph& host,
                         std::string attr, double missingPenalty) {
  return [&query, &host, attr = std::move(attr), missingPenalty](
             const core::Mapping& m) {
    double total = 0.0;
    for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
      const auto he = host.findEdge(m[query.edgeSource(e)], m[query.edgeTarget(e)]);
      if (!he) {
        total += missingPenalty;
        continue;
      }
      total += host.edgeAttrs(*he).getDouble(attr, missingPenalty);
    }
    return total;
  };
}

CostFn totalNodeAttrCost(const graph::Graph& query, const graph::Graph& host,
                         std::string attr, double missingValue) {
  return [&query, &host, attr = std::move(attr), missingValue](const core::Mapping& m) {
    double total = 0.0;
    for (graph::NodeId q = 0; q < query.nodeCount(); ++q) {
      total += host.nodeAttrs(m[q]).getDouble(attr, missingValue);
    }
    return total;
  };
}

OptimizeResult enumerateAndOptimize(const core::Problem& problem,
                                    core::Algorithm algorithm,
                                    const core::SearchOptions& options,
                                    const CostFn& cost) {
  OptimizeResult out;
  out.bestCost = std::numeric_limits<double>::infinity();

  const core::SolutionSink sink = [&](const core::Mapping& m) {
    const double c = cost(m);
    if (c < out.bestCost) {
      out.bestCost = c;
      out.best = m;
    }
    return true;  // keep enumerating
  };

  switch (algorithm) {
    case core::Algorithm::ECF:
      out.search = core::ecfSearch(problem, options, sink);
      break;
    case core::Algorithm::RWB:
      out.search = core::rwbSearch(problem, options, sink);
      break;
    case core::Algorithm::LNS:
    case core::Algorithm::Naive:
      out.search = core::lnsSearch(problem, options, sink);
      break;
  }
  return out;
}

}  // namespace netembed::service
