#include "service/optimize.hpp"

#include <limits>
#include <mutex>

#include "core/engine.hpp"

namespace netembed::service {

CostFn totalEdgeAttrCost(const graph::Graph& query, const graph::Graph& host,
                         std::string attr, double missingPenalty) {
  return [&query, &host, attr = std::move(attr), missingPenalty](
             const core::Mapping& m) {
    double total = 0.0;
    for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
      const auto he = host.findEdge(m[query.edgeSource(e)], m[query.edgeTarget(e)]);
      if (!he) {
        total += missingPenalty;
        continue;
      }
      total += host.edgeAttrs(*he).getDouble(attr, missingPenalty);
    }
    return total;
  };
}

CostFn totalNodeAttrCost(const graph::Graph& query, const graph::Graph& host,
                         std::string attr, double missingValue) {
  return [&query, &host, attr = std::move(attr), missingValue](const core::Mapping& m) {
    double total = 0.0;
    for (graph::NodeId q = 0; q < query.nodeCount(); ++q) {
      total += host.nodeAttrs(m[q]).getDouble(attr, missingValue);
    }
    return total;
  };
}

OptimizeResult enumerateAndOptimize(const core::Problem& problem,
                                    core::Algorithm algorithm,
                                    const core::SearchOptions& options,
                                    const CostFn& cost) {
  OptimizeResult out;
  out.bestCost = std::numeric_limits<double>::infinity();

  // Sinks may run concurrently under root-split; the cost evaluation stays
  // lock-free, only the best-so-far update is guarded.
  std::mutex bestMutex;
  const core::SolutionSink sink = [&](const core::Mapping& m) {
    const double c = cost(m);
    std::lock_guard lock(bestMutex);
    if (c < out.bestCost) {
      out.bestCost = c;
      out.best = m;
    }
    return true;  // keep enumerating
  };

  out.search = core::runSearch(algorithm, problem, options, sink);
  return out;
}

}  // namespace netembed::service
