#include "service/service.hpp"

#include <sstream>

#include "core/ecf.hpp"
#include "core/lns.hpp"
#include "core/rwb.hpp"
#include "topo/sample.hpp"

namespace netembed::service {

using core::Algorithm;

EmbedResponse NetEmbedService::submit(const EmbedRequest& request) const {
  const expr::ConstraintSet constraints =
      expr::ConstraintSet::parse(request.edgeConstraint, request.nodeConstraint);
  const core::Problem problem(request.query, model_.host(), constraints);
  problem.validate();

  const bool wantAll = request.options.maxSolutions != 1;
  const Algorithm algorithm =
      request.algorithm.value_or(chooseAlgorithm(request.query, model_.host(), wantAll));

  EmbedResponse response;
  response.algorithmUsed = algorithm;
  response.modelVersion = model_.version();
  switch (algorithm) {
    case Algorithm::ECF:
      response.result = core::ecfSearch(problem, request.options);
      break;
    case Algorithm::RWB:
      response.result = core::rwbSearch(problem, request.options);
      break;
    case Algorithm::LNS:
    case Algorithm::Naive:  // the service never auto-picks Naive; map it to LNS
      response.result = core::lnsSearch(problem, request.options);
      break;
  }

  std::ostringstream diag;
  diag << core::algorithmName(algorithm) << ": " << core::outcomeName(response.result.outcome)
       << ", " << response.result.solutionCount << " mapping(s), "
       << response.result.stats.searchMs << " ms";
  response.diagnostics = diag.str();
  return response;
}

Algorithm NetEmbedService::chooseAlgorithm(const graph::Graph& query,
                                           const graph::Graph& host, bool wantAll) {
  // Dense hosts (overlays are near-cliques) defeat the stage-1 filters'
  // pruning and can blow up their memory; LNS is the paper's answer there.
  const bool denseHost = host.density() > 0.2;
  // Dense/regular queries (cliques and friends) also favor LNS for
  // first-match per §VII-D.
  const bool denseQuery = query.density() > 0.5 && query.nodeCount() >= 4;
  if (!wantAll && (denseHost || denseQuery)) return Algorithm::LNS;
  if (wantAll) return Algorithm::ECF;
  return Algorithm::RWB;
}

NetEmbedService::NegotiationResult NetEmbedService::negotiate(
    const EmbedRequest& request, double step, double maxTolerance) const {
  NegotiationResult out;
  for (double tolerance = 0.0; tolerance <= maxTolerance + 1e-12; tolerance += step) {
    EmbedRequest attempt = request;
    if (tolerance > 0.0) topo::widenDelayWindows(attempt.query, tolerance);
    ++out.rounds;
    out.response = submit(attempt);
    if (out.response.result.feasible()) {
      out.feasible = true;
      out.toleranceUsed = tolerance;
      return out;
    }
    if (step <= 0.0) break;  // single round when no widening step given
  }
  return out;
}

std::optional<NetEmbedService::Allocation> NetEmbedService::allocateFirstFeasible(
    const EmbedRequest& request, const NetworkModel::ReservationSpec& spec) {
  EmbedRequest firstOnly = request;
  firstOnly.options.maxSolutions = 1;
  const EmbedResponse response = submit(firstOnly);
  if (!response.result.feasible() || response.result.mappings.empty()) {
    return std::nullopt;
  }
  const core::Mapping& mapping = response.result.mappings.front();
  const NetworkModel::ReservationId id = model_.reserve(request.query, mapping, spec);
  return Allocation{id, mapping};
}

}  // namespace netembed::service
