#include "service/service.hpp"

#include <atomic>
#include <sstream>
#include <thread>

#include "core/engine.hpp"
#include "core/filter.hpp"
#include "core/portfolio.hpp"
#include "topo/sample.hpp"
#include "util/fault.hpp"

namespace netembed::service {

using core::Algorithm;

namespace detail {

namespace {

/// Fold the request's QoS compute budgets into the search options: each
/// budget tightens (never widens) the corresponding limit, so a QoS block
/// can only make a request cheaper than its bare options.
core::SearchOptions applyQosBudgets(core::SearchOptions options, const QoS& qos) {
  if (qos.computeBudget.count() > 0 &&
      (options.timeout.count() <= 0 || qos.computeBudget < options.timeout)) {
    options.timeout = qos.computeBudget;
  }
  if (qos.visitBudget != 0 &&
      (options.visitBudget == 0 || qos.visitBudget < options.visitBudget)) {
    options.visitBudget = qos.visitBudget;
  }
  return options;
}

std::atomic<std::uint64_t> gCacheBypassFallbacks{0};

/// Does this failure look like the shared stage-1 plan build (not the search
/// itself) died? Only these earn the cache-bypass rung: a mid-search engine
/// failure re-run under a private plan would just fail mid-search again, and
/// classifying it here would double-run searches the ticket retry layer
/// already re-dispatches with backoff.
bool isPlanBuildFailure(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const core::FilterBuildCancelled&) {
    // Genuine cancels resolve as partial results inside the engines; one
    // escaping to here is spurious (injected or a misbehaving predicate).
    return true;
  } catch (const std::bad_alloc&) {
    return true;
  } catch (const util::InjectedFault& fault) {
    return fault.site() == util::faultsite::kPlanBuild ||
           fault.site() == util::faultsite::kPlanPatch;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::uint64_t cacheBypassFallbacks() noexcept {
  return gCacheBypassFallbacks.load(std::memory_order_relaxed);
}

EmbedResponse executeEmbed(const EmbedRequest& request, const graph::Graph& host,
                           std::uint64_t version, bool allowPortfolioEscalation,
                           FilterPlanCache* cache, const core::SolutionSink& sink,
                           std::stop_token stopToken) {
  const expr::ConstraintSet constraints =
      expr::ConstraintSet::parse(request.edgeConstraint, request.nodeConstraint);
  const core::Problem problem(request.query, host, constraints);
  problem.validate();

  const core::SearchOptions qosOptions =
      applyQosBudgets(request.options, request.qos);
  const bool wantAll = request.options.maxSolutions != 1;
  const Algorithm predicted =
      NetEmbedService::chooseAlgorithm(request.query, host, wantAll);
  Algorithm algorithm = request.algorithm.value_or(predicted);
  // Escalation: first-match auto-selected queries race the portfolio when
  // the hardware has headroom — §VIII's guidance is a heuristic, the race
  // is ground truth. Two exceptions keep the heuristic's safeguards intact:
  // a caller who explicitly asked for root-split parallelism keeps it
  // (contenders run serial inside the race), and a first-match LNS pick
  // stands — it fires exactly when the instance is dense enough that the
  // filtered contenders would burn memory on doomed stage-1 builds.
  if (allowPortfolioEscalation && !request.algorithm.has_value() && !wantAll &&
      predicted != Algorithm::LNS &&
      request.options.rootSplitThreads == 1 &&
      std::thread::hardware_concurrency() > 1) {
    algorithm = Algorithm::Portfolio;
  }

  // Filtered searches share stage-1 plans: acquire the builder for this
  // (version, signature) so identical queries — and the ECF/RWB contenders
  // inside one portfolio race — build at most once per model version.
  std::shared_ptr<core::SharedPlanBuilder> builder;
  const bool usesPlan = algorithm == Algorithm::ECF ||
                        algorithm == Algorithm::RWB ||
                        algorithm == Algorithm::Portfolio;
  if (cache && cache->enabled() && usesPlan) {
    builder = cache->acquire(
        version, planSignature(request.query, request.edgeConstraint,
                               request.nodeConstraint, qosOptions));
  }

  EmbedResponse response;
  response.algorithmUsed = algorithm;
  response.modelVersion = version;
  std::string prefix;
  // The run body, parameterized on the plan source so it can execute twice:
  // once against the shared cache builder, and — when that attempt fails
  // transiently — once more with a private direct build (cache bypass, the
  // first rung of the degradation ladder). stopToken is copied, not moved:
  // both attempts must observe the same external cancel.
  const auto runOnce =
      [&](const std::shared_ptr<core::SharedPlanBuilder>& planSource) {
        std::ostringstream head;
        if (algorithm == Algorithm::Portfolio) {
          // Spawn the §VIII-predicted engine first: the static heuristic
          // still buys latency while the race guarantees the outcome.
          core::SearchContext parent(qosOptions, sink, stopToken);
          parent.setPlanBuilder(planSource);  // null => the race makes its own
          const core::PortfolioResult race = core::portfolioSearch(
              problem, parent, core::defaultContenders(qosOptions, predicted));
          response.result = race.result;
          // Report the engine whose answer the caller is holding.
          response.algorithmUsed =
              race.raceDecided ? race.winner : algorithm;
          head << race.summary() << ": ";
        } else {
          const core::Engine& engine = core::engineFor(algorithm);
          core::SearchContext context(engine.effectiveOptions(qosOptions), sink,
                                      stopToken);
          context.setPlanBuilder(planSource);
          response.result = engine.run(problem, context);
          head << core::algorithmName(algorithm) << ": ";
        }
        prefix = head.str();
      };
  bool cacheBypassed = false;
  try {
    runOnce(builder);
  } catch (const core::FilterOverflow&) {
    // Deterministic space blow-up: a private rebuild would only blow up
    // again. Not a degradation candidate.
    throw;
  } catch (...) {
    // Transient plan-build failure while the shared builder was in play
    // (injected plan-build fault, allocation failure, spurious
    // cancellation): degrade to a cache-bypass direct build instead of
    // failing the request. A genuinely cancelled run is not retried —
    // honoring the cancel beats finishing the work.
    if (!builder || !isPlanBuildFailure(std::current_exception()) ||
        (stopToken.stop_possible() && stopToken.stop_requested())) {
      throw;
    }
    gCacheBypassFallbacks.fetch_add(1, std::memory_order_relaxed);
    cacheBypassed = true;
    runOnce(nullptr);
  }
  std::ostringstream diag;
  diag << prefix << core::outcomeName(response.result.outcome) << ", "
       << response.result.solutionCount << " mapping(s), "
       << response.result.stats.searchMs << " ms";
  if (cacheBypassed) diag << " [plan cache bypassed after transient failure]";
  response.diagnostics = diag.str();
  return response;
}

}  // namespace detail

EmbedResponse NetEmbedService::submit(const EmbedRequest& request) const {
  return detail::executeEmbed(request, model_.host(), model_.version(),
                              /*allowPortfolioEscalation=*/true, &planCache_);
}

Algorithm NetEmbedService::chooseAlgorithm(const graph::Graph& query,
                                           const graph::Graph& host, bool wantAll) {
  // Dense hosts (overlays are near-cliques) defeat the stage-1 filters'
  // pruning and can blow up their memory; LNS is the paper's answer there.
  const bool denseHost = host.density() > 0.2;
  // Dense/regular queries (cliques and friends) also favor LNS for
  // first-match per §VII-D.
  const bool denseQuery = query.density() > 0.5 && query.nodeCount() >= 4;
  if (!wantAll && (denseHost || denseQuery)) return Algorithm::LNS;
  if (wantAll) return Algorithm::ECF;
  return Algorithm::RWB;
}

NetEmbedService::NegotiationResult NetEmbedService::negotiate(
    const EmbedRequest& request, double step, double maxTolerance) const {
  NegotiationResult out;
  for (double tolerance = 0.0; tolerance <= maxTolerance + 1e-12; tolerance += step) {
    EmbedRequest attempt = request;
    if (tolerance > 0.0) topo::widenDelayWindows(attempt.query, tolerance);
    ++out.rounds;
    out.response = submit(attempt);
    if (out.response.result.feasible()) {
      out.feasible = true;
      out.toleranceUsed = tolerance;
      return out;
    }
    if (step <= 0.0) break;  // single round when no widening step given
  }
  return out;
}

std::optional<NetEmbedService::Allocation> NetEmbedService::allocateFirstFeasible(
    const EmbedRequest& request, const NetworkModel::ReservationSpec& spec) {
  EmbedRequest firstOnly = request;
  firstOnly.options.maxSolutions = 1;
  const EmbedResponse response = submit(firstOnly);
  if (!response.result.feasible() || response.result.mappings.empty()) {
    return std::nullopt;
  }
  const core::Mapping& mapping = response.result.mappings.front();
  const NetworkModel::ReservationId id = model_.reserve(request.query, mapping, spec);
  return Allocation{id, mapping};
}

}  // namespace netembed::service
