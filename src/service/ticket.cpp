#include "service/ticket.hpp"

#include <optional>

namespace netembed::service {

namespace detail {

namespace {

/// Claim the single resolution. nullopt when someone else already resolved;
/// otherwise whether a ticket cancel had been requested at the moment the
/// outcome was sealed. Deciding Cancelled-vs-Done under the same mutex
/// cancelTicket reads `resolved` through makes the two agree: a cancel()
/// that returned true is always visible to the claim, so its request can
/// never resolve plain Done.
std::optional<bool> claimResolution(TicketState& state) {
  std::lock_guard lock(state.mutex);
  if (state.resolved) return std::nullopt;
  state.resolved = true;
  // The queue-removal hook references the submitting service's scheduler; a
  // resolved ticket must never call it again (it may outlive the service).
  state.tryDequeue = nullptr;
  return state.stop.stop_requested();
}

void fireOnComplete(TicketState& state, const EmbedResponse& response,
                    std::exception_ptr error) {
  if (!state.callbacks.onComplete) return;
  try {
    state.callbacks.onComplete(response, error);
  } catch (...) {
    // The callback contract says it must not throw; swallowing protects the
    // resolving thread (a queue worker or the canceller).
  }
}

}  // namespace

void resolveResponse(TicketState& state, EmbedResponse response) {
  const std::optional<bool> cancelled = claimResolution(state);
  if (!cancelled) return;
  if (*cancelled && response.status != RequestStatus::Cancelled) {
    response.status = RequestStatus::Cancelled;
    response.diagnostics += " [ticket cancelled]";
  }
  state.status.store(response.status, std::memory_order_release);
  if (state.callbacks.onComplete) {
    state.promise.set_value(response);  // copy: the callback still needs it
    fireOnComplete(state, response, nullptr);
  } else {
    state.promise.set_value(std::move(response));
  }
}

void resolveError(TicketState& state, std::exception_ptr error) {
  if (!claimResolution(state)) return;
  state.status.store(RequestStatus::Failed, std::memory_order_release);
  state.promise.set_exception(error);
  EmbedResponse placeholder;
  placeholder.status = RequestStatus::Failed;
  fireOnComplete(state, placeholder, error);
}

void resolveDropped(TicketState& state, RequestStatus status,
                    std::string diagnostics) {
  EmbedResponse response;
  response.status = status;
  response.diagnostics = std::move(diagnostics);
  resolveResponse(state, std::move(response));
}

bool cancelTicket(TicketState& state) {
  // Stop first: if the request is mid-search (or mid-filter-build) the
  // SearchContext's external token picks this up at the next cooperative
  // poll, and if it is dequeued concurrently with the cancel, runTicketed's
  // pre-dispatch check resolves it Cancelled without running the engine.
  state.stop.request_stop();
  std::function<bool()> tryDequeue;
  {
    std::lock_guard lock(state.mutex);
    // Sealed already (under this same mutex): the outcome cannot reflect
    // this cancel, so report that it missed.
    if (state.resolved) return false;
    tryDequeue = state.tryDequeue;
  }
  // Still live at the seal point above, and our request_stop precedes any
  // later claim: the eventual resolution is guaranteed to record Cancelled.
  // Pulling a still-queued request out of the admission queue just resolves
  // it now instead of at dispatch.
  if (tryDequeue) (void)tryDequeue();
  return true;
}

void runTicketed(const std::shared_ptr<TicketState>& state,
                 const EmbedRequest& request, const graph::Graph& host,
                 std::uint64_t version, bool allowPortfolioEscalation,
                 FilterPlanCache* cache) {
  if (state->stop.stop_requested()) {
    // Cancelled between admission and dispatch (the fix for the leaked
    // never-satisfied promise): resolve instead of running.
    resolveDropped(*state, RequestStatus::Cancelled,
                   "cancelled before dispatch");
    return;
  }
  state->status.store(RequestStatus::Running, std::memory_order_release);
  // The streaming hook: every admitted solution flows out while the search
  // runs. The wrapper counts even without a user callback so
  // solutionsStreamed() always reports admissions.
  const core::SolutionSink sink = [state](const core::Mapping& mapping) {
    state->streamed.fetch_add(1, std::memory_order_relaxed);
    const core::SolutionSink& user = state->callbacks.onSolution;
    return user ? user(mapping) : true;
  };
  try {
    EmbedResponse response =
        detail::executeEmbed(request, host, version, allowPortfolioEscalation,
                             cache, sink, state->stop.get_token());
    // Cancelled-vs-Done is decided inside resolveResponse, under the same
    // lock cancelTicket synchronizes on — no window where a cancel that
    // reported success resolves plain Done.
    resolveResponse(*state, std::move(response));
  } catch (...) {
    resolveError(*state, std::current_exception());
  }
}

}  // namespace detail

RequestStatus SubmitTicket::status() const noexcept {
  if (!state_) return RequestStatus::Failed;
  return state_->status.load(std::memory_order_acquire);
}

bool SubmitTicket::cancel() {
  if (!state_) return false;
  return detail::cancelTicket(*state_);
}

std::uint64_t SubmitTicket::solutionsStreamed() const noexcept {
  if (!state_) return 0;
  return state_->streamed.load(std::memory_order_relaxed);
}

std::future<EmbedResponse>& SubmitTicket::futureRef() {
  if (!state_) {
    // Same error an operation on a default-constructed std::future raises.
    throw std::future_error(std::future_errc::no_state);
  }
  return state_->future;
}

SubmitTicket NetEmbedService::submitTicketed(EmbedRequest request,
                                             TicketCallbacks callbacks) const {
  auto state = std::make_shared<detail::TicketState>(std::move(callbacks));
  // Snapshot the host on the submitting thread: the runner searches the
  // copy, so the caller may keep mutating the live model (reservations,
  // measurements) while the ticket is outstanding — same isolation the
  // async service gets from its COW snapshots. The plan cache is internally
  // synchronized and version-keyed, so a concurrent bump simply bypasses it.
  auto host = std::make_shared<const graph::Graph>(model_.host());
  const std::uint64_t version = model_.version();
  SubmitTicket ticket(state);
  ticket.runner_ = std::jthread(
      [this, state, host = std::move(host), version,
       request = std::move(request)](std::stop_token st) {
        // Chain the jthread's own stop (ticket destruction / reassignment)
        // into the ticket's stop source so both cancel paths converge on the
        // SearchContext's external token.
        std::stop_callback chain(st, [&state] { state->stop.request_stop(); });
        detail::runTicketed(state, request, *host, version,
                            /*allowPortfolioEscalation=*/true, &planCache_);
      });
  return ticket;
}

}  // namespace netembed::service
