#include "service/ticket.hpp"

#include <condition_variable>
#include <deque>
#include <optional>

namespace netembed::service {

namespace detail {

namespace {

/// Bounded hand-off between the search thread(s) admitting mappings and one
/// per-ticket consumer thread delivering them to the user's onSolution. The
/// point: a slow consumer must not park the scheduler worker that happens to
/// be running this request's search (Block throttles only this request's
/// *search*; DropOldest doesn't even do that). Single consumer => deliveries
/// are sequential and in admission order, and closeAndJoin() guarantees the
/// last delivery happens-before the ticket resolves.
class SolutionBuffer {
 public:
  SolutionBuffer(TicketState& state, std::size_t capacity,
                 SolutionBufferPolicy policy)
      : state_(state),
        capacity_(std::max<std::size_t>(capacity, 1)),
        policy_(policy),
        consumer_([this] { consumerLoop(); }) {}

  ~SolutionBuffer() { closeAndJoin(); }

  /// Producer side (the engine's SolutionSink; may be called concurrently
  /// under root split). Returns false once the consumer asked the search to
  /// stop (user sink returned false).
  bool push(const core::Mapping& mapping) {
    std::unique_lock lock(mutex_);
    if (policy_ == SolutionBufferPolicy::Block) {
      spaceCv_.wait(lock, [&] {
        return buffer_.size() < capacity_ || stopStream_ || closed_;
      });
    } else if (buffer_.size() >= capacity_) {
      buffer_.pop_front();
      state_.droppedSolutions.fetch_add(1, std::memory_order_relaxed);
    }
    if (stopStream_ || closed_) return false;
    buffer_.push_back(mapping);
    itemsCv_.notify_one();
    return true;
  }

  /// Flush the remaining buffer through onSolution and join the consumer.
  /// Idempotent; must complete before the ticket resolves.
  void closeAndJoin() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      itemsCv_.notify_all();
      spaceCv_.notify_all();
    }
    if (consumer_.joinable()) consumer_.join();
  }

 private:
  void consumerLoop() {
    std::unique_lock lock(mutex_);
    for (;;) {
      itemsCv_.wait(lock, [&] { return !buffer_.empty() || closed_; });
      if (buffer_.empty()) return;  // closed and drained
      if (stopStream_) {
        // The user declined further solutions: whatever is still buffered
        // will never be delivered — account it as dropped and stop.
        state_.droppedSolutions.fetch_add(buffer_.size(),
                                          std::memory_order_relaxed);
        buffer_.clear();
        spaceCv_.notify_all();
        return;
      }
      core::Mapping mapping = std::move(buffer_.front());
      buffer_.pop_front();
      spaceCv_.notify_one();
      lock.unlock();
      state_.streamed.fetch_add(1, std::memory_order_relaxed);
      bool keepGoing = true;
      const core::SolutionSink& user = state_.callbacks.onSolution;
      if (user) {
        try {
          keepGoing = user(mapping);
        } catch (...) {
          // SolutionSink is not supposed to throw; treat a throw as "stop".
          keepGoing = false;
        }
      }
      lock.lock();
      if (!keepGoing) {
        stopStream_ = true;  // producers see false from the next push
        spaceCv_.notify_all();
      }
    }
  }

  TicketState& state_;
  const std::size_t capacity_;
  const SolutionBufferPolicy policy_;
  std::mutex mutex_;
  std::condition_variable itemsCv_;  // consumer: "a mapping is buffered"
  std::condition_variable spaceCv_;  // Block producers: "a slot freed up"
  std::deque<core::Mapping> buffer_;
  bool closed_ = false;      // no more pushes; drain and exit
  bool stopStream_ = false;  // user sink said stop; pushes return false
  std::thread consumer_;
};

/// Claim the single resolution. nullopt when someone else already resolved;
/// otherwise whether a ticket cancel had been requested at the moment the
/// outcome was sealed. Deciding Cancelled-vs-Done under the same mutex
/// cancelTicket reads `resolved` through makes the two agree: a cancel()
/// that returned true is always visible to the claim, so its request can
/// never resolve plain Done.
std::optional<bool> claimResolution(TicketState& state) {
  std::lock_guard lock(state.mutex);
  if (state.resolved) return std::nullopt;
  state.resolved = true;
  // The queue-removal hook references the submitting service's scheduler; a
  // resolved ticket must never call it again (it may outlive the service).
  state.tryDequeue = nullptr;
  return state.stop.stop_requested();
}

void fireOnComplete(TicketState& state, const EmbedResponse& response,
                    std::exception_ptr error) {
  if (!state.callbacks.onComplete) return;
  try {
    state.callbacks.onComplete(response, error);
  } catch (...) {
    // The callback contract says it must not throw; swallowing protects the
    // resolving thread (a queue worker or the canceller).
  }
}

}  // namespace

void resolveResponse(TicketState& state, EmbedResponse response) {
  const std::optional<bool> cancelled = claimResolution(state);
  if (!cancelled) return;
  if (*cancelled && response.status != RequestStatus::Cancelled) {
    response.status = RequestStatus::Cancelled;
    response.diagnostics += " [ticket cancelled]";
  }
  state.status.store(response.status, std::memory_order_release);
  if (state.callbacks.onComplete) {
    state.promise.set_value(response);  // copy: the callback still needs it
    fireOnComplete(state, response, nullptr);
  } else {
    state.promise.set_value(std::move(response));
  }
}

void resolveError(TicketState& state, std::exception_ptr error) {
  if (!claimResolution(state)) return;
  state.status.store(RequestStatus::Failed, std::memory_order_release);
  state.promise.set_exception(error);
  EmbedResponse placeholder;
  placeholder.status = RequestStatus::Failed;
  fireOnComplete(state, placeholder, error);
}

void resolveDropped(TicketState& state, RequestStatus status,
                    std::string diagnostics) {
  EmbedResponse response;
  response.status = status;
  response.diagnostics = std::move(diagnostics);
  resolveResponse(state, std::move(response));
}

bool cancelTicket(TicketState& state) {
  // Stop first: if the request is mid-search (or mid-filter-build) the
  // SearchContext's external token picks this up at the next cooperative
  // poll, and if it is dequeued concurrently with the cancel, runTicketed's
  // pre-dispatch check resolves it Cancelled without running the engine.
  state.stop.request_stop();
  std::function<bool()> tryDequeue;
  {
    std::lock_guard lock(state.mutex);
    // Sealed already (under this same mutex): the outcome cannot reflect
    // this cancel, so report that it missed.
    if (state.resolved) return false;
    tryDequeue = state.tryDequeue;
  }
  // Still live at the seal point above, and our request_stop precedes any
  // later claim: the eventual resolution is guaranteed to record Cancelled.
  // Pulling a still-queued request out of the admission queue just resolves
  // it now instead of at dispatch.
  if (tryDequeue) (void)tryDequeue();
  return true;
}

void runTicketed(const std::shared_ptr<TicketState>& state,
                 const EmbedRequest& request, const graph::Graph& host,
                 std::uint64_t version, bool allowPortfolioEscalation,
                 FilterPlanCache* cache) {
  (void)runTicketedAttempt(state, request, host, version,
                           allowPortfolioEscalation, cache, /*slot=*/nullptr,
                           /*requeueOnPreempt=*/false);
}

RunOutcome runTicketedAttempt(const std::shared_ptr<TicketState>& state,
                              const EmbedRequest& request,
                              const graph::Graph& host, std::uint64_t version,
                              bool allowPortfolioEscalation,
                              FilterPlanCache* cache, PreemptSlot* slot,
                              bool requeueOnPreempt) {
  if (state->stop.stop_requested()) {
    // Cancelled between admission and dispatch (the fix for the leaked
    // never-satisfied promise): resolve instead of running.
    resolveDropped(*state, RequestStatus::Cancelled,
                   "cancelled before dispatch");
    return RunOutcome::Resolved;
  }
  state->status.store(RequestStatus::Running, std::memory_order_release);

  // The engine runs under the attempt's stop token when one exists: the
  // service can then stop *this run* (preemption) without poisoning the
  // ticket, while a genuine ticket cancel still propagates through the
  // chained callback.
  std::optional<std::stop_callback<std::function<void()>>> chain;
  std::stop_token token = state->stop.get_token();
  if (slot) {
    chain.emplace(state->stop.get_token(),
                  std::function<void()>(
                      [slot] { slot->attempt.request_stop(); }));
    token = slot->attempt.get_token();
  }

  // The streaming hook: every admitted solution flows out while the search
  // runs — inline from the search thread (historical default), or through a
  // bounded buffer + consumer thread when the ticket asked for backpressure
  // decoupling. The inline wrapper counts even without a user callback so
  // solutionsStreamed() always reports admissions.
  std::optional<SolutionBuffer> buffer;
  core::SolutionSink sink;
  if (state->callbacks.solutionBufferCapacity > 0) {
    buffer.emplace(*state, state->callbacks.solutionBufferCapacity,
                   state->callbacks.solutionBufferPolicy);
    SolutionBuffer* buf = &*buffer;
    sink = [buf](const core::Mapping& mapping) { return buf->push(mapping); };
  } else {
    sink = [state](const core::Mapping& mapping) {
      state->streamed.fetch_add(1, std::memory_order_relaxed);
      const core::SolutionSink& user = state->callbacks.onSolution;
      return user ? user(mapping) : true;
    };
  }

  try {
    EmbedResponse response = detail::executeEmbed(
        request, host, version, allowPortfolioEscalation, cache, sink, token);
    // Every buffered delivery happens-before the resolution below.
    if (buffer) buffer->closeAndJoin();
    const bool preempted = slot &&
                           slot->preempted.load(std::memory_order_acquire) &&
                           !state->stop.stop_requested();
    if (preempted && response.result.outcome != core::Outcome::Complete) {
      if (requeueOnPreempt) {
        // Hand the unresolved ticket back for re-admission: from the
        // holder's perspective it simply went back to waiting in the queue.
        state->status.store(RequestStatus::Queued, std::memory_order_release);
        return RunOutcome::RequeuePreempted;
      }
      response.status = RequestStatus::Preempted;
      response.diagnostics += " [preempted for higher-priority work]";
    }
    // Cancelled-vs-Done is decided inside resolveResponse, under the same
    // lock cancelTicket synchronizes on — no window where a cancel that
    // reported success resolves plain Done. (A preempt that raced a natural
    // completion — outcome Complete — resolves Done: the work is whole.)
    resolveResponse(*state, std::move(response));
  } catch (...) {
    if (buffer) buffer->closeAndJoin();
    resolveError(*state, std::current_exception());
  }
  return RunOutcome::Resolved;
}

}  // namespace detail

RequestStatus SubmitTicket::status() const noexcept {
  if (!state_) return RequestStatus::Failed;
  return state_->status.load(std::memory_order_acquire);
}

bool SubmitTicket::cancel() {
  if (!state_) return false;
  return detail::cancelTicket(*state_);
}

std::uint64_t SubmitTicket::solutionsStreamed() const noexcept {
  if (!state_) return 0;
  return state_->streamed.load(std::memory_order_relaxed);
}

std::uint64_t SubmitTicket::solutionsDropped() const noexcept {
  if (!state_) return 0;
  return state_->droppedSolutions.load(std::memory_order_relaxed);
}

std::future<EmbedResponse>& SubmitTicket::futureRef() {
  if (!state_) {
    // Same error an operation on a default-constructed std::future raises.
    throw std::future_error(std::future_errc::no_state);
  }
  return state_->future;
}

SubmitTicket NetEmbedService::submitTicketed(EmbedRequest request,
                                             TicketCallbacks callbacks) const {
  auto state = std::make_shared<detail::TicketState>(std::move(callbacks));
  // Snapshot the host on the submitting thread: the runner searches the
  // copy, so the caller may keep mutating the live model (reservations,
  // measurements) while the ticket is outstanding — same isolation the
  // async service gets from its COW snapshots. The plan cache is internally
  // synchronized and version-keyed, so a concurrent bump simply bypasses it.
  auto host = std::make_shared<const graph::Graph>(model_.host());
  const std::uint64_t version = model_.version();
  SubmitTicket ticket(state);
  ticket.runner_ = std::jthread(
      [this, state, host = std::move(host), version,
       request = std::move(request)](std::stop_token st) {
        // Chain the jthread's own stop (ticket destruction / reassignment)
        // into the ticket's stop source so both cancel paths converge on the
        // SearchContext's external token.
        std::stop_callback chain(st, [&state] { state->stop.request_stop(); });
        detail::runTicketed(state, request, *host, version,
                            /*allowPortfolioEscalation=*/true, &planCache_);
      });
  return ticket;
}

}  // namespace netembed::service
