#include "service/ticket.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <optional>

#include "expr/lexer.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netembed::service {

namespace detail {

namespace {

/// Bounded hand-off between the search thread(s) admitting mappings and one
/// per-ticket consumer thread delivering them to the user's onSolution. The
/// point: a slow consumer must not park the scheduler worker that happens to
/// be running this request's search (Block throttles only this request's
/// *search*; DropOldest doesn't even do that). Single consumer => deliveries
/// are sequential and in admission order, and closeAndJoin() guarantees the
/// last delivery happens-before the ticket resolves.
class SolutionBuffer {
 public:
  SolutionBuffer(TicketState& state, std::size_t capacity,
                 SolutionBufferPolicy policy)
      : state_(state),
        capacity_(std::max<std::size_t>(capacity, 1)),
        policy_(policy),
        consumer_([this] { consumerLoop(); }) {}

  ~SolutionBuffer() { closeAndJoin(); }

  /// Producer side (the engine's SolutionSink; may be called concurrently
  /// under root split). Returns false once the consumer asked the search to
  /// stop (user sink returned false).
  bool push(const core::Mapping& mapping) {
    std::unique_lock lock(mutex_);
    if (policy_ == SolutionBufferPolicy::Block) {
      spaceCv_.wait(lock, [&] {
        return buffer_.size() < capacity_ || stopStream_ || closed_;
      });
    } else if (buffer_.size() >= capacity_) {
      buffer_.pop_front();
      state_.droppedSolutions.fetch_add(1, std::memory_order_relaxed);
    }
    if (stopStream_ || closed_) return false;
    buffer_.push_back(mapping);
    itemsCv_.notify_one();
    return true;
  }

  /// Flush the remaining buffer through onSolution and join the consumer.
  /// Idempotent; must complete before the ticket resolves.
  void closeAndJoin() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      itemsCv_.notify_all();
      spaceCv_.notify_all();
    }
    if (consumer_.joinable()) consumer_.join();
  }

 private:
  void consumerLoop() {
    std::unique_lock lock(mutex_);
    for (;;) {
      itemsCv_.wait(lock, [&] { return !buffer_.empty() || closed_; });
      if (buffer_.empty()) return;  // closed and drained
      if (stopStream_) {
        // The user declined further solutions: whatever is still buffered
        // will never be delivered — account it as dropped and stop.
        state_.droppedSolutions.fetch_add(buffer_.size(),
                                          std::memory_order_relaxed);
        buffer_.clear();
        spaceCv_.notify_all();
        return;
      }
      core::Mapping mapping = std::move(buffer_.front());
      buffer_.pop_front();
      spaceCv_.notify_one();
      lock.unlock();
      state_.streamed.fetch_add(1, std::memory_order_relaxed);
      bool keepGoing = true;
      const core::SolutionSink& user = state_.callbacks.onSolution;
      if (user) {
        try {
          // Slow/throwing-consumer probe, inside the try: an injected
          // consumer fault takes the same counted stop path a real one does.
          if (util::FaultInjector::enabled()) {
            util::faultPoint(util::faultsite::kTicketConsumer);
          }
          keepGoing = user(mapping);
        } catch (...) {
          // SolutionSink is not supposed to throw; count it (sinkErrors) and
          // treat it as "stop" — the search continues, streaming ends.
          state_.sinkErrors.fetch_add(1, std::memory_order_relaxed);
          keepGoing = false;
        }
      }
      lock.lock();
      if (!keepGoing) {
        stopStream_ = true;  // producers see false from the next push
        spaceCv_.notify_all();
      }
    }
  }

  TicketState& state_;
  const std::size_t capacity_;
  const SolutionBufferPolicy policy_;
  std::mutex mutex_;
  std::condition_variable itemsCv_;  // consumer: "a mapping is buffered"
  std::condition_variable spaceCv_;  // Block producers: "a slot freed up"
  std::deque<core::Mapping> buffer_;
  bool closed_ = false;      // no more pushes; drain and exit
  bool stopStream_ = false;  // user sink said stop; pushes return false
  std::thread consumer_;
};

/// Claim the single resolution. nullopt when someone else already resolved;
/// otherwise whether a ticket cancel had been requested at the moment the
/// outcome was sealed. Deciding Cancelled-vs-Done under the same mutex
/// cancelTicket reads `resolved` through makes the two agree: a cancel()
/// that returned true is always visible to the claim, so its request can
/// never resolve plain Done.
std::optional<bool> claimResolution(TicketState& state) {
  std::lock_guard lock(state.mutex);
  if (state.resolved) return std::nullopt;
  state.resolved = true;
  // The queue-removal hook references the submitting service's scheduler; a
  // resolved ticket must never call it again (it may outlive the service).
  state.tryDequeue = nullptr;
  return state.stop.stop_requested();
}

void fireOnComplete(TicketState& state, const EmbedResponse& response,
                    std::exception_ptr error) {
  if (!state.callbacks.onComplete) return;
  try {
    state.callbacks.onComplete(response, error);
  } catch (...) {
    // The callback contract says it must not throw; swallowing protects the
    // resolving thread (a queue worker or the canceller).
  }
}

}  // namespace

void resolveResponse(TicketState& state, EmbedResponse response) {
  const std::optional<bool> cancelled = claimResolution(state);
  if (!cancelled) return;
  if (*cancelled && response.status != RequestStatus::Cancelled) {
    response.status = RequestStatus::Cancelled;
    response.diagnostics += " [ticket cancelled]";
  }
  state.status.store(response.status, std::memory_order_release);
  if (state.callbacks.onComplete) {
    state.promise.set_value(response);  // copy: the callback still needs it
    fireOnComplete(state, response, nullptr);
  } else {
    state.promise.set_value(std::move(response));
  }
}

std::string describeError(std::exception_ptr error) {
  if (!error) return {};
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown non-standard exception";
  }
}

bool isPermanentError(std::exception_ptr error) noexcept {
  if (!error) return false;
  try {
    std::rethrow_exception(error);
  } catch (const expr::SyntaxError&) {
    return true;  // bad constraint source: every retry re-parses the same text
  } catch (const std::invalid_argument&) {
    return true;  // malformed problem/options: deterministic validation
  } catch (...) {
    return false;  // injected fault, allocation, engine exception, overflow...
  }
}

std::chrono::milliseconds nextRetryBackoff(const RetryPolicy& policy,
                                           std::uint64_t seed,
                                           TicketState& state) {
  using std::chrono::milliseconds;
  const auto base = std::max<milliseconds>(policy.baseBackoff, milliseconds(1));
  const auto cap = std::max<milliseconds>(policy.maxBackoff, base);
  std::lock_guard lock(state.mutex);
  const auto prev = std::max<milliseconds>(state.lastBackoff, base);
  // Decorrelated jitter: next = min(cap, base + uniform[0, prev*3 - base]).
  // Deterministic per (seed, attempt) so chaos schedules replay exactly.
  const std::uint32_t attempt = state.attempts.load(std::memory_order_relaxed);
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (attempt + 1)));
  const auto spanMs = static_cast<std::uint64_t>((prev * 3 - base).count()) + 1;
  auto next = base + milliseconds(rng.uniformInt(0, spanMs - 1));
  next = std::min(next, cap);
  state.lastBackoff = next;
  return next;
}

void resolveError(TicketState& state, std::exception_ptr error,
                  std::uint64_t version) {
  if (!claimResolution(state)) return;
  state.status.store(RequestStatus::Failed, std::memory_order_release);
  state.promise.set_exception(error);
  // The placeholder is attributable, not empty: model version, attempts
  // consumed, and the partial work the failed attempts measured — an
  // onComplete observer can bill the failure without touching the future.
  EmbedResponse placeholder;
  placeholder.status = RequestStatus::Failed;
  placeholder.modelVersion = version;
  placeholder.attempts =
      std::max<std::uint32_t>(state.attempts.load(std::memory_order_relaxed), 1);
  {
    std::lock_guard lock(state.mutex);
    state.errorText = describeError(error);
    state.lastError = error;
    placeholder.result.stats = state.carriedStats;
    placeholder.result.outcome = core::Outcome::Inconclusive;
    placeholder.result.solutionCount =
        state.streamed.load(std::memory_order_relaxed);
    placeholder.diagnostics = "failed: " + state.errorText;
  }
  fireOnComplete(state, placeholder, error);
}

void resolveDropped(TicketState& state, RequestStatus status,
                    std::string diagnostics) {
  EmbedResponse response;
  response.status = status;
  response.diagnostics = std::move(diagnostics);
  resolveResponse(state, std::move(response));
}

bool cancelTicket(TicketState& state) {
  // Stop first: if the request is mid-search (or mid-filter-build) the
  // SearchContext's external token picks this up at the next cooperative
  // poll, and if it is dequeued concurrently with the cancel, runTicketed's
  // pre-dispatch check resolves it Cancelled without running the engine.
  state.stop.request_stop();
  std::function<bool()> tryDequeue;
  {
    std::lock_guard lock(state.mutex);
    // Sealed already (under this same mutex): the outcome cannot reflect
    // this cancel, so report that it missed.
    if (state.resolved) return false;
    tryDequeue = state.tryDequeue;
  }
  // Still live at the seal point above, and our request_stop precedes any
  // later claim: the eventual resolution is guaranteed to record Cancelled.
  // Pulling a still-queued request out of the admission queue just resolves
  // it now instead of at dispatch.
  if (tryDequeue) (void)tryDequeue();
  return true;
}

void runTicketed(const std::shared_ptr<TicketState>& state,
                 const EmbedRequest& request, const graph::Graph& host,
                 std::uint64_t version, bool allowPortfolioEscalation,
                 FilterPlanCache* cache) {
  (void)runTicketedAttempt(state, request, host, version,
                           allowPortfolioEscalation, cache, /*slot=*/nullptr,
                           /*requeueOnPreempt=*/false);
}

RunOutcome runTicketedAttempt(const std::shared_ptr<TicketState>& state,
                              const EmbedRequest& request,
                              const graph::Graph& host, std::uint64_t version,
                              bool allowPortfolioEscalation,
                              FilterPlanCache* cache, PreemptSlot* slot,
                              bool requeueOnPreempt, bool allowRetry) {
  if (state->stop.stop_requested()) {
    // Cancelled between admission and dispatch (the fix for the leaked
    // never-satisfied promise): resolve instead of running.
    resolveDropped(*state, RequestStatus::Cancelled,
                   "cancelled before dispatch");
    return RunOutcome::Resolved;
  }
  const bool retryEnabled = allowRetry && request.qos.retry.maxAttempts > 1;
  const std::uint32_t attempt =
      state->attempts.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t maxSolutions = request.options.maxSolutions;
  // Admissions earlier attempts already streamed to the user: the dedup line
  // for exactly-once delivery on a retry.
  std::uint64_t carried = 0;
  if (retryEnabled && attempt > 1) {
    std::lock_guard lock(state->mutex);
    carried = state->carriedAdmissions;
  }
  if (retryEnabled && attempt > 1 && maxSolutions != 0 &&
      carried >= maxSolutions) {
    // Solution-count floor: the failed attempt had already admitted (and
    // streamed) every requested solution before it died — resolve from the
    // carry instead of burning a whole re-search.
    EmbedResponse response;
    response.modelVersion = version;
    response.attempts = attempt;
    response.status = RequestStatus::Done;
    response.result.outcome = core::Outcome::Partial;
    response.result.solutionCount = carried;
    {
      std::lock_guard lock(state->mutex);
      response.result.stats = state->carriedStats;
      response.result.mappings = state->carriedMappings;
    }
    if (response.result.mappings.size() > request.options.storeLimit) {
      response.result.mappings.resize(request.options.storeLimit);
    }
    response.diagnostics =
        "retry: resolved from the previous attempt's carried solutions";
    resolveResponse(*state, std::move(response));
    return RunOutcome::Resolved;
  }
  state->status.store(RequestStatus::Running, std::memory_order_release);

  // The engine runs under the attempt's stop token when one exists: the
  // service can then stop *this run* (preemption) without poisoning the
  // ticket, while a genuine ticket cancel still propagates through the
  // chained callback.
  std::optional<std::stop_callback<std::function<void()>>> chain;
  std::stop_token token = state->stop.get_token();
  if (slot) {
    chain.emplace(state->stop.get_token(),
                  std::function<void()>(
                      [slot] { slot->attempt.request_stop(); }));
    token = slot->attempt.get_token();
  }

  // The streaming hook: every admitted solution flows out while the search
  // runs — inline from the search thread (historical default), or through a
  // bounded buffer + consumer thread when the ticket asked for backpressure
  // decoupling. The inline wrapper counts even without a user callback so
  // solutionsStreamed() always reports admissions.
  std::optional<SolutionBuffer> buffer;
  core::SolutionSink deliver;
  if (state->callbacks.solutionBufferCapacity > 0) {
    buffer.emplace(*state, state->callbacks.solutionBufferCapacity,
                   state->callbacks.solutionBufferPolicy);
    SolutionBuffer* buf = &*buffer;
    deliver = [buf](const core::Mapping& mapping) {
      return buf->push(mapping);
    };
  } else {
    deliver = [state](const core::Mapping& mapping) {
      state->streamed.fetch_add(1, std::memory_order_relaxed);
      const core::SolutionSink& user = state->callbacks.onSolution;
      if (!user) return true;
      try {
        return user(mapping);
      } catch (...) {
        // Inline sink throw: counted, then propagated into the search — the
        // attempt fails (and may retry; the admission stays carried, so the
        // mapping is not re-delivered).
        state->sinkErrors.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
    };
  }
  core::SolutionSink sink = deliver;
  if (retryEnabled) {
    // Retry bookkeeping wrapper: record every admission into the carry, and
    // forward only admissions past what earlier attempts already delivered —
    // the engines replay deterministically, so admission i of a retry is the
    // same mapping an earlier attempt already streamed as i.
    const std::size_t keep =
        maxSolutions == 0
            ? std::size_t{0}
            : std::min(maxSolutions, request.options.storeLimit);
    auto seen = std::make_shared<std::atomic<std::uint64_t>>(0);
    sink = [state, deliver, carried, keep, seen](const core::Mapping& mapping) {
      const std::uint64_t idx = seen->fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(state->mutex);
        if (idx == state->carriedMappings.size() && idx < keep) {
          state->carriedMappings.push_back(mapping);
        }
        if (idx + 1 > state->carriedAdmissions) {
          state->carriedAdmissions = idx + 1;
        }
      }
      if (idx < carried) return true;  // delivered by an earlier attempt
      return deliver(mapping);
    };
  }

  util::Stopwatch attemptClock;
  try {
    EmbedResponse response = detail::executeEmbed(
        request, host, version, allowPortfolioEscalation, cache, sink, token);
    // Every buffered delivery happens-before the resolution below.
    if (buffer) buffer->closeAndJoin();
    response.attempts = attempt;
    const bool preempted = slot &&
                           slot->preempted.load(std::memory_order_acquire) &&
                           !state->stop.stop_requested();
    if (preempted && response.result.outcome != core::Outcome::Complete) {
      if (requeueOnPreempt) {
        // Hand the unresolved ticket back for re-admission: from the
        // holder's perspective it simply went back to waiting in the queue.
        state->status.store(RequestStatus::Queued, std::memory_order_release);
        return RunOutcome::RequeuePreempted;
      }
      response.status = RequestStatus::Preempted;
      response.diagnostics += " [preempted for higher-priority work]";
    }
    // Cancelled-vs-Done is decided inside resolveResponse, under the same
    // lock cancelTicket synchronizes on — no window where a cancel that
    // reported success resolves plain Done. (A preempt that raced a natural
    // completion — outcome Complete — resolves Done: the work is whole.)
    resolveResponse(*state, std::move(response));
  } catch (...) {
    if (buffer) buffer->closeAndJoin();
    const std::exception_ptr error = std::current_exception();
    bool alreadyResolved;
    {
      std::lock_guard lock(state->mutex);
      state->lastError = error;
      state->errorText = describeError(error);
      // Bill the doomed attempt's wall time into the carry so the eventual
      // terminal response reports the true accumulated cost.
      state->carriedStats.searchMs += attemptClock.elapsedMs();
      alreadyResolved = state->resolved;
    }
    // Transient-vs-permanent classification (see isPermanentError). A
    // genuine cancel is never retried — honoring it beats finishing — and a
    // concurrently resolved ticket (racing cancel) has nothing left to retry.
    if (retryEnabled && attempt < request.qos.retry.maxAttempts &&
        !state->stop.stop_requested() && !isPermanentError(error) &&
        !alreadyResolved) {
      state->status.store(RequestStatus::Retrying, std::memory_order_release);
      return RunOutcome::RetryTransient;
    }
    resolveError(*state, error, version);
  }
  return RunOutcome::Resolved;
}

}  // namespace detail

RequestStatus SubmitTicket::status() const noexcept {
  if (!state_) return RequestStatus::Failed;
  return state_->status.load(std::memory_order_acquire);
}

bool SubmitTicket::cancel() {
  if (!state_) return false;
  return detail::cancelTicket(*state_);
}

std::uint64_t SubmitTicket::solutionsStreamed() const noexcept {
  if (!state_) return 0;
  return state_->streamed.load(std::memory_order_relaxed);
}

std::uint64_t SubmitTicket::solutionsDropped() const noexcept {
  if (!state_) return 0;
  return state_->droppedSolutions.load(std::memory_order_relaxed);
}

std::uint32_t SubmitTicket::attempts() const noexcept {
  if (!state_) return 0;
  return state_->attempts.load(std::memory_order_relaxed);
}

std::uint64_t SubmitTicket::sinkErrors() const noexcept {
  if (!state_) return 0;
  return state_->sinkErrors.load(std::memory_order_relaxed);
}

std::string SubmitTicket::errorMessage() const {
  if (!state_) return {};
  std::lock_guard lock(state_->mutex);
  // Only a sealed Failed outcome reports: mid-flight attempt errors are
  // retry-internal until the resolution commits to one.
  if (!state_->resolved ||
      state_->status.load(std::memory_order_acquire) != RequestStatus::Failed) {
    return {};
  }
  return state_->errorText;
}

std::future<EmbedResponse>& SubmitTicket::futureRef() {
  if (!state_) {
    // Same error an operation on a default-constructed std::future raises.
    throw std::future_error(std::future_errc::no_state);
  }
  return state_->future;
}

SubmitTicket NetEmbedService::submitTicketed(EmbedRequest request,
                                             TicketCallbacks callbacks) const {
  auto state = std::make_shared<detail::TicketState>(std::move(callbacks));
  // Snapshot the host on the submitting thread: the runner searches the
  // copy, so the caller may keep mutating the live model (reservations,
  // measurements) while the ticket is outstanding — same isolation the
  // async service gets from its COW snapshots. The plan cache is internally
  // synchronized and version-keyed, so a concurrent bump simply bypasses it.
  auto host = std::make_shared<const graph::Graph>(model_.host());
  const std::uint64_t version = model_.version();
  SubmitTicket ticket(state);
  ticket.runner_ = std::jthread(
      [this, state, host = std::move(host), version,
       request = std::move(request)](std::stop_token st) {
        // Chain the jthread's own stop (ticket destruction / reassignment)
        // into the ticket's stop source so both cancel paths converge on the
        // SearchContext's external token.
        std::stop_callback chain(st, [&state] { state->stop.request_stop(); });
        // The runner doubles as the retry loop: a transient failure with
        // attempts left (QoS::retry) sleeps out its backoff — stop-aware, in
        // slices — and dispatches the next attempt on this same thread.
        for (;;) {
          const detail::RunOutcome outcome = detail::runTicketedAttempt(
              state, request, *host, version,
              /*allowPortfolioEscalation=*/true, &planCache_, /*slot=*/nullptr,
              /*requeueOnPreempt=*/false, /*allowRetry=*/true);
          if (outcome != detail::RunOutcome::RetryTransient) break;
          const auto backoff = detail::nextRetryBackoff(
              request.qos.retry, version ^ request.qos.tenant, *state);
          const auto wakeAt = std::chrono::steady_clock::now() + backoff;
          while (std::chrono::steady_clock::now() < wakeAt &&
                 !st.stop_requested() && !state->stop.stop_requested()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          // A cancel during the backoff resolves at the next attempt's
          // pre-dispatch check.
        }
      });
  return ticket;
}

}  // namespace netembed::service
