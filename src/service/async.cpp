#include "service/async.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace netembed::service {

namespace {

RequestStatus statusForDrop(util::QosDropReason reason,
                            bool isPreemptRequeue) noexcept {
  switch (reason) {
    case util::QosDropReason::Rejected:
    case util::QosDropReason::Shed:
      // A shed request was displaced by higher-priority work — from the
      // submitter's perspective that is an admission refusal. A *re-queue*
      // of a preempted attempt that finds no room reports what actually
      // ended the request: the preemption.
      return isPreemptRequeue ? RequestStatus::Preempted
                              : RequestStatus::Rejected;
    case util::QosDropReason::Expired: return RequestStatus::Expired;
    case util::QosDropReason::Cancelled: return RequestStatus::Cancelled;
  }
  return RequestStatus::Rejected;
}

}  // namespace

AsyncNetEmbedService::AsyncNetEmbedService(NetworkModel model, Options options)
    : model_(std::move(model)),
      planCache_(options.planCacheCapacity),
      options_(options),
      qos_(std::make_shared<util::QosScheduler>(
          util::QosScheduler::Options{options.workers, options.queueCapacity,
                                      options.overloadPolicy,
                                      options.control.queue})) {
  publishSnapshotLocked();  // construction is single-threaded; no lock needed
  baseCacheBypass_ = detail::cacheBypassFallbacks();
  basePoolDeaths_ = util::sharedPool().workerDeaths();
  basePoolSerial_ = util::sharedPool().serialFallbacks();
  retryTimer_ = std::thread([this] { retryLoop(); });
}

AsyncNetEmbedService::~AsyncNetEmbedService() { shutdown(options_.shutdownMode); }

void AsyncNetEmbedService::shutdown(ShutdownMode mode) {
  // Settle the retry backlog before the admission queue: a request parked on
  // the backoff timer is invisible to the scheduler, so qos_->shutdown alone
  // would leave its future hanging. Drain cuts the backoff short and
  // re-admits; CancelPending resolves Cancelled. New scheduleRetry calls
  // from still-running attempts abandon immediately (retryStopping_).
  std::vector<PendingRetry> backlog;
  {
    std::lock_guard lock(retryMutex_);
    retryStopping_ = true;
    backlog = std::move(retryQueue_);
    retryQueue_.clear();
  }
  retryCv_.notify_all();
  if (retryTimer_.joinable()) retryTimer_.join();
  for (PendingRetry& entry : backlog) {
    if (mode == ShutdownMode::Drain) {
      transientRetries_.fetch_add(1, std::memory_order_relaxed);
      enqueueRequest(entry.state, std::move(entry.request), entry.admitBy,
                     Requeue::Retry);
    } else {
      releaseRetryBudget(*entry.state, entry.request.qos.priority);
      detail::resolveDropped(*entry.state, RequestStatus::Cancelled,
                             "cancelled at shutdown while awaiting retry");
      unregisterInflight(entry.state.get());
    }
  }
  if (mode == ShutdownMode::CancelPending) {
    // Cooperative stop for everything still alive: queued requests resolve
    // Cancelled through the scheduler's drop path below; running ones see
    // the stop at their next poll and resolve with their partial result.
    std::vector<std::shared_ptr<detail::TicketState>> live;
    {
      std::lock_guard lock(inflightMutex_);
      live.reserve(inflight_.size());
      for (const auto& [key, weak] : inflight_) {
        (void)key;
        if (auto state = weak.lock()) live.push_back(std::move(state));
      }
    }
    for (const auto& state : live) state->stop.request_stop();
  }
  qos_->shutdown(mode);
}

SubmitTicket AsyncNetEmbedService::submit(EmbedRequest request,
                                          TicketCallbacks callbacks) {
  auto state = std::make_shared<detail::TicketState>(std::move(callbacks));
  SubmitTicket ticket(state);
  registerInflight(state);

  std::optional<util::QosScheduler::Clock::time_point> admitBy;
  if (request.qos.admissionDeadline) {
    // An explicitly non-positive deadline means "no wait at all": the
    // admitBy point is already in the past, so the request expires at its
    // first admission check (Block wait or dequeue) — the lazy-expiry
    // contract — instead of silently degrading to an unbounded wait.
    admitBy =
        util::QosScheduler::Clock::now() + *request.qos.admissionDeadline;
  }
  enqueueRequest(state, std::move(request), admitBy, Requeue::None);
  return ticket;
}

void AsyncNetEmbedService::enqueueRequest(
    std::shared_ptr<detail::TicketState> state, EmbedRequest request,
    std::optional<util::QosScheduler::Clock::time_point> admitBy,
    Requeue requeue) {
  const int priority = static_cast<int>(request.qos.priority);
  const Priority cls = request.qos.priority;

  util::QosScheduler::Job job;
  job.priority = priority;
  job.tenant = request.qos.tenant;
  job.admitBy = admitBy;
  job.run = [this, state, request = std::move(request), admitBy] {
    runAttempt(state, request, admitBy);
  };
  job.onDrop = [this, state, requeue, cls](util::QosDropReason reason) {
    if (requeue == Requeue::Retry &&
        (reason == util::QosDropReason::Rejected ||
         reason == util::QosDropReason::Shed)) {
      // A retry whose re-admission found no room: the informative outcome is
      // the error that caused the retry, not a bland "rejected".
      abandonRetry(state, cls, "re-admission refused (queue full)");
      return;
    }
    releaseRetryBudget(*state, cls);
    detail::resolveDropped(*state,
                           statusForDrop(reason, requeue == Requeue::Preempt),
                           std::string("dropped at admission: ") +
                               util::qosDropReasonName(reason));
    unregisterInflight(state.get());
  };

  // A re-queue runs on a scheduler worker (or the retry timer): it must
  // never Block-wait for space there (a single-worker scheduler would
  // deadlock against itself).
  const util::QosScheduler::JobId id = requeue != Requeue::None
                                           ? qos_->trySubmit(std::move(job))
                                           : qos_->submit(std::move(job));
  if (id != 0) {
    if (requeue == Requeue::Preempt) {
      preemptRequeues_.fetch_add(1, std::memory_order_relaxed);
    }
    // Arm the queue-removal side of cancel(). The job may already be
    // running — cancel(id) then misses and the stop token carries the
    // cancel instead. The hook shares ownership of the scheduler (not the
    // service): a copy raced against service destruction lands on the
    // joined, empty queue — a harmless miss, never freed memory.
    {
      std::lock_guard lock(state->mutex);
      if (!state->resolved) {
        state->tryDequeue = [qos = qos_, id] { return qos->cancel(id); };
      }
    }
    if (options_.control.preemptLowForHigh) maybePreemptFor(priority);
  }
}

void AsyncNetEmbedService::runAttempt(
    const std::shared_ptr<detail::TicketState>& state,
    const EmbedRequest& request,
    std::optional<util::QosScheduler::Clock::time_point> admitBy) {
  // Pin the newest snapshot for the whole run: the plan cache key and the
  // response's modelVersion must describe the exact host graph searched.
  const std::shared_ptr<const Snapshot> snapshot = currentSnapshot();

  // Deadline-slack propagation: the wall-clock budget of this attempt is at
  // most the slack that remained at dispatch (executeEmbed only ever
  // tightens SearchOptions::timeout from it). A nearly-expired request burns
  // a sliver of compute, not a full search budget.
  const EmbedRequest* toRun = &request;
  EmbedRequest tightened;
  if (options_.control.propagateSlack && admitBy) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        *admitBy - util::QosScheduler::Clock::now());
    const auto budget = std::max(remaining, options_.control.minSlackBudget);
    if (request.qos.computeBudget.count() == 0 ||
        budget < request.qos.computeBudget) {
      tightened = request;
      tightened.qos.computeBudget = budget;
      toRun = &tightened;
    }
  }

  std::shared_ptr<detail::PreemptSlot> slot;
  if (options_.control.preemptLowForHigh) {
    slot = std::make_shared<detail::PreemptSlot>();
    slot->priority = static_cast<int>(request.qos.priority);
    slot->started = util::QosScheduler::Clock::now();
    std::lock_guard lock(slotsMutex_);
    runningSlots_[state.get()] = slot;
  }

  const detail::RunOutcome outcome = detail::runTicketedAttempt(
      state, *toRun, *snapshot->host, snapshot->version,
      /*allowPortfolioEscalation=*/false, &planCache_, slot.get(),
      options_.control.requeuePreempted,
      /*allowRetry=*/request.qos.retry.maxAttempts > 1);

  if (slot) {
    std::lock_guard lock(slotsMutex_);
    runningSlots_.erase(state.get());
  }

  if (outcome == detail::RunOutcome::RequeuePreempted) {
    // Back into the queue, original admission deadline still ticking. The
    // ticket stays registered in inflight_ across attempts.
    enqueueRequest(state, request, admitBy, Requeue::Preempt);
    return;
  }
  if (outcome == detail::RunOutcome::RetryTransient) {
    // Park the ORIGINAL request on the backoff timer, not the
    // slack-tightened copy: the retry re-derives its budget from the slack
    // remaining at its own dispatch.
    scheduleRetry(state, request, admitBy);
    return;
  }
  releaseRetryBudget(*state, request.qos.priority);
  unregisterInflight(state.get());
}

void AsyncNetEmbedService::scheduleRetry(
    std::shared_ptr<detail::TicketState> state, EmbedRequest request,
    std::optional<util::QosScheduler::Clock::time_point> admitBy) {
  const Priority cls = request.qos.priority;
  const std::size_t budget = options_.control.retryBudgetPerClass;
  if (budget != 0 && !state->retryCharged.load(std::memory_order_acquire)) {
    // Charge the class budget once per request, at its first retry; the
    // slot is held until terminal resolution.
    auto& outstanding = retryOutstanding_[static_cast<std::size_t>(cls)];
    std::size_t current = outstanding.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= budget) {
        abandonRetry(state, cls, "per-class retry budget exhausted");
        return;
      }
      if (outstanding.compare_exchange_weak(current, current + 1,
                                            std::memory_order_acq_rel)) {
        state->retryCharged.store(true, std::memory_order_release);
        break;
      }
    }
  }
  // Seed mixes only stable identities (tenant) with the per-ticket attempt
  // count inside nextRetryBackoff — deterministic, so chaos schedules replay.
  const auto backoff =
      detail::nextRetryBackoff(request.qos.retry, request.qos.tenant, *state);
  PendingRetry entry;
  entry.due = util::QosScheduler::Clock::now() + backoff;
  entry.state = state;
  entry.request = std::move(request);
  entry.admitBy = admitBy;
  {
    std::lock_guard lock(retryMutex_);
    if (!retryStopping_) {
      retryQueue_.push_back(std::move(entry));
      retryCv_.notify_one();
      return;
    }
  }
  abandonRetry(state, cls, "service shutting down");
}

void AsyncNetEmbedService::retryLoop() {
  std::unique_lock lock(retryMutex_);
  for (;;) {
    if (retryQueue_.empty()) {
      if (retryStopping_) return;
      retryCv_.wait(lock,
                    [&] { return retryStopping_ || !retryQueue_.empty(); });
      continue;
    }
    const auto next = std::min_element(
        retryQueue_.begin(), retryQueue_.end(),
        [](const PendingRetry& a, const PendingRetry& b) {
          return a.due < b.due;
        });
    if (!retryStopping_ && util::QosScheduler::Clock::now() < next->due) {
      // Re-scan after the wait: a later-armed retry may be due earlier.
      retryCv_.wait_until(lock, next->due);
      continue;
    }
    PendingRetry entry = std::move(*next);
    retryQueue_.erase(next);
    lock.unlock();
    transientRetries_.fetch_add(1, std::memory_order_relaxed);
    enqueueRequest(entry.state, std::move(entry.request), entry.admitBy,
                   Requeue::Retry);
    lock.lock();
  }
}

void AsyncNetEmbedService::releaseRetryBudget(detail::TicketState& state,
                                              Priority cls) {
  if (!state.retryCharged.exchange(false, std::memory_order_acq_rel)) return;
  retryOutstanding_[static_cast<std::size_t>(cls)].fetch_sub(
      1, std::memory_order_acq_rel);
}

void AsyncNetEmbedService::abandonRetry(
    const std::shared_ptr<detail::TicketState>& state, Priority cls,
    const char* why) {
  retriesAbandoned_.fetch_add(1, std::memory_order_relaxed);
  releaseRetryBudget(*state, cls);
  std::exception_ptr error;
  {
    std::lock_guard lock(state->mutex);
    error = state->lastError;
  }
  if (!error) {
    error = std::make_exception_ptr(
        std::runtime_error(std::string("retry abandoned: ") + why));
  }
  detail::resolveError(*state, error, version());
  unregisterInflight(state.get());
}

AsyncNetEmbedService::ControlStats AsyncNetEmbedService::controlStats() const {
  ControlStats out;
  out.preemptionsFired = preemptionsFired_.load(std::memory_order_relaxed);
  out.preemptRequeues = preemptRequeues_.load(std::memory_order_relaxed);
  out.transientRetries = transientRetries_.load(std::memory_order_relaxed);
  out.retriesAbandoned = retriesAbandoned_.load(std::memory_order_relaxed);
  out.cacheBypassFallbacks = detail::cacheBypassFallbacks() - baseCacheBypass_;
  const util::ThreadPool& pool = util::sharedPool();
  out.poolWorkersLost = pool.workerDeaths() - basePoolDeaths_;
  out.poolSerialFallbacks = pool.serialFallbacks() - basePoolSerial_;
  return out;
}

void AsyncNetEmbedService::maybePreemptFor(int priority) {
  // Only worth firing when nothing will pick the queued job up on its own:
  // every worker busy, at least one of them on strictly lower-class work.
  if (qos_->runningCount() < qos_->workerCount()) return;
  std::shared_ptr<detail::PreemptSlot> victim;
  {
    std::lock_guard lock(slotsMutex_);
    for (const auto& [key, slot] : runningSlots_) {
      (void)key;
      if (slot->priority >= priority) continue;
      if (slot->preempted.load(std::memory_order_relaxed)) continue;
      // Lowest class first; within a class the longest-running attempt (it
      // has had the most service, and its restart loses the least slack).
      if (!victim || slot->priority < victim->priority ||
          (slot->priority == victim->priority &&
           slot->started < victim->started)) {
        victim = slot;
      }
    }
    if (victim) victim->preempted.store(true, std::memory_order_release);
  }
  if (victim) {
    victim->attempt.request_stop();
    preemptionsFired_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::future<EmbedResponse> AsyncNetEmbedService::submitAsync(EmbedRequest request) {
  return submit(std::move(request)).takeFuture();
}

void AsyncNetEmbedService::submitAsync(EmbedRequest request, Callback callback) {
  TicketCallbacks callbacks;
  callbacks.onComplete = [callback = std::move(callback)](
                             const EmbedResponse& response,
                             std::exception_ptr error) {
    callback(response, error);
  };
  (void)submit(std::move(request), std::move(callbacks));
}

void AsyncNetEmbedService::registerInflight(
    const std::shared_ptr<detail::TicketState>& state) {
  std::lock_guard lock(inflightMutex_);
  inflight_.emplace(state.get(), state);
}

void AsyncNetEmbedService::unregisterInflight(const detail::TicketState* key) {
  std::lock_guard lock(inflightMutex_);
  inflight_.erase(key);
}

std::uint64_t AsyncNetEmbedService::version() const {
  std::lock_guard lock(modelMutex_);
  return model_.version();
}

std::shared_ptr<const graph::Graph> AsyncNetEmbedService::hostSnapshot() const {
  return currentSnapshot()->host;
}

NetworkModel::ReservationId AsyncNetEmbedService::reserve(
    const graph::Graph& query, const core::Mapping& mapping,
    const NetworkModel::ReservationSpec& spec) {
  std::lock_guard lock(modelMutex_);
  const NetworkModel::ReservationId id = model_.reserve(query, mapping, spec);
  publishSnapshotLocked();
  return id;
}

void AsyncNetEmbedService::release(NetworkModel::ReservationId id) {
  std::lock_guard lock(modelMutex_);
  model_.release(id);
  publishSnapshotLocked();
}

void AsyncNetEmbedService::publishSnapshotLocked() {
  // Structural sharing: the Graph copy shares its topology block and every
  // untouched attribute chunk with the model's live host, so a snapshot
  // costs O(elements / chunk) pointer copies — not the former deep copy.
  // Queries in flight keep reading the snapshot they pinned.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->host = std::make_shared<const graph::Graph>(model_.host());
  snapshot->version = model_.version();
  // Announce the mutation to the plan cache *before* the new snapshot
  // becomes visible (both happen under modelMutex_, which currentSnapshot()
  // also takes): cached stage-1 plans are carried across the bump as lazy
  // patch sources instead of being invalidated wholesale.
  planCache_.applyDelta(model_.version(), model_.lastDelta());
  snapshot_ = std::move(snapshot);
}

std::size_t AsyncNetEmbedService::activeReservations() const {
  std::lock_guard lock(modelMutex_);
  return model_.activeReservations();
}

std::size_t AsyncNetEmbedService::applyMeasurements(
    std::span<const NetworkModel::Measurement> batch) {
  std::lock_guard lock(modelMutex_);
  const std::size_t applied = model_.applyMeasurements(batch);
  if (applied > 0) publishSnapshotLocked();
  return applied;
}

void AsyncNetEmbedService::setNodeAttr(graph::NodeId n, std::string_view attr,
                                       graph::AttrValue value) {
  std::lock_guard lock(modelMutex_);
  model_.setNodeAttr(n, attr, std::move(value));
  publishSnapshotLocked();
}

void AsyncNetEmbedService::setEdgeMetric(graph::NodeId u, graph::NodeId v,
                                         std::string_view attr,
                                         graph::AttrValue value) {
  std::lock_guard lock(modelMutex_);
  model_.setEdgeMetric(u, v, attr, std::move(value));
  publishSnapshotLocked();
}

std::shared_ptr<const AsyncNetEmbedService::Snapshot>
AsyncNetEmbedService::currentSnapshot() const {
  std::lock_guard lock(modelMutex_);
  return snapshot_;
}


}  // namespace netembed::service
