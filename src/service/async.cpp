#include "service/async.hpp"

namespace netembed::service {

AsyncNetEmbedService::AsyncNetEmbedService(NetworkModel model, Options options)
    : model_(std::move(model)),
      planCache_(options.planCacheCapacity),
      scheduler_(options.workers) {
  publishSnapshotLocked();  // construction is single-threaded; no lock needed
}

std::future<EmbedResponse> AsyncNetEmbedService::submitAsync(EmbedRequest request) {
  return scheduler_.schedule(
      [this, request = std::move(request)] { return execute(request); });
}

void AsyncNetEmbedService::submitAsync(EmbedRequest request, Callback callback) {
  // The future is deliberately discarded: the callback is the delivery
  // channel. An exception thrown by the callback itself lands in that
  // discarded future rather than the worker loop.
  (void)scheduler_.schedule(
      [this, request = std::move(request), callback = std::move(callback)] {
        EmbedResponse response;
        std::exception_ptr error;
        try {
          response = execute(request);
        } catch (...) {
          error = std::current_exception();
        }
        callback(std::move(response), error);
      });
}

EmbedResponse AsyncNetEmbedService::execute(const EmbedRequest& request) const {
  // Pin the newest snapshot for the whole run: the plan cache key and the
  // response's modelVersion must describe the exact host graph searched.
  const std::shared_ptr<const Snapshot> snapshot = currentSnapshot();
  return detail::executeEmbed(request, *snapshot->host, snapshot->version,
                              /*allowPortfolioEscalation=*/false, &planCache_);
}

std::uint64_t AsyncNetEmbedService::version() const {
  std::lock_guard lock(modelMutex_);
  return model_.version();
}

std::shared_ptr<const graph::Graph> AsyncNetEmbedService::hostSnapshot() const {
  return currentSnapshot()->host;
}

NetworkModel::ReservationId AsyncNetEmbedService::reserve(
    const graph::Graph& query, const core::Mapping& mapping,
    const NetworkModel::ReservationSpec& spec) {
  std::lock_guard lock(modelMutex_);
  const NetworkModel::ReservationId id = model_.reserve(query, mapping, spec);
  publishSnapshotLocked();
  return id;
}

void AsyncNetEmbedService::release(NetworkModel::ReservationId id) {
  std::lock_guard lock(modelMutex_);
  model_.release(id);
  publishSnapshotLocked();
}

std::size_t AsyncNetEmbedService::activeReservations() const {
  std::lock_guard lock(modelMutex_);
  return model_.activeReservations();
}

std::size_t AsyncNetEmbedService::applyMeasurements(
    std::span<const NetworkModel::Measurement> batch) {
  std::lock_guard lock(modelMutex_);
  const std::size_t applied = model_.applyMeasurements(batch);
  if (applied > 0) publishSnapshotLocked();
  return applied;
}

void AsyncNetEmbedService::setNodeAttr(graph::NodeId n, std::string_view attr,
                                       graph::AttrValue value) {
  std::lock_guard lock(modelMutex_);
  model_.setNodeAttr(n, attr, std::move(value));
  publishSnapshotLocked();
}

void AsyncNetEmbedService::setEdgeMetric(graph::NodeId u, graph::NodeId v,
                                         std::string_view attr,
                                         graph::AttrValue value) {
  std::lock_guard lock(modelMutex_);
  model_.setEdgeMetric(u, v, attr, std::move(value));
  publishSnapshotLocked();
}

std::shared_ptr<const AsyncNetEmbedService::Snapshot>
AsyncNetEmbedService::currentSnapshot() const {
  std::lock_guard lock(modelMutex_);
  return snapshot_;
}

void AsyncNetEmbedService::publishSnapshotLocked() {
  // Copy-on-write: queries in flight keep reading the snapshot they pinned;
  // this copy is what makes reservations safe beside unsynchronized reads.
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->host = std::make_shared<const graph::Graph>(model_.host());
  snapshot->version = model_.version();
  snapshot_ = std::move(snapshot);
}

}  // namespace netembed::service
