#include "topo/sample.hpp"

#include "topo/regular.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace netembed::topo {

using graph::Graph;
using graph::NodeId;

graph::Subgraph sampleConnectedSubgraph(const Graph& host, std::size_t nodes,
                                        std::size_t targetEdges, util::Rng& rng) {
  if (nodes == 0) throw std::invalid_argument("sampleConnectedSubgraph: zero nodes");
  if (nodes > host.nodeCount()) {
    throw std::invalid_argument("sampleConnectedSubgraph: query larger than host");
  }

  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // Frontier expansion from a random start: guarantees the induced
    // subgraph is connected.
    std::unordered_set<NodeId> selected;
    std::vector<NodeId> frontier;
    const NodeId start = static_cast<NodeId>(rng.index(host.nodeCount()));
    selected.insert(start);
    for (const graph::Neighbor& nb : host.neighbors(start)) frontier.push_back(nb.node);

    while (selected.size() < nodes && !frontier.empty()) {
      const std::size_t pick = rng.index(frontier.size());
      const NodeId next = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      if (selected.count(next)) continue;
      selected.insert(next);
      for (const graph::Neighbor& nb : host.neighbors(next)) {
        if (!selected.count(nb.node)) frontier.push_back(nb.node);
      }
    }
    if (selected.size() < nodes) continue;  // start landed in a small component

    std::vector<NodeId> nodeList(selected.begin(), selected.end());
    std::sort(nodeList.begin(), nodeList.end());
    graph::Subgraph induced = graph::inducedSubgraph(host, nodeList);

    const std::size_t inducedEdges = induced.graph.edgeCount();
    const std::size_t minEdges = nodes - 1;
    const std::size_t want = std::clamp(targetEdges, minEdges, inducedEdges);
    if (want == inducedEdges) return induced;

    // Thin edges while preserving connectivity: keep a random spanning tree,
    // then a random subset of the remainder.
    std::vector<graph::EdgeId> order(inducedEdges);
    for (graph::EdgeId e = 0; e < inducedEdges; ++e) order[e] = e;
    rng.shuffle(order);

    // Kruskal-style tree selection with union-find.
    std::vector<NodeId> parent(induced.graph.nodeCount());
    for (NodeId i = 0; i < parent.size(); ++i) parent[i] = i;
    const auto find = [&](NodeId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };

    std::vector<bool> keep(inducedEdges, false);
    std::size_t kept = 0;
    for (const graph::EdgeId e : order) {
      const NodeId a = find(induced.graph.edgeSource(e));
      const NodeId b = find(induced.graph.edgeTarget(e));
      if (a != b) {
        parent[a] = b;
        keep[e] = true;
        ++kept;
      }
    }
    for (const graph::EdgeId e : order) {
      if (kept >= want) break;
      if (!keep[e]) {
        keep[e] = true;
        ++kept;
      }
    }

    std::vector<graph::EdgeId> keptOriginal;
    keptOriginal.reserve(kept);
    for (graph::EdgeId e = 0; e < inducedEdges; ++e) {
      if (keep[e]) keptOriginal.push_back(induced.originalEdge[e]);
    }
    return graph::edgeSubgraph(host, nodeList, keptOriginal);
  }
  throw std::runtime_error(
      "sampleConnectedSubgraph: no connected component of the requested size "
      "(after 64 attempts)");
}

void widenDelayWindows(Graph& query, double tolerance) {
  if (tolerance < 0.0) throw std::invalid_argument("widenDelayWindows: negative tolerance");
  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");
  const graph::AttrId delayId = graph::attrId("delay");
  for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) {
    auto& attrs = query.edgeAttrs(e);
    const graph::AttrValue* mn = attrs.get(minId);
    const graph::AttrValue* mx = attrs.get(maxId);
    double lo, hi;
    if (mn && mx && mn->isNumeric() && mx->isNumeric()) {
      lo = mn->asDouble();
      hi = mx->asDouble();
    } else if (const graph::AttrValue* d = attrs.get(delayId); d && d->isNumeric()) {
      lo = hi = d->asDouble();
    } else {
      continue;  // no delay information to widen
    }
    attrs.set(minId, lo * (1.0 - tolerance));
    attrs.set(maxId, hi * (1.0 + tolerance));
  }
}

void makeInfeasible(Graph& query, double fraction, util::Rng& rng) {
  if (query.edgeCount() == 0) return;
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("makeInfeasible: fraction must be in (0, 1]");
  }
  const auto count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(query.edgeCount())));
  std::vector<graph::EdgeId> order(query.edgeCount());
  for (graph::EdgeId e = 0; e < query.edgeCount(); ++e) order[e] = e;
  rng.shuffle(order);
  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");
  for (std::size_t i = 0; i < count; ++i) {
    auto& attrs = query.edgeAttrs(order[i]);
    // A window no physical link can satisfy (sub-microsecond RTT band).
    attrs.set(minId, 1e-4);
    attrs.set(maxId, 2e-4);
  }
}

graph::Graph cliqueQuery(std::size_t n, double delayLo, double delayHi) {
  Graph g = clique(n);
  setAllEdges(g, "minDelay", delayLo);
  setAllEdges(g, "maxDelay", delayHi);
  return g;
}

const char* delayWindowConstraint() {
  return "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay";
}

const char* avgDelayWindowConstraint() {
  return "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay";
}

}  // namespace netembed::topo
