#pragma once
// Query generation (paper §VII-B): random connected subgraphs of the hosting
// network. Sampling from the host guarantees at least one embedding exists,
// which gives known-feasible test cases; perturbation helpers then produce
// known-infeasible variants without changing the topology (§VII-B, Fig. 10).

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace netembed::topo {

/// Sample a connected induced subgraph with exactly `nodes` nodes and —
/// after thinning — `targetEdges` edges (clamped to [nodes-1, induced edge
/// count]; a spanning tree is always kept so the query stays connected).
/// Node and edge attributes are copied from the host. Throws when the host
/// has no connected component of the requested size.
[[nodiscard]] graph::Subgraph sampleConnectedSubgraph(const graph::Graph& host,
                                                      std::size_t nodes,
                                                      std::size_t targetEdges,
                                                      util::Rng& rng);

/// Turn a subgraph copied from the host into a delay-window query: each edge
/// keeps [minDelay*(1-tolerance), maxDelay*(1+tolerance)] so the original
/// placement satisfies "rEdge.minDelay >= vEdge.minDelay &&
/// rEdge.maxDelay <= vEdge.maxDelay" (the constraint used throughout
/// §VII-B). Edges lacking delay attributes fall back to the "delay" attr.
void widenDelayWindows(graph::Graph& query, double tolerance);

/// Make a feasible query infeasible by moving the delay window of
/// ceil(fraction * |E|) randomly-chosen edges to an impossible range
/// (paper: "changing some of their link attributes to infeasible values").
void makeInfeasible(graph::Graph& query, double fraction, util::Rng& rng);

/// Clique query with one uniform delay window on every edge (paper §VII-D:
/// "cliques whose only constraint was an end-to-end delay between 10 and
/// 100 ms").
[[nodiscard]] graph::Graph cliqueQuery(std::size_t n, double delayLo, double delayHi);

/// The §VII-B constraint: the host link's delay range must lie within the
/// query link's delay window.
[[nodiscard]] const char* delayWindowConstraint();

/// The §VII-D constraint: the host link's *average* delay must lie within
/// the query link's delay window.
[[nodiscard]] const char* avgDelayWindowConstraint();

}  // namespace netembed::topo
