#include "topo/brite.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace netembed::topo {

using graph::Graph;
using graph::NodeId;

namespace {

struct Point {
  double x, y;
};

double dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

void setEdgeDelays(Graph& g, graph::EdgeId e, double d, util::Rng& rng) {
  // avg adds queueing slack on top of propagation; min is near-propagation;
  // max carries a heavier tail (mirrors all-pairs ping traces).
  const double avg = d * rng.uniform(1.02, 1.06);
  const double mn = d * rng.uniform(0.985, 1.0);
  const double mx = avg * (1.0 + std::min(0.25, rng.exponential(20.0)));
  auto& attrs = g.edgeAttrs(e);
  attrs.set("delay", d);
  attrs.set("minDelay", mn);
  attrs.set("avgDelay", avg);
  attrs.set("maxDelay", mx);
  attrs.set("bw", static_cast<double>(rng.uniformInt(10, 1000)));
}

Graph placeNodes(const BriteOptions& options, util::Rng& rng, std::vector<Point>& points) {
  Graph g(false);
  points.reserve(options.nodes);
  for (std::size_t i = 0; i < options.nodes; ++i) {
    const NodeId id = g.addNode();
    const Point p{rng.uniform(0.0, options.planeSize), rng.uniform(0.0, options.planeSize)};
    points.push_back(p);
    auto& attrs = g.nodeAttrs(id);
    attrs.set("x", p.x);
    attrs.set("y", p.y);
  }
  return g;
}

double edgeDelay(const BriteOptions& options, const Point& a, const Point& b) {
  return options.baseDelay + options.delayPerKm * dist(a, b);
}

Graph barabasiAlbert(const BriteOptions& options, util::Rng& rng) {
  const std::size_t m = options.m;
  if (options.nodes < m + 1) {
    throw std::invalid_argument("brite: need at least m+1 nodes for BA growth");
  }
  std::vector<Point> points;
  Graph g = placeNodes(options, rng, points);

  // Degree-weighted sampling pool: node id repeated once per incident edge.
  std::vector<NodeId> pool;
  pool.reserve(options.nodes * m * 2);

  // Seed: an (m+1)-clique so every seed node starts with degree m.
  const std::size_t seedSize = m + 1;
  for (std::size_t i = 0; i < seedSize; ++i) {
    for (std::size_t j = i + 1; j < seedSize; ++j) {
      const graph::EdgeId e = g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      setEdgeDelays(g, e, edgeDelay(options, points[i], points[j]), rng);
      pool.push_back(static_cast<NodeId>(i));
      pool.push_back(static_cast<NodeId>(j));
    }
  }

  for (std::size_t v = seedSize; v < options.nodes; ++v) {
    // Choose m distinct targets by preferential attachment.
    std::vector<NodeId> targets;
    targets.reserve(m);
    std::size_t guard = 0;
    while (targets.size() < m) {
      const NodeId candidate = pool[rng.index(pool.size())];
      bool duplicate = false;
      for (const NodeId t : targets) duplicate = duplicate || t == candidate;
      if (!duplicate) targets.push_back(candidate);
      if (++guard > 64 * m) {
        // Degenerate pools (tiny graphs): fall back to uniform choice.
        const NodeId uniform = static_cast<NodeId>(rng.index(v));
        duplicate = false;
        for (const NodeId t : targets) duplicate = duplicate || t == uniform;
        if (!duplicate) targets.push_back(uniform);
      }
    }
    for (const NodeId t : targets) {
      const graph::EdgeId e = g.addEdge(static_cast<NodeId>(v), t);
      setEdgeDelays(g, e, edgeDelay(options, points[v], points[t]), rng);
      pool.push_back(static_cast<NodeId>(v));
      pool.push_back(t);
    }
  }
  return g;
}

Graph waxman(const BriteOptions& options, util::Rng& rng) {
  if (options.nodes < 2) throw std::invalid_argument("brite: need at least 2 nodes");
  std::vector<Point> points;
  Graph g = placeNodes(options, rng, points);
  const double scale = options.waxmanBeta * options.planeSize * std::numbers::sqrt2_v<double>;

  for (std::size_t i = 0; i < options.nodes; ++i) {
    for (std::size_t j = i + 1; j < options.nodes; ++j) {
      const double d = dist(points[i], points[j]);
      if (rng.bernoulli(options.waxmanAlpha * std::exp(-d / scale))) {
        const graph::EdgeId e = g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
        setEdgeDelays(g, e, edgeDelay(options, points[i], points[j]), rng);
      }
    }
  }

  // Waxman graphs may come out disconnected; stitch components together via
  // nearest cross-component pairs so hosting networks are always connected.
  for (;;) {
    std::vector<std::uint32_t> label(g.nodeCount(), static_cast<std::uint32_t>(-1));
    std::uint32_t componentCount = 0;
    for (NodeId n = 0; n < g.nodeCount(); ++n) {
      if (label[n] != static_cast<std::uint32_t>(-1)) continue;
      std::vector<NodeId> stack{n};
      label[n] = componentCount;
      while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        for (const graph::Neighbor& nb : g.neighbors(cur)) {
          if (label[nb.node] == static_cast<std::uint32_t>(-1)) {
            label[nb.node] = componentCount;
            stack.push_back(nb.node);
          }
        }
      }
      ++componentCount;
    }
    if (componentCount <= 1) break;
    // Join component 0 to the nearest node of a different component.
    double best = 1e300;
    NodeId bestA = 0, bestB = 0;
    for (NodeId a = 0; a < g.nodeCount(); ++a) {
      if (label[a] != 0) continue;
      for (NodeId b = 0; b < g.nodeCount(); ++b) {
        if (label[b] == 0) continue;
        const double d = dist(points[a], points[b]);
        if (d < best) {
          best = d;
          bestA = a;
          bestB = b;
        }
      }
    }
    const graph::EdgeId e = g.addEdge(bestA, bestB);
    setEdgeDelays(g, e, edgeDelay(options, points[bestA], points[bestB]), rng);
  }
  return g;
}

}  // namespace

Graph brite(const BriteOptions& options) {
  util::Rng rng(options.seed);
  Graph g = options.model == BriteOptions::Model::BarabasiAlbert
                ? barabasiAlbert(options, rng)
                : waxman(options, rng);
  g.attrs().set("generator", options.model == BriteOptions::Model::BarabasiAlbert
                                 ? "brite-ba"
                                 : "brite-waxman");
  return g;
}

}  // namespace netembed::topo
