#include "topo/regular.hpp"

#include <stdexcept>
#include <string>

namespace netembed::topo {

using graph::Graph;
using graph::NodeId;

namespace {
Graph withNodes(std::size_t n) {
  Graph g(false);
  for (std::size_t i = 0; i < n; ++i) g.addNode();
  return g;
}
}  // namespace

Graph ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring: need at least 3 nodes");
  Graph g = withNodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return g;
}

Graph star(std::size_t leaves) {
  if (leaves < 1) throw std::invalid_argument("star: need at least 1 leaf");
  Graph g = withNodes(leaves + 1);
  for (std::size_t i = 1; i <= leaves; ++i) {
    g.addEdge(0, static_cast<NodeId>(i));
  }
  return g;
}

Graph clique(std::size_t n) {
  if (n < 2) throw std::invalid_argument("clique: need at least 2 nodes");
  Graph g = withNodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return g;
}

Graph line(std::size_t n) {
  if (n < 2) throw std::invalid_argument("line: need at least 2 nodes");
  Graph g = withNodes(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return g;
}

Graph completeTree(std::size_t nodes, std::size_t arity) {
  if (nodes < 1) throw std::invalid_argument("completeTree: need at least 1 node");
  if (arity < 1) throw std::invalid_argument("completeTree: arity must be >= 1");
  Graph g = withNodes(nodes);
  for (std::size_t child = 1; child < nodes; ++child) {
    const std::size_t parent = (child - 1) / arity;
    g.addEdge(static_cast<NodeId>(parent), static_cast<NodeId>(child));
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid: empty dimensions");
  Graph g = withNodes(rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addEdge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.addEdge(at(r, c), at(r + 1, c));
    }
  }
  return g;
}

Graph hypercube(std::size_t dimension) {
  if (dimension < 1 || dimension > 20) {
    throw std::invalid_argument("hypercube: dimension out of range [1, 20]");
  }
  const std::size_t n = std::size_t{1} << dimension;
  Graph g = withNodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t bit = 0; bit < dimension; ++bit) {
      const std::size_t j = i ^ (std::size_t{1} << bit);
      if (i < j) g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return g;
}

void setAllEdges(Graph& g, std::string_view attr, graph::AttrValue value) {
  const graph::AttrId id = graph::attrId(attr);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) g.edgeAttrs(e).set(id, value);
}

void setAllNodes(Graph& g, std::string_view attr, graph::AttrValue value) {
  const graph::AttrId id = graph::attrId(attr);
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) g.nodeAttrs(n).set(id, value);
}

}  // namespace netembed::topo
