#pragma once
// BRITE-like synthetic Internet topologies (paper §VII-C; substitution for
// the external BRITE tool [18]). Implements the two node-placement/growth
// models BRITE popularized:
//
//   * Barabasi-Albert incremental growth with preferential attachment
//     (power-law degree distribution; with m = 2 this yields E ~ 2N, the
//     paper's (1500, 3030) / (2000, 4040) / (2500, 5020) shapes), and
//   * Waxman random graphs with distance-dependent edge probability.
//
// Nodes get plane coordinates (attrs "x", "y" in km); edges get a
// propagation-derived "delay" plus "minDelay"/"avgDelay"/"maxDelay" (ms) and
// a "bw" (Mbps) so the same constraint expressions work on BRITE and
// PlanetLab hosting networks.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace netembed::topo {

struct BriteOptions {
  enum class Model { BarabasiAlbert, Waxman };

  std::size_t nodes = 1000;
  Model model = Model::BarabasiAlbert;
  /// BA: edges added per new node.
  std::size_t m = 2;
  /// Waxman parameters (P(u,v) = alpha * exp(-d / (beta * L))).
  double waxmanAlpha = 0.15;
  double waxmanBeta = 0.2;
  /// Side of the square placement plane, km.
  double planeSize = 10000.0;
  /// RTT per km of euclidean distance, ms (0.01 ~= fiber propagation).
  double delayPerKm = 0.01;
  /// Minimum delay floor, ms.
  double baseDelay = 0.5;
  std::uint64_t seed = 1;
};

/// Generate a connected, undirected topology per the options.
[[nodiscard]] graph::Graph brite(const BriteOptions& options);

}  // namespace netembed::topo
