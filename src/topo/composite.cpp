#include "topo/composite.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace netembed::topo {

using graph::Graph;
using graph::NodeId;

namespace {

/// Add the edges of a regular shape over the given member node ids.
/// members[0] is the hub for Star and the root for Tree.
void addShapeEdges(Graph& g, const std::vector<NodeId>& members, Shape shape,
                   const char* level) {
  const graph::AttrId levelId = graph::attrId("level");
  const auto connect = [&](NodeId a, NodeId b) {
    if (g.hasEdge(a, b)) return;  // shapes over >=3 members may repeat pairs
    const graph::EdgeId e = g.addEdge(a, b);
    g.edgeAttrs(e).set(levelId, level);
  };
  const std::size_t n = members.size();
  if (n < 2) return;
  switch (shape) {
    case Shape::Ring:
      if (n == 2) {
        connect(members[0], members[1]);
        break;
      }
      for (std::size_t i = 0; i < n; ++i) connect(members[i], members[(i + 1) % n]);
      break;
    case Shape::Star:
      for (std::size_t i = 1; i < n; ++i) connect(members[0], members[i]);
      break;
    case Shape::Clique:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) connect(members[i], members[j]);
      }
      break;
    case Shape::Line:
      for (std::size_t i = 0; i + 1 < n; ++i) connect(members[i], members[i + 1]);
      break;
    case Shape::Tree:
      for (std::size_t i = 1; i < n; ++i) connect(members[(i - 1) / 2], members[i]);
      break;
  }
}

}  // namespace

Graph composite(const CompositeSpec& spec) {
  if (spec.groups < 2) throw std::invalid_argument("composite: need at least 2 groups");
  if (spec.groupSize < 1) {
    throw std::invalid_argument("composite: groups must have at least 1 node");
  }
  Graph g(false);
  std::vector<NodeId> gateways;
  gateways.reserve(spec.groups);

  for (std::size_t group = 0; group < spec.groups; ++group) {
    std::vector<NodeId> members;
    members.reserve(spec.groupSize);
    for (std::size_t i = 0; i < spec.groupSize; ++i) {
      const NodeId id =
          g.addNode("g" + std::to_string(group) + "_n" + std::to_string(i));
      g.nodeAttrs(id).set("group", static_cast<std::int64_t>(group));
      members.push_back(id);
    }
    gateways.push_back(members[0]);
    addShapeEdges(g, members, spec.leafShape, "leaf");
  }
  addShapeEdges(g, gateways, spec.rootShape, "root");
  return g;
}

void assignLevelDelayWindows(Graph& g, double rootLo, double rootHi, double leafLo,
                             double leafHi) {
  const graph::AttrId levelId = graph::attrId("level");
  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    auto& attrs = g.edgeAttrs(e);
    const graph::AttrValue* level = attrs.get(levelId);
    const bool isRoot = level && level->asString() == "root";
    attrs.set(minId, isRoot ? rootLo : leafLo);
    attrs.set(maxId, isRoot ? rootHi : leafHi);
  }
}

void assignRandomDelayWindows(Graph& g, double lo, double hi, double width,
                              util::Rng& rng) {
  if (hi - width < lo) throw std::invalid_argument("assignRandomDelayWindows: width too large");
  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const double start = rng.uniform(lo, hi - width);
    auto& attrs = g.edgeAttrs(e);
    attrs.set(minId, start);
    attrs.set(maxId, start + width);
  }
}

}  // namespace netembed::topo
