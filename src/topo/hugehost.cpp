#include "topo/hugehost.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace netembed::topo {

using graph::Graph;
using graph::NodeId;

namespace {

struct Point {
  double x, y;
};

void setEdgeAttrs(Graph& g, graph::EdgeId e, const Point& a, const Point& b,
                  const HugeHostOptions& o, const char* tier, util::Rng& rng) {
  // Same delay model as the BRITE generators: propagation from euclidean
  // distance, min near propagation, avg with queueing slack, max with a tail.
  const double d = o.baseDelay + std::hypot(a.x - b.x, a.y - b.y) * o.delayPerKm;
  const double avg = d * rng.uniform(1.02, 1.06);
  const double mn = d * rng.uniform(0.985, 1.0);
  const double mx = avg * (1.0 + std::min(0.25, rng.exponential(20.0)));
  auto& attrs = g.edgeAttrs(e);
  attrs.set("delay", d);
  attrs.set("minDelay", mn);
  attrs.set("avgDelay", avg);
  attrs.set("maxDelay", mx);
  attrs.set("bw", static_cast<double>(rng.uniformInt(10, 1000)));
  attrs.set("tier", tier);
}

}  // namespace

Graph hugeHost(const HugeHostOptions& o) {
  if (o.pods < 2) throw std::invalid_argument("hugeHost: need at least 2 pods");
  if (o.podSize < 2) throw std::invalid_argument("hugeHost: pods need at least 2 nodes");
  util::Rng rng(o.seed);
  Graph g(false);
  const graph::AttrId podId = graph::attrId("pod");
  const graph::AttrId xId = graph::attrId("x");
  const graph::AttrId yId = graph::attrId("y");

  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(o.pods))));
  const double jitter = o.podPitchKm * 0.35;

  // Streamed per-pod construction: only the current pod's positions and its
  // intra-edge dedup set live outside the growing graph, so a 10^6-node host
  // builds in O(podSize) auxiliary memory.
  std::vector<Point> podPoints(o.podSize);
  std::vector<Point> gatewayPoints;
  gatewayPoints.reserve(o.pods);
  std::unordered_set<std::uint64_t> seen;
  const auto packed = [](std::size_t a, std::size_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  };

  for (std::size_t p = 0; p < o.pods; ++p) {
    const double cx = static_cast<double>(p % cols) * o.podPitchKm;
    const double cy = static_cast<double>(p / cols) * o.podPitchKm;
    const NodeId base = static_cast<NodeId>(p * o.podSize);
    for (std::size_t i = 0; i < o.podSize; ++i) {
      const NodeId id = g.addNode();
      Point& pt = podPoints[i];
      pt = {cx + rng.uniform(-jitter, jitter), cy + rng.uniform(-jitter, jitter)};
      auto& attrs = g.nodeAttrs(id);
      attrs.set(podId, static_cast<std::int64_t>(p));
      attrs.set(xId, pt.x);
      attrs.set(yId, pt.y);
    }
    gatewayPoints.push_back(podPoints[0]);

    seen.clear();
    const auto connect = [&](std::size_t i, std::size_t j) {
      if (!seen.insert(packed(i, j)).second) return;
      const graph::EdgeId e = g.addEdge(base + static_cast<NodeId>(i),
                                        base + static_cast<NodeId>(j));
      setEdgeAttrs(g, e, podPoints[i], podPoints[j], o, "intra", rng);
    };
    // Random recursive spanning tree keeps every pod connected...
    for (std::size_t i = 1; i < o.podSize; ++i) {
      connect(static_cast<std::size_t>(rng.index(i)), i);
    }
    // ...plus extra random intra-pod links for data-center edge density.
    const auto extra = static_cast<std::size_t>(
        o.extraIntraFactor * static_cast<double>(o.podSize));
    for (std::size_t k = 0; k < extra; ++k) {
      const std::size_t i = rng.index(o.podSize);
      const std::size_t j = rng.index(o.podSize);
      if (i != j) connect(i, j);
    }
  }

  // Inter-pod trunks over the gateways (node 0 of each pod): a ring for
  // guaranteed global connectivity plus random chords. These are the edges
  // that cross shard boundaries under the contiguous partitioner.
  seen.clear();
  const auto gateway = [&](std::size_t p) {
    return static_cast<NodeId>(p * o.podSize);
  };
  const auto trunk = [&](std::size_t pa, std::size_t pb) {
    if (!seen.insert(packed(pa, pb)).second) return;
    const graph::EdgeId e = g.addEdge(gateway(pa), gateway(pb));
    setEdgeAttrs(g, e, gatewayPoints[pa], gatewayPoints[pb], o, "trunk", rng);
  };
  for (std::size_t p = 0; p < o.pods; ++p) trunk(p, (p + 1) % o.pods);
  for (std::size_t k = 0; k < o.trunkChords; ++k) {
    const std::size_t pa = rng.index(o.pods);
    const std::size_t pb = rng.index(o.pods);
    if (pa != pb) trunk(pa, pb);
  }

  g.attrs().set("generator", "hugeHost");
  g.attrs().set("pods", static_cast<std::int64_t>(o.pods));
  g.attrs().set("podSize", static_cast<std::int64_t>(o.podSize));
  return g;
}

}  // namespace netembed::topo
