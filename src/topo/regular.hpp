#pragma once
// Regular query topologies (paper §VII-D): rings, stars, cliques, lines,
// trees, grids, hypercubes. These are the structures that stress the
// embedding algorithms hardest — any permutation of a partial match is also
// a partial match, so pruning by candidate count is ineffective.

#include <cstddef>

#include "graph/graph.hpp"

namespace netembed::topo {

[[nodiscard]] graph::Graph ring(std::size_t n);
[[nodiscard]] graph::Graph star(std::size_t leaves);   // 1 + leaves nodes
[[nodiscard]] graph::Graph clique(std::size_t n);
[[nodiscard]] graph::Graph line(std::size_t n);
[[nodiscard]] graph::Graph completeTree(std::size_t nodes, std::size_t arity);
[[nodiscard]] graph::Graph grid(std::size_t rows, std::size_t cols);
[[nodiscard]] graph::Graph hypercube(std::size_t dimension);  // 2^dim nodes

/// Set one attribute to the same value on every edge / node (convenience for
/// building uniformly-constrained queries, e.g. clique queries with a single
/// delay window).
void setAllEdges(graph::Graph& g, std::string_view attr, graph::AttrValue value);
void setAllNodes(graph::Graph& g, std::string_view attr, graph::AttrValue value);

}  // namespace netembed::topo
