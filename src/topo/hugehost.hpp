#pragma once
// Scalable pod-structured hosting networks for the sharded host model.
//
// The ROADMAP's million-node north star needs a host generator that (a)
// reaches 10^5..10^6 nodes without a deep intermediate representation and
// (b) has the locality structure sharding exploits: `hugeHost` builds a
// composite of dense pods (data-center-style clusters laid out on the BRITE
// coordinate plane) joined by inter-pod trunk links — the same two-level
// shape as topo::composite, scaled up and streamed straight into one Graph:
// each pod's nodes and intra-pod edges are appended before the next pod
// starts, so peak auxiliary state is one pod's dedup set, not the host.
//
// Attributes match the BRITE generators so every existing constraint string
// works unchanged: nodes carry "pod" (index), "x"/"y" (km); edges carry
// "delay"/"minDelay"/"avgDelay"/"maxDelay" (ms), "bw" (Mbps) and
// "tier" = "intra" | "trunk". Deterministic per seed.

#include <cstdint>

#include "graph/graph.hpp"

namespace netembed::topo {

struct HugeHostOptions {
  /// Pod grid: pods * podSize total host nodes.
  std::size_t pods = 64;
  std::size_t podSize = 64;
  /// Intra-pod edges beyond the pod's spanning tree, as a multiple of
  /// podSize (1.0 doubles the tree; data-center pods are edge-rich).
  double extraIntraFactor = 1.0;
  /// Inter-pod links: a gateway ring (connectivity guarantee) plus this
  /// many random gateway-gateway chords.
  std::size_t trunkChords = 0;
  /// Pod plane side, km (pods are placed on a coarse grid of this pitch).
  double podPitchKm = 100.0;
  /// RTT per km of euclidean distance, ms; and the per-link floor.
  double delayPerKm = 0.01;
  double baseDelay = 0.5;
  std::uint64_t seed = 1;
};

/// Generate the pod-composite host. Undirected, connected; node ids are
/// contiguous per pod (pod p owns [p * podSize, (p + 1) * podSize)), which
/// is exactly the layout the contiguous ShardMap partitioner aligns with.
[[nodiscard]] graph::Graph hugeHost(const HugeHostOptions& options);

}  // namespace netembed::topo
