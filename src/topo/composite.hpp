#pragma once
// Two-level composite query topologies (paper §VII-D): a regular root-level
// structure whose "vertices" are themselves regular structures — the shape
// of multicast trees, DHT rings, and similar overlay applications.
//
// Each group contributes one gateway node (its node 0) to the root-level
// structure. Edges carry attr "level" = "root" | "leaf" so per-level delay
// constraints can be assigned (regular or randomized).

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace netembed::topo {

enum class Shape : std::uint8_t { Ring, Star, Clique, Line, Tree };

struct CompositeSpec {
  Shape rootShape = Shape::Ring;
  std::size_t groups = 3;
  Shape leafShape = Shape::Star;
  std::size_t groupSize = 4;  // nodes per group, including the gateway
};

/// Build the two-level topology; total nodes = groups * groupSize.
[[nodiscard]] graph::Graph composite(const CompositeSpec& spec);

/// Assign the paper's *regular* per-level delay windows: every root edge
/// gets [rootLo, rootHi], every leaf edge [leafLo, leafHi] (attrs
/// minDelay/maxDelay on the query edges).
void assignLevelDelayWindows(graph::Graph& g, double rootLo, double rootHi,
                             double leafLo, double leafHi);

/// Assign the paper's *irregular* constraints: every edge gets a window of
/// the given width placed uniformly at random inside [lo, hi].
void assignRandomDelayWindows(graph::Graph& g, double lo, double hi, double width,
                              util::Rng& rng);

}  // namespace netembed::topo
