#include "baseline/genetic.hpp"

#include <algorithm>
#include <numeric>

#include "baseline/anneal.hpp"  // assignmentEnergy
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netembed::baseline {

using core::EmbedResult;
using core::Mapping;
using core::Outcome;
using core::Problem;
using graph::NodeId;

namespace {

struct Individual {
  Mapping genes;
  std::size_t energy = 0;
};

Mapping randomInjectiveMapping(std::size_t nq, std::size_t nr, util::Rng& rng) {
  std::vector<NodeId> hosts(nr);
  for (NodeId i = 0; i < nr; ++i) hosts[i] = i;
  Mapping m(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    const std::size_t j = i + rng.index(nr - i);
    std::swap(hosts[i], hosts[j]);
    m[i] = hosts[i];
  }
  return m;
}

/// Injective one-point crossover: child takes parent A's prefix, then fills
/// the remaining positions with parent B's genes in order, skipping host
/// nodes already used (PMX-style repair keeps the child injective).
Mapping crossover(const Mapping& a, const Mapping& b, std::size_t nr, util::Rng& rng) {
  const std::size_t nq = a.size();
  const std::size_t cut = 1 + rng.index(nq > 1 ? nq - 1 : 1);
  Mapping child(nq, graph::kInvalidNode);
  std::vector<bool> used(nr, false);
  for (std::size_t i = 0; i < cut; ++i) {
    child[i] = a[i];
    used[a[i]] = true;
  }
  std::size_t fill = cut;
  for (std::size_t i = 0; i < nq && fill < nq; ++i) {
    if (!used[b[i]]) {
      child[fill++] = b[i];
      used[b[i]] = true;
    }
  }
  // Any still-unfilled slots (duplicates collided): take free hosts in order.
  for (NodeId r = 0; fill < nq && r < nr; ++r) {
    if (!used[r]) {
      child[fill++] = r;
      used[r] = true;
    }
  }
  return child;
}

void mutate(Mapping& genes, std::size_t nr, util::Rng& rng) {
  const std::size_t nq = genes.size();
  if (rng.bernoulli(0.5) && nq >= 2) {
    // Swap two images.
    const std::size_t i = rng.index(nq);
    std::size_t j = rng.index(nq);
    while (j == i) j = rng.index(nq);
    std::swap(genes[i], genes[j]);
    return;
  }
  // Reassign one query node to a random unused host node.
  std::vector<bool> used(nr, false);
  for (const NodeId r : genes) used[r] = true;
  const std::size_t i = rng.index(nq);
  for (std::size_t tries = 0; tries < 16; ++tries) {
    const NodeId r = static_cast<NodeId>(rng.index(nr));
    if (!used[r]) {
      genes[i] = r;
      return;
    }
  }
}

}  // namespace

EmbedResult geneticSearch(const Problem& problem, const GeneticOptions& options,
                          core::SearchContext& context) {
  util::Stopwatch total;
  problem.validate();
  context.beginSearchPhase();
  util::Rng rng(options.seed);

  core::SearchStats stats;
  const auto wrapUp = [&](const Mapping* winner) {
    if (winner) (void)context.offerSolution(*winner);
    context.mergeStats(stats);
    EmbedResult result = context.finish(/*exhausted=*/false);
    result.stats.searchMs = total.elapsedMs();
    return result;
  };

  const std::size_t nq = problem.query->nodeCount();
  const std::size_t nr = problem.host->nodeCount();

  std::vector<Individual> population(options.populationSize);
  for (Individual& ind : population) {
    ind.genes = randomInjectiveMapping(nq, nr, rng);
    ind.energy = assignmentEnergy(problem, ind.genes, stats.constraintEvals);
  }

  const auto byEnergy = [](const Individual& x, const Individual& y) {
    return x.energy < y.energy;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), byEnergy);
    if (population.front().energy == 0) return wrapUp(&population.front().genes);
    ++stats.treeNodesVisited;
    if (context.shouldStop()) break;

    std::vector<Individual> next;
    next.reserve(options.populationSize);
    for (std::size_t i = 0; i < std::min(options.eliteCount, population.size()); ++i) {
      next.push_back(population[i]);
    }

    const auto tournament = [&]() -> const Individual& {
      const Individual* best = &population[rng.index(population.size())];
      for (std::size_t k = 1; k < options.tournamentSize; ++k) {
        const Individual& challenger = population[rng.index(population.size())];
        if (challenger.energy < best->energy) best = &challenger;
      }
      return *best;
    };

    while (next.size() < options.populationSize) {
      const Individual& pa = tournament();
      const Individual& pb = tournament();
      Individual child;
      child.genes = rng.bernoulli(options.crossoverRate)
                        ? crossover(pa.genes, pb.genes, nr, rng)
                        : pa.genes;
      if (rng.bernoulli(options.mutationRate)) mutate(child.genes, nr, rng);
      child.energy = assignmentEnergy(problem, child.genes, stats.constraintEvals);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  return wrapUp(nullptr);
}

EmbedResult geneticSearch(const Problem& problem, const GeneticOptions& options,
                          const core::SearchOptions& limits) {
  core::SearchContext context(limits);
  return geneticSearch(problem, options, context);
}

}  // namespace netembed::baseline
