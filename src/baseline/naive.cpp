#include "baseline/naive.hpp"

#include "util/timer.hpp"

namespace netembed::baseline {

using core::EmbedResult;
using core::Problem;
using core::SearchContext;
using core::SearchOptions;
using core::SearchStats;
using core::SolutionSink;
using graph::NodeId;

namespace {

class NaiveEngine {
 public:
  NaiveEngine(const Problem& problem, SearchContext& context)
      : problem_(problem), context_(context) {}

  EmbedResult run() {
    util::Stopwatch total;
    problem_.validate();
    context_.beginSearchPhase();

    const std::size_t nq = problem_.query->nodeCount();
    mapping_.assign(nq, graph::kInvalidNode);
    used_.assign(problem_.host->nodeCount(), false);

    // Edges from each query node to smaller-id (already assigned) nodes.
    earlier_.resize(nq);
    const graph::Graph& q = *problem_.query;
    for (NodeId v = 0; v < nq; ++v) {
      // vIsSource reflects the *stored* edge orientation — constraints bind
      // vSource/vTarget to stored endpoints even on undirected graphs.
      for (const graph::Neighbor& nb : q.neighbors(v)) {
        if (nb.node < v) {
          earlier_[v].push_back({nb.edge, nb.node, q.edgeSource(nb.edge) == v});
        }
      }
      if (q.directed()) {
        for (const graph::Neighbor& nb : q.inNeighbors(v)) {
          if (nb.node < v) earlier_[v].push_back({nb.edge, nb.node, false});
        }
      }
    }

    descend(0);

    context_.mergeStats(stats_);
    EmbedResult result = context_.finish(/*exhausted=*/!stopped_);
    result.stats.searchMs = total.elapsedMs();
    return result;
  }

 private:
  struct EarlierEdge {
    graph::EdgeId qedge;
    NodeId neighbor;
    bool vIsSource;
  };

  bool limitsHit() {
    if (stopped_) return true;
    if (context_.shouldStop(stats_.treeNodesVisited)) stopped_ = true;
    return stopped_;
  }

  bool candidateOk(NodeId v, NodeId r) {
    if (!problem_.nodeOk(v, r)) return false;
    const graph::Graph& h = *problem_.host;
    for (const EarlierEdge& ee : earlier_[v]) {
      const NodeId rw = mapping_[ee.neighbor];
      const NodeId from = ee.vIsSource ? r : rw;
      const NodeId to = ee.vIsSource ? rw : r;
      const auto he = h.findEdge(from, to);
      if (!he) return false;
      const NodeId qa = ee.vIsSource ? v : ee.neighbor;
      const NodeId qb = ee.vIsSource ? ee.neighbor : v;
      if (!problem_.edgeOk(ee.qedge, qa, qb, *he, from, to, stats_.constraintEvals)) {
        return false;
      }
    }
    return true;
  }

  void descend(NodeId v) {
    if (limitsHit()) return;
    if (v == mapping_.size()) {
      if (!context_.offerSolution(mapping_)) stopped_ = true;
      return;
    }
    for (NodeId r = 0; r < used_.size(); ++r) {
      if (limitsHit()) return;
      if (used_[r]) continue;
      ++stats_.treeNodesVisited;
      if (!candidateOk(v, r)) continue;
      mapping_[v] = r;
      used_[r] = true;
      descend(v + 1);
      used_[r] = false;
      mapping_[v] = graph::kInvalidNode;
      if (stopped_) return;
    }
    ++stats_.backtracks;
  }

  const Problem& problem_;
  SearchContext& context_;
  core::Mapping mapping_;
  std::vector<bool> used_;
  std::vector<std::vector<EarlierEdge>> earlier_;
  SearchStats stats_;
  bool stopped_ = false;
};

}  // namespace

EmbedResult naiveSearch(const Problem& problem, const SearchOptions& options,
                        const SolutionSink& sink) {
  SearchContext context(options, sink);
  return NaiveEngine(problem, context).run();
}

EmbedResult naiveSearch(const Problem& problem, SearchContext& context) {
  return NaiveEngine(problem, context).run();
}

}  // namespace netembed::baseline
