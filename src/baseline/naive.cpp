#include "baseline/naive.hpp"

#include "util/timer.hpp"

namespace netembed::baseline {

using core::EmbedResult;
using core::Outcome;
using core::Problem;
using core::SearchOptions;
using core::SearchStats;
using core::SolutionSink;
using graph::NodeId;

namespace {

class NaiveEngine {
 public:
  NaiveEngine(const Problem& problem, const SearchOptions& options,
              const SolutionSink& sink)
      : problem_(problem), options_(options), sink_(sink), deadline_(options.timeout) {}

  EmbedResult run() {
    util::Stopwatch total;
    problem_.validate();
    EmbedResult result;
    stats_ = &result.stats;
    result.stats.firstMatchMs = -1.0;

    const std::size_t nq = problem_.query->nodeCount();
    mapping_.assign(nq, graph::kInvalidNode);
    used_.assign(problem_.host->nodeCount(), false);

    // Edges from each query node to smaller-id (already assigned) nodes.
    earlier_.resize(nq);
    const graph::Graph& q = *problem_.query;
    for (NodeId v = 0; v < nq; ++v) {
      // vIsSource reflects the *stored* edge orientation — constraints bind
      // vSource/vTarget to stored endpoints even on undirected graphs.
      for (const graph::Neighbor& nb : q.neighbors(v)) {
        if (nb.node < v) {
          earlier_[v].push_back({nb.edge, nb.node, q.edgeSource(nb.edge) == v});
        }
      }
      if (q.directed()) {
        for (const graph::Neighbor& nb : q.inNeighbors(v)) {
          if (nb.node < v) earlier_[v].push_back({nb.edge, nb.node, false});
        }
      }
    }

    descend(0, result);

    result.solutionCount = solutionCount_;
    result.stats.searchMs = total.elapsedMs();
    if (!stopped_) {
      result.outcome = Outcome::Complete;
    } else {
      result.outcome = solutionCount_ > 0 ? Outcome::Partial : Outcome::Inconclusive;
    }
    return result;
  }

 private:
  struct EarlierEdge {
    graph::EdgeId qedge;
    NodeId neighbor;
    bool vIsSource;
  };

  bool limitsHit() {
    if (stopped_) return true;
    if (deadline_.isBounded() &&
        stats_->treeNodesVisited % options_.checkStride == 0 && deadline_.expired()) {
      stopped_ = true;
    }
    return stopped_;
  }

  bool candidateOk(NodeId v, NodeId r) {
    if (!problem_.nodeOk(v, r)) return false;
    const graph::Graph& h = *problem_.host;
    for (const EarlierEdge& ee : earlier_[v]) {
      const NodeId rw = mapping_[ee.neighbor];
      const NodeId from = ee.vIsSource ? r : rw;
      const NodeId to = ee.vIsSource ? rw : r;
      const auto he = h.findEdge(from, to);
      if (!he) return false;
      const NodeId qa = ee.vIsSource ? v : ee.neighbor;
      const NodeId qb = ee.vIsSource ? ee.neighbor : v;
      if (!problem_.edgeOk(ee.qedge, qa, qb, *he, from, to, stats_->constraintEvals)) {
        return false;
      }
    }
    return true;
  }

  void descend(NodeId v, EmbedResult& result) {
    if (limitsHit()) return;
    if (v == mapping_.size()) {
      onSolution(result);
      return;
    }
    for (NodeId r = 0; r < used_.size(); ++r) {
      if (limitsHit()) return;
      if (used_[r]) continue;
      ++stats_->treeNodesVisited;
      if (!candidateOk(v, r)) continue;
      mapping_[v] = r;
      used_[r] = true;
      descend(v + 1, result);
      used_[r] = false;
      mapping_[v] = graph::kInvalidNode;
      if (stopped_) return;
    }
    ++stats_->backtracks;
  }

  void onSolution(EmbedResult& result) {
    ++solutionCount_;
    if (stats_->firstMatchMs < 0) stats_->firstMatchMs = firstTimer_.elapsedMs();
    if (result.mappings.size() < options_.storeLimit) result.mappings.push_back(mapping_);
    if (sink_ && !sink_(mapping_)) {
      stopped_ = true;
      return;
    }
    if (options_.maxSolutions != 0 && solutionCount_ >= options_.maxSolutions) {
      stopped_ = true;
    }
  }

  const Problem& problem_;
  const SearchOptions& options_;
  const SolutionSink& sink_;
  util::Deadline deadline_;
  util::Stopwatch firstTimer_;
  core::Mapping mapping_;
  std::vector<bool> used_;
  std::vector<std::vector<EarlierEdge>> earlier_;
  SearchStats* stats_ = nullptr;
  std::uint64_t solutionCount_ = 0;
  bool stopped_ = false;
};

}  // namespace

EmbedResult naiveSearch(const Problem& problem, const SearchOptions& options,
                        const SolutionSink& sink) {
  return NaiveEngine(problem, options, sink).run();
}

}  // namespace netembed::baseline
