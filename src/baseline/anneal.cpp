#include "baseline/anneal.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netembed::baseline {

using core::EmbedResult;
using core::Mapping;
using core::Outcome;
using core::Problem;
using graph::NodeId;

std::size_t assignmentEnergy(const Problem& problem, const Mapping& mapping,
                             std::uint64_t& constraintEvals) {
  const graph::Graph& q = *problem.query;
  const graph::Graph& h = *problem.host;
  std::size_t energy = 0;
  for (NodeId v = 0; v < q.nodeCount(); ++v) {
    if (!problem.nodeOk(v, mapping[v])) ++energy;
  }
  for (graph::EdgeId e = 0; e < q.edgeCount(); ++e) {
    const NodeId qa = q.edgeSource(e);
    const NodeId qb = q.edgeTarget(e);
    const NodeId ra = mapping[qa];
    const NodeId rb = mapping[qb];
    const auto he = h.findEdge(ra, rb);
    if (!he || !problem.edgeOk(e, qa, qb, *he, ra, rb, constraintEvals)) ++energy;
  }
  return energy;
}

namespace {

Mapping randomInjective(const Problem& problem, util::Rng& rng) {
  const std::size_t nq = problem.query->nodeCount();
  const std::size_t nr = problem.host->nodeCount();
  // Partial Fisher-Yates over host ids: first nq entries of a permutation.
  std::vector<NodeId> hosts(nr);
  for (NodeId i = 0; i < nr; ++i) hosts[i] = i;
  Mapping m(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    const std::size_t j = i + rng.index(nr - i);
    std::swap(hosts[i], hosts[j]);
    m[i] = hosts[i];
  }
  return m;
}

}  // namespace

EmbedResult annealSearch(const Problem& problem, const AnnealOptions& options,
                         core::SearchContext& context) {
  util::Stopwatch total;
  problem.validate();
  context.beginSearchPhase();
  util::Rng rng(options.seed);

  core::SearchStats stats;
  const auto bail = [&] {
    context.mergeStats(stats);
    EmbedResult result = context.finish(/*exhausted=*/false);
    result.stats.searchMs = total.elapsedMs();
    return result;
  };

  const std::size_t nq = problem.query->nodeCount();
  const std::size_t nr = problem.host->nodeCount();

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    Mapping current = randomInjective(problem, rng);
    std::size_t energy = assignmentEnergy(problem, current, stats.constraintEvals);
    double temperature = options.initialTemperature;

    // Inverse map for O(1) swap moves: host -> query node or invalid.
    std::vector<NodeId> inverse(nr, graph::kInvalidNode);
    for (NodeId v = 0; v < nq; ++v) inverse[current[v]] = v;

    for (std::size_t step = 0; step < options.iterations && energy > 0; ++step) {
      ++stats.treeNodesVisited;
      if (context.shouldStop(stats.treeNodesVisited)) return bail();

      Mapping proposal = current;
      const NodeId v = static_cast<NodeId>(rng.index(nq));
      const NodeId target = static_cast<NodeId>(rng.index(nr));
      if (rng.bernoulli(options.swapProbability) || inverse[target] != graph::kInvalidNode) {
        // Swap v's image with whoever owns `target` (or plain move if free).
        const NodeId other = inverse[target];
        proposal[v] = target;
        if (other != graph::kInvalidNode && other != v) proposal[other] = current[v];
      } else {
        proposal[v] = target;
      }

      const std::size_t newEnergy =
          assignmentEnergy(problem, proposal, stats.constraintEvals);
      const double delta =
          static_cast<double>(newEnergy) - static_cast<double>(energy);
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / std::max(1e-9, temperature))) {
        current = std::move(proposal);
        std::fill(inverse.begin(), inverse.end(), graph::kInvalidNode);
        for (NodeId u = 0; u < nq; ++u) inverse[current[u]] = u;
        energy = newEnergy;
      }
      temperature *= options.coolingFactor;
    }

    if (energy == 0) {
      (void)context.offerSolution(current);
      context.mergeStats(stats);
      EmbedResult result = context.finish(/*exhausted=*/false);
      result.stats.searchMs = total.elapsedMs();
      return result;
    }
    ++stats.backtracks;  // counts failed restarts
  }

  return bail();
}

EmbedResult annealSearch(const Problem& problem, const AnnealOptions& options,
                         const core::SearchOptions& limits) {
  core::SearchContext context(limits);
  return annealSearch(problem, options, context);
}

}  // namespace netembed::baseline
