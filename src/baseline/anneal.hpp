#pragma once
// Simulated-annealing embedder: the metaheuristic family of Emulab's
// `assign` [13] applied to the feasibility problem (substitution per
// DESIGN.md §5). Energy = number of violated edge/node constraints; a
// mapping with zero energy is feasible. No completeness guarantee: failure
// to find a solution proves nothing — exactly the weakness §II calls out.

#include <cstdint>

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::baseline {

struct AnnealOptions {
  std::size_t iterations = 200'000;  // total Metropolis steps per restart
  std::size_t restarts = 4;
  double initialTemperature = 2.5;
  double coolingFactor = 0.9995;     // geometric, applied per step
  double swapProbability = 0.4;      // swap two images vs. reassign one
  std::uint64_t seed = 1;
};

/// Returns Partial with one mapping on success, Inconclusive otherwise
/// (never Complete: annealing cannot prove infeasibility). `limits.timeout`
/// caps wall time across restarts.
[[nodiscard]] core::EmbedResult annealSearch(const core::Problem& problem,
                                             const AnnealOptions& options = {},
                                             const core::SearchOptions& limits = {});

/// Run against an externally-owned context; the context supplies the
/// deadline/cancellation and collects the solution.
[[nodiscard]] core::EmbedResult annealSearch(const core::Problem& problem,
                                             const AnnealOptions& options,
                                             core::SearchContext& context);

/// Energy of a complete assignment: count of query edges whose host pair is
/// absent or fails the constraint, plus node-constraint violations. Exposed
/// for tests and for the genetic baseline's fitness.
[[nodiscard]] std::size_t assignmentEnergy(const core::Problem& problem,
                                           const core::Mapping& mapping,
                                           std::uint64_t& constraintEvals);

}  // namespace netembed::baseline
