#pragma once
// Naive backtracking baseline: the "brute-force with pruning" strawman the
// paper's related work describes ([16]-style search without NETEMBED's
// stage-1 filters or Lemma-1 ordering).
//
// Query nodes are assigned in natural order; every unused host node is tried
// at each depth, rejecting a candidate only when an edge to an
// already-assigned neighbour is missing or fails the constraint. Complete
// and correct, but explores far more of the permutation tree than ECF —
// which is precisely the comparison §VII-F makes.

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::baseline {

[[nodiscard]] core::EmbedResult naiveSearch(const core::Problem& problem,
                                            const core::SearchOptions& options = {},
                                            const core::SolutionSink& sink = {});

/// Run against an externally-owned context; the context supplies the options.
[[nodiscard]] core::EmbedResult naiveSearch(const core::Problem& problem,
                                            core::SearchContext& context);

}  // namespace netembed::baseline
