#pragma once
// Genetic-algorithm embedder: the metaheuristic family of Netbed's
// `wanassign` [10] applied to the feasibility problem (substitution per
// DESIGN.md §5). Individuals are injective assignments; fitness is the
// negated constraint-violation energy. Like annealing, incomplete: a failed
// run proves nothing about feasibility.

#include <cstdint>

#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/search.hpp"

namespace netembed::baseline {

struct GeneticOptions {
  std::size_t populationSize = 64;
  std::size_t generations = 600;
  std::size_t tournamentSize = 3;
  double crossoverRate = 0.8;
  double mutationRate = 0.25;  // per-offspring probability of one random move
  std::size_t eliteCount = 2;
  std::uint64_t seed = 1;
};

/// Returns Partial with one mapping on success, Inconclusive otherwise.
[[nodiscard]] core::EmbedResult geneticSearch(const core::Problem& problem,
                                              const GeneticOptions& options = {},
                                              const core::SearchOptions& limits = {});

/// Run against an externally-owned context; the context supplies the
/// deadline/cancellation and collects the solution.
[[nodiscard]] core::EmbedResult geneticSearch(const core::Problem& problem,
                                              const GeneticOptions& options,
                                              core::SearchContext& context);

}  // namespace netembed::baseline
