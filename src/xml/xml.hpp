#pragma once
// Minimal dependency-free XML document parser and serializer.
//
// Supports the subset GraphML needs: elements, attributes (both quote
// styles), character data with the five standard entities plus numeric
// character references, comments, CDATA sections, processing instructions,
// and the XML declaration. No DTDs, no namespaces resolution (prefixes are
// kept verbatim in names).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netembed::xml {

/// Parse error with 1-based line/column of the offending input position.
class ParseError : public std::exception {
 public:
  ParseError(std::string message, std::size_t line, std::size_t column);
  [[nodiscard]] const char* what() const noexcept override { return full_.c_str(); }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::string full_;
  std::size_t line_;
  std::size_t column_;
};

struct Element {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<Element> children;
  std::string text;  // concatenated character data directly inside this element

  /// First attribute with the given name; nullptr when absent.
  [[nodiscard]] const std::string* attr(std::string_view name) const noexcept;

  /// Attribute value or a thrown error (for required attributes).
  [[nodiscard]] const std::string& requiredAttr(std::string_view name) const;

  /// First child element with the given name; nullptr when absent.
  [[nodiscard]] const Element* child(std::string_view name) const noexcept;

  /// All child elements with the given name, in document order.
  [[nodiscard]] std::vector<const Element*> childrenNamed(std::string_view name) const;
};

/// Parse a complete document; returns the root element.
[[nodiscard]] Element parse(std::string_view input);

/// Escape text for use in character data / attribute values.
[[nodiscard]] std::string escape(std::string_view text);

/// Serialize with 2-space indentation and an XML declaration.
[[nodiscard]] std::string serialize(const Element& root);

}  // namespace netembed::xml
