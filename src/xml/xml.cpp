#include "xml/xml.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace netembed::xml {

ParseError::ParseError(std::string message, std::size_t line, std::size_t column)
    : line_(line), column_(column) {
  full_ = "XML parse error at " + std::to_string(line) + ":" + std::to_string(column) +
          ": " + std::move(message);
}

const std::string* Element::attr(std::string_view name) const noexcept {
  for (const auto& [k, v] : attributes) {
    if (k == name) return &v;
  }
  return nullptr;
}

const std::string& Element::requiredAttr(std::string_view name) const {
  const std::string* v = attr(name);
  if (!v) {
    throw std::runtime_error("XML element <" + this->name + "> missing attribute '" +
                             std::string(name) + "'");
  }
  return *v;
}

const Element* Element::child(std::string_view name) const noexcept {
  for (const Element& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const Element*> Element::childrenNamed(std::string_view name) const {
  std::vector<const Element*> out;
  for (const Element& c : children) {
    if (c.name == name) out.push_back(&c);
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Element parseDocument() {
    skipProlog();
    Element root = parseElement();
    skipMisc();
    if (pos_ != in_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(message, line, col);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= in_.size(); }
  [[nodiscard]] char peek() const { return in_[pos_]; }

  [[nodiscard]] bool lookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  void expect(std::string_view s) {
    if (!lookingAt(s)) fail("expected '" + std::string(s) + "'");
    pos_ += s.size();
  }

  void skipWhitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void skipComment() {
    expect("<!--");
    const auto end = in_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skipProcessingInstruction() {
    expect("<?");
    const auto end = in_.find("?>", pos_);
    if (end == std::string_view::npos) fail("unterminated processing instruction");
    pos_ = end + 2;
  }

  void skipDoctype() {
    // Tolerant: skip to the matching '>' (no internal-subset brackets support
    // beyond one nesting level, which covers real-world GraphML files).
    expect("<!DOCTYPE");
    int depth = 0;
    while (!eof()) {
      const char c = in_[pos_++];
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == '>' && depth <= 0) return;
    }
    fail("unterminated DOCTYPE");
  }

  void skipMisc() {
    for (;;) {
      skipWhitespace();
      if (lookingAt("<!--")) {
        skipComment();
      } else if (lookingAt("<?")) {
        skipProcessingInstruction();
      } else {
        return;
      }
    }
  }

  void skipProlog() {
    skipMisc();
    if (lookingAt("<!DOCTYPE")) {
      skipDoctype();
      skipMisc();
    }
  }

  [[nodiscard]] bool isNameStart(char c) const {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  [[nodiscard]] bool isNameChar(char c) const {
    return isNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '.';
  }

  std::string parseName() {
    if (eof() || !isNameStart(peek())) fail("expected a name");
    const std::size_t start = pos_;
    while (!eof() && isNameChar(peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  std::string decodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity reference");
      const std::string_view body = raw.substr(i + 1, semi - i - 1);
      if (body == "amp") {
        out += '&';
      } else if (body == "lt") {
        out += '<';
      } else if (body == "gt") {
        out += '>';
      } else if (body == "quot") {
        out += '"';
      } else if (body == "apos") {
        out += '\'';
      } else if (!body.empty() && body[0] == '#') {
        const bool hex = body.size() > 1 && (body[1] == 'x' || body[1] == 'X');
        unsigned long code = 0;
        try {
          code = std::stoul(std::string(body.substr(hex ? 2 : 1)), nullptr, hex ? 16 : 10);
        } catch (const std::exception&) {
          fail("bad numeric character reference '&" + std::string(body) + ";'");
        }
        appendUtf8(out, code);
      } else {
        fail("unknown entity '&" + std::string(body) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  static void appendUtf8(std::string& out, unsigned long code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parseAttrValue() {
    if (eof() || (peek() != '"' && peek() != '\'')) fail("expected attribute value");
    const char quote = in_[pos_++];
    const std::size_t start = pos_;
    while (!eof() && peek() != quote) {
      if (peek() == '<') fail("'<' in attribute value");
      ++pos_;
    }
    if (eof()) fail("unterminated attribute value");
    const std::string_view raw = in_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return decodeEntities(raw);
  }

  Element parseElement() {
    expect("<");
    Element el;
    el.name = parseName();
    for (;;) {
      skipWhitespace();
      if (eof()) fail("unterminated start tag");
      if (lookingAt("/>")) {
        pos_ += 2;
        return el;
      }
      if (peek() == '>') {
        ++pos_;
        parseContent(el);
        return el;
      }
      std::string attr = parseName();
      skipWhitespace();
      expect("=");
      skipWhitespace();
      el.attributes.emplace_back(std::move(attr), parseAttrValue());
    }
  }

  void parseContent(Element& el) {
    for (;;) {
      if (eof()) fail("unterminated element <" + el.name + ">");
      if (lookingAt("</")) {
        pos_ += 2;
        const std::string name = parseName();
        if (name != el.name) {
          fail("mismatched closing tag </" + name + "> for <" + el.name + ">");
        }
        skipWhitespace();
        expect(">");
        return;
      }
      if (lookingAt("<!--")) {
        skipComment();
        continue;
      }
      if (lookingAt("<![CDATA[")) {
        pos_ += 9;
        const auto end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) fail("unterminated CDATA section");
        el.text.append(in_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (lookingAt("<?")) {
        skipProcessingInstruction();
        continue;
      }
      if (peek() == '<') {
        el.children.push_back(parseElement());
        continue;
      }
      const std::size_t start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      el.text += decodeEntities(in_.substr(start, pos_ - start));
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

void serializeInto(const Element& el, std::ostringstream& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << '<' << el.name;
  for (const auto& [k, v] : el.attributes) out << ' ' << k << "=\"" << escape(v) << '"';
  const std::string trimmed = [&] {
    std::string t = el.text;
    const auto notSpace = [](unsigned char c) { return !std::isspace(c); };
    while (!t.empty() && !notSpace(static_cast<unsigned char>(t.back()))) t.pop_back();
    std::size_t i = 0;
    while (i < t.size() && !notSpace(static_cast<unsigned char>(t[i]))) ++i;
    return t.substr(i);
  }();
  if (el.children.empty() && trimmed.empty()) {
    out << "/>\n";
    return;
  }
  out << '>';
  if (el.children.empty()) {
    out << escape(trimmed) << "</" << el.name << ">\n";
    return;
  }
  out << '\n';
  if (!trimmed.empty()) out << pad << "  " << escape(trimmed) << '\n';
  for (const Element& c : el.children) serializeInto(c, out, indent + 1);
  out << pad << "</" << el.name << ">\n";
}

}  // namespace

Element parse(std::string_view input) { return Parser(input).parseDocument(); }

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string serialize(const Element& root) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  serializeInto(root, out, 0);
  return out.str();
}

}  // namespace netembed::xml
