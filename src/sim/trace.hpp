#pragma once
// The dynamic-workload trace model (the simulator's input vocabulary).
//
// NETEMBED's figure benches replay static paper instances; a service under
// continuous traffic sees *arrivals* that hold substrate resources for a
// lifetime and then *depart* — the standard dynamic-VNE evaluation regime
// (time-varying acceptance ratio, revenue/cost, utilization under an
// arrival/departure process). A sim::Trace is the deterministic record of
// one such workload: a time-ordered event list of arrivals (query shape,
// demands, QoS class, tenant, budgets, holding time), the departures the
// holding times imply, and interleaved monitoring-style model mutations.
//
// Traces are artifacts: the seeded generators below (Poisson, on/off burst,
// diurnal) produce them, and writeCsv/readCsv round-trip them through the
// util::CsvWriter/CsvReader dialect so a scenario can be regenerated,
// shipped, diffed, and replayed bit-identically (netembed_cli --trace).
//
// Time is virtual, in microseconds from the scenario start. A departure
// event is emitted explicitly at arrivalUs + holdUs rather than derived at
// replay time, so the trace file alone defines the workload — the driver
// releases the reservation if the arrival was accepted and skips the event
// otherwise.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "service/qos.hpp"

namespace netembed::sim {

enum class TraceEventKind : std::uint8_t { Arrival, Departure, Mutation };
[[nodiscard]] const char* traceEventKindName(TraceEventKind k) noexcept;

/// One trace event. Arrival/Departure pairs share `id`; the fields below
/// `holdUs` describe the arrival's request and are zero for the other kinds.
struct TraceEvent {
  std::uint64_t timeUs = 0;
  TraceEventKind kind = TraceEventKind::Arrival;
  /// Request id for Arrival/Departure (unique per arrival, ascending in
  /// arrival order); generator stream index for Mutation.
  std::uint64_t id = 0;

  // --- arrival payload -------------------------------------------------------
  /// Query topology: a connected subgraph of this many nodes / edges sampled
  /// from the pristine host under `querySeed` (deterministic per seed).
  std::uint32_t queryNodes = 0;
  std::uint32_t queryEdges = 0;
  std::uint64_t querySeed = 0;
  service::Priority priority = service::Priority::Normal;
  std::uint64_t tenant = 0;
  /// Admission deadline in ms (0 = none). On the virtual clock this binds
  /// against the *virtual* queue wait; on the wall clock it is handed to the
  /// service's admission queue directly.
  std::uint32_t deadlineMs = 0;
  /// Compute budget in ms once running (0 = none).
  std::uint32_t budgetMs = 0;
  /// Embedding lifetime: the matching Departure event sits at
  /// timeUs + holdUs.
  std::uint64_t holdUs = 0;
  /// Per-query-node CPU demand / per-query-edge bandwidth demand, reserved
  /// on acceptance and released at departure.
  double cpuDemand = 0.0;
  double bwDemand = 0.0;

  // --- mutation payload ------------------------------------------------------
  /// Seed for the mutation's RNG stream (which element, which attribute,
  /// which nudge).
  std::uint64_t mutationSeed = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct Trace {
  std::vector<TraceEvent> events;  // sorted by (timeUs, stable emit order)

  [[nodiscard]] std::size_t arrivalCount() const;
  /// One past the last event's timestamp (0 for an empty trace): the
  /// scenario horizon the scorecard buckets span.
  [[nodiscard]] std::uint64_t horizonUs() const;

  /// Stable sort by timeUs (generators emit arrival/departure pairs out of
  /// order; replay requires time order).
  void sortByTime();

  /// CSV round trip (header row + one row per event, util::CsvWriter
  /// dialect). readCsv throws std::runtime_error on malformed input —
  /// unknown header, wrong field count, unparsable numbers.
  void writeCsv(std::ostream& out) const;
  [[nodiscard]] static Trace readCsv(std::istream& in);

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Knobs shared by every generator. Defaults give a small, mixed-class,
/// mixed-tenant workload that a laptop replays in well under a second.
struct TraceGenOptions {
  std::uint64_t seed = 42;
  /// Arrivals to generate (each with a paired departure).
  std::size_t arrivals = 64;
  /// Mean arrival rate, requests per virtual second.
  double arrivalsPerSec = 200.0;
  /// Mean holding time (exponential), virtual ms.
  double meanHoldMs = 120.0;
  /// Query topology bounds (inclusive); edges are drawn per arrival between
  /// nodes-1 (tree) and nodes*(nodes-1)/2, clamped to this cap.
  std::uint32_t queryNodesMin = 3;
  std::uint32_t queryNodesMax = 6;
  std::uint32_t queryEdgesMax = 9;
  /// Cumulative Low/Normal/High mix (e.g. {0.25, 0.85, 1.0}).
  double lowShare = 0.25;
  double normalShare = 0.60;
  /// Tenants cycle through [0, tenants).
  std::uint64_t tenants = 3;
  /// Fraction of arrivals carrying an admission deadline, and its value.
  double deadlineShare = 0.25;
  std::uint32_t deadlineMs = 200;
  /// Per-node CPU / per-edge bandwidth demand ranges.
  double cpuDemandMin = 1.0;
  double cpuDemandMax = 3.0;
  double bwDemandMin = 1.0;
  double bwDemandMax = 4.0;
  /// Monitoring-style model mutations per arrival (Poisson-thinned; 0 = no
  /// mutation events).
  double mutationsPerArrival = 0.0;

  // --- burst generator -------------------------------------------------------
  /// On/off bursts: `burstLenMs` of arrivals at burstFactor x the base rate,
  /// then `gapLenMs` of silence.
  double burstFactor = 6.0;
  double burstLenMs = 40.0;
  double gapLenMs = 160.0;

  // --- diurnal generator -----------------------------------------------------
  /// Sinusoidal rate modulation: rate(t) = base * (1 + depth*sin(2*pi*t/T)),
  /// emulating a day/night load curve compressed to `periodMs`.
  double diurnalDepth = 0.8;
  double diurnalPeriodMs = 400.0;
};

/// Memoryless arrivals at the base rate.
[[nodiscard]] Trace poissonTrace(const TraceGenOptions& options);
/// On/off bursts (see burstFactor/burstLenMs/gapLenMs).
[[nodiscard]] Trace burstTrace(const TraceGenOptions& options);
/// Sinusoidally modulated arrivals (see diurnalDepth/diurnalPeriodMs).
[[nodiscard]] Trace diurnalTrace(const TraceGenOptions& options);

}  // namespace netembed::sim
