#include "sim/driver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/plan.hpp"
#include "graph/subgraph.hpp"
#include "service/ticket.hpp"
#include "topo/brite.hpp"
#include "topo/sample.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace netembed::sim {

const char* clockModeName(ClockMode m) noexcept {
  return m == ClockMode::Virtual ? "virtual" : "wall";
}

graph::Graph capacitatedHost(std::size_t nodes, std::uint64_t seed,
                             double cpuCapacity, double bwCapacity) {
  topo::BriteOptions bo;
  bo.nodes = nodes;
  bo.model = topo::BriteOptions::Model::Waxman;
  bo.waxmanAlpha = 0.4;
  bo.seed = seed;
  graph::Graph host = topo::brite(bo);
  for (graph::NodeId n = 0; n < host.nodeCount(); ++n) {
    host.nodeAttrs(n).set("cpu", cpuCapacity);
  }
  for (graph::EdgeId e = 0; e < host.edgeCount(); ++e) {
    host.edgeAttrs(e).set("bw", bwCapacity);
  }
  return host;
}

namespace {

double attrTotal(const graph::Graph& g, std::string_view attr, bool onNodes) {
  double total = 0.0;
  const std::size_t count = onNodes ? g.nodeCount() : g.edgeCount();
  for (std::uint32_t i = 0; i < count; ++i) {
    const graph::AttrMap& attrs = onNodes ? g.nodeAttrs(i) : g.edgeAttrs(i);
    if (const graph::AttrValue* v = attrs.get(attr); v && v->isNumeric()) {
      total += v->asDouble();
    }
  }
  return total;
}

/// Sample the arrival's query from the *pristine* host (sampling from the
/// live, reservation-depleted host would entangle query shapes with the
/// admission history and break per-seed reproducibility across configs).
graph::Graph sampleQuery(const graph::Graph& pristine, const TraceEvent& e,
                         double delayTolerance) {
  util::Rng rng(e.querySeed);
  graph::Subgraph sg = topo::sampleConnectedSubgraph(
      pristine, std::max<std::uint32_t>(e.queryNodes, 1), e.queryEdges, rng);
  graph::Graph query = std::move(sg.graph);
  topo::widenDelayWindows(query, delayTolerance);
  // The sampler copies host attrs, so the query's cpu/bw would equal the
  // full capacity — overwrite them with the arrival's demands.
  for (graph::NodeId n = 0; n < query.nodeCount(); ++n) {
    query.nodeAttrs(n).set("cpu", e.cpuDemand);
  }
  for (graph::EdgeId ed = 0; ed < query.edgeCount(); ++ed) {
    query.edgeAttrs(ed).set("bw", e.bwDemand);
  }
  return query;
}

/// Scope guard: the fault injector is process-wide, so a throwing run must
/// not leave it armed for the next one.
class ChaosScope {
 public:
  ChaosScope(const DriverOptions& opt) {
    if (!opt.chaosEnabled) return;
    auto& fi = util::FaultInjector::instance();
    fi.enable(opt.chaosSeed);
    util::FaultSpec spec;
    spec.maxFires = opt.chaosMaxFiresPerSite;
    if (opt.chaosPlanBuildProb > 0.0) {
      spec.probability = opt.chaosPlanBuildProb;
      fi.arm(util::faultsite::kPlanBuild, spec);
      planArmed_ = true;
    }
    if (opt.chaosEngineStepProb > 0.0) {
      spec.probability = opt.chaosEngineStepProb;
      fi.arm(util::faultsite::kEngineStep, spec);
      engineArmed_ = true;
    }
    active_ = true;
  }

  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;

  [[nodiscard]] std::uint64_t fires() const {
    if (!active_) return 0;
    auto& fi = util::FaultInjector::instance();
    std::uint64_t n = 0;
    if (planArmed_) n += fi.fires(util::faultsite::kPlanBuild);
    if (engineArmed_) n += fi.fires(util::faultsite::kEngineStep);
    return n;
  }

  ~ChaosScope() {
    if (active_) util::FaultInjector::instance().disable();
  }

 private:
  bool active_ = false;
  bool planArmed_ = false;
  bool engineArmed_ = false;
};

struct LiveReservation {
  service::NetworkModel::ReservationId id = 0;
  double cpu = 0.0;
  double bw = 0.0;
};

/// Per-run replay state shared by the two clock modes.
class Replay {
 public:
  Replay(const graph::Graph& pristine, const DriverOptions& opt,
         const Trace& trace)
      : pristine_(pristine),
        opt_(opt),
        service_(graph::Graph(pristine), opt.service),
        metrics_(Metrics::Options{
            trace.horizonUs(), opt.buckets,
            attrTotal(pristine, "cpu", /*onNodes=*/true),
            attrTotal(pristine, "bw", /*onNodes=*/false),
            opt.computeCostPerVisit}) {
    spec_.nodeCapacityAttrs = {"cpu"};
    spec_.edgeCapacityAttrs = {"bw"};
  }

  [[nodiscard]] service::AsyncNetEmbedService& service() noexcept {
    return service_;
  }
  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }

  [[nodiscard]] service::EmbedRequest makeRequest(const TraceEvent& e) const {
    service::EmbedRequest req;
    req.query = sampleQuery(pristine_, e, opt_.delayTolerance);
    req.nodeConstraint = opt_.nodeConstraint;
    req.edgeConstraint =
        opt_.edgeConstraint.empty()
            ? std::string(topo::delayWindowConstraint()) + " && rEdge.bw >= vEdge.bw"
            : opt_.edgeConstraint;
    req.algorithm = core::Algorithm::ECF;  // pinned: serial ECF is deterministic
    req.options.maxSolutions = 1;
    req.options.storeLimit = 1;
    req.options.seed = e.querySeed;
    req.options.visitBudget = opt_.visitBudget;
    req.options.rootSplitThreads = 1;
    req.qos.priority = e.priority;
    req.qos.tenant = e.tenant;
    if (opt_.retryAttempts > 1) req.qos.retry.maxAttempts = opt_.retryAttempts;
    if (opt_.clock == ClockMode::Wall) {
      // The service adjudicates deadlines/budgets on the wall clock; on the
      // virtual clock the driver adjudicates them against virtual waits.
      if (e.deadlineMs > 0) {
        req.qos.admissionDeadline = std::chrono::milliseconds(e.deadlineMs);
      }
      if (e.budgetMs > 0) {
        req.qos.computeBudget = std::chrono::milliseconds(e.budgetMs);
      }
    }
    return req;
  }

  /// Settle one terminal response: record the ticket status, compute spend,
  /// and — for a feasible Done — try to fund the embedding. Demands are read
  /// from the request's query (its actual sampled shape, not the trace's
  /// pre-clamp targets).
  void settle(std::uint64_t id, const TraceEvent& arrival,
              const service::EmbedRequest& req, service::EmbedResponse&& resp,
              bool threw) {
    metrics_.onTerminalStatus(threw ? service::RequestStatus::Failed
                                    : resp.status);
    if (threw) return;
    metrics_.onCompute(resp.result.stats.treeNodesVisited);
    if (resp.status != service::RequestStatus::Done) return;
    if (!resp.result.feasible() || resp.result.mappings.empty()) {
      // Every trace query is feasible on the pristine host by construction
      // (sampled from it, delay windows widened, demands under capacity), and
      // the constraints read the *live* capacity attrs. So a no-solution
      // while reservations hold resources is the substrate refusing, not the
      // query being unembeddable — the dynamic-VNE capacity reject.
      if (!live_.empty()) {
        metrics_.onRejectedCapacity();
      } else {
        metrics_.onRejectedNoSolution();
      }
      return;
    }
    const double cpu =
        static_cast<double>(req.query.nodeCount()) * arrival.cpuDemand;
    const double bw =
        static_cast<double>(req.query.edgeCount()) * arrival.bwDemand;
    try {
      const auto res =
          service_.reserve(req.query, resp.result.mappings.front(), spec_);
      live_.emplace(id, LiveReservation{res, cpu, bw});
      reservedCpu_ += cpu;
      reservedBw_ += bw;
      metrics_.setReserved(reservedCpu_, reservedBw_);
      metrics_.onAccepted(arrival.timeUs, arrival.priority, cpu + bw, cpu + bw);
    } catch (const std::runtime_error&) {
      metrics_.onRejectedCapacity();
    }
  }

  /// Departure: release the reservation if the arrival was accepted (a
  /// rejected or expired arrival's departure is a no-op). Returns whether a
  /// reservation was released.
  bool depart(const TraceEvent& e) { return departById(e.id, e.timeUs); }

  bool departById(std::uint64_t id, std::uint64_t tUs) {
    const auto it = live_.find(id);
    if (it == live_.end()) return false;
    service_.release(it->second.id);
    reservedCpu_ -= it->second.cpu;
    reservedBw_ -= it->second.bw;
    live_.erase(it);
    metrics_.setReserved(reservedCpu_, reservedBw_);
    metrics_.onDeparture(tUs);
    return true;
  }

  /// Monitoring-style mutation: nudge one host edge. Half the stream touches
  /// the constraint-relevant minDelay (a Patchable delta for the plan
  /// cache), half a constraint-irrelevant load gauge (Unaffected).
  void mutate(const TraceEvent& e) {
    util::Rng rng(e.mutationSeed);
    const auto snap = service_.hostSnapshot();
    if (snap->edgeCount() == 0) return;
    const auto ed = static_cast<graph::EdgeId>(rng.index(snap->edgeCount()));
    const graph::NodeId u = snap->edgeSource(ed);
    const graph::NodeId v = snap->edgeTarget(ed);
    if (rng.bernoulli(0.5)) {
      const graph::AttrValue* cur = snap->edgeAttrs(ed).get("minDelay");
      const double val = cur && cur->isNumeric() ? cur->asDouble() : 1.0;
      service_.setEdgeMetric(u, v, "minDelay", val * rng.uniform(0.98, 1.02));
    } else {
      service_.setEdgeMetric(u, v, "load", rng.uniform(0.0, 1.0));
    }
    ++metrics_.churn().mutationsApplied;
  }

  void finishChurn(const ChaosScope& chaos, std::uint64_t planBuilds0,
                   std::uint64_t planPatches0) {
    const auto cs = service_.controlStats();
    ChurnScore& churn = metrics_.churn();
    churn.preemptionsFired = cs.preemptionsFired;
    churn.transientRetries = cs.transientRetries;
    churn.retriesAbandoned = cs.retriesAbandoned;
    churn.cacheBypassFallbacks = cs.cacheBypassFallbacks;
    churn.faultsInjected = chaos.fires();
    churn.planBuilds = core::filterPlanBuilds() - planBuilds0;
    churn.planPatches = core::filterPlanPatches() - planPatches0;
  }

  [[nodiscard]] const service::NetworkModel::ReservationSpec& spec()
      const noexcept {
    return spec_;
  }

 private:
  const graph::Graph& pristine_;
  const DriverOptions& opt_;
  service::AsyncNetEmbedService service_;
  Metrics metrics_;
  service::NetworkModel::ReservationSpec spec_;
  std::unordered_map<std::uint64_t, LiveReservation> live_;
  double reservedCpu_ = 0.0;
  double reservedBw_ = 0.0;
};

/// Wall-clock replay: events fire on a scaled real-time clock, tickets
/// resolve concurrently (queue contention, preemption and service-side
/// deadlines behave for real), and a sweep at every event settles whatever
/// finished since the last one. Per-class waits are measured sojourn times
/// (submit to terminal), rescaled to virtual milliseconds.
void runWall(const Trace& trace, Replay& replay, const DriverOptions& opt) {
  using Clock = std::chrono::steady_clock;
  Metrics& metrics = replay.metrics();
  struct Pending {
    TraceEvent arrival;
    service::EmbedRequest req;
    service::SubmitTicket ticket;
    Clock::time_point submitted;
  };
  std::unordered_map<std::uint64_t, Pending> pending;
  std::unordered_set<std::uint64_t> departed;
  const double speedup = std::max(opt.wallSpeedup, 1e-9);
  const Clock::time_point start = Clock::now();

  const auto isTerminal = [](service::RequestStatus s) {
    return s != service::RequestStatus::Queued &&
           s != service::RequestStatus::Running &&
           s != service::RequestStatus::Retrying;
  };
  const auto sweep = [&](std::uint64_t nowUs) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (!isTerminal(it->second.ticket.status())) {
        ++it;
        continue;
      }
      Pending p = std::move(it->second);
      it = pending.erase(it);
      service::EmbedResponse resp;
      bool threw = false;
      try {
        resp = p.ticket.get();
      } catch (const std::exception&) {
        threw = true;
      }
      const double waitWallMs =
          std::chrono::duration<double, std::milli>(Clock::now() - p.submitted)
              .count();
      metrics.onWaitSample(p.arrival.priority, waitWallMs * speedup);
      replay.settle(p.arrival.id, p.arrival, p.req, std::move(resp), threw);
      // The embedding's lifetime may have ended while the ticket was still
      // in flight; give back whatever settle just reserved.
      if (departed.count(p.arrival.id) != 0) {
        replay.departById(p.arrival.id, nowUs);
      }
    }
  };

  for (const TraceEvent& e : trace.events) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(static_cast<std::int64_t>(
                    static_cast<double>(e.timeUs) / speedup)));
    metrics.advanceTo(e.timeUs);
    sweep(e.timeUs);
    switch (e.kind) {
      case TraceEventKind::Arrival: {
        metrics.onArrival(e.timeUs, e.priority);
        Pending p;
        p.arrival = e;
        p.req = replay.makeRequest(e);
        p.submitted = Clock::now();
        p.ticket = replay.service().submit(p.req);
        pending.emplace(e.id, std::move(p));
        break;
      }
      case TraceEventKind::Departure:
        departed.insert(e.id);
        if (!replay.depart(e)) {
          // Lifetime over before the embedding was placed: withdraw the
          // still-unresolved request.
          if (auto it = pending.find(e.id); it != pending.end()) {
            it->second.ticket.cancel();
          }
        }
        break;
      case TraceEventKind::Mutation:
        replay.mutate(e);
        break;
    }
  }
  replay.service().drain();
  metrics.advanceTo(trace.horizonUs());
  while (!pending.empty()) {
    sweep(trace.horizonUs());
    if (!pending.empty()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

}  // namespace

Driver::Driver(graph::Graph host, DriverOptions options)
    : host_(std::move(host)), opt_(std::move(options)) {}

Scorecard Driver::run(const Trace& trace, std::string scenario,
                      std::string config, std::uint64_t seed) {
  const std::uint64_t planBuilds0 = core::filterPlanBuilds();
  const std::uint64_t planPatches0 = core::filterPlanPatches();
  ChaosScope chaos(opt_);
  Replay replay(host_, opt_, trace);
  Metrics& metrics = replay.metrics();

  if (opt_.clock == ClockMode::Virtual) {
    // Serialized replay: one ticket resolves before the next event fires, so
    // every query runs against a deterministic snapshot and the scorecard is
    // a pure function of (host, trace, options). Queue waits come from the
    // virtual-queue model below; overload manifests through capacity
    // exhaustion, not thread contention.
    std::size_t virtualWorkers = opt_.virtualWorkers;
    if (virtualWorkers == 0) virtualWorkers = opt_.service.workers;
    if (virtualWorkers == 0) virtualWorkers = 2;
    std::vector<std::uint64_t> workerFreeUs(virtualWorkers, 0);

    for (const TraceEvent& e : trace.events) {
      metrics.advanceTo(e.timeUs);
      switch (e.kind) {
        case TraceEventKind::Departure:
          replay.depart(e);
          break;
        case TraceEventKind::Mutation:
          replay.mutate(e);
          break;
        case TraceEventKind::Arrival: {
          metrics.onArrival(e.timeUs, e.priority);
          const std::size_t w = static_cast<std::size_t>(
              std::min_element(workerFreeUs.begin(), workerFreeUs.end()) -
              workerFreeUs.begin());
          const std::uint64_t startUs = std::max(e.timeUs, workerFreeUs[w]);
          const std::uint64_t waitUs = startUs - e.timeUs;
          if (e.deadlineMs > 0 &&
              waitUs > std::uint64_t{e.deadlineMs} * 1000) {
            // Virtual admission-deadline miss: the request would still be
            // queued past its deadline, so it never runs (and never
            // occupies a virtual worker).
            metrics.onExpiredVirtual();
            metrics.onTerminalStatus(service::RequestStatus::Expired);
            break;
          }
          const service::EmbedRequest req = replay.makeRequest(e);
          service::SubmitTicket ticket = replay.service().submit(req);
          service::EmbedResponse resp;
          bool threw = false;
          try {
            resp = ticket.get();
          } catch (const std::exception&) {
            threw = true;
          }
          // The future resolves before the scheduler worker finishes its
          // bookkeeping (running count, preemption slot). Quiesce fully so
          // the next submit never races stale busy-worker state — e.g. a
          // preemptLowForHigh config firing phantom preemptions, which
          // would break the byte-determinism promise.
          replay.service().drain();
          metrics.onWaitSample(e.priority, static_cast<double>(waitUs) / 1000.0);
          std::uint64_t serviceUs =
              static_cast<std::uint64_t>(opt_.virtualBaseServiceUs);
          if (!threw) {
            serviceUs += static_cast<std::uint64_t>(
                opt_.virtualPerVisitUs *
                static_cast<double>(resp.result.stats.treeNodesVisited));
          }
          workerFreeUs[w] = startUs + serviceUs;
          replay.settle(e.id, e, req, std::move(resp), threw);
          break;
        }
      }
    }
    metrics.advanceTo(trace.horizonUs());
  } else {
    runWall(trace, replay, opt_);
  }

  replay.finishChurn(chaos, planBuilds0, planPatches0);
  return metrics.finalize(std::move(scenario), std::move(config), seed);
}

}  // namespace netembed::sim
