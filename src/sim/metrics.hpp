#pragma once
// The VNE scorecard: what one simulated scenario run is judged by.
//
// Dynamic-VNE papers compare embedders on a small canon of time-series
// metrics — acceptance ratio, revenue/cost, substrate utilization — measured
// under an arrival/departure process rather than on isolated instances.
// sim::Metrics is the accumulator the sim::Driver feeds while replaying a
// trace; finalize() freezes it into a Scorecard and *enforces the accounting
// identity*: every submitted request must land in exactly one terminal
// status (done + rejected + expired + preempted + failed + cancelled ==
// submitted). A violation is a harness bug, not a data point, so it throws
// std::logic_error instead of producing a plausible-looking report.
//
// Utilization is integrated in time (reserved capacity x duration) and
// reported per bucket, so a burst that saturates the substrate mid-run is
// visible as a utilization plateau plus an acceptance dip in the same
// bucket — the signature plot of the dynamic regime.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "service/qos.hpp"

namespace netembed::sim {

/// Per-priority-class slice: submissions, acceptances, and the virtual (or
/// wall) admission-wait tail computed with util::quantileNearestRank.
struct ClassScore {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  double waitP50Ms = 0.0;
  double waitP99Ms = 0.0;
};

/// One time bucket of the scenario horizon.
struct BucketScore {
  std::uint64_t startUs = 0;
  std::uint64_t endUs = 0;
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t departures = 0;
  double acceptanceRatio = 0.0;  // accepted / arrivals (0 when no arrivals)
  double cpuUtilization = 0.0;   // time-averaged reserved cpu / capacity
  double bwUtilization = 0.0;    // time-averaged reserved bw / capacity
};

/// Ticket terminal statuses; the accounting identity binds these.
struct TerminalCounts {
  std::size_t submitted = 0;
  std::size_t done = 0;
  std::size_t rejected = 0;
  std::size_t expired = 0;
  std::size_t preempted = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
};

/// Control-plane churn over the run (service::ControlStats deltas plus
/// driver-side counts).
struct ChurnScore {
  std::uint64_t preemptionsFired = 0;
  std::uint64_t transientRetries = 0;
  std::uint64_t retriesAbandoned = 0;
  std::uint64_t cacheBypassFallbacks = 0;
  std::uint64_t faultsInjected = 0;
  std::uint64_t mutationsApplied = 0;
  std::uint64_t planBuilds = 0;   // process-counter deltas over the run
  std::uint64_t planPatches = 0;
};

/// Frozen result of one scenario run. Byte-deterministic per seed when the
/// driver ran on the virtual clock (toJson() of two same-seed runs compares
/// equal) — the CI sim-smoke gate.
struct Scorecard {
  std::string scenario;
  std::string config;
  std::uint64_t seed = 0;
  std::uint64_t horizonUs = 0;

  TerminalCounts terminals;
  /// Sim-level outcome classification (finer than ticket status): accepted
  /// embeddings hold reservations until departure; a Done ticket with no
  /// feasible embedding while reservations hold resources is a *capacity*
  /// reject (trace queries are feasible on the pristine host by
  /// construction, so the depleted substrate is what refused), with no
  /// reservations active it is a no-solution reject; a virtual-deadline
  /// miss is an expiredVirtual (adjudicated driver-side on the virtual
  /// clock, so it never reaches the service).
  std::size_t accepted = 0;
  std::size_t rejectedNoSolution = 0;
  std::size_t rejectedCapacity = 0;
  std::size_t expiredVirtual = 0;
  double acceptanceRatio = 0.0;

  double revenue = 0.0;  // sum of accepted demands (cpu + bw)
  double cost = 0.0;     // accepted resources + compute cost over *all* requests
  double revenueCostRatio = 0.0;

  double avgCpuUtilization = 0.0;
  double peakCpuUtilization = 0.0;
  double avgBwUtilization = 0.0;
  double peakBwUtilization = 0.0;
  /// True when an arrival was capacity-rejected and a later arrival was
  /// accepted after at least one departure — the departures-release-capacity
  /// proof the acceptance gate checks.
  bool reacceptedAfterSaturation = false;

  std::array<ClassScore, 3> byClass{};  // indexed by service::Priority
  std::vector<BucketScore> buckets;
  ChurnScore churn;

  void writeJson(std::ostream& out, int indent = 0) const;
  void printTable(std::ostream& out) const;
  [[nodiscard]] std::string toJson() const;
};

/// Streaming accumulator the driver feeds event by event.
class Metrics {
 public:
  struct Options {
    std::uint64_t horizonUs = 1;
    std::size_t buckets = 8;
    double cpuCapacity = 1.0;  // total substrate cpu capacity (for utilization)
    double bwCapacity = 1.0;   // total substrate bw capacity
    double computeCostPerVisit = 1e-3;
  };

  explicit Metrics(const Options& options);

  // --- arrival lifecycle ---------------------------------------------------
  void onArrival(std::uint64_t tUs, service::Priority p);
  void onAccepted(std::uint64_t tUs, service::Priority p, double revenue,
                  double resourceCost);
  void onRejectedNoSolution();
  void onRejectedCapacity();
  void onExpiredVirtual();
  void onDeparture(std::uint64_t tUs);
  void onWaitSample(service::Priority p, double waitMs);
  void onCompute(std::uint64_t treeNodesVisited);
  /// Record a ticket's terminal status; throws std::logic_error for a
  /// non-terminal status (Queued/Running/Retrying) — the driver must only
  /// report settled tickets.
  void onTerminalStatus(service::RequestStatus s);

  // --- utilization timeline ------------------------------------------------
  /// Integrate the currently reserved capacity forward to tUs (monotonic).
  void advanceTo(std::uint64_t tUs);
  /// Update the reserved totals after a reserve/release at the current time.
  void setReserved(double cpu, double bw);

  ChurnScore& churn() noexcept { return churn_; }

  /// Freeze into a Scorecard. Integrates the timeline to the horizon,
  /// computes ratios and wait quantiles, and enforces the accounting
  /// identity (throws std::logic_error on violation).
  [[nodiscard]] Scorecard finalize(std::string scenario, std::string config,
                                   std::uint64_t seed) const;

 private:
  struct BucketAcc {
    std::size_t arrivals = 0;
    std::size_t accepted = 0;
    std::size_t departures = 0;
    double cpuIntegralUs = 0.0;
    double bwIntegralUs = 0.0;
  };

  [[nodiscard]] std::size_t bucketIndex(std::uint64_t tUs) const noexcept;

  Options opt_;
  std::vector<BucketAcc> buckets_;
  TerminalCounts terminals_;
  std::size_t accepted_ = 0;
  std::size_t rejectedNoSolution_ = 0;
  std::size_t rejectedCapacity_ = 0;
  std::size_t expiredVirtual_ = 0;
  double revenue_ = 0.0;
  double resourceCost_ = 0.0;
  std::uint64_t visits_ = 0;
  std::array<std::size_t, 3> classSubmitted_{};
  std::array<std::size_t, 3> classAccepted_{};
  std::array<std::vector<double>, 3> classWaitsMs_;
  bool sawCapacityReject_ = false;
  bool sawDeparture_ = false;
  bool sawDepartureSinceCapacityReject_ = false;
  bool reaccepted_ = false;
  ChurnScore churn_;
  // utilization timeline
  std::uint64_t cursorUs_ = 0;
  double reservedCpu_ = 0.0;
  double reservedBw_ = 0.0;
  double peakCpu_ = 0.0;
  double peakBw_ = 0.0;
};

}  // namespace netembed::sim
