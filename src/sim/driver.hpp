#pragma once
// The scenario driver: replays a sim::Trace against a live
// AsyncNetEmbedService and fills the sim::Metrics scorecard.
//
// Each arrival samples its query (a connected subgraph of the pristine host
// under the event's querySeed), stamps per-node "cpu" / per-edge "bw"
// demands, and submits through the service's ticketed QoS path. An accepted
// embedding becomes a *live reservation* — AsyncNetEmbedService::reserve
// subtracts the demands from the host's capacity attributes, bumps the model
// version, and records an attribute-only ModelDelta — and the matching
// departure event releases it, so churn flows through the same snapshot /
// plan-patching machinery every concurrent query exercises. Capacity is
// therefore *closed-loop*: the constraints read the live capacity attrs, so
// a saturated substrate yields no feasible mapping (a capacity reject — the
// query itself is feasible on the pristine host by construction), and
// departures verifiably re-open admission. reserve() refusals (a race
// between search and a concurrent reservation in wall mode) count as
// capacity rejects too.
//
// Two clocks:
//  * ClockMode::Virtual (default): events execute in trace order with no
//    sleeping, one ticket resolved before the next event fires. Queue waits
//    are computed from a deterministic virtual-queue model (earliest-free
//    virtual worker; service time = a fixed base plus a per-visited-node
//    cost, both deterministic for the pinned serial ECF engine), and
//    admission deadlines are adjudicated against those virtual waits
//    driver-side. Result: the scorecard is a pure function of
//    (host, trace, options) — byte-identical across runs — which is what
//    the CI determinism gate and the bench's config sweeps rely on.
//  * ClockMode::Wall: events fire on a scaled real-time clock with genuine
//    service concurrency — queue contention, preemption and adaptive
//    admission behave for real, deadlines are enforced by the service, and
//    per-class waits are measured sojourn times. Faithful, but not
//    byte-deterministic.
//
// Chaos composition: the driver can arm util::FaultInjector sites for the
// duration of a run (deterministic per chaos seed), so a scenario can sweep
// "same workload, failing substrate" and the scorecard's churn block shows
// the retry/degradation cost.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "service/async.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace netembed::sim {

enum class ClockMode : std::uint8_t { Virtual, Wall };
[[nodiscard]] const char* clockModeName(ClockMode m) noexcept;

struct DriverOptions {
  ClockMode clock = ClockMode::Virtual;
  /// Wall mode: virtual-to-wall speedup (50 = a 1 s trace replays in 20 ms).
  double wallSpeedup = 50.0;

  /// Service construction options (workers, queue bound, ControlPolicy —
  /// the sweep axis of bench/sim_report).
  service::AsyncServiceOptions service{};

  /// Constraints every arrival carries. Empty edgeConstraint selects the
  /// default "delay window && rEdge.bw >= vEdge.bw"; the node constraint
  /// defaults to "rNode.cpu >= vNode.cpu". Both read the capacity attrs so
  /// reserve/release deltas stay plan-*patchable*, never rebuild-class.
  std::string nodeConstraint = "rNode.cpu >= vNode.cpu";
  std::string edgeConstraint;

  /// Delay-window widening applied to each sampled query (keeps the sampled
  /// placement feasible with headroom to embed elsewhere).
  double delayTolerance = 0.5;

  /// Deterministic compute bound per query, in visited tree nodes
  /// (SearchOptions::visitBudget; wall-clock timeouts would break virtual-
  /// clock determinism). 0 = unlimited.
  std::uint64_t visitBudget = 200'000;

  /// QoS::retry attempts per request (0 = no retry) — the knob the chaos
  /// configs turn so injected transient faults are retried, not fatal.
  std::uint32_t retryAttempts = 0;

  // --- virtual-queue model ---------------------------------------------------
  /// Virtual workers the wait model schedules onto. 0 = the service option's
  /// worker count (or 2 when that is also 0/auto).
  std::size_t virtualWorkers = 0;
  /// Virtual service time = base + perVisit * treeNodesVisited (us).
  double virtualBaseServiceUs = 50.0;
  double virtualPerVisitUs = 0.5;

  // --- chaos composition -----------------------------------------------------
  /// Arm util::FaultInjector for the run (process-wide; the driver disables
  /// it again — including on exception — before returning).
  bool chaosEnabled = false;
  std::uint64_t chaosSeed = 7;
  /// Per-arrival fire probability at the stage-1 plan-build seam and the
  /// per-visited-node engine poll. 0 leaves the site unarmed.
  double chaosPlanBuildProb = 0.0;
  double chaosEngineStepProb = 0.0;
  /// Fires after which each armed site goes quiet (0 = unlimited).
  std::uint64_t chaosMaxFiresPerSite = 0;

  // --- scorecard -------------------------------------------------------------
  std::size_t buckets = 8;
  double computeCostPerVisit = 1e-3;
};

/// Build a capacity-annotated Waxman host for simulation scenarios: every
/// node gets a "cpu" capacity attribute and every edge's "bw" is overwritten
/// with a uniform capacity (the generator's sampled bandwidths would
/// otherwise make demand-vs-capacity accounting noise).
[[nodiscard]] graph::Graph capacitatedHost(std::size_t nodes, std::uint64_t seed,
                                           double cpuCapacity, double bwCapacity);

class Driver {
 public:
  /// `host` is the pristine substrate; each run() constructs a fresh service
  /// on a copy of it, so one Driver can sweep many configs over the same
  /// scenario.
  Driver(graph::Graph host, DriverOptions options);

  [[nodiscard]] const DriverOptions& options() const noexcept { return opt_; }
  DriverOptions& options() noexcept { return opt_; }

  /// Replay `trace` once and return the frozen scorecard. `scenario` /
  /// `config` / `seed` are labels stamped into the card. Throws
  /// std::logic_error when the run violates the accounting identity.
  [[nodiscard]] Scorecard run(const Trace& trace, std::string scenario,
                              std::string config, std::uint64_t seed);

 private:
  graph::Graph host_;
  DriverOptions opt_;
};

}  // namespace netembed::sim
