#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace netembed::sim {

namespace {

std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

const char* kClassNames[3] = {"low", "normal", "high"};

}  // namespace

Metrics::Metrics(const Options& options) : opt_(options) {
  if (opt_.horizonUs == 0) opt_.horizonUs = 1;
  if (opt_.buckets == 0) opt_.buckets = 1;
  buckets_.resize(opt_.buckets);
}

std::size_t Metrics::bucketIndex(std::uint64_t tUs) const noexcept {
  // Buckets span ceil(horizon/buckets) us each (the last one may be shorter);
  // advanceTo() and finalize() use the same boundaries.
  const std::uint64_t span = (opt_.horizonUs + buckets_.size() - 1) / buckets_.size();
  return std::min(static_cast<std::size_t>(tUs / std::max<std::uint64_t>(span, 1)),
                  buckets_.size() - 1);
}

void Metrics::onArrival(std::uint64_t tUs, service::Priority p) {
  ++terminals_.submitted;
  ++buckets_[bucketIndex(tUs)].arrivals;
  ++classSubmitted_[static_cast<std::size_t>(p)];
}

void Metrics::onAccepted(std::uint64_t tUs, service::Priority p, double revenue,
                         double resourceCost) {
  ++accepted_;
  ++buckets_[bucketIndex(tUs)].accepted;
  ++classAccepted_[static_cast<std::size_t>(p)];
  revenue_ += revenue;
  resourceCost_ += resourceCost;
  if (sawDepartureSinceCapacityReject_) reaccepted_ = true;
}

void Metrics::onRejectedNoSolution() { ++rejectedNoSolution_; }

void Metrics::onRejectedCapacity() {
  ++rejectedCapacity_;
  sawCapacityReject_ = true;
}

void Metrics::onExpiredVirtual() { ++expiredVirtual_; }

void Metrics::onDeparture(std::uint64_t tUs) {
  ++buckets_[bucketIndex(tUs)].departures;
  sawDeparture_ = true;
  if (sawCapacityReject_) sawDepartureSinceCapacityReject_ = true;
}

void Metrics::onWaitSample(service::Priority p, double waitMs) {
  classWaitsMs_[static_cast<std::size_t>(p)].push_back(waitMs);
}

void Metrics::onCompute(std::uint64_t treeNodesVisited) {
  visits_ += treeNodesVisited;
}

void Metrics::onTerminalStatus(service::RequestStatus s) {
  switch (s) {
    case service::RequestStatus::Done: ++terminals_.done; return;
    case service::RequestStatus::Rejected: ++terminals_.rejected; return;
    case service::RequestStatus::Expired: ++terminals_.expired; return;
    case service::RequestStatus::Preempted: ++terminals_.preempted; return;
    case service::RequestStatus::Failed: ++terminals_.failed; return;
    case service::RequestStatus::Cancelled: ++terminals_.cancelled; return;
    case service::RequestStatus::Queued:
    case service::RequestStatus::Running:
    case service::RequestStatus::Retrying:
      break;
  }
  throw std::logic_error(
      std::string("sim::Metrics: non-terminal ticket status '") +
      service::requestStatusName(s) + "' reported to the scorecard");
}

void Metrics::advanceTo(std::uint64_t tUs) {
  if (tUs <= cursorUs_) return;
  std::uint64_t t = std::min(cursorUs_, opt_.horizonUs);
  const std::uint64_t end = std::min(tUs, opt_.horizonUs);
  const std::uint64_t bucketSpan = (opt_.horizonUs + buckets_.size() - 1) / buckets_.size();
  while (t < end) {
    const std::size_t b = bucketIndex(t);
    const std::uint64_t bucketEnd =
        b + 1 == buckets_.size() ? opt_.horizonUs
                                 : std::min<std::uint64_t>((b + 1) * bucketSpan, opt_.horizonUs);
    const std::uint64_t seg = std::min(end, bucketEnd) - t;
    buckets_[b].cpuIntegralUs += reservedCpu_ * static_cast<double>(seg);
    buckets_[b].bwIntegralUs += reservedBw_ * static_cast<double>(seg);
    t += seg;
  }
  cursorUs_ = tUs;
}

void Metrics::setReserved(double cpu, double bw) {
  reservedCpu_ = cpu;
  reservedBw_ = bw;
  peakCpu_ = std::max(peakCpu_, cpu);
  peakBw_ = std::max(peakBw_, bw);
}

Scorecard Metrics::finalize(std::string scenario, std::string config,
                            std::uint64_t seed) const {
  const TerminalCounts& t = terminals_;
  const std::size_t settled =
      t.done + t.rejected + t.expired + t.preempted + t.failed + t.cancelled;
  if (settled != t.submitted) {
    throw std::logic_error(
        "sim::Metrics: accounting identity violated: done+rejected+expired+"
        "preempted+failed+cancelled = " +
        std::to_string(settled) + " but submitted = " +
        std::to_string(t.submitted));
  }
  if (accepted_ + rejectedNoSolution_ + rejectedCapacity_ + expiredVirtual_ >
      t.submitted) {
    throw std::logic_error("sim::Metrics: outcome classification exceeds submissions");
  }

  Scorecard s;
  s.scenario = std::move(scenario);
  s.config = std::move(config);
  s.seed = seed;
  s.horizonUs = opt_.horizonUs;
  s.terminals = t;
  s.accepted = accepted_;
  s.rejectedNoSolution = rejectedNoSolution_;
  s.rejectedCapacity = rejectedCapacity_;
  s.expiredVirtual = expiredVirtual_;
  s.acceptanceRatio =
      t.submitted ? static_cast<double>(accepted_) / static_cast<double>(t.submitted)
                  : 0.0;
  s.revenue = revenue_;
  s.cost = resourceCost_ +
           opt_.computeCostPerVisit * static_cast<double>(visits_);
  s.revenueCostRatio = s.cost > 0.0 ? s.revenue / s.cost : 0.0;
  s.reacceptedAfterSaturation = reaccepted_;
  s.churn = churn_;

  // Freeze the utilization timeline: a const snapshot mustn't mutate the
  // accumulator, so integrate the tail segment locally.
  std::vector<BucketAcc> buckets = buckets_;
  if (cursorUs_ < opt_.horizonUs) {
    Metrics tail(*this);
    tail.advanceTo(opt_.horizonUs);
    buckets = tail.buckets_;
  }
  const std::uint64_t bucketSpan = (opt_.horizonUs + buckets.size() - 1) / buckets.size();
  double cpuIntegral = 0.0;
  double bwIntegral = 0.0;
  s.buckets.reserve(buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    BucketScore bs;
    bs.startUs = b * bucketSpan;
    bs.endUs = b + 1 == buckets.size() ? opt_.horizonUs
                                       : std::min<std::uint64_t>((b + 1) * bucketSpan,
                                                                 opt_.horizonUs);
    bs.arrivals = buckets[b].arrivals;
    bs.accepted = buckets[b].accepted;
    bs.departures = buckets[b].departures;
    bs.acceptanceRatio =
        bs.arrivals ? static_cast<double>(bs.accepted) / static_cast<double>(bs.arrivals)
                    : 0.0;
    const double spanUs = static_cast<double>(bs.endUs - bs.startUs);
    if (spanUs > 0.0 && opt_.cpuCapacity > 0.0) {
      bs.cpuUtilization = buckets[b].cpuIntegralUs / (spanUs * opt_.cpuCapacity);
    }
    if (spanUs > 0.0 && opt_.bwCapacity > 0.0) {
      bs.bwUtilization = buckets[b].bwIntegralUs / (spanUs * opt_.bwCapacity);
    }
    cpuIntegral += buckets[b].cpuIntegralUs;
    bwIntegral += buckets[b].bwIntegralUs;
    s.buckets.push_back(bs);
  }
  const double horizon = static_cast<double>(opt_.horizonUs);
  if (opt_.cpuCapacity > 0.0) {
    s.avgCpuUtilization = cpuIntegral / (horizon * opt_.cpuCapacity);
    s.peakCpuUtilization = peakCpu_ / opt_.cpuCapacity;
  }
  if (opt_.bwCapacity > 0.0) {
    s.avgBwUtilization = bwIntegral / (horizon * opt_.bwCapacity);
    s.peakBwUtilization = peakBw_ / opt_.bwCapacity;
  }

  for (std::size_t c = 0; c < 3; ++c) {
    ClassScore& cs = s.byClass[c];
    cs.submitted = classSubmitted_[c];
    cs.accepted = classAccepted_[c];
    cs.waitP50Ms = util::quantileNearestRank(classWaitsMs_[c], 0.50);
    cs.waitP99Ms = util::quantileNearestRank(classWaitsMs_[c], 0.99);
  }
  return s;
}

void Scorecard::writeJson(std::ostream& out, int indent) const {
  const std::string p0(indent, ' ');
  const std::string p1(indent + 2, ' ');
  const std::string p2(indent + 4, ' ');
  out << p0 << "{\n";
  out << p1 << "\"scenario\": \"" << scenario << "\",\n";
  out << p1 << "\"config\": \"" << config << "\",\n";
  out << p1 << "\"seed\": " << seed << ",\n";
  out << p1 << "\"horizon_us\": " << horizonUs << ",\n";
  out << p1 << "\"terminals\": {\"submitted\": " << terminals.submitted
      << ", \"done\": " << terminals.done
      << ", \"rejected\": " << terminals.rejected
      << ", \"expired\": " << terminals.expired
      << ", \"preempted\": " << terminals.preempted
      << ", \"failed\": " << terminals.failed
      << ", \"cancelled\": " << terminals.cancelled << "},\n";
  out << p1 << "\"accepted\": " << accepted << ",\n";
  out << p1 << "\"rejected_no_solution\": " << rejectedNoSolution << ",\n";
  out << p1 << "\"rejected_capacity\": " << rejectedCapacity << ",\n";
  out << p1 << "\"expired_virtual\": " << expiredVirtual << ",\n";
  out << p1 << "\"acceptance_ratio\": " << jnum(acceptanceRatio) << ",\n";
  out << p1 << "\"revenue\": " << jnum(revenue) << ",\n";
  out << p1 << "\"cost\": " << jnum(cost) << ",\n";
  out << p1 << "\"revenue_cost_ratio\": " << jnum(revenueCostRatio) << ",\n";
  out << p1 << "\"avg_cpu_utilization\": " << jnum(avgCpuUtilization) << ",\n";
  out << p1 << "\"peak_cpu_utilization\": " << jnum(peakCpuUtilization) << ",\n";
  out << p1 << "\"avg_bw_utilization\": " << jnum(avgBwUtilization) << ",\n";
  out << p1 << "\"peak_bw_utilization\": " << jnum(peakBwUtilization) << ",\n";
  out << p1 << "\"reaccepted_after_saturation\": "
      << (reacceptedAfterSaturation ? "true" : "false") << ",\n";
  out << p1 << "\"by_class\": {";
  for (std::size_t c = 0; c < 3; ++c) {
    if (c) out << ", ";
    out << "\"" << kClassNames[c] << "\": {\"submitted\": " << byClass[c].submitted
        << ", \"accepted\": " << byClass[c].accepted
        << ", \"wait_p50_ms\": " << jnum(byClass[c].waitP50Ms)
        << ", \"wait_p99_ms\": " << jnum(byClass[c].waitP99Ms) << "}";
  }
  out << "},\n";
  out << p1 << "\"churn\": {\"preemptions_fired\": " << churn.preemptionsFired
      << ", \"transient_retries\": " << churn.transientRetries
      << ", \"retries_abandoned\": " << churn.retriesAbandoned
      << ", \"cache_bypass_fallbacks\": " << churn.cacheBypassFallbacks
      << ", \"faults_injected\": " << churn.faultsInjected
      << ", \"mutations_applied\": " << churn.mutationsApplied
      << ", \"plan_builds\": " << churn.planBuilds
      << ", \"plan_patches\": " << churn.planPatches << "},\n";
  out << p1 << "\"buckets\": [\n";
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const BucketScore& bs = buckets[b];
    out << p2 << "{\"start_us\": " << bs.startUs << ", \"end_us\": " << bs.endUs
        << ", \"arrivals\": " << bs.arrivals << ", \"accepted\": " << bs.accepted
        << ", \"departures\": " << bs.departures
        << ", \"acceptance_ratio\": " << jnum(bs.acceptanceRatio)
        << ", \"cpu_utilization\": " << jnum(bs.cpuUtilization)
        << ", \"bw_utilization\": " << jnum(bs.bwUtilization) << "}"
        << (b + 1 < buckets.size() ? "," : "") << "\n";
  }
  out << p1 << "]\n";
  out << p0 << "}";
}

std::string Scorecard::toJson() const {
  std::ostringstream out;
  writeJson(out, 0);
  return out.str();
}

void Scorecard::printTable(std::ostream& out) const {
  out << "scenario " << scenario << " | config " << config << " | seed " << seed
      << " | horizon " << horizonUs / 1000 << " ms\n";
  out << "  submitted " << terminals.submitted << "  accepted " << accepted
      << " (" << util::formatFixed(acceptanceRatio * 100.0, 1) << "%)"
      << "  reject[no-solution " << rejectedNoSolution << ", capacity "
      << rejectedCapacity << "]  expired(virtual) " << expiredVirtual << "\n";
  out << "  revenue " << util::formatFixed(revenue, 2) << "  cost "
      << util::formatFixed(cost, 2) << "  R/C "
      << util::formatFixed(revenueCostRatio, 3) << "  cpu-util avg "
      << util::formatFixed(avgCpuUtilization * 100.0, 1) << "% peak "
      << util::formatFixed(peakCpuUtilization * 100.0, 1) << "%  bw-util avg "
      << util::formatFixed(avgBwUtilization * 100.0, 1) << "% peak "
      << util::formatFixed(peakBwUtilization * 100.0, 1) << "%\n";
  out << "  churn: preemptions " << churn.preemptionsFired << ", retries "
      << churn.transientRetries << " (abandoned " << churn.retriesAbandoned
      << "), faults " << churn.faultsInjected << ", mutations "
      << churn.mutationsApplied << ", plan builds/patches " << churn.planBuilds
      << "/" << churn.planPatches
      << (reacceptedAfterSaturation ? "  [reaccepted after saturation]" : "")
      << "\n";

  util::TablePrinter classes({"class", "submitted", "accepted", "wait p50 ms",
                              "wait p99 ms"});
  for (std::size_t c = 0; c < 3; ++c) {
    classes.addRow({kClassNames[c], std::to_string(byClass[c].submitted),
                    std::to_string(byClass[c].accepted),
                    util::formatFixed(byClass[c].waitP50Ms, 3),
                    util::formatFixed(byClass[c].waitP99Ms, 3)});
  }
  classes.print(out);

  util::TablePrinter table({"bucket [ms]", "arrivals", "accepted", "departures",
                            "accept %", "cpu util %", "bw util %"});
  for (const BucketScore& b : buckets) {
    table.addRow({std::to_string(b.startUs / 1000) + ".." +
                      std::to_string(b.endUs / 1000),
                  std::to_string(b.arrivals), std::to_string(b.accepted),
                  std::to_string(b.departures),
                  util::formatFixed(b.acceptanceRatio * 100.0, 1),
                  util::formatFixed(b.cpuUtilization * 100.0, 1),
                  util::formatFixed(b.bwUtilization * 100.0, 1)});
  }
  table.print(out);
}

}  // namespace netembed::sim
