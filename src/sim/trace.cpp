#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace netembed::sim {

const char* traceEventKindName(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::Arrival: return "arrival";
    case TraceEventKind::Departure: return "departure";
    case TraceEventKind::Mutation: return "mutation";
  }
  return "?";
}

std::size_t Trace::arrivalCount() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.kind == TraceEventKind::Arrival;
      }));
}

std::uint64_t Trace::horizonUs() const {
  std::uint64_t last = 0;
  for (const TraceEvent& e : events) last = std::max(last, e.timeUs);
  return events.empty() ? 0 : last + 1;
}

void Trace::sortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.timeUs < b.timeUs;
                   });
}

namespace {

/// Doubles round-trip the CSV bit-exactly (max_digits10); the generic
/// CsvWriter::field 6-digit form is for human-facing series, not artifacts.
std::string exactDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

constexpr const char* kHeader[] = {
    "time_us",     "kind",      "id",         "query_nodes", "query_edges",
    "query_seed",  "priority",  "tenant",     "deadline_ms", "budget_ms",
    "hold_us",     "cpu_demand", "bw_demand", "mutation_seed"};
constexpr std::size_t kColumns = sizeof(kHeader) / sizeof(kHeader[0]);

std::uint64_t parseU64(const std::string& s, const char* what, std::size_t row) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("Trace::readCsv: bad " + std::string(what) + " '" +
                             s + "' at row " + std::to_string(row));
  }
}

double parseDouble(const std::string& s, const char* what, std::size_t row) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("Trace::readCsv: bad " + std::string(what) + " '" +
                             s + "' at row " + std::to_string(row));
  }
}

TraceEventKind parseKind(const std::string& s, std::size_t row) {
  if (s == "arrival") return TraceEventKind::Arrival;
  if (s == "departure") return TraceEventKind::Departure;
  if (s == "mutation") return TraceEventKind::Mutation;
  throw std::runtime_error("Trace::readCsv: unknown kind '" + s + "' at row " +
                           std::to_string(row));
}

service::Priority parsePriorityField(const std::string& s, std::size_t row) {
  if (s == "low") return service::Priority::Low;
  if (s == "normal") return service::Priority::Normal;
  if (s == "high") return service::Priority::High;
  throw std::runtime_error("Trace::readCsv: unknown priority '" + s +
                           "' at row " + std::to_string(row));
}

}  // namespace

void Trace::writeCsv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.row(std::vector<std::string>(kHeader, kHeader + kColumns));
  for (const TraceEvent& e : events) {
    csv.row({std::to_string(e.timeUs), traceEventKindName(e.kind),
             std::to_string(e.id), std::to_string(e.queryNodes),
             std::to_string(e.queryEdges), std::to_string(e.querySeed),
             service::priorityName(e.priority), std::to_string(e.tenant),
             std::to_string(e.deadlineMs), std::to_string(e.budgetMs),
             std::to_string(e.holdUs), exactDouble(e.cpuDemand),
             exactDouble(e.bwDemand), std::to_string(e.mutationSeed)});
  }
}

Trace Trace::readCsv(std::istream& in) {
  util::CsvReader csv(in);
  std::vector<std::string> fields;
  if (!csv.row(fields)) throw std::runtime_error("Trace::readCsv: empty input");
  if (fields.size() != kColumns ||
      !std::equal(fields.begin(), fields.end(), kHeader)) {
    throw std::runtime_error("Trace::readCsv: unrecognized header row");
  }
  Trace trace;
  while (csv.row(fields)) {
    const std::size_t row = csv.rowsRead();
    if (fields.size() != kColumns) {
      throw std::runtime_error("Trace::readCsv: expected " +
                               std::to_string(kColumns) + " fields, got " +
                               std::to_string(fields.size()) + " at row " +
                               std::to_string(row));
    }
    TraceEvent e;
    e.timeUs = parseU64(fields[0], "time_us", row);
    e.kind = parseKind(fields[1], row);
    e.id = parseU64(fields[2], "id", row);
    e.queryNodes = static_cast<std::uint32_t>(parseU64(fields[3], "query_nodes", row));
    e.queryEdges = static_cast<std::uint32_t>(parseU64(fields[4], "query_edges", row));
    e.querySeed = parseU64(fields[5], "query_seed", row);
    e.priority = parsePriorityField(fields[6], row);
    e.tenant = parseU64(fields[7], "tenant", row);
    e.deadlineMs = static_cast<std::uint32_t>(parseU64(fields[8], "deadline_ms", row));
    e.budgetMs = static_cast<std::uint32_t>(parseU64(fields[9], "budget_ms", row));
    e.holdUs = parseU64(fields[10], "hold_us", row);
    e.cpuDemand = parseDouble(fields[11], "cpu_demand", row);
    e.bwDemand = parseDouble(fields[12], "bw_demand", row);
    e.mutationSeed = parseU64(fields[13], "mutation_seed", row);
    trace.events.push_back(e);
  }
  trace.sortByTime();
  return trace;
}

namespace {

/// Shared generator core: arrival times come from the non-homogeneous
/// Poisson thinning loop over `rate(tUs)` bounded by `maxRate` (Lewis &
/// Shedler); everything else (payload, departures, mutation interleave) is
/// identical across the three generator shapes.
template <typename RateFn>
Trace generate(const TraceGenOptions& o, double maxRatePerSec, RateFn&& rate) {
  if (o.arrivals == 0) return {};
  if (!(maxRatePerSec > 0.0)) {
    throw std::invalid_argument("sim trace generator: non-positive rate");
  }
  util::Rng arrivalRng(util::deriveSeed(o.seed, 1));
  util::Rng payloadRng(util::deriveSeed(o.seed, 2));

  Trace trace;
  trace.events.reserve(o.arrivals * 2 +
                       static_cast<std::size_t>(
                           o.mutationsPerArrival * static_cast<double>(o.arrivals)) +
                       4);
  double tUs = 0.0;
  double pendingMutations = 0.0;
  std::uint64_t mutations = 0;
  for (std::uint64_t id = 0; id < o.arrivals; ++id) {
    // Thinning: candidate points at the envelope rate, kept with probability
    // rate(t)/maxRate — exact for any bounded rate function and fully
    // deterministic per seed.
    while (true) {
      tUs += arrivalRng.exponential(maxRatePerSec / 1e6);
      if (arrivalRng.uniform() * maxRatePerSec <= rate(tUs)) break;
    }
    const auto timeUs = static_cast<std::uint64_t>(tUs);

    pendingMutations += o.mutationsPerArrival;
    for (; pendingMutations >= 1.0; pendingMutations -= 1.0) {
      TraceEvent m;
      m.timeUs = timeUs;  // emitted before the arrival; stable sort keeps it
      m.kind = TraceEventKind::Mutation;
      m.id = mutations;
      m.mutationSeed = util::deriveSeed(o.seed, 5000 + mutations);
      trace.events.push_back(m);
      ++mutations;
    }

    TraceEvent a;
    a.timeUs = timeUs;
    a.kind = TraceEventKind::Arrival;
    a.id = id;
    a.queryNodes = static_cast<std::uint32_t>(
        payloadRng.uniformInt(o.queryNodesMin, o.queryNodesMax));
    const std::uint64_t maxEdges =
        std::min<std::uint64_t>(o.queryEdgesMax,
                                std::uint64_t{a.queryNodes} * (a.queryNodes - 1) / 2);
    a.queryEdges = static_cast<std::uint32_t>(payloadRng.uniformInt(
        a.queryNodes - 1, std::max<std::uint64_t>(maxEdges, a.queryNodes - 1)));
    a.querySeed = util::deriveSeed(o.seed, 1000 + id);
    const double cls = payloadRng.uniform();
    a.priority = cls < o.lowShare                  ? service::Priority::Low
                 : cls < o.lowShare + o.normalShare ? service::Priority::Normal
                                                    : service::Priority::High;
    a.tenant = o.tenants > 0 ? id % o.tenants : 0;
    if (payloadRng.bernoulli(o.deadlineShare)) {
      a.deadlineMs = o.deadlineMs;
      a.budgetMs = o.deadlineMs;
    }
    a.holdUs = 1 + static_cast<std::uint64_t>(
                       payloadRng.exponential(1.0 / (o.meanHoldMs * 1000.0)));
    a.cpuDemand = payloadRng.uniform(o.cpuDemandMin, o.cpuDemandMax);
    a.bwDemand = payloadRng.uniform(o.bwDemandMin, o.bwDemandMax);
    trace.events.push_back(a);

    TraceEvent d;
    d.timeUs = a.timeUs + a.holdUs;
    d.kind = TraceEventKind::Departure;
    d.id = id;
    trace.events.push_back(d);
  }
  trace.sortByTime();
  return trace;
}

}  // namespace

Trace poissonTrace(const TraceGenOptions& options) {
  const double rate = options.arrivalsPerSec;
  return generate(options, rate, [rate](double) { return rate; });
}

Trace burstTrace(const TraceGenOptions& options) {
  const double peak = options.arrivalsPerSec * options.burstFactor;
  const double periodUs = (options.burstLenMs + options.gapLenMs) * 1000.0;
  const double burstUs = options.burstLenMs * 1000.0;
  return generate(options, peak, [=](double tUs) {
    return std::fmod(tUs, periodUs) < burstUs ? peak : 0.0;
  });
}

Trace diurnalTrace(const TraceGenOptions& options) {
  const double base = options.arrivalsPerSec;
  const double depth = options.diurnalDepth;
  const double periodUs = options.diurnalPeriodMs * 1000.0;
  return generate(options, base * (1.0 + depth), [=](double tUs) {
    constexpr double kTwoPi = 6.283185307179586;
    return std::max(0.0, base * (1.0 + depth * std::sin(kTwoPi * tUs / periodUs)));
  });
}

}  // namespace netembed::sim
