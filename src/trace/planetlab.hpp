#pragma once
// Synthetic PlanetLab all-pairs-ping substrate (paper §VII-B; substitution
// for the unavailable dataset [21], see DESIGN.md §5).
//
// The real trace provides min/avg/max RTT between 296 PlanetLab sites; with
// some sites down, the graph has ~28,996 edges and is almost — but not quite
// — a clique. The synthesizer reproduces the properties the paper's
// experiments depend on:
//   * 296 sites, ~29k measured pairs,
//   * min <= avg <= max per pair, heavy max tail,
//   * a delay distribution with ~23% of links in the 10-100 ms window
//     (§VII-D cliques: "about 6,700 edges") and ~70% in 25-175 ms
//     (§VII-D composites: "about 70% of the links"),
//   * geographic structure (sites cluster into regions; intra-region RTTs
//     are small) and per-site attributes (osType, cpuMhz, memMB) for
//     isBoundTo-style constraints.
//
// The same text format the all-pairs-ping service used is written/parsed so
// the dataset-loading path is a first-class, tested code path.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace netembed::trace {

struct PlanetLabOptions {
  std::size_t sites = 296;
  std::size_t clusters = 30;       // metro-area regions
  std::size_t continents = 5;      // continents on a ring; regions cluster on them
  std::size_t deadSites = 4;       // sites with no measurements at all
  double pairLossRate = 0.31;      // additional per-pair measurement loss
  double continentRingKm = 6400.0; // ring radius the continents sit on
  double continentSpreadKm = 1000.0;  // region scatter around a continent
  double clusterSigmaKm = 150.0;   // site scatter around a region
  double rttPerKm = 0.0105;        // fiber RTT per km
  double routeInflation = 1.35;    // paths are longer than geodesics
  double baseRttMs = 2.5;          // stack + first-hop cost
  std::uint64_t seed = 42;
};

/// Generate the hosting network. Undirected; edge attrs minDelay / avgDelay
/// / maxDelay (ms); node attrs x, y (km), region, osType, cpuMhz, memMB.
[[nodiscard]] graph::Graph synthesize(const PlanetLabOptions& options = {});

/// Write in the all-pairs-ping text format:
///   # comment lines
///   <srcSite> <dstSite> <minMs> <avgMs> <maxMs>
void writeAllPairsPing(const graph::Graph& g, std::ostream& out);

/// Parse the all-pairs-ping text format back into a hosting graph (only the
/// delay attributes survive a round trip; that is all the format carries).
[[nodiscard]] graph::Graph readAllPairsPing(std::istream& in);

}  // namespace netembed::trace
