#include "trace/planetlab.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace netembed::trace {

using graph::Graph;
using graph::NodeId;

namespace {

const char* const kOsChoices[] = {"linux-2.4", "linux-2.6", "fedora-core-2",
                                  "fedora-core-4", "centos-4"};
const std::int64_t kMemChoices[] = {512, 1024, 2048, 4096};

struct Site {
  double x, y;
  std::size_t cluster;
  bool dead;
};

}  // namespace

Graph synthesize(const PlanetLabOptions& options) {
  if (options.sites < 2) throw std::invalid_argument("planetlab: need >= 2 sites");
  if (options.clusters == 0) throw std::invalid_argument("planetlab: need >= 1 cluster");
  util::Rng rng(options.seed);

  // Continents sit on a ring (intercontinental RTTs dominate, like the real
  // trace); regions scatter around their continent; sites around regions.
  const std::size_t continents = std::max<std::size_t>(1, options.continents);
  std::vector<std::pair<double, double>> continentCenters;
  continentCenters.reserve(continents);
  const double cx = options.continentRingKm * 2.0;
  for (std::size_t k = 0; k < continents; ++k) {
    const double angle = 2.0 * 3.14159265358979323846 * static_cast<double>(k) /
                         static_cast<double>(continents);
    continentCenters.emplace_back(cx + options.continentRingKm * std::cos(angle),
                                  cx + options.continentRingKm * std::sin(angle));
  }
  std::vector<std::pair<double, double>> centers;
  centers.reserve(options.clusters);
  for (std::size_t c = 0; c < options.clusters; ++c) {
    const auto& continent = continentCenters[c % continents];
    centers.emplace_back(continent.first + rng.normal(0.0, options.continentSpreadKm),
                         continent.second + rng.normal(0.0, options.continentSpreadKm));
  }

  std::vector<Site> sites(options.sites);
  for (std::size_t i = 0; i < options.sites; ++i) {
    const std::size_t cluster = rng.index(options.clusters);
    sites[i] = {centers[cluster].first + rng.normal(0.0, options.clusterSigmaKm),
                centers[cluster].second + rng.normal(0.0, options.clusterSigmaKm),
                cluster, false};
  }
  // Dead sites: ran no daemon during the trace window.
  for (std::size_t k = 0; k < std::min(options.deadSites, options.sites); ++k) {
    sites[rng.index(options.sites)].dead = true;
  }

  Graph g(false);
  for (std::size_t i = 0; i < options.sites; ++i) {
    const NodeId id = g.addNode("site" + std::to_string(i));
    auto& attrs = g.nodeAttrs(id);
    attrs.set("x", sites[i].x);
    attrs.set("y", sites[i].y);
    attrs.set("region", "region" + std::to_string(sites[i].cluster));
    attrs.set("osType", kOsChoices[rng.index(std::size(kOsChoices))]);
    attrs.set("cpuMhz", static_cast<std::int64_t>(rng.uniformInt(1000, 3400)));
    attrs.set("memMB", kMemChoices[rng.index(std::size(kMemChoices))]);
    attrs.set("alive", !sites[i].dead);
  }

  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId avgId = graph::attrId("avgDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");


  for (std::size_t i = 0; i < options.sites; ++i) {
    for (std::size_t j = i + 1; j < options.sites; ++j) {
      if (sites[i].dead || sites[j].dead) continue;
      if (rng.bernoulli(options.pairLossRate)) continue;

      // Purely geometric RTT: delay compatibility is then (approximately)
      // transitive -- sites close to each other are interchangeable -- which
      // is the structural property of real all-pairs traces that keeps
      // subgraph queries solution-rich (paper reports near-linear scaling).
      const double distKm = std::hypot(sites[i].x - sites[j].x, sites[i].y - sites[j].y);
      const double propagation =
          options.baseRttMs + options.rttPerKm * options.routeInflation * distKm;
      // Jitter is small relative to propagation (as in real ping traces,
      // where min ~= avg for most pairs); compatibility between links is
      // then dominated by geography, which keeps it (roughly) transitive.
      const double avg = propagation * rng.uniform(1.02, 1.06);
      const double mn = propagation * rng.uniform(0.985, 1.0);
      const double mx = avg * (1.0 + std::min(0.25, rng.exponential(20.0)));

      const graph::EdgeId e =
          g.addEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      auto& attrs = g.edgeAttrs(e);
      attrs.set(minId, mn);
      attrs.set(avgId, avg);
      attrs.set(maxId, mx);
    }
  }
  g.attrs().set("generator", "planetlab-synth");
  return g;
}

void writeAllPairsPing(const Graph& g, std::ostream& out) {
  out << "# all-pairs ping (synthetic), RTT in ms\n";
  out << "# src dst min avg max\n";
  char line[256];
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    const auto& attrs = g.edgeAttrs(e);
    std::snprintf(line, sizeof line, "%s %s %.3f %.3f %.3f\n",
                  g.nodeName(g.edgeSource(e)).c_str(),
                  g.nodeName(g.edgeTarget(e)).c_str(),
                  attrs.getDouble("minDelay", 0.0), attrs.getDouble("avgDelay", 0.0),
                  attrs.getDouble("maxDelay", 0.0));
    out << line;
  }
}

Graph readAllPairsPing(std::istream& in) {
  Graph g(false);
  const graph::AttrId minId = graph::attrId("minDelay");
  const graph::AttrId avgId = graph::attrId("avgDelay");
  const graph::AttrId maxId = graph::attrId("maxDelay");

  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string src, dst;
    double mn = 0, avg = 0, mx = 0;
    if (!(fields >> src >> dst >> mn >> avg >> mx)) {
      throw std::runtime_error("all-pairs-ping: malformed line " +
                               std::to_string(lineNo) + ": '" + line + "'");
    }
    const auto ensure = [&](const std::string& name) {
      if (const auto existing = g.findNode(name)) return *existing;
      return g.addNode(name);
    };
    const NodeId a = ensure(src);
    const NodeId b = ensure(dst);
    const graph::EdgeId e = g.addEdge(a, b);
    auto& attrs = g.edgeAttrs(e);
    attrs.set(minId, mn);
    attrs.set(avgId, avg);
    attrs.set(maxId, mx);
  }
  return g;
}

}  // namespace netembed::trace
