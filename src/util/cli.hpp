#pragma once
// Tiny command-line flag parser shared by the example and benchmark binaries.
// Supports --name=value, --name value, and bare boolean --name.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace netembed::util {

class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string getString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] long long getInt(const std::string& name, long long fallback) const;
  [[nodiscard]] double getDouble(const std::string& name, double fallback) const;
  [[nodiscard]] bool getBool(const std::string& name, bool fallback = false) const;
  [[nodiscard]] std::uint64_t getSeed(const std::string& name,
                                      std::uint64_t fallback) const;

  /// Non-flag arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& programName() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace netembed::util
