#include "util/cli.hpp"

#include <stdexcept>

namespace netembed::util {

ArgParser::ArgParser(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag (then bare bool).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool ArgParser::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string ArgParser::getString(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long long ArgParser::getInt(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double ArgParser::getDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool ArgParser::getBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::uint64_t ArgParser::getSeed(const std::string& name, std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stoull(it->second);
}

}  // namespace netembed::util
