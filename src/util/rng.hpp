#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All randomized components of NETEMBED (RWB's walk order, topology
// generators, the trace synthesizer, the metaheuristic baselines) take an
// explicit Rng so every experiment is reproducible from a single seed.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace netembed::util {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <algorithm> shuffles, but the member helpers below are preferred.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniformInt: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next();  // full 64-bit range
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto low = static_cast<std::uint64_t>(m);
    if (low < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * span;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
    return static_cast<std::size_t>(uniformInt(0, n - 1));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = sqrtApprox(-2.0 * logApprox(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with the given rate (lambda).
  double exponential(double rate) noexcept { return -logApprox(1.0 - uniform()) / rate; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // Thin wrappers so <cmath> stays out of this header's hot path; defined in
  // rng.cpp with the real library calls.
  static double sqrtApprox(double x) noexcept;
  static double logApprox(double x) noexcept;

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Derive a child seed; useful for giving each repetition/worker its own
/// independent stream while keeping the experiment reproducible.
[[nodiscard]] constexpr std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t stream) noexcept {
  std::uint64_t s = root ^ (0x632be59bd9b4e019ULL * (stream + 1));
  return splitmix64(s);
}

}  // namespace netembed::util
