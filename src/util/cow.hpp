#pragma once
// Chunked copy-on-write storage: the structural-sharing primitive behind
// cheap host-graph snapshots.
//
// A CowChunks<T> behaves like a vector<T> whose elements live in fixed-size
// chunks, each held through a shared_ptr. Copying the container copies only
// the chunk-pointer table (one pointer per kChunkSize elements), so two
// copies share every chunk until one of them mutates an element — mutate()
// then clones just that element's chunk. A monitoring update that touches
// one host attribute therefore costs O(kChunkSize) element copies plus an
// O(size / kChunkSize) pointer-table copy at snapshot time, instead of the
// former O(size) deep copy of every attribute map.
//
// Thread-safety contract (the usual C++ container rule): concurrent const
// reads of any number of copies are safe; mutating one object while another
// thread copies or mutates *that same object* requires external
// synchronization (the service's model mutex). Distinct copies may be read
// and mutated from different threads freely — mutation never writes a chunk
// another copy can observe (use_count tracking makes the clone decision
// under the mutating object's exclusive access).

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace netembed::util {

template <class T>
class CowChunks {
 public:
  /// 64 elements per chunk: small enough that a single-element mutation
  /// copies little, large enough that the pointer table stays ~1.5% of a
  /// flat vector's footprint.
  static constexpr std::size_t kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  CowChunks() = default;
  CowChunks(const CowChunks&) = default;
  CowChunks& operator=(const CowChunks&) = default;
  // A moved-from container must read as empty: the default move would strip
  // the chunk table but leave size_ behind, so at()/mutate() would pass the
  // bounds check and index freed state.
  CowChunks(CowChunks&& other) noexcept
      : chunks_(std::move(other.chunks_)), size_(std::exchange(other.size_, 0)) {
    other.chunks_.clear();
  }
  CowChunks& operator=(CowChunks&& other) noexcept {
    if (this == &other) return *this;  // self-move must not clear a live table
    chunks_ = std::move(other.chunks_);
    size_ = std::exchange(other.size_, 0);
    other.chunks_.clear();
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return (*chunks_[i >> kChunkShift])[i & (kChunkSize - 1)];
  }

  [[nodiscard]] const T& at(std::size_t i) const {
    checkIndex(i);
    return (*this)[i];
  }

  /// Mutable element access with copy-on-write: when the element's chunk is
  /// shared with another copy of the container, the chunk is cloned first so
  /// the write can never be observed through that other copy. The returned
  /// reference is invalidated by any later mutate()/push_back() on a copy
  /// that shares the chunk — take it, write, drop it.
  [[nodiscard]] T& mutate(std::size_t i) {
    checkIndex(i);
    Chunk& chunk = chunks_[i >> kChunkShift];
    if (chunk.use_count() > 1) chunk = std::make_shared<std::vector<T>>(*chunk);
    return (*chunk)[i & (kChunkSize - 1)];
  }

  void push_back(T value) {
    if ((size_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_shared<std::vector<T>>());
      chunks_.back()->reserve(kChunkSize);
    } else if (chunks_.back().use_count() > 1) {
      chunks_.back() = std::make_shared<std::vector<T>>(*chunks_.back());
      chunks_.back()->reserve(kChunkSize);
    }
    chunks_.back()->push_back(std::move(value));
    ++size_;
  }

  /// A structurally independent copy: every chunk cloned, nothing shared.
  /// For handing a mutable copy to another thread without COW ping-pong.
  [[nodiscard]] CowChunks detached() const {
    CowChunks out;
    out.size_ = size_;
    out.chunks_.reserve(chunks_.size());
    for (const Chunk& chunk : chunks_) {
      out.chunks_.push_back(std::make_shared<std::vector<T>>(*chunk));
    }
    return out;
  }

  /// True when element i's chunk is shared with at least one other copy
  /// (test/diagnostic hook; racy by nature under concurrent copying).
  [[nodiscard]] bool sharesChunk(std::size_t i) const {
    checkIndex(i);
    return chunks_[i >> kChunkShift].use_count() > 1;
  }

 private:
  using Chunk = std::shared_ptr<std::vector<T>>;

  void checkIndex(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("CowChunks: index out of range");
  }

  std::vector<Chunk> chunks_;
  std::size_t size_ = 0;
};

}  // namespace netembed::util
