#pragma once
// CSV and aligned-table emitters, plus the matching reader. Each benchmark
// harness prints the series a paper figure plots, both human-readable
// (table) and machine-readable (CSV); the simulator round-trips its workload
// traces through the same dialect so a trace file is a replayable artifact.

#include <iosfwd>
#include <string>
#include <vector>

namespace netembed::util {

/// RFC-4180-ish CSV writer (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string field(double v);
  static std::string field(long long v);
  static std::string field(unsigned long long v);

 private:
  std::ostream* out_;
};

/// Reader for the dialect CsvWriter emits (RFC-4180-ish: quoted fields may
/// contain commas, doubled quotes, and embedded newlines).
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(&in) {}

  /// Read the next record into `fields` (cleared first). Returns false at
  /// end of input with no record started. Throws std::runtime_error on a
  /// malformed record (an unterminated quoted field, or garbage between a
  /// closing quote and the next separator).
  bool row(std::vector<std::string>& fields);

  /// Records successfully returned so far (for error messages).
  [[nodiscard]] std::size_t rowsRead() const noexcept { return rows_; }

 private:
  std::istream* in_;
  std::size_t rows_ = 0;
};

/// Column-aligned plain-text table for terminal output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void addRow(std::vector<std::string> row);
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helper ("12.34").
[[nodiscard]] std::string formatFixed(double v, int decimals);

}  // namespace netembed::util
