#pragma once
// CSV and aligned-table emitters. Each benchmark harness prints the series a
// paper figure plots, both human-readable (table) and machine-readable (CSV).

#include <iosfwd>
#include <string>
#include <vector>

namespace netembed::util {

/// RFC-4180-ish CSV writer (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string field(double v);
  static std::string field(long long v);
  static std::string field(unsigned long long v);

 private:
  std::ostream* out_;
};

/// Column-aligned plain-text table for terminal output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void addRow(std::vector<std::string> row);
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helper ("12.34").
[[nodiscard]] std::string formatFixed(double v, int decimals);

}  // namespace netembed::util
