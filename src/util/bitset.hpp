#pragma once
// Packed 64-bit bitsets for candidate-domain algebra.
//
// NETEMBED's eq.-2 candidate computation is set intersection over host-node
// domains; represented as packed words it becomes one AND per 64 host nodes
// plus a ctz-driven walk over the surviving bits. Bitset is the dynamic
// single-row flavour used for per-search scratch state (`used_`, the
// per-depth intersection accumulator); BitMatrix packs a family of
// equal-width rows contiguously (node viability, per-cell filter rows) so a
// row is a plain word span that other bitsets can AND against.
//
// All word-level operations preserve the invariant that bits at positions
// >= size() in the last word are zero, so count()/forEachSet() never see
// ghost bits and row-vs-row operations on equal-sized operands are exact.
//
// The word loops dispatch through util::simd — AVX2/AVX-512 on x86, NEON on
// AArch64, scalar otherwise — selected once at startup (overridable via
// NETEMBED_SIMD); every ISA produces bit-identical results.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/simd.hpp"

namespace netembed::util {

inline constexpr std::size_t kBitsPerWord = 64;

[[nodiscard]] inline constexpr std::size_t wordsForBits(std::size_t bits) noexcept {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

/// Mask selecting the valid bits of the final word of a `bits`-wide row
/// (all-ones when the width is a multiple of 64 or zero).
[[nodiscard]] inline constexpr std::uint64_t tailMask(std::size_t bits) noexcept {
  const std::size_t rem = bits % kBitsPerWord;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
}

/// Test bit `i` of a raw word row (e.g. a BitMatrix row span).
[[nodiscard]] inline bool testBit(std::span<const std::uint64_t> words,
                                  std::size_t i) noexcept {
  return (words[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
}

/// Invoke `fn(index)` for every set bit of `words` in ascending order.
template <typename Fn>
inline void forEachSetBit(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      fn(w * kBitsPerWord + bit);
      word &= word - 1;  // clear lowest set bit
    }
  }
}

/// Dynamically-sized bitset over [0, size()) with word-parallel set algebra.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits) { assign(bits); }

  /// Resize to `bits` positions, all cleared.
  void assign(std::size_t bits) {
    bits_ = bits;
    words_.assign(wordsForBits(bits), 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t wordCount() const noexcept { return words_.size(); }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    assert(i < bits_);
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
  }
  void set(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i / kBitsPerWord] |= std::uint64_t{1} << (i % kBitsPerWord);
  }
  void reset(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i / kBitsPerWord] &= ~(std::uint64_t{1} << (i % kBitsPerWord));
  }

  void clearAll() noexcept {
    for (auto& w : words_) w = 0;
  }
  void setAll() noexcept {
    if (words_.empty()) return;
    for (auto& w : words_) w = ~std::uint64_t{0};
    words_.back() &= tailMask(bits_);
  }

  [[nodiscard]] std::size_t count() const noexcept {
    return simd::popcount(words_.data(), words_.size());
  }
  [[nodiscard]] bool any() const noexcept {
    return simd::orReduce(words_.data(), words_.size()) != 0;
  }

  /// Overwrite with `row`, which must span exactly wordCount() words.
  void copyFrom(std::span<const std::uint64_t> row) noexcept {
    assert(row.size() == words_.size());
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] = row[w];
  }

  /// this &= row. Returns true when any bit survives (cheap emptiness check
  /// folded into the pass so callers can stop intersecting a dead set).
  bool andWith(std::span<const std::uint64_t> row) noexcept {
    assert(row.size() == words_.size());
    return simd::andInto(words_.data(), row.data(), words_.size()) != 0;
  }

  /// this &= ~row.
  void andNotWith(std::span<const std::uint64_t> row) noexcept {
    assert(row.size() == words_.size());
    simd::andNotInto(words_.data(), row.data(), words_.size());
  }

  /// this = a & ~b — the fused "viable minus used" seed (one pass where
  /// copyFrom + andNotWith would take two).
  void assignAndNot(std::span<const std::uint64_t> a, const Bitset& b) noexcept {
    assert(a.size() == words_.size() && b.wordCount() == words_.size());
    simd::copyAndNot(words_.data(), a.data(), b.words().data(), words_.size());
  }

  /// this = a & b & ~c, returning true when any bit survives — the fused
  /// first-constrainer intersection with viability and the used-set folded
  /// into the same pass.
  bool assignAndAndNot(std::span<const std::uint64_t> a,
                       std::span<const std::uint64_t> b, const Bitset& c) noexcept {
    assert(a.size() == words_.size() && b.size() == words_.size() &&
           c.wordCount() == words_.size());
    return simd::copyAndAndNot(words_.data(), a.data(), b.data(),
                               c.words().data(), words_.size()) != 0;
  }

  /// this &= row, returning the resulting popcount — the dynamic-order
  /// domain update (narrow and re-count in one pass).
  std::size_t andWithCount(std::span<const std::uint64_t> row) noexcept {
    assert(row.size() == words_.size());
    return simd::andIntoPopcount(words_.data(), row.data(), words_.size());
  }

  bool andWith(const Bitset& other) noexcept { return andWith(other.words()); }
  void andNotWith(const Bitset& other) noexcept { andNotWith(other.words()); }

  // --- shard-range variants --------------------------------------------------
  // Operate on the absolute word subrange [beginWord, endWord) only; words
  // outside the range are left untouched (callers — the sharded search path —
  // track which ranges hold live data and never read the rest). Bit indices
  // reported by forEachSetInRange are absolute, as everywhere else.

  /// this[b..e) &= row[b..e). Returns true when any bit survives in range.
  bool andWithRange(std::span<const std::uint64_t> row, std::size_t beginWord,
                    std::size_t endWord) noexcept {
    assert(row.size() == words_.size() && endWord <= words_.size());
    return simd::andIntoRange(words_.data(), row.data(), beginWord, endWord) != 0;
  }

  /// this[b..e) = a[b..e) & ~b_[b..e).
  void assignAndNotRange(std::span<const std::uint64_t> a, const Bitset& b,
                         std::size_t beginWord, std::size_t endWord) noexcept {
    assert(a.size() == words_.size() && b.wordCount() == words_.size() &&
           endWord <= words_.size());
    simd::copyAndNotRange(words_.data(), a.data(), b.words().data(), beginWord,
                          endWord);
  }

  /// this[b..e) = a[b..e) & b_[b..e) & ~c[b..e); true when any bit survives.
  bool assignAndAndNotRange(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b, const Bitset& c,
                            std::size_t beginWord, std::size_t endWord) noexcept {
    assert(a.size() == words_.size() && b.size() == words_.size() &&
           c.wordCount() == words_.size() && endWord <= words_.size());
    return simd::copyAndAndNotRange(words_.data(), a.data(), b.data(),
                                    c.words().data(), beginWord, endWord) != 0;
  }

  /// this[b..e) &= row[b..e), returning the in-range popcount.
  std::size_t andWithCountRange(std::span<const std::uint64_t> row,
                                std::size_t beginWord, std::size_t endWord) noexcept {
    assert(row.size() == words_.size() && endWord <= words_.size());
    return simd::andIntoPopcountRange(words_.data(), row.data(), beginWord, endWord);
  }

  /// Zero words [b, e).
  void clearRange(std::size_t beginWord, std::size_t endWord) noexcept {
    assert(endWord <= words_.size());
    for (std::size_t w = beginWord; w < endWord; ++w) words_[w] = 0;
  }

  /// Invoke `fn(absoluteIndex)` for every set bit in words [b, e), ascending.
  template <typename Fn>
  void forEachSetInRange(std::size_t beginWord, std::size_t endWord, Fn&& fn) const {
    assert(endWord <= words_.size());
    for (std::size_t w = beginWord; w < endWord; ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn(w * kBitsPerWord + bit);
        word &= word - 1;
      }
    }
  }

  /// Invoke `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    forEachSetBit(words(), std::forward<Fn>(fn));
  }

  friend bool operator==(const Bitset&, const Bitset&) = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A rows() x cols() bit matrix stored as contiguous word rows; row(r) is a
/// span other bitsets AND against without copying.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols) { assign(rows, cols); }

  /// Resize to rows x cols, all bits cleared.
  void assign(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    wordsPerRow_ = wordsForBits(cols);
    words_.assign(rows * wordsPerRow_, 0);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t wordsPerRow() const noexcept { return wordsPerRow_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {words_.data() + r * wordsPerRow_, wordsPerRow_};
  }
  /// Mutable row access for builders (rows are disjoint word ranges, so
  /// distinct rows may be filled from different threads).
  [[nodiscard]] std::uint64_t* rowData(std::size_t r) noexcept {
    assert(r < rows_);
    return words_.data() + r * wordsPerRow_;
  }

  [[nodiscard]] bool test(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return (words_[r * wordsPerRow_ + c / kBitsPerWord] >> (c % kBitsPerWord)) & 1u;
  }
  void set(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    words_[r * wordsPerRow_ + c / kBitsPerWord] |= std::uint64_t{1}
                                                   << (c % kBitsPerWord);
  }
  void reset(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    words_[r * wordsPerRow_ + c / kBitsPerWord] &=
        ~(std::uint64_t{1} << (c % kBitsPerWord));
  }
  /// Write one bit (named distinctly from assign(rows, cols), which resizes).
  void setTo(std::size_t r, std::size_t c, bool value) noexcept {
    value ? set(r, c) : reset(r, c);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t wordsPerRow_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace netembed::util
