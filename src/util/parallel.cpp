#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/fault.hpp"
#include "util/latch.hpp"

namespace netembed::util {

namespace {
// Identifies which pool (if any) owns the calling thread, so the serial
// fallbacks below only trigger for the pool actually being waited on.
thread_local const void* tlsWorkerOfPool = nullptr;
}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable workAvailable;
  std::condition_variable allDone;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  std::size_t inFlight = 0;
  bool shutdown = false;
  std::stop_source stop;
  std::atomic<std::size_t> liveWorkers{0};
  std::atomic<std::uint64_t> workerDeaths{0};
  std::atomic<std::uint64_t> serialFallbacks{0};

  /// Run everything still queued on this thread (the last surviving worker
  /// dying under fault injection): no queued task — and no CompletionLatch
  /// waiting on one — may ever be stranded by worker loss.
  void drainQueueLocked(std::unique_lock<std::mutex>& lock) {
    while (!queue.empty()) {
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      ++inFlight;
      lock.unlock();
      task();
      lock.lock();
      --inFlight;
    }
    if (inFlight == 0) allDone.notify_all();
  }

  void workerLoop() {
    tlsWorkerOfPool = this;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex);
        workAvailable.wait(lock, [&] { return shutdown || !queue.empty(); });
        if (shutdown && queue.empty()) return;
        // Injected worker death: this worker exits *before* dequeuing, so no
        // accepted task dies with it. The probe sits past the wait — only a
        // worker with work (or shutdown) in sight can be killed, which keeps
        // a schedule's fire count meaningful. Once no workers remain the
        // pool degrades: the dying worker drains the queue inline, and
        // submit() runs later tasks on their callers.
        if (FaultInjector::enabled() &&
            faultFires(faultsite::kPoolWorkerDeath)) {
          workerDeaths.fetch_add(1, std::memory_order_relaxed);
          if (liveWorkers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            drainQueueLocked(lock);
          }
          return;
        }
        task = std::move(queue.front());
        queue.pop_front();
        ++inFlight;
      }
      task();
      {
        std::lock_guard lock(mutex);
        --inFlight;
        if (queue.empty() && inFlight == 0) allDone.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  impl_->workers.reserve(threads);
  impl_->liveWorkers.store(threads, std::memory_order_relaxed);
  for (std::size_t i = 0; i < threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->workAvailable.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> task) {
  // Injected spawn failure: the task is refused before it is queued — the
  // exact shape of an allocation failure in push_back, which submitCounted
  // and parallelFor already survive.
  if (FaultInjector::enabled()) faultPoint(faultsite::kPoolSubmit);
  {
    std::lock_guard lock(impl_->mutex);
    if (impl_->liveWorkers.load(std::memory_order_acquire) > 0) {
      impl_->queue.push_back(std::move(task));
      impl_->workAvailable.notify_one();
      return;
    }
  }
  // Degraded mode — every worker died: run inline on the caller. Slower,
  // but submitted work still completes and wait() still returns.
  impl_->serialFallbacks.fetch_add(1, std::memory_order_relaxed);
  task();
}

void ThreadPool::wait() {
  std::unique_lock lock(impl_->mutex);
  impl_->allDone.wait(lock, [&] { return impl_->queue.empty() && impl_->inFlight == 0; });
}

std::size_t ThreadPool::threadCount() const noexcept { return impl_->workers.size(); }

std::size_t ThreadPool::liveWorkerCount() const noexcept {
  return impl_->liveWorkers.load(std::memory_order_acquire);
}

std::uint64_t ThreadPool::workerDeaths() const noexcept {
  return impl_->workerDeaths.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::serialFallbacks() const noexcept {
  return impl_->serialFallbacks.load(std::memory_order_relaxed);
}

bool ThreadPool::isWorkerThread() const noexcept {
  return tlsWorkerOfPool == impl_;
}

void ThreadPool::requestStop() {
  // The mutex serializes against resetStop() reassigning the stop_source;
  // tokens handed out by stopToken() stay lock-free to poll.
  std::lock_guard lock(impl_->mutex);
  impl_->stop.request_stop();
}

bool ThreadPool::stopRequested() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stop.stop_requested();
}

std::stop_token ThreadPool::stopToken() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stop.get_token();
}

void ThreadPool::resetStop() {
  std::lock_guard lock(impl_->mutex);
  impl_->stop = std::stop_source{};
}

void submitCounted(ThreadPool& pool, CompletionLatch& latch,
                   std::function<void()> task,
                   const std::function<void()>& onSubmitFailure) {
  latch.add();
  try {
    pool.submit(std::move(task));
  } catch (...) {
    latch.revert();
    if (onSubmitFailure) onSubmitFailure();
    latch.wait();
    throw;
  }
}

void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn, std::size_t grain) {
  if (n == 0) return;
  const std::size_t workers = pool.threadCount();
  // Run serial when called from one of this pool's own tasks: blocking on
  // subtasks here could starve the queue if enough workers do the same.
  // A pool degraded to zero live workers (injected worker death) also runs
  // serial outright — fanning out would only bounce every chunk through
  // submit()'s inline fallback.
  if (n == 1 || workers == 1 || pool.isWorkerThread() ||
      pool.liveWorkerCount() == 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (grain == 0) grain = std::max<std::size_t>(1, n / (workers * 8));

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  const std::size_t tasks = std::min(workers, (n + grain - 1) / grain);
  CompletionLatch latch;

  const auto drainChunks = [&] {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(grain);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + grain);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        cursor.store(n);  // cancel remaining chunks
      }
    }
  };

  for (std::size_t t = 0; t < tasks; ++t) {
    submitCounted(
        pool, latch,
        [&] {
          drainChunks();
          latch.done();
        },
        [&] { cursor.store(n); });
  }

  // The caller pulls chunks too instead of sleeping in wait(): forward
  // progress stays guaranteed even when every pool worker is busy elsewhere.
  drainChunks();
  latch.wait();
  if (firstError) std::rethrow_exception(firstError);
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t grain) {
  parallelFor(sharedPool(), n, fn, grain);
}

ThreadPool& sharedPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace netembed::util
