#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netembed::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

namespace {
// Two-sided 95% Student-t critical values for df = 1..30.
constexpr double kT95[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
}  // namespace

double RunningStats::ci95HalfWidth() const noexcept {
  if (n_ < 2) return 0.0;
  const std::size_t df = n_ - 1;
  const double t = df <= 30 ? kT95[df - 1] : 1.96;
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double quantileNearestRank(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size() - 1)));
  return values[std::min(idx, values.size() - 1)];
}

double mean(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

}  // namespace netembed::util
