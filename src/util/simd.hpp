#pragma once
// Runtime-dispatched SIMD kernels for the packed-word candidate algebra.
//
// The eq.-2 hot loop is word arithmetic over 64-bit rows (AND, ANDNOT,
// fused viable/used intersection, popcount reduction); this header exposes
// those operations as free functions that dispatch once-per-process to the
// widest instruction set the host supports — AVX-512 or AVX2 on x86, NEON on
// AArch64 — with the portable scalar loop as the always-available fallback.
//
// Dispatch contract:
//   * every ISA variant computes bit-identical results (they are bitwise
//     operations — the differential suites additionally pin identical
//     solution streams end to end);
//   * the active ISA is resolved once at startup from CPU feature detection,
//     overridable via the NETEMBED_SIMD environment variable
//     (scalar|avx2|avx512|neon). Requesting an ISA the host cannot execute
//     clamps down to the best supported one — an override can never crash;
//   * tests may switch the ISA mid-process through setActiveIsa(); the knob
//     is atomic so concurrent readers stay race-free.
//
// Short rows bypass dispatch entirely: below kInlineWordThreshold words the
// inlined scalar loop beats any vector unit once call overhead is counted
// (a 56-node clique host is a single word).

#include <cstddef>
#include <cstdint>

namespace netembed::util::simd {

enum class Isa : std::uint8_t { Scalar, Neon, Avx2, Avx512 };

[[nodiscard]] const char* isaName(Isa isa) noexcept;

/// The ISA kernels currently dispatch to. Resolved from CPU features and the
/// NETEMBED_SIMD override on first use.
[[nodiscard]] Isa activeIsa() noexcept;

/// Widest ISA this binary can execute on this host (ignores the override).
[[nodiscard]] Isa bestSupportedIsa() noexcept;

/// True when `isa` can execute on this host (Scalar always can).
[[nodiscard]] bool isaSupported(Isa isa) noexcept;

/// Test hook: force dispatch to `isa` (clamped to bestSupportedIsa()).
/// Returns the previously active ISA so tests can restore it.
Isa setActiveIsa(Isa isa) noexcept;

/// Rows at or below this word count run the inlined scalar loop regardless
/// of the active ISA: dispatch + call overhead exceeds the vector win.
inline constexpr std::size_t kInlineWordThreshold = 4;

namespace detail {

// --- portable reference kernels (also the inlined short-row fast path) ------

inline std::uint64_t andIntoScalar(std::uint64_t* dst, const std::uint64_t* src,
                                   std::size_t n) noexcept {
  std::uint64_t alive = 0;
  for (std::size_t i = 0; i < n; ++i) alive |= (dst[i] &= src[i]);
  return alive;
}

inline void andNotIntoScalar(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

inline void copyAndNotScalar(std::uint64_t* dst, const std::uint64_t* a,
                             const std::uint64_t* b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

inline std::uint64_t copyAndAndNotScalar(std::uint64_t* dst, const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         const std::uint64_t* c,
                                         std::size_t n) noexcept {
  std::uint64_t alive = 0;
  for (std::size_t i = 0; i < n; ++i) alive |= (dst[i] = a[i] & b[i] & ~c[i]);
  return alive;
}

std::size_t popcountScalarImpl(const std::uint64_t* w, std::size_t n) noexcept;

inline std::size_t andIntoPopcountScalar(std::uint64_t* dst, const std::uint64_t* src,
                                         std::size_t n) noexcept;

inline std::uint64_t orReduceScalar(const std::uint64_t* w, std::size_t n) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= w[i];
  return acc;
}

// --- vector variants (defined in simd.cpp behind target attributes) ---------
#if defined(__x86_64__) || defined(_M_X64)
std::uint64_t andIntoAvx2(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
void andNotIntoAvx2(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
void copyAndNotAvx2(std::uint64_t*, const std::uint64_t*, const std::uint64_t*,
                    std::size_t) noexcept;
std::uint64_t copyAndAndNotAvx2(std::uint64_t*, const std::uint64_t*,
                                const std::uint64_t*, const std::uint64_t*,
                                std::size_t) noexcept;
std::size_t andIntoPopcountAvx2(std::uint64_t*, const std::uint64_t*,
                                std::size_t) noexcept;
std::size_t popcountAvx2(const std::uint64_t*, std::size_t) noexcept;

std::uint64_t andIntoAvx512(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
void andNotIntoAvx512(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
void copyAndNotAvx512(std::uint64_t*, const std::uint64_t*, const std::uint64_t*,
                      std::size_t) noexcept;
std::uint64_t copyAndAndNotAvx512(std::uint64_t*, const std::uint64_t*,
                                  const std::uint64_t*, const std::uint64_t*,
                                  std::size_t) noexcept;
std::size_t andIntoPopcountAvx512(std::uint64_t*, const std::uint64_t*,
                                  std::size_t) noexcept;
std::size_t popcountAvx512(const std::uint64_t*, std::size_t) noexcept;
#elif defined(__aarch64__)
std::uint64_t andIntoNeon(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
void andNotIntoNeon(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept;
void copyAndNotNeon(std::uint64_t*, const std::uint64_t*, const std::uint64_t*,
                    std::size_t) noexcept;
std::uint64_t copyAndAndNotNeon(std::uint64_t*, const std::uint64_t*,
                                const std::uint64_t*, const std::uint64_t*,
                                std::size_t) noexcept;
std::size_t andIntoPopcountNeon(std::uint64_t*, const std::uint64_t*,
                                std::size_t) noexcept;
std::size_t popcountNeon(const std::uint64_t*, std::size_t) noexcept;
#endif

/// Relaxed load of the dispatch knob (set once at startup, or by tests).
[[nodiscard]] Isa loadActiveIsa() noexcept;

}  // namespace detail

// --- dispatched entry points -------------------------------------------------
// dst/a/b/c are word rows of length n; dst may alias a/b/c only where the
// scalar loop would still be correct (in-place dst == a is fine everywhere).

/// dst &= src. Returns the OR of the resulting words (non-zero iff any bit
/// survives) so callers can stop intersecting a dead set without a re-scan.
inline std::uint64_t andInto(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) noexcept {
  if (n > kInlineWordThreshold) {
#if defined(__x86_64__) || defined(_M_X64)
    switch (detail::loadActiveIsa()) {
      case Isa::Avx512: return detail::andIntoAvx512(dst, src, n);
      case Isa::Avx2: return detail::andIntoAvx2(dst, src, n);
      default: break;
    }
#elif defined(__aarch64__)
    if (detail::loadActiveIsa() == Isa::Neon) return detail::andIntoNeon(dst, src, n);
#endif
  }
  return detail::andIntoScalar(dst, src, n);
}

/// dst &= ~src.
inline void andNotInto(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) noexcept {
  if (n > kInlineWordThreshold) {
#if defined(__x86_64__) || defined(_M_X64)
    switch (detail::loadActiveIsa()) {
      case Isa::Avx512: detail::andNotIntoAvx512(dst, src, n); return;
      case Isa::Avx2: detail::andNotIntoAvx2(dst, src, n); return;
      default: break;
    }
#elif defined(__aarch64__)
    if (detail::loadActiveIsa() == Isa::Neon) {
      detail::andNotIntoNeon(dst, src, n);
      return;
    }
#endif
  }
  detail::andNotIntoScalar(dst, src, n);
}

/// dst = a & ~b — the fused "viable minus used" root/seed intersection.
inline void copyAndNot(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t n) noexcept {
  if (n > kInlineWordThreshold) {
#if defined(__x86_64__) || defined(_M_X64)
    switch (detail::loadActiveIsa()) {
      case Isa::Avx512: detail::copyAndNotAvx512(dst, a, b, n); return;
      case Isa::Avx2: detail::copyAndNotAvx2(dst, a, b, n); return;
      default: break;
    }
#elif defined(__aarch64__)
    if (detail::loadActiveIsa() == Isa::Neon) {
      detail::copyAndNotNeon(dst, a, b, n);
      return;
    }
#endif
  }
  detail::copyAndNotScalar(dst, a, b, n);
}

/// dst = a & b & ~c, returning the OR of the result — the fused first
/// constrainer-row AND with viability and `used` folded in (one pass where
/// the unfused sequence takes three).
inline std::uint64_t copyAndAndNot(std::uint64_t* dst, const std::uint64_t* a,
                                   const std::uint64_t* b, const std::uint64_t* c,
                                   std::size_t n) noexcept {
  if (n > kInlineWordThreshold) {
#if defined(__x86_64__) || defined(_M_X64)
    switch (detail::loadActiveIsa()) {
      case Isa::Avx512: return detail::copyAndAndNotAvx512(dst, a, b, c, n);
      case Isa::Avx2: return detail::copyAndAndNotAvx2(dst, a, b, c, n);
      default: break;
    }
#elif defined(__aarch64__)
    if (detail::loadActiveIsa() == Isa::Neon) {
      return detail::copyAndAndNotNeon(dst, a, b, c, n);
    }
#endif
  }
  return detail::copyAndAndNotScalar(dst, a, b, c, n);
}

/// dst &= src, returning the popcount of the result — the dynamic-order
/// domain update (narrow the domain and learn its new size in one pass).
inline std::size_t andIntoPopcount(std::uint64_t* dst, const std::uint64_t* src,
                                   std::size_t n) noexcept {
  if (n > kInlineWordThreshold) {
#if defined(__x86_64__) || defined(_M_X64)
    switch (detail::loadActiveIsa()) {
      case Isa::Avx512: return detail::andIntoPopcountAvx512(dst, src, n);
      case Isa::Avx2: return detail::andIntoPopcountAvx2(dst, src, n);
      default: break;
    }
#elif defined(__aarch64__)
    if (detail::loadActiveIsa() == Isa::Neon) {
      return detail::andIntoPopcountNeon(dst, src, n);
    }
#endif
  }
  return detail::andIntoPopcountScalar(dst, src, n);
}

/// Population count over a word row.
inline std::size_t popcount(const std::uint64_t* w, std::size_t n) noexcept {
  if (n > kInlineWordThreshold) {
#if defined(__x86_64__) || defined(_M_X64)
    switch (detail::loadActiveIsa()) {
      case Isa::Avx512: return detail::popcountAvx512(w, n);
      case Isa::Avx2: return detail::popcountAvx2(w, n);
      default: break;
    }
#elif defined(__aarch64__)
    if (detail::loadActiveIsa() == Isa::Neon) return detail::popcountNeon(w, n);
#endif
  }
  return detail::popcountScalarImpl(w, n);
}

/// OR-reduction over a word row (non-zero iff any bit is set).
inline std::uint64_t orReduce(const std::uint64_t* w, std::size_t n) noexcept {
  // Pure load-OR saturates memory bandwidth even scalar; not worth dispatch.
  return detail::orReduceScalar(w, n);
}

// --- range-restricted variants ----------------------------------------------
// The sharded host model partitions rows into word-aligned shard ranges;
// these run the same dispatched kernels on the [beginWord, endWord) subrange
// only, so a per-depth intersection touches just the shards a partial
// mapping can still reach. Word indices are absolute within the row, so
// bit index = word * 64 + bit stays valid without re-basing.

/// dst[b..e) &= src[b..e); returns the OR of the touched result words.
inline std::uint64_t andIntoRange(std::uint64_t* dst, const std::uint64_t* src,
                                  std::size_t beginWord, std::size_t endWord) noexcept {
  return andInto(dst + beginWord, src + beginWord, endWord - beginWord);
}

/// dst[b..e) = a[b..e) & ~b_[b..e).
inline void copyAndNotRange(std::uint64_t* dst, const std::uint64_t* a,
                            const std::uint64_t* b, std::size_t beginWord,
                            std::size_t endWord) noexcept {
  copyAndNot(dst + beginWord, a + beginWord, b + beginWord, endWord - beginWord);
}

/// dst[b..e) = a[b..e) & b_[b..e) & ~c[b..e); returns the OR of the result.
inline std::uint64_t copyAndAndNotRange(std::uint64_t* dst, const std::uint64_t* a,
                                        const std::uint64_t* b, const std::uint64_t* c,
                                        std::size_t beginWord,
                                        std::size_t endWord) noexcept {
  return copyAndAndNot(dst + beginWord, a + beginWord, b + beginWord, c + beginWord,
                       endWord - beginWord);
}

/// dst[b..e) &= src[b..e); returns the popcount of the touched result words.
inline std::size_t andIntoPopcountRange(std::uint64_t* dst, const std::uint64_t* src,
                                        std::size_t beginWord,
                                        std::size_t endWord) noexcept {
  return andIntoPopcount(dst + beginWord, src + beginWord, endWord - beginWord);
}

/// Popcount of words [b, e).
inline std::size_t popcountRange(const std::uint64_t* w, std::size_t beginWord,
                                 std::size_t endWord) noexcept {
  return popcount(w + beginWord, endWord - beginWord);
}

namespace detail {

inline std::size_t andIntoPopcountScalar(std::uint64_t* dst, const std::uint64_t* src,
                                         std::size_t n) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
    count += static_cast<std::size_t>(__builtin_popcountll(dst[i]));
  }
  return count;
}

}  // namespace detail

}  // namespace netembed::util::simd
