#pragma once
// A small task pool and a chunked parallel-for.
//
// NETEMBED's stage-1 filter construction evaluates the constraint expression
// over |E_Q| x |E_R| edge pairs; that loop is embarrassingly parallel and is
// the main user of parallelFor. The core engines also lease workers from the
// pool for root-split search, and benchmark harnesses use it to run
// independent repetitions concurrently.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stop_token>
#include <vector>

namespace netembed::util {

class CompletionLatch;

/// Fixed-size worker pool. Tasks are arbitrary std::function<void()>; the
/// destructor drains the queue and joins all workers (RAII, no detach).
///
/// Cooperative cancellation: the pool owns a std::stop_source. requestStop()
/// never interrupts a running task — cancellable tasks poll stopToken() /
/// stopRequested() and wind down at their next check.
class ThreadPool {
 public:
  /// threads == 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Fault probes (see util/fault.hpp): an armed
  /// faultsite::kPoolSubmit fire throws InjectedFault before the task is
  /// queued (spawn-failure simulation — submitCounted already survives a
  /// throwing submit). When every worker has died (kPoolWorkerDeath), the
  /// pool is degraded and the task runs inline on the calling thread
  /// instead — the serial fallback, counted in serialFallbacks().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

  [[nodiscard]] std::size_t threadCount() const noexcept;

  /// Workers still alive. Equal to threadCount() unless fault injection
  /// killed workers (faultsite::kPoolWorkerDeath); 0 means the pool is
  /// degraded to inline execution.
  [[nodiscard]] std::size_t liveWorkerCount() const noexcept;
  /// Workers lost to injected deaths since construction.
  [[nodiscard]] std::uint64_t workerDeaths() const noexcept;
  /// Tasks run inline on their submitter because no worker was left.
  [[nodiscard]] std::uint64_t serialFallbacks() const noexcept;

  /// True when the calling thread is one of THIS pool's workers. Code that
  /// submits to the pool and then blocks on completion (root-split search,
  /// parallelFor) checks this to fall back to serial execution instead of
  /// risking pool starvation; workers of other pools are unaffected.
  [[nodiscard]] bool isWorkerThread() const noexcept;

  /// Ask cooperative tasks to stop early. Queued-but-unstarted work still
  /// runs (tasks poll the token themselves); nothing is interrupted.
  /// Not noexcept: these serialize against resetStop() on the pool mutex,
  /// and locking a std::mutex may throw.
  void requestStop();
  [[nodiscard]] bool stopRequested() const;
  /// Token view for tasks; observes requestStop() until the next resetStop().
  [[nodiscard]] std::stop_token stopToken() const;
  /// Re-arm after a requestStop() so the pool can be reused. Call only when
  /// no cooperative task is in flight (typically right after wait()).
  void resetStop();

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <thread>/<condition_variable> out of the header
};

/// Process [0, n) with `fn(i)` across the pool, in contiguous chunks.
/// Exceptions thrown by fn propagate to the caller (first one wins).
/// Always visits every index or throws — correctness-critical loops (the
/// stage-1 filter build) rely on that, so parallelFor deliberately ignores
/// the pool's stop token; a cancellable fn polls stopToken() itself.
void parallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 0);

/// Convenience overload using a process-wide shared pool.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 0);

/// Submit one task of a submit-and-wait fan-out, accounting it in `latch`.
/// The task must call latch.done() as its last action. If the submission
/// itself throws (allocation failure), the never-queued task is
/// un-accounted, `onSubmitFailure` runs (cancel the siblings), the
/// already-queued tasks are drained via latch.wait(), and the error is
/// rethrown — the tasks reference the caller's frame, which is about to
/// unwind.
void submitCounted(ThreadPool& pool, CompletionLatch& latch,
                   std::function<void()> task,
                   const std::function<void()>& onSubmitFailure);

/// The lazily-created process-wide pool (hardware concurrency).
ThreadPool& sharedPool();

}  // namespace netembed::util
