#pragma once
// QoS-aware admission scheduling for the service layer.
//
// The async NETEMBED front end used to accept work unboundedly into a FIFO
// ThreadPool; serving many concurrent applications (paper §III) needs a real
// admission queue instead. QosScheduler provides exactly the queue the
// request-lifecycle API is built on:
//
//  * a *bounded* admission queue with a pluggable overload policy — Block
//    the submitter, Reject the newcomer, or ShedLowestPriority (evict the
//    most recently admitted job of the lowest priority class to make room
//    for a higher-priority newcomer);
//  * strict priority classes: a queued higher-priority job always dequeues
//    before any lower-priority one;
//  * weighted fair dequeue across tenants *within* a class, via stride
//    scheduling (each tenant advances a virtual "pass" by 1/weight per
//    dequeue; the lowest pass runs next, ties break to the lower tenant id,
//    so the order is deterministic and a weight-3 tenant gets 3x the
//    dequeues of a weight-1 tenant under saturation);
//  * admission deadlines: a job that waits in the queue past its admitBy
//    point is dropped (checked when a worker would dequeue it, and while a
//    Block-policy submitter waits for space);
//  * cancellation of queued jobs by id, and a two-mode shutdown (Drain runs
//    everything accepted; CancelPending drops the queue).
//
// Jobs that will never run are reported exactly once through their onDrop
// callback with the reason; a job is either run() or onDrop()'d, never both.
// Callbacks fire outside the scheduler lock (on the submitter, worker,
// canceller or shutdown thread — whichever decided the drop).

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

namespace netembed::util {

/// What submit() does when the queue is at capacity.
enum class OverloadPolicy : std::uint8_t {
  /// Wait for space (or for the job's admission deadline / shutdown).
  Block,
  /// Drop the newcomer immediately with QosDropReason::Rejected.
  Reject,
  /// Make room by evicting the most recently admitted job of the lowest
  /// queued priority class — if the newcomer outranks it. A newcomer at (or
  /// below) the lowest queued priority is itself the shed victim.
  ShedLowestPriority,
};
[[nodiscard]] const char* overloadPolicyName(OverloadPolicy p) noexcept;

/// Why a job was dropped without running.
enum class QosDropReason : std::uint8_t { Rejected, Shed, Expired, Cancelled };
[[nodiscard]] const char* qosDropReasonName(QosDropReason r) noexcept;

class QosScheduler {
 public:
  using JobId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Worker count; 0 selects the hardware concurrency (at least 1).
    std::size_t workers = 0;
    /// Queued-job bound (running jobs do not count); 0 = unbounded.
    std::size_t queueCapacity = 0;
    OverloadPolicy overload = OverloadPolicy::Block;
  };

  struct Job {
    /// Executed on a worker thread. Must not throw (exceptions are swallowed
    /// to keep the worker alive — wrap fallible work in its own try/catch).
    std::function<void()> run;
    /// Fired exactly once if the job will never run. May be empty. Must not
    /// throw (like run(), exceptions are swallowed — a throw must never
    /// strand the scheduler's internal drop accounting).
    std::function<void(QosDropReason)> onDrop;
    /// Higher dequeues strictly first.
    int priority = 0;
    /// Fair-queueing identity (see setTenantWeight).
    std::uint64_t tenant = 0;
    /// Queue-wait deadline; nullopt = wait forever.
    std::optional<Clock::time_point> admitBy;
  };

  enum class ShutdownMode : std::uint8_t {
    Drain,          // run every queued job, then join
    CancelPending,  // drop every queued job (onDrop(Cancelled)), then join;
                    // jobs already running finish on their own
  };

  QosScheduler();  // all-default Options
  explicit QosScheduler(Options options);
  /// shutdown(Drain) unless a shutdown already happened.
  ~QosScheduler();

  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  /// Admit one job. Returns its id, or 0 when the job was dropped instead —
  /// the onDrop callback has then already fired (Rejected/Shed per policy,
  /// Expired when a Block wait outlived the job's admission deadline,
  /// Rejected after shutdown).
  JobId submit(Job job);

  /// Drop a still-queued job (onDrop(Cancelled) fires before returning).
  /// False when the job already started, finished, or was never queued —
  /// cancelling running work is the caller's business (stop tokens).
  bool cancel(JobId id);

  /// Fair-share weight for a tenant (default 1.0; clamped to > 0). Takes
  /// effect from the next dequeue. Tenants never seen keep the default.
  void setTenantWeight(std::uint64_t tenant, double weight);

  /// Block until no job is queued or running.
  void drain();

  /// Idempotent; joins the workers. Safe to call before destruction to pick
  /// CancelPending.
  void shutdown(ShutdownMode mode);

  [[nodiscard]] std::size_t queuedCount() const;
  [[nodiscard]] std::size_t runningCount() const;
  /// Queued + running.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t workerCount() const noexcept;

  struct Stats {
    std::uint64_t accepted = 0;   // submit() admissions
    std::uint64_t completed = 0;  // run() returned
    std::uint64_t rejected = 0;   // dropped: queue full / shutdown
    std::uint64_t shed = 0;       // dropped: ShedLowestPriority
    std::uint64_t expired = 0;    // dropped: admission deadline
    std::uint64_t cancelled = 0;  // dropped: cancel() or CancelPending
    // Admission-latency distribution: queue wait from a job's admission to
    // the moment a worker dequeues it (expired dequeues included — they
    // waited too). Estimated from a fixed-size uniform reservoir so the
    // memory stays O(1) no matter how long the scheduler lives; the
    // percentiles are what an adaptive admission controller would steer on
    // (derive capacity / shed thresholds from observed wait, not a static
    // knob). Zero until the first dequeue.
    std::uint64_t admissionWaitSamples = 0;  // dequeues observed (not capped)
    double admissionWaitP50Ms = 0.0;
    double admissionWaitP99Ms = 0.0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <thread>/<condition_variable>/<map> out here
};

}  // namespace netembed::util
