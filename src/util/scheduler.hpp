#pragma once
// QoS-aware admission scheduling for the service layer.
//
// The async NETEMBED front end used to accept work unboundedly into a FIFO
// ThreadPool; serving many concurrent applications (paper §III) needs a real
// admission queue instead. QosScheduler provides exactly the queue the
// request-lifecycle API is built on:
//
//  * a *bounded* admission queue with a pluggable overload policy — Block
//    the submitter, Reject the newcomer, or ShedLowestPriority (evict the
//    most recently admitted job of the lowest priority class to make room
//    for a higher-priority newcomer);
//  * strict priority classes: a queued higher-priority job always dequeues
//    before any lower-priority one;
//  * weighted fair dequeue across tenants *within* a class, via stride
//    scheduling (each tenant advances a virtual "pass" by 1/weight per
//    dequeue; the lowest pass runs next, ties break to the lower tenant id,
//    so the order is deterministic and a weight-3 tenant gets 3x the
//    dequeues of a weight-1 tenant under saturation);
//  * admission deadlines: a job that waits in the queue past its admitBy
//    point is dropped (checked when a worker would dequeue it, and while a
//    Block-policy submitter waits for space). Within a (class, tenant)
//    bucket, deadline-bearing jobs dequeue earliest-deadline-first ahead of
//    unbounded ones (EDF); with no deadlines the bucket is the historical
//    FIFO;
//  * an optional adaptive controller (ControlPolicy): per-class service-time
//    EWMAs from completed jobs derive the effective queue capacity via
//    Little's law (target queue delay x workers / mean service time) and an
//    early-shed watermark, instead of steering on the static queueCapacity;
//  * cancellation of queued jobs by id, and a two-mode shutdown (Drain runs
//    everything accepted; CancelPending drops the queue).
//
// Jobs that will never run are reported exactly once through their onDrop
// callback with the reason; a job is either run() or onDrop()'d, never both.
// Callbacks fire outside the scheduler lock (on the submitter, worker,
// canceller or shutdown thread — whichever decided the drop).

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

namespace netembed::util {

/// What submit() does when the queue is at capacity.
enum class OverloadPolicy : std::uint8_t {
  /// Wait for space (or for the job's admission deadline / shutdown).
  Block,
  /// Drop the newcomer immediately with QosDropReason::Rejected.
  Reject,
  /// Make room by evicting the most recently admitted job of the lowest
  /// queued priority class — if the newcomer outranks it. A newcomer at (or
  /// below) the lowest queued priority is itself the shed victim.
  ShedLowestPriority,
};
[[nodiscard]] const char* overloadPolicyName(OverloadPolicy p) noexcept;

/// Why a job was dropped without running.
enum class QosDropReason : std::uint8_t { Rejected, Shed, Expired, Cancelled };
[[nodiscard]] const char* qosDropReasonName(QosDropReason r) noexcept;

class QosScheduler {
 public:
  using JobId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  /// Closed-loop admission control. Defaults reproduce the static behavior
  /// exactly: a fixed queueCapacity bound and no early shedding.
  struct ControlPolicy {
    /// Derive the effective queue capacity from observed service times:
    /// capacity = targetQueueDelay * workers / mean service time (the mean
    /// weighted over per-class EWMAs by completion count), clamped to
    /// [minCapacity, maxCapacity]. Until the first completion the static
    /// queueCapacity applies. Off = always the static bound.
    bool adaptiveCapacity = false;
    /// The queue delay the adaptive capacity aims to keep a newly admitted
    /// job under (Little's law inversion).
    std::chrono::milliseconds targetQueueDelay{250};
    /// Per-class service-time EWMA smoothing factor in (0, 1].
    double ewmaAlpha = 0.2;
    std::size_t minCapacity = 2;
    std::size_t maxCapacity = 4096;
    /// Under ShedLowestPriority only: when the queue depth reaches this
    /// fraction of the effective capacity, a newcomer ranking strictly below
    /// the highest queued class is shed immediately — reserving the
    /// remaining headroom for top-class work. 1.0 (the default) disables
    /// early shedding (only a full queue sheds).
    double lowPriorityShedWatermark = 1.0;
  };

  struct Options {
    /// Worker count; 0 selects the hardware concurrency (at least 1).
    std::size_t workers = 0;
    /// Queued-job bound (running jobs do not count); 0 = unbounded.
    std::size_t queueCapacity = 0;
    OverloadPolicy overload = OverloadPolicy::Block;
    ControlPolicy control{};
  };

  struct Job {
    /// Executed on a worker thread. Must not throw (exceptions are swallowed
    /// to keep the worker alive — wrap fallible work in its own try/catch).
    std::function<void()> run;
    /// Fired exactly once if the job will never run. May be empty. Must not
    /// throw (like run(), exceptions are swallowed — a throw must never
    /// strand the scheduler's internal drop accounting).
    std::function<void(QosDropReason)> onDrop;
    /// Higher dequeues strictly first.
    int priority = 0;
    /// Fair-queueing identity (see setTenantWeight).
    std::uint64_t tenant = 0;
    /// Queue-wait deadline; nullopt = wait forever.
    std::optional<Clock::time_point> admitBy;
  };

  enum class ShutdownMode : std::uint8_t {
    Drain,          // run every queued job, then join
    CancelPending,  // drop every queued job (onDrop(Cancelled)), then join;
                    // jobs already running finish on their own
  };

  QosScheduler();  // all-default Options
  explicit QosScheduler(Options options);
  /// shutdown(Drain) unless a shutdown already happened.
  ~QosScheduler();

  QosScheduler(const QosScheduler&) = delete;
  QosScheduler& operator=(const QosScheduler&) = delete;

  /// Admit one job. Returns its id, or 0 when the job was dropped instead —
  /// the onDrop callback has then already fired (Rejected/Shed per policy,
  /// Expired when a Block wait outlived the job's admission deadline,
  /// Rejected after shutdown).
  JobId submit(Job job);

  /// submit() that never blocks the caller: under OverloadPolicy::Block a
  /// full queue drops the job with Rejected instead of waiting for space.
  /// Safe to call from a scheduler worker thread (a blocking submit there
  /// could deadlock a single-worker scheduler); the preemption re-queue path
  /// uses exactly this.
  JobId trySubmit(Job job);

  /// Drop a still-queued job (onDrop(Cancelled) fires before returning).
  /// False when the job already started, finished, or was never queued —
  /// cancelling running work is the caller's business (stop tokens).
  bool cancel(JobId id);

  /// Fair-share weight for a tenant (default 1.0; clamped to > 0). Takes
  /// effect from the next dequeue. Tenants never seen keep the default.
  void setTenantWeight(std::uint64_t tenant, double weight);

  /// Block until no job is queued or running.
  void drain();

  /// Idempotent; joins the workers. Safe to call before destruction to pick
  /// CancelPending.
  void shutdown(ShutdownMode mode);

  [[nodiscard]] std::size_t queuedCount() const;
  [[nodiscard]] std::size_t runningCount() const;
  /// Queued + running.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t workerCount() const noexcept;

  struct Stats {
    std::uint64_t accepted = 0;   // submit() admissions
    std::uint64_t completed = 0;  // run() returned
    std::uint64_t rejected = 0;   // dropped: queue full / shutdown
    std::uint64_t shed = 0;       // dropped: ShedLowestPriority
    std::uint64_t expired = 0;    // dropped: admission deadline
    std::uint64_t cancelled = 0;  // dropped: cancel() or CancelPending
    // Admission-latency distribution: queue wait from a job's admission to
    // the moment a worker dequeues it (expired dequeues included — they
    // waited too). Estimated from a fixed-size uniform reservoir so the
    // memory stays O(1) no matter how long the scheduler lives; the
    // percentiles are what an adaptive admission controller would steer on
    // (derive capacity / shed thresholds from observed wait, not a static
    // knob). Zero until the first dequeue.
    std::uint64_t admissionWaitSamples = 0;  // dequeues observed (not capped)
    // Nearest-rank percentiles (see util::quantileNearestRank): always an
    // observed wait, never an interpolation, and the rank rounds up so the
    // tail is not under-reported.
    double admissionWaitP50Ms = 0.0;
    double admissionWaitP99Ms = 0.0;

    /// Per-priority-class service/wait tracking (one entry per class ever
    /// completed or dequeued, ascending priority) — the signals the adaptive
    /// controller steers on, surfaced for benches and dashboards.
    struct ClassStats {
      int priority = 0;
      std::uint64_t completed = 0;   // run() returned
      double serviceEwmaMs = 0.0;    // EWMA of run() wall time
      std::uint64_t waitSamples = 0; // dequeues observed for this class
      double waitP50Ms = 0.0;
      double waitP99Ms = 0.0;
    };
    std::vector<ClassStats> classes;
    /// The capacity admissions are currently checked against: the static
    /// queueCapacity, or the adaptive derivation once it has service-time
    /// data (0 = unbounded).
    std::size_t effectiveCapacity = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  JobId submitImpl(Job job, bool allowBlock);

  struct Impl;
  Impl* impl_;  // pimpl keeps <thread>/<condition_variable>/<map> out here
};

}  // namespace netembed::util
