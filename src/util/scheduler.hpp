#pragma once
// A future-returning task scheduler on top of ThreadPool.
//
// ThreadPool::submit is fire-and-forget; the async service layer needs each
// queued request to resolve a std::future and to know how many requests are
// still in flight. Scheduler adds exactly that: schedule() wraps the callable
// in a packaged_task (exceptions land in the future, never in the worker
// loop), counts it as pending until it finishes, and hands back the future.
//
// FIFO fairness comes from the underlying pool's queue; drain() blocks until
// the queue is empty, and the destructor (via ~ThreadPool) drains and joins.

#include <atomic>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/parallel.hpp"

namespace netembed::util {

class Scheduler {
 public:
  /// `threads` == 0 selects the hardware concurrency (at least 1).
  explicit Scheduler(std::size_t threads = 0) : pool_(threads) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Queue `fn` for execution on a pool worker; the returned future carries
  /// its result or exception. Tasks run in submission order across the
  /// pool's workers.
  template <class F>
  [[nodiscard]] auto schedule(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable callables while
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    pending_.fetch_add(1, std::memory_order_relaxed);
    try {
      pool_.submit([this, task] {
        (*task)();  // exceptions are captured into the future
        pending_.fetch_sub(1, std::memory_order_release);
      });
    } catch (...) {
      pending_.fetch_sub(1, std::memory_order_release);
      throw;
    }
    return future;
  }

  /// Tasks scheduled but not yet finished (queued + running).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Block until every scheduled task has finished.
  void drain() { pool_.wait(); }

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return pool_.threadCount();
  }

 private:
  // The pool is deliberately not exposed: a task submitted around schedule()
  // would be invisible to pending(), breaking the drain/pending contract.
  ThreadPool pool_;
  std::atomic<std::size_t> pending_{0};
};

}  // namespace netembed::util
